// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per table and figure) plus ablation benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig. 16 benchmarks report the measured speedups as custom metrics
// (speedup_p2, speedup_p8, ...); the tables print once per run.
package irregular

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/core/property"
	"repro/internal/core/singleindex"
	"repro/internal/dataflow"
	"repro/internal/deptest"
	"repro/internal/expr"
	"repro/internal/interp"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/section"
	"repro/internal/sem"
)

// ---------------------------------------------------------------------------
// Batch compilation: the kernel batch through the worker pool, serial vs
// parallel, and with the property-query memo table cold vs warm. The
// serial/parallel pair reports real wall clock — on a single-core host the
// parallel number is expectedly no better.

func kernelBatch() []pipeline.BatchInput {
	var ins []pipeline.BatchInput
	for _, k := range kernels.All(kernels.Default) {
		ins = append(ins, pipeline.BatchInput{Name: k.Name, Src: k.Source})
	}
	return ins
}

func benchBatch(b *testing.B, opts pipeline.Options) {
	b.Helper()
	ins := kernelBatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := pipeline.CompileBatch(ins, parallel.Full, pipeline.Reorganized, opts)
		if err := br.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSerial(b *testing.B)   { benchBatch(b, pipeline.Options{Jobs: 1}) }
func BenchmarkBatchParallel(b *testing.B) { benchBatch(b, pipeline.Options{Jobs: 0}) }
func BenchmarkBatchCacheCold(b *testing.B) {
	benchBatch(b, pipeline.Options{Jobs: 1, NoPropertyCache: true})
}
func BenchmarkBatchCacheWarm(b *testing.B) { benchBatch(b, pipeline.Options{Jobs: 1}) }

// ---------------------------------------------------------------------------
// Table 2: compilation time, property-analysis share, sequential time.

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(kernels.Default)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable2(rows))
		}
	}
}

// ---------------------------------------------------------------------------
// Table 3: loops, properties and tests.

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(kernels.Default)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable3(rows))
		}
		// The paper's headline: the target loops parallelize only with
		// irregular access analysis.
		stars := 0
		for _, r := range rows {
			if r.NewlyParallel {
				stars++
			}
		}
		if stars < 5 {
			b.Fatalf("expected all five target loops newly parallel, got %d", stars)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig. 16: speedup curves per program (Full mode on the Origin profile),
// reported as custom metrics.

func benchFig16(b *testing.B, name string, mode parallel.Mode, prof machine.Profile, procs []int) {
	k, err := kernels.ByName(name, kernels.Default)
	if err != nil {
		b.Fatal(err)
	}
	res, err := pipeline.Compile(k.Source, mode, pipeline.Reorganized)
	if err != nil {
		b.Fatal(err)
	}
	run := func(p int) uint64 {
		in := interp.New(res.Info, interp.Options{Machine: machine.New(prof, p)})
		if err := in.Run(); err != nil {
			b.Fatal(err)
		}
		return in.Machine().Time()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := run(1)
		for _, p := range procs {
			t := run(p)
			if i == b.N-1 {
				b.ReportMetric(float64(seq)/float64(t), fmt.Sprintf("speedup_p%d", p))
			}
		}
	}
}

func BenchmarkFig16TRFD(b *testing.B) {
	benchFig16(b, "trfd", parallel.Full, machine.Origin2000, []int{2, 4, 8, 16, 32})
}

func BenchmarkFig16DYFESM(b *testing.B) {
	benchFig16(b, "dyfesm", parallel.Full, machine.Origin2000, []int{2, 4, 8, 16, 32})
}

func BenchmarkFig16BDNA(b *testing.B) {
	benchFig16(b, "bdna", parallel.Full, machine.Origin2000, []int{2, 4, 8, 16, 32})
}

func BenchmarkFig16P3M(b *testing.B) {
	benchFig16(b, "p3m", parallel.Full, machine.Origin2000, []int{2, 4, 8, 16, 32})
}

func BenchmarkFig16TREE(b *testing.B) {
	benchFig16(b, "tree", parallel.Full, machine.Origin2000, []int{2, 4, 8, 16, 32})
}

// BenchmarkFig16TRFDNoIAA is the "without irregular access analysis" line
// of Fig. 16(a): the affine phase still parallelizes, the irregular loop
// stays serial.
func BenchmarkFig16TRFDNoIAA(b *testing.B) {
	benchFig16(b, "trfd", parallel.NoIAA, machine.Origin2000, []int{2, 4, 8, 16, 32})
}

// BenchmarkFig16TREEBaseline is the APO stand-in on TREE: flat at 1.0
// because 90+% of the time sits in the stack-walk loop.
func BenchmarkFig16TREEBaseline(b *testing.B) {
	benchFig16(b, "tree", parallel.Baseline, machine.Origin2000, []int{2, 4, 8, 16, 32})
}

// BenchmarkFig16DYFESMChallenge is Fig. 16(f): DYFESM on the slower
// 4-processor Challenge profile, where the relative overhead is smaller.
func BenchmarkFig16DYFESMChallenge(b *testing.B) {
	benchFig16(b, "dyfesm", parallel.Full, machine.Challenge, []int{2, 4})
}

// ---------------------------------------------------------------------------
// Compilation micro-benchmarks (per kernel, Full mode).

func benchCompile(b *testing.B, name string, mode parallel.Mode) {
	k, err := kernels.ByName(name, kernels.Small)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Compile(k.Source, mode, pipeline.Reorganized); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileTRFD(b *testing.B)   { benchCompile(b, "trfd", parallel.Full) }
func BenchmarkCompileDYFESM(b *testing.B) { benchCompile(b, "dyfesm", parallel.Full) }
func BenchmarkCompileBDNA(b *testing.B)   { benchCompile(b, "bdna", parallel.Full) }
func BenchmarkCompileP3M(b *testing.B)    { benchCompile(b, "p3m", parallel.Full) }
func BenchmarkCompileTREE(b *testing.B)   { benchCompile(b, "tree", parallel.Full) }

// ---------------------------------------------------------------------------
// Telemetry overhead: the same compilation with the recorder disabled (a nil
// *obs.Recorder, one branch per call site) and enabled. The off numbers are
// recorded in BENCH_obs.json; off vs. the plain BenchmarkCompileTRFD must be
// within noise.

func benchCompileTelemetry(b *testing.B, rec func() *obs.Recorder) {
	k, err := kernels.ByName("trfd", kernels.Small)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := pipeline.CompileOpts(k.Source, parallel.Full, pipeline.Reorganized,
			pipeline.Options{Recorder: rec()})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileTelemetryOff(b *testing.B) {
	benchCompileTelemetry(b, func() *obs.Recorder { return nil })
}

func BenchmarkCompileTelemetryOn(b *testing.B) {
	benchCompileTelemetry(b, obs.New)
}

// BenchmarkCompileTelemetryDebug measures the full-trace configuration
// (per-node query propagation steps) — the -explain path, not production.
func BenchmarkCompileTelemetryDebug(b *testing.B) {
	benchCompileTelemetry(b, obs.NewDebug)
}

// ---------------------------------------------------------------------------
// Ablation: Fig. 15 phase organization. The reorganized order allows
// interprocedural property queries; the original order restricts them to
// one unit, and DYFESM's target loop (whose index arrays are defined in a
// different subroutine) stops parallelizing.

func benchPipelineOrder(b *testing.B, org pipeline.Organization, wantParallel bool) {
	k, err := kernels.ByName("dyfesm", kernels.Small)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Compile(k.Source, parallel.Full, org)
		if err != nil {
			b.Fatal(err)
		}
		got := false
		for _, r := range res.Reports {
			if r.Parallel && r.Tests["x"] == "offset-length" {
				got = true
			}
		}
		if got != wantParallel {
			b.Fatalf("organization %v: offset-length parallelization = %v, want %v", org, got, wantParallel)
		}
	}
}

func BenchmarkPipelineOrderReorganized(b *testing.B) {
	benchPipelineOrder(b, pipeline.Reorganized, true)
}

func BenchmarkPipelineOrderOriginal(b *testing.B) {
	benchPipelineOrder(b, pipeline.Original, false)
}

// ---------------------------------------------------------------------------
// Ablation: demand-driven vs. exhaustive property analysis. The paper's
// argument for demand-driven analysis (§3) is that interprocedural array
// analysis is too expensive to run for every array everywhere; the
// exhaustive variant queries every index-array property at every loop.

func propertyWorld(b *testing.B) (*sem.Info, *property.Analysis, []*lang.DoStmt, []string) {
	k, err := kernels.ByName("bdna", kernels.Small)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lang.Parse(k.Source)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	mod := dataflow.ComputeMod(info)
	an := property.New(info, cfg.BuildHCG(prog), mod)
	var loops []*lang.DoStmt
	var arrays []string
	seen := map[string]bool{}
	for _, u := range prog.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			if d, ok := s.(*lang.DoStmt); ok {
				loops = append(loops, d)
			}
			f := dataflow.Facts(s)
			for _, r := range f.ArrayReads {
				if sym := info.LookupIn(u, r.Array); sym != nil && sym.Type == lang.TInteger && !seen[r.Array] {
					seen[r.Array] = true
					arrays = append(arrays, r.Array)
				}
			}
			return true
		})
	}
	return info, an, loops, arrays
}

func BenchmarkPropertyDemandDriven(b *testing.B) {
	// One query, issued where the privatizer actually needs it.
	info, an, loops, _ := propertyWorld(b)
	var use lang.Stmt
	lang.WalkStmts(info.Program.Units()[0].Body, func(s lang.Stmt) bool { return true })
	for _, u := range info.Program.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			f := dataflow.Facts(s)
			for _, r := range f.ArrayReads {
				if r.Array == "xdt" && use == nil {
					use = s
				}
			}
			return true
		})
	}
	if use == nil {
		b.Fatal("no use site")
	}
	_ = loops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prop := property.NewBounds("ind")
		an.Verify(prop, use, section.New("ind", expr.One, expr.Var("q")))
	}
}

func BenchmarkPropertyExhaustive(b *testing.B) {
	// Every property of every integer array at every loop's first
	// statement — what a non-demand-driven analyzer would precompute.
	_, an, loops, arrays := propertyWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range loops {
			if len(d.Body) == 0 {
				continue
			}
			at := d.Body[0]
			for _, arr := range arrays {
				an.Verify(property.NewBounds(arr), at, section.New(arr, expr.One, expr.Var("q")))
				an.Verify(property.NewInjective(arr), at, section.New(arr, expr.One, expr.Var("q")))
				an.Verify(property.NewMonotonic(arr), at, section.New(arr, expr.One, expr.Var("q")))
				an.Verify(property.NewClosedFormValue(arr), at, section.New(arr, expr.One, expr.Var("q")))
				an.Verify(property.NewClosedFormDistance(arr), at, section.New(arr, expr.One, expr.Var("q")))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation: QuerySolver early termination. A query that is killed at the
// first examined node returns much faster than one that must traverse to
// the definition — the reverse-topological worklist order is what makes
// this possible (§3.2.2).

func BenchmarkQuerySolverEarlyTermination(b *testing.B) {
	src := `
program p
  param nmax = 100
  integer n, q, i, j, jj
  real x(nmax)
  integer ind(nmax)
  q = 0
  do i = 1, n
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  ind(1) = 7
  do j = 1, q
    jj = ind(j)
  end do
end
`
	prog, _ := lang.Parse(src)
	info, err := sem.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	mod := dataflow.ComputeMod(info)
	an := property.New(info, cfg.BuildHCG(prog), mod)
	var use lang.Stmt
	lang.WalkStmts(prog.Main.Body, func(s lang.Stmt) bool {
		if as, ok := s.(*lang.AssignStmt); ok {
			if id, ok := as.Lhs.(*lang.Ident); ok && id.Name == "jj" {
				use = s
			}
		}
		return true
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The spoiling write ind(1)=7 kills the query immediately.
		an.Verify(property.NewInjective("ind"), use, section.New("ind", expr.One, expr.Var("q")))
	}
}

// ---------------------------------------------------------------------------
// Core-analysis micro-benchmarks.

func BenchmarkSingleIndexedCW(b *testing.B) {
	src := `
program p
  param nmax = 1000
  integer n, i, pp
  real x(nmax), y(nmax)
  pp = 0
  do i = 1, n
    pp = pp + 1
    x(pp) = y(i)
  end do
end
`
	prog, _ := lang.Parse(src)
	info, err := sem.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	mod := dataflow.ComputeMod(info)
	g := cfg.Build(prog.Main)
	loop := g.NaturalLoops()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accs := singleindex.Find(g, loop, info, mod)
		for _, a := range accs {
			if a.Array == "x" {
				if cw := singleindex.CheckConsecutivelyWritten(a); cw == nil {
					b.Fatal("CW lost")
				}
			}
		}
	}
}

func BenchmarkInterpreterSerial(b *testing.B) {
	k, err := kernels.ByName("tree", kernels.Small)
	if err != nil {
		b.Fatal(err)
	}
	res, err := pipeline.Compile(k.Source, parallel.Full, pipeline.Reorganized)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New(res.Info, interp.Options{Machine: machine.New(machine.Origin2000, 1)})
		if err := in.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation: simple vs. extended offset–length test (§5.1.5: the stand-alone
// simple test "could be used when the user wanted to avoid the overhead of
// the extended range test, though it was less general").

func offsetLengthWorld(b *testing.B) (*deptest.Analyzer, *sem.Info, *lang.DoStmt) {
	src := `
program sol
  param nmax = 64
  param smax = 10000
  integer n, i, j
  integer pptr(nmax), iblen(nmax)
  real x(smax)
  do i = 1, n
    iblen(i) = 2 + mod(i, 4)
  end do
  pptr(1) = 1
  do i = 1, n
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  do i = 1, n
    do j = 1, iblen(i)
      x(pptr(i) + j - 1) = real(i)
    end do
  end do
end
`
	prog, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	mod := dataflow.ComputeMod(info)
	prop := property.New(info, cfg.BuildHCG(prog), mod)
	dep := deptest.New(info, mod, prop)
	var target *lang.DoStmt
	count := 0
	lang.WalkStmts(prog.Main.Body, func(s lang.Stmt) bool {
		if d, ok := s.(*lang.DoStmt); ok && d.Var.Name == "i" {
			if count == 2 {
				target = d
				return false
			}
			count++
			return false // top-level do i loops only
		}
		return true
	})
	if target == nil {
		b.Fatal("target loop not found")
	}
	return dep, info, target
}

func BenchmarkOffsetLengthSimple(b *testing.B) {
	dep, info, loop := offsetLengthWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _ := dep.SimpleOffsetLength(info.Program.Main, loop, "x")
		if !ok {
			b.Fatal("simple test failed")
		}
	}
}

func BenchmarkOffsetLengthExtended(b *testing.B) {
	dep, info, loop := offsetLengthWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs := dep.AnalyzeLoop(info.Program.Main, loop)
		if v := vs["x"]; v == nil || !v.Independent {
			b.Fatal("extended test failed")
		}
	}
}
