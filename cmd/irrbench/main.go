// Command irrbench regenerates the paper's evaluation artifacts (Lin &
// Padua, PLDI 2000): Table 2, Table 3 and the Fig. 16 speedup curves, from
// the bundled benchmark kernels on the simulated parallel machine.
//
// Usage:
//
//	irrbench [-size small|default|large] [-procs 1,2,4,8,16,32] [-table2] [-table3] [-fig16]
//	irrbench -metrics out.json [-jobs N]
//	irrbench -scaling-report out.json [-jobs N]
//	irrbench -expr-report out.json [-jobs N]
//	irrbench -obs-report out.json [-obs-kernel trfd]
//	irrbench -serve-load out.json [-load-kernel trfd] [-load-requests N] [-load-conc N]
//	irrbench -gateway-load out.json [-gw-backends M] [-gw-requests N] [-gw-conc N]
//	irrbench -recurrence-report out.json [-recurrence-procs N]
//
// With no selection flags, everything is printed. -metrics additionally
// writes one machine-readable metrics document per kernel ("-": stdout);
// the kernels compile as a batch over -jobs workers. -scaling-report
// sweeps the duplicated kernel batch across worker counts and compares the
// shared analysis cache against private per-item caches (wall clock,
// allocations, hit rates, determinism), and writes the irr-parallel/2 JSON
// document ("-": stdout); -parallel-report is its deprecated spelling.
// -expr-report measures the expression-interner microbenchmarks and the
// intern-on/intern-off batch, and writes the irr-expr/1 JSON document.
// -obs-report measures the telemetry configurations (baseline, off, the
// always-on production level, full debug traces) and writes the irr-obs/2
// JSON document — the BENCH_obs2.json payload.
// -serve-load boots throwaway irrd instances and measures the
// cross-request compilation cache end to end — cold vs warm latency,
// throughput, coalescing rate under a concurrent identical burst, and the
// byte-identity of cached responses — and writes the irr-servecache/1
// JSON document, the BENCH_cache.json payload.
// -gateway-load boots fleets of in-process irrd backends behind the irrgw
// consistent-hash gateway and measures throughput as the fleet grows,
// whether affinity routing preserves the cache hit rate, byte-identity of
// proxied responses, and availability when one backend is hard-killed
// under load — the irr-gateway/1 JSON document, the BENCH_gateway.json
// payload.
// -recurrence-report compiles every kernel with the definition-site
// recurrence derivation on and off (-no-recurrence) and records which
// target verdicts flip and the simulated speedup deltas — the
// irr-recurrence/1 JSON document, the BENCH_recurrence.json payload.
// -cpuprofile / -memprofile write pprof profiles of whatever the invocation
// ran.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/comperr"
	"repro/internal/kernels"
	"repro/internal/servebench"
)

func main() {
	size := flag.String("size", "default", "kernel size: small, default or large")
	procsFlag := flag.String("procs", "1,2,4,8,16,32", "processor counts for fig16")
	t2 := flag.Bool("table2", false, "print Table 2 only")
	t3 := flag.Bool("table3", false, "print Table 3 only")
	f16 := flag.Bool("fig16", false, "print Fig. 16 only")
	metrics := flag.String("metrics", "", "write per-kernel metrics JSON to this path (\"-\" for stdout)")
	jobs := flag.Int("jobs", 0, "worker pool size for batch compilation (0: GOMAXPROCS)")
	scalingReport := flag.String("scaling-report", "", "sweep -jobs and compare shared vs private analysis caches; write JSON to this path (\"-\" for stdout)")
	parReport := flag.String("parallel-report", "", "deprecated spelling of -scaling-report")
	exprReport := flag.String("expr-report", "", "measure expression interning (micro + end-to-end); write JSON to this path (\"-\" for stdout)")
	obsReport := flag.String("obs-report", "", "measure telemetry overhead (baseline/off/on/debug); write JSON to this path (\"-\" for stdout)")
	obsKernel := flag.String("obs-kernel", "trfd", "kernel for -obs-report")
	serveLoad := flag.String("serve-load", "", "measure the irrd cross-request cache under load; write JSON to this path (\"-\" for stdout)")
	loadKernel := flag.String("load-kernel", "trfd", "kernel for -serve-load")
	loadRequests := flag.Int("load-requests", 0, "warm-phase request count for -serve-load (0: 500)")
	loadConc := flag.Int("load-conc", 0, "client concurrency for -serve-load (0: 2*GOMAXPROCS)")
	recurrenceReport := flag.String("recurrence-report", "", "compare every kernel with the recurrence derivation on vs the -no-recurrence ablation (verdict flips, speedup deltas); write JSON to this path (\"-\" for stdout)")
	recurrenceProcs := flag.Int("recurrence-procs", 0, "processor count for -recurrence-report speedups (0: 8)")
	gatewayLoad := flag.String("gateway-load", "", "measure the irrgw consistent-hash gateway over irrd fleets; write JSON to this path (\"-\" for stdout)")
	gwBackends := flag.Int("gw-backends", 0, "largest fleet size for -gateway-load (0: 3)")
	gwRequests := flag.Int("gw-requests", 0, "per-phase request count for -gateway-load (0: 400)")
	gwConc := flag.Int("gw-conc", 0, "client concurrency for -gateway-load (0: 2*GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	var sz kernels.Size
	switch *size {
	case "small":
		sz = kernels.Small
	case "default", "":
		sz = kernels.Default
	case "large":
		sz = kernels.Large
	default:
		fmt.Fprintf(os.Stderr, "irrbench: unknown size %q\n", *size)
		os.Exit(2)
	}

	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "irrbench: bad processor count %q\n", f)
			os.Exit(2)
		}
		procs = append(procs, n)
	}

	if *metrics != "" {
		docs, err := bench.CompileMetrics(sz, *jobs)
		if err != nil {
			fail(err)
		}
		data, err := json.MarshalIndent(docs, "", "  ")
		if err != nil {
			fail(err)
		}
		writeOut(*metrics, append(data, '\n'))
	}
	if *scalingReport == "" {
		*scalingReport = *parReport
	}
	if *scalingReport != "" {
		rep, err := bench.MeasureScaling(sz, *jobs, 0)
		if err != nil {
			fail(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		writeOut(*scalingReport, append(data, '\n'))
	}
	if *exprReport != "" {
		rep, err := bench.MeasureExpr(sz, *jobs, 0)
		if err != nil {
			fail(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		writeOut(*exprReport, append(data, '\n'))
	}
	if *obsReport != "" {
		rep, err := bench.MeasureObs(*obsKernel)
		if err != nil {
			fail(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		writeOut(*obsReport, append(data, '\n'))
	}
	if *serveLoad != "" {
		rep, err := servebench.MeasureServeLoad(*loadKernel, *loadRequests, *loadConc)
		if err != nil {
			fail(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		writeOut(*serveLoad, append(data, '\n'))
	}
	if *recurrenceReport != "" {
		rep, err := bench.MeasureRecurrence(sz, *recurrenceProcs)
		if err != nil {
			fail(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		writeOut(*recurrenceReport, append(data, '\n'))
	}
	if *gatewayLoad != "" {
		rep, err := servebench.MeasureGatewayLoad(*gwRequests, *gwConc, *gwBackends)
		if err != nil {
			fail(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		writeOut(*gatewayLoad, append(data, '\n'))
	}
	anyReport := *metrics != "" || *scalingReport != "" || *exprReport != "" || *obsReport != "" || *serveLoad != "" || *gatewayLoad != "" || *recurrenceReport != ""
	if anyReport && !*t2 && !*t3 && !*f16 {
		return
	}

	all := !*t2 && !*t3 && !*f16 && !anyReport

	if all || *t2 {
		rows, err := bench.Table2(sz)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println()
	}
	if all || *t3 {
		rows, err := bench.Table3(sz)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatTable3(rows))
		fmt.Println()
	}
	if all || *f16 {
		series, err := bench.Fig16(sz, procs)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatFig16(series))
	}
}

func writeOut(path string, data []byte) {
	if path == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err)
	}
}

// fail reports err and exits with the code of its error kind (3 parse,
// 4 analysis, 5 resource limit, 6 canceled, 1 otherwise).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "irrbench:", err)
	os.Exit(comperr.ExitCode(err))
}
