// Command irrc is the F-lite parallelizing compiler CLI: it parses a
// program, runs the Polaris-like pipeline with the irregular-access
// analyses of Lin & Padua (PLDI 2000), reports which loops parallelize and
// why, and optionally executes the result on the simulated parallel
// machine.
//
// Usage:
//
//	irrc [flags] file.fl
//	irrc [flags] a.fl b.fl dir/      (batch: many files and/or directories)
//	irrc [flags] -kernel trfd
//
// With more than one input (a directory counts as its *.fl files, sorted)
// the compilations run as a batch over a worker pool; the summaries print
// in input order and are identical for every -jobs value. Batch mode
// rejects -run, -dump and -bounds, which are single-program reports.
//
// Flags:
//
//	-mode full|noiaa|baseline   compiler configuration (default full)
//	-intra                      intraprocedural property analysis only
//	-jobs N                     worker pool size (default GOMAXPROCS)
//	-dump                       print the transformed program
//	-run                        execute on the simulated machine
//	-procs N                    processors for -run (default 1)
//	-machine origin2000|challenge
//	-explain                    print the per-loop decision log (telemetry)
//	-metrics out.json           write the metrics JSON document ("-": stdout)
//	-no-expr-intern             disable expression hash-consing (ablation)
//	-no-recurrence              disable recurrence-based property derivation (ablation)
//	-timeout d                  abort compilation (and -run) after d (e.g. 30s)
//	-max-query-steps N          bound property-query propagation
//	-cpuprofile out.pprof       write a CPU profile of the compilation
//	-memprofile out.pprof       write an allocation profile at exit
//
// Exit codes follow the error taxonomy of the library: 0 success,
// 1 internal error, 2 usage, 3 parse error, 4 analysis error, 5 resource
// limit exceeded, 6 canceled (timeout).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	irregular "repro"
	"repro/internal/comperr"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// writeOut streams a document to a path ("-" for stdout).
func writeOut(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	mode := flag.String("mode", "full", "compiler configuration: full, noiaa or baseline")
	intra := flag.Bool("intra", false, "restrict property analysis to single units")
	dump := flag.Bool("dump", false, "print the transformed program")
	run := flag.Bool("run", false, "execute on the simulated machine")
	procs := flag.Int("procs", 1, "processors for -run")
	mach := flag.String("machine", "origin2000", "machine profile for -run")
	kernel := flag.String("kernel", "", "compile a bundled kernel instead of a file")
	jobs := flag.Int("jobs", 0, "worker pool size for batch compilation (0: GOMAXPROCS)")
	bounds := flag.Bool("bounds", false, "report bounds-check elimination and apply it when running")
	interchange := flag.Bool("interchange", false, "enable the loop-interchange companion pass")
	lintFlag := flag.Bool("lint", false, "run the diagnostics phase and print the findings")
	explain := flag.Bool("explain", false, "print the per-loop decision log (query traces for failed properties)")
	metrics := flag.String("metrics", "", "write the metrics JSON document to this path (\"-\" for stdout)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event file (load in Perfetto) to this path (\"-\" for stdout)")
	noIntern := flag.Bool("no-expr-intern", false, "disable expression hash-consing (output is identical; for measurement)")
	noRecurrence := flag.Bool("no-recurrence", false, "disable definition-site recurrence derivation (ablation: recurrence-filled index arrays stay unproven)")
	timeout := flag.Duration("timeout", 0, "abort compilation (and -run) after this duration (0: none)")
	maxQuerySteps := flag.Int("max-query-steps", 0, "bound property-query propagation steps (0: unlimited)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path at exit")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	var inputs []irregular.BatchInput
	switch {
	case *kernel != "":
		k, err := kernels.ByName(*kernel, kernels.Default)
		if err != nil {
			fail(err)
		}
		inputs = []irregular.BatchInput{{Name: k.Name, Src: k.Source}}
	case flag.NArg() >= 1:
		var err error
		inputs, err = collectInputs(flag.Args())
		if err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: irrc [flags] file.fl [file2.fl dir ...]  (or -kernel name); see -h")
		os.Exit(2)
	}

	var m irregular.Mode
	switch *mode {
	case "full":
		m = irregular.Full
	case "noiaa":
		m = irregular.NoIAA
	case "baseline":
		m = irregular.Baseline
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	copts := irregular.Options{
		Mode:            m,
		Intraprocedural: *intra,
		Interchange:     *interchange,
		Telemetry:       *explain || *metrics != "" || *traceOut != "",
		Trace:           *explain || *traceOut != "",
		Jobs:            *jobs,
		NoExprIntern:    *noIntern,
		NoRecurrence:    *noRecurrence,
		Limits:          irregular.Limits{MaxQuerySteps: *maxQuerySteps},
		Lint:            *lintFlag,
	}

	if len(inputs) > 1 {
		if *run || *dump || *bounds || *traceOut != "" {
			fail(fmt.Errorf("-run, -dump, -bounds and -trace-out are single-program flags; got %d inputs", len(inputs)))
		}
		compileBatch(ctx, inputs, copts, *explain, *metrics)
		return
	}

	res, err := irregular.CompileContext(ctx, inputs[0].Src, copts)
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Summary())
	if *interchange && res.Interchanged > 0 {
		fmt.Printf("loop nests interchanged: %d\n", res.Interchanged)
	}

	if *lintFlag {
		if len(res.Diags) == 0 {
			fmt.Println("lint: no findings")
		} else {
			fmt.Print(irregular.RenderDiags(res.Diags))
		}
	}
	if *explain {
		fmt.Println()
		fmt.Print(res.Explain())
	}
	if *dump {
		fmt.Println()
		fmt.Print(res.Format())
	}
	if *bounds {
		fmt.Println()
		fmt.Print(res.BoundsChecks().Summary())
	}
	if *run {
		out, err := res.RunContext(ctx, irregular.RunOptions{
			Processors:            *procs,
			Profile:               irregular.MachineProfile(*mach),
			Out:                   os.Stdout,
			EliminateBoundsChecks: *bounds,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nsimulated time: %d cycles on %s x%d (%d parallel regions)\n",
			out.Time, *mach, *procs, out.ParallelRegions)
	}
	// The trace and metrics documents are written last so that, with -run,
	// the machine.loop.* counters and events of the execution are included.
	if *traceOut != "" {
		if err := writeOut(*traceOut, func(w *os.File) error {
			return obs.WriteChromeTrace(w, res.Recorder.Events())
		}); err != nil {
			fail(err)
		}
	}
	if *metrics != "" {
		data, err := res.SummaryJSON()
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if *metrics == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*metrics, data, 0o644); err != nil {
			fail(err)
		}
	}
}

// collectInputs expands the positional arguments into batch inputs: a
// regular file is read as-is; a directory contributes its *.fl entries,
// sorted by name.
func collectInputs(args []string) ([]irregular.BatchInput, error) {
	var paths []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			paths = append(paths, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		var fl []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".fl") {
				fl = append(fl, filepath.Join(arg, e.Name()))
			}
		}
		if len(fl) == 0 {
			return nil, fmt.Errorf("%s: no .fl files", arg)
		}
		sort.Strings(fl)
		paths = append(paths, fl...)
	}
	inputs := make([]irregular.BatchInput, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, irregular.BatchInput{Name: p, Src: string(data)})
	}
	return inputs, nil
}

// compileBatch runs the multi-input mode: summaries in input order, then
// the optional decision logs and the metrics document (one entry per
// input). A failed input does not stop the others; the exit code is the
// first failed input's (in input order).
func compileBatch(ctx context.Context, inputs []irregular.BatchInput, opts irregular.Options, explain bool, metrics string) {
	br := irregular.CompileBatchContext(ctx, inputs, opts)
	fmt.Print(br.Summary())
	if explain {
		fmt.Println()
		fmt.Print(br.Explain())
	}
	if metrics != "" {
		type item struct {
			Name    string      `json:"name"`
			Error   string      `json:"error,omitempty"`
			Metrics interface{} `json:"metrics,omitempty"`
		}
		doc := struct {
			Schema string `json:"schema"`
			Items  []item `json:"items"`
		}{Schema: "irr-metrics-batch/1"}
		for _, it := range br.Items {
			bi := item{Name: it.Name}
			if it.Err != nil {
				bi.Error = it.Err.Error()
			} else {
				bi.Metrics = it.Result.Metrics()
			}
			doc.Items = append(doc.Items, bi)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if metrics == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(metrics, data, 0o644); err != nil {
			fail(err)
		}
	}
	if err := br.Err(); err != nil {
		fail(err)
	}
}

// fail reports err and exits with the code of its error kind (3 parse,
// 4 analysis, 5 resource limit, 6 canceled, 1 otherwise).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "irrc:", err)
	os.Exit(comperr.ExitCode(err))
}
