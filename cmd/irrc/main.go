// Command irrc is the F-lite parallelizing compiler CLI: it parses a
// program, runs the Polaris-like pipeline with the irregular-access
// analyses of Lin & Padua (PLDI 2000), reports which loops parallelize and
// why, and optionally executes the result on the simulated parallel
// machine.
//
// Usage:
//
//	irrc [flags] file.fl
//	irrc [flags] -kernel trfd
//
// Flags:
//
//	-mode full|noiaa|baseline   compiler configuration (default full)
//	-intra                      intraprocedural property analysis only
//	-dump                       print the transformed program
//	-run                        execute on the simulated machine
//	-procs N                    processors for -run (default 1)
//	-machine origin2000|challenge
//	-explain                    print the per-loop decision log (telemetry)
//	-metrics out.json           write the metrics JSON document ("-": stdout)
package main

import (
	"flag"
	"fmt"
	"os"

	irregular "repro"
	"repro/internal/kernels"
)

func main() {
	mode := flag.String("mode", "full", "compiler configuration: full, noiaa or baseline")
	intra := flag.Bool("intra", false, "restrict property analysis to single units")
	dump := flag.Bool("dump", false, "print the transformed program")
	run := flag.Bool("run", false, "execute on the simulated machine")
	procs := flag.Int("procs", 1, "processors for -run")
	mach := flag.String("machine", "origin2000", "machine profile for -run")
	kernel := flag.String("kernel", "", "compile a bundled kernel instead of a file")
	bounds := flag.Bool("bounds", false, "report bounds-check elimination and apply it when running")
	interchange := flag.Bool("interchange", false, "enable the loop-interchange companion pass")
	explain := flag.Bool("explain", false, "print the per-loop decision log (query traces for failed properties)")
	metrics := flag.String("metrics", "", "write the metrics JSON document to this path (\"-\" for stdout)")
	flag.Parse()

	var src string
	switch {
	case *kernel != "":
		k, err := kernels.ByName(*kernel, kernels.Default)
		if err != nil {
			fail(err)
		}
		src = k.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: irrc [flags] file.fl  (or -kernel name); see -h")
		os.Exit(2)
	}

	var m irregular.Mode
	switch *mode {
	case "full":
		m = irregular.Full
	case "noiaa":
		m = irregular.NoIAA
	case "baseline":
		m = irregular.Baseline
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	res, err := irregular.Compile(src, irregular.Options{
		Mode:            m,
		Intraprocedural: *intra,
		Interchange:     *interchange,
		Telemetry:       *explain || *metrics != "",
	})
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Summary())
	if *interchange && res.Interchanged > 0 {
		fmt.Printf("loop nests interchanged: %d\n", res.Interchanged)
	}

	if *explain {
		fmt.Println()
		fmt.Print(res.Explain())
	}
	if *dump {
		fmt.Println()
		fmt.Print(res.Format())
	}
	if *bounds {
		fmt.Println()
		fmt.Print(res.BoundsChecks().Summary())
	}
	if *run {
		out, err := res.Run(irregular.RunOptions{
			Processors:            *procs,
			Profile:               irregular.MachineProfile(*mach),
			Out:                   os.Stdout,
			EliminateBoundsChecks: *bounds,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nsimulated time: %d cycles on %s x%d (%d parallel regions)\n",
			out.Time, *mach, *procs, out.ParallelRegions)
	}
	// The metrics document is written last so that, with -run, the
	// machine.loop.* counters of the execution are included.
	if *metrics != "" {
		data, err := res.SummaryJSON()
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if *metrics == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*metrics, data, 0o644); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "irrc:", err)
	os.Exit(1)
}
