// Command irrd serves the F-lite parallelizing compiler over HTTP/JSON: a
// long-running, resource-bounded compilation service on the library's
// cancellation layer. See package repro/internal/server for the endpoints
// and the error envelope.
//
// Usage:
//
//	irrd [-addr :8080] [-max-concurrent N] [-max-source-bytes N]
//	     [-max-query-steps N] [-max-run-steps N]
//	     [-request-timeout 60s] [-admit-timeout 10s]
//	     [-cache-bytes N] [-cache-off]
//	     [-pprof] [-log-json]
//
// Compile a bundled kernel:
//
//	curl -s localhost:8080/v1/compile -d '{"kernel":"trfd"}'
//
// Identical sources are served from the cross-request compilation cache
// (-cache-bytes budget, default 256MiB; -cache-off disables it), and
// identical in-flight requests coalesce onto one compilation. The
// X-Irrd-Cache response header reports hit, miss, coalesced or bypass.
//
// Scrape the always-on telemetry (Prometheus text exposition; per-endpoint
// latency histograms, per-phase and per-query-kind compile latency
// aggregated across requests):
//
//	curl -s localhost:8080/metrics
//
// Every request gets an X-Request-Id (client-supplied or generated),
// echoed on the response and on the per-request JSON log line. -pprof
// mounts /debug/pprof for live profiling; it is off by default.
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// in-flight compilations drain (their contexts stay live until
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission weight of concurrent compilations (0: GOMAXPROCS)")
	maxSourceBytes := flag.Int("max-source-bytes", 0, "per-request source size limit (0: 1MiB)")
	maxQuerySteps := flag.Int("max-query-steps", 0, "per-request query-propagation budget (0: 50M, <0: unlimited)")
	maxRunSteps := flag.Uint64("max-run-steps", 0, "simulated-machine step cap for /v1/run (0: 2G)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request compile/run deadline (0: 60s, <0: none)")
	admitTimeout := flag.Duration("admit-timeout", 0, "max queueing time before 429 (0: 10s, <0: reject immediately)")
	cacheBytes := flag.Int64("cache-bytes", 0, "compilation cache budget in bytes (0: 256MiB)")
	cacheOff := flag.Bool("cache-off", false, "disable the cross-request compilation cache")
	sharedOff := flag.Bool("shared-analysis-off", false, "disable the process-wide shared analysis cache (interned expressions, property verdicts)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain limit")
	pprofFlag := flag.Bool("pprof", false, "mount /debug/pprof (off by default; exposes runtime internals)")
	logText := flag.Bool("log-text", false, "per-request logs as text instead of JSON lines")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: irrd [flags]; see -h")
		os.Exit(2)
	}

	cb := *cacheBytes
	if *cacheOff {
		cb = -1
	}
	var handler slog.Handler = slog.NewJSONHandler(os.Stderr, nil)
	if *logText {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	srv := server.New(server.Config{
		MaxConcurrent:         *maxConcurrent,
		MaxSourceBytes:        *maxSourceBytes,
		MaxQuerySteps:         *maxQuerySteps,
		MaxRunSteps:           *maxRunSteps,
		RequestTimeout:        *requestTimeout,
		AdmitTimeout:          *admitTimeout,
		CacheBytes:            cb,
		EnablePprof:           *pprofFlag,
		Logger:                slog.New(handler),
		NoSharedAnalysisCache: *sharedOff,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("irrd: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("irrd: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	log.Printf("irrd: shutting down, draining in-flight requests (limit %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("irrd: drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("irrd: %v", err)
		os.Exit(1)
	}
	log.Printf("irrd: drained, exiting")
}
