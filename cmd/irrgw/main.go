// Command irrgw is the consistent-hash gateway over a fleet of irrd
// backends: it routes each request by the same content-addressed digest
// irrd keys its response cache with, so identical compiles always land on
// the same (cache-warm) backend, and the fleet scales horizontally
// without giving up irrd's cross-request cache hit rate.
//
// Usage:
//
//	irrgw -backends http://127.0.0.1:8081,http://127.0.0.1:8082 [-addr :8080]
//	      [-probe-interval 1s] [-probe-timeout 2s]
//	      [-fail-threshold 2] [-pass-threshold 2]
//	      [-max-attempts 3] [-retry-base 25ms] [-retry-max 500ms]
//	      [-max-body-bytes N] [-log-text]
//
// The gateway exposes irrd's own surface — POST /v1/compile, /v1/run,
// /v1/lint, GET /v1/kernels — plus its own GET /healthz (fleet view:
// ok / degraded / down with per-backend detail) and GET /metrics
// (Prometheus; irrgw_requests_total{backend,outcome}, routing-latency
// histograms, per-backend up/inflight gauges, ejection/readmission
// counters). Responses are relayed byte-for-byte from the backend and
// carry X-Irrd-Backend naming the backend that served them.
//
// Reliability: every backend's /healthz is probed on -probe-interval;
// -fail-threshold consecutive failures eject it from routing and
// -pass-threshold successes readmit it. Requests that hit a connect
// failure or upstream 5xx retry on the key's next-preferred backend with
// jittered exponential backoff (-retry-base doubling up to -retry-max,
// at most -max-attempts distinct backends), so losing one backend under
// load does not surface as a client error.
//
// SIGINT/SIGTERM drain gracefully as irrd does.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated irrd base URLs (required)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-check period per backend")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "health-check probe deadline")
	failThreshold := flag.Int("fail-threshold", 2, "consecutive probe failures that eject a backend")
	passThreshold := flag.Int("pass-threshold", 2, "consecutive probe successes that readmit a backend")
	maxAttempts := flag.Int("max-attempts", 3, "max distinct backends tried per request")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "first retry backoff (doubles per retry, jittered)")
	retryMax := flag.Duration("retry-max", 500*time.Millisecond, "retry backoff cap")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "proxied request body limit (0: 2MiB)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain limit")
	logText := flag.Bool("log-text", false, "per-request logs as text instead of JSON lines")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: irrgw -backends URL[,URL...] [flags]; see -h")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "irrgw: -backends is required (comma-separated irrd base URLs)")
		os.Exit(2)
	}

	var handler slog.Handler = slog.NewJSONHandler(os.Stderr, nil)
	if *logText {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	g, err := gateway.New(gateway.Config{
		Backends:      urls,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailThreshold: *failThreshold,
		PassThreshold: *passThreshold,
		MaxAttempts:   *maxAttempts,
		RetryBase:     *retryBase,
		RetryMax:      *retryMax,
		MaxBodyBytes:  *maxBodyBytes,
		Logger:        slog.New(handler),
	})
	if err != nil {
		log.Fatalf("irrgw: %v", err)
	}
	g.Start()
	defer g.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("irrgw: listening on %s, %d backends", *addr, len(urls))

	select {
	case err := <-errc:
		log.Fatalf("irrgw: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining

	log.Printf("irrgw: shutting down, draining in-flight requests (limit %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("irrgw: drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("irrgw: %v", err)
		os.Exit(1)
	}
	log.Printf("irrgw: drained, exiting")
}
