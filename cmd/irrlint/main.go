// Command irrlint runs the diagnostics engine and the parallelization
// verdict auditor over F-lite programs: source lints (use-before-def,
// unreachable code, degenerate DO loops, provable out-of-bounds
// subscripts, non-injective index arrays with the failing query's
// propagation trace) plus the IRR9xxx audit that re-derives every
// parallel/privatization verdict through an independent oracle.
//
// Usage:
//
//	irrlint [flags] file.fl [file2.fl dir ...]
//	irrlint [flags] -kernel trfd
//
// A directory argument counts as its *.fl files, sorted by name.
//
// Flags:
//
//	-mode full|noiaa|baseline   compiler configuration (default full)
//	-json                       emit one JSON document instead of text
//	-fail-on info|warn|error    exit 7 when a finding reaches this
//	                            severity (default error)
//	-timeout d                  abort after d (e.g. 30s)
//	-max-query-steps N          bound property-query propagation
//	-jobs N                     worker pool for the per-unit build phases
//
// Exit codes: 0 no findings at the -fail-on threshold, 1 internal error,
// 2 usage, 3 parse error, 4 analysis error, 5 resource limit, 6 canceled,
// 7 diagnostics at or above the threshold.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	irregular "repro"
	"repro/internal/comperr"
	"repro/internal/kernels"
	"repro/internal/lint"
)

func main() {
	mode := flag.String("mode", "full", "compiler configuration: full, noiaa or baseline")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of text")
	failOn := flag.String("fail-on", "error", "exit 7 when a finding reaches this severity: info, warn or error")
	kernel := flag.String("kernel", "", "lint a bundled kernel instead of a file")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0: none)")
	maxQuerySteps := flag.Int("max-query-steps", 0, "bound property-query propagation steps (0: unlimited)")
	jobs := flag.Int("jobs", 0, "worker pool size for the per-unit build phases (0: GOMAXPROCS)")
	flag.Parse()

	threshold, err := lint.ParseSeverity(*failOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "irrlint:", err)
		os.Exit(comperr.ExitUsage)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var m irregular.Mode
	switch *mode {
	case "full":
		m = irregular.Full
	case "noiaa":
		m = irregular.NoIAA
	case "baseline":
		m = irregular.Baseline
	default:
		fmt.Fprintf(os.Stderr, "irrlint: unknown mode %q\n", *mode)
		os.Exit(comperr.ExitUsage)
	}

	type input struct{ name, src string }
	var inputs []input
	switch {
	case *kernel != "":
		k, err := kernels.ByName(*kernel, kernels.Default)
		if err != nil {
			fail(err)
		}
		inputs = []input{{k.Name, k.Source}}
	case flag.NArg() >= 1:
		paths, err := collectPaths(flag.Args())
		if err != nil {
			fail(err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				fail(err)
			}
			inputs = append(inputs, input{p, string(data)})
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: irrlint [flags] file.fl [file2.fl dir ...]  (or -kernel name); see -h")
		os.Exit(comperr.ExitUsage)
	}

	opts := irregular.Options{
		Mode:   m,
		Jobs:   *jobs,
		Limits: irregular.Limits{MaxQuerySteps: *maxQuerySteps},
	}

	var items []item
	var firstErr error
	tripped := false
	for _, in := range inputs {
		diags, err := irregular.LintContext(ctx, in.src, opts)
		it := item{Name: in.name, Diags: diags, Counts: lint.Count(diags)}
		if err != nil {
			it.Error = err.Error()
			if firstErr == nil {
				firstErr = err
			}
		}
		if lint.AtLeast(diags, threshold) {
			tripped = true
		}
		items = append(items, it)
	}

	if *jsonOut {
		doc := struct {
			Schema string `json:"schema"`
			Items  []item `json:"items"`
		}{Schema: "irr-lint/1", Items: items}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		for _, it := range items {
			if it.Error != "" {
				fmt.Fprintf(os.Stderr, "irrlint: %s: %s\n", it.Name, it.Error)
				continue
			}
			printDiags(it.Name, it.Diags)
		}
		if !*jsonOut && firstErr == nil && !anyDiags(items) {
			fmt.Println("no findings")
		}
	}

	switch {
	case firstErr != nil:
		os.Exit(comperr.ExitCode(firstErr))
	case tripped:
		os.Exit(comperr.ExitDiagnostics)
	}
}

// item is one input's outcome in the JSON document.
type item struct {
	Name   string           `json:"name"`
	Error  string           `json:"error,omitempty"`
	Diags  []irregular.Diag `json:"diags"`
	Counts lint.Counts      `json:"counts"`
}

func anyDiags(items []item) bool {
	for _, it := range items {
		if len(it.Diags) > 0 {
			return true
		}
	}
	return false
}

// printDiags renders one input's findings in the canonical text format,
// prefixing each primary line with the input name.
func printDiags(name string, diags []irregular.Diag) {
	for _, d := range diags {
		loc := d.Span.Start.String()
		if d.Unit != "" {
			loc += " (in " + d.Unit + ")"
		}
		fmt.Printf("%s:%s: %s: %s [%s]\n", name, loc, d.Severity, d.Message, d.Code)
		for _, r := range d.Related {
			if r.Pos.IsValid() {
				fmt.Printf("    %s: %s\n", r.Pos, r.Message)
			} else {
				fmt.Printf("    %s\n", r.Message)
			}
		}
		if d.FixHint != "" {
			fmt.Printf("    hint: %s\n", d.FixHint)
		}
	}
}

// collectPaths expands the positional arguments: a regular file is taken
// as-is, a directory contributes its *.fl entries sorted by name.
func collectPaths(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			paths = append(paths, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		var fl []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".fl") {
				fl = append(fl, filepath.Join(arg, e.Name()))
			}
		}
		if len(fl) == 0 {
			return nil, fmt.Errorf("%s: no .fl files", arg)
		}
		sort.Strings(fl)
		paths = append(paths, fl...)
	}
	return paths, nil
}

// fail reports err and exits with the code of its error kind.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "irrlint:", err)
	os.Exit(comperr.ExitCode(err))
}
