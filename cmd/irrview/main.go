// Command irrview inspects the compiler's intermediate structures for an
// F-lite program: the token stream, the (formatted) AST, the flat
// control-flow graph with its natural loops, the hierarchical control
// graph, the single-indexed access classification of every loop, and the
// raw telemetry event stream of a full compilation (-trace).
//
// Usage:
//
//	irrview [-tokens] [-ast] [-cfg] [-hcg] [-access] file.fl
//	irrview -kernel tree -cfg
//	irrview -kernel trfd -trace
//	irrview -kernel trfd -trace-out trfd.trace.json   (load in Perfetto)
//
// With no selection flags everything except -trace is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	irregular "repro"
	"repro/internal/cfg"
	"repro/internal/core/singleindex"
	"repro/internal/dataflow"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/sem"
)

func main() {
	tokens := flag.Bool("tokens", false, "dump the token stream")
	ast := flag.Bool("ast", false, "dump the formatted AST")
	cfgF := flag.Bool("cfg", false, "dump the flat CFG and its natural loops")
	hcg := flag.Bool("hcg", false, "dump the hierarchical control graph")
	access := flag.Bool("access", false, "dump single-indexed access classification per loop")
	defs := flag.Bool("defs", false, "dump scalar reaching definitions per unit")
	trace := flag.Bool("trace", false, "compile with telemetry and dump the raw event stream")
	traceOut := flag.String("trace-out", "", "compile with telemetry and write a Chrome trace-event file (load in Perfetto; \"-\" for stdout)")
	kernel := flag.String("kernel", "", "inspect a bundled kernel instead of a file")
	flag.Parse()

	var src string
	switch {
	case *kernel != "":
		k, err := kernels.ByName(*kernel, kernels.Small)
		if err != nil {
			fail(err)
		}
		src = k.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: irrview [flags] file.fl  (or -kernel name); see -h")
		os.Exit(2)
	}

	all := !*tokens && !*ast && !*cfgF && !*hcg && !*access && !*defs && !*trace && *traceOut == ""

	// -trace / -trace-out run the whole pipeline (the other views work
	// pre-pipeline on the untransformed program), so handle them first and
	// on their own. Both use the debug-level recorder: the point of the
	// views is the full per-node propagation stream.
	if *trace || *traceOut != "" {
		res, err := irregular.Compile(src, irregular.Options{Trace: true})
		if err != nil {
			fail(err)
		}
		if *trace {
			fmt.Println("=== telemetry event stream ===")
			if err := res.TraceTo(os.Stdout); err != nil {
				fail(err)
			}
		}
		if *traceOut != "" {
			w := os.Stdout
			if *traceOut != "-" {
				f, err := os.Create(*traceOut)
				if err != nil {
					fail(err)
				}
				defer f.Close()
				w = f
			}
			if err := obs.WriteChromeTrace(w, res.Recorder.Events()); err != nil {
				fail(err)
			}
		}
	}

	if all || *tokens {
		dumpTokens(src)
	}

	prog, err := lang.Parse(src)
	if err != nil {
		fail(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		fail(err)
	}

	if all || *ast {
		fmt.Println("=== AST (formatted) ===")
		fmt.Print(lang.Format(prog))
		fmt.Println()
	}
	if all || *cfgF {
		dumpCFG(prog)
	}
	if all || *hcg {
		dumpHCG(prog)
	}
	if all || *access {
		dumpAccess(prog, info)
	}
	if all || *defs {
		dumpDefs(prog, info)
	}
}

// dumpDefs prints, for each scalar use, the statements whose definitions
// reach it (classic reaching-definitions, interprocedural effects via call
// summaries).
func dumpDefs(prog *lang.Program, info *sem.Info) {
	mod := dataflow.ComputeMod(info)
	for _, u := range prog.Units() {
		g := cfg.Build(u)
		rd := dataflow.ComputeReaching(g, info, mod)
		fmt.Printf("=== reaching definitions in %s ===\n", u.Name)
		for _, n := range g.Nodes {
			f := dataflow.NodeFacts(n)
			seen := map[string]bool{}
			for _, r := range f.ScalarReads {
				if seen[r] {
					continue
				}
				seen[r] = true
				var ids []string
				for _, d := range rd.DefsOf(n, r) {
					ids = append(ids, fmt.Sprintf("#%d", d.ID))
				}
				if len(ids) > 0 {
					fmt.Printf("  %-40s uses %-8s defined at %s\n", n, r, strings.Join(ids, " "))
				}
			}
		}
		fmt.Println()
	}
}

func dumpTokens(src string) {
	fmt.Println("=== tokens ===")
	toks, err := lang.Tokenize(src)
	if err != nil {
		fail(err)
	}
	line := 0
	for _, t := range toks {
		if t.Kind == lang.NEWLINE {
			fmt.Println()
			line = 0
			continue
		}
		if line > 0 {
			fmt.Print(" ")
		}
		fmt.Print(t)
		line++
	}
	fmt.Println()
}

func dumpCFG(prog *lang.Program) {
	for _, u := range prog.Units() {
		fmt.Printf("=== CFG of %s ===\n", u.Name)
		g := cfg.Build(u)
		for _, n := range g.Nodes {
			var succs []string
			for _, s := range n.Succs {
				succs = append(succs, fmt.Sprintf("#%d", s.ID))
			}
			fmt.Printf("  %-48s -> %s\n", n, strings.Join(succs, " "))
		}
		loops := g.NaturalLoops()
		fmt.Printf("  natural loops: %d\n", len(loops))
		for _, l := range loops {
			kind := "goto-formed"
			switch l.Stmt.(type) {
			case *lang.DoStmt:
				kind = "do"
			case *lang.WhileStmt:
				kind = "while"
			}
			fmt.Printf("    head #%d (%s), %d nodes\n", l.Head.ID, kind, len(l.Nodes))
		}
		fmt.Println()
	}
}

func dumpHCG(prog *lang.Program) {
	hp := cfg.BuildHCG(prog)
	for _, u := range prog.Units() {
		fmt.Printf("=== HCG of %s ===\n", u.Name)
		dumpSection(hp.Units[u], 1)
		fmt.Println()
	}
}

func dumpSection(g *cfg.HGraph, depth int) {
	ind := strings.Repeat("  ", depth)
	cyc := ""
	if g.Cyclic {
		cyc = " (cyclic: conservative summaries)"
	}
	fmt.Printf("%ssection%s\n", ind, cyc)
	for _, n := range g.Nodes {
		var succs []string
		for _, s := range n.Succs {
			succs = append(succs, fmt.Sprintf("h%d", s.ID))
		}
		fmt.Printf("%s  %-44s -> %s\n", ind, n, strings.Join(succs, " "))
		if n.Body != nil {
			dumpSection(n.Body, depth+2)
		}
	}
}

func dumpAccess(prog *lang.Program, info *sem.Info) {
	mod := dataflow.ComputeMod(info)
	for _, u := range prog.Units() {
		g := cfg.Build(u)
		for _, l := range g.NaturalLoops() {
			name := "goto-loop"
			switch s := l.Stmt.(type) {
			case *lang.DoStmt:
				name = "do " + s.Var.Name
			case *lang.WhileStmt:
				name = "while"
			}
			accs := singleindex.Find(g, l, info, mod)
			if len(accs) == 0 {
				continue
			}
			fmt.Printf("=== %s: %s @ node #%d ===\n", u.Name, name, l.Head.ID)
			for _, a := range accs {
				fmt.Printf("  %s(%s): evolution %s, %d writes, %d reads\n",
					a.Array, a.Index, a.ClassifyEvolution(), len(a.Writes), len(a.Reads))
				if cw := singleindex.CheckConsecutivelyWritten(a); cw != nil {
					dir := "increasing"
					if !cw.Increasing {
						dir = "decreasing"
					}
					fmt.Printf("    consecutively written (%s), reads covered: %v\n", dir, cw.ReadsCovered)
				}
				if st := singleindex.CheckStack(a); st != nil {
					fmt.Printf("    array stack, bottom %s, reset-first: %v\n",
						lang.FormatExpr(st.Bottom), st.ResetFirst)
				}
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "irrview:", err)
	os.Exit(1)
}
