package irregular

import (
	"context"
	"errors"
	"testing"
	"time"
)

// spinSrc runs long enough (several thousand interpreter steps) that the
// interpreter's periodic context poll is guaranteed to fire.
const spinSrc = `
program spin
  param n = 4000
  real a(n)
  integer i
  real total
  total = 0.0
  do i = 1, n
    a(i) = real(mod(i, 13))
  end do
  do i = 1, n
    total = total + a(i)
  end do
  print "total", total
end
`

func TestCompileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileContext(ctx, demoSrc, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v does not match context.Canceled", err)
	}
	// The other kinds must not match.
	for _, kind := range []error{ErrParse, ErrAnalysis, ErrResourceLimit} {
		if errors.Is(err, kind) {
			t.Errorf("cancellation error also matches %v", kind)
		}
	}
}

func TestCompileContextLive(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res, err := CompileContext(ctx, demoSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Compile(demoSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Format() != plain.Format() {
		t.Error("live-context output differs from Compile")
	}
}

func TestCompileErrorKinds(t *testing.T) {
	if _, err := Compile("not a program", Options{}); !errors.Is(err, ErrParse) {
		t.Errorf("parse failure: err = %v, want ErrParse", err)
	}
	_, err := Compile(demoSrc, Options{Limits: Limits{MaxSourceBytes: 8}})
	if !errors.Is(err, ErrResourceLimit) {
		t.Errorf("oversized source: err = %v, want ErrResourceLimit", err)
	}
}

func TestCompileBatchContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br := CompileBatchContext(ctx, []BatchInput{
		{Name: "a", Src: demoSrc},
		{Name: "b", Src: demoSrc},
	}, Options{})
	if len(br.Items) != 2 {
		t.Fatalf("got %d items, want 2", len(br.Items))
	}
	for _, it := range br.Items {
		if !errors.Is(it.Err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", it.Name, it.Err)
		}
	}
}

func TestRunContextCanceled(t *testing.T) {
	res, err := Compile(spinSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = res.RunContext(ctx, RunOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v does not match context.Canceled", err)
	}
	// The same result still runs fine under a live context: cancellation
	// left no residue in the compiled program.
	if _, err := res.RunContext(context.Background(), RunOptions{}); err != nil {
		t.Errorf("re-run after cancellation: %v", err)
	}
}

func TestRunContextStepLimit(t *testing.T) {
	res, err := Compile(spinSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = res.Run(RunOptions{MaxSteps: 10})
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("err = %v, want ErrResourceLimit", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("step-limit error also matches ErrCanceled: %v", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	res, err := Compile(spinSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline fire
	_, err = res.RunContext(ctx, RunOptions{})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}
