// Indirect-access example: the paper's Figure 3 (compressed column
// storage traversed through offset/length index arrays) and Figure 14 (an
// index-gathering loop enabling bounds and injectivity properties).
//
// The CCS loop parallelizes only through the offset–length test (§3.2.7),
// which needs the closed-form distance of offset() — derived by the
// demand-driven interprocedural array property analysis. The gather/use
// pair parallelizes through the injective test.
package main

import (
	"fmt"
	"log"

	irregular "repro"
)

// ccs is Figure 3: a sparse matrix in compressed column storage; the
// traversal writes each column's segment of data(), segments being
// adjacent because offset(i+1) = offset(i) + length(i).
const ccs = `
program ccs
  param n = 24
  param total = 200
  integer offset(n + 1), length(n)
  real data(total)
  integer i, j
  real sum

  do i = 1, n
    length(i) = 1 + mod(i, 6)
  end do
  offset(1) = 1
  do i = 1, n
    offset(i + 1) = offset(i) + length(i)
  end do

  ! Fig. 3(b): traverse the host array segment by segment.
  do i = 1, n
    do j = 1, length(i)
      data(offset(i) + j - 1) = real(i) + real(j) * 0.5
    end do
  end do

  sum = 0.0
  do i = 1, total
    sum = sum + data(i)
  end do
  print "ccs sum", sum
end
`

// gather is Figure 14: the indices of positive x() elements are gathered
// into ind(); afterwards ind[1:q] is injective with values in [1:p], which
// both parallelizes the use loop and privatizes the scratch arrays.
const gather = `
program gather
  param n = 16
  param p = 80
  integer ind(p)
  real x(p), y(p), z(n, p)
  integer k, i, j, q
  real sum

  do i = 1, p
    y(i) = real(mod(i * 11, 17)) - 8.0
  end do

  do k = 1, n
    do i = 1, p
      x(i) = y(i) + real(mod(k, 3))
    end do
    q = 0
    do i = 1, p
      if (x(i) > 0.0) then
        q = q + 1
        ind(q) = i
      end if
    end do
    do j = 1, q
      z(k, ind(j)) = x(ind(j)) * y(ind(j))
    end do
  end do

  sum = 0.0
  do k = 1, n
    do i = 1, p
      sum = sum + z(k, i)
    end do
  end do
  print "gather sum", sum
end
`

func main() {
	for _, c := range []struct{ name, src string }{
		{"Figure 3: CCS offset-length", ccs},
		{"Figure 14: index gathering", gather},
	} {
		fmt.Printf("=== %s ===\n", c.name)
		res, err := irregular.Compile(c.src, irregular.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Summary())

		seq, err := res.Run(irregular.RunOptions{Processors: 1})
		if err != nil {
			log.Fatal(err)
		}
		par, err := res.Run(irregular.RunOptions{Processors: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated: %d cycles serial, %d cycles on 8 processors (%.2fx)\n\n",
			seq.Time, par.Time, float64(seq.Time)/float64(par.Time))
	}
}
