// Privatization example: the paper's two motivating patterns from Fig. 1.
//
//   - Fig. 1(a): x() is filled through a linked-list traversal (a WHILE
//     loop) with a single incrementing index — the consecutively-written
//     analysis (§2.2) proves the per-iteration write section [1:p], making
//     x privatizable for the outer loop.
//   - Fig. 1(b): t() is used as an explicit stack in the loop body — the
//     array-stack analysis (§2.3, Table 1) proves the last-written-first-
//     read discipline, making t privatizable.
//
// Both loops stay serial when the irregular-access analyses are disabled
// (the NoIAA configuration), which this example demonstrates side by side.
package main

import (
	"fmt"
	"log"

	irregular "repro"
)

// fig1a is the shape of the paper's Figure 1(a): a linked-list-driven fill
// of x() followed by reads of the filled prefix, all inside the outer do k.
const fig1a = `
program fig1a
  param n = 32
  integer link(n, n), cnd(n, n)
  real x(n), y(n), z(n, n)
  integer k, i, j, p
  real total

  do i = 1, n
    y(i) = real(mod(i * 5, 11))
    do j = 1, n
      link(i, j) = mod(i + j, n / 2)
      cnd(i, j) = mod(i * j, 3)
    end do
  end do

  do k = 1, n
    p = 0
    i = link(1, k)
    do while (i != 0 and p < n)
      p = p + 1
      x(p) = y(i)
      i = link(i, k)
      if (cnd(k, i + 1) != 0) then
        if (p >= 1) then
          x(p) = y(i + 1)
        end if
      end if
    end do
    do j = 1, p
      z(k, j) = x(j)
    end do
  end do

  total = 0.0
  do i = 1, n
    do j = 1, n
      total = total + z(i, j)
    end do
  end do
  print "fig1a total", total
end
`

// fig1b is the shape of the paper's Figure 1(b): t() used as an array
// stack inside the body of do i.
const fig1b = `
program fig1b
  param n = 48
  param m = 64
  real t(m), a(m), b(n, m)
  integer i, j, p
  real total

  do j = 1, m
    a(j) = real(mod(j * 7, 9)) - 3.0
  end do

  do i = 1, n
    p = 0
    do j = 1, m
      if (a(j) > 0.0) then
        p = p + 1
        t(p) = a(j) + real(i)
      else
        if (p >= 1) then
          b(i, j) = t(p)
          p = p - 1
        end if
      end if
    end do
  end do

  total = 0.0
  do i = 1, n
    do j = 1, m
      total = total + b(i, j)
    end do
  end do
  print "fig1b total", total
end
`

func show(name, src string) {
	fmt.Printf("=== %s ===\n", name)
	for _, mode := range []irregular.Mode{irregular.Full, irregular.NoIAA} {
		res, err := irregular.Compile(src, irregular.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		label := "with irregular access analysis"
		if mode == irregular.NoIAA {
			label = "without (traditional Polaris)"
		}
		fmt.Printf("--- %s ---\n", label)
		fmt.Print(res.Summary())
	}
	fmt.Println()
}

func main() {
	show("Figure 1(a): consecutively-written x()", fig1a)
	show("Figure 1(b): array stack t()", fig1b)
}
