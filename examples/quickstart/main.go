// Quickstart: compile a small F-lite program with the irregular-access
// analyses, show what parallelized and why, and run it on the simulated
// parallel machine at several processor counts.
package main

import (
	"fmt"
	"log"
	"os"

	irregular "repro"
)

// src gathers the indices of positive elements (an index-gathering loop,
// paper §4) and then updates through the gathered indices — parallel only
// because the injectivity of ind() is provable.
const src = `
program quickstart
  param n = 4096
  integer ind(n)
  real x(n), y(n)
  integer i, j, q
  real total

  do i = 1, n
    x(i) = real(mod(i * 7, 13)) - 4.0
  end do

  q = 0
  do i = 1, n
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do

  do j = 1, q
    y(ind(j)) = x(ind(j)) * 2.0
  end do

  total = 0.0
  do i = 1, n
    total = total + y(i)
  end do
  print "total", total
end
`

func main() {
	res, err := irregular.Compile(src, irregular.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== compilation report ===")
	fmt.Print(res.Summary())

	fmt.Println("=== transformed program ===")
	fmt.Print(res.Format())

	fmt.Println("=== simulated execution ===")
	for _, p := range []int{1, 2, 4, 8} {
		out, err := res.Run(irregular.RunOptions{Processors: p, Out: os.Stdout})
		if err != nil {
			log.Fatal(err)
		}
		total, _ := out.Global("total")
		fmt.Printf("P=%d: %d cycles, %d parallel regions, total=%g\n",
			p, out.Time, out.ParallelRegions, total)
	}
}
