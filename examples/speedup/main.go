// Speedup example: run one bundled benchmark kernel across processor
// counts and compiler configurations, printing a small Fig. 16-style
// table. Pass a kernel name (trfd, dyfesm, bdna, p3m, tree) as the first
// argument; the default is tree.
package main

import (
	"fmt"
	"log"
	"os"

	irregular "repro"
)

func main() {
	name := "tree"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	src, err := irregular.KernelSource(name)
	if err != nil {
		log.Fatalf("%v (available: %v)", err, irregular.Kernels())
	}

	procs := []int{1, 2, 4, 8, 16, 32}
	fmt.Printf("%s on the simulated Origin 2000\n", name)
	fmt.Printf("%-28s", "configuration")
	for _, p := range procs {
		fmt.Printf(" %7s", fmt.Sprintf("P=%d", p))
	}
	fmt.Println()

	for _, cfg := range []struct {
		label string
		mode  irregular.Mode
	}{
		{"Polaris + irregular analysis", irregular.Full},
		{"Polaris (traditional)", irregular.NoIAA},
		{"affine-only baseline", irregular.Baseline},
	} {
		res, err := irregular.Compile(src, irregular.Options{Mode: cfg.mode})
		if err != nil {
			log.Fatal(err)
		}
		base, err := res.Run(irregular.RunOptions{Processors: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s", cfg.label)
		for _, p := range procs {
			out, err := res.Run(irregular.RunOptions{Processors: p})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.2f", float64(base.Time)/float64(out.Time))
		}
		fmt.Println()
	}
}
