// Package api defines the irrd wire contract: the typed request/response
// DTOs of the /v1 endpoints, the unified error envelope, the HTTP headers
// the service family uses, the kind→status table, and the content-addressed
// affinity digest of a compile request.
//
// It is the one definition shared by every party that speaks the protocol —
// internal/server (irrd) implements it, internal/gateway (irrgw) routes by
// it, internal/servebench drives it, and the typed Client in client.go
// consumes it — so the shape of a request lives in exactly one place.
//
// # Error envelope
//
// Every failure, from every endpoint, is one JSON document:
//
//	{"error": {"kind": "...", "message": "...", "request_id": "..."}}
//
// Kind is drawn from the comperr taxonomy plus the transport-level kinds
// the services add (over_capacity, unavailable, internal), and maps to the
// HTTP status via StatusForKind — the table DESIGN.md documents.
package api

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/comperr"
	"repro/internal/kernels"
	"repro/internal/lint"
)

// The protocol headers.
const (
	// RequestIDHeader carries the request correlation ID: accepted from
	// the client (or generated), echoed on the response, logged, and
	// stamped into the compilation's telemetry recorder.
	RequestIDHeader = "X-Request-Id"
	// CacheHeader reports how irrd's cross-request compilation cache
	// satisfied a request: "hit", "miss", "coalesced" or "bypass".
	CacheHeader = "X-Irrd-Cache"
	// BackendHeader is stamped by the irrgw gateway: the backend
	// (host:port) that actually served the proxied request.
	BackendHeader = "X-Irrd-Backend"
)

// CompileRequest is the body of POST /v1/compile and POST /v1/lint, and
// the compilation half of POST /v1/run. Exactly one of Src and Kernel
// must be set (Normalize enforces and resolves this).
type CompileRequest struct {
	// Src is F-lite source text.
	Src string `json:"src,omitempty"`
	// Kernel names a bundled benchmark to compile instead of Src.
	Kernel string `json:"kernel,omitempty"`
	// Mode is "full" (default), "noiaa" or "baseline".
	Mode string `json:"mode,omitempty"`
	// Intraprocedural restricts the property analysis to single units.
	Intraprocedural bool `json:"intraprocedural,omitempty"`
	// Interchange enables the loop-interchange companion pass.
	Interchange bool `json:"interchange,omitempty"`
	// Explain adds the per-loop decision log to the response.
	Explain bool `json:"explain,omitempty"`
	// Trace compiles at debug telemetry level and adds a Chrome
	// trace-event document (loadable in Perfetto) to the response.
	Trace bool `json:"trace,omitempty"`
}

// Normalize validates the request shape and resolves a Kernel reference to
// its source text: afterwards Src holds the program to compile. Errors are
// ErrParse-classified (the caller maps them to 400 via the status table).
func (r *CompileRequest) Normalize() error {
	switch {
	case r.Src != "" && r.Kernel != "":
		return comperr.Parsef(`"src" and "kernel" are mutually exclusive`)
	case r.Src == "" && r.Kernel == "":
		return comperr.Parsef(`one of "src" or "kernel" is required`)
	case r.Kernel != "":
		k, err := kernels.ByName(r.Kernel, kernels.Default)
		if err != nil {
			return comperr.Parsef("unknown kernel %q", r.Kernel)
		}
		r.Src = k.Source
	}
	switch strings.ToLower(r.Mode) {
	case "", "full", "noiaa", "baseline":
	default:
		return comperr.Parsef("unknown mode %q", r.Mode)
	}
	return nil
}

// ResolvedMode is the canonical lower-case mode name, with "" meaning
// "full".
func (r *CompileRequest) ResolvedMode() string {
	mode := strings.ToLower(r.Mode)
	if mode == "" {
		mode = "full"
	}
	return mode
}

// AffinityDigest is the content-addressed identity of the compiled
// artifact: a hex SHA-256 over the length-prefixed request fields that
// change what the compiler produces — the (Normalize-resolved) source
// text, the mode, the analysis switches, and whether the diagnostics
// phase runs. Telemetry level, request IDs and run options are excluded:
// they never change the compiled result.
//
// irrd derives its cross-request cache key from this digest, and irrgw
// routes by it, so identical compiles land on the backend whose caches
// are already warm for them.
func (r *CompileRequest) AffinityDigest(lintPhase bool) string {
	return DigestParts(
		r.Src,
		r.ResolvedMode(),
		strconv.FormatBool(r.Intraprocedural),
		strconv.FormatBool(r.Interchange),
		strconv.FormatBool(lintPhase),
	)
}

// DigestParts hashes parts into a hex digest with unambiguous boundaries
// (each part is length-prefixed, so ("ab","c") and ("a","bc") differ).
func DigestParts(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CompileResponse answers POST /v1/compile. Metrics is the irr-metrics/1
// document — the same schema irrc -metrics writes. Trace, when requested,
// is the Chrome trace-event JSON array.
type CompileResponse struct {
	Summary   string          `json:"summary"`
	Metrics   json.RawMessage `json:"metrics"`
	Explain   string          `json:"explain,omitempty"`
	Trace     json.RawMessage `json:"trace,omitempty"`
	RequestID string          `json:"request_id,omitempty"`
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	CompileRequest
	// Processors is the virtual processor count (default 1).
	Processors int `json:"processors,omitempty"`
	// Profile is "origin2000" (default) or "challenge".
	Profile string `json:"profile,omitempty"`
	// MaxSteps bounds the simulated execution; it is clamped to the
	// server's MaxRunSteps.
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// BoundsCheckElim applies bounds-check elimination before running.
	BoundsCheckElim bool `json:"bounds_check_elim,omitempty"`
}

// RunResponse answers POST /v1/run.
type RunResponse struct {
	Time            uint64 `json:"time"`
	ParallelRegions int    `json:"parallel_regions"`
	Output          string `json:"output,omitempty"`
	OutputTruncated bool   `json:"output_truncated,omitempty"`
	Summary         string `json:"summary"`
}

// LintResponse answers POST /v1/lint. Diags is the full structured finding
// list (IRRxxxx codes, severities, spans, related notes, fix hints);
// Rendered is the same in the canonical text format.
type LintResponse struct {
	Diags    []lint.Diag `json:"diags"`
	Counts   lint.Counts `json:"counts"`
	Rendered string      `json:"rendered"`
}

// KernelInfo is one bundled benchmark program.
type KernelInfo struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
}

// KernelsResponse answers GET /v1/kernels.
type KernelsResponse struct {
	Kernels []KernelInfo `json:"kernels"`
}

// Healthz answers irrd's GET /healthz. The cache and shared-analysis
// gauges are omitted while zero (cache empty or disabled).
type Healthz struct {
	Status              string `json:"status"`
	Inflight            int64  `json:"inflight"`
	CacheEntries        int64  `json:"cache_entries,omitempty"`
	CacheBytes          int64  `json:"cache_bytes,omitempty"`
	SharedInternEntries int64  `json:"shared_intern_entries,omitempty"`
	SharedMemoEntries   int64  `json:"shared_memo_entries,omitempty"`
}

// BackendHealth is one backend's state in the gateway's GET /healthz.
type BackendHealth struct {
	Name                string `json:"name"`
	URL                 string `json:"url"`
	Up                  bool   `json:"up"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	Inflight            int64  `json:"inflight"`
}

// GatewayHealthz answers irrgw's GET /healthz: "ok" with every backend
// live, "degraded" with some ejected, "down" (HTTP 503) with none live.
type GatewayHealthz struct {
	Status   string          `json:"status"`
	Live     int             `json:"live"`
	Backends []BackendHealth `json:"backends"`
}

// The error kinds of the envelope: the comperr taxonomy plus the
// transport-level kinds the services add.
const (
	KindParse         = "parse"          // 400: the request or program did not parse
	KindAnalysis      = "analysis"       // 422: semantic analysis / transformation failure
	KindResourceLimit = "resource_limit" // 413: a configured bound was exceeded
	KindOverCapacity  = "over_capacity"  // 429: admission control rejected the request
	KindCanceled      = "canceled"       // 504: context cancellation or deadline expiry
	KindUnavailable   = "unavailable"    // 503: the gateway found no live backend
	KindInternal      = "internal"       // 500: everything unclassified, incl. recovered panics
)

// StatusForKind maps an envelope kind to its HTTP status — the one table
// every /v1 endpoint (irrd and irrgw alike) answers failures from.
func StatusForKind(kind string) int {
	switch kind {
	case KindParse:
		return http.StatusBadRequest
	case KindAnalysis:
		return http.StatusUnprocessableEntity
	case KindResourceLimit:
		return http.StatusRequestEntityTooLarge
	case KindOverCapacity:
		return http.StatusTooManyRequests
	case KindCanceled:
		return http.StatusGatewayTimeout
	case KindUnavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ErrorBody is the payload of the unified error envelope.
type ErrorBody struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx /v1 response.
type ErrorEnvelope struct {
	Err ErrorBody `json:"error"`
}

// WriteJSON writes v as an indented JSON response. The encode error is
// deliberately dropped: the status line is already committed.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// WriteError writes the unified error envelope with the status of kind.
func WriteError(w http.ResponseWriter, kind, message, requestID string) {
	WriteJSON(w, StatusForKind(kind), ErrorEnvelope{Err: ErrorBody{
		Kind:      kind,
		Message:   message,
		RequestID: requestID,
	}})
}
