package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		name    string
		req     CompileRequest
		wantErr string // substring; "" means success
	}{
		{"src only", CompileRequest{Src: "program p\nend\n"}, ""},
		{"kernel only", CompileRequest{Kernel: "trfd"}, ""},
		{"both", CompileRequest{Src: "x", Kernel: "trfd"}, "mutually exclusive"},
		{"neither", CompileRequest{}, "required"},
		{"unknown kernel", CompileRequest{Kernel: "nope"}, `unknown kernel "nope"`},
		{"unknown mode", CompileRequest{Src: "x", Mode: "turbo"}, `unknown mode "turbo"`},
		{"known mode", CompileRequest{Src: "x", Mode: "NoIAA"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Normalize()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Normalize: %v", err)
				}
				if tc.req.Src == "" {
					t.Error("normalized request has no source")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestAffinityDigest(t *testing.T) {
	base := CompileRequest{Src: "program p\nend\n"}
	d := base.AffinityDigest(false)
	if len(d) != 64 {
		t.Fatalf("digest %q is not hex sha256", d)
	}
	if base.AffinityDigest(false) != d {
		t.Error("digest is not deterministic")
	}
	// The default mode spells identically whether implicit or explicit.
	full := base
	full.Mode = "Full"
	if full.AffinityDigest(false) != d {
		t.Error("mode \"Full\" and \"\" digest differently")
	}
	// Every artifact-changing field moves the digest.
	variants := []CompileRequest{
		{Src: "program q\nend\n"},
		{Src: base.Src, Mode: "noiaa"},
		{Src: base.Src, Intraprocedural: true},
		{Src: base.Src, Interchange: true},
	}
	seen := map[string]bool{d: true, base.AffinityDigest(true): true}
	if len(seen) != 2 {
		t.Error("lint phase does not move the digest")
	}
	for i, v := range variants {
		vd := v.AffinityDigest(false)
		if seen[vd] {
			t.Errorf("variant %d collides", i)
		}
		seen[vd] = true
	}
	// Explain/trace are telemetry-only: the compiled artifact is the same.
	dbg := base
	dbg.Explain, dbg.Trace = true, true
	if dbg.AffinityDigest(false) != d {
		t.Error("explain/trace changed the affinity digest")
	}
}

func TestDigestPartsBoundaries(t *testing.T) {
	if DigestParts("ab", "c") == DigestParts("a", "bc") {
		t.Error("part boundaries are ambiguous")
	}
	if DigestParts("x") != DigestParts("x") {
		t.Error("digest is not deterministic")
	}
}

func TestStatusForKind(t *testing.T) {
	want := map[string]int{
		KindParse:         http.StatusBadRequest,
		KindAnalysis:      http.StatusUnprocessableEntity,
		KindResourceLimit: http.StatusRequestEntityTooLarge,
		KindOverCapacity:  http.StatusTooManyRequests,
		KindCanceled:      http.StatusGatewayTimeout,
		KindUnavailable:   http.StatusServiceUnavailable,
		KindInternal:      http.StatusInternalServerError,
		"anything else":   http.StatusInternalServerError,
	}
	for kind, status := range want {
		if got := StatusForKind(kind); got != status {
			t.Errorf("StatusForKind(%q) = %d, want %d", kind, got, status)
		}
	}
}

func TestWriteErrorEnvelope(t *testing.T) {
	rr := httptest.NewRecorder()
	WriteError(rr, KindParse, "bad program", "req-7")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rr.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Kind != KindParse || env.Err.Message != "bad program" || env.Err.RequestID != "req-7" {
		t.Errorf("envelope = %+v", env.Err)
	}
	// The wire field names are the contract.
	var raw map[string]map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if raw["error"]["kind"] != "parse" || raw["error"]["request_id"] != "req-7" {
		t.Errorf("wire shape = %v", raw)
	}
}
