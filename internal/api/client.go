package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a small typed HTTP client for the /v1 wire contract. It is
// context-aware (every call takes a context; cancellation aborts the
// in-flight request) and request-ID propagating: an ID attached with
// WithRequestID travels on the X-Request-Id header of every call made
// under that context.
//
// The gateway's proxy and health paths and the servebench load drivers
// use it instead of hand-rolled http.Post calls.
type Client struct {
	base string
	hc   *http.Client
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection
// pool, transport, timeouts). The default is a plain &http.Client{}.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// NewClient builds a client for the service at base (e.g.
// "http://127.0.0.1:8080"); a trailing slash is trimmed.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the service base URL the client targets.
func (c *Client) BaseURL() string { return c.base }

// ridKey carries the propagated request ID through a context.
type ridKey struct{}

// WithRequestID attaches a request correlation ID to ctx; every Client
// call under the returned context sends it as X-Request-Id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom returns the ID attached with WithRequestID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// Meta carries the response metadata of a typed call: the HTTP status and
// the protocol headers (request ID echo, cache outcome, serving backend).
type Meta struct {
	Status    int
	RequestID string
	Cache     string
	Backend   string
}

// StatusError is a non-2xx response decoded from the unified error
// envelope. Status is the HTTP status; the embedded ErrorBody carries the
// kind, message and request ID.
type StatusError struct {
	Status int
	ErrorBody
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s: %s (status %d)", e.Kind, e.Message, e.Status)
}

// do round-trips one JSON call. in == nil issues a GET; otherwise in is
// POSTed. A non-2xx response becomes a *StatusError; a 2xx response is
// decoded into out when out != nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (*Meta, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := RequestIDFrom(ctx); id != "" {
		req.Header.Set(RequestIDHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	meta := &Meta{
		Status:    resp.StatusCode,
		RequestID: resp.Header.Get(RequestIDHeader),
		Cache:     resp.Header.Get(CacheHeader),
		Backend:   resp.Header.Get(BackendHeader),
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return meta, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return meta, decodeStatusError(resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return meta, fmt.Errorf("%s %s: decoding response: %w", method, path, err)
		}
	}
	return meta, nil
}

// decodeStatusError recovers the envelope from a failure body, falling
// back to a synthesized envelope when the body is not one (a proxy error
// page, a truncated response).
func decodeStatusError(status int, body []byte) *StatusError {
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Err.Kind != "" {
		return &StatusError{Status: status, ErrorBody: env.Err}
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 256 {
		msg = msg[:256]
	}
	return &StatusError{Status: status, ErrorBody: ErrorBody{
		Kind:    KindInternal,
		Message: fmt.Sprintf("status %d: %s", status, msg),
	}}
}

// Compile posts a compile request.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, *Meta, error) {
	var out CompileResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/compile", req, &out)
	if err != nil {
		return nil, meta, err
	}
	return &out, meta, nil
}

// Run posts a compile-and-execute request.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, *Meta, error) {
	var out RunResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/run", req, &out)
	if err != nil {
		return nil, meta, err
	}
	return &out, meta, nil
}

// Lint posts a compile-with-diagnostics request.
func (c *Client) Lint(ctx context.Context, req CompileRequest) (*LintResponse, *Meta, error) {
	var out LintResponse
	meta, err := c.do(ctx, http.MethodPost, "/v1/lint", req, &out)
	if err != nil {
		return nil, meta, err
	}
	return &out, meta, nil
}

// Kernels lists the bundled benchmark kernels.
func (c *Client) Kernels(ctx context.Context) (*KernelsResponse, error) {
	var out KernelsResponse
	if _, err := c.do(ctx, http.MethodGet, "/v1/kernels", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes GET /healthz — the gateway's active health checks ride
// on this call. A non-200 comes back as a *StatusError.
func (c *Client) Healthz(ctx context.Context) (*Healthz, error) {
	var out Healthz
	if _, err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Counters scrapes the counter map of the JSON /metrics document
// (Accept: application/json).
func (c *Client) Counters(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, decodeStatusError(resp.StatusCode, body)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Counters, nil
}

// Forward relays a raw request body to path and returns the un-decoded
// response: the proxy path of the gateway, which must preserve backend
// responses byte-for-byte (re-encoding JSON would break the gateway's
// byte-identity guarantee). The Content-Type, Accept and X-Request-Id
// headers are copied from hdr; the caller owns resp.Body.
func (c *Client) Forward(ctx context.Context, method, path string, body []byte, hdr http.Header) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", RequestIDHeader} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return c.hc.Do(req)
}
