package api_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/server"
)

const demoSrc = `
program demo
  param n = 32
  real a(n), b(n)
  integer i
  do i = 1, n
    b(i) = real(i)
  end do
  do i = 1, n
    a(i) = b(i) * 2.0
  end do
  print "done", a(1)
end
`

func newClient(t *testing.T) *api.Client {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}))
	t.Cleanup(ts.Close)
	return api.NewClient(ts.URL)
}

func TestClientCompileRoundTrip(t *testing.T) {
	c := newClient(t)
	ctx := api.WithRequestID(context.Background(), "client-test-1")
	resp, meta, err := c.Compile(ctx, api.CompileRequest{Src: demoSrc})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Summary, "PARALLEL") {
		t.Errorf("summary lacks a parallel loop:\n%s", resp.Summary)
	}
	if resp.RequestID != "client-test-1" {
		t.Errorf("request ID did not propagate into the body: %q", resp.RequestID)
	}
	if meta.RequestID != "client-test-1" {
		t.Errorf("request ID not echoed on the header: %q", meta.RequestID)
	}
	if meta.Cache != "miss" {
		t.Errorf("first compile cache outcome = %q, want miss", meta.Cache)
	}
	if _, meta2, err := c.Compile(ctx, api.CompileRequest{Src: demoSrc}); err != nil || meta2.Cache != "hit" {
		t.Errorf("second compile = %v, cache %q; want hit", err, meta2.Cache)
	}
}

func TestClientRunAndLintAndKernels(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	rr, _, err := c.Run(ctx, api.RunRequest{
		CompileRequest: api.CompileRequest{Src: demoSrc},
		Processors:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Time == 0 {
		t.Error("zero simulated time")
	}
	lr, _, err := c.Lint(ctx, api.CompileRequest{Src: demoSrc})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Diags == nil {
		t.Error("diags must be present (empty, not null) for a clean program")
	}
	ks, err := c.Kernels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Kernels) == 0 {
		t.Error("no kernels listed")
	}
	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" {
		t.Errorf("healthz = %+v, %v", h, err)
	}
	cnt, err := c.Counters(ctx)
	if err != nil || cnt["irrd_requests_total"] < 1 {
		t.Errorf("counters = %v, %v", cnt, err)
	}
}

func TestClientStatusError(t *testing.T) {
	c := newClient(t)
	ctx := api.WithRequestID(context.Background(), "err-test")
	_, _, err := c.Compile(ctx, api.CompileRequest{Src: "this is not f-lite"})
	var se *api.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *api.StatusError", err, err)
	}
	if se.Status != 400 || se.Kind != api.KindParse {
		t.Errorf("status error = %+v", se)
	}
	if se.RequestID != "err-test" {
		t.Errorf("envelope request_id = %q, want err-test", se.RequestID)
	}
}

func TestClientContextCancellation(t *testing.T) {
	c := newClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Compile(ctx, api.CompileRequest{Src: demoSrc}); err == nil {
		t.Fatal("compile under a canceled context succeeded")
	}
}
