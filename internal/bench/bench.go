// Package bench regenerates the paper's evaluation artifacts from the
// bundled kernels: Table 2 (compilation time and the share spent in array
// property analysis, plus sequential execution time), Table 3 (the loops
// with irregular accesses, the properties found and the tests used), and
// Fig. 16 (speedup series of the three compiler configurations on the
// simulated Origin 2000, plus DYFESM on the simulated Challenge).
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/interp"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// CompileMetrics compiles every kernel (Full mode, reorganized phase order)
// with telemetry on and returns one metrics document per program — the
// payload of `irrbench -metrics`. The kernels compile as one batch over a
// worker pool of jobs goroutines (0: GOMAXPROCS); the documents are the
// same for every job count.
func CompileMetrics(size kernels.Size, jobs int) (map[string]*pipeline.Metrics, error) {
	br := pipeline.CompileBatch(kernelInputs(size), parallel.Full, pipeline.Reorganized,
		pipeline.Options{Recorder: obs.New(), Jobs: jobs})
	if err := br.Err(); err != nil {
		return nil, err
	}
	out := map[string]*pipeline.Metrics{}
	for _, it := range br.Items {
		out[it.Name] = it.Result.Metrics()
	}
	return out, nil
}

func kernelInputs(size kernels.Size) []pipeline.BatchInput {
	var ins []pipeline.BatchInput
	for _, k := range kernels.All(size) {
		ins = append(ins, pipeline.BatchInput{Name: k.Name, Src: k.Source})
	}
	return ins
}

// Table2Row is one program's compilation and sequential-execution record.
type Table2Row struct {
	Program      string
	LoC          int
	CompileTime  time.Duration
	PropertyTime time.Duration
	OverheadPct  float64
	// SeqCycles is the simulated sequential execution time.
	SeqCycles uint64
	// Queries and GatherHits summarize the property-analysis work.
	Queries    int
	GatherHits int
}

// Table2 compiles and serially executes every kernel.
func Table2(size kernels.Size) ([]Table2Row, error) {
	var rows []Table2Row
	for _, k := range kernels.All(size) {
		res, err := pipeline.Compile(k.Source, parallel.Full, pipeline.Reorganized)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		in := interp.New(res.Info, interp.Options{Machine: machine.New(machine.Origin2000, 1)})
		if err := in.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		rows = append(rows, Table2Row{
			Program:      k.Name,
			LoC:          res.LoC,
			CompileTime:  res.CompileTime,
			PropertyTime: res.PropertyTime,
			OverheadPct:  100 * float64(res.PropertyTime) / float64(max(int64(1), int64(res.CompileTime))),
			SeqCycles:    in.Machine().Time(),
			Queries:      res.PropertyStats.Queries,
			GatherHits:   res.PropertyStats.GatherHits,
		})
	}
	return rows, nil
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: compilation time and array property analysis overhead\n")
	fmt.Fprintf(&sb, "%-8s %6s %14s %14s %9s %12s %8s\n",
		"program", "LoC", "compile", "prop.analysis", "overhead", "seq.cycles", "queries")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %6d %14s %14s %8.1f%% %12d %8d\n",
			r.Program, r.LoC,
			r.CompileTime.Round(time.Microsecond),
			r.PropertyTime.Round(time.Microsecond),
			r.OverheadPct, r.SeqCycles, r.Queries)
	}
	return sb.String()
}

// Table3Row is one analyzed loop of one program.
type Table3Row struct {
	Program string
	Loop    string
	// NewlyParallel marks loops parallel only with irregular access
	// analysis (the paper's "*" loops).
	NewlyParallel bool
	Parallel      bool
	// Properties lists the index-array properties the verdicts used.
	Properties []string
	// Tests lists the dependence tests that fired (array:test).
	Tests []string
	// PrivReasons lists privatized arrays with their technique.
	PrivReasons []string
	// PctSeq is the loop's share of sequential execution time.
	PctSeq float64
	// PctPar32 is the loop's share of total execution time at 32
	// processors when the loop is NOT parallelized (compiled without
	// irregular access analysis) — the paper's column eleven, showing how
	// a small serial loop grows into the bottleneck (TRFD: 5% → 24%).
	PctPar32 float64
}

// Table3 reports, for every kernel, the target irregular loops: whether
// they parallelize, with which properties/tests, and their share of
// sequential time.
func Table3(size kernels.Size) ([]Table3Row, error) {
	var rows []Table3Row
	for _, k := range kernels.All(size) {
		full, err := pipeline.Compile(k.Source, parallel.Full, pipeline.Reorganized)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		noiaa, err := pipeline.Compile(k.Source, parallel.NoIAA, pipeline.Reorganized)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		serialWithout := map[string]bool{}
		noiaaByName := map[string]*parallel.LoopReport{}
		for _, r := range noiaa.Reports {
			if !r.Parallel {
				serialWithout[r.Name] = true
			}
			noiaaByName[r.Name] = r
		}

		// Residual share at 32 processors without IAA: track the target
		// loops (serial there) in a parallel run of the NoIAA program.
		noiaaTracked := map[*lang.DoStmt]bool{}
		for _, r := range full.Reports {
			if r.Parallel {
				if nr := noiaaByName[r.Name]; nr != nil && !nr.Parallel {
					noiaaTracked[nr.Loop] = true
				}
			}
		}
		var par32Total uint64
		par32Cycles := map[*lang.DoStmt]uint64{}
		if len(noiaaTracked) > 0 {
			in32 := interp.New(noiaa.Info, interp.Options{
				Machine:    machine.New(machine.Origin2000, 32),
				TrackLoops: noiaaTracked,
			})
			if err := in32.Run(); err != nil {
				return nil, fmt.Errorf("%s (par32): %w", k.Name, err)
			}
			par32Total = in32.Machine().Time()
			par32Cycles = in32.LoopCycles()
		}

		// Track cycles of every parallel loop in a sequential run.
		tracked := map[*lang.DoStmt]bool{}
		for _, r := range full.Reports {
			if r.Parallel {
				tracked[r.Loop] = true
			}
		}
		in := interp.New(full.Info, interp.Options{
			Machine:    machine.New(machine.Origin2000, 1),
			TrackLoops: tracked,
		})
		if err := in.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		total := in.Machine().Time()
		cycles := in.LoopCycles()

		for _, r := range full.Reports {
			if !r.Parallel {
				continue
			}
			interesting := len(r.Properties) > 0 || hasIrregularEvidence(r)
			if !interesting {
				continue
			}
			row := Table3Row{
				Program:       k.Name,
				Loop:          r.Name,
				Parallel:      true,
				NewlyParallel: serialWithout[r.Name],
				Properties:    r.Properties,
				PctSeq:        100 * float64(cycles[r.Loop]) / float64(max(uint64(1), total)),
			}
			if nr := noiaaByName[r.Name]; nr != nil && par32Total > 0 {
				row.PctPar32 = 100 * float64(par32Cycles[nr.Loop]) / float64(par32Total)
			}
			var tests, privs []string
			for arr, tst := range r.Tests {
				if tst != "" && tst != "affine" {
					tests = append(tests, arr+":"+string(tst))
				}
			}
			for arr, reason := range r.PrivReasons {
				privs = append(privs, arr+":"+string(reason))
			}
			sort.Strings(tests)
			sort.Strings(privs)
			row.Tests = tests
			row.PrivReasons = privs
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func hasIrregularEvidence(r *parallel.LoopReport) bool {
	for _, t := range r.Tests {
		if t != "" && t != "affine" && t != "range" {
			return true
		}
	}
	for _, reason := range r.PrivReasons {
		if reason != "affine" {
			return true
		}
	}
	return false
}

// FormatTable3 renders the rows like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: loops with irregular accesses analyzed and parallelized\n")
	fmt.Fprintf(&sb, "%-8s %-22s %-4s %6s %8s  %s\n", "program", "loop", "new", "%seq", "%par@32", "evidence")
	for _, r := range rows {
		star := ""
		if r.NewlyParallel {
			star = "*"
		}
		var ev []string
		ev = append(ev, r.Tests...)
		ev = append(ev, r.PrivReasons...)
		fmt.Fprintf(&sb, "%-8s %-22s %-4s %5.1f%% %7.1f%%  %s\n",
			r.Program, r.Loop, star, r.PctSeq, r.PctPar32, strings.Join(ev, " "))
		for _, p := range r.Properties {
			fmt.Fprintf(&sb, "%-8s %-22s      %6s  property: %s\n", "", "", "", p)
		}
	}
	return sb.String()
}

// Fig16Series is one speedup curve: a program compiled in one mode, run on
// one machine profile across processor counts.
type Fig16Series struct {
	Program  string
	Mode     parallel.Mode
	Profile  string
	Procs    []int
	Speedups []float64
}

// Fig16 regenerates the speedup curves of Fig. 16: every kernel × three
// compiler configurations on the Origin-2000 profile, plus DYFESM on the
// Challenge profile (Fig. 16(f)).
func Fig16(size kernels.Size, procs []int) ([]Fig16Series, error) {
	if len(procs) == 0 {
		procs = []int{1, 2, 4, 8, 16, 32}
	}
	var out []Fig16Series
	for _, k := range kernels.All(size) {
		for _, mode := range []parallel.Mode{parallel.Full, parallel.NoIAA, parallel.Baseline} {
			s, err := speedupSeries(k, mode, machine.Origin2000, procs)
			if err != nil {
				return nil, err
			}
			out = append(out, *s)
		}
	}
	// Fig. 16(f): DYFESM on the 4-processor Challenge.
	dy, err := kernels.ByName("dyfesm", size)
	if err != nil {
		return nil, err
	}
	chProcs := []int{1, 2, 4}
	s, err := speedupSeries(dy, parallel.Full, machine.Challenge, chProcs)
	if err != nil {
		return nil, err
	}
	out = append(out, *s)
	return out, nil
}

func speedupSeries(k *kernels.Kernel, mode parallel.Mode, prof machine.Profile, procs []int) (*Fig16Series, error) {
	res, err := pipeline.Compile(k.Source, mode, pipeline.Reorganized)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", k.Name, mode, err)
	}
	run := func(p int) (uint64, error) {
		in := interp.New(res.Info, interp.Options{Machine: machine.New(prof, p)})
		if err := in.Run(); err != nil {
			return 0, fmt.Errorf("%s/%s p=%d: %w", k.Name, mode, p, err)
		}
		return in.Machine().Time(), nil
	}
	seq, err := run(1)
	if err != nil {
		return nil, err
	}
	s := &Fig16Series{Program: k.Name, Mode: mode, Profile: prof.Name, Procs: procs}
	for _, p := range procs {
		t, err := run(p)
		if err != nil {
			return nil, err
		}
		s.Speedups = append(s.Speedups, float64(seq)/float64(max(uint64(1), t)))
	}
	return s, nil
}

// FormatFig16 renders the speedup series as aligned text tables.
func FormatFig16(series []Fig16Series) string {
	var sb strings.Builder
	sb.WriteString("Fig. 16: speedups on the simulated machines\n")
	byProgram := map[string][]Fig16Series{}
	var order []string
	for _, s := range series {
		if _, ok := byProgram[s.Program]; !ok {
			order = append(order, s.Program)
		}
		byProgram[s.Program] = append(byProgram[s.Program], s)
	}
	for _, prog := range order {
		group := byProgram[prog]
		fmt.Fprintf(&sb, "\n%s:\n", prog)
		fmt.Fprintf(&sb, "  %-22s", "config")
		for _, p := range group[0].Procs {
			fmt.Fprintf(&sb, " %6s", fmt.Sprintf("P=%d", p))
		}
		sb.WriteByte('\n')
		for _, s := range group {
			label := fmt.Sprintf("%s/%s", s.Mode, s.Profile)
			fmt.Fprintf(&sb, "  %-22s", label)
			for _, v := range s.Speedups {
				fmt.Fprintf(&sb, " %6.2f", v)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
