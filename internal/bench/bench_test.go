package bench

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/parallel"
)

func TestTable2Invariants(t *testing.T) {
	rows, err := Table2(kernels.Small)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kernels.All(kernels.Small)); len(rows) != want {
		t.Fatalf("rows: %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.LoC == 0 || r.CompileTime <= 0 || r.SeqCycles == 0 {
			t.Errorf("%s: incomplete row %+v", r.Program, r)
		}
		if r.PropertyTime > r.CompileTime {
			t.Errorf("%s: property time exceeds compile time", r.Program)
		}
		if r.OverheadPct < 0 || r.OverheadPct > 100 {
			t.Errorf("%s: overhead %f out of range", r.Program, r.OverheadPct)
		}
	}
	text := FormatTable2(rows)
	for _, k := range kernels.All(kernels.Small) {
		if !strings.Contains(text, k.Name) {
			t.Errorf("table 2 missing %s:\n%s", k.Name, text)
		}
	}
}

func TestTable3AllTargetsNewlyParallel(t *testing.T) {
	rows, err := Table3(kernels.Small)
	if err != nil {
		t.Fatal(err)
	}
	stars := map[string]bool{}
	for _, r := range rows {
		if r.NewlyParallel {
			stars[r.Program] = true
		}
		if r.PctSeq < 0 || r.PctSeq > 100 {
			t.Errorf("%s/%s: pct %f", r.Program, r.Loop, r.PctSeq)
		}
	}
	for _, name := range []string{"trfd", "dyfesm", "bdna", "p3m", "tree"} {
		if !stars[name] {
			t.Errorf("%s has no newly-parallel loop:\n%s", name, FormatTable3(rows))
		}
	}
}

func TestFig16Shapes(t *testing.T) {
	series, err := Fig16(kernels.Small, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every kernel must have all three configurations plus the DYFESM
	// challenge series.
	count := map[string]int{}
	var challenge *Fig16Series
	for i := range series {
		s := &series[i]
		count[s.Program]++
		if s.Profile == "challenge" {
			challenge = s
		}
		if len(s.Speedups) != len(s.Procs) {
			t.Errorf("%s/%v: %d speedups for %d procs", s.Program, s.Mode, len(s.Speedups), len(s.Procs))
		}
		// Speedup at P=1 must be 1.0 by construction.
		if s.Procs[0] == 1 && (s.Speedups[0] < 0.999 || s.Speedups[0] > 1.001) {
			t.Errorf("%s/%v: P=1 speedup %f", s.Program, s.Mode, s.Speedups[0])
		}
	}
	for name, c := range count {
		want := 3
		if name == "dyfesm" {
			want = 4 // + challenge profile
		}
		if c != want {
			t.Errorf("%s: %d series, want %d", name, c, want)
		}
	}
	if challenge == nil {
		t.Fatal("missing DYFESM challenge series (Fig. 16(f))")
	}
	text := FormatFig16(series)
	if !strings.Contains(text, "challenge") {
		t.Errorf("rendering misses challenge profile:\n%s", text)
	}
}

func TestFig16FullBeatsBaselineOnTree(t *testing.T) {
	series, err := Fig16(kernels.Default, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	var full, base float64
	for _, s := range series {
		if s.Program != "tree" || s.Profile != "origin2000" {
			continue
		}
		switch s.Mode {
		case parallel.Full:
			full = s.Speedups[0]
		case parallel.Baseline:
			base = s.Speedups[0]
		}
	}
	if full < 3 {
		t.Errorf("tree full-mode speedup at P=8: %f", full)
	}
	if base > 1.2 {
		t.Errorf("tree baseline speedup at P=8 should be flat: %f", base)
	}
}
