package bench

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// ExprReportSchema identifies the JSON layout of the expression-interning
// measurement document (BENCH_expr.json).
const ExprReportSchema = "irr-expr/1"

// MicroBench is one -benchmem style microbenchmark result.
type MicroBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ExprReport records the effect of expression hash-consing: paired
// microbenchmarks (legacy vs interned implementations of the expr/section
// hot operations) and the end-to-end batch compile with the interner on vs
// off — the payload of `irrbench -expr-report`.
type ExprReport struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Micro holds the paired microbenchmarks. Names ending in the same
	// suffix form a pair (e.g. equal/legacy vs equal/interned).
	Micro []MicroBench `json:"micro"`
	// AllocReduction is 1 - interned/legacy allocations per op, over the
	// paired equal/string/section-key microbenchmarks (the acceptance
	// metric: >= 0.30 required).
	AllocReduction float64 `json:"alloc_reduction"`
	// InternOnNs / InternOffNs are best-of-N wall-clock times for the
	// kernel batch compiled with interning enabled and disabled.
	InternOnNs  int64   `json:"intern_on_ns"`
	InternOffNs int64   `json:"intern_off_ns"`
	SpeedupX    float64 `json:"speedup_x"`
	// Interner counters of the intern-on run.
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	NodeHits   int64   `json:"node_hits"`
	NodeMisses int64   `json:"node_misses"`
	HitRate    float64 `json:"hit_rate"`
	// IdenticalOutput reports whether the intern-on and intern-off batches
	// produced identical summaries (durations masked), decision logs and
	// counters (excluding the expr.intern.* counters, which measure the
	// interner itself).
	IdenticalOutput bool `json:"identical_output"`
}

// exprMicroPairs lists the paired microbenchmarks: the legacy implementation
// of an operation and its interned replacement.
func exprMicroPairs() []struct {
	name string
	fn   func(*testing.B)
} {
	return []struct {
		name string
		fn   func(*testing.B)
	}{
		{"equal/legacy", microEqualLegacy},
		{"equal/interned", microEqualInterned},
		{"string/legacy", microStringLegacy},
		{"string/interned", microStringInterned},
		{"prove-lt/legacy", microProveLTLegacy},
		{"prove-lt/interned", microProveLTInterned},
		{"section-key/legacy", microSectionKeyLegacy},
		{"section-key/interned", microSectionKeyInterned},
	}
}

// MeasureExpr runs the expr/section microbenchmarks and the end-to-end
// intern-on/intern-off batch comparison. iters < 1 means best-of-5.
func MeasureExpr(size kernels.Size, jobs, iters int) (*ExprReport, error) {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if iters < 1 {
		iters = 5
	}
	rep := &ExprReport{
		Schema:     ExprReportSchema,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Microbenchmarks via the testing package's own measurement loop.
	var legacyAllocs, internedAllocs int64
	for _, mb := range exprMicroPairs() {
		r := testing.Benchmark(mb.fn)
		rep.Micro = append(rep.Micro, MicroBench{
			Name:        mb.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(max(1, int64(r.N))),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		if strings.HasSuffix(mb.name, "/legacy") {
			legacyAllocs += r.AllocsPerOp()
		} else {
			internedAllocs += r.AllocsPerOp()
		}
	}
	if legacyAllocs > 0 {
		rep.AllocReduction = 1 - float64(internedAllocs)/float64(legacyAllocs)
	}

	// End-to-end: the kernel batch with the interner on vs off.
	inputs := kernelInputs(size)
	compile := func(opts pipeline.Options) (*pipeline.BatchResult, error) {
		br := pipeline.CompileBatch(inputs, parallel.Full, pipeline.Reorganized, opts)
		return br, br.Err()
	}
	bestOf := func(opts pipeline.Options) (time.Duration, *pipeline.BatchResult, error) {
		var best time.Duration
		var last *pipeline.BatchResult
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			br, err := compile(opts)
			d := time.Since(t0)
			if err != nil {
				return 0, nil, err
			}
			if best == 0 || d < best {
				best = d
			}
			last = br
		}
		return best, last, nil
	}

	onT, onBR, err := bestOf(pipeline.Options{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	offT, _, err := bestOf(pipeline.Options{Jobs: jobs, NoExprIntern: true})
	if err != nil {
		return nil, err
	}
	rep.InternOnNs = int64(onT)
	rep.InternOffNs = int64(offT)
	rep.SpeedupX = ratio(offT, onT)
	ist := onBR.InternStats()
	rep.Hits, rep.Misses = ist.Hits, ist.Misses
	rep.NodeHits, rep.NodeMisses = ist.NodeHits, ist.NodeMisses
	if lookups := ist.Hits + ist.Misses; lookups > 0 {
		rep.HitRate = float64(ist.Hits) / float64(lookups)
	}

	// Ablation: one telemetry-on run per configuration, outputs compared.
	on, err := compile(pipeline.Options{Jobs: jobs, Recorder: obs.New()})
	if err != nil {
		return nil, err
	}
	off, err := compile(pipeline.Options{Jobs: jobs, Recorder: obs.New(), NoExprIntern: true})
	if err != nil {
		return nil, err
	}
	rep.IdenticalOutput = InternAblationIdentical(on, off)
	return rep, nil
}

// InternAblationIdentical compares an intern-on and an intern-off batch:
// identical summaries (durations masked), identical decision logs, and
// identical counters once the expr.intern.* counters — which measure the
// interner itself — are removed.
func InternAblationIdentical(on, off *pipeline.BatchResult) bool {
	return benchDurations.ReplaceAllString(on.Summary(), "T") ==
		benchDurations.ReplaceAllString(off.Summary(), "T") &&
		on.Explain() == off.Explain() &&
		reflect.DeepEqual(dropInternCounters(on.Counters()), dropInternCounters(off.Counters()))
}

func dropInternCounters(c map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for k, v := range c {
		if !strings.HasPrefix(k, "expr.intern.") {
			out[k] = v
		}
	}
	return out
}
