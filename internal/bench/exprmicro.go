package bench

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/section"
)

// The micro workload mirrors the analysis hot path: a medium-sized affine
// expression with a symbolic atom, compared/rendered/keyed over and over.

func microExprPair() (*expr.Expr, *expr.Expr) {
	mk := func() *expr.Expr {
		return expr.Var("i").MulConst(2).
			Add(expr.Var("j").MulConst(3)).
			Add(expr.Var("n").Mul(expr.Var("i"))).
			AddConst(-4)
	}
	return mk(), mk()
}

// microEqualLegacy is the pre-interning Equal: e.Sub(o).IsZero(), a full
// clone-and-merge per comparison.
func microEqualLegacy(b *testing.B) {
	x, y := microExprPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Sub(y).IsZero() {
			b.Fatal("not equal")
		}
	}
}

// microEqualInterned is Equal on interned expressions: a cached-key
// comparison.
func microEqualInterned(b *testing.B) {
	in := expr.NewInterner()
	x, y := microExprPair()
	x, y = in.Intern(x), in.Intern(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("not equal")
		}
	}
}

// microStringLegacy renders the canonical string of an uninterned
// expression every call (sort keys, rebuild).
func microStringLegacy(b *testing.B) {
	x, _ := microExprPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}

// microStringInterned reads the canonical key cached at intern time.
func microStringInterned(b *testing.B) {
	in := expr.NewInterner()
	x, _ := microExprPair()
	x = in.Intern(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}

// microProveTriple builds the comparison x < y the dependence tests prove
// in their hot loop: y is x shifted by a positive symbolic stride.
func microProveTriple() (*expr.Expr, *expr.Expr, expr.Assumptions) {
	x, _ := microExprPair()
	y := x.Add(expr.Var("n")).AddConst(2)
	return x, y, expr.Assumptions{"n": expr.GT0}
}

// microProveLTLegacy materializes the difference y-x — a clone-and-merge
// of both term maps per call — before walking its sign, the shape of the
// provers before the virtual-difference rewrite.
func microProveLTLegacy(b *testing.B) {
	x, y, a := microProveTriple()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !expr.ProveGT0(y.Sub(x), a) {
			b.Fatal("not provable")
		}
	}
}

// microProveLTInterned proves the same fact through ProveLT's virtual
// difference: both term maps are walked in place, allocating nothing.
func microProveLTInterned(b *testing.B) {
	x, y, a := microProveTriple()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !expr.ProveLT(x, y, a) {
			b.Fatal("not provable")
		}
	}
}

// microSectionKeyLegacy keys a fresh section whose bounds carry no cached
// keys: every Key call re-renders both bound expressions.
func microSectionKeyLegacy(b *testing.B) {
	lo, hi := microExprPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := section.New("a", lo, hi)
		_ = s.Key()
	}
}

// microSectionKeyInterned keys a fresh section whose bounds are interned:
// Key assembles the cached canonical keys.
func microSectionKeyInterned(b *testing.B) {
	in := expr.NewInterner()
	lo, hi := microExprPair()
	lo, hi = in.Intern(lo), in.Intern(hi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := section.New("a", lo, hi)
		_ = s.Key()
	}
}
