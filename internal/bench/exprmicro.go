package bench

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/section"
)

// The micro workload mirrors the analysis hot path: a medium-sized affine
// expression with a symbolic atom, compared/rendered/keyed over and over.

func microExprPair() (*expr.Expr, *expr.Expr) {
	mk := func() *expr.Expr {
		return expr.Var("i").MulConst(2).
			Add(expr.Var("j").MulConst(3)).
			Add(expr.Var("n").Mul(expr.Var("i"))).
			AddConst(-4)
	}
	return mk(), mk()
}

// microEqualLegacy is the pre-interning Equal: e.Sub(o).IsZero(), a full
// clone-and-merge per comparison.
func microEqualLegacy(b *testing.B) {
	x, y := microExprPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Sub(y).IsZero() {
			b.Fatal("not equal")
		}
	}
}

// microEqualInterned is Equal on interned expressions: a cached-key
// comparison.
func microEqualInterned(b *testing.B) {
	in := expr.NewInterner()
	x, y := microExprPair()
	x, y = in.Intern(x), in.Intern(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("not equal")
		}
	}
}

// microStringLegacy renders the canonical string of an uninterned
// expression every call (sort keys, rebuild).
func microStringLegacy(b *testing.B) {
	x, _ := microExprPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}

// microStringInterned reads the canonical key cached at intern time.
func microStringInterned(b *testing.B) {
	in := expr.NewInterner()
	x, _ := microExprPair()
	x = in.Intern(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}

// microSectionKeyLegacy keys a fresh section whose bounds carry no cached
// keys: every Key call re-renders both bound expressions.
func microSectionKeyLegacy(b *testing.B) {
	lo, hi := microExprPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := section.New("a", lo, hi)
		_ = s.Key()
	}
}

// microSectionKeyInterned keys a fresh section whose bounds are interned:
// Key assembles the cached canonical keys.
func microSectionKeyInterned(b *testing.B) {
	in := expr.NewInterner()
	lo, hi := microExprPair()
	lo, hi = in.Intern(lo), in.Intern(hi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := section.New("a", lo, hi)
		_ = s.Key()
	}
}
