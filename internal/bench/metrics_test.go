package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/kernels"
	"repro/internal/pipeline"
)

// The metrics documents must be deterministic across worker-pool sizes:
// identical verdicts, counters, event counts and histogram sample counts
// whether the batch ran on one worker or eight. Wall-clock fields are
// normalized away; everything else must be byte-identical.
func TestMetricsDeterministicAcrossJobs(t *testing.T) {
	one, err := CompileMetrics(kernels.Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := CompileMetrics(kernels.Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(eight) {
		t.Fatalf("kernel sets differ: %d vs %d", len(one), len(eight))
	}
	for name, m1 := range one {
		m8, ok := eight[name]
		if !ok {
			t.Errorf("%s missing from -jobs 8 run", name)
			continue
		}
		b1, b8 := canonicalMetrics(t, m1), canonicalMetrics(t, m8)
		if !bytes.Equal(b1, b8) {
			t.Errorf("%s: metrics differ between -jobs 1 and -jobs 8:\n%s\n---\n%s", name, b1, b8)
		}
	}
}

// canonicalMetrics strips the wall-clock fields (durations, histogram sums
// and quantiles) and marshals the rest, which Go does with sorted map keys.
func canonicalMetrics(t *testing.T, m *pipeline.Metrics) []byte {
	t.Helper()
	c := *m
	c.CompileNs, c.PropertyNs = 0, 0
	c.Phases = append([]pipeline.PhaseMetric(nil), m.Phases...)
	for i := range c.Phases {
		c.Phases[i].Ns = 0
	}
	c.Histograms = append([]pipeline.HistogramMetric(nil), m.Histograms...)
	for i := range c.Histograms {
		h := &c.Histograms[i]
		h.SumNs, h.P50Ns, h.P90Ns, h.P99Ns = 0, 0, 0, 0
	}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// MeasureObs is the BENCH_obs2.json generator; a smoke run (testing.Benchmark
// inside is too slow for every CI run, so this is gated behind -short).
func TestMeasureObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("MeasureObs runs real benchmarks")
	}
	rep, err := MeasureObs("trfd")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ObsReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	// The committed report shows exactly 0; the smoke bound leaves room for
	// the couple of allocs of ambient jitter (GC assist attribution, map
	// growth) that single measurements — especially under -race — carry.
	if rep.OffExtraAllocs > 8 || rep.OffExtraAllocs < -8 {
		t.Errorf("off path allocates: %d extra allocs/op", rep.OffExtraAllocs)
	}
	if rep.EventsEmitted == 0 || rep.Histograms == 0 {
		t.Errorf("production recorder collected nothing: %+v", rep)
	}
	if rep.EventsDropped != 0 {
		t.Errorf("LevelInfo compile dropped events: %d", rep.EventsDropped)
	}
}
