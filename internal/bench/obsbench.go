package bench

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// ObsReportSchema identifies the JSON layout of the telemetry-overhead
// measurement document (BENCH_obs2.json).
const ObsReportSchema = "irr-obs/2"

// ObsReport records what the always-on observability core costs: the same
// kernel compiled with no recorder, a nil recorder threaded through every
// call site (the off path), the production LevelInfo recorder, and the
// LevelDebug full-trace recorder — the payload of `irrbench -obs-report`.
//
// The acceptance bars: OffExtraAllocs == 0 (the disabled path is one nil
// check per call site, no allocation), and OverheadOnPct <= 10 (production
// telemetry fits the overhead budget; the per-node propagation traces that
// used to blow it live behind LevelDebug).
type ObsReport struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Kernel     string `json:"kernel"`
	// Baseline is the plain compile (no recorder parameter at all).
	Baseline MicroBench `json:"baseline"`
	// TelemetryOff threads a nil *obs.Recorder through the pipeline.
	TelemetryOff MicroBench `json:"telemetry_off"`
	// TelemetryOn is the always-on production configuration (LevelInfo).
	TelemetryOn MicroBench `json:"telemetry_on"`
	// TelemetryDebug is the full-trace configuration behind -explain.
	TelemetryDebug MicroBench `json:"telemetry_debug"`
	// OverheadOnPct / OverheadDebugPct are the time overheads relative to
	// the off path.
	OverheadOnPct    float64 `json:"overhead_on_pct"`
	OverheadDebugPct float64 `json:"overhead_debug_pct"`
	// OffExtraAllocs is TelemetryOff allocations minus Baseline allocations
	// per op (must be 0: the off path is allocation-free by construction).
	OffExtraAllocs int64 `json:"off_extra_allocs"`
	// EventsEmitted / EventsDropped / Histograms describe one LevelInfo
	// compile of the kernel: how much the production recorder collects.
	EventsEmitted int64 `json:"events_emitted"`
	EventsDropped int64 `json:"events_dropped"`
	Histograms    int   `json:"histograms"`
}

// MeasureObs benchmarks the telemetry configurations on one kernel
// (default trfd, the kernel the BENCH_obs trajectory tracks).
func MeasureObs(kernel string) (*ObsReport, error) {
	if kernel == "" {
		kernel = "trfd"
	}
	k, err := kernels.ByName(kernel, kernels.Small)
	if err != nil {
		return nil, err
	}
	rep := &ObsReport{
		Schema:     ObsReportSchema,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Kernel:     kernel,
	}

	bench := func(name string, compile func() error) (MicroBench, error) {
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := compile(); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return MicroBench{}, fmt.Errorf("%s: %w", name, failed)
		}
		return MicroBench{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(max(1, int64(r.N))),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}, nil
	}
	withRec := func(rec func() *obs.Recorder) func() error {
		return func() error {
			_, err := pipeline.CompileOpts(k.Source, parallel.Full, pipeline.Reorganized,
				pipeline.Options{Recorder: rec()})
			return err
		}
	}

	// Baseline uses the plain entry point; telemetry-off threads a nil
	// recorder through the same pipeline. Their per-op allocations must be
	// identical — the off path is a nil check, not a code path.
	if rep.Baseline, err = bench("baseline", func() error {
		_, err := pipeline.Compile(k.Source, parallel.Full, pipeline.Reorganized)
		return err
	}); err != nil {
		return nil, err
	}
	if rep.TelemetryOff, err = bench("telemetry-off", withRec(func() *obs.Recorder { return nil })); err != nil {
		return nil, err
	}
	if rep.TelemetryOn, err = bench("telemetry-on", withRec(obs.New)); err != nil {
		return nil, err
	}
	if rep.TelemetryDebug, err = bench("telemetry-debug", withRec(obs.NewDebug)); err != nil {
		return nil, err
	}
	if off := rep.TelemetryOff.NsPerOp; off > 0 {
		rep.OverheadOnPct = 100 * (rep.TelemetryOn.NsPerOp - off) / off
		rep.OverheadDebugPct = 100 * (rep.TelemetryDebug.NsPerOp - off) / off
	}
	rep.OffExtraAllocs = rep.TelemetryOff.AllocsPerOp - rep.Baseline.AllocsPerOp

	// One production-level compile, for the recorder's own footprint.
	res, err := pipeline.CompileOpts(k.Source, parallel.Full, pipeline.Reorganized,
		pipeline.Options{Recorder: obs.New()})
	if err != nil {
		return nil, err
	}
	emitted, dropped, _ := res.Recorder.EventStats()
	rep.EventsEmitted, rep.EventsDropped = emitted, dropped
	rep.Histograms = len(res.Recorder.Histograms())
	return rep, nil
}
