package bench

import (
	"reflect"
	"regexp"
	"runtime"
	"time"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// ParallelReportSchema identifies the JSON layout of the parallel/cache
// measurement document (BENCH_parallel.json).
const ParallelReportSchema = "irr-parallel/1"

// ParallelReport records the serial-vs-parallel and cold-vs-warm-cache
// measurement of one kernel batch — the payload of
// `irrbench -parallel-report`.
type ParallelReport struct {
	Schema string `json:"schema"`
	// Host shape: on a single-core host SpeedupX near 1.0 is the expected
	// honest result, so the report always carries the core counts.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Jobs is the worker-pool size of the parallel run.
	Jobs int `json:"jobs"`
	// SerialNs / ParallelNs are best-of-N wall-clock times for the batch
	// compiled with one worker and with Jobs workers (cache enabled).
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	SpeedupX   float64 `json:"speedup_x"`
	// ColdCacheNs / WarmCacheNs isolate the property-query memo table:
	// the same single-worker batch with the cache disabled vs enabled.
	ColdCacheNs   int64   `json:"cold_cache_ns"`
	WarmCacheNs   int64   `json:"warm_cache_ns"`
	CacheSpeedupX float64 `json:"cache_speedup_x"`
	// Cache counters of the warm run.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// DeterministicOutput reports whether the -jobs 1 and -jobs N batches
	// produced identical summaries (durations masked), decision logs and
	// counters.
	DeterministicOutput bool `json:"deterministic_output"`
}

// benchDurations masks rendered durations and percentages, which naturally
// differ between timed runs of identical compilations.
var benchDurations = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s|%)`)

// MeasureParallel compiles the kernel batch repeatedly and reports
// serial-vs-parallel wall clock, cold-vs-warm cache wall clock, the cache
// counters, and whether the parallel run's output matched the serial one.
// jobs < 1 means GOMAXPROCS; iters < 1 means a best-of-5.
func MeasureParallel(size kernels.Size, jobs, iters int) (*ParallelReport, error) {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if iters < 1 {
		iters = 5
	}
	inputs := kernelInputs(size)
	compile := func(opts pipeline.Options) (*pipeline.BatchResult, error) {
		br := pipeline.CompileBatch(inputs, parallel.Full, pipeline.Reorganized, opts)
		return br, br.Err()
	}
	bestOf := func(opts pipeline.Options) (time.Duration, *pipeline.BatchResult, error) {
		var best time.Duration
		var last *pipeline.BatchResult
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			br, err := compile(opts)
			d := time.Since(t0)
			if err != nil {
				return 0, nil, err
			}
			if best == 0 || d < best {
				best = d
			}
			last = br
		}
		return best, last, nil
	}

	serialT, serialBR, err := bestOf(pipeline.Options{Jobs: 1})
	if err != nil {
		return nil, err
	}
	parallelT, _, err := bestOf(pipeline.Options{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	coldT, _, err := bestOf(pipeline.Options{Jobs: 1, NoPropertyCache: true})
	if err != nil {
		return nil, err
	}

	// Determinism: one telemetry-on run per job count, outputs compared.
	ser, err := compile(pipeline.Options{Jobs: 1, Recorder: obs.New()})
	if err != nil {
		return nil, err
	}
	par, err := compile(pipeline.Options{Jobs: jobs, Recorder: obs.New()})
	if err != nil {
		return nil, err
	}
	deterministic := benchDurations.ReplaceAllString(ser.Summary(), "T") ==
		benchDurations.ReplaceAllString(par.Summary(), "T") &&
		ser.Explain() == par.Explain() &&
		reflect.DeepEqual(ser.Counters(), par.Counters())

	st := serialBR.Stats()
	rep := &ParallelReport{
		Schema:              ParallelReportSchema,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		Jobs:                jobs,
		SerialNs:            int64(serialT),
		ParallelNs:          int64(parallelT),
		SpeedupX:            ratio(serialT, parallelT),
		ColdCacheNs:         int64(coldT),
		WarmCacheNs:         int64(serialT),
		CacheSpeedupX:       ratio(coldT, serialT),
		CacheHits:           int64(st.CacheHits),
		CacheMisses:         int64(st.CacheMisses),
		DeterministicOutput: deterministic,
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		rep.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return rep, nil
}

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
