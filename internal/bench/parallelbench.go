package bench

import (
	"fmt"
	"regexp"
	"runtime"
	"time"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// benchDurations masks rendered durations and percentages, which naturally
// differ between timed runs of identical compilations.
var benchDurations = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s|%)`)

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ScalingReportSchema identifies the JSON layout of the parallelism and
// shared-cache measurement document (BENCH_parallel.json). Version 2
// replaces the single-jobs irr-parallel/1 document with a per-jobs sweep
// and the shared-vs-private analysis-cache comparison.
const ScalingReportSchema = "irr-parallel/2"

// scalingCopies is how many byte-identical copies of the kernel batch the
// shared-cache measurement compiles: the workload of a server compiling
// repeated requests, and what the cross-compilation cache exists for. With
// c copies, each verdict is proved once and replayed c-1 times, so the
// ideal shared hit rate is (c-1)/c.
const scalingCopies = 6

// ScalingPoint is one jobs value of the sweep: the duplicated batch
// compiled with private per-item caches and with the shared analysis
// cache, best-of-N wall clock each.
type ScalingPoint struct {
	Jobs      int   `json:"jobs"`
	PrivateNs int64 `json:"private_ns"`
	SharedNs  int64 `json:"shared_ns"`
	// Speedups are relative to the same configuration at jobs=1.
	PrivateSpeedupX float64 `json:"private_speedup_x"`
	SharedSpeedupX  float64 `json:"shared_speedup_x"`
}

// ScalingReport records the parallel-scaling and shared-cache measurement
// of the duplicated kernel batch — the payload of
// `irrbench -scaling-report` (and of the legacy -parallel-report spelling).
type ScalingReport struct {
	Schema string `json:"schema"`
	// Host shape. On a single-core host parallel speedup cannot
	// materialize; SingleCoreCaveat flags that sweep points near 1.0x are
	// the expected honest result there, not a regression.
	GOMAXPROCS       int  `json:"gomaxprocs"`
	NumCPU           int  `json:"num_cpu"`
	SingleCoreCaveat bool `json:"single_core_caveat"`
	// Copies is the number of byte-identical batch copies compiled (see
	// scalingCopies); Iters is the best-of repetition count.
	Copies int `json:"copies"`
	Iters  int `json:"iters"`

	// Sweep measures every jobs value from 1 up to GOMAXPROCS (always
	// including 2, so a single-core sweep still shows the oversubscribed
	// point).
	Sweep []ScalingPoint `json:"sweep"`

	// The shared-vs-private comparison at Jobs workers: same inputs, same
	// worker count, the only difference is the cross-compilation cache.
	Jobs           int     `json:"jobs"`
	PrivateNs      int64   `json:"private_ns"`
	SharedNs       int64   `json:"shared_ns"`
	SharedSpeedupX float64 `json:"shared_speedup_x"`
	// Allocation deltas over one whole batch (runtime.MemStats deltas,
	// measured on single-worker runs so the numbers are comparable).
	PrivateAllocs  int64   `json:"private_allocs"`
	SharedAllocs   int64   `json:"shared_allocs"`
	PrivateBytes   int64   `json:"private_bytes"`
	SharedBytes    int64   `json:"shared_bytes"`
	AllocReduction float64 `json:"alloc_reduction"`
	// Shared-table traffic of one shared run.
	SharedHits    int64   `json:"shared_hits"`
	SharedMisses  int64   `json:"shared_misses"`
	SharedHitRate float64 `json:"shared_hit_rate"`
	InternHits    int64   `json:"intern_hits"`
	InternMisses  int64   `json:"intern_misses"`
	// DeterministicAcrossJobs: with sharing on, the -jobs 1 and -jobs 8
	// batches produced identical summaries (durations masked) and decision
	// logs. DeterministicSharing: at -jobs 1, sharing on vs off produced
	// identical summaries and decision logs. Work counters (queries, nodes
	// visited, intern and shared-table traffic) are not compared: a shared
	// hit skips the propagation those counters measure, so with duplicated
	// inputs they differ by design.
	DeterministicAcrossJobs bool `json:"deterministic_across_jobs"`
	DeterministicSharing    bool `json:"deterministic_sharing"`
}

// MeasureScaling compiles the duplicated kernel batch across a jobs sweep
// and with the shared analysis cache on vs off, and reports wall clock,
// allocation deltas, shared-table traffic and the determinism checks.
// jobs < 1 means GOMAXPROCS; iters < 1 means best-of-5.
func MeasureScaling(size kernels.Size, jobs, iters int) (*ScalingReport, error) {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if iters < 1 {
		iters = 5
	}
	inputs := dupKernelInputs(size, scalingCopies)
	compile := func(opts pipeline.Options) (*pipeline.BatchResult, error) {
		br := pipeline.CompileBatch(inputs, parallel.Full, pipeline.Reorganized, opts)
		return br, br.Err()
	}
	bestOf := func(opts pipeline.Options) (time.Duration, *pipeline.BatchResult, error) {
		var best time.Duration
		var last *pipeline.BatchResult
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			br, err := compile(opts)
			d := time.Since(t0)
			if err != nil {
				return 0, nil, err
			}
			if best == 0 || d < best {
				best = d
			}
			last = br
		}
		return best, last, nil
	}

	rep := &ScalingReport{
		Schema:           ScalingReportSchema,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		SingleCoreCaveat: runtime.GOMAXPROCS(0) == 1 || runtime.NumCPU() == 1,
		Copies:           scalingCopies,
		Iters:            iters,
		Jobs:             jobs,
	}

	// The per-jobs sweep, private and shared at each width.
	var basePrivate, baseShared time.Duration
	for _, j := range sweepJobs() {
		pT, _, err := bestOf(pipeline.Options{Jobs: j, NoSharedCache: true})
		if err != nil {
			return nil, err
		}
		sT, _, err := bestOf(pipeline.Options{Jobs: j})
		if err != nil {
			return nil, err
		}
		if j == 1 {
			basePrivate, baseShared = pT, sT
		}
		rep.Sweep = append(rep.Sweep, ScalingPoint{
			Jobs:            j,
			PrivateNs:       int64(pT),
			SharedNs:        int64(sT),
			PrivateSpeedupX: ratio(basePrivate, pT),
			SharedSpeedupX:  ratio(baseShared, sT),
		})
	}

	// Shared vs private at the requested width.
	privateT, _, err := bestOf(pipeline.Options{Jobs: jobs, NoSharedCache: true})
	if err != nil {
		return nil, err
	}
	sharedT, sharedBR, err := bestOf(pipeline.Options{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	rep.PrivateNs = int64(privateT)
	rep.SharedNs = int64(sharedT)
	rep.SharedSpeedupX = ratio(privateT, sharedT)

	st := sharedBR.Stats()
	rep.SharedHits, rep.SharedMisses = int64(st.SharedHits), int64(st.SharedMisses)
	if probes := rep.SharedHits + rep.SharedMisses; probes > 0 {
		rep.SharedHitRate = float64(rep.SharedHits) / float64(probes)
	}
	ist := sharedBR.InternStats()
	rep.InternHits, rep.InternMisses = ist.Hits, ist.Misses

	// Allocation deltas, single-worker so the two runs do identical work
	// modulo the cache.
	rep.PrivateAllocs, rep.PrivateBytes, err = batchAllocs(func() error {
		br, err := compile(pipeline.Options{Jobs: 1, NoSharedCache: true})
		_ = br
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.SharedAllocs, rep.SharedBytes, err = batchAllocs(func() error {
		br, err := compile(pipeline.Options{Jobs: 1})
		_ = br
		return err
	})
	if err != nil {
		return nil, err
	}
	if rep.PrivateAllocs > 0 {
		rep.AllocReduction = 1 - float64(rep.SharedAllocs)/float64(rep.PrivateAllocs)
	}

	// Determinism: verdict output across job counts with sharing on, and
	// across the sharing ablation at one worker.
	s1, err := compile(pipeline.Options{Jobs: 1, Recorder: obs.New()})
	if err != nil {
		return nil, err
	}
	s8, err := compile(pipeline.Options{Jobs: 8, Recorder: obs.New()})
	if err != nil {
		return nil, err
	}
	rep.DeterministicAcrossJobs = batchOutput(s1) == batchOutput(s8)
	p1, err := compile(pipeline.Options{Jobs: 1, Recorder: obs.New(), NoSharedCache: true})
	if err != nil {
		return nil, err
	}
	rep.DeterministicSharing = batchOutput(s1) == batchOutput(p1)
	return rep, nil
}

// sweepJobs returns 1..GOMAXPROCS (doubling past 8 to keep wide hosts
// bounded), always including 2 so a single-core sweep still has an
// oversubscribed point.
func sweepJobs() []int {
	maxJobs := runtime.GOMAXPROCS(0)
	var out []int
	for j := 1; j <= maxJobs && j <= 8; j++ {
		out = append(out, j)
	}
	for j := 16; j <= maxJobs; j *= 2 {
		out = append(out, j)
	}
	if maxJobs > 8 && out[len(out)-1] != maxJobs {
		out = append(out, maxJobs)
	}
	if maxJobs == 1 {
		out = append(out, 2)
	}
	return out
}

// dupKernelInputs is the kernel batch repeated n times, copy-tagged names.
func dupKernelInputs(size kernels.Size, n int) []pipeline.BatchInput {
	base := kernelInputs(size)
	var out []pipeline.BatchInput
	for c := 0; c < n; c++ {
		for _, in := range base {
			out = append(out, pipeline.BatchInput{
				Name: fmt.Sprintf("%s#%d", in.Name, c),
				Src:  in.Src,
			})
		}
	}
	return out
}

// batchAllocs measures the allocation cost of one run via MemStats deltas.
func batchAllocs(run func() error) (allocs, bytes int64, err error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if err := run(); err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&m1)
	return int64(m1.Mallocs - m0.Mallocs), int64(m1.TotalAlloc - m0.TotalAlloc), nil
}

// batchOutput renders the scheduling-independent output of a batch: the
// summaries (durations masked) and the decision logs.
func batchOutput(br *pipeline.BatchResult) string {
	return benchDurations.ReplaceAllString(br.Summary(), "T") + "\n" + br.Explain()
}
