package bench

import (
	"testing"

	"repro/internal/kernels"
)

// TestMeasureScaling smoke-runs the -scaling-report measurement on the
// small kernels and checks the invariant parts of the document: the
// schema, the sweep shape, the shared-cache hit rate of the duplicated
// batch, and both determinism verdicts. Timing fields are not asserted.
func TestMeasureScaling(t *testing.T) {
	rep, err := MeasureScaling(kernels.Small, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ScalingReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, ScalingReportSchema)
	}
	if len(rep.Sweep) < 2 || rep.Sweep[0].Jobs != 1 {
		t.Fatalf("sweep = %+v, want >= 2 points starting at jobs=1", rep.Sweep)
	}
	if rep.Copies < 2 {
		t.Fatalf("copies = %d, want >= 2 (duplication is the point)", rep.Copies)
	}
	if !rep.DeterministicAcrossJobs {
		t.Error("shared-cache batch output differed between jobs=1 and jobs=8")
	}
	if !rep.DeterministicSharing {
		t.Error("batch output differed between shared and private caches")
	}
	// With c byte-identical copies the shared table answers (c-1)/c of the
	// property probes; require comfortably more than half.
	if rep.SharedHits == 0 || rep.SharedHitRate <= 0.57 {
		t.Errorf("shared hit rate = %.2f (%d hits / %d misses), want > 0.57",
			rep.SharedHitRate, rep.SharedHits, rep.SharedMisses)
	}
	if rep.SharedAllocs <= 0 || rep.PrivateAllocs <= 0 {
		t.Fatalf("alloc deltas not measured: shared=%d private=%d",
			rep.SharedAllocs, rep.PrivateAllocs)
	}
	if rep.SharedAllocs >= rep.PrivateAllocs {
		t.Errorf("shared batch allocated %d objects, private %d; want fewer with sharing",
			rep.SharedAllocs, rep.PrivateAllocs)
	}
}
