package bench

import (
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// RecurrenceReport is the irr-recurrence/1 JSON document: every kernel
// compiled with the definition-site recurrence derivation on (the default)
// and off (the -no-recurrence ablation), the verdict of its Table-3 target
// loop under each, and the simulated speedup both ways — the before/after
// record of what the derivation buys.
type RecurrenceReport struct {
	Schema string `json:"schema"`
	Size   string `json:"size"`
	// Procs is the processor count the speedups are measured at.
	Procs   int                `json:"procs"`
	Kernels []RecurrenceKernel `json:"kernels"`
	// Flipped lists the kernels whose target verdict the ablation flips
	// (parallel with derivation, serial without).
	Flipped []string `json:"flipped"`
}

// RecurrenceKernel is one kernel's before/after record.
type RecurrenceKernel struct {
	Kernel     string `json:"kernel"`
	TargetLoop string `json:"target_loop"`
	// ParallelDerived / ParallelAblated: the target loop's verdict with
	// the derivation on / off.
	ParallelDerived bool `json:"parallel_derived"`
	ParallelAblated bool `json:"parallel_ablated"`
	Flipped         bool `json:"flipped"`
	// Properties and Tests are the target loop's evidence in the derived
	// compile (empty when it stays serial either way).
	Properties []string `json:"properties,omitempty"`
	Tests      []string `json:"tests,omitempty"`
	// Derived counts the derivation's verdicts in the full compile.
	DerivedMonotonic int `json:"derived_monotonic"`
	DerivedInjective int `json:"derived_injective"`
	DerivedDistance  int `json:"derived_distance"`
	DerivedFailed    int `json:"derived_failed"`
	// SpeedupDerived / SpeedupAblated: whole-program simulated speedup at
	// Procs processors vs the serial run of the same compile.
	SpeedupDerived float64 `json:"speedup_derived"`
	SpeedupAblated float64 `json:"speedup_ablated"`
	SpeedupDelta   float64 `json:"speedup_delta"`
}

// MeasureRecurrence compiles and runs every kernel with the recurrence
// derivation on and off and reports the verdict flips and speedup deltas —
// the payload of `irrbench -recurrence-report`.
func MeasureRecurrence(size kernels.Size, procs int) (*RecurrenceReport, error) {
	if procs <= 0 {
		procs = 8
	}
	rep := &RecurrenceReport{
		Schema: "irr-recurrence/1",
		Size:   sizeName(size),
		Procs:  procs,
	}
	for _, k := range kernels.All(size) {
		derived, err := pipeline.Compile(k.Source, parallel.Full, pipeline.Reorganized)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		ablated, err := pipeline.CompileOpts(k.Source, parallel.Full, pipeline.Reorganized,
			pipeline.Options{NoRecurrence: true})
		if err != nil {
			return nil, fmt.Errorf("%s (no-recurrence): %w", k.Name, err)
		}
		row := RecurrenceKernel{
			Kernel:           k.Name,
			TargetLoop:       k.TargetLoop,
			DerivedMonotonic: derived.PropertyStats.DerivedMonotonic,
			DerivedInjective: derived.PropertyStats.DerivedInjective,
			DerivedDistance:  derived.PropertyStats.DerivedDistance,
			DerivedFailed:    derived.PropertyStats.DerivedFailed,
		}
		if r := targetLoopReport(derived.Reports, k.TargetLoop); r != nil {
			row.ParallelDerived = r.Parallel
			row.Properties = append(row.Properties, r.Properties...)
			for arr, tst := range r.Tests {
				if tst != "" {
					row.Tests = append(row.Tests, arr+":"+string(tst))
				}
			}
		}
		if r := targetLoopReport(ablated.Reports, k.TargetLoop); r != nil {
			row.ParallelAblated = r.Parallel
		}
		row.Flipped = row.ParallelDerived && !row.ParallelAblated
		if row.SpeedupDerived, err = simulatedSpeedup(derived, procs); err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		if row.SpeedupAblated, err = simulatedSpeedup(ablated, procs); err != nil {
			return nil, fmt.Errorf("%s (no-recurrence): %w", k.Name, err)
		}
		row.SpeedupDelta = row.SpeedupDerived - row.SpeedupAblated
		if row.Flipped {
			rep.Flipped = append(rep.Flipped, k.Name)
		}
		rep.Kernels = append(rep.Kernels, row)
	}
	return rep, nil
}

// targetLoopReport finds the Table-3 target loop's report by the kernel's
// name substring (each kernel gives its target loop a unique index
// variable).
func targetLoopReport(reports []*parallel.LoopReport, target string) *parallel.LoopReport {
	for _, r := range reports {
		if strings.Contains(r.Name, target) {
			return r
		}
	}
	return nil
}

// simulatedSpeedup runs one compiled program serially and at procs
// processors on the Origin-2000 profile and returns the cycle ratio.
func simulatedSpeedup(res *pipeline.Result, procs int) (float64, error) {
	run := func(p int) (uint64, error) {
		in := interp.New(res.Info, interp.Options{Machine: machine.New(machine.Origin2000, p)})
		if err := in.Run(); err != nil {
			return 0, err
		}
		return in.Machine().Time(), nil
	}
	seq, err := run(1)
	if err != nil {
		return 0, err
	}
	par, err := run(procs)
	if err != nil {
		return 0, err
	}
	return float64(seq) / float64(max(uint64(1), par)), nil
}

func sizeName(size kernels.Size) string {
	switch size {
	case kernels.Small:
		return "small"
	case kernels.Large:
		return "large"
	default:
		return "default"
	}
}
