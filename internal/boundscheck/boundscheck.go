// Package boundscheck implements one of the companion applications the
// paper points to for the irregular-access machinery (§2.3, citing the
// authors' CC'00 paper): eliminating run-time array bounds checks. A
// reference is proven safe when every subscript's symbolic range — computed
// over the enclosing DO environments, with index-array subscripts bounded
// by the closed-form-bounds property — provably lies within the array's
// declared bounds. The interpreter consults the result: proven references
// skip the per-access check and cost less, giving the run-time effect the
// paper describes.
package boundscheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/property"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
	"repro/internal/sem"
)

// Result reports which array references are provably in bounds.
type Result struct {
	// Safe marks references whose every subscript is proven in range.
	Safe map[*lang.ArrayRef]bool
	// Total counts analyzed references; Proven counts safe ones.
	Total, Proven int
	// PerArray counts proven references by array, for reports.
	PerArray map[string]int
}

// Ratio returns the fraction of references proven safe.
func (r *Result) Ratio() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Proven) / float64(r.Total)
}

// Summary renders a short report.
func (r *Result) Summary() string {
	var names []string
	for n := range r.PerArray {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "bounds checks: %d/%d proven removable (%.0f%%)\n",
		r.Proven, r.Total, 100*r.Ratio())
	for _, n := range names {
		fmt.Fprintf(&sb, "  %s: %d\n", n, r.PerArray[n])
	}
	return sb.String()
}

// Analyzer proves references in bounds. Prop may be nil (no index-array
// bounds available; only affine subscripts are then provable).
type Analyzer struct {
	Info *sem.Info
	Prop *property.Analysis
	// In is the compilation's expression interner, shared with the property
	// analysis (nil disables interning; all uses are nil-safe).
	In     *expr.Interner
	Assume expr.Assumptions
}

// New builds an Analyzer; prop may be nil.
func New(info *sem.Info, prop *property.Analysis) *Analyzer {
	a := &Analyzer{Info: info, Prop: prop, Assume: expr.Assumptions{}}
	if prop != nil {
		a.In = prop.Interner()
	}
	return a
}

// Analyze inspects every array reference of every unit.
func (a *Analyzer) Analyze() *Result {
	res := &Result{Safe: map[*lang.ArrayRef]bool{}, PerArray: map[string]int{}}
	for _, u := range a.Info.Program.Units() {
		a.unit(u, res)
	}
	return res
}

func (a *Analyzer) unit(u *lang.Unit, res *Result) {
	a.walkRefs(u, func(s lang.Stmt, ref *lang.ArrayRef, env expr.Env) {
		res.Total++
		if a.refSafe(u, s, ref, env) {
			res.Safe[ref] = true
			res.Proven++
			res.PerArray[ref.Name]++
		}
	})
}

// walkRefs visits every non-intrinsic array reference of u together with
// the symbolic range environment of its enclosing DO loops — the shared
// traversal of the safety proof (Analyze) and the violation proof
// (Violations).
func (a *Analyzer) walkRefs(u *lang.Unit, visit func(s lang.Stmt, ref *lang.ArrayRef, env expr.Env)) {
	var walk func(stmts []lang.Stmt, env expr.Env)
	inspect := func(s lang.Stmt, env expr.Env) {
		lang.StmtExprs(s, func(e lang.Expr) {
			lang.WalkExpr(e, func(x lang.Expr) bool {
				ref, ok := x.(*lang.ArrayRef)
				if !ok || ref.Intrinsic {
					return true
				}
				visit(s, ref, env)
				return true
			})
		})
	}
	walk = func(stmts []lang.Stmt, env expr.Env) {
		for _, s := range stmts {
			inspect(s, env)
			switch s := s.(type) {
			case *lang.IfStmt:
				walk(s.Then, env)
				for _, arm := range s.Elifs {
					walk(arm.Body, env)
				}
				walk(s.Else, env)
			case *lang.DoStmt:
				inner := env
				lo := a.In.FromAST(s.Lo)
				hi := a.In.FromAST(s.Hi)
				rng := expr.NewRange(lo, hi)
				if s.Step != nil {
					if c, ok := a.In.FromAST(s.Step).IsConst(); ok && c < 0 {
						rng = expr.NewRange(hi, lo)
					} else if !ok {
						rng = expr.Range{}
					}
				}
				inner = env.With(s.Var.Name, rng)
				walk(s.Body, inner)
			case *lang.WhileStmt:
				// Scalars may change unpredictably inside: analyze the
				// body without extending the environment (subscripts
				// depending on while-modified scalars will simply fail
				// the range proof).
				walk(s.Body, env)
			}
		}
	}
	walk(u.Body, expr.Env{})
}

// resolveParams substitutes named integer constants (PARAM declarations)
// by their values, making loop bounds like "do i = 1, n" comparable against
// constant array dimensions.
func (a *Analyzer) resolveParams(u *lang.Unit, e *expr.Expr) *expr.Expr {
	sc := a.Info.Scope(u)
	if sc == nil {
		return e
	}
	for _, name := range sc.Names() {
		sym := sc.Lookup(name)
		if sym != nil && sym.Kind == sem.ParamSym && e.MentionsVar(name) {
			e = e.SubstVar(name, expr.Const(sym.Value))
		}
	}
	return e
}

func (a *Analyzer) resolveEnv(u *lang.Unit, env expr.Env) expr.Env {
	out := expr.Env{}
	for v, r := range env {
		nr := r
		if r.Lo != nil {
			nr.Lo = a.resolveParams(u, r.Lo)
		}
		if r.Hi != nil {
			nr.Hi = a.resolveParams(u, r.Hi)
		}
		out = out.With(v, nr)
	}
	return out
}

// refSafe proves one reference's subscripts within the declared bounds.
func (a *Analyzer) refSafe(u *lang.Unit, at lang.Stmt, ref *lang.ArrayRef, env expr.Env) bool {
	sym := a.Info.LookupIn(u, ref.Name)
	if sym == nil || sym.Kind != sem.ArraySym || len(sym.Dims) != len(ref.Args) {
		return false
	}
	env = a.resolveEnv(u, env)
	// Subscripts that depend on scalars modified inside enclosing WHILE
	// bodies would need flow-sensitive ranges; the env omission above
	// handles DO vars, but an unbound scalar simply has a point range and
	// the proof fails unless the bounds are constants anyway — still
	// sound because we only prove against the env we trust. To remain
	// strictly sound for scalars reassigned between here and the range's
	// derivation we only accept subscripts whose free scalars are either
	// env-bound DO variables or appear directly (point proofs need the
	// subscript itself constant).
	for d, arg := range ref.Args {
		dim := sym.Dims[d]
		lo, hi := expr.Const(dim.Lo), expr.Const(dim.Hi)
		e := a.resolveParams(u, a.In.FromAST(arg))

		rng, ok := expr.Bounds(e, env, a.Assume)
		if !ok {
			rng, ok = a.indirectBounds(u, at, e, env)
		}
		if !ok || rng.Lo == nil || rng.Hi == nil {
			return false
		}
		// Free scalars other than env-bound loop variables make the
		// range valid only at this instant; for bounds proofs that is
		// exactly what we need (the subscript is evaluated here), so a
		// symbolic residue is acceptable only when the comparison is
		// still provable.
		if !expr.ProveLE(lo, rng.Lo, a.Assume) || !expr.ProveLE(rng.Hi, hi, a.Assume) {
			return false
		}
	}
	return true
}

// indirectBounds bounds a subscript containing index-array atoms using the
// closed-form-bounds property.
func (a *Analyzer) indirectBounds(u *lang.Unit, at lang.Stmt, e *expr.Expr, env expr.Env) (expr.Range, bool) {
	if a.Prop == nil {
		return expr.Range{}, false
	}
	arrays := map[string]bool{}
	lang.WalkExpr(e.ToAST(), func(x lang.Expr) bool {
		if ar, ok := x.(*lang.ArrayRef); ok && !ar.Intrinsic {
			arrays[ar.Name] = true
		}
		return true
	})
	if len(arrays) == 0 {
		return expr.Range{}, false
	}
	lo, hi := e, e
	names := make([]string, 0, len(arrays))
	for n := range arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, ia := range names {
		var qlo, qhi *expr.Expr
		for _, arg := range e.ArrayAtoms(ia) {
			r, ok := expr.Bounds(arg, env, a.Assume)
			if !ok || r.Lo == nil || r.Hi == nil {
				return expr.Range{}, false
			}
			qlo = minP(qlo, r.Lo, a.Assume)
			qhi = maxP(qhi, r.Hi, a.Assume)
		}
		if qlo == nil || qhi == nil {
			return expr.Range{}, false
		}
		iaName := ia
		p, ok := a.Prop.VerifyCached(
			func() property.Property { return property.NewBounds(iaName) },
			at, sectionOf(ia, qlo, qhi))
		prop, isB := p.(*property.Bounds)
		if !ok || !isB || prop.Lo == nil || prop.Hi == nil {
			return expr.Range{}, false
		}
		pl := a.resolveParams(u, prop.Lo)
		ph := a.resolveParams(u, prop.Hi)
		for key := range lo.ArrayAtoms(ia) {
			lo = lo.SubstAtom(key, pl)
		}
		for key := range hi.ArrayAtoms(ia) {
			hi = hi.SubstAtom(key, ph)
		}
	}
	rlo, ok1 := expr.Bounds(lo, env, a.Assume)
	rhi, ok2 := expr.Bounds(hi, env, a.Assume)
	if !ok1 || !ok2 {
		return expr.Range{}, false
	}
	return expr.Range{Lo: rlo.Lo, Hi: rhi.Hi}, true
}

// Violation is one subscript proven to lie entirely outside its array's
// declared bounds: every execution of the reference that reaches it faults.
// The inversion of refSafe — and sound under the same over-approximated
// ranges, because a range wholly past a bound certifies that even the
// tightest actual subscript value is past it.
type Violation struct {
	Unit *lang.Unit
	Stmt lang.Stmt
	Ref  *lang.ArrayRef
	// Dim is the offending dimension, 0-based.
	Dim int
	// Low reports the direction: true when the subscript is provably below
	// the lower bound, false when provably above the upper bound.
	Low bool
	// Sub is the resolved symbolic subscript range; Bound is the violated
	// declared bound.
	Sub   expr.Range
	Bound int64
}

// Violations proves subscripts out of bounds: a reference is reported when
// some dimension's symbolic range lies provably and entirely outside the
// declared bounds. References that merely fail the safety proof are not
// violations — only a definite fault qualifies.
func (a *Analyzer) Violations() []Violation {
	var out []Violation
	for _, u := range a.Info.Program.Units() {
		u := u
		a.walkRefs(u, func(s lang.Stmt, ref *lang.ArrayRef, env expr.Env) {
			out = append(out, a.refViolations(u, s, ref, env)...)
		})
	}
	return out
}

func (a *Analyzer) refViolations(u *lang.Unit, at lang.Stmt, ref *lang.ArrayRef, env expr.Env) []Violation {
	sym := a.Info.LookupIn(u, ref.Name)
	if sym == nil || sym.Kind != sem.ArraySym || len(sym.Dims) != len(ref.Args) {
		return nil
	}
	env = a.resolveEnv(u, env)
	var out []Violation
	for d, arg := range ref.Args {
		dim := sym.Dims[d]
		e := a.resolveParams(u, a.In.FromAST(arg))
		rng, ok := expr.Bounds(e, env, a.Assume)
		if !ok {
			rng, ok = a.indirectBounds(u, at, e, env)
		}
		if !ok || rng.Lo == nil || rng.Hi == nil {
			continue
		}
		switch {
		case expr.ProveLE(rng.Hi, expr.Const(dim.Lo-1), a.Assume):
			out = append(out, Violation{Unit: u, Stmt: at, Ref: ref, Dim: d, Low: true, Sub: rng, Bound: dim.Lo})
		case expr.ProveLE(expr.Const(dim.Hi+1), rng.Lo, a.Assume):
			out = append(out, Violation{Unit: u, Stmt: at, Ref: ref, Dim: d, Low: false, Sub: rng, Bound: dim.Hi})
		}
	}
	return out
}

func sectionOf(arr string, lo, hi *expr.Expr) *section.Section {
	return section.New(arr, lo, hi)
}

func minP(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case expr.ProveLE(x, y, a):
		return x
	case expr.ProveLE(y, x, a):
		return y
	default:
		return nil
	}
}

func maxP(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case expr.ProveLE(x, y, a):
		return y
	case expr.ProveLE(y, x, a):
		return x
	default:
		return nil
	}
}
