package boundscheck

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sem"
)

func build(t *testing.T, src string, withProp bool) (*sem.Info, *Analyzer) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	var prop *property.Analysis
	if withProp {
		mod := dataflow.ComputeMod(info)
		prop = property.New(info, cfg.BuildHCG(prog), mod)
	}
	return info, New(info, prop)
}

func TestAffineProven(t *testing.T) {
	src := `
program p
  param n = 50
  real a(n), b(n)
  integer i
  do i = 1, n
    a(i) = b(n + 1 - i)
  end do
  a(25) = 1.0
end
`
	_, an := build(t, src, false)
	res := an.Analyze()
	if res.Total != 3 {
		t.Fatalf("total = %d, want 3", res.Total)
	}
	if res.Proven != 3 {
		t.Errorf("proven = %d/%d, want all\n%s", res.Proven, res.Total, res.Summary())
	}
}

func TestOverflowNotProven(t *testing.T) {
	src := `
program p
  param n = 50
  real a(n)
  integer i
  do i = 1, n
    a(i + 1) = 0.0
  end do
end
`
	_, an := build(t, src, false)
	res := an.Analyze()
	if res.Proven != 0 {
		t.Errorf("a(i+1) can reach n+1; proven = %d", res.Proven)
	}
}

func TestUnknownScalarNotProven(t *testing.T) {
	src := `
program p
  param n = 50
  real a(n)
  integer k
  a(k) = 0.0
end
`
	_, an := build(t, src, false)
	res := an.Analyze()
	if res.Proven != 0 {
		t.Errorf("unbounded scalar subscript proven? %d", res.Proven)
	}
}

func TestIndirectProvenWithProperty(t *testing.T) {
	src := `
program p
  param n = 64
  integer ind(n)
  real x(n), y(n)
  integer i, j, q
  q = 0
  do i = 1, n
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  do j = 1, q
    y(ind(j)) = x(ind(j))
  end do
end
`
	_, with := build(t, src, true)
	resWith := with.Analyze()
	_, without := build(t, src, false)
	resWithout := without.Analyze()
	if resWith.Proven <= resWithout.Proven {
		t.Errorf("property analysis should prove more: %d vs %d",
			resWith.Proven, resWithout.Proven)
	}
	// The indirect accesses y(ind(j)), x(ind(j)) must be among the newly
	// proven ones.
	if resWith.PerArray["y"] == 0 {
		t.Errorf("y(ind(j)) not proven: %s", resWith.Summary())
	}
}

func TestNegativeLowerBound(t *testing.T) {
	src := `
program p
  real a(0:9)
  integer i
  do i = 0, 9
    a(i) = 1.0
  end do
  do i = 1, 10
    a(i - 1) = 2.0
  end do
end
`
	_, an := build(t, src, false)
	res := an.Analyze()
	if res.Proven != res.Total {
		t.Errorf("custom lower bounds: proven %d/%d", res.Proven, res.Total)
	}
}

func TestEliminationSpeedsUpExecution(t *testing.T) {
	src := `
program p
  param n = 200
  real a(n), b(n)
  integer i, r
  do r = 1, 20
    do i = 1, n
      a(i) = b(i) * 0.5 + 1.0
    end do
  end do
end
`
	info, an := build(t, src, false)
	res := an.Analyze()
	if res.Proven == 0 {
		t.Fatal("nothing proven")
	}

	run := func(safe map[*lang.ArrayRef]bool) uint64 {
		in := interp.New(info, interp.Options{
			Machine:  machine.New(machine.Origin2000, 1),
			SafeRefs: safe,
		})
		if err := in.Run(); err != nil {
			t.Fatal(err)
		}
		return in.Machine().Time()
	}
	checked := run(nil)
	unchecked := run(res.Safe)
	if unchecked >= checked {
		t.Errorf("elimination should reduce simulated time: %d vs %d", unchecked, checked)
	}
}

func TestWhileModifiedSubscriptNotProven(t *testing.T) {
	src := `
program p
  param n = 50
  real a(n)
  integer w
  w = n
  do while (w >= 1)
    a(w) = 1.0
    w = w - 1
  end do
end
`
	_, an := build(t, src, false)
	res := an.Analyze()
	// w is only known to start at n; inside the while it has no derived
	// range, so the access must stay checked.
	if res.Proven != 0 {
		t.Errorf("while-modified subscript proven? %d", res.Proven)
	}
}
