// Package cfg builds control-flow graphs for F-lite program units.
//
// Two views are provided:
//
//   - Graph: a flat, statement-level CFG with loop back edges intact. This is
//     what the bounded depth-first searches of the single-indexed access
//     analysis run on (paper §2). Dominators, back edges and natural loops
//     are computed on it, so goto-formed loops are first-class.
//
//   - HGraph (see hcg.go): the hierarchical control graph of §3.2.1, where
//     each DO loop and each unit body is a section node with a single entry
//     and a single exit and back edges are deleted, so every section is a
//     DAG. The demand-driven array property analysis walks this view.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/lang"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	NEntry NodeKind = iota
	NExit
	NStmt      // simple statement (assign, call, print, continue, goto, ...)
	NIfCond    // the condition test of an IF (or one ELSEIF arm)
	NDoHead    // DO loop header (init/test/increment)
	NWhileHead // DO WHILE header (test)
)

func (k NodeKind) String() string {
	switch k {
	case NEntry:
		return "entry"
	case NExit:
		return "exit"
	case NStmt:
		return "stmt"
	case NIfCond:
		return "if"
	case NDoHead:
		return "do"
	case NWhileHead:
		return "while"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is one CFG node.
type Node struct {
	ID   int
	Kind NodeKind
	// Stmt is the statement this node represents: the IfStmt for NIfCond,
	// the DoStmt/WhileStmt for loop headers, the statement itself for
	// NStmt, nil for entry/exit.
	Stmt lang.Stmt
	// CondIndex is, for NIfCond nodes, -1 for the main IF condition or the
	// index of the ELSEIF arm.
	CondIndex int

	Succs []*Node
	Preds []*Node
}

// Pos returns the source position of the node's program point: the ELSEIF
// arm's own position for elif-condition nodes (not the enclosing IF's),
// the statement's position otherwise, and an invalid Pos for entry/exit
// nodes, which have no source counterpart.
func (n *Node) Pos() lang.Pos {
	if n.Stmt == nil {
		return lang.Pos{}
	}
	if n.Kind == NIfCond {
		ifs := n.Stmt.(*lang.IfStmt)
		if n.CondIndex >= 0 && n.CondIndex < len(ifs.Elifs) {
			return ifs.Elifs[n.CondIndex].Pos
		}
	}
	return n.Stmt.Pos()
}

func (n *Node) String() string {
	switch n.Kind {
	case NEntry:
		return fmt.Sprintf("#%d entry", n.ID)
	case NExit:
		return fmt.Sprintf("#%d exit", n.ID)
	case NIfCond:
		return fmt.Sprintf("#%d if %s", n.ID, lang.FormatExpr(n.Stmt.(*lang.IfStmt).Cond))
	case NDoHead:
		return fmt.Sprintf("#%d do %s", n.ID, n.Stmt.(*lang.DoStmt).Var.Name)
	case NWhileHead:
		return fmt.Sprintf("#%d while", n.ID)
	default:
		return fmt.Sprintf("#%d %s", n.ID, firstLine(lang.FormatStmt(n.Stmt)))
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}

// Graph is the flat CFG of one unit.
type Graph struct {
	Unit  *lang.Unit
	Entry *Node
	Exit  *Node
	Nodes []*Node

	// StmtNode maps each statement to its primary node (the header node
	// for loops and IFs).
	StmtNode map[lang.Stmt]*Node

	labelNode map[int]*Node
	gotoFixes []*Node // goto nodes awaiting target edges
}

func (g *Graph) newNode(kind NodeKind, stmt lang.Stmt) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind, Stmt: stmt, CondIndex: -1}
	g.Nodes = append(g.Nodes, n)
	if stmt != nil {
		if _, exists := g.StmtNode[stmt]; !exists {
			g.StmtNode[stmt] = n
		}
	}
	return n
}

func addEdge(from, to *Node) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// Build constructs the flat CFG of a unit.
func Build(u *lang.Unit) *Graph {
	g := &Graph{
		Unit:      u,
		StmtNode:  map[lang.Stmt]*Node{},
		labelNode: map[int]*Node{},
	}
	g.Entry = g.newNode(NEntry, nil)
	g.Exit = g.newNode(NExit, nil)

	first, outs := g.buildStmts(u.Body)
	if first == nil {
		addEdge(g.Entry, g.Exit)
	} else {
		addEdge(g.Entry, first)
		for _, o := range outs {
			addEdge(o, g.Exit)
		}
	}
	// Wire GOTO edges now that all label targets exist.
	for _, gn := range g.gotoFixes {
		target := g.labelNode[gn.Stmt.(*lang.GotoStmt).Target]
		if target != nil {
			addEdge(gn, target)
		} else {
			// sem rejects unknown labels; be safe anyway.
			addEdge(gn, g.Exit)
		}
	}
	return g
}

// buildStmts builds the subgraph for a statement list and returns its first
// node plus the dangling nodes whose control continues after the list.
func (g *Graph) buildStmts(stmts []lang.Stmt) (first *Node, outs []*Node) {
	for _, s := range stmts {
		f, o := g.buildStmt(s)
		if f == nil {
			continue
		}
		if first == nil {
			first = f
		}
		for _, p := range outs {
			addEdge(p, f)
		}
		outs = o
	}
	return first, outs
}

func (g *Graph) buildStmt(s lang.Stmt) (first *Node, outs []*Node) {
	register := func(n *Node) {
		if l := s.Label(); l != 0 {
			g.labelNode[l] = n
		}
	}
	switch s := s.(type) {
	case *lang.AssignStmt, *lang.CallStmt, *lang.PrintStmt, *lang.ContinueStmt:
		n := g.newNode(NStmt, s)
		register(n)
		return n, []*Node{n}

	case *lang.GotoStmt:
		n := g.newNode(NStmt, s)
		register(n)
		g.gotoFixes = append(g.gotoFixes, n)
		return n, nil // control never falls through

	case *lang.ReturnStmt, *lang.StopStmt:
		n := g.newNode(NStmt, s)
		register(n)
		addEdge(n, g.Exit)
		return n, nil

	case *lang.IfStmt:
		cond := g.newNode(NIfCond, s)
		register(cond)
		thenFirst, thenOuts := g.buildStmts(s.Then)
		if thenFirst != nil {
			addEdge(cond, thenFirst)
			outs = append(outs, thenOuts...)
		} else {
			outs = append(outs, cond)
		}
		prevCond := cond
		for i := range s.Elifs {
			ec := g.newNode(NIfCond, s)
			ec.CondIndex = i
			addEdge(prevCond, ec)
			bodyFirst, bodyOuts := g.buildStmts(s.Elifs[i].Body)
			if bodyFirst != nil {
				addEdge(ec, bodyFirst)
				outs = append(outs, bodyOuts...)
			} else {
				outs = append(outs, ec)
			}
			prevCond = ec
		}
		if s.Else != nil {
			elseFirst, elseOuts := g.buildStmts(s.Else)
			if elseFirst != nil {
				addEdge(prevCond, elseFirst)
				outs = append(outs, elseOuts...)
			} else {
				outs = append(outs, prevCond)
			}
		} else {
			outs = append(outs, prevCond)
		}
		return cond, outs

	case *lang.DoStmt:
		head := g.newNode(NDoHead, s)
		register(head)
		bodyFirst, bodyOuts := g.buildStmts(s.Body)
		if bodyFirst != nil {
			addEdge(head, bodyFirst)
			for _, o := range bodyOuts {
				addEdge(o, head) // back edge
			}
		} else {
			addEdge(head, head)
		}
		return head, []*Node{head}

	case *lang.WhileStmt:
		head := g.newNode(NWhileHead, s)
		register(head)
		bodyFirst, bodyOuts := g.buildStmts(s.Body)
		if bodyFirst != nil {
			addEdge(head, bodyFirst)
			for _, o := range bodyOuts {
				addEdge(o, head)
			}
		} else {
			addEdge(head, head)
		}
		return head, []*Node{head}
	}
	panic(fmt.Sprintf("cfg: unknown statement %T", s))
}

// ---------------------------------------------------------------------------
// Dominators, back edges, natural loops

// Dominators computes the immediate dominator of every reachable node using
// the iterative Cooper–Harvey–Kennedy algorithm. The entry node dominates
// itself.
func (g *Graph) Dominators() map[*Node]*Node {
	order := g.ReversePostorder()
	index := make(map[*Node]int, len(order))
	for i, n := range order {
		index[n] = i
	}
	idom := map[*Node]*Node{g.Entry: g.Entry}
	intersect := func(a, b *Node) *Node {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			if n == g.Entry {
				continue
			}
			var newIdom *Node
			for _, p := range n.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given the idom map.
func Dominates(idom map[*Node]*Node, a, b *Node) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// ReversePostorder returns the reachable nodes in reverse postorder of a
// DFS from entry (a topological order when back edges are ignored).
func (g *Graph) ReversePostorder() []*Node {
	var post []*Node
	seen := map[*Node]bool{}
	var dfs func(n *Node)
	dfs = func(n *Node) {
		seen[n] = true
		for _, s := range n.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, n)
	}
	dfs(g.Entry)
	// reverse
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Head *Node
	// Stmt is the AST loop statement when the head corresponds to one
	// (DoStmt or WhileStmt); nil for goto-formed loops.
	Stmt lang.Stmt
	// Nodes is the set of nodes in the loop, including the head.
	Nodes map[*Node]bool
}

// Contains reports whether n belongs to the loop.
func (l *Loop) Contains(n *Node) bool { return l.Nodes[n] }

// Body returns the loop's nodes sorted by ID (deterministic).
func (l *Loop) Body() []*Node {
	out := make([]*Node, 0, len(l.Nodes))
	for n := range l.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NaturalLoops finds all natural loops: for every back edge u→h (h
// dominates u), the loop is h plus all nodes that reach u without passing
// through h. Loops sharing a head are merged.
func (g *Graph) NaturalLoops() []*Loop {
	idom := g.Dominators()
	byHead := map[*Node]*Loop{}
	for _, u := range g.Nodes {
		for _, h := range u.Succs {
			if !Dominates(idom, h, u) {
				continue
			}
			l := byHead[h]
			if l == nil {
				l = &Loop{Head: h, Nodes: map[*Node]bool{h: true}}
				if h.Kind == NDoHead || h.Kind == NWhileHead {
					l.Stmt = h.Stmt
				}
				byHead[h] = l
			}
			// Walk backwards from u collecting the loop body.
			var stack []*Node
			if !l.Nodes[u] {
				l.Nodes[u] = true
				stack = append(stack, u)
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range n.Preds {
					if !l.Nodes[p] {
						l.Nodes[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(byHead))
	for _, l := range byHead {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Head.ID < loops[j].Head.ID })
	return loops
}

// LoopFor returns the natural loop whose header corresponds to the given
// AST loop statement, or nil.
func (g *Graph) LoopFor(stmt lang.Stmt) *Loop {
	head := g.StmtNode[stmt]
	if head == nil {
		return nil
	}
	for _, l := range g.NaturalLoops() {
		if l.Head == head {
			return l
		}
	}
	return nil
}
