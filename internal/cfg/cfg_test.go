package cfg

import (
	"testing"

	"repro/internal/lang"
)

func parse(t *testing.T, src string) *lang.Unit {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog.Main
}

func TestBuildStraightLine(t *testing.T) {
	u := parse(t, "program p\n integer a, b\n a = 1\n b = 2\nend\n")
	g := Build(u)
	// entry -> a=1 -> b=2 -> exit
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry succs: %v", g.Entry.Succs)
	}
	n1 := g.Entry.Succs[0]
	if n1.Kind != NStmt || len(n1.Succs) != 1 {
		t.Fatalf("n1: %v", n1)
	}
	n2 := n1.Succs[0]
	if n2.Succs[0] != g.Exit {
		t.Fatalf("n2 does not reach exit: %v", n2)
	}
}

func TestBuildIfElse(t *testing.T) {
	u := parse(t, `
program p
  integer a, b
  if (a > 0) then
    b = 1
  else
    b = 2
  end if
  b = 3
end
`)
	g := Build(u)
	cond := g.Entry.Succs[0]
	if cond.Kind != NIfCond || len(cond.Succs) != 2 {
		t.Fatalf("cond: %v succs %d", cond, len(cond.Succs))
	}
	// Both branches must merge at b=3.
	merge := cond.Succs[0].Succs[0]
	if merge != cond.Succs[1].Succs[0] {
		t.Error("branches do not merge")
	}
	if len(merge.Preds) != 2 {
		t.Errorf("merge preds = %d, want 2", len(merge.Preds))
	}
}

func TestBuildDoLoopBackEdge(t *testing.T) {
	u := parse(t, `
program p
  integer i, s
  do i = 1, 10
    s = s + i
  end do
  s = 0
end
`)
	g := Build(u)
	head := g.Entry.Succs[0]
	if head.Kind != NDoHead {
		t.Fatalf("head: %v", head)
	}
	// head -> body and head -> follow
	if len(head.Succs) != 2 {
		t.Fatalf("head succs: %v", head.Succs)
	}
	body := head.Succs[0]
	if body.Succs[0] != head {
		t.Error("missing back edge from body to head")
	}
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops: %d", len(loops))
	}
	if loops[0].Head != head || !loops[0].Contains(body) || len(loops[0].Nodes) != 2 {
		t.Errorf("loop contents wrong: %v", loops[0].Body())
	}
	if loops[0].Stmt == nil {
		t.Error("loop should map to its DoStmt")
	}
}

func TestGotoLoop(t *testing.T) {
	u := parse(t, `
program p
  integer i, n
  i = 0
10 continue
  i = i + 1
  if (i < n) goto 10
  i = 0
end
`)
	g := Build(u)
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("goto loop not found: %d loops", len(loops))
	}
	l := loops[0]
	if l.Stmt != nil {
		t.Error("goto loop should have no AST loop stmt")
	}
	// Loop should include the continue (head), i=i+1, if, goto.
	if len(l.Nodes) != 4 {
		t.Errorf("loop nodes = %d, want 4: %v", len(l.Nodes), l.Body())
	}
}

func TestDominators(t *testing.T) {
	u := parse(t, `
program p
  integer a, b
  if (a > 0) then
    b = 1
  end if
  b = 2
end
`)
	g := Build(u)
	idom := g.Dominators()
	cond := g.Entry.Succs[0]
	thenN := cond.Succs[0]
	var merge *Node
	for _, s := range cond.Succs {
		if s != thenN {
			merge = s
		}
	}
	if merge == nil {
		merge = thenN.Succs[0]
	}
	if !Dominates(idom, g.Entry, merge) || !Dominates(idom, cond, merge) {
		t.Error("entry and cond should dominate merge")
	}
	if Dominates(idom, thenN, merge) {
		t.Error("then branch must not dominate merge")
	}
}

func TestWhileLoop(t *testing.T) {
	u := parse(t, `
program p
  integer i
  do while (i > 0)
    i = i - 1
  end do
end
`)
	g := Build(u)
	loops := g.NaturalLoops()
	if len(loops) != 1 || loops[0].Head.Kind != NWhileHead {
		t.Fatalf("while loop: %v", loops)
	}
}

func TestNestedLoops(t *testing.T) {
	u := parse(t, `
program p
  integer i, j, s
  do i = 1, 10
    do j = 1, 10
      s = s + 1
    end do
  end do
end
`)
	g := Build(u)
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("loops: %d", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Head.ID > inner.Head.ID {
		outer, inner = inner, outer
	}
	for n := range inner.Nodes {
		if !outer.Contains(n) {
			t.Errorf("outer loop should contain inner node %v", n)
		}
	}
	ds, ok := outer.Stmt.(*lang.DoStmt)
	if !ok || ds.Var.Name != "i" {
		t.Errorf("outer loop stmt: %v", outer.Stmt)
	}
	if g.LoopFor(outer.Stmt) == nil {
		t.Error("LoopFor lookup failed")
	}
}

func TestReturnEdges(t *testing.T) {
	u := parse(t, `
program p
  integer a
  if (a > 0) then
    return
  end if
  a = 1
end
`)
	g := Build(u)
	retNode := g.StmtNode[u.Body[0].(*lang.IfStmt).Then[0]]
	if len(retNode.Succs) != 1 || retNode.Succs[0] != g.Exit {
		t.Errorf("return should go to exit: %v", retNode.Succs)
	}
}

// --- HCG tests --------------------------------------------------------------

func buildHCG(t *testing.T, src string) *HProgram {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildHCG(prog)
}

func TestHCGSections(t *testing.T) {
	hp := buildHCG(t, `
program p
  integer i, j, s
  s = 0
  do i = 1, 10
    do j = 1, 10
      s = s + 1
    end do
  end do
  call sub1
end
subroutine sub1
  integer x
  x = 1
end
`)
	main := hp.UnitGraph("p")
	if main == nil {
		t.Fatal("no main graph")
	}
	// main section: entry, s=0, do-i, call, exit
	var doNode, callNode *HNode
	for _, n := range main.Nodes {
		switch n.Kind {
		case HDo:
			doNode = n
		case HCall:
			callNode = n
		}
	}
	if doNode == nil || callNode == nil {
		t.Fatal("missing do/call nodes")
	}
	if doNode.Body == nil || doNode.Body.Parent != doNode {
		t.Error("do body section missing or parent wrong")
	}
	// The inner loop is a node inside the outer body.
	var innerDo *HNode
	for _, n := range doNode.Body.Nodes {
		if n.Kind == HDo {
			innerDo = n
		}
	}
	if innerDo == nil {
		t.Error("inner do not nested in outer body")
	}
	if main.Cyclic {
		t.Error("structured program should not be cyclic")
	}
	if hp.UnitGraph("sub1") == nil {
		t.Error("subroutine graph missing")
	}
}

func TestHCGRTopOrder(t *testing.T) {
	hp := buildHCG(t, `
program p
  integer a, b
  if (a > 0) then
    b = 1
  else
    b = 2
  end if
  b = 3
end
`)
	g := hp.UnitGraph("p")
	idx := g.RTopIndex()
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if idx[s] >= idx[n] {
				t.Errorf("rtop violated: succ %v not before %v", s, n)
			}
		}
	}
	if idx[g.Exit] != 0 {
		t.Errorf("exit should be first in rtop, got %d", idx[g.Exit])
	}
}

func TestHCGBackwardGotoMarksCyclic(t *testing.T) {
	hp := buildHCG(t, `
program p
  integer i, n
  i = 0
10 continue
  i = i + 1
  if (i < n) goto 10
end
`)
	g := hp.UnitGraph("p")
	if !g.Cyclic {
		t.Error("backward goto should mark section cyclic")
	}
	// Still a DAG: rtop must satisfy the edge ordering.
	idx := g.RTopIndex()
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if idx[s] >= idx[n] {
				t.Errorf("edge %v -> %v violates rtop", n, s)
			}
		}
	}
}

func TestHCGForwardGotoIsDAGEdge(t *testing.T) {
	hp := buildHCG(t, `
program p
  integer i
  i = 1
  goto 20
  i = 2
20 continue
  i = 3
end
`)
	g := hp.UnitGraph("p")
	if g.Cyclic {
		t.Error("forward goto must not mark section cyclic")
	}
}

func TestHCGGotoOutOfLoop(t *testing.T) {
	hp := buildHCG(t, `
program p
  integer i, n
  do i = 1, n
    if (i == 3) goto 20
  end do
20 continue
end
`)
	g := hp.UnitGraph("p")
	var doNode *HNode
	for _, n := range g.Nodes {
		if n.Kind == HDo {
			doNode = n
		}
	}
	if doNode == nil {
		t.Fatal("no do node")
	}
	if !doNode.Body.Cyclic {
		t.Error("loop body escaped by goto must be conservative (cyclic)")
	}
	if g.Cyclic {
		t.Error("enclosing section should stay acyclic for a forward escape")
	}
}

func TestHCGDominates(t *testing.T) {
	hp := buildHCG(t, `
program p
  integer a, b
  a = 1
  if (a > 0) then
    b = 1
  end if
  b = 2
end
`)
	g := hp.UnitGraph("p")
	var assign1, ifn, last *HNode
	for _, n := range g.Nodes {
		switch {
		case n.Kind == HStmt && assign1 == nil:
			assign1 = n
		case n.Kind == HIf:
			ifn = n
		case n.Kind == HStmt:
			last = n
		}
	}
	if !g.Dominates(g.Entry, g.Exit) || !g.Dominates(assign1, ifn) {
		t.Error("expected domination missing")
	}
	if ifn == nil || last == nil {
		t.Fatal("nodes not found")
	}
}

func TestHCGCallSites(t *testing.T) {
	hp := buildHCG(t, `
program p
  integer i
  call a
  do i = 1, 3
    call b
  end do
end
subroutine a
  call b
end
subroutine b
  return
end
`)
	sitesB := hp.CallSites("b")
	if len(sitesB) != 2 {
		t.Fatalf("call sites of b: %d, want 2", len(sitesB))
	}
	// One site is nested inside the loop body section.
	nested := false
	for _, s := range sitesB {
		if s.Graph.Parent != nil {
			nested = true
		}
	}
	if !nested {
		t.Error("the loop-body call site should live in a loop section")
	}
	if len(hp.CallSites("a")) != 1 {
		t.Error("call sites of a")
	}
	if len(hp.CallSites("nosuch")) != 0 {
		t.Error("phantom call sites")
	}
}

func TestHCGStmtNodeIndex(t *testing.T) {
	prog, err := lang.Parse(`
program p
  integer i, s
  do i = 1, 3
    s = s + i
  end do
end
`)
	if err != nil {
		t.Fatal(err)
	}
	hp := BuildHCG(prog)
	loop := prog.Main.Body[0].(*lang.DoStmt)
	n := hp.StmtNode[loop]
	if n == nil || n.Kind != HDo {
		t.Fatalf("loop node: %v", n)
	}
	inner := loop.Body[0]
	in := hp.StmtNode[inner]
	if in == nil || in.Graph != n.Body {
		t.Error("inner statement should index into the loop-body section")
	}
}

func TestNaturalLoopsDeterministic(t *testing.T) {
	u := parse(t, `
program p
  integer i, j, k, s
  do i = 1, 2
    s = s + 1
  end do
  do j = 1, 2
    do k = 1, 2
      s = s + 1
    end do
  end do
end
`)
	g := Build(u)
	first := g.NaturalLoops()
	for trial := 0; trial < 5; trial++ {
		again := g.NaturalLoops()
		if len(again) != len(first) {
			t.Fatal("loop count changed")
		}
		for i := range again {
			if again[i].Head != first[i].Head {
				t.Fatal("loop order not deterministic")
			}
		}
	}
}
