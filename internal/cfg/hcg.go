package cfg

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/comperr"
	"repro/internal/expr"
	"repro/internal/lang"
)

// HKind classifies hierarchical control graph nodes (paper §3.2.1: each
// statement, loop and procedure is a node; loop bodies and procedure bodies
// are section nodes with a single entry and a single exit).
type HKind int

// HCG node kinds.
const (
	HEntry HKind = iota
	HExit
	HStmt  // simple statement
	HIf    // an IF (or ELSEIF) condition test
	HDo    // a DO loop; Body holds the loop-body section
	HWhile // a DO WHILE loop; Body holds the loop-body section
	HCall  // a CALL statement
)

func (k HKind) String() string {
	switch k {
	case HEntry:
		return "entry"
	case HExit:
		return "exit"
	case HStmt:
		return "stmt"
	case HIf:
		return "if"
	case HDo:
		return "do"
	case HWhile:
		return "while"
	case HCall:
		return "call"
	}
	return fmt.Sprintf("HKind(%d)", int(k))
}

// HNode is one node of a hierarchical control graph section.
type HNode struct {
	ID        int
	Kind      HKind
	Stmt      lang.Stmt
	CondIndex int     // for HIf: -1 main condition, else ELSEIF arm index
	Body      *HGraph // for HDo/HWhile: the loop-body section
	Graph     *HGraph // the section this node belongs to

	Succs []*HNode
	Preds []*HNode
}

func (n *HNode) String() string {
	switch n.Kind {
	case HEntry:
		return fmt.Sprintf("h%d entry", n.ID)
	case HExit:
		return fmt.Sprintf("h%d exit", n.ID)
	case HDo:
		return fmt.Sprintf("h%d do %s", n.ID, n.Stmt.(*lang.DoStmt).Var.Name)
	case HWhile:
		return fmt.Sprintf("h%d while", n.ID)
	case HCall:
		return fmt.Sprintf("h%d call %s", n.ID, n.Stmt.(*lang.CallStmt).Name)
	case HIf:
		return fmt.Sprintf("h%d if", n.ID)
	default:
		return fmt.Sprintf("h%d %s", n.ID, firstLine(lang.FormatStmt(n.Stmt)))
	}
}

// HGraph is one section of the HCG: a unit body or a loop body. Back edges
// are deleted, so the section is a DAG; sections containing backward GOTOs
// are flagged Cyclic and must be summarized conservatively.
type HGraph struct {
	Unit   *lang.Unit
	Parent *HNode // the HDo/HWhile node owning this loop-body section; nil for a unit body
	Entry  *HNode
	Exit   *HNode
	Nodes  []*HNode
	Cyclic bool

	rtop []*HNode
}

// HProgram holds the HCG of every unit of a program.
type HProgram struct {
	Program *lang.Program
	Units   map[*lang.Unit]*HGraph
	// StmtNode maps every statement to its HCG node (the HDo/HWhile node
	// for loops, the HIf node for conditionals).
	StmtNode map[lang.Stmt]*HNode
	// In hash-conses the canonical expressions the analyses derive from this
	// program. It is confined to the (single-goroutine) analyses that run
	// over the HCG after construction; set In to nil to disable interning
	// (the NoExprIntern ablation).
	In *expr.Interner
}

// CallSites returns every HCall node (in any unit) that calls the given
// unit, in deterministic order.
func (hp *HProgram) CallSites(callee string) []*HNode {
	var out []*HNode
	for _, u := range hp.Program.Units() {
		g := hp.Units[u]
		if g == nil {
			continue
		}
		var walk func(sec *HGraph)
		walk = func(sec *HGraph) {
			for _, n := range sec.Nodes {
				if n.Kind == HCall && n.Stmt.(*lang.CallStmt).Name == callee {
					out = append(out, n)
				}
				if n.Body != nil {
					walk(n.Body)
				}
			}
		}
		walk(g)
	}
	return out
}

// UnitGraph returns the HCG section of the named unit, or nil.
func (hp *HProgram) UnitGraph(name string) *HGraph {
	u := hp.Program.Unit(name)
	if u == nil {
		return nil
	}
	return hp.Units[u]
}

type hcgBuilder struct {
	unit   *lang.Unit
	nextID int
	labels map[int]*HNode
	// pending backward/cross-section gotos discovered during the build
	gotos []*HNode
	// par, when non-nil, is the work-stealing worker executing this
	// builder: loop bodies are spawned as independent tasks instead of
	// built inline, IDs are deferred, and labels/gotos are recollected by
	// the deterministic finalizeUnitHCG walk after the pool drains.
	par *stealWorker
}

func (b *hcgBuilder) newNode(g *HGraph, kind HKind, stmt lang.Stmt) *HNode {
	n := &HNode{ID: b.nextID, Kind: kind, Stmt: stmt, CondIndex: -1, Graph: g}
	b.nextID++
	g.Nodes = append(g.Nodes, n)
	return n
}

func hAddEdge(from, to *HNode) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// BuildHCG constructs hierarchical control graphs for every unit.
func BuildHCG(prog *lang.Program) *HProgram {
	return BuildHCGJobs(prog, 1)
}

// BuildHCGJobs is BuildHCG with the per-unit builds spread over up to jobs
// goroutines; see BuildHCGCtx for the pooling contract.
func BuildHCGJobs(prog *lang.Program, jobs int) *HProgram {
	hp, _ := BuildHCGCtx(context.Background(), prog, jobs)
	return hp
}

// BuildHCGCtx is BuildHCGJobs under a context: workers stop executing
// tasks once ctx fires and the call returns a typed cancellation error
// (in-flight section builds, which are short and allocation-only, are
// allowed to finish). With jobs > 1 the build runs on a work-stealing
// pool whose tasks are individual loop-body sections, so a single large
// unit parallelizes, not just multi-unit programs; a deterministic
// renumbering pass afterward (finalizeUnitHCG) makes the result — node
// IDs, label binding, StmtNode first-wins indexing, everything —
// identical to the serial build regardless of scheduling. jobs < 1 means
// GOMAXPROCS.
//
// A panic inside a pool worker is captured and re-raised on the calling
// goroutine after the pool drains, so callers that isolate panics (the irrd
// server) observe it as an ordinary recoverable panic instead of a process
// crash.
func BuildHCGCtx(ctx context.Context, prog *lang.Program, jobs int) (*HProgram, error) {
	hp := &HProgram{
		Program:  prog,
		Units:    map[*lang.Unit]*HGraph{},
		StmtNode: map[lang.Stmt]*HNode{},
		In:       expr.NewInterner(),
	}
	units := prog.Units()
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	graphs := make([]*HGraph, len(units))
	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if jobs <= 1 || len(units) == 0 {
		for i, u := range units {
			if canceled() {
				return nil, comperr.Canceled(ctx.Err())
			}
			graphs[i] = buildUnitHCG(u)
		}
	} else {
		pool := newStealPool(jobs, canceled)
		roots := make([]stealTask, len(units))
		for i, u := range units {
			roots[i] = func(w *stealWorker) {
				b := &hcgBuilder{unit: u, par: w}
				g := b.buildSection(u.Body, nil)
				g.Unit = u
				graphs[i] = g
			}
		}
		pool.run(roots)
		if canceled() {
			return nil, comperr.Canceled(ctx.Err())
		}
		for i, u := range units {
			finalizeUnitHCG(graphs[i], u)
		}
	}
	for i, u := range units {
		g := graphs[i]
		hp.Units[u] = g
		var index func(sec *HGraph)
		index = func(sec *HGraph) {
			for _, n := range sec.Nodes {
				if n.Stmt != nil {
					if _, ok := hp.StmtNode[n.Stmt]; !ok {
						hp.StmtNode[n.Stmt] = n
					}
				}
				if n.Body != nil {
					index(n.Body)
				}
			}
		}
		index(g)
	}
	return hp, nil
}

// buildUnitHCG builds one unit's section graph; safe to call concurrently
// for distinct units.
func buildUnitHCG(u *lang.Unit) *HGraph {
	b := &hcgBuilder{unit: u, labels: map[int]*HNode{}}
	g := b.buildSection(u.Body, nil)
	g.Unit = u
	b.resolveGotos(g)
	return g
}

// buildSection builds one section graph from a statement list.
func (b *hcgBuilder) buildSection(stmts []lang.Stmt, parent *HNode) *HGraph {
	g := &HGraph{Unit: b.unit, Parent: parent}
	g.Entry = b.newNode(g, HEntry, nil)
	g.Exit = b.newNode(g, HExit, nil)
	first, outs := b.buildStmts(g, stmts)
	if first == nil {
		hAddEdge(g.Entry, g.Exit)
	} else {
		hAddEdge(g.Entry, first)
		for _, o := range outs {
			hAddEdge(o, g.Exit)
		}
	}
	return g
}

func (b *hcgBuilder) buildStmts(g *HGraph, stmts []lang.Stmt) (first *HNode, outs []*HNode) {
	for _, s := range stmts {
		f, o := b.buildStmt(g, s)
		if f == nil {
			continue
		}
		if first == nil {
			first = f
		}
		for _, p := range outs {
			hAddEdge(p, f)
		}
		outs = o
	}
	return first, outs
}

func (b *hcgBuilder) buildStmt(g *HGraph, s lang.Stmt) (first *HNode, outs []*HNode) {
	register := func(n *HNode) {
		if l := s.Label(); l != 0 {
			b.labels[l] = n
		}
	}
	if b.par != nil {
		// Parallel build: labels and gotos are recollected by the
		// finalize walk, and IDs assigned there; registering here would
		// race across section tasks.
		register = func(*HNode) {}
	}
	switch s := s.(type) {
	case *lang.AssignStmt, *lang.PrintStmt, *lang.ContinueStmt:
		n := b.newNode(g, HStmt, s)
		register(n)
		return n, []*HNode{n}

	case *lang.CallStmt:
		n := b.newNode(g, HCall, s)
		register(n)
		return n, []*HNode{n}

	case *lang.GotoStmt:
		n := b.newNode(g, HStmt, s)
		register(n)
		if b.par == nil {
			b.gotos = append(b.gotos, n) // parallel builds recollect in finalize
		}
		return n, nil

	case *lang.ReturnStmt, *lang.StopStmt:
		n := b.newNode(g, HStmt, s)
		register(n)
		hAddEdge(n, g.Exit)
		return n, nil

	case *lang.IfStmt:
		cond := b.newNode(g, HIf, s)
		register(cond)
		thenFirst, thenOuts := b.buildStmts(g, s.Then)
		if thenFirst != nil {
			hAddEdge(cond, thenFirst)
			outs = append(outs, thenOuts...)
		} else {
			outs = append(outs, cond)
		}
		prev := cond
		for i := range s.Elifs {
			ec := b.newNode(g, HIf, s)
			ec.CondIndex = i
			hAddEdge(prev, ec)
			bf, bo := b.buildStmts(g, s.Elifs[i].Body)
			if bf != nil {
				hAddEdge(ec, bf)
				outs = append(outs, bo...)
			} else {
				outs = append(outs, ec)
			}
			prev = ec
		}
		if s.Else != nil {
			ef, eo := b.buildStmts(g, s.Else)
			if ef != nil {
				hAddEdge(prev, ef)
				outs = append(outs, eo...)
			} else {
				outs = append(outs, prev)
			}
		} else {
			outs = append(outs, prev)
		}
		return cond, outs

	case *lang.DoStmt:
		n := b.newNode(g, HDo, s)
		register(n)
		b.buildBody(n, s.Body)
		return n, []*HNode{n}

	case *lang.WhileStmt:
		n := b.newNode(g, HWhile, s)
		register(n)
		b.buildBody(n, s.Body)
		return n, []*HNode{n}
	}
	panic(fmt.Sprintf("hcg: unknown statement %T", s))
}

// buildBody attaches the loop-body section of an HDo/HWhile node: inline
// in a serial build, or as an independent work-stealing task in a
// parallel build. The spawned task writes only n.Body and its own fresh
// section graph; the pool drain orders that write before any reader.
func (b *hcgBuilder) buildBody(n *HNode, stmts []lang.Stmt) {
	if b.par == nil {
		n.Body = b.buildSection(stmts, n)
		return
	}
	b.par.spawn(func(w *stealWorker) {
		cb := &hcgBuilder{unit: b.unit, par: w}
		n.Body = cb.buildSection(stmts, n)
	})
}

// finalizeUnitHCG makes a parallel build indistinguishable from the
// serial one: it walks the section tree in creation order — numbering
// each node and descending into a loop body immediately after its owning
// node, exactly the interleaving the serial builder's depth-first
// construction produces — while recollecting labels (the first node
// created for a statement is the one the serial register bound) and
// gotos, then resolves gotos against the renumbered IDs.
func finalizeUnitHCG(g *HGraph, u *lang.Unit) {
	b := &hcgBuilder{unit: u, labels: map[int]*HNode{}}
	seen := map[lang.Stmt]bool{}
	var walk func(sec *HGraph)
	walk = func(sec *HGraph) {
		for _, n := range sec.Nodes {
			n.ID = b.nextID
			b.nextID++
			if n.Stmt != nil && !seen[n.Stmt] {
				seen[n.Stmt] = true
				if l := n.Stmt.Label(); l != 0 {
					b.labels[l] = n
				}
				if _, ok := n.Stmt.(*lang.GotoStmt); ok {
					b.gotos = append(b.gotos, n)
				}
			}
			if n.Body != nil {
				walk(n.Body)
			}
		}
	}
	walk(g)
	b.resolveGotos(g)
}

// resolveGotos wires forward gotos within a section and marks sections with
// backward or cross-section gotos as cyclic (their summaries must then be
// conservative; the paper's HCG deletes back edges to stay acyclic).
func (b *hcgBuilder) resolveGotos(root *HGraph) {
	for _, gn := range b.gotos {
		target := b.labels[gn.Stmt.(*lang.GotoStmt).Target]
		if target == nil {
			hAddEdge(gn, gn.Graph.Exit)
			continue
		}
		if target.Graph == gn.Graph && target.ID > gn.ID {
			hAddEdge(gn, target) // forward goto in the same section: a DAG edge
			continue
		}
		// Backward goto (a goto-formed loop) or a jump out of nested
		// blocks: drop the edge and route control to the section exit.
		hAddEdge(gn, gn.Graph.Exit)
		if target.Graph == gn.Graph {
			// Backward goto in the same section: the section loops.
			gn.Graph.Cyclic = true
			continue
		}
		// Jump out of nested blocks: every section the jump escapes can
		// terminate early, so their summaries must be conservative. If
		// the target lies *before* the goto in the enclosing section the
		// enclosing section loops too.
		for sec := gn.Graph; sec != nil && sec != target.Graph; {
			sec.Cyclic = true
			if sec.Parent == nil {
				break
			}
			sec = sec.Parent.Graph
		}
		if target.Graph != gn.Graph {
			// Find the escaping node (the ancestor of the goto inside the
			// target's section) to decide direction.
			anc := gn
			for anc != nil && anc.Graph != target.Graph {
				anc = anc.Graph.Parent
			}
			if anc != nil && target.ID <= anc.ID {
				target.Graph.Cyclic = true
			}
		}
	}
}

// RTop returns the section's nodes in reverse topological order (every node
// appears before its predecessors; the exit comes first, the entry last).
// The order is cached. QuerySolver's worklist is prioritised by this order,
// which guarantees a node is processed only after all its successors
// (paper §3.2.2).
func (g *HGraph) RTop() []*HNode {
	if g.rtop != nil {
		return g.rtop
	}
	// Topological sort by DFS postorder from entry, then reverse... here
	// we want reverse-topological: a plain DFS postorder of the DAG lists
	// successors before the node only if we emit after visiting succs.
	var order []*HNode
	seen := map[*HNode]bool{}
	var dfs func(n *HNode)
	dfs = func(n *HNode) {
		seen[n] = true
		for _, s := range n.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, n)
	}
	dfs(g.Entry)
	// order is a postorder: all successors of n precede n. That is
	// exactly reverse topological order.
	// Unreachable nodes (possible after goto rerouting) go last.
	if len(order) < len(g.Nodes) {
		inOrder := map[*HNode]bool{}
		for _, n := range order {
			inOrder[n] = true
		}
		var rest []*HNode
		for _, n := range g.Nodes {
			if !inOrder[n] {
				rest = append(rest, n)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].ID > rest[j].ID })
		order = append(order, rest...)
	}
	g.rtop = order
	return order
}

// RTopIndex returns a map from node to its position in RTop order.
func (g *HGraph) RTopIndex() map[*HNode]int {
	idx := map[*HNode]int{}
	for i, n := range g.RTop() {
		idx[n] = i
	}
	return idx
}

// Dominates reports whether a dominates every path from entry to b inside
// this section (simple O(N·E) computation, adequate for section sizes).
func (g *HGraph) Dominates(a, b *HNode) bool {
	if a == b {
		return true
	}
	// b is dominated by a iff b is unreachable from entry with a removed.
	seen := map[*HNode]bool{a: true}
	var stack []*HNode
	if g.Entry != a {
		stack = append(stack, g.Entry)
		seen[g.Entry] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return false
		}
		for _, s := range n.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}
