package cfg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The HCG build parallelizes *within* one compilation: every loop body is
// an independent section graph, so building it is an independent task. A
// work-stealing pool keeps all workers busy on a single large unit —
// per-worker deques, owner LIFO (the freshly spawned, cache-hot subtree
// first), thieves stealing half a victim's deque from the front (the
// oldest, largest subtrees) — instead of the per-unit fan-out that left a
// one-unit program serial.
//
// Determinism is not the scheduler's job: tasks only allocate nodes into
// section-local slices, and BuildHCGCtx renumbers every node afterward in
// a deterministic walk (see finalizeUnitHCG), so any execution order
// yields an identical HProgram.

// stealTask builds one section subtree; it receives the executing worker
// so nested sections can be spawned onto its own deque.
type stealTask func(w *stealWorker)

// stealWorker is one worker of a stealPool.
type stealWorker struct {
	pool  *stealPool
	mu    sync.Mutex
	deque []stealTask
}

// stealPool coordinates the workers of one parallel build.
type stealPool struct {
	workers []*stealWorker
	// pending counts spawned-but-unfinished tasks; incremented before a
	// task becomes visible, decremented after it completes, so a zero
	// read with every deque empty means the build is done.
	pending atomic.Int64
	// canceled, when non-nil and true, makes workers drain remaining
	// tasks without executing them.
	canceled func() bool
	// First panic of any task, re-raised by run() after the drain.
	panicOnce sync.Once
	panicked  any
	hasPanic  atomic.Bool
}

func newStealPool(workers int, canceled func() bool) *stealPool {
	p := &stealPool{canceled: canceled}
	for i := 0; i < workers; i++ {
		p.workers = append(p.workers, &stealWorker{pool: p})
	}
	return p
}

// spawn makes t runnable on w's deque.
func (w *stealWorker) spawn(t stealTask) {
	w.pool.pending.Add(1)
	w.mu.Lock()
	w.deque = append(w.deque, t)
	w.mu.Unlock()
}

// pop takes the youngest task of w's own deque (LIFO).
func (w *stealWorker) pop() stealTask {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.deque); n > 0 {
		t := w.deque[n-1]
		w.deque[n-1] = nil
		w.deque = w.deque[:n-1]
		return t
	}
	return nil
}

// stealFrom takes the older half of a victim's deque (FIFO end — the
// largest subtrees), keeps the first stolen task to run now and queues the
// rest locally. Returns nil if the victim had nothing.
func (w *stealWorker) stealFrom(victim *stealWorker) stealTask {
	victim.mu.Lock()
	n := len(victim.deque)
	if n == 0 {
		victim.mu.Unlock()
		return nil
	}
	take := (n + 1) / 2
	stolen := make([]stealTask, take)
	copy(stolen, victim.deque[:take])
	rest := copy(victim.deque, victim.deque[take:])
	for i := rest; i < n; i++ {
		victim.deque[i] = nil
	}
	victim.deque = victim.deque[:rest]
	victim.mu.Unlock()

	if len(stolen) > 1 {
		w.mu.Lock()
		w.deque = append(w.deque, stolen[1:]...)
		w.mu.Unlock()
	}
	return stolen[0]
}

// exec runs one task, isolating panics (first wins; later tasks are
// skipped but still drained so pending reaches zero).
func (w *stealWorker) exec(t stealTask) {
	defer w.pool.pending.Add(-1)
	if w.pool.hasPanic.Load() || (w.pool.canceled != nil && w.pool.canceled()) {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			w.pool.panicOnce.Do(func() { w.pool.panicked = r })
			w.pool.hasPanic.Store(true)
		}
	}()
	t(w)
}

// loop runs tasks until the pool has none in flight anywhere.
func (w *stealWorker) loop() {
	self := -1
	for i, o := range w.pool.workers {
		if o == w {
			self = i
		}
	}
	for {
		if t := w.pop(); t != nil {
			w.exec(t)
			continue
		}
		stole := false
		for i := 1; i < len(w.pool.workers); i++ {
			victim := w.pool.workers[(self+i)%len(w.pool.workers)]
			if t := w.stealFrom(victim); t != nil {
				w.exec(t)
				stole = true
				break
			}
		}
		if stole {
			continue
		}
		if w.pool.pending.Load() == 0 {
			return
		}
		// Someone is still executing (and may spawn); yield rather than
		// hammer the deque locks.
		runtime.Gosched()
	}
}

// run seeds worker 0 with the root tasks, runs every worker to
// completion, and re-raises the first captured panic.
func (p *stealPool) run(roots []stealTask) {
	for _, t := range roots {
		p.workers[0].spawn(t)
	}
	var wg sync.WaitGroup
	for _, w := range p.workers[1:] {
		wg.Add(1)
		go func(w *stealWorker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	p.workers[0].loop()
	wg.Wait()
	if p.panicked != nil {
		panic(p.panicked)
	}
}
