package cfg

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/lang"
)

// stealSrc is a deliberately loop-heavy multi-unit program: nested DO and
// WHILE bodies, labels, forward and backward gotos, so the parallel build
// exercises spawning, stealing and the finalize renumbering across every
// statement class.
func stealSrc() string {
	var sb strings.Builder
	sb.WriteString("program main\n  integer i, j, k, n, x(100)\n")
	for l := 0; l < 6; l++ {
		fmt.Fprintf(&sb, "  do i = 1, n\n")
		fmt.Fprintf(&sb, "    do j = 1, n\n")
		fmt.Fprintf(&sb, "      x(j) = j + %d\n", l)
		fmt.Fprintf(&sb, "      do k = 1, n\n        x(k) = x(k) + 1\n      end do\n")
		fmt.Fprintf(&sb, "    end do\n")
		fmt.Fprintf(&sb, "    if (i > 2) then\n      x(i) = 0\n    else\n      x(i) = 1\n    end if\n")
		fmt.Fprintf(&sb, "  end do\n")
	}
	sb.WriteString("  call helper\n")
	sb.WriteString("  goto 20\n")
	sb.WriteString("  x(1) = -1\n")
	sb.WriteString("20 x(2) = 2\n")
	sb.WriteString("end\n")
	sb.WriteString("subroutine helper\n  integer i\n")
	sb.WriteString("10 continue\n")
	sb.WriteString("  do i = 1, n\n    x(i) = x(i) * 2\n    do while (x(i) > 10)\n      x(i) = x(i) - 1\n    end do\n  end do\n")
	sb.WriteString("  n = n - 1\n")
	sb.WriteString("  if (n > 0) then\n    goto 10\n  end if\n")
	sb.WriteString("end\n")
	return sb.String()
}

// graphSignature renders every structural fact of an HCG deterministically:
// node IDs, kinds, cond indices, statement text, edges, cyclic flags.
func graphSignature(g *HGraph) string {
	var sb strings.Builder
	var walk func(sec *HGraph, depth int)
	walk = func(sec *HGraph, depth int) {
		fmt.Fprintf(&sb, "%*ssection entry=h%d exit=h%d cyclic=%v\n",
			depth*2, "", sec.Entry.ID, sec.Exit.ID, sec.Cyclic)
		for _, n := range sec.Nodes {
			fmt.Fprintf(&sb, "%*s  h%d kind=%s cond=%d", depth*2, "", n.ID, n.Kind, n.CondIndex)
			if n.Stmt != nil {
				fmt.Fprintf(&sb, " stmt=%q", firstLine(lang.FormatStmt(n.Stmt)))
			}
			sb.WriteString(" succs=[")
			for i, s := range n.Succs {
				if i > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "h%d", s.ID)
			}
			sb.WriteString("] preds=[")
			for i, p := range n.Preds {
				if i > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "h%d", p.ID)
			}
			sb.WriteString("]\n")
			if n.Body != nil {
				walk(n.Body, depth+1)
			}
		}
	}
	walk(g, 0)
	return sb.String()
}

func programSignature(hp *HProgram) string {
	var sb strings.Builder
	for _, u := range hp.Program.Units() {
		fmt.Fprintf(&sb, "== unit %s ==\n", u.Name)
		sb.WriteString(graphSignature(hp.Units[u]))
	}
	// StmtNode must index identical nodes (compare via ID per unit).
	for _, u := range hp.Program.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			if n := hp.StmtNode[s]; n != nil {
				fmt.Fprintf(&sb, "stmtnode %q -> h%d (%s)\n",
					firstLine(lang.FormatStmt(s)), n.ID, n.Graph.Unit.Name)
			}
			return true
		})
	}
	return sb.String()
}

// TestParallelHCGDeterministic builds the same program serially and with
// the work-stealing pool at several widths: every structural signature
// must be byte-identical.
func TestParallelHCGDeterministic(t *testing.T) {
	src := stealSrc()
	parse := func() *lang.Program {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return prog
	}
	serial := programSignature(BuildHCG(parse()))
	for _, jobs := range []int{2, 3, 8} {
		for round := 0; round < 10; round++ {
			hp, err := BuildHCGCtx(context.Background(), parse(), jobs)
			if err != nil {
				t.Fatalf("jobs=%d: %v", jobs, err)
			}
			got := programSignature(hp)
			if got != serial {
				t.Fatalf("jobs=%d round %d: parallel HCG differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
					jobs, round, serial, got)
			}
		}
	}
}

// TestParallelHCGPanicPropagates checks a panic inside a section task is
// re-raised once on the calling goroutine after the pool drains.
func TestParallelHCGPanicPropagates(t *testing.T) {
	prog, err := lang.Parse(stealSrc())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one nested statement so the builder panics mid-task.
	u := prog.Units()[0]
	lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
		if do, ok := s.(*lang.DoStmt); ok && len(do.Body) > 0 {
			do.Body[len(do.Body)-1] = nil // builder panics on unknown statement
			return false
		}
		return true
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected the section-task panic to propagate")
		}
	}()
	_, _ = BuildHCGCtx(context.Background(), prog, 4)
}

// TestParallelHCGCancel checks cancellation returns the typed error.
func TestParallelHCGCancel(t *testing.T) {
	prog, err := lang.Parse(stealSrc())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildHCGCtx(ctx, prog, 4); err == nil {
		t.Fatal("expected a cancellation error")
	}
}
