// Package comperr defines the compiler's typed error taxonomy and the
// cooperative cancellation / resource-limit guard that the analyses poll.
//
// Every error that crosses the public API boundary wraps exactly one of the
// four kind sentinels (ErrParse, ErrAnalysis, ErrResourceLimit,
// ErrCanceled), so callers classify failures with errors.Is instead of
// string matching, and the CLIs and the irrd server map them to distinct
// exit codes and HTTP statuses. Cancellation errors additionally wrap the
// context error (context.Canceled or context.DeadlineExceeded), so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.DeadlineExceeded)
// hold.
package comperr

import (
	"context"
	"errors"
	"fmt"
)

// The error kinds of the public API. They are sentinels: match with
// errors.Is, never by string.
var (
	// ErrParse marks source text the parser rejected.
	ErrParse = errors.New("parse error")
	// ErrAnalysis marks a failure inside semantic analysis or the
	// transformation passes (including internal invariant violations).
	ErrAnalysis = errors.New("analysis error")
	// ErrResourceLimit marks a compilation or execution that exceeded a
	// configured bound (source bytes, query-propagation steps, simulated
	// machine steps, server admission) instead of running unbounded.
	ErrResourceLimit = errors.New("resource limit exceeded")
	// ErrCanceled marks a compilation or execution aborted by context
	// cancellation or deadline expiry; it always also wraps the
	// context error.
	ErrCanceled = errors.New("compilation canceled")
)

// Error pairs one kind sentinel with the underlying cause. errors.Is and
// errors.As traverse both: the kind classifies, the cause explains.
type Error struct {
	kind error
	err  error
}

// Error renders the cause; the kind is for classification, not prose.
func (e *Error) Error() string { return e.err.Error() }

// Unwrap exposes the kind sentinel and the cause to errors.Is / errors.As.
func (e *Error) Unwrap() []error { return []error{e.kind, e.err} }

// Kind returns the kind sentinel this error was classified as.
func (e *Error) Kind() error { return e.kind }

// Wrap classifies err under kind. A nil err stays nil; an err already
// classified under the same kind is returned unchanged.
func Wrap(kind, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, kind) {
		return err
	}
	return &Error{kind: kind, err: err}
}

// Parsef builds an ErrParse-classified error.
func Parsef(format string, args ...any) error {
	return &Error{kind: ErrParse, err: fmt.Errorf(format, args...)}
}

// Analysisf builds an ErrAnalysis-classified error.
func Analysisf(format string, args ...any) error {
	return &Error{kind: ErrAnalysis, err: fmt.Errorf(format, args...)}
}

// Limitf builds an ErrResourceLimit-classified error.
func Limitf(format string, args ...any) error {
	return &Error{kind: ErrResourceLimit, err: fmt.Errorf(format, args...)}
}

// Canceled builds an ErrCanceled-classified error around a context error
// (nil defaults to context.Canceled), preserving errors.Is against both the
// sentinel and the context error.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &Error{kind: ErrCanceled, err: cause}
}

// KindOf returns the kind sentinel err is classified under, or nil for an
// unclassified (internal) error. Bare context errors count as ErrCanceled.
func KindOf(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return ErrCanceled
	case errors.Is(err, ErrResourceLimit):
		return ErrResourceLimit
	case errors.Is(err, ErrParse):
		return ErrParse
	case errors.Is(err, ErrAnalysis):
		return ErrAnalysis
	}
	return nil
}

// KindString names the kind for machine-readable reports (the irrd error
// envelope): "parse", "analysis", "resource_limit", "canceled", or
// "internal" for unclassified errors.
func KindString(err error) string {
	switch KindOf(err) {
	case ErrParse:
		return "parse"
	case ErrAnalysis:
		return "analysis"
	case ErrResourceLimit:
		return "resource_limit"
	case ErrCanceled:
		return "canceled"
	}
	return "internal"
}

// Exit codes of the CLIs, one per error kind (0 success, 1 internal,
// 2 usage — the flag package's convention).
const (
	ExitOK       = 0
	ExitInternal = 1
	ExitUsage    = 2
	ExitParse    = 3
	ExitAnalysis = 4
	ExitLimit    = 5
	ExitCanceled = 6
	// ExitDiagnostics is not an error kind: irrlint exits with it when
	// diagnostics reach the -fail-on threshold on an otherwise successful
	// run, so scripts can tell "program has findings" from "tool failed".
	ExitDiagnostics = 7
)

// ExitCode maps an error to the CLI exit code of its kind.
func ExitCode(err error) int {
	switch KindOf(err) {
	case nil:
		if err == nil {
			return ExitOK
		}
		return ExitInternal
	case ErrParse:
		return ExitParse
	case ErrAnalysis:
		return ExitAnalysis
	case ErrResourceLimit:
		return ExitLimit
	case ErrCanceled:
		return ExitCanceled
	}
	return ExitInternal
}
