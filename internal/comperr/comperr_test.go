package comperr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestKindsAreDistinct(t *testing.T) {
	kinds := []error{ErrParse, ErrAnalysis, ErrResourceLimit, ErrCanceled}
	for i, a := range kinds {
		for j, b := range kinds {
			if (i == j) != errors.Is(Wrap(a, fmt.Errorf("x")), b) {
				t.Errorf("kind %v vs %v: wrong errors.Is", a, b)
			}
		}
	}
}

func TestWrapPreservesCause(t *testing.T) {
	cause := fmt.Errorf("line 3: unexpected token")
	err := Wrap(ErrParse, cause)
	if !errors.Is(err, ErrParse) || !errors.Is(err, cause) {
		t.Fatalf("Wrap lost kind or cause: %v", err)
	}
	if err.Error() != cause.Error() {
		t.Fatalf("Error() = %q, want the cause %q", err.Error(), cause.Error())
	}
	// Re-wrapping under the same kind is the identity.
	if again := Wrap(ErrParse, err); again != err {
		t.Fatalf("double Wrap rebuilt the error")
	}
	var te *Error
	if !errors.As(err, &te) || te.Kind() != ErrParse {
		t.Fatalf("errors.As(*Error) failed or wrong kind")
	}
}

func TestWrapNil(t *testing.T) {
	if Wrap(ErrParse, nil) != nil {
		t.Fatalf("Wrap(kind, nil) must be nil")
	}
}

func TestCanceledWrapsContextError(t *testing.T) {
	err := Canceled(context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Canceled must wrap both the sentinel and the context error: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deadline error must not match context.Canceled")
	}
	if def := Canceled(nil); !errors.Is(def, context.Canceled) {
		t.Fatalf("Canceled(nil) should default to context.Canceled")
	}
}

func TestKindStringAndExitCode(t *testing.T) {
	cases := []struct {
		err  error
		kind string
		code int
	}{
		{nil, "internal", ExitOK},
		{fmt.Errorf("boom"), "internal", ExitInternal},
		{Parsef("p"), "parse", ExitParse},
		{Analysisf("a"), "analysis", ExitAnalysis},
		{Limitf("l"), "resource_limit", ExitLimit},
		{Canceled(nil), "canceled", ExitCanceled},
		{context.DeadlineExceeded, "canceled", ExitCanceled},
	}
	for _, c := range cases {
		if c.err != nil && KindString(c.err) != c.kind {
			t.Errorf("KindString(%v) = %q, want %q", c.err, KindString(c.err), c.kind)
		}
		if ExitCode(c.err) != c.code {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, ExitCode(c.err), c.code)
		}
	}
}

func TestGuardNilIsNoOp(t *testing.T) {
	var g *Guard
	for i := 0; i < 10_000; i++ {
		g.Step()
		g.Check()
	}
	g.Barrier()
	if g.CheckFn() != nil {
		t.Fatalf("nil guard must return a nil CheckFn")
	}
	if NewGuard(context.Background(), 0) != nil {
		t.Fatalf("background context with no budget should build a disabled guard")
	}
}

func TestGuardStepBudget(t *testing.T) {
	g := NewGuard(context.Background(), 5)
	err := func() (err error) {
		defer RecoverAbort(&err)
		for i := 0; i < 100; i++ {
			g.Step()
		}
		return nil
	}()
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("exhausted step budget should be ErrResourceLimit, got %v", err)
	}
}

func TestGuardCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGuard(ctx, 0)
	err := func() (err error) {
		defer RecoverAbort(&err)
		for i := 0; i < 10*pollEvery; i++ {
			g.Check()
		}
		return nil
	}()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled guard should abort with ErrCanceled, got %v", err)
	}
}

func TestGuardBarrierImmediate(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	g := NewGuard(ctx, 0)
	err := func() (err error) {
		defer RecoverAbort(&err)
		g.Barrier() // must fire on the very first call, no sampling
		return nil
	}()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("barrier should fire immediately with the deadline error, got %v", err)
	}
}

func TestRecoverAbortPassesOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("foreign panic should pass through, got %v", r)
		}
	}()
	var err error
	func() {
		defer RecoverAbort(&err)
		panic("boom")
	}()
}
