package comperr

import "context"

// Guard is the cooperative cancellation and resource-limit checkpoint the
// analyses poll: the property analysis counts one Step per query-propagation
// node visit (bounding total propagation work), and the bounded depth-first
// searches call Check per visited CFG node. When the context fires or the
// step budget is exhausted, the checkpoint panics with *Abort; the pipeline
// recovers it at its boundary and converts it into the typed error. A nil
// *Guard is a valid disabled guard (every method is a cheap no-op), so the
// analyses thread it unconditionally — exactly the nil-recorder idiom of
// package obs.
//
// Checkpoints never alter analysis results: they only read the context and
// a counter, so an unfired guard is behavior-neutral and verdicts are
// byte-identical with and without one.
type Guard struct {
	ctx  context.Context
	done <-chan struct{}
	// steps counts query-propagation node visits against maxSteps.
	steps    int64
	maxSteps int64
	// poll rate-limits context reads: the done channel is sampled once per
	// pollEvery checkpoints, keeping the per-visit cost to an increment.
	poll uint32
}

// pollEvery is the checkpoint sampling interval for context reads. Query
// steps and bDFS visits run in microseconds, so a fired deadline is noticed
// within well under a millisecond of analysis work.
const pollEvery = 256

// NewGuard builds a guard enforcing ctx and, when maxQuerySteps > 0, a
// budget of query-propagation steps. It returns nil (the disabled guard)
// when there is nothing to enforce — a background context and no budget.
func NewGuard(ctx context.Context, maxQuerySteps int) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Guard{ctx: ctx, done: ctx.Done(), maxSteps: int64(maxQuerySteps)}
	if g.done == nil && g.maxSteps <= 0 {
		return nil
	}
	return g
}

// Abort is the panic payload of a fired checkpoint. It deliberately does
// not implement error: nothing may handle it except RecoverAbort at the
// pipeline boundary, so an unexpected escape fails loudly.
type Abort struct{ Err error }

// Step counts one query-propagation node visit, aborting when the budget
// is exhausted or the context has fired.
func (g *Guard) Step() {
	if g == nil {
		return
	}
	g.steps++
	if g.maxSteps > 0 && g.steps > g.maxSteps {
		panic(&Abort{Err: Limitf("query propagation exceeded %d steps", g.maxSteps)})
	}
	g.pollCtx()
}

// Check is the budget-free checkpoint (bDFS node visits, worker-pool
// iterations): it only samples the context.
func (g *Guard) Check() {
	if g == nil {
		return
	}
	g.pollCtx()
}

// CheckFn returns Check as a closure for callback-shaped hooks (the bDFS
// Config), or nil when the guard is disabled so the hook costs nothing.
func (g *Guard) CheckFn() func() {
	if g == nil {
		return nil
	}
	return g.Check
}

// Barrier polls the context immediately (no sampling): called at phase
// boundaries, where a fired deadline must not start the next phase.
func (g *Guard) Barrier() {
	if g == nil || g.done == nil {
		return
	}
	select {
	case <-g.done:
		panic(&Abort{Err: Canceled(g.ctx.Err())})
	default:
	}
}

func (g *Guard) pollCtx() {
	if g.done == nil {
		return
	}
	g.poll++
	if g.poll < pollEvery {
		return
	}
	g.poll = 0
	select {
	case <-g.done:
		panic(&Abort{Err: Canceled(g.ctx.Err())})
	default:
	}
}

// RecoverAbort converts an in-flight *Abort panic into *errp; any other
// panic is re-raised. Use as `defer comperr.RecoverAbort(&err)` at the one
// function that owns the compilation's error return.
func RecoverAbort(errp *error) {
	if r := recover(); r != nil {
		if a, ok := r.(*Abort); ok {
			*errp = a.Err
			return
		}
		panic(r)
	}
}
