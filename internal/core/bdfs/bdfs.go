// Package bdfs implements the bounded depth-first search of Lin & Padua
// (PLDI 2000), Figure 2. bDFS walks a control-flow graph under two
// controlling predicates:
//
//   - fbound(u): when true, the search does not expand u's successors (u is a
//     boundary of the search);
//   - ffailed(v): when true for a successor v about to be entered, the whole
//     search terminates immediately with a failed result.
//
// The single-indexed access analyses (§2.2 consecutively-written arrays,
// §2.3 array stacks) are built from a handful of bDFS invocations with
// different predicate pairs.
package bdfs

import "repro/internal/cfg"

// Result of a bounded depth-first search.
type Result bool

// Search outcomes.
const (
	Failed    Result = false
	Succeeded Result = true
)

// Config parameterises one search.
type Config struct {
	// Succs returns the successors to explore from a node. Using a
	// closure here lets callers restrict the walk to a loop's node set
	// (with a virtual exit for edges leaving the region).
	Succs func(*cfg.Node) []*cfg.Node
	// FBound marks search boundaries (successors are not expanded).
	FBound func(*cfg.Node) bool
	// FFailed aborts the whole search when true for a node about to be
	// visited.
	FFailed func(*cfg.Node) bool
	// FProc, if non-nil, is invoked on every visited node (the paper's
	// fproc hook).
	FProc func(*cfg.Node)
	// Check, if non-nil, is invoked on every visited node before it is
	// processed: the cooperative cancellation checkpoint (it aborts by
	// panicking with comperr.Abort, recovered at the pipeline boundary).
	// It never influences the search result.
	Check func()
}

// Run performs the bounded depth-first search from start, following
// Figure 2 of the paper: the start node itself is processed and bounded but
// never tested with FFailed (failure applies to nodes *reached* by the
// search).
func Run(start *cfg.Node, c Config) Result {
	visited := map[*cfg.Node]bool{}
	return run(start, c, visited)
}

// RunFromSuccessors starts the search at every successor of start instead
// of start itself, applying FFailed to those successors as the paper's
// inner loop does. This matches invocations phrased as "any path from
// statement A to ...".
func RunFromSuccessors(start *cfg.Node, c Config) Result {
	visited := map[*cfg.Node]bool{}
	for _, v := range c.Succs(start) {
		if c.FFailed(v) {
			return Failed
		}
		if !visited[v] && run(v, c, visited) == Failed {
			return Failed
		}
	}
	return Succeeded
}

func run(u *cfg.Node, c Config, visited map[*cfg.Node]bool) Result {
	visited[u] = true
	if c.Check != nil {
		c.Check()
	}
	if c.FProc != nil {
		c.FProc(u)
	}
	if c.FBound(u) {
		return Succeeded
	}
	for _, v := range c.Succs(u) {
		if c.FFailed(v) {
			return Failed
		}
		if !visited[v] && run(v, c, visited) == Failed {
			return Failed
		}
	}
	return Succeeded
}
