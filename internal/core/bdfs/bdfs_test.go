package bdfs

import (
	"testing"

	"repro/internal/cfg"
)

// chain builds a linear CFG n0 -> n1 -> ... -> nk and returns the nodes.
func chain(k int) []*cfg.Node {
	nodes := make([]*cfg.Node, k)
	for i := range nodes {
		nodes[i] = &cfg.Node{ID: i}
	}
	for i := 0; i+1 < k; i++ {
		nodes[i].Succs = []*cfg.Node{nodes[i+1]}
	}
	return nodes
}

func succs(n *cfg.Node) []*cfg.Node { return n.Succs }

func TestBoundStopsExpansion(t *testing.T) {
	ns := chain(4)
	visited := map[int]bool{}
	res := Run(ns[0], Config{
		Succs:   succs,
		FProc:   func(n *cfg.Node) { visited[n.ID] = true },
		FBound:  func(n *cfg.Node) bool { return n.ID == 1 },
		FFailed: func(n *cfg.Node) bool { return n.ID == 2 },
	})
	if res != Succeeded {
		t.Error("search should succeed: bound reached before failure")
	}
	if !visited[0] || !visited[1] || visited[2] {
		t.Errorf("visited: %v", visited)
	}
}

func TestFailedAbortsSearch(t *testing.T) {
	ns := chain(4)
	res := Run(ns[0], Config{
		Succs:   succs,
		FBound:  func(n *cfg.Node) bool { return n.ID == 3 },
		FFailed: func(n *cfg.Node) bool { return n.ID == 2 },
	})
	if res != Failed {
		t.Error("failure node before the bound must fail the search")
	}
}

func TestStartNodeNotTestedForFailure(t *testing.T) {
	ns := chain(2)
	res := Run(ns[0], Config{
		Succs:   succs,
		FBound:  func(n *cfg.Node) bool { return n.ID == 1 },
		FFailed: func(n *cfg.Node) bool { return n.ID == 0 },
	})
	if res != Succeeded {
		t.Error("the start node must not trigger FFailed")
	}
}

func TestRunFromSuccessorsTestsImmediateSuccessor(t *testing.T) {
	ns := chain(2)
	res := RunFromSuccessors(ns[0], Config{
		Succs:   succs,
		FBound:  func(n *cfg.Node) bool { return false },
		FFailed: func(n *cfg.Node) bool { return n.ID == 1 },
	})
	if res != Failed {
		t.Error("a failing immediate successor must fail the search")
	}
}

func TestCycleTermination(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 with no bound and no failure: must terminate and
	// succeed via the visited set.
	ns := chain(3)
	ns[2].Succs = []*cfg.Node{ns[0]}
	res := Run(ns[0], Config{
		Succs:   succs,
		FBound:  func(n *cfg.Node) bool { return false },
		FFailed: func(n *cfg.Node) bool { return false },
	})
	if res != Succeeded {
		t.Error("cyclic graph without failures should succeed")
	}
}

func TestBranchingAllPathsChecked(t *testing.T) {
	// 0 -> {1, 2}; 1 is bound, 2 is failure: the search must fail because
	// one path hits the failure.
	n0 := &cfg.Node{ID: 0}
	n1 := &cfg.Node{ID: 1}
	n2 := &cfg.Node{ID: 2}
	n0.Succs = []*cfg.Node{n1, n2}
	res := Run(n0, Config{
		Succs:   succs,
		FBound:  func(n *cfg.Node) bool { return n.ID == 1 },
		FFailed: func(n *cfg.Node) bool { return n.ID == 2 },
	})
	if res != Failed {
		t.Error("any failing path fails the whole search")
	}
}

func TestResultIndependentOfAdjacencyOrder(t *testing.T) {
	// 0 -> {1, 2}, 1 -> 3, 2 -> 3; bound at 3, failure at 2: the search
	// must fail regardless of the order successors are listed in.
	build := func(swap bool) *cfg.Node {
		n := make([]*cfg.Node, 4)
		for i := range n {
			n[i] = &cfg.Node{ID: i}
		}
		if swap {
			n[0].Succs = []*cfg.Node{n[2], n[1]}
		} else {
			n[0].Succs = []*cfg.Node{n[1], n[2]}
		}
		n[1].Succs = []*cfg.Node{n[3]}
		n[2].Succs = []*cfg.Node{n[3]}
		return n[0]
	}
	for _, swap := range []bool{false, true} {
		res := Run(build(swap), Config{
			Succs:   succs,
			FBound:  func(n *cfg.Node) bool { return n.ID == 3 },
			FFailed: func(n *cfg.Node) bool { return n.ID == 2 },
		})
		if res != Failed {
			t.Errorf("swap=%v: expected failure", swap)
		}
	}
}
