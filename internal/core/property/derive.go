package property

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/section"
)

// Definition-site recurrence derivation (Bhosale & Eigenmann,
// arXiv:1911.05839): instead of only *consuming* index-array properties at
// use sites, derive them from the loops that fill the arrays. A prefix-sum
// fill
//
//	do i = lo, hi:  x(i+1) = x(i) + d(i)
//
// makes x monotonically non-decreasing by construction whenever every
// per-step increment d(i) is provably nonnegative, strictly increasing —
// and therefore injective — when every increment is positive. The
// derivation runs a small abstract fixpoint over the filling loop: each
// write is abstracted to its increment, increments are mapped into the
// sign lattice SignPos ⊐ SignNonNeg ⊐ SignUnknown, and control-flow joins
// (an IF whose arms each perform the same-shaped recurrence step with
// different increments) meet their signs. The resulting array-level fact
// feeds the Monotonic and Injective provers' SummarizeLoop, so it flows
// through the ordinary query path: cached by VerifyCached, scoped by
// SharedMemo keys, killed by interchange invalidation, and re-derived each
// outer timestep when the fill loop sits inside one.

// DeriveSign is the abstract increment lattice of the fixpoint: the sign
// that could be proven for every per-step increment of the recurrence.
type DeriveSign int

// Lattice values, ordered so the join (meet towards less knowledge) of two
// branches is their minimum.
const (
	// SignUnknown: some increment's sign could not be proven.
	SignUnknown DeriveSign = iota
	// SignNonNeg: every increment is provably >= 0 (monotonic fill).
	SignNonNeg
	// SignPos: every increment is provably >= 1 (strictly monotonic, hence
	// injective, fill).
	SignPos
)

func (s DeriveSign) String() string {
	switch s {
	case SignPos:
		return "positive"
	case SignNonNeg:
		return "nonnegative"
	}
	return "unknown"
}

// joinSign meets two branch signs: knowledge survives a control-flow join
// only if both arms provide it.
func joinSign(a, b DeriveSign) DeriveSign {
	if a < b {
		return a
	}
	return b
}

// maxDeriveDepth bounds the nesting of derivations through bounds
// sub-queries (an increment array may itself be recurrence-filled).
const maxDeriveDepth = 2

// DeriveResult is the outcome of one definition-site derivation.
type DeriveResult struct {
	// Array is the filled index array.
	Array string
	// Sign is the joined sign of every per-step increment. SignUnknown
	// means the filler matched a recurrence shape but no usable property
	// could be proven — the irrlint IRR2004 condition.
	Sign DeriveSign
	// Var is the fill loop's index variable, reinterpreted as the pair
	// index of the increments in Incs.
	Var string
	// Incs are the per-branch increments, expressions over Var as the pair
	// index (one entry for a straight-line fill, one per arm for a
	// conditional fill).
	Incs []*expr.Expr
	// PairLo/PairHi is the pair-index range the increments cover; pair k
	// relates elements k and k+1.
	PairLo, PairHi *expr.Expr
	// ElemLo/ElemHi is the element-space section over which the derived
	// property holds (pairs [PairLo:PairHi] span elements
	// [PairLo:PairHi+1]).
	ElemLo, ElemHi *expr.Expr
	// Steps is the human-readable fixpoint log, surfaced by -explain
	// traces and the IRR2004 diagnostic's related notes.
	Steps []string
}

// Monotonic reports whether the derivation proved (at least) a
// non-decreasing fill.
func (r *DeriveResult) Monotonic() bool { return r.Sign >= SignNonNeg }

// Strict reports whether the derivation proved a strictly increasing fill.
func (r *DeriveResult) Strict() bool { return r.Sign == SignPos }

// deriveForLoop runs the recurrence derivation for one HDo node unless the
// NoRecurrence ablation disables it, charging the failure counter for
// recurrence-shaped fills whose increments stay unproven.
func (c *Ctx) deriveForLoop(n *cfg.HNode, array string) *DeriveResult {
	if c.s.a.NoRecurrence {
		return nil
	}
	dr := deriveRecurrence(c, n, array)
	if dr != nil && dr.Sign == SignUnknown {
		c.s.a.Stats.DerivedFailed++
	}
	return dr
}

// deriveRecurrence runs the definition-site fixpoint over one DO loop. nil
// means the loop is not a recurrence-shaped fill of array (or the fact
// would not be stable at the use site); a non-nil result with SignUnknown
// means the shape matched but the increment signs resisted proof.
func deriveRecurrence(c *Ctx, n *cfg.HNode, array string) *DeriveResult {
	d, ok := n.Stmt.(*lang.DoStmt)
	if !ok {
		return nil
	}
	lo, hi, dense, okRange := envRange(c.in(), d)
	if !okRange || !dense || lo == nil || hi == nil {
		return nil
	}
	v := d.Var.Name

	var incs []*expr.Expr
	var pairLoOff, pairHiOff *expr.Expr
	var steps []string
	if m := matchRecurrence(c.in(), d, array); m != nil {
		incs = []*expr.Expr{m.dist}
		pairLoOff, pairHiOff = m.pairLoOff, m.pairHiOff
		steps = append(steps,
			fmt.Sprintf("matched recurrence fill of %s with per-step increment %v", array, m.dist))
	} else if cm := matchConditionalRecurrence(c.in(), d, array); cm != nil {
		incs = cm.dists
		pairLoOff, pairHiOff = cm.pairLoOff, cm.pairHiOff
		steps = append(steps,
			fmt.Sprintf("matched conditional recurrence fill of %s with %d branch increments", array, len(incs)))
	} else {
		return nil
	}

	// The derived fact mentions the increments' free symbols and the loop
	// bounds; any of them modified between this definition and the use
	// site invalidates it (the "no redefinition in between" condition).
	stableVars := union(exprVars(lo), exprVars(hi))
	stableArrs := union(exprArrays(lo), exprArrays(hi))
	for _, inc := range incs {
		stableVars = union(stableVars, removeVar(exprVars(inc), v))
		stableArrs = union(stableArrs, exprArrays(inc))
	}
	if c.SeenModified(stableVars, stableArrs) {
		return nil
	}

	res := &DeriveResult{
		Array:  array,
		Var:    v,
		Incs:   incs,
		PairLo: lo.Add(pairLoOff),
		PairHi: hi.Add(pairHiOff),
	}
	res.ElemLo, res.ElemHi = res.PairLo, res.PairHi.AddConst(1)

	// The abstract step: join the proven sign of every branch increment
	// over the pair range.
	sign := SignPos
	for _, inc := range incs {
		s, why := c.proveIncSign(n, inc, v, res.PairLo, res.PairHi)
		steps = append(steps, why...)
		sign = joinSign(sign, s)
	}
	res.Sign = sign
	if sign == SignUnknown {
		steps = append(steps, fmt.Sprintf(
			"derivation failed: some increment of %s has unknown sign", array))
	} else {
		steps = append(steps, fmt.Sprintf(
			"fixpoint: every increment %s, so %s is monotonic (strict: %t) over elements [%v:%v]",
			sign, array, sign == SignPos, res.ElemLo, res.ElemHi))
	}
	res.Steps = steps

	if c.s.trace {
		for _, st := range res.Steps {
			c.s.a.Rec.Event("query.step",
				obs.F("class", "derive"),
				obs.F("node", n.String()),
				obs.F("outcome", st))
		}
	}
	return res
}

// proveIncSign proves the sign of one increment over the pair range,
// trying, in order: array-term nonnegativity via nested bounds sub-queries
// (an increment like len(k) is nonnegative when the length array's derived
// value bounds say so), a direct sign proof, and a range bound over the
// extended environment (which handles mod(...) idioms).
func (c *Ctx) proveIncSign(n *cfg.HNode, inc *expr.Expr, v string, pairLo, pairHi *expr.Expr) (DeriveSign, []string) {
	a := c.s.a
	assume := c.Assume()
	var steps []string
	env := c.Env().With(v, expr.NewRange(pairLo, pairHi))

	if arrs := exprArrays(inc); len(arrs) > 0 && a.deriveDepth < maxDeriveDepth {
		for _, da := range arrs {
			var hullLo, hullHi *expr.Expr
			okHull := true
			for _, arg := range inc.ArrayAtoms(da) {
				r, ok := expr.Bounds(arg, env, assume)
				if !ok || r.Lo == nil || r.Hi == nil {
					okHull = false
					break
				}
				hullLo = provableMin(hullLo, r.Lo, assume)
				hullHi = provableMax(hullHi, r.Hi, assume)
				if hullLo == nil || hullHi == nil {
					okHull = false
					break
				}
			}
			if !okHull || hullLo == nil || hullHi == nil {
				steps = append(steps, fmt.Sprintf("cannot bound the subscripts of increment array %s", da))
				continue
			}
			daName := da
			a.deriveDepth++
			bp, okb := a.VerifyCached(
				func() Property { return NewBounds(daName) },
				n.Stmt, section.New(da, hullLo, hullHi))
			a.deriveDepth--
			b, _ := bp.(*Bounds)
			if !okb || b == nil || b.Lo == nil {
				steps = append(steps, fmt.Sprintf(
					"sub-query bounds(%s) over [%v:%v] failed", da, hullLo, hullHi))
				continue
			}
			switch {
			case expr.ProveGT0(b.Lo, assume):
				assume = assume.With(da+"(*)", expr.GT0)
				steps = append(steps, fmt.Sprintf("sub-query proved %v, so %s(*) >= 1", b, da))
			case expr.ProveGE0(b.Lo, assume):
				assume = assume.With(da+"(*)", expr.GE0)
				steps = append(steps, fmt.Sprintf("sub-query proved %v, so %s(*) >= 0", b, da))
			default:
				steps = append(steps, fmt.Sprintf(
					"sub-query bounds(%s) gave lower bound %v of unknown sign", da, b.Lo))
			}
		}
	}

	if expr.ProveGT0(inc, assume) {
		return SignPos, append(steps, fmt.Sprintf("increment %v proven >= 1", inc))
	}
	if expr.ProveGE0(inc, assume) {
		return SignNonNeg, append(steps, fmt.Sprintf("increment %v proven >= 0", inc))
	}
	r, ok := expr.Bounds(inc, env, assume)
	if !ok || r.Lo == nil {
		r, ok = modulusBoundsEnv(inc.ToAST(), env, assume)
	}
	if ok && r.Lo != nil {
		if expr.ProveGT0(r.Lo, assume) {
			return SignPos, append(steps, fmt.Sprintf(
				"increment %v bounded below by %v >= 1 over pairs [%v:%v]", inc, r.Lo, pairLo, pairHi))
		}
		if expr.ProveGE0(r.Lo, assume) {
			return SignNonNeg, append(steps, fmt.Sprintf(
				"increment %v bounded below by %v >= 0 over pairs [%v:%v]", inc, r.Lo, pairLo, pairHi))
		}
	}
	return SignUnknown, append(steps, fmt.Sprintf("cannot prove increment %v nonnegative", inc))
}

// condRecurrence is a recurrence whose per-step increment depends on a
// branch: every arm of one top-level IF performs the same-shaped direct
// recurrence step x(i+c) = x(i+c-1) + d_b, so the loop still fills the
// array densely and the increment's sign is the join over the arms.
type condRecurrence struct {
	dists                []*expr.Expr
	pairLoOff, pairHiOff *expr.Expr
}

// matchConditionalRecurrence matches a fill loop whose body is exactly one
// IF statement (plus inert statements), every arm of which — including a
// mandatory ELSE, so the write is unconditional — assigns the array once
// in direct-recurrence shape with identical subscript offsets.
func matchConditionalRecurrence(in *expr.Interner, d *lang.DoStmt, array string) *condRecurrence {
	v := d.Var.Name
	var ifs *lang.IfStmt
	for _, s := range d.Body {
		switch s := s.(type) {
		case *lang.IfStmt:
			if ifs != nil {
				return nil
			}
			ifs = s
		case *lang.ContinueStmt, *lang.PrintStmt:
		default:
			return nil
		}
	}
	if ifs == nil || len(ifs.Else) == 0 {
		return nil
	}
	branches := [][]lang.Stmt{ifs.Then}
	for _, arm := range ifs.Elifs {
		branches = append(branches, arm.Body)
	}
	branches = append(branches, ifs.Else)

	cr := &condRecurrence{}
	for _, b := range branches {
		var w *lang.AssignStmt
		for _, s := range b {
			switch s := s.(type) {
			case *lang.AssignStmt:
				ar, ok := s.Lhs.(*lang.ArrayRef)
				if !ok || ar.Name != array || w != nil {
					return nil
				}
				w = s
			case *lang.ContinueStmt, *lang.PrintStmt:
			default:
				return nil
			}
		}
		if w == nil {
			return nil
		}
		ar := w.Lhs.(*lang.ArrayRef)
		if len(ar.Args) != 1 {
			return nil
		}
		sub := in.FromAST(ar.Args[0])
		m := matchDirectRecurrence(in, w, sub, array, v)
		if m == nil {
			return nil
		}
		if cr.pairLoOff == nil {
			cr.pairLoOff, cr.pairHiOff = m.pairLoOff, m.pairHiOff
		} else if !cr.pairLoOff.Equal(m.pairLoOff) {
			return nil // arms write different elements: not one dense fill
		}
		cr.dists = append(cr.dists, m.dist)
	}
	return cr
}

// AuditFill re-runs the definition-site derivation for one fill loop
// outside any query, for diagnostics: the irrlint IRR2004 lint and the
// verdict auditor's recurrence re-check. nil when the loop is not a
// recurrence-shaped fill of array (or the ablation disables derivation);
// otherwise the result carries the derived sign — SignUnknown marks a
// CSR-shaped filler whose monotonicity resisted proof — and the fixpoint
// steps for the diagnostic's related notes.
func (a *Analysis) AuditFill(d *lang.DoStmt, array string) *DeriveResult {
	if a.NoRecurrence || a.HP == nil {
		return nil
	}
	n := a.HP.StmtNode[d]
	if n == nil || n.Kind != cfg.HDo {
		return nil
	}
	s := getSession(a, NewMonotonic(array), false)
	defer putSession(s)
	return deriveRecurrence(s.ctxFor(n), n, array)
}

// removeVar drops one name from a variable list.
func removeVar(vars []string, v string) []string {
	out := vars[:0]
	for _, x := range vars {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
