package property

import (
	"repro/internal/cfg"
	"repro/internal/core/bdfs"
	"repro/internal/core/singleindex"
	"repro/internal/expr"
	"repro/internal/lang"
)

// GatherInfo describes a recognised index-gathering loop (§4): after the
// loop, the index array holds injective, strictly increasing values in
// [ValLo:ValHi], stored consecutively in elements [Base+1 : Counter].
type GatherInfo struct {
	Counter    string     // the position counter (q in Fig. 14)
	Base       *expr.Expr // the counter's value on loop entry (Cbottom analogue)
	ValLo      *expr.Expr // lower bound of the gathered values (loop lower bound)
	ValHi      *expr.Expr // upper bound of the gathered values (loop upper bound)
	Increasing bool       // values strictly increase with the element index
}

// detectGather recognises an index-gathering loop for the given array at
// the HDo node n, per the five conditions of §4:
//
//  1. the loop is a DO loop;
//  2. the index array is single-indexed in the loop (by a counter q);
//  3. the index array is consecutively written in the loop;
//  4. the right-hand side of every assignment of the index array is the
//     loop index;
//  5. one assignment of the index array cannot reach another without first
//     reaching the DO loop header (verified with a bDFS).
//
// Additionally the counter's entry value must be discoverable (an
// invariant assignment on the unique path immediately before the loop) so
// the generated section has a concrete lower bound.
func (s *session) detectGather(n *cfg.HNode, array string) *GatherInfo {
	if n.Kind != cfg.HDo {
		return nil
	}
	d := n.Stmt.(*lang.DoStmt)
	unit := n.Graph.Unit
	g := s.a.flatGraph(unit)
	loop := s.a.flatLoopFor(unit, d)
	if loop == nil {
		return nil
	}

	// Condition 2: single-indexed.
	var acc *singleindex.Access
	for _, a := range singleindex.Find(g, loop, s.a.Info, s.a.Mod) {
		if a.Array == array {
			acc = a
			break
		}
	}
	if acc == nil {
		return nil
	}
	acc.Check = s.a.Guard.CheckFn()
	counter := acc.Index
	if counter == d.Var.Name {
		return nil // the counter must be distinct from the loop index
	}

	// Condition 3: consecutively written (increasing).
	cw := singleindex.CheckConsecutivelyWritten(acc)
	if cw == nil || !cw.Increasing {
		return nil
	}

	// Condition 4: every write's RHS is the loop index.
	var writeStmts []lang.Stmt
	for _, wn := range acc.Writes {
		as, ok := wn.Stmt.(*lang.AssignStmt)
		if !ok {
			return nil
		}
		id, ok := as.Rhs.(*lang.Ident)
		if !ok || id.Name != d.Var.Name {
			return nil
		}
		writeStmts = append(writeStmts, wn.Stmt)
	}
	if len(writeStmts) == 0 {
		return nil
	}

	// The loop index must not be modified inside the body (otherwise the
	// "same value never assigned twice" guarantee of condition 4 breaks).
	bodyMod := s.a.Mod.StmtsMod(unit, d.Body)
	if bodyMod.Scalars[d.Var.Name] {
		return nil
	}

	// Condition 5: no write reaches another write without passing the DO
	// header.
	isWrite := map[*cfg.Node]bool{}
	for _, wn := range acc.Writes {
		isWrite[wn] = true
	}
	sentinel := &cfg.Node{ID: -1, Kind: cfg.NExit}
	succs := func(nd *cfg.Node) []*cfg.Node {
		if nd == sentinel {
			return nil
		}
		var out []*cfg.Node
		exited := false
		for _, sc := range nd.Succs {
			if loop.Contains(sc) {
				out = append(out, sc)
			} else {
				exited = true
			}
		}
		if exited {
			out = append(out, sentinel)
		}
		return out
	}
	for _, wn := range acc.Writes {
		res := bdfs.RunFromSuccessors(wn, bdfs.Config{
			Succs:   succs,
			FBound:  func(nd *cfg.Node) bool { return nd == loop.Head },
			FFailed: func(nd *cfg.Node) bool { return isWrite[nd] },
			Check:   s.a.Guard.CheckFn(),
		})
		if res == bdfs.Failed {
			return nil
		}
	}

	// Counter base value: an invariant assignment immediately preceding
	// the loop in the HCG.
	base := s.counterBase(n, counter, array)
	if base == nil {
		return nil
	}

	lo, hi, _, okRange := envRange(s.a.Interner(), d)
	gi := &GatherInfo{
		Counter:    counter,
		Base:       base,
		Increasing: true,
	}
	if okRange {
		gi.ValLo, gi.ValHi = lo, hi
	}
	return gi
}

// counterBase walks the unique-predecessor chain above the loop node
// looking for an invariant assignment to the counter, skipping statements
// that cannot affect the counter or the gathered array.
func (s *session) counterBase(loopNode *cfg.HNode, counter, array string) *expr.Expr {
	cur := loopNode
	for steps := 0; steps < 64; steps++ {
		if len(cur.Preds) != 1 {
			return nil
		}
		p := cur.Preds[0]
		switch p.Kind {
		case cfg.HStmt:
			if as, ok := p.Stmt.(*lang.AssignStmt); ok {
				if id, ok := as.Lhs.(*lang.Ident); ok && id.Name == counter {
					v := s.a.Interner().FromAST(as.Rhs)
					if v.MentionsVar(counter) {
						return nil
					}
					return v
				}
			}
			// Any other modification of the counter or the array on the
			// path hides the base.
			mod := s.nodeMod(p)
			if mod.Scalars[counter] || mod.Arrays[array] {
				return nil
			}
		case cfg.HIf:
			// Pure test: skip.
		default:
			// Entry, loops, calls: give up.
			return nil
		}
		cur = p
	}
	return nil
}
