package property

import (
	"strconv"
	"strings"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/section"
)

// The memo table caches query propagation: the demand-driven analysis is
// deterministic for an unchanged program, and the dependence tests repeat
// identical queries across the reference pairs of one loop and across loops
// sharing index arrays. A query is identified by (HCG node of the use site,
// property kind + target array, canonical section bounds) — the key the
// paper's framework implies, since those are exactly the inputs of a query.
//
// The table belongs to one Analysis and, like the Analysis itself, is not
// safe for concurrent use; concurrent compilations each build their own
// Analysis. Cached Property instances are shared between callers and must
// be treated as immutable after verification.
//
// An Analysis may additionally be backed by a SharedMemo (set by the
// pipeline when batch items share an analysis cache): local misses probe
// the process-wide table under the compilation's scope key, so a verdict
// proved by one batch item serves every identical compilation.

// memoKey identifies one property query within one program epoch.
type memoKey struct {
	// node is the HCG node of the use site (nil when the statement is not
	// mapped; Verify fails such queries, and the failure is cached too).
	node *cfg.HNode
	// id is the property identity: Kind, target array, and any
	// verification-mode inputs (see cacheID).
	id string
	// sec is the unambiguous section identity (Section.Key, which — unlike
	// Section.String — never collapses lo==hi dimensions).
	sec string
	// epoch is the program generation the verdict was proved under;
	// InvalidateCache bumps the generation instead of flushing the table,
	// leaving stale entries unreachable.
	epoch int
}

type memoEntry struct {
	ok   bool
	prop Property
}

// cacheID renders the identity of a property instance before verification.
// Derive-mode properties are fully identified by kind + array; a
// verification-mode ClosedFormValue also carries its expected closed form,
// which must discriminate (verifying x(k)=k and x(k)=2k at the same site
// are different queries).
func cacheID(p Property) string {
	id := p.Kind() + "|" + p.TargetArray()
	if cfv, ok := p.(*ClosedFormValue); ok && cfv.Expected != nil {
		id += "|=" + cfv.Expected.String()
	}
	return id
}

// sharedKey renders the cross-compilation identity of a query: the scope
// (program identity), the unit, the HCG node's deterministic ID, the
// property identity and the section key. Node pointers cannot cross
// compilations, but node IDs are deterministic for identical builds.
func sharedKey(scope string, node *cfg.HNode, id, sec string) string {
	var sb strings.Builder
	sb.Grow(len(scope) + len(node.Graph.Unit.Name) + len(id) + len(sec) + 16)
	sb.WriteString(scope)
	sb.WriteByte('|')
	sb.WriteString(node.Graph.Unit.Name)
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(node.ID))
	sb.WriteByte('|')
	sb.WriteString(id)
	sb.WriteByte('|')
	sb.WriteString(sec)
	return sb.String()
}

// VerifyCached runs (or replays) a property verification through the memo
// table. mk builds the fresh property instance; on a hit the previously
// derived instance is returned instead, carrying its derived facts
// (bounds, closed forms). Hits cost no propagation and do not increment
// Stats.Queries.
//
// When a SharedMemo is attached, a local miss probes it before verifying:
// a shared hit returns another compilation's verdict (counted in
// SharedHits, not Queries) and a verified miss publishes the new verdict.
// Local CacheHits/CacheMisses are charged identically with and without
// sharing, so the property.cache_* counters stay deterministic under the
// sharing ablation; only property.shared.* and the work counters
// (Queries, NodesVisited, ...) depend on what the shared table already
// holds. Shared probes are skipped under debug tracing: a shared hit
// skips the propagation whose query.step events the trace must replay.
func (a *Analysis) VerifyCached(mk func() Property, at lang.Stmt, sec *section.Section) (Property, bool) {
	prop := mk()
	if a.NoCache {
		return prop, a.Verify(prop, at, sec)
	}
	node := a.HP.StmtNode[at]
	key := memoKey{node: node, id: cacheID(prop), sec: sec.Key(), epoch: a.epoch}
	if e, hit := a.memo[key]; hit {
		a.Stats.CacheHits++
		if a.Rec.DebugEnabled() {
			a.Rec.Event("query.cache",
				obs.F("prop", e.prop.String()),
				obs.F("section", sec.String()),
				obs.Fb("ok", e.ok))
		}
		return e.prop, e.ok
	}
	a.Stats.CacheMisses++
	shared := a.Shared != nil && node != nil && !a.Rec.DebugEnabled()
	var skey string
	if shared {
		skey = sharedKey(a.SharedScope, node, key.id, key.sec)
		if p, ok, hit := a.Shared.get(skey); hit {
			a.Stats.SharedHits++
			a.installMemo(key, memoEntry{ok: ok, prop: p})
			return p, ok
		}
		a.Stats.SharedMisses++
	}
	ok := a.Verify(prop, at, sec)
	a.installMemo(key, memoEntry{ok: ok, prop: prop})
	if shared {
		a.Shared.put(skey, prop, ok)
	}
	return prop, ok
}

// installMemo adds one entry to the local table, tracking the live count
// of the current epoch.
func (a *Analysis) installMemo(key memoKey, e memoEntry) {
	if a.memo == nil {
		a.memo = map[memoKey]memoEntry{}
	}
	a.memo[key] = e
	a.memoLive++
}

// InvalidateCache retires every memoized verdict by advancing the program
// epoch — an O(1) generation bump that leaves other epochs' entries (and,
// in particular, any shared table other compilations read) untouched.
// Callers that mutate the program between queries (the loop-interchange
// pass) must invalidate: entries are keyed by HCG nodes and section
// bounds of the pre-mutation program and would otherwise replay stale
// verdicts. Invalidating an empty table is free and not counted.
func (a *Analysis) InvalidateCache() {
	if a.memoLive == 0 {
		return
	}
	a.epoch++
	a.memoLive = 0
	a.Stats.CacheInvalidations++
}
