package property

import (
	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/section"
)

// The memo table caches query propagation: the demand-driven analysis is
// deterministic for an unchanged program, and the dependence tests repeat
// identical queries across the reference pairs of one loop and across loops
// sharing index arrays. A query is identified by (HCG node of the use site,
// property kind + target array, canonical section bounds) — the key the
// paper's framework implies, since those are exactly the inputs of a query.
//
// The table belongs to one Analysis and, like the Analysis itself, is not
// safe for concurrent use; concurrent compilations each build their own
// Analysis. Cached Property instances are shared between callers and must
// be treated as immutable after verification.

// memoKey identifies one property query.
type memoKey struct {
	// node is the HCG node of the use site (nil when the statement is not
	// mapped; Verify fails such queries, and the failure is cached too).
	node *cfg.HNode
	// id is the property identity: Kind, target array, and any
	// verification-mode inputs (see cacheID).
	id string
	// sec is the unambiguous section identity (Section.Key, which — unlike
	// Section.String — never collapses lo==hi dimensions).
	sec string
}

type memoEntry struct {
	ok   bool
	prop Property
}

// cacheID renders the identity of a property instance before verification.
// Derive-mode properties are fully identified by kind + array; a
// verification-mode ClosedFormValue also carries its expected closed form,
// which must discriminate (verifying x(k)=k and x(k)=2k at the same site
// are different queries).
func cacheID(p Property) string {
	id := p.Kind() + "|" + p.TargetArray()
	if cfv, ok := p.(*ClosedFormValue); ok && cfv.Expected != nil {
		id += "|=" + cfv.Expected.String()
	}
	return id
}

// VerifyCached runs (or replays) a property verification through the memo
// table. mk builds the fresh property instance; on a hit the previously
// derived instance is returned instead, carrying its derived facts
// (bounds, closed forms). Hits cost no propagation and do not increment
// Stats.Queries.
func (a *Analysis) VerifyCached(mk func() Property, at lang.Stmt, sec *section.Section) (Property, bool) {
	prop := mk()
	if a.NoCache {
		return prop, a.Verify(prop, at, sec)
	}
	key := memoKey{node: a.HP.StmtNode[at], id: cacheID(prop), sec: sec.Key()}
	if e, hit := a.memo[key]; hit {
		a.Stats.CacheHits++
		if a.Rec.DebugEnabled() {
			a.Rec.Event("query.cache",
				obs.F("prop", e.prop.String()),
				obs.F("section", sec.String()),
				obs.Fb("ok", e.ok))
		}
		return e.prop, e.ok
	}
	a.Stats.CacheMisses++
	ok := a.Verify(prop, at, sec)
	if a.memo == nil {
		a.memo = map[memoKey]memoEntry{}
	}
	a.memo[key] = memoEntry{ok: ok, prop: prop}
	return prop, ok
}

// InvalidateCache drops every memoized verdict. Callers that mutate the
// program between queries (the loop-interchange pass) must invalidate:
// entries are keyed by HCG nodes and section bounds of the pre-mutation
// program and would otherwise replay stale verdicts. A drop of an already
// empty table is free and not counted.
func (a *Analysis) InvalidateCache() {
	if len(a.memo) == 0 {
		return
	}
	a.memo = nil
	a.Stats.CacheInvalidations++
}
