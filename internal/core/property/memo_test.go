package property

import (
	"testing"

	"repro/internal/expr"
)

func TestVerifyCachedHitMiss(t *testing.T) {
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	sec := sec1("ind", expr.One, expr.Var("q"))
	mk := func() Property { return NewInjective("ind") }

	p1, ok1 := w.an.VerifyCached(mk, use, sec)
	if !ok1 {
		t.Fatal("first query: ind[1:q] should be injective")
	}
	if w.an.Stats.CacheMisses != 1 || w.an.Stats.CacheHits != 0 {
		t.Fatalf("after miss: hits=%d misses=%d, want 0/1", w.an.Stats.CacheHits, w.an.Stats.CacheMisses)
	}
	queries := w.an.Stats.Queries

	p2, ok2 := w.an.VerifyCached(mk, use, sec)
	if !ok2 {
		t.Fatal("second query: cached verdict should replay true")
	}
	if p2 != p1 {
		t.Error("hit should return the originally derived property instance")
	}
	if w.an.Stats.CacheHits != 1 || w.an.Stats.CacheMisses != 1 {
		t.Fatalf("after hit: hits=%d misses=%d, want 1/1", w.an.Stats.CacheHits, w.an.Stats.CacheMisses)
	}
	if w.an.Stats.Queries != queries {
		t.Errorf("a cache hit must not re-run propagation: queries %d -> %d", queries, w.an.Stats.Queries)
	}
}

// TestVerifyCachedDistinguishesSections is the collision regression: the
// retired deptest cache keyed on Section.String plus the query statement
// pointer; two different ranges of the same array at the same site must
// get independent verdicts.
func TestVerifyCachedDistinguishesSections(t *testing.T) {
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	mk := func() Property { return NewInjective("ind") }
	good := sec1("ind", expr.One, expr.Var("q"))
	bad := sec1("ind", expr.One, expr.Var("n"))

	if _, ok := w.an.VerifyCached(mk, use, good); !ok {
		t.Fatal("ind[1:q] should be injective")
	}
	if _, ok := w.an.VerifyCached(mk, use, bad); ok {
		t.Fatal("ind[1:n] must not inherit the verdict for ind[1:q]")
	}
	if w.an.Stats.CacheMisses != 2 {
		t.Fatalf("misses = %d, want 2 (distinct sections, distinct entries)", w.an.Stats.CacheMisses)
	}
	// Replaying both must preserve the per-range verdicts.
	if _, ok := w.an.VerifyCached(mk, use, good); !ok {
		t.Error("replayed ind[1:q] verdict flipped")
	}
	if _, ok := w.an.VerifyCached(mk, use, bad); ok {
		t.Error("replayed ind[1:n] verdict flipped")
	}
	if w.an.Stats.CacheHits != 2 {
		t.Errorf("hits = %d, want 2", w.an.Stats.CacheHits)
	}
}

func TestVerifyCachedDistinguishesProperties(t *testing.T) {
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	sec := sec1("ind", expr.One, expr.Var("q"))

	if _, ok := w.an.VerifyCached(func() Property { return NewInjective("ind") }, use, sec); !ok {
		t.Fatal("injective should hold")
	}
	p, ok := w.an.VerifyCached(func() Property { return NewBounds("ind") }, use, sec)
	if !ok {
		t.Fatal("bounds should hold")
	}
	if _, isB := p.(*Bounds); !isB {
		t.Fatalf("bounds query returned %T from the injective entry", p)
	}
	if w.an.Stats.CacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (kinds key separately)", w.an.Stats.CacheMisses)
	}
}

func TestInvalidateCache(t *testing.T) {
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	sec := sec1("ind", expr.One, expr.Var("q"))
	mk := func() Property { return NewInjective("ind") }

	w.an.VerifyCached(mk, use, sec)
	w.an.InvalidateCache()
	if w.an.Stats.CacheInvalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", w.an.Stats.CacheInvalidations)
	}
	w.an.VerifyCached(mk, use, sec)
	if w.an.Stats.CacheMisses != 2 || w.an.Stats.CacheHits != 0 {
		t.Errorf("after invalidate: hits=%d misses=%d, want 0/2", w.an.Stats.CacheHits, w.an.Stats.CacheMisses)
	}
	// Invalidating an empty table is not an event.
	w.an.InvalidateCache()
	w.an.InvalidateCache()
	if w.an.Stats.CacheInvalidations != 2 {
		t.Errorf("invalidations = %d, want 2 (empty drop is free)", w.an.Stats.CacheInvalidations)
	}
}

func TestVerifyCachedNoCache(t *testing.T) {
	w := build(t, gatherSrc)
	w.an.NoCache = true
	use := w.assignTo("gather", "jj")
	sec := sec1("ind", expr.One, expr.Var("q"))
	mk := func() Property { return NewInjective("ind") }

	w.an.VerifyCached(mk, use, sec)
	w.an.VerifyCached(mk, use, sec)
	if w.an.Stats.CacheHits != 0 || w.an.Stats.CacheMisses != 0 {
		t.Errorf("NoCache: hits=%d misses=%d, want 0/0", w.an.Stats.CacheHits, w.an.Stats.CacheMisses)
	}
	if w.an.Stats.Queries != 2 {
		t.Errorf("NoCache: queries = %d, want 2", w.an.Stats.Queries)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Queries: 1, NodesVisited: 2, LoopSummaries: 3, GatherHits: 4, PatternHits: 5, CacheHits: 6, CacheMisses: 7, CacheInvalidations: 8, Elapsed: 9}
	b := Stats{Queries: 10, NodesVisited: 20, LoopSummaries: 30, GatherHits: 40, PatternHits: 50, CacheHits: 60, CacheMisses: 70, CacheInvalidations: 80, Elapsed: 90}
	a.Add(b)
	want := Stats{Queries: 11, NodesVisited: 22, LoopSummaries: 33, GatherHits: 44, PatternHits: 55, CacheHits: 66, CacheMisses: 77, CacheInvalidations: 88, Elapsed: 99}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}
