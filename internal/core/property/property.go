// Package property implements the demand-driven interprocedural array
// property analysis of Lin & Padua (PLDI 2000), §3: a reverse query
// propagation over the hierarchical control graph that verifies — and in
// this implementation also derives — properties of index arrays at their
// use sites: value bounds, injectivity, monotonicity, closed-form values
// and closed-form distances.
//
// A query (st, section) asks whether the elements of an index array in
// section have the desired property when control reaches the point after
// st. Queries are propagated in reverse over the HCG (QuerySolver, Fig. 5),
// with one QueryProp variant per node class (Fig. 7): simple statements,
// DO headers met from outside (§3.2.5 case 1) and from inside (case 2,
// Fig. 10), call statements (case 3, Fig. 11) and procedure headers (case
// 4, query splitting, Fig. 12). Per-statement effects come from a
// PropertyChecker that pattern-matches definition idioms (§3.2.8), and
// whole-loop effects may be recognised directly — most importantly
// index-gathering loops (§4), whose detection reuses the single-indexed
// access analysis of §2. Kill is a MAY approximation and Gen a MUST
// approximation throughout (§3.2.3).
package property

import (
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/comperr"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/section"
	"repro/internal/sem"
)

// Stats counts analysis work for the compilation-time accounting of
// Table 2.
type Stats struct {
	Queries       int
	NodesVisited  int
	LoopSummaries int
	GatherHits    int
	PatternHits   int
	// CacheHits / CacheMisses count VerifyCached lookups answered from /
	// added to the memo table; CacheInvalidations counts whole-table drops
	// (program mutation between queries). Queries counts only actual
	// propagations, so a cache hit increments CacheHits but not Queries.
	CacheHits          int
	CacheMisses        int
	CacheInvalidations int
	// SharedHits / SharedMisses count local misses answered from / not
	// found in the cross-compilation SharedMemo. They depend on what
	// other compilations already proved, so — unlike the local cache
	// counters — they are scheduling-dependent and excluded from
	// determinism comparisons (like the expr.intern.* counters).
	SharedHits   int
	SharedMisses int
	// DerivedMonotonic / DerivedInjective / DerivedDistance count verdicts
	// discharged by the definition-site recurrence derivation (derive.go);
	// DerivedFailed counts recurrence-shaped fills whose increment signs
	// resisted proof. Surfaced as the property.derived.* metrics counters.
	DerivedMonotonic int
	DerivedInjective int
	DerivedDistance  int
	DerivedFailed    int
	// Elapsed is the wall-clock time spent answering queries.
	Elapsed time.Duration
}

// Add accumulates o into s (durations and counters alike), merging the
// bookkeeping of several Analysis instances used in one compilation.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.NodesVisited += o.NodesVisited
	s.LoopSummaries += o.LoopSummaries
	s.GatherHits += o.GatherHits
	s.PatternHits += o.PatternHits
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheInvalidations += o.CacheInvalidations
	s.SharedHits += o.SharedHits
	s.SharedMisses += o.SharedMisses
	s.DerivedMonotonic += o.DerivedMonotonic
	s.DerivedInjective += o.DerivedInjective
	s.DerivedDistance += o.DerivedDistance
	s.DerivedFailed += o.DerivedFailed
	s.Elapsed += o.Elapsed
}

// Analysis bundles the program-wide structures the property analysis needs.
// One Analysis serves many queries; per-query state lives in a session.
type Analysis struct {
	Info   *sem.Info
	HP     *cfg.HProgram
	Mod    *dataflow.ModInfo
	Assume expr.Assumptions
	Stats  Stats
	// Rec, when non-nil, receives one "query" span per Verify call and one
	// "query.step" event per propagation step, so a failed query can be
	// replayed as a tree (the `-explain` decision log).
	Rec *obs.Recorder
	// Intraprocedural restricts queries to one unit: a query reaching a
	// subroutine's entry fails instead of splitting to its call sites.
	// This models the original phase organization of Fig. 15(a), which
	// could not support interprocedural property analysis.
	Intraprocedural bool
	// NoCache disables the VerifyCached memo table: every query
	// re-propagates (the cold-cache benchmark configuration).
	NoCache bool
	// NoRecurrence disables the definition-site recurrence derivation
	// (derive.go) — the `-no-recurrence` ablation. Analysis-relevant: it
	// changes verdicts, so it participates in the SharedMemo scope key.
	NoRecurrence bool
	// Guard is the cooperative cancellation / step-budget checkpoint,
	// polled once per propagated node. Nil (the default) is a disabled
	// guard; when set by a context-aware compilation, a fired deadline or
	// an exhausted query-step budget aborts the query mid-propagation
	// (recovered and typed at the pipeline boundary). The checkpoint only
	// reads, so verdicts are identical whenever it does not fire.
	Guard *comperr.Guard
	// Shared, when non-nil, backs local memo misses with the
	// cross-compilation verdict table under SharedScope (the program
	// identity key derived by the pipeline). Nil keeps the Analysis fully
	// private — the NoSharedCache ablation.
	Shared      *SharedMemo
	SharedScope string

	flat  map[*lang.Unit]*cfg.Graph
	loops map[*lang.Unit]map[lang.Stmt]*cfg.Loop
	memo  map[memoKey]memoEntry
	// epoch is the current program generation (see InvalidateCache);
	// memoLive counts the memo entries installed under it.
	epoch    int
	memoLive int
	// deriveDepth guards the nesting of recurrence derivations through
	// bounds sub-queries (an increment array may itself be filled by a
	// recurrence); see maxDeriveDepth.
	deriveDepth int
}

// New builds an Analysis over a checked program.
func New(info *sem.Info, hp *cfg.HProgram, mod *dataflow.ModInfo) *Analysis {
	return &Analysis{
		Info:   info,
		HP:     hp,
		Mod:    mod,
		Assume: expr.Assumptions{},
		flat:   map[*lang.Unit]*cfg.Graph{},
	}
}

// Interner returns the HCG's expression interner (nil when the HCG has none
// or interning is disabled — both degrade to plain conversion).
func (a *Analysis) Interner() *expr.Interner {
	if a.HP == nil {
		return nil
	}
	return a.HP.In
}

// flatGraph returns (building lazily) the flat CFG of a unit, used by the
// single-indexed sub-analyses.
func (a *Analysis) flatGraph(u *lang.Unit) *cfg.Graph {
	g := a.flat[u]
	if g == nil {
		g = cfg.Build(u)
		a.flat[u] = g
	}
	return g
}

// flatLoopFor returns the natural loop of the flat CFG corresponding to an
// AST loop statement, caching the loop decomposition per unit.
func (a *Analysis) flatLoopFor(u *lang.Unit, stmt lang.Stmt) *cfg.Loop {
	if a.loops == nil {
		a.loops = map[*lang.Unit]map[lang.Stmt]*cfg.Loop{}
	}
	m := a.loops[u]
	if m == nil {
		m = map[lang.Stmt]*cfg.Loop{}
		g := a.flatGraph(u)
		for _, l := range g.NaturalLoops() {
			if l.Stmt != nil {
				m[l.Stmt] = l
			}
		}
		a.loops[u] = m
	}
	return m[stmt]
}

// Verify checks whether the elements of sec have property prop when control
// reaches the point just after statement at. On success, derive-mode
// properties carry their derived facts (bounds, value, distance).
func (a *Analysis) Verify(prop Property, at lang.Stmt, sec *section.Section) bool {
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		a.Stats.Elapsed += elapsed
		// Per-kind latency histogram: always on, three atomic adds.
		a.Rec.Observe("query.duration:kind="+prop.Kind(), elapsed)
	}()
	a.Stats.Queries++
	// The query span and its per-node propagation steps format node labels
	// and section strings — Debug-level work, skipped in production.
	var sp *obs.Span
	if a.Rec.DebugEnabled() {
		sp = a.Rec.StartSpan("query",
			obs.F("prop", prop.String()),
			obs.F("array", prop.TargetArray()),
			obs.F("at", at.Pos().String()),
			obs.F("section", sec.String()))
	}
	node := a.HP.StmtNode[at]
	if node == nil {
		if sp != nil {
			a.Rec.Event("query.result", obs.Fb("ok", false), obs.F("reason", "no HCG node for use site"))
			sp.End()
		}
		return false
	}
	s := getSession(a, prop, sp != nil)
	seeds := map[*cfg.HNode]*section.Set{node: section.NewSet(sec)}
	ok := s.verifyFrom(node.Graph, seeds)
	// Return the session scratch to the pool only on the normal path: a
	// Guard abort panics through Verify mid-traversal, and the session is
	// then simply left for the GC (putting a half-walked session back
	// would be fine semantically, but the abort path should stay minimal).
	putSession(s)
	if sp != nil {
		a.Rec.Event("query.result", obs.Fb("ok", ok), obs.F("prop", prop.String()))
		sp.End()
	}
	return ok
}

// sessionPool recycles session scratch (three maps per query) across
// Verify calls. Sessions never escape a query — verifyFrom and everything
// under it only read them — so pooling is safe; the maps are cleared on
// reuse, keeping their grown capacity.
var sessionPool = sync.Pool{New: func() any { return new(session) }}

func getSession(a *Analysis, prop Property, trace bool) *session {
	s := sessionPool.Get().(*session)
	s.a, s.prop, s.trace = a, prop, trace
	if s.modScalars == nil {
		s.modScalars = map[string]bool{}
		s.modArrays = map[string]bool{}
		s.effects = map[*cfg.HNode][2]*section.Set{}
	} else {
		clear(s.modScalars)
		clear(s.modArrays)
		clear(s.effects)
	}
	return s
}

func putSession(s *session) {
	s.a, s.prop = nil, nil
	sessionPool.Put(s)
}

// session is the per-query state: the property being verified and the
// variables seen modified along the reverse traversal (used to reject
// derived facts whose free variables changed between definition and use,
// the "no redefinition in between" condition of §3).
type session struct {
	a    *Analysis
	prop Property
	// trace mirrors a.Rec.DebugEnabled(); checked before building event
	// fields so the production path never formats node labels.
	trace bool
	// modScalars / modArrays accumulate everything modified by nodes the
	// query passed through — i.e. code between the use site and the
	// definition sites being examined.
	modScalars map[string]bool
	modArrays  map[string]bool
	// effects memoizes nodeEffect per HCG node for this query: property
	// summaries are deterministic within a session (derive-state updates
	// are idempotent), and loop summaries are expensive.
	effects map[*cfg.HNode][2]*section.Set
}

// verifyFrom propagates the seeded queries backward within graph g and then
// upward (loop headers, callers) until fully verified or killed.
func (s *session) verifyFrom(g *cfg.HGraph, seeds map[*cfg.HNode]*section.Set) bool {
	killed, remain := s.solveGraph(g, seeds)
	if killed {
		return false
	}
	if remain.Empty() {
		return true
	}
	// The query reached the section entry unresolved.
	if g.Parent != nil {
		// Case 2 (Fig. 10): the query leaves a loop body through the
		// loop header.
		loopNode := g.Parent
		killed2, remainOut := s.queryPropLoopHeaderInside(loopNode, remain)
		if s.trace {
			s.a.Rec.Event("query.step",
				obs.F("class", "do-header-inside"),
				obs.F("node", loopNode.String()),
				obs.F("outcome", stepOutcome(killed2, remainOut)))
		}
		if killed2 {
			return false
		}
		if remainOut.Empty() {
			return true
		}
		return s.verifyFrom(loopNode.Graph, seedPreds(loopNode, remainOut))
	}
	// Case 4 (Fig. 12): the query reached a procedure header.
	if g.Unit == s.a.Info.Program.Main {
		// Elements not generated anywhere in the program: the paper
		// answers false.
		if s.trace {
			s.a.Rec.Event("query.step",
				obs.F("class", "proc-header"), obs.F("node", "entry of main"),
				obs.F("outcome", "killed: reached program entry unresolved"))
		}
		return false
	}
	if s.a.Intraprocedural {
		if s.trace {
			s.a.Rec.Event("query.step",
				obs.F("class", "proc-header"), obs.F("node", "entry of "+g.Unit.Name),
				obs.F("outcome", "killed: intraprocedural analysis cannot split to call sites"))
		}
		return false
	}
	sites := s.a.HP.CallSites(g.Unit.Name)
	if s.trace {
		s.a.Rec.Event("query.step",
			obs.F("class", "proc-header"), obs.F("node", "entry of "+g.Unit.Name),
			obs.F("outcome", "split"), obs.Fi("sites", int64(len(sites))))
	}
	if len(sites) == 0 {
		return false
	}
	for _, site := range sites {
		var sp *obs.Span
		if s.trace {
			sp = s.a.Rec.StartSpan("query.site", obs.F("node", site.String()),
				obs.F("unit", site.Graph.Unit.Name))
		}
		ok := s.verifyFrom(site.Graph, seedPreds(site, remain))
		sp.End()
		if !ok {
			return false
		}
	}
	return true
}

// stepOutcome labels a propagation step for the trace.
func stepOutcome(killed bool, remain *section.Set) string {
	switch {
	case killed:
		return "killed"
	case remain.Empty():
		return "discharged"
	default:
		return "propagated"
	}
}

// seedPreds builds a seed map placing the query after every predecessor of
// n in n's graph.
func seedPreds(n *cfg.HNode, set *section.Set) map[*cfg.HNode]*section.Set {
	seeds := map[*cfg.HNode]*section.Set{}
	for _, p := range n.Preds {
		seeds[p] = set.Clone()
	}
	if len(n.Preds) == 0 {
		// Defensive: treat as reaching the section entry directly.
		seeds[n.Graph.Entry] = set.Clone()
	}
	return seeds
}

// solveGraph is QuerySolver (Fig. 5) specialised to one section graph: the
// worklist is processed in reverse topological order, so every node is
// handled after all of its successors, and same-node queries are merged
// with a MAY union (the addU operation). It returns the killed flag and
// the unresolved remainder at the section entry.
func (s *session) solveGraph(g *cfg.HGraph, seeds map[*cfg.HNode]*section.Set) (bool, *section.Set) {
	pending := map[*cfg.HNode]*section.Set{}
	for n, set := range seeds {
		pending[n] = set
	}
	var atEntry *section.Set
	for _, n := range g.RTop() {
		set := pending[n]
		if set.Empty() {
			continue
		}
		if n == g.Entry {
			atEntry = set
			continue
		}
		killed, remain := s.queryProp(n, set)
		if killed {
			return true, nil
		}
		if remain.Empty() {
			continue // early termination for this strand of the query
		}
		for _, p := range n.Preds {
			if pending[p] == nil {
				pending[p] = remain.Clone()
			} else {
				pending[p].UnionMay(remain, s.a.Assume) // addU
			}
		}
		if len(n.Preds) == 0 && n != g.Entry {
			// Unreachable node (e.g. after goto rerouting): route to
			// entry conservatively.
			if atEntry == nil {
				atEntry = remain.Clone()
			} else {
				atEntry.UnionMay(remain, s.a.Assume)
			}
		}
	}
	if atEntry == nil {
		atEntry = section.NewSet()
	}
	return false, atEntry
}

// queryProp is the reverse query propagation framework of Fig. 6,
// dispatching on the node class (Fig. 7). With tracing enabled it emits one
// "query.step" event per node carrying the node class, the HCG node label
// and the step outcome (killed / discharged / propagated).
func (s *session) queryProp(n *cfg.HNode, set *section.Set) (bool, *section.Set) {
	s.a.Guard.Step()
	s.a.Stats.NodesVisited++
	if !s.trace {
		return s.queryPropClass(n, set)
	}
	var sp *obs.Span
	if n.Kind == cfg.HCall {
		// Case 3 descends into the callee; nest its steps under a span.
		sp = s.a.Rec.StartSpan("query.call", obs.F("node", n.String()))
	}
	killed, remain := s.queryPropClass(n, set)
	sp.End()
	s.a.Rec.Event("query.step",
		obs.F("class", n.Kind.String()),
		obs.F("node", n.String()),
		obs.F("outcome", stepOutcome(killed, remain)))
	return killed, remain
}

// queryPropClass implements the per-node-class propagation.
func (s *session) queryPropClass(n *cfg.HNode, set *section.Set) (bool, *section.Set) {
	var kill, gen *section.Set

	switch n.Kind {
	case cfg.HEntry, cfg.HExit, cfg.HIf:
		// Conditions and markers only read values.
		kill, gen = section.NewSet(), section.NewSet()

	case cfg.HStmt:
		kill, gen = s.summarizeSimpleNode(n)

	case cfg.HCall:
		// Case 3 (Fig. 11): construct a sub-problem whose initial query
		// node is the exit of the callee.
		callee := s.a.HP.UnitGraph(n.Stmt.(*lang.CallStmt).Name)
		if callee == nil {
			return true, nil
		}
		killed, remain := s.solveGraph(callee, map[*cfg.HNode]*section.Set{callee.Exit: set.Clone()})
		if killed {
			return true, nil
		}
		s.noteMods(s.a.Mod.GlobalsModifiedBy(callee.Unit))
		return s.checkRemainVars(n, remain)

	case cfg.HDo:
		// Case 1 (§3.2.5): the query meets the loop from outside.
		kill, gen = s.summarizeLoop(n)

	case cfg.HWhile:
		kill, gen = s.summarizeWhile(n)

	default:
		return true, nil
	}

	// anykilled: some element of the query may have its property killed.
	if set.IntersectsWith(kill, s.a.Assume) {
		return true, nil
	}
	s.noteMods(s.nodeMod(n))

	var remain *section.Set
	if s.prop.Relational() {
		// Relational properties (injectivity, monotonicity) hold of a
		// section as a whole: only full containment in a single Gen
		// section discharges a query section.
		remain = section.NewSet()
		for _, qs := range set.Sections() {
			discharged := false
			for _, gs := range gen.Sections() {
				if gs.Contains(qs, s.a.Assume) {
					discharged = true
					break
				}
			}
			if !discharged {
				remain.AddMay(qs, s.a.Assume)
			}
		}
	} else {
		remain = set.SubtractMay(gen, s.a.Assume)
	}
	return s.checkRemainVars(n, remain)
}

// checkRemainVars kills the query when it must propagate past a node that
// modifies a variable its section bounds or its property facts depend on.
func (s *session) checkRemainVars(n *cfg.HNode, remain *section.Set) (bool, *section.Set) {
	if remain.Empty() {
		return false, remain
	}
	mod := s.nodeMod(n)
	for _, v := range setVars(remain) {
		if mod.Scalars[v] {
			return true, nil
		}
	}
	vars, arrays := s.prop.Mentions()
	for _, v := range vars {
		if mod.Scalars[v] {
			return true, nil
		}
	}
	for _, arr := range arrays {
		if mod.Arrays[arr] {
			return true, nil
		}
	}
	return false, remain
}

// nodeMod returns everything node n may modify (transitively through calls
// and nested loops).
func (s *session) nodeMod(n *cfg.HNode) *dataflow.ModSet {
	switch n.Kind {
	case cfg.HEntry, cfg.HExit:
		return dataflow.NewModSet()
	case cfg.HIf:
		return dataflow.NewModSet() // the condition only reads
	default:
		return s.a.Mod.StmtsMod(n.Graph.Unit, []lang.Stmt{n.Stmt})
	}
}

func (s *session) noteMods(m *dataflow.ModSet) {
	for v := range m.Scalars {
		s.modScalars[v] = true
	}
	for v := range m.Arrays {
		s.modArrays[v] = true
	}
}

// seenModified reports whether any of the named scalars or arrays was
// modified by code the query already traversed (between definition and
// use).
func (s *session) seenModified(vars, arrays []string) bool {
	for _, v := range vars {
		if s.modScalars[v] {
			return true
		}
	}
	for _, arr := range arrays {
		if s.modArrays[arr] {
			return true
		}
	}
	return false
}

// setVars collects the scalar variable names mentioned by the bounds of all
// sections in a set.
func setVars(set *section.Set) []string {
	seen := map[string]bool{}
	var out []string
	add := func(e *expr.Expr) {
		if e == nil {
			return
		}
		lang.WalkExpr(e.ToAST(), func(x lang.Expr) bool {
			if id, ok := x.(*lang.Ident); ok && !seen[id.Name] {
				seen[id.Name] = true
				out = append(out, id.Name)
			}
			return true
		})
	}
	for _, sec := range set.Sections() {
		for _, d := range sec.Dims {
			add(d.Lo)
			add(d.Hi)
		}
	}
	return out
}

// exprVars collects the scalar variable names mentioned by a symbolic
// expression (including inside opaque atoms).
func exprVars(e *expr.Expr) []string {
	if e == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	lang.WalkExpr(e.ToAST(), func(x lang.Expr) bool {
		if id, ok := x.(*lang.Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// exprArrays collects the array names mentioned by a symbolic expression.
func exprArrays(e *expr.Expr) []string {
	if e == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	lang.WalkExpr(e.ToAST(), func(x lang.Expr) bool {
		if ar, ok := x.(*lang.ArrayRef); ok && !ar.Intrinsic && !seen[ar.Name] {
			seen[ar.Name] = true
			out = append(out, ar.Name)
		}
		return true
	})
	return out
}
