package property

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
	"repro/internal/sem"
)

// world compiles a program and builds the analysis.
type world struct {
	t    *testing.T
	info *sem.Info
	an   *Analysis
}

func build(t *testing.T, src string) *world {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	mod := dataflow.ComputeMod(info)
	hp := cfg.BuildHCG(prog)
	return &world{t: t, info: info, an: New(info, hp, mod)}
}

// stmtWhere finds the first statement in the unit for which pred is true.
func (w *world) stmtWhere(unit string, pred func(lang.Stmt) bool) lang.Stmt {
	w.t.Helper()
	u := w.info.Program.Unit(unit)
	if u == nil {
		w.t.Fatalf("no unit %q", unit)
	}
	var found lang.Stmt
	lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
		if found == nil && pred(s) {
			found = s
		}
		return found == nil
	})
	if found == nil {
		w.t.Fatalf("statement not found in %q", unit)
	}
	return found
}

// assignTo finds the first assignment whose LHS writes the given variable
// or array name.
func (w *world) assignTo(unit, name string) lang.Stmt {
	return w.stmtWhere(unit, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			return false
		}
		switch l := as.Lhs.(type) {
		case *lang.Ident:
			return l.Name == name
		case *lang.ArrayRef:
			return l.Name == name
		}
		return false
	})
}

func sec1(arr string, lo, hi *expr.Expr) *section.Section { return section.New(arr, lo, hi) }

// gatherSrc is the Fig. 14 example: indices of positive elements of x()
// are gathered into ind(); afterwards ind[1:q] is injective with values in
// [1:p].
const gatherSrc = `
program gather
  param nmax = 100
  integer n, k, p, q, i, j, jj
  real x(nmax), y(nmax)
  real z(nmax, nmax)
  integer ind(nmax)
  do k = 1, n
    q = 0
    do i = 1, p
      if (x(i) > 0.0) then
        q = q + 1
        ind(q) = i
      end if
    end do
    do j = 1, q
      jj = ind(j)
      z(k, jj) = x(jj) * y(jj)
    end do
  end do
end
`

func TestGatherInjective(t *testing.T) {
	w := build(t, gatherSrc)
	// Query at the use site: jj = ind(j), section ind[1:q].
	use := w.assignTo("gather", "jj")
	prop := NewInjective("ind")
	sec := sec1("ind", expr.One, expr.Var("q"))
	if !w.an.Verify(prop, use, sec) {
		t.Fatal("ind[1:q] should be injective after the gathering loop")
	}
	if w.an.Stats.GatherHits == 0 {
		t.Error("expected the gathering-loop recogniser to fire")
	}
}

func TestGatherBounds(t *testing.T) {
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	prop := NewBounds("ind")
	sec := sec1("ind", expr.One, expr.Var("q"))
	if !w.an.Verify(prop, use, sec) {
		t.Fatal("bounds of ind[1:q] should be derivable")
	}
	if prop.Lo == nil || !prop.Lo.Equal(expr.One) {
		t.Errorf("Lo = %v, want 1", prop.Lo)
	}
	if prop.Hi == nil || !prop.Hi.Equal(expr.Var("p")) {
		t.Errorf("Hi = %v, want p", prop.Hi)
	}
}

func TestGatherMonotonic(t *testing.T) {
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	prop := NewMonotonic("ind")
	sec := sec1("ind", expr.One, expr.Var("q"))
	if !w.an.Verify(prop, use, sec) {
		t.Fatal("ind[1:q] should be monotonic")
	}
	if !prop.Strict {
		t.Error("gathered indices are strictly increasing")
	}
}

func TestGatherKilledByInterveningWrite(t *testing.T) {
	src := `
program gatherkill
  param nmax = 100
  integer n, p, q, i, j, jj
  real x(nmax)
  integer ind(nmax)
  q = 0
  do i = 1, p
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  ind(1) = 7
  do j = 1, q
    jj = ind(j)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("gatherkill", "jj")
	if w.an.Verify(NewInjective("ind"), use, sec1("ind", expr.One, expr.Var("q"))) {
		t.Error("the write ind(1)=7 must kill injectivity")
	}
}

func TestGatherKilledByCounterModification(t *testing.T) {
	src := `
program ctrmod
  param nmax = 100
  integer n, p, q, i, j, jj
  real x(nmax)
  integer ind(nmax)
  q = 0
  do i = 1, p
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  q = q + 1
  do j = 1, q
    jj = ind(j)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("ctrmod", "jj")
	if w.an.Verify(NewInjective("ind"), use, sec1("ind", expr.One, expr.Var("q"))) {
		t.Error("modifying the counter between definition and use must kill the query")
	}
}

func TestGatherRequiresLoopIndexRHS(t *testing.T) {
	src := `
program notgather
  param nmax = 100
  integer n, p, q, i, j, jj
  real x(nmax)
  integer ind(nmax)
  q = 0
  do i = 1, p
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i + 1
    end if
  end do
  do j = 1, q
    jj = ind(j)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("notgather", "jj")
	if w.an.Verify(NewInjective("ind"), use, sec1("ind", expr.One, expr.Var("q"))) {
		t.Error("rhs != loop index: not an index-gathering loop (condition 4)")
	}
}

// ccsSrc is Fig. 3 of the paper: offset() has closed-form distance
// length().
const ccsSrc = `
program ccs
  param nmax = 100
  integer n, i, j
  integer offset(nmax), length(nmax)
  real data(nmax)
  offset(1) = 1
  do i = 1, n
    offset(i + 1) = offset(i) + length(i)
  end do
  do i = 1, n
    do j = 1, length(i)
      data(offset(i) + j - 1) = 0.0
    end do
  end do
end
`

func TestClosedFormDistance(t *testing.T) {
	w := build(t, ccsSrc)
	// Use site: the data() assignment inside the traversal loop.
	use := w.assignTo("ccs", "data")
	prop := NewClosedFormDistance("offset")
	// Pairs [1:n]: offset(k+1) - offset(k) for k in [1:n].
	sec := sec1("offset", expr.One, expr.Var("n"))
	if !w.an.Verify(prop, use, sec) {
		t.Fatal("offset should have closed-form distance length()")
	}
	// Dist(k) must be length(k).
	want := expr.FromAST(&lang.ArrayRef{Name: "length", Args: []lang.Expr{&lang.Ident{Name: Formal}}})
	if prop.Dist == nil || !prop.Dist.Equal(want) {
		t.Errorf("Dist = %v, want length(%s)", prop.Dist, Formal)
	}
}

func TestClosedFormDistanceKilledByWrite(t *testing.T) {
	src := `
program ccsbad
  param nmax = 100
  integer n, i
  integer offset(nmax), length(nmax)
  real data(nmax)
  offset(1) = 1
  do i = 1, n
    offset(i + 1) = offset(i) + length(i)
  end do
  offset(3) = 99
  do i = 1, n
    data(offset(i)) = 0.0
  end do
end
`
	w := build(t, src)
	use := w.assignTo("ccsbad", "data")
	prop := NewClosedFormDistance("offset")
	if w.an.Verify(prop, use, sec1("offset", expr.One, expr.Var("n"))) {
		t.Error("offset(3)=99 must kill the distance property of pairs 2 and 3")
	}
}

func TestClosedFormDistanceKilledByDistArrayWrite(t *testing.T) {
	src := `
program distkill
  param nmax = 100
  integer n, i
  integer offset(nmax), length(nmax)
  real data(nmax)
  offset(1) = 1
  do i = 1, n
    offset(i + 1) = offset(i) + length(i)
  end do
  length(1) = 0
  do i = 1, n
    data(offset(i)) = 0.0
  end do
end
`
	w := build(t, src)
	use := w.assignTo("distkill", "data")
	prop := NewClosedFormDistance("offset")
	if w.an.Verify(prop, use, sec1("offset", expr.One, expr.Var("n"))) {
		t.Error("writing length() between definition and use must kill the derived distance")
	}
}

func TestClosedFormDistanceAccumulatorPattern(t *testing.T) {
	// §3.2.8 pattern (a): x(i) = t; t = t + y(i).
	src := `
program accum
  param nmax = 100
  integer n, i, t
  integer x(nmax), y(nmax)
  real data(nmax)
  t = 1
  do i = 1, n
    x(i) = t
    t = t + y(i)
  end do
  do i = 1, n
    data(x(i)) = 0.0
  end do
end
`
	w := build(t, src)
	use := w.assignTo("accum", "data")
	prop := NewClosedFormDistance("x")
	// Pairs [1:n-1].
	sec := sec1("x", expr.One, expr.Var("n").AddConst(-1))
	if !w.an.Verify(prop, use, sec) {
		t.Fatal("accumulator pattern should derive a closed-form distance")
	}
	want := expr.FromAST(&lang.ArrayRef{Name: "y", Args: []lang.Expr{&lang.Ident{Name: Formal}}})
	if prop.Dist == nil || !prop.Dist.Equal(want) {
		t.Errorf("Dist = %v, want y(%s)", prop.Dist, Formal)
	}
}

func TestClosedFormValueDerive(t *testing.T) {
	// TRFD-style triangular offsets: ia(i) = i*(i-1)/2.
	src := `
program trfdlike
  param nmax = 100
  integer n, i, v
  integer ia(nmax)
  do i = 1, n
    ia(i) = i * (i - 1) / 2
  end do
  do i = 1, n
    v = ia(i)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("trfdlike", "v")
	prop := NewClosedFormValue("ia")
	sec := sec1("ia", expr.One, expr.Var("n"))
	if !w.an.Verify(prop, use, sec) {
		t.Fatal("ia should have a derivable closed-form value")
	}
	if prop.Value == nil {
		t.Fatal("no value derived")
	}
	// Value at k=4 must be 4*3/2 = 6.
	at4 := prop.ValueAt(expr.Const(4))
	if c, ok := at4.IsConst(); !ok || c != 6 {
		t.Errorf("Value(4) = %v, want 6", at4)
	}
}

func TestClosedFormValueVerifyExpected(t *testing.T) {
	// Fig. 8: property given, two assignment sites, one matches one not.
	src := `
program fig8
  param nmax = 100
  integer n, i, v
  integer a(nmax)
  do i = 1, n
    a(i) = i * (i - 1) / 2
  end do
  a(n) = n * (n - 1) / 2
  do i = 1, n
    v = a(i)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("fig8", "v")
	prop := NewClosedFormValue("a")
	if !w.an.Verify(prop, use, sec1("a", expr.One, expr.Var("n"))) {
		t.Fatal("matching redundant assignment must not kill the property")
	}

	// Now a mismatching late assignment.
	src2 := `
program fig8b
  param nmax = 100
  integer n, i, v
  integer a(nmax)
  do i = 1, n
    a(i) = i * (i - 1) / 2
  end do
  a(1) = 5
  do i = 1, n
    v = a(i)
  end do
end
`
	w2 := build(t, src2)
	use2 := w2.assignTo("fig8b", "v")
	prop2 := NewClosedFormValue("a")
	if w2.an.Verify(prop2, use2, sec1("a", expr.One, expr.Var("n"))) {
		t.Error("a(1)=5 must kill the closed form for the queried section")
	}
}

func TestInterproceduralDefUse(t *testing.T) {
	// The index array is defined in one subroutine and used in another —
	// the paper's motivation for interprocedural analysis (§3).
	src := `
program interp
  param nmax = 100
  integer n, p, q, i, j, jj
  real x(nmax)
  integer ind(nmax)
  call define
  call use
end
subroutine define
  integer i
  q = 0
  do i = 1, p
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
end
subroutine use
  integer j
  do j = 1, q
    jj = ind(j)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("use", "jj")
	prop := NewBounds("ind")
	if !w.an.Verify(prop, use, sec1("ind", expr.One, expr.Var("q"))) {
		t.Fatal("interprocedural gather definition should verify (call descent + query splitting)")
	}
	if prop.Hi == nil || !prop.Hi.Equal(expr.Var("p")) {
		t.Errorf("Hi = %v, want p", prop.Hi)
	}
}

func TestInterproceduralKill(t *testing.T) {
	src := `
program interpk
  param nmax = 100
  integer n, p, q, i, j, jj
  real x(nmax)
  integer ind(nmax)
  call define
  call spoil
  call use
end
subroutine define
  integer i
  q = 0
  do i = 1, p
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
end
subroutine spoil
  ind(1) = 0
end
subroutine use
  integer j
  do j = 1, q
    jj = ind(j)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("use", "jj")
	if w.an.Verify(NewBounds("ind"), use, sec1("ind", expr.One, expr.Var("q"))) {
		t.Error("the spoiling call between define and use must kill the query")
	}
}

func TestUseInsideEnclosingLoop(t *testing.T) {
	// Case 2 of Fig. 7/10: the use is inside do k, the definition too;
	// the query must survive the loop-header propagation of do j and be
	// satisfied within the same iteration of do k.
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "z")
	prop := NewBounds("ind")
	// Query about a single element: ind(j).
	sec := section.Elem("ind", expr.Var("j"))
	if !w.an.Verify(prop, use, sec) {
		t.Fatal("single-element query inside the use loop should verify")
	}
}

func TestQuerySectionVariableKilledInLoop(t *testing.T) {
	// The section bound q is itself recomputed in every iteration of the
	// enclosing loop BEFORE the definition; from inside the use loop the
	// query must still verify (same-iteration definition).
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	if !w.an.Verify(NewInjective("ind"), use, sec1("ind", expr.One, expr.Var("q"))) {
		t.Fatal("per-iteration gather then use should verify")
	}
}

func TestConditionalDefinitionFails(t *testing.T) {
	// The gathering loop runs only conditionally: the definition does
	// not dominate the use, so the query must fail.
	src := `
program conddef
  param nmax = 100
  integer n, p, q, i, j, jj, flag
  real x(nmax)
  integer ind(nmax)
  q = 0
  if (flag > 0) then
    do i = 1, p
      if (x(i) > 0.0) then
        q = q + 1
        ind(q) = i
      end if
    end do
  end if
  do j = 1, q
    jj = ind(j)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("conddef", "jj")
	if w.an.Verify(NewInjective("ind"), use, sec1("ind", expr.One, expr.Var("q"))) {
		t.Error("conditional definition must not verify")
	}
}

func TestStatsAccounting(t *testing.T) {
	w := build(t, gatherSrc)
	use := w.assignTo("gather", "jj")
	w.an.Verify(NewInjective("ind"), use, sec1("ind", expr.One, expr.Var("q")))
	if w.an.Stats.Queries != 1 {
		t.Errorf("queries = %d", w.an.Stats.Queries)
	}
	if w.an.Stats.NodesVisited == 0 {
		t.Error("no nodes visited?")
	}
}
