package property

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
)

// Formal is the formal index variable used in derived closed forms: the
// derived value of a ClosedFormValue property is an expression over Formal.
// The name cannot collide with F-lite identifiers (they are lower-case
// letters/digits/underscores only).
const Formal = "#k"

// Ctx gives property checkers access to the surrounding analysis when
// summarizing one node.
type Ctx struct {
	s    *session
	node *cfg.HNode
}

func (s *session) ctxFor(n *cfg.HNode) *Ctx { return &Ctx{s: s, node: n} }

// in returns the compilation's expression interner (nil-safe: a nil interner
// degrades every lookup to plain conversion).
func (c *Ctx) in() *expr.Interner { return c.s.a.Interner() }

// Assume returns the analysis-wide sign assumptions.
func (c *Ctx) Assume() expr.Assumptions { return c.s.a.Assume }

// Env returns the index ranges of every DO loop enclosing the node (walking
// the section-graph parent chain). Value hulls bounded over this
// environment are valid anywhere in the unit.
func (c *Ctx) Env() expr.Env {
	env := expr.Env{}
	for g := c.node.Graph; g != nil && g.Parent != nil; g = g.Parent.Graph {
		if d, ok := g.Parent.Stmt.(*lang.DoStmt); ok {
			lo, hi, _, ok2 := envRange(c.in(), d)
			if ok2 && lo != nil && hi != nil {
				env[d.Var.Name] = expr.NewRange(lo, hi)
			} else {
				env[d.Var.Name] = expr.Range{}
			}
		}
	}
	return env
}

// SeenModified reports whether any of the named scalars/arrays was modified
// between the prospective definition site and the use site (i.e. by a node
// the query already traversed).
func (c *Ctx) SeenModified(vars, arrays []string) bool {
	return c.s.seenModified(vars, arrays)
}

// Property is one verifiable/derivable index-array property. Kill results
// are MAY approximations, Gen results MUST approximations.
type Property interface {
	// Kind names the property class ("bounds", "injective", ...). Unlike
	// String, it is stable across verification: derive-mode properties
	// accumulate facts that change their String rendering, so the memo
	// table (VerifyCached) keys on Kind plus the target array instead.
	Kind() string
	// TargetArray is the index array the property concerns.
	TargetArray() string
	// Relational marks whole-section properties (injectivity,
	// monotonicity): a query section is only discharged by a single Gen
	// section containing it.
	Relational() bool
	// Mentions returns the variables and arrays the property's derived
	// facts currently depend on; modifying any of them on the query path
	// kills the query.
	Mentions() (vars, arrays []string)
	// SummarizeAssign reports the effect of one assignment.
	SummarizeAssign(c *Ctx, st *lang.AssignStmt) (kill, gen *section.Set)
	// SummarizeLoop lets the checker recognise whole-loop idioms (index
	// gathering, recurrences); ok=false falls back to generic
	// aggregation.
	SummarizeLoop(c *Ctx, n *cfg.HNode) (kill, gen *section.Set, ok bool)
	fmt.Stringer
}

// base carries the common property fields.
type base struct {
	array string
	ndims int
}

func (b *base) TargetArray() string { return b.array }

func (b *base) killAll() *section.Set {
	return section.NewSet(section.Universal(b.array, b.ndims))
}

func emptySets() (*section.Set, *section.Set) {
	return section.NewSet(), section.NewSet()
}

// lhsInfo decomposes an assignment's left-hand side.
type lhsInfo struct {
	scalar string
	array  string
	sub    *expr.Expr // first-dimension subscript (canonical), arrays only
	nsubs  int
}

func lhsOf(in *expr.Interner, st *lang.AssignStmt) lhsInfo {
	switch l := st.Lhs.(type) {
	case *lang.Ident:
		return lhsInfo{scalar: l.Name}
	case *lang.ArrayRef:
		li := lhsInfo{array: l.Name, nsubs: len(l.Args)}
		if len(l.Args) >= 1 {
			li.sub = in.FromAST(l.Args[0])
		}
		return li
	}
	return lhsInfo{}
}

// ---------------------------------------------------------------------------
// Bounds: every element value lies within a derived [Lo, Hi] hull.

// Bounds derives closed-form bounds (§3: "closed-form bound") for the
// values of an index array section. On success, Lo and Hi hold the hull.
type Bounds struct {
	base
	Lo, Hi *expr.Expr
	broken bool
	vars   []string
	arrays []string
}

// NewBounds builds a bounds property for a one-dimensional index array.
func NewBounds(array string) *Bounds {
	return &Bounds{base: base{array: array, ndims: 1}}
}

func (p *Bounds) Kind() string { return "bounds" }

func (p *Bounds) Relational() bool { return false }

func (p *Bounds) Mentions() ([]string, []string) { return p.vars, p.arrays }

func (p *Bounds) String() string {
	return fmt.Sprintf("bounds(%s) in [%v:%v]", p.array, p.Lo, p.Hi)
}

// merge widens the derived hull; it fails (breaking the property) when the
// relative order of bounds cannot be proven.
func (p *Bounds) merge(lo, hi *expr.Expr, c *Ctx) bool {
	a := c.Assume()
	if p.Lo == nil && p.Hi == nil && !p.broken {
		p.Lo, p.Hi = lo, hi
	} else {
		nl := provableMin(p.Lo, lo, a)
		nh := provableMax(p.Hi, hi, a)
		if nl == nil || nh == nil {
			p.broken = true
			return false
		}
		p.Lo, p.Hi = nl, nh
	}
	p.vars = union(p.vars, exprVars(p.Lo), exprVars(p.Hi))
	p.arrays = union(p.arrays, exprArrays(p.Lo), exprArrays(p.Hi))
	return true
}

func (p *Bounds) SummarizeAssign(c *Ctx, st *lang.AssignStmt) (*section.Set, *section.Set) {
	l := lhsOf(c.in(), st)
	if l.array != p.array {
		return emptySets()
	}
	if l.nsubs != 1 || p.broken {
		return p.killAll(), section.NewSet()
	}
	val := c.in().FromAST(st.Rhs)
	r, ok := expr.Bounds(val, c.Env(), c.Assume())
	if !ok || r.Lo == nil || r.Hi == nil {
		r, ok = modulusBounds(st.Rhs, c)
	}
	if !ok || r.Lo == nil || r.Hi == nil {
		return p.killElem(l.sub, c), section.NewSet()
	}
	if c.SeenModified(union(exprVars(r.Lo), exprVars(r.Hi)),
		union(exprArrays(r.Lo), exprArrays(r.Hi))) {
		return p.killElem(l.sub, c), section.NewSet()
	}
	// The element's subscript may itself depend on enclosing loop
	// variables; the loop aggregation takes care of that. But a value
	// whose hull cannot merge breaks the whole derivation.
	if !p.merge(r.Lo, r.Hi, c) {
		return p.killAll(), section.NewSet()
	}
	return section.NewSet(), section.NewSet(section.Elem(p.array, l.sub))
}

// modulusBounds bounds values of the shape mod(x, c) + rest: for constant
// c > 0 and provably nonnegative x, mod(x, c) lies in [0, c-1]. This idiom
// is how block-size index arrays are commonly synthesised.
func modulusBounds(rhs lang.Expr, c *Ctx) (expr.Range, bool) {
	return modulusBoundsEnv(rhs, c.Env(), c.Assume())
}

// modulusBoundsEnv is modulusBounds over an explicit environment, so the
// recurrence derivation can extend the env with the fill loop's own
// variable (Ctx.Env only covers enclosing loops).
func modulusBoundsEnv(rhs lang.Expr, env expr.Env, a expr.Assumptions) (expr.Range, bool) {
	var modRef *lang.ArrayRef
	replaced := lang.MapExpr(lang.CloneExpr(rhs), func(e lang.Expr) lang.Expr {
		ar, ok := e.(*lang.ArrayRef)
		if !ok || !ar.Intrinsic || ar.Name != "mod" || len(ar.Args) != 2 || modRef != nil {
			return e
		}
		modRef = ar
		// Stand-in marker variable, replaced by the mod bounds below.
		return &lang.Ident{Name: "#mod"}
	})
	if modRef == nil {
		return expr.Range{}, false
	}
	cv, ok := expr.FromAST(modRef.Args[1]).IsConst()
	if !ok || cv <= 0 {
		return expr.Range{}, false
	}
	argR, ok := expr.Bounds(expr.FromAST(modRef.Args[0]), env, a)
	if !ok || argR.Lo == nil || !expr.ProveGE0(argR.Lo, a) {
		return expr.Range{}, false
	}
	menv := env.With("#mod", expr.NewRange(expr.Zero, expr.Const(cv-1)))
	return expr.Bounds(expr.FromAST(replaced), menv, a)
}

func (p *Bounds) killElem(sub *expr.Expr, c *Ctx) *section.Set {
	if sub == nil {
		return p.killAll()
	}
	// The subscript may mention loop variables; widen over the env so the
	// MAY kill stays sound after aggregation.
	sec := section.Elem(p.array, sub)
	return section.NewSet(sec.AggregateMayEnv(c.Env(), c.Assume()))
}

func (p *Bounds) SummarizeLoop(c *Ctx, n *cfg.HNode) (*section.Set, *section.Set, bool) {
	gi := c.s.detectGather(n, p.array)
	if gi == nil {
		return nil, nil, false
	}
	if gi.ValLo == nil || gi.ValHi == nil || p.broken {
		return nil, nil, false
	}
	if c.SeenModified(union(exprVars(gi.ValLo), exprVars(gi.ValHi), exprVars(gi.Base)),
		union(exprArrays(gi.ValLo), exprArrays(gi.ValHi))) {
		return nil, nil, false
	}
	if !p.merge(gi.ValLo, gi.ValHi, c) {
		return p.killAll(), section.NewSet(), true
	}
	c.s.a.Stats.GatherHits++
	gen := section.NewSet(section.New(p.array, gi.Base.AddConst(1), expr.Var(gi.Counter)))
	return section.NewSet(), gen, true
}

// ---------------------------------------------------------------------------
// Injective: the values in the section are pairwise distinct.

// Injective verifies that an index array section holds pairwise-distinct
// values (the prerequisite of the injective dependence test, §5.1.5).
type Injective struct {
	base
}

// NewInjective builds an injectivity property for a 1-D index array.
func NewInjective(array string) *Injective {
	return &Injective{base: base{array: array, ndims: 1}}
}

func (p *Injective) Kind() string                   { return "injective" }
func (p *Injective) Relational() bool               { return true }
func (p *Injective) Mentions() ([]string, []string) { return nil, nil }
func (p *Injective) String() string                 { return fmt.Sprintf("injective(%s)", p.array) }

func (p *Injective) SummarizeAssign(c *Ctx, st *lang.AssignStmt) (*section.Set, *section.Set) {
	l := lhsOf(c.in(), st)
	if l.array != p.array {
		return emptySets()
	}
	// Any individual write may break injectivity of sections containing
	// the element.
	return p.killAll(), section.NewSet()
}

func (p *Injective) SummarizeLoop(c *Ctx, n *cfg.HNode) (*section.Set, *section.Set, bool) {
	if gi := c.s.detectGather(n, p.array); gi != nil {
		c.s.a.Stats.GatherHits++
		gen := section.NewSet(section.New(p.array, gi.Base.AddConst(1), expr.Var(gi.Counter)))
		// Net kill is empty: everything written is exactly the generated
		// section (SummarizeProgSection reports kills net of regeneration).
		return section.NewSet(), gen, true
	}
	// An affine fill a(i) = c*i + rest with c != 0 assigns pairwise
	// distinct values (the closed-form-value route to injectivity).
	if af := matchAffineFill(c, n, p.array); af != nil && af.coef != 0 {
		c.s.a.Stats.PatternHits++
		return section.NewSet(), section.NewSet(section.New(p.array, af.lo, af.hi)), true
	}
	// Definition-site derivation: a recurrence fill with strictly positive
	// increments is strictly monotonic, hence injective (injectivity as a
	// corollary of strict monotonicity).
	if dr := c.deriveForLoop(n, p.array); dr != nil && dr.Strict() {
		c.s.a.Stats.DerivedInjective++
		gen := section.NewSet(section.New(p.array, dr.ElemLo, dr.ElemHi))
		return section.NewSet(), gen, true
	}
	return nil, nil, false
}

// ---------------------------------------------------------------------------
// Monotonic: values are monotonically non-decreasing (or strictly
// increasing) across the section.

// Monotonic verifies monotonicity of the values of an index array section.
type Monotonic struct {
	base
	// Strict is set when the generated values are provably strictly
	// increasing (which subsumes non-decreasing).
	Strict bool
}

// NewMonotonic builds a monotonicity property for a 1-D index array.
func NewMonotonic(array string) *Monotonic {
	return &Monotonic{base: base{array: array, ndims: 1}}
}

func (p *Monotonic) Kind() string                   { return "monotonic" }
func (p *Monotonic) Relational() bool               { return true }
func (p *Monotonic) Mentions() ([]string, []string) { return nil, nil }
func (p *Monotonic) String() string                 { return fmt.Sprintf("monotonic(%s)", p.array) }

func (p *Monotonic) SummarizeAssign(c *Ctx, st *lang.AssignStmt) (*section.Set, *section.Set) {
	l := lhsOf(c.in(), st)
	if l.array != p.array {
		return emptySets()
	}
	return p.killAll(), section.NewSet()
}

func (p *Monotonic) SummarizeLoop(c *Ctx, n *cfg.HNode) (*section.Set, *section.Set, bool) {
	if gi := c.s.detectGather(n, p.array); gi != nil && gi.Increasing {
		c.s.a.Stats.GatherHits++
		p.Strict = true
		gen := section.NewSet(section.New(p.array, gi.Base.AddConst(1), expr.Var(gi.Counter)))
		return section.NewSet(), gen, true
	}
	// An affine fill a(i) = c*i + rest is monotonically non-decreasing in
	// the element index for c >= 0, strictly increasing for c >= 1.
	if af := matchAffineFill(c, n, p.array); af != nil && af.coef >= 0 {
		c.s.a.Stats.PatternHits++
		p.Strict = af.coef >= 1
		return section.NewSet(), section.NewSet(section.New(p.array, af.lo, af.hi)), true
	}
	// Definition-site derivation (Bhosale & Eigenmann): a prefix-sum fill
	// x(i+1) = x(i) + d with every increment provably nonnegative is
	// monotonic by construction, strictly when every increment is positive.
	if dr := c.deriveForLoop(n, p.array); dr != nil && dr.Monotonic() {
		c.s.a.Stats.DerivedMonotonic++
		p.Strict = dr.Strict()
		gen := section.NewSet(section.New(p.array, dr.ElemLo, dr.ElemHi))
		return section.NewSet(), gen, true
	}
	return nil, nil, false
}

// affineFill describes a loop "do i = lo, hi: a(i) = coef*i + rest" with
// loop-invariant rest.
type affineFill struct {
	coef   int64
	lo, hi *expr.Expr
}

// matchAffineFill recognises a dense affine fill of the array: the loop
// body is exactly one assignment a(i) = e with e affine in the loop
// variable, and nothing about the loop can change between definition and
// use (checked against the traversal's modification log).
func matchAffineFill(c *Ctx, n *cfg.HNode, array string) *affineFill {
	if n.Kind != cfg.HDo {
		return nil
	}
	d := n.Stmt.(*lang.DoStmt)
	if len(d.Body) != 1 {
		return nil
	}
	as, ok := d.Body[0].(*lang.AssignStmt)
	if !ok {
		return nil
	}
	ref, ok := as.Lhs.(*lang.ArrayRef)
	if !ok || ref.Name != array || len(ref.Args) != 1 {
		return nil
	}
	if v, isVar := c.in().FromAST(ref.Args[0]).IsVar(); !isVar || v != d.Var.Name {
		return nil
	}
	lo, hi, dense, okRange := envRange(c.in(), d)
	if !okRange || !dense || lo == nil || hi == nil {
		return nil
	}
	val := c.in().FromAST(as.Rhs)
	coef, rest, okAff := val.Affine(d.Var.Name)
	if !okAff {
		return nil
	}
	// The rest and the bounds must be stable between definition and use.
	stableVars := union(exprVars(rest), exprVars(lo), exprVars(hi))
	stableArrs := union(exprArrays(rest), exprArrays(lo), exprArrays(hi))
	if c.SeenModified(stableVars, stableArrs) {
		return nil
	}
	return &affineFill{coef: coef, lo: lo, hi: hi}
}

// ---------------------------------------------------------------------------
// ClosedFormValue: x(k) = f(k) for every k in the section.

// ClosedFormValue derives (or verifies, when Expected is set) a closed-form
// expression for the elements of an index array. The derived Value is an
// expression over the formal variable Formal.
type ClosedFormValue struct {
	base
	// Expected, when non-nil, is the value to verify (over Formal).
	Expected *expr.Expr
	// Value is the derived closed form (over Formal); equals Expected in
	// verification mode.
	Value  *expr.Expr
	vars   []string
	arrays []string
}

// NewClosedFormValue builds a derive-mode closed-form-value property.
func NewClosedFormValue(array string) *ClosedFormValue {
	return &ClosedFormValue{base: base{array: array, ndims: 1}}
}

func (p *ClosedFormValue) Kind() string                   { return "closed-form-value" }
func (p *ClosedFormValue) Relational() bool               { return false }
func (p *ClosedFormValue) Mentions() ([]string, []string) { return p.vars, p.arrays }

func (p *ClosedFormValue) String() string {
	return fmt.Sprintf("closed-form-value(%s) = %v", p.array, p.Value)
}

// ValueAt instantiates the derived closed form at a subscript expression.
func (p *ClosedFormValue) ValueAt(sub *expr.Expr) *expr.Expr {
	if p.Value == nil {
		return nil
	}
	return p.Value.SubstVar(Formal, sub)
}

func (p *ClosedFormValue) SummarizeAssign(c *Ctx, st *lang.AssignStmt) (*section.Set, *section.Set) {
	l := lhsOf(c.in(), st)
	if l.array != p.array {
		return emptySets()
	}
	if l.nsubs != 1 {
		return p.killAll(), section.NewSet()
	}
	val := c.in().FromAST(st.Rhs)
	target := p.Value
	if target == nil {
		target = p.Expected
	}

	if target != nil {
		// Verify: does the assigned value match f(sub)?
		want := target.SubstVar(Formal, l.sub)
		if val.Equal(want) {
			p.adopt(target)
			return section.NewSet(), section.NewSet(section.Elem(p.array, l.sub))
		}
		return p.killElemWide(l.sub, c), section.NewSet()
	}

	// Derive: the subscript must be a plain variable so the value can be
	// re-expressed as a function of the position.
	v, isVar := l.sub.IsVar()
	if !isVar {
		return p.killElemWide(l.sub, c), section.NewSet()
	}
	f := val.SubstVar(v, expr.Var(Formal))
	// f must be a pure function of the position: no other variable it
	// mentions may have been modified on the use–def path, and arrays it
	// mentions must be unmodified too.
	fv := exprVars(f)
	fa := exprArrays(f)
	if c.SeenModified(fv, fa) {
		return p.killElemWide(l.sub, c), section.NewSet()
	}
	p.Value = f
	p.adopt(f)
	c.s.a.Stats.PatternHits++
	return section.NewSet(), section.NewSet(section.Elem(p.array, l.sub))
}

func (p *ClosedFormValue) adopt(f *expr.Expr) {
	p.Value = f
	vars := exprVars(f)
	// The formal is not a program variable.
	kept := vars[:0]
	for _, v := range vars {
		if v != Formal {
			kept = append(kept, v)
		}
	}
	p.vars = union(p.vars, kept)
	p.arrays = union(p.arrays, exprArrays(f))
}

func (p *ClosedFormValue) killElemWide(sub *expr.Expr, c *Ctx) *section.Set {
	if sub == nil {
		return p.killAll()
	}
	sec := section.Elem(p.array, sub)
	return section.NewSet(sec.AggregateMayEnv(c.Env(), c.Assume()))
}

func (p *ClosedFormValue) SummarizeLoop(c *Ctx, n *cfg.HNode) (*section.Set, *section.Set, bool) {
	return nil, nil, false // the generic aggregation handles CFV loops
}

// ---------------------------------------------------------------------------
// ClosedFormDistance: x(k+1) - x(k) = d(k).
//
// Section semantics are PAIR space: a section [a:b] of this property stands
// for the pairs (k, k+1) for k in [a:b].

// ClosedFormDistance derives the closed-form distance of an index array
// (§3.2.8): x(k+1) − x(k) = Dist(k), Dist over the formal variable Formal.
type ClosedFormDistance struct {
	base
	Dist   *expr.Expr
	vars   []string
	arrays []string
}

// NewClosedFormDistance builds a derive-mode closed-form-distance property.
func NewClosedFormDistance(array string) *ClosedFormDistance {
	return &ClosedFormDistance{base: base{array: array, ndims: 1}}
}

func (p *ClosedFormDistance) Kind() string                   { return "closed-form-distance" }
func (p *ClosedFormDistance) Relational() bool               { return false }
func (p *ClosedFormDistance) Mentions() ([]string, []string) { return p.vars, p.arrays }

func (p *ClosedFormDistance) String() string {
	return fmt.Sprintf("closed-form-distance(%s) = %v", p.array, p.Dist)
}

// DistAt instantiates the derived distance at a subscript expression.
func (p *ClosedFormDistance) DistAt(sub *expr.Expr) *expr.Expr {
	if p.Dist == nil {
		return nil
	}
	return p.Dist.SubstVar(Formal, sub)
}

func (p *ClosedFormDistance) SummarizeAssign(c *Ctx, st *lang.AssignStmt) (*section.Set, *section.Set) {
	l := lhsOf(c.in(), st)
	if l.array != p.array {
		return emptySets()
	}
	if l.nsubs != 1 || l.sub == nil {
		return p.killAll(), section.NewSet()
	}
	// A lone write to element e destroys the distance knowledge of the
	// pairs (e-1, e) and (e, e+1).
	sec := section.New(p.array, l.sub.AddConst(-1), l.sub)
	return section.NewSet(sec.AggregateMayEnv(c.Env(), c.Assume())), section.NewSet()
}

// SummarizeLoop matches the recurrence idioms of §3.2.8 and Fig. 3(c):
//
//	(b) do i = lo, hi:  x(i) = x(i-1) + d(i-1)   → pairs [lo-1 : hi-1]
//	    do i = lo, hi:  x(i+1) = x(i) + d(i)     → pairs [lo : hi]
//	(a) do i = lo, hi:  x(i) = t ; t = t + d(i)  → pairs [lo : hi-1]
func (p *ClosedFormDistance) SummarizeLoop(c *Ctx, n *cfg.HNode) (*section.Set, *section.Set, bool) {
	d, ok := n.Stmt.(*lang.DoStmt)
	if !ok {
		return nil, nil, false
	}
	lo, hi, dense, okRange := envRange(c.in(), d)
	if !okRange || !dense || lo == nil || hi == nil {
		return nil, nil, false
	}
	m := matchRecurrence(c.in(), d, p.array)
	if m == nil {
		return nil, nil, false
	}
	// The distance expression must be stable between definition and use.
	dist := m.dist.SubstVar(d.Var.Name, expr.Var(Formal))
	dv, da := exprVars(dist), exprArrays(dist)
	if c.SeenModified(dv, da) {
		return nil, nil, false
	}
	if p.Dist != nil && !p.Dist.Equal(dist) {
		return p.killAll(), section.NewSet(), true
	}
	p.Dist = dist
	p.vars = union(p.vars, removeFormal(dv))
	p.arrays = union(p.arrays, da)
	c.s.a.Stats.PatternHits++
	if !c.s.a.NoRecurrence {
		c.s.a.Stats.DerivedDistance++
	}

	a := c.Assume()
	pairLo := lo.Add(m.pairLoOff)
	pairHi := hi.Add(m.pairHiOff)
	gen := section.NewSet(section.New(p.array, pairLo, pairHi))
	// Net kill: pairs broken by the loop's writes and not regenerated.
	kill := section.NewSet()
	for _, ks := range m.netKillPairs(lo, hi) {
		kill.AddMay(ks, a)
	}
	return kill, gen, true
}

func removeFormal(vars []string) []string {
	out := vars[:0]
	for _, v := range vars {
		if v != Formal {
			out = append(out, v)
		}
	}
	return out
}

// union merges string slices removing duplicates, preserving first-seen
// order.
func union(sets ...[]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, set := range sets {
		for _, v := range set {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func provableMin(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return x
	case expr.ProveLE(y, x, a):
		return y
	default:
		return nil
	}
}

func provableMax(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return y
	case expr.ProveLE(y, x, a):
		return x
	default:
		return nil
	}
}
