package property

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
)

func TestModulusBounds(t *testing.T) {
	// iblen(i) = 2 + mod(i, 4) inside do i = 1, n must derive bounds
	// [2:5] even though mod() is opaque to the linear algebra.
	src := `
program p
  param nmax = 100
  integer n, i, v
  integer iblen(nmax)
  do i = 1, n
    iblen(i) = 2 + mod(i, 4)
  end do
  do i = 1, n
    v = iblen(i)
  end do
end
`
	w := build(t, src)
	use := w.assignTo("p", "v")
	prop := NewBounds("iblen")
	if !w.an.Verify(prop, use, sec1("iblen", expr.One, expr.Var("n"))) {
		t.Fatal("mod-defined bounds should verify")
	}
	if c, ok := prop.Lo.IsConst(); !ok || c != 2 {
		t.Errorf("Lo = %v", prop.Lo)
	}
	if c, ok := prop.Hi.IsConst(); !ok || c != 5 {
		t.Errorf("Hi = %v", prop.Hi)
	}
}

func TestModulusBoundsRejectsNegativeArg(t *testing.T) {
	// mod of a possibly-negative argument has a negative range in
	// Fortran/Go semantics; the bounds must not claim [0, c-1].
	src := `
program p
  param nmax = 100
  integer n, i, k, v
  integer a(nmax)
  do i = 1, n
    a(i) = mod(k - 50, 4)
  end do
  v = a(1)
end
`
	w := build(t, src)
	use := w.assignTo("p", "v")
	prop := NewBounds("a")
	if w.an.Verify(prop, use, sec1("a", expr.One, expr.Var("n"))) {
		if prop.Lo != nil {
			if c, ok := prop.Lo.IsConst(); ok && c >= 0 {
				t.Errorf("unsound nonnegative lower bound %v for mod of unknown-sign argument", prop.Lo)
			}
		}
	}
}

func TestMonotonicRejectsPlainFill(t *testing.T) {
	// A fill with data-dependent values is not provably monotonic.
	src := `
program p
  param nmax = 100
  integer n, i, v
  integer a(nmax), b(nmax)
  do i = 1, n
    a(i) = b(i)
  end do
  v = a(1)
end
`
	w := build(t, src)
	use := w.assignTo("p", "v")
	if w.an.Verify(NewMonotonic("a"), use, sec1("a", expr.One, expr.Var("n"))) {
		t.Error("data-dependent fill must not verify monotonic")
	}
}

func TestRelationalNotDischargedByParts(t *testing.T) {
	// Two separate gathers each injective do NOT make the union
	// injective: a query spanning both sections must fail.
	src := `
program p
  param nmax = 100
  integer n, q, q2, i, v
  real x(nmax)
  integer ind(nmax)
  q = 0
  do i = 1, n
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  q2 = q
  do i = 1, n
    if (x(i) < 0.0) then
      q2 = q2 + 1
      ind(q2) = i
    end if
  end do
  v = ind(1)
end
`
	w := build(t, src)
	use := w.assignTo("p", "v")
	// The whole section [1:q2] spans both gathers; even though each part
	// is injective, the union may repeat values.
	if w.an.Verify(NewInjective("ind"), use, sec1("ind", expr.One, expr.Var("q2"))) {
		t.Error("union of two injective sections must not be claimed injective")
	}
}

func TestPropertyStringForms(t *testing.T) {
	b := NewBounds("a")
	if b.String() == "" || b.TargetArray() != "a" {
		t.Error("bounds string/target")
	}
	i := NewInjective("a")
	if !i.Relational() {
		t.Error("injective must be relational")
	}
	m := NewMonotonic("a")
	if !m.Relational() {
		t.Error("monotonic must be relational")
	}
	cfv := NewClosedFormValue("a")
	if cfv.Relational() {
		t.Error("CFV is element-wise")
	}
	cfd := NewClosedFormDistance("a")
	if cfd.Relational() {
		t.Error("CFD is element-wise (over pairs)")
	}
	if cfd.DistAt(expr.Const(3)) != nil {
		t.Error("DistAt before derivation must be nil")
	}
	if cfv.ValueAt(expr.Const(3)) != nil {
		t.Error("ValueAt before derivation must be nil")
	}
}

func TestVerifyAtUnknownStatement(t *testing.T) {
	w := build(t, gatherSrc)
	ghost := &lang.AssignStmt{Lhs: &lang.Ident{Name: "x"}, Rhs: &lang.IntLit{Value: 1}}
	if w.an.Verify(NewBounds("ind"), ghost, sec1("ind", expr.One, expr.Var("q"))) {
		t.Error("verification at a statement outside the program must fail")
	}
}

func TestWhileLoopConservative(t *testing.T) {
	// An index array written inside a WHILE loop cannot be MUST-generated
	// by the generic machinery (unknown trip count).
	src := `
program p
  param nmax = 100
  integer n, i, w, v
  integer ind(nmax)
  w = n
  i = 0
  do while (w >= 1)
    i = i + 1
    ind(i) = i
    w = w - 1
  end do
  v = ind(1)
end
`
	w := build(t, src)
	use := w.assignTo("p", "v")
	if w.an.Verify(NewBounds("ind"), use, sec1("ind", expr.One, expr.Var("i"))) {
		t.Error("while-loop definition must stay unproven in the generic path")
	}
}

func TestSectionSetHelpers(t *testing.T) {
	// setVars must see variables in both bounds.
	s := section.NewSet(section.New("x", expr.Var("a"), expr.Var("b").AddConst(2)))
	vars := setVars(s)
	has := map[string]bool{}
	for _, v := range vars {
		has[v] = true
	}
	if !has["a"] || !has["b"] {
		t.Errorf("setVars: %v", vars)
	}
	e := expr.FromAST(parseExprP(t, "y(i) + z"))
	if got := exprArrays(e); len(got) != 1 || got[0] != "y" {
		t.Errorf("exprArrays: %v", got)
	}
	vs := exprVars(e)
	hasV := map[string]bool{}
	for _, v := range vs {
		hasV[v] = true
	}
	if !hasV["i"] || !hasV["z"] {
		t.Errorf("exprVars: %v", vs)
	}
}

func parseExprP(t *testing.T, src string) lang.Expr {
	t.Helper()
	prog, err := lang.Parse("program t\n zz9 = " + src + "\nend\n")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return prog.Main.Body[0].(*lang.AssignStmt).Rhs
}

func TestAffineFillInjectiveAndMonotonic(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i, v
  integer a(nmax), d(nmax)
  do i = 1, n
    a(i) = 3 * i + 7
  end do
  do i = 1, n
    d(i) = 5 - i
  end do
  v = a(1) + d(1)
end
`
	w := build(t, src)
	use := w.assignTo("p", "v")
	if !w.an.Verify(NewInjective("a"), use, sec1("a", expr.One, expr.Var("n"))) {
		t.Error("a(i)=3i+7 is injective")
	}
	mono := NewMonotonic("a")
	if !w.an.Verify(mono, use, sec1("a", expr.One, expr.Var("n"))) {
		t.Error("a(i)=3i+7 is strictly increasing")
	}
	if !mono.Strict {
		t.Error("coefficient 3 is strict")
	}
	// d(i) = 5 - i: injective (coef -1) but NOT non-decreasing.
	if !w.an.Verify(NewInjective("d"), use, sec1("d", expr.One, expr.Var("n"))) {
		t.Error("d(i)=5-i is injective")
	}
	if w.an.Verify(NewMonotonic("d"), use, sec1("d", expr.One, expr.Var("n"))) {
		t.Error("d(i)=5-i is decreasing; non-decreasing must fail")
	}
}

func TestAffineFillConstantNotInjective(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i, v
  integer a(nmax)
  do i = 1, n
    a(i) = 7
  end do
  v = a(1)
end
`
	w := build(t, src)
	use := w.assignTo("p", "v")
	if w.an.Verify(NewInjective("a"), use, sec1("a", expr.One, expr.Var("n"))) {
		t.Error("constant fill is not injective")
	}
	// But it IS (trivially) non-decreasing.
	if !w.an.Verify(NewMonotonic("a"), use, sec1("a", expr.One, expr.Var("n"))) {
		t.Error("constant fill is non-decreasing")
	}
}
