package property

import (
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
)

// recurrenceMatch describes a matched closed-form-distance definition loop.
type recurrenceMatch struct {
	array string
	// dist is the per-step distance in terms of the loop variable: for
	// "x(i+1) = x(i) + d" at step i, the pair (x(i), x(i+1)) has distance
	// d(i) — dist is d with pair index == i.
	dist *expr.Expr
	// pairLoOff/pairHiOff adjust the loop bounds into pair space: the
	// generated pairs are [lo+pairLoOff : hi+pairHiOff].
	pairLoOff, pairHiOff *expr.Expr
	// writeLoOff/writeHiOff give the elements written: [lo+writeLoOff :
	// hi+writeHiOff].
	writeLoOff, writeHiOff *expr.Expr
}

// netKillPairs returns the pairs broken by the loop's writes and not
// regenerated: written elements e break pairs e-1 and e; the generated
// pairs are subtracted.
func (m *recurrenceMatch) netKillPairs(lo, hi *expr.Expr) []*section.Section {
	killLo := lo.Add(m.writeLoOff).AddConst(-1)
	killHi := hi.Add(m.writeHiOff)
	genLo := lo.Add(m.pairLoOff)
	genHi := hi.Add(m.pairHiOff)
	var out []*section.Section
	// Pairs below the generated range.
	if d, ok := genLo.DiffConst(killLo); ok && d > 0 {
		out = append(out, section.New(m.array, killLo, genLo.AddConst(-1)))
	}
	// Pairs above the generated range.
	if d, ok := killHi.DiffConst(genHi); ok && d > 0 {
		out = append(out, section.New(m.array, genHi.AddConst(1), killHi))
	}
	if out == nil && !(genLoLEQ(killLo, genLo) && genLoLEQ(genHi, killHi)) {
		// Fallback: relationship unknown, kill the whole written pair
		// range (MAY).
		out = append(out, section.New(m.array, killLo, killHi))
	}
	return out
}

func genLoLEQ(x, y *expr.Expr) bool {
	d, ok := y.DiffConst(x)
	return ok && d >= 0
}

// matchRecurrence recognises the closed-form-distance definition idioms of
// §3.2.8 applied to the body of a DO loop:
//
//	(b1) x(i)   = x(i-1) + d      (pairs i-1, writes i)
//	(b2) x(i+1) = x(i)   + d      (pairs i,   writes i+1)
//	(a)  x(i) = t ; t = t + d     (pairs i..i (with next iteration), writes i)
//
// The loop body may contain other statements only if they do not write the
// array, the accumulator, or anything the distance expression mentions.
func matchRecurrence(in *expr.Interner, d *lang.DoStmt, array string) *recurrenceMatch {
	v := d.Var.Name

	// A recurrence chains values forward: each write reads (or accumulates
	// into) state the PREVIOUS iteration established. Downward or strided
	// iteration breaks the chain — x(i-1) is overwritten after x(i) read
	// it — so only unit forward steps match.
	if d.Step != nil {
		if cst, ok := in.FromAST(d.Step).IsConst(); !ok || cst != 1 {
			return nil
		}
	}

	// Collect top-level assignments of the body; nested control flow
	// around the recurrence disqualifies the pattern (a conditional
	// recurrence has no closed form).
	var assigns []*lang.AssignStmt
	clean := true
	lang.WalkStmts(d.Body, func(s lang.Stmt) bool {
		switch s := s.(type) {
		case *lang.AssignStmt:
			assigns = append(assigns, s)
		case *lang.ContinueStmt, *lang.PrintStmt:
		default:
			clean = false
		}
		return true
	})
	if !clean {
		return nil
	}

	// Find writes to the array.
	var arrWrites []*lang.AssignStmt
	for _, as := range assigns {
		if ar, ok := as.Lhs.(*lang.ArrayRef); ok && ar.Name == array {
			arrWrites = append(arrWrites, as)
		}
	}
	if len(arrWrites) != 1 {
		return nil
	}
	w := arrWrites[0]
	ar := w.Lhs.(*lang.ArrayRef)
	if len(ar.Args) != 1 {
		return nil
	}
	sub := in.FromAST(ar.Args[0])

	// Pattern (b): x(sub) = x(sub-1) + d.
	if m := matchDirectRecurrence(in, w, sub, array, v); m != nil {
		if len(assigns) == 1 {
			return m
		}
		// Extra assignments must not interfere.
		if othersBenign(assigns, w, array, m.dist, "") {
			return m
		}
		return nil
	}

	// Pattern (a): x(i) = t ; t = t + d, with i the loop index.
	subVar, isVar := sub.IsVar()
	if !isVar || subVar != v {
		return nil
	}
	tName, okT := identName(w.Rhs)
	if !okT {
		return nil
	}
	var acc *lang.AssignStmt
	for _, as := range assigns {
		if id, ok := as.Lhs.(*lang.Ident); ok && id.Name == tName && as != w {
			if acc != nil {
				return nil // t assigned twice
			}
			acc = as
		}
	}
	if acc == nil {
		return nil
	}
	dist := in.FromAST(acc.Rhs).Sub(expr.Var(tName))
	if dist.MentionsVar(tName) {
		return nil
	}
	m := &recurrenceMatch{
		array: array,
		dist:  dist,
		// x(i) = t_i and x(i+1) = t_i + d(i): pair i has distance d(i);
		// the last write is x(hi), so the last complete pair is hi-1.
		pairLoOff:  expr.Zero,
		pairHiOff:  expr.Const(-1),
		writeLoOff: expr.Zero,
		writeHiOff: expr.Zero,
	}
	if !othersBenign(assigns, w, array, m.dist, tName) {
		return nil
	}
	// The accumulator itself must not feed anything else in the body —
	// already implied by assignment scan. Order x-write-before-t-update
	// is required for the distance to be d(i) (not d(i-1)); verify by
	// position.
	if !precedes(d.Body, w, acc) {
		return nil
	}
	return m
}

// matchDirectRecurrence matches x(sub) = x(sub-1) + d with sub affine in
// the loop variable with coefficient 1.
func matchDirectRecurrence(in *expr.Interner, w *lang.AssignStmt, sub *expr.Expr, array, v string) *recurrenceMatch {
	rhs := in.FromAST(w.Rhs)
	// Look for the atom x(sub-1) in the rhs.
	prevSub := sub.AddConst(-1)
	prevKey := refKeyFor(array, prevSub)
	if rhs.CoefOf(prevKey) != 1 {
		return nil
	}
	dist := rhs.WithoutTerm(prevKey)
	if dist.HasAtom(prevKey) || mentionsArray(dist, array) {
		return nil
	}
	coef, _, ok := sub.Affine(v)
	if !ok || coef != 1 {
		return nil
	}
	// Shift into pair space: writing x(sub) establishes pair sub-1; the
	// subscript is sub = i + constOff.
	constOff := sub.Sub(expr.Var(v))
	// dist as function of the PAIR index k = sub-1 = i + c - 1: we keep
	// dist in terms of i and let the caller substitute the loop variable
	// by (Formal - (c-1)) so that Dist(Formal) is over pair indices.
	// Simpler: express dist over pair index directly here.
	// pair index k = i + c - 1  ⇒  i = k - c + 1.
	distOverPair := dist.SubstVar(v, expr.Var(v).Sub(constOff).AddConst(1))
	return &recurrenceMatch{
		array:      array,
		dist:       distOverPair,
		pairLoOff:  constOff.AddConst(-1),
		pairHiOff:  constOff.AddConst(-1),
		writeLoOff: constOff,
		writeHiOff: constOff,
	}
}

// refKeyFor builds the canonical atom key array(sub).
func refKeyFor(array string, sub *expr.Expr) string {
	return array + "(" + sub.String() + ")"
}

func mentionsArray(e *expr.Expr, array string) bool {
	for _, a := range exprArrays(e) {
		if a == array {
			return true
		}
	}
	return false
}

func identName(e lang.Expr) (string, bool) {
	id, ok := e.(*lang.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// othersBenign checks that assignments other than the recurrence write do
// not interfere: they must not write the array, the accumulator, any
// variable or array the distance mentions, or the loop-carried state.
func othersBenign(assigns []*lang.AssignStmt, w *lang.AssignStmt, array string, dist *expr.Expr, acc string) bool {
	dv := exprVars(dist)
	da := exprArrays(dist)
	protectedScalar := map[string]bool{}
	for _, v := range dv {
		protectedScalar[v] = true
	}
	protectedArray := map[string]bool{array: true}
	for _, a := range da {
		protectedArray[a] = true
	}
	for _, as := range assigns {
		if as == w {
			continue
		}
		switch l := as.Lhs.(type) {
		case *lang.Ident:
			if l.Name == acc {
				continue // the accumulator update itself
			}
			if protectedScalar[l.Name] {
				return false
			}
		case *lang.ArrayRef:
			if protectedArray[l.Name] {
				return false
			}
		}
	}
	return true
}

// precedes reports whether a occurs before b in the statement list (both
// must be top-level members of stmts or nested; source order by position).
func precedes(stmts []lang.Stmt, a, b lang.Stmt) bool {
	ai, bi := -1, -1
	i := 0
	lang.WalkStmts(stmts, func(s lang.Stmt) bool {
		if s == a {
			ai = i
		}
		if s == b {
			bi = i
		}
		i++
		return true
	})
	return ai >= 0 && bi >= 0 && ai < bi
}
