package property

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
)

// doOver finds the first DO loop in the unit whose body (transitively)
// writes the given array.
func (w *world) doOver(unit, array string) *lang.DoStmt {
	w.t.Helper()
	s := w.stmtWhere(unit, func(s lang.Stmt) bool {
		d, ok := s.(*lang.DoStmt)
		if !ok {
			return false
		}
		writes := false
		lang.WalkStmts(d.Body, func(b lang.Stmt) bool {
			if as, ok := b.(*lang.AssignStmt); ok {
				if ar, ok := as.Lhs.(*lang.ArrayRef); ok && ar.Name == array {
					writes = true
				}
			}
			return !writes
		})
		return writes
	})
	return s.(*lang.DoStmt)
}

// fillProgram wraps a fill-loop body into a compilable program. header is
// the DO header ("do i = 1, n" unless overridden).
func fillProgram(header, body string) string {
	return fmt.Sprintf(`
program fill
  param n = 10
  integer i, c, t
  integer x(n + 1), d(n), y(n), q(n + 1)
  real z(n)
  %s
%s
  end do
end
`, header, body)
}

// TestMatchRecurrenceIdioms drives the syntactic matcher through the
// definition idioms of §3.2.8 — (b1) x(i)=x(i-1)+d, (b2) x(i+1)=x(i)+d,
// (a) the accumulator form — and the shapes it must reject.
func TestMatchRecurrenceIdioms(t *testing.T) {
	cases := []struct {
		name   string
		header string // DO header; "" means "do i = 1, n"
		body   string
		match  bool
		// wantDist is the constant distance (checked only when constDist).
		constDist bool
		wantDist  int64
		// pair offsets relative to the loop bounds.
		wantPairLo, wantPairHi int64
	}{
		{
			name: "b1-direct", body: "    x(i) = x(i - 1) + 2",
			match: true, constDist: true, wantDist: 2, wantPairLo: -1, wantPairHi: -1,
		},
		{
			name: "b2-shifted", body: "    x(i + 1) = x(i) + 3",
			match: true, constDist: true, wantDist: 3, wantPairLo: 0, wantPairHi: 0,
		},
		{
			name: "b2-array-dist", body: "    x(i + 1) = x(i) + d(i)",
			match: true, wantPairLo: 0, wantPairHi: 0,
		},
		{
			name: "a-accumulator", body: "    x(i) = t\n    t = t + 4",
			match: true, constDist: true, wantDist: 4, wantPairLo: 0, wantPairHi: -1,
		},
		{
			name: "a-wrong-order", body: "    t = t + 4\n    x(i) = t",
			match: false, // t updated before the write: distance would be off by one pair
		},
		{
			name: "benign-extra-write", body: "    x(i + 1) = x(i) + 2\n    y(i) = 7",
			match: true, constDist: true, wantDist: 2, wantPairLo: 0, wantPairHi: 0,
		},
		{
			name: "interfering-dist-write", body: "    x(i + 1) = x(i) + d(i)\n    d(i) = 3",
			match: false, // the loop rewrites the distance array it reads
		},
		{
			name: "two-array-writes", body: "    x(i) = x(i - 1) + 1\n    x(i + 1) = 0",
			match: false,
		},
		{
			name: "self-referencing-dist", body: "    x(i) = x(i - 1) + x(1)",
			match: false, // distance mentions the recurrence array
		},
		{
			name:   "strided-step",
			header: "do i = 1, n, 2", body: "    x(i + 1) = x(i) + 1",
			match: false, // stride breaks the value chain between pairs
		},
		{
			name:   "downward-step",
			header: "do i = n, 2, -1", body: "    x(i) = x(i - 1) + 1",
			match: false, // x(i-1) is overwritten after x(i) reads it
		},
		{
			name: "conditional-body", body: "    if (i > 3) then\n      x(i) = x(i - 1) + 1\n    end if",
			match: false, // guarded writes are the conditional matcher's job
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			header := tc.header
			if header == "" {
				header = "do i = 1, n"
			}
			w := build(t, fillProgram(header, tc.body))
			d := w.doOver("fill", "x")
			m := matchRecurrence(w.an.Interner(), d, "x")
			if (m != nil) != tc.match {
				t.Fatalf("matchRecurrence = %v, want match=%t", m, tc.match)
			}
			if m == nil {
				return
			}
			if tc.constDist {
				cst, ok := m.dist.IsConst()
				if !ok || cst != tc.wantDist {
					t.Errorf("dist = %v, want constant %d", m.dist, tc.wantDist)
				}
			}
			if cst, ok := m.pairLoOff.IsConst(); !ok || cst != tc.wantPairLo {
				t.Errorf("pairLoOff = %v, want %d", m.pairLoOff, tc.wantPairLo)
			}
			if cst, ok := m.pairHiOff.IsConst(); !ok || cst != tc.wantPairHi {
				t.Errorf("pairHiOff = %v, want %d", m.pairHiOff, tc.wantPairHi)
			}
		})
	}
}

// TestNetKillPairs covers the kill-side bookkeeping of the matcher,
// including the MAY fallback when the write/pair ranges do not compare.
func TestNetKillPairs(t *testing.T) {
	lo, hi := expr.One, expr.Var("n")

	// b2 shape: writes [lo+1:hi+1], breaking pairs [lo:hi+1]; pairs [lo:hi]
	// are regenerated, so only pair hi+1 is net-killed.
	b2 := &recurrenceMatch{
		array:     "x",
		pairLoOff: expr.Zero, pairHiOff: expr.Zero,
		writeLoOff: expr.One, writeHiOff: expr.One,
	}
	kills := b2.netKillPairs(lo, hi)
	want := section.New("x", hi.AddConst(1), hi.AddConst(1))
	if len(kills) != 1 || kills[0].String() != want.String() {
		t.Fatalf("b2 net kill = %v, want [%v]", kills, want)
	}

	// b1 shape: writes [lo:hi], breaking pairs [lo-1:hi]; pairs [lo-1:hi-1]
	// are regenerated, so only pair hi is net-killed.
	b1 := &recurrenceMatch{
		array:     "x",
		pairLoOff: expr.Const(-1), pairHiOff: expr.Const(-1),
		writeLoOff: expr.Zero, writeHiOff: expr.Zero,
	}
	kills = b1.netKillPairs(lo, hi)
	want = section.New("x", hi, hi)
	if len(kills) != 1 || kills[0].String() != want.String() {
		t.Fatalf("b1 net kill = %v, want [%v]", kills, want)
	}

	// Exact cover: pairs == written pair range — nothing net-killed.
	cover := &recurrenceMatch{
		array:     "x",
		pairLoOff: expr.Const(-1), pairHiOff: expr.Zero,
		writeLoOff: expr.Zero, writeHiOff: expr.Zero,
	}
	if kills = cover.netKillPairs(lo, hi); len(kills) != 0 {
		t.Fatalf("covering fill net kill = %v, want none", kills)
	}

	// Incomparable offsets (symbolic pair shift): the MAY fallback must
	// kill the whole written pair range rather than guess.
	may := &recurrenceMatch{
		array:     "x",
		pairLoOff: expr.Var("p"), pairHiOff: expr.Var("p"),
		writeLoOff: expr.Zero, writeHiOff: expr.Zero,
	}
	kills = may.netKillPairs(lo, hi)
	if len(kills) != 1 {
		t.Fatalf("MAY fallback = %v, want one conservative section", kills)
	}
	want = section.New("x", lo.AddConst(-1), hi)
	if kills[0].String() != want.String() {
		t.Errorf("MAY fallback section = %v, want %v", kills[0], want)
	}
}

// TestDeriveRecurrence drives the definition-site fixpoint end to end via
// AuditFill: sign derivation for constant, modular, array-valued and
// conditional increments, and the failure and ablation paths.
func TestDeriveRecurrence(t *testing.T) {
	cases := []struct {
		name string
		src  string
		arr  string
		want DeriveSign
	}{
		{
			name: "const-positive",
			src:  fillProgram("do i = 1, n", "    x(i + 1) = x(i) + 2"),
			arr:  "x", want: SignPos,
		},
		{
			name: "mod-strict",
			src:  fillProgram("do i = 1, n", "    x(i + 1) = x(i) + 1 + mod(i, 4)"),
			arr:  "x", want: SignPos,
		},
		{
			name: "mod-nonneg",
			src:  fillProgram("do i = 1, n", "    x(i + 1) = x(i) + mod(i, 4)"),
			arr:  "x", want: SignNonNeg,
		},
		{
			name: "array-dist-via-bounds-subquery",
			src: `
program fill
  param n = 10
  integer i, k
  integer x(n + 1), d(n)
  do k = 1, n
    d(k) = 1 + mod(k, 3)
  end do
  do i = 1, n
    x(i + 1) = x(i) + d(i)
  end do
end
`,
			arr: "x", want: SignPos,
		},
		{
			name: "conditional-join-strict",
			src: fillProgram("do i = 1, n",
				"    if (i > 3) then\n      x(i + 1) = x(i) + 1\n    else\n      x(i + 1) = x(i) + 2\n    end if"),
			arr: "x", want: SignPos,
		},
		{
			name: "conditional-join-downgrade",
			src: fillProgram("do i = 1, n",
				"    if (i > 3) then\n      x(i + 1) = x(i) + 1\n    else\n      x(i + 1) = x(i) - 1\n    end if"),
			arr: "x", want: SignUnknown,
		},
		{
			name: "decrement-fails",
			src:  fillProgram("do i = 1, n", "    x(i + 1) = x(i) - 1"),
			arr:  "x", want: SignUnknown,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := build(t, tc.src)
			d := w.doOver("fill", tc.arr)
			dr := w.an.AuditFill(d, tc.arr)
			if dr == nil {
				t.Fatal("AuditFill returned nil for a recurrence-shaped fill")
			}
			if dr.Sign != tc.want {
				t.Fatalf("derived sign = %v, want %v\nsteps:\n  %s",
					dr.Sign, tc.want, strings.Join(dr.Steps, "\n  "))
			}
			if dr.Monotonic() != (tc.want >= SignNonNeg) || dr.Strict() != (tc.want == SignPos) {
				t.Errorf("Monotonic/Strict inconsistent with sign %v", dr.Sign)
			}
			if len(dr.Steps) == 0 {
				t.Error("derivation must log its fixpoint steps")
			}
		})
	}
}

// TestDeriveRespectsAblation: under NoRecurrence the definition-site
// derivation must be completely disabled, including for diagnostics.
func TestDeriveRespectsAblation(t *testing.T) {
	w := build(t, fillProgram("do i = 1, n", "    x(i + 1) = x(i) + 2"))
	w.an.NoRecurrence = true
	if dr := w.an.AuditFill(w.doOver("fill", "x"), "x"); dr != nil {
		t.Fatalf("AuditFill under NoRecurrence = %v, want nil", dr)
	}
}
