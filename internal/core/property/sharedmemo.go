package property

import "sync"

// memoShards is the shard count of a SharedMemo; a power of two for the
// mask in shardFor.
const memoShards = 16

// memoShardCap bounds one shard. A full shard is dropped wholesale
// (coarse eviction): the shared memo is a performance cache over
// deterministic queries, so losing entries costs re-verification, never
// correctness.
const memoShardCap = 1 << 13

// memoShard is one lock-striped slice of the shared verdict table, padded
// to a 64-byte cache line like the obs counters so shards hammered by
// different workers never false-share.
type memoShard struct {
	mu        sync.Mutex
	entries   map[string]sharedMemoEntry
	hits      int64
	misses    int64
	evictions int64
	// 24 pad bytes round the 40 bytes above (8 mutex + 8 map header +
	// 3×8 counters) up to one 64-byte line.
	_ [24]byte
}

type sharedMemoEntry struct {
	ok   bool
	prop Property
}

// SharedMemo is a process-lifetime, concurrency-safe property-verdict
// table shared across compilations: the same sharding discipline as
// expr.SharedInterner, holding verified Property instances keyed by
// (scope, unit, HCG node ID, property identity, section key). Cached
// properties are immutable after verification (the memo contract), so a
// hit from another compilation is safe to return directly.
//
// Scoping mirrors the shared interner: entries are only reachable from
// compilations with the same scope key (same source compiled the same
// way), because properties hold expressions referencing the installing
// program's AST, and because HCG node IDs are only meaningful within one
// deterministic build. The shard mutex orders the installing write before
// any cross-goroutine read.
type SharedMemo struct {
	shards [memoShards]memoShard
	// shardCap bounds each shard (memoShardCap; tests shrink it).
	shardCap int
}

// NewSharedMemo builds an empty shared verdict table.
func NewSharedMemo() *SharedMemo {
	m := &SharedMemo{shardCap: memoShardCap}
	for i := range m.shards {
		m.shards[i].entries = make(map[string]sharedMemoEntry)
	}
	return m
}

// shardFor is FNV-1a over the key.
func (m *SharedMemo) shardFor(key string) *memoShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &m.shards[h&(memoShards-1)]
}

// get returns the shared verdict for key, if any.
func (m *SharedMemo) get(key string) (Property, bool, bool) {
	sh := m.shardFor(key)
	sh.mu.Lock()
	e, hit := sh.entries[key]
	if hit {
		sh.hits++
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return e.prop, e.ok, hit
}

// put installs a verdict for key (first writer wins; a concurrent
// identical verification installs an equivalent entry, so either order
// yields the same observable behaviour).
func (m *SharedMemo) put(key string, prop Property, ok bool) {
	sh := m.shardFor(key)
	sh.mu.Lock()
	if _, exists := sh.entries[key]; !exists {
		if len(sh.entries) >= m.shardCap {
			sh.entries = make(map[string]sharedMemoEntry)
			sh.evictions++
		}
		sh.entries[key] = sharedMemoEntry{ok: ok, prop: prop}
	}
	sh.mu.Unlock()
}

// SharedMemoStats aggregates the shard counters of a SharedMemo.
type SharedMemoStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
}

// Stats merges the per-shard counters under the shard locks (torn-free
// while queries continue; called once per compile or report).
func (m *SharedMemo) Stats() SharedMemoStats {
	var out SharedMemoStats
	if m == nil {
		return out
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		out.Hits += sh.hits
		out.Misses += sh.misses
		out.Evictions += sh.evictions
		out.Entries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return out
}
