package property

import (
	"sync"
	"testing"

	"repro/internal/expr"
)

// sharedWorld builds N independent analyses over the same source, all
// attached to one SharedMemo under one scope — the shape of a batch
// compiling duplicated inputs.
func sharedWorld(t *testing.T, n int) (*SharedMemo, []*world) {
	t.Helper()
	shared := NewSharedMemo()
	worlds := make([]*world, n)
	for i := range worlds {
		worlds[i] = build(t, gatherSrc)
		worlds[i].an.Shared = shared
		worlds[i].an.SharedScope = "gather"
	}
	return shared, worlds
}

// TestSharedMemoServesAcrossAnalyses proves one verdict through one
// analysis and checks a second, fresh analysis over the identical program
// is answered from the shared table without re-propagating.
func TestSharedMemoServesAcrossAnalyses(t *testing.T) {
	_, ws := sharedWorld(t, 2)
	mk := func() Property { return NewInjective("ind") }
	sec := sec1("ind", expr.One, expr.Var("q"))

	use0 := ws[0].assignTo("gather", "jj")
	if _, ok := ws[0].an.VerifyCached(mk, use0, sec); !ok {
		t.Fatal("first analysis: ind[1:q] should verify injective")
	}
	if ws[0].an.Stats.SharedMisses != 1 || ws[0].an.Stats.SharedHits != 0 {
		t.Fatalf("first analysis shared counters = %d hits / %d misses, want 0/1",
			ws[0].an.Stats.SharedHits, ws[0].an.Stats.SharedMisses)
	}

	use1 := ws[1].assignTo("gather", "jj")
	p, ok := ws[1].an.VerifyCached(mk, use1, sec)
	if !ok {
		t.Fatal("second analysis: shared verdict should replay as ok")
	}
	if ws[1].an.Stats.SharedHits != 1 {
		t.Fatalf("second analysis SharedHits = %d, want 1", ws[1].an.Stats.SharedHits)
	}
	if ws[1].an.Stats.Queries != 0 {
		t.Fatalf("second analysis ran %d propagations, want 0 (served from shared memo)", ws[1].an.Stats.Queries)
	}
	// Local cache counters must be charged exactly as without sharing.
	if ws[1].an.Stats.CacheMisses != 1 || ws[1].an.Stats.CacheHits != 0 {
		t.Fatalf("second analysis local cache = %d hits / %d misses, want 0/1",
			ws[1].an.Stats.CacheHits, ws[1].an.Stats.CacheMisses)
	}
	if inj, okc := p.(*Injective); !okc || inj.TargetArray() != "ind" {
		t.Fatalf("shared verdict replayed wrong property: %v", p)
	}
}

// TestSharedMemoScopeIsolation checks a different scope never observes
// another program's verdicts.
func TestSharedMemoScopeIsolation(t *testing.T) {
	shared, ws := sharedWorld(t, 2)
	ws[1].an.SharedScope = "other"
	mk := func() Property { return NewInjective("ind") }
	sec := sec1("ind", expr.One, expr.Var("q"))

	ws[0].an.VerifyCached(mk, ws[0].assignTo("gather", "jj"), sec)
	ws[1].an.VerifyCached(mk, ws[1].assignTo("gather", "jj"), sec)
	if ws[1].an.Stats.SharedHits != 0 {
		t.Fatalf("scope %q hit scope %q's verdicts", "other", "gather")
	}
	st := shared.Stats()
	if st.Entries != 2 {
		t.Fatalf("shared entries = %d, want 2 (one per scope)", st.Entries)
	}
}

// TestSharedMemoConcurrentQueryAndInvalidate runs concurrent identical
// queries through shared-backed analyses while another goroutine keeps
// invalidating its own analysis's local table: every verdict must agree,
// and invalidation must never disturb other analyses' entries. Run with
// -race.
func TestSharedMemoConcurrentQueryAndInvalidate(t *testing.T) {
	const workers = 6
	_, ws := sharedWorld(t, workers)

	var wg sync.WaitGroup
	verdicts := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			an := ws[w].an
			use := ws[w].assignTo("gather", "jj")
			// Sections memoize their key lazily, so each goroutine builds
			// its own — as each batch item does in the real pipeline.
			sec := sec1("ind", expr.One, expr.Var("q"))
			ok := true
			for r := 0; r < 50; r++ {
				_, okInj := an.VerifyCached(func() Property { return NewInjective("ind") }, use, sec)
				_, okB := an.VerifyCached(func() Property { return NewBounds("ind") }, use, sec)
				ok = ok && okInj && okB
				if w%2 == 1 {
					// Odd workers churn their local epoch: the next
					// round must re-probe the shared table, still
					// agreeing with everyone else.
					an.InvalidateCache()
				}
			}
			verdicts[w] = ok
		}(w)
	}
	wg.Wait()
	for w, ok := range verdicts {
		if !ok {
			t.Fatalf("worker %d saw a failing verdict; all queries should verify", w)
		}
	}
	// Invalidation bumped only local epochs; every analysis that
	// invalidated must have re-hit the shared table, not re-proved.
	totalQueries := 0
	for _, w := range ws {
		totalQueries += w.an.Stats.Queries
	}
	if totalQueries > 2*workers {
		t.Fatalf("total propagations = %d; shared memo should bound re-proving near 2", totalQueries)
	}
}

// TestSharedMemoEpochInvalidationIsLocal checks InvalidateCache retires
// only the invalidating analysis's entries (epoch bump), at O(1) cost,
// and that the invalidations counter semantics survive: a drop of an
// empty table is still free and uncounted.
func TestSharedMemoEpochInvalidationIsLocal(t *testing.T) {
	w := build(t, gatherSrc)
	mk := func() Property { return NewInjective("ind") }
	sec := sec1("ind", expr.One, expr.Var("q"))
	use := w.assignTo("gather", "jj")

	w.an.InvalidateCache() // empty: free, uncounted
	if w.an.Stats.CacheInvalidations != 0 {
		t.Fatalf("empty invalidation was counted")
	}
	w.an.VerifyCached(mk, use, sec)
	w.an.InvalidateCache()
	w.an.InvalidateCache() // second drop is free again
	if w.an.Stats.CacheInvalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", w.an.Stats.CacheInvalidations)
	}
	if w.an.epoch != 1 {
		t.Fatalf("epoch = %d, want 1", w.an.epoch)
	}
	// The retired verdict must not replay: the next lookup re-verifies.
	w.an.VerifyCached(mk, use, sec)
	if w.an.Stats.CacheHits != 0 {
		t.Fatalf("stale epoch entry replayed after invalidation")
	}
	if w.an.Stats.CacheMisses != 2 {
		t.Fatalf("cache misses = %d, want 2", w.an.Stats.CacheMisses)
	}
}

// TestSharedMemoEviction shrinks the shard cap and checks the table stays
// bounded while verdicts remain correct after eviction.
func TestSharedMemoEviction(t *testing.T) {
	shared := NewSharedMemo()
	shared.shardCap = 8
	w := build(t, gatherSrc)
	w.an.Shared = shared
	w.an.SharedScope = "gather"
	use := w.assignTo("gather", "jj")
	for i := int64(1); i <= int64(memoShards*shared.shardCap+64); i++ {
		sec := sec1("ind", expr.Const(i), expr.Var("q"))
		w.an.VerifyCached(func() Property { return NewBounds("ind") }, use, sec)
	}
	st := shared.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no shared-memo evictions under a cap of %d", shared.shardCap)
	}
	if st.Entries > int64(memoShards*shared.shardCap) {
		t.Fatalf("entries %d exceed the aggregate cap", st.Entries)
	}
	// Post-eviction, a fresh analysis still replays a resident verdict.
	w2 := build(t, gatherSrc)
	w2.an.Shared = shared
	w2.an.SharedScope = "gather"
	use2 := w2.assignTo("gather", "jj")
	sec := sec1("ind", expr.One, expr.Var("q"))
	if _, ok := w2.an.VerifyCached(func() Property { return NewInjective("ind") }, use2, sec); !ok {
		t.Fatal("verification failed after evictions")
	}
}
