package property

import (
	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
)

// summarizeSimpleNode computes the (Kill, Gen) effect of one simple
// statement on the property (the SummarizeSimpleNode of §3.2.4, delegated
// to the PropertyChecker for assignments).
func (s *session) summarizeSimpleNode(n *cfg.HNode) (kill, gen *section.Set) {
	switch st := n.Stmt.(type) {
	case *lang.AssignStmt:
		return s.prop.SummarizeAssign(s.ctxFor(n), st)
	default:
		// print/goto/continue/return/stop have no data effect.
		return section.NewSet(), section.NewSet()
	}
}

// envRange returns the value range of a DO loop's index, handling negative
// constant steps. ok is false for unknown steps (the range is then
// unusable for MUST reasoning).
func envRange(in *expr.Interner, d *lang.DoStmt) (lo, hi *expr.Expr, dense, ok bool) {
	loE, hiE := in.FromAST(d.Lo), in.FromAST(d.Hi)
	if d.Step == nil {
		return loE, hiE, true, true
	}
	c, isConst := in.FromAST(d.Step).IsConst()
	switch {
	case isConst && c == 1:
		return loE, hiE, true, true
	case isConst && c == -1:
		return hiE, loE, true, true
	case isConst && c > 1:
		return loE, hiE, false, true
	case isConst && c < -1:
		return hiE, loE, false, true
	default:
		return nil, nil, false, false
	}
}

// summarizeLoop computes the (Kill, Gen) of executing a whole DO loop
// (§3.2.5 case 1). The property checker gets the first shot — this is
// where index-gathering loops (§4) and recurrence idioms (§3.2.8) are
// recognised — and the generic path aggregates the loop-body summary over
// the index range with the Gross–Steenkiste-style aggregation.
func (s *session) summarizeLoop(n *cfg.HNode) (kill, gen *section.Set) {
	s.a.Stats.LoopSummaries++
	if k, g, ok := s.prop.SummarizeLoop(s.ctxFor(n), n); ok {
		return k, g
	}
	d := n.Stmt.(*lang.DoStmt)
	bodyKill, bodyGen := s.summarizeGraph(n.Body)

	lo, hi, dense, okRange := envRange(s.a.Interner(), d)
	v := d.Var.Name
	a := s.a.Assume

	// Sections whose bounds depend on scalars the body itself modifies
	// (other than the loop variable) cannot be aggregated: their meaning
	// changes across iterations.
	bodyMod := s.a.Mod.StmtsMod(n.Graph.Unit, d.Body)

	kill = section.NewSet()
	for _, sec := range bodyKill.Sections() {
		bad := false
		for _, sv := range setVars(section.NewSet(sec)) {
			if sv != v && bodyMod.Scalars[sv] {
				bad = true
				break
			}
		}
		if bad || !okRange {
			kill.AddMay(section.Universal(sec.Array, len(sec.Dims)), a)
			continue
		}
		kill.AddMay(sec.AggregateMay(v, lo, hi, a), a)
	}

	gen = section.NewSet()
	// MUST-gen requires a dense index range. A zero-trip loop is handled
	// by the symbolic section itself: the aggregate of an affine section
	// over [lo:hi] has provably empty bounds exactly when lo > hi, so an
	// empty loop generates an empty section.
	if okRange && dense && lo != nil && hi != nil && !n.Body.Cyclic {
		for _, sec := range bodyGen.Sections() {
			bad := false
			for _, sv := range setVars(section.NewSet(sec)) {
				if sv != v && bodyMod.Scalars[sv] {
					bad = true
					break
				}
			}
			if bad {
				continue
			}
			if agg := sec.AggregateMust(v, lo, hi, a); agg != nil {
				gen.AddMust(agg, a)
			}
		}
		// Gen must survive the kills of other iterations.
		gen = gen.SubtractMust(kill, a)
	}
	return kill, gen
}

// summarizeWhile conservatively summarizes a DO WHILE loop: its trip count
// is unknown, so nothing is certainly generated, and everything the body
// may write to the queried arrays is killed.
func (s *session) summarizeWhile(n *cfg.HNode) (kill, gen *section.Set) {
	w := n.Stmt.(*lang.WhileStmt)
	bodyKill, bodyGen := s.summarizeGraph(n.Body)
	kill = section.NewSet()
	for _, sec := range bodyKill.Sections() {
		kill.AddMay(section.Universal(sec.Array, len(sec.Dims)), s.a.Assume)
	}
	// Anything the body might generate is also unreliable (zero-trip).
	for _, sec := range bodyGen.Sections() {
		kill.AddMay(section.Universal(sec.Array, len(sec.Dims)), s.a.Assume)
	}
	_ = w
	return kill, section.NewSet()
}

// summarizeGraph computes the (Kill, Gen) of executing one section graph
// from entry to exit, following SummarizeProgSection (Fig. 9): a backward
// sweep in reverse topological order maintaining, per node, the MUST-Gen of
// the paths from that node's completion to the exit; kills not regenerated
// later accumulate into Kill. Cyclic sections (goto loops, escaped loops)
// are summarized conservatively.
func (s *session) summarizeGraph(g *cfg.HGraph) (kill, gen *section.Set) {
	a := s.a.Assume
	kill = section.NewSet()
	if g.Cyclic {
		mod := s.a.Mod.StmtsMod(g.Unit, stmtsOf(g))
		for _, arr := range mod.SortedArrays() {
			nd := 1
			if sym := s.a.Info.LookupIn(g.Unit, arr); sym != nil {
				nd = len(sym.Dims)
			}
			kill.AddMay(section.Universal(arr, nd), a)
		}
		return kill, section.NewSet()
	}

	// after[n] = MUST-gen of all paths from (just after) n to the exit.
	after := map[*cfg.HNode]*section.Set{}
	for _, n := range g.RTop() { // exit first
		if n == g.Exit {
			after[n] = section.NewSet()
			continue
		}
		// Combine successors: an element is certainly generated after n
		// iff it is on every outgoing path.
		var combined *section.Set
		for _, succ := range n.Succs {
			contrib := after[succ].Clone()
			nk, ng := s.nodeEffect(succ)
			// Executing succ first: its own gen counts, minus later
			// kills which are already excluded from after[succ]; its
			// kill removes from after[succ]? No: after[succ] is what
			// paths *after succ* generate; succ's kill applies to gens
			// before it, handled at accumulation below.
			contrib.UnionMust(ng, a)
			_ = nk
			if combined == nil {
				combined = contrib
			} else {
				combined = combined.IntersectMust(contrib, a)
			}
		}
		if combined == nil {
			combined = section.NewSet()
		}
		after[n] = combined
	}

	// Accumulate kills: a kill at node n matters unless the killed
	// elements are certainly regenerated after n.
	for _, n := range g.RTop() {
		if n == g.Exit || n == g.Entry {
			continue
		}
		nk, _ := s.nodeEffect(n)
		net := nk.SubtractMay(after[n], a)
		for _, sec := range net.Sections() {
			kill.AddMay(sec, a)
		}
	}

	gen = after[g.Entry]
	if gen == nil {
		gen = section.NewSet()
	}
	return kill, gen
}

// nodeEffect returns the (Kill, Gen) of one HCG node, recursing into loops
// and calls (SummarizeSimpleNode / SummarizeLoop / SummarizeProcedure of
// Fig. 9 lines 12–19). Results are memoized per session: property state
// updates (derived values, bound hulls) are idempotent, so recomputation
// would only waste time.
func (s *session) nodeEffect(n *cfg.HNode) (kill, gen *section.Set) {
	if e, ok := s.effects[n]; ok {
		return e[0], e[1]
	}
	kill, gen = s.nodeEffectUncached(n)
	s.effects[n] = [2]*section.Set{kill, gen}
	return kill, gen
}

func (s *session) nodeEffectUncached(n *cfg.HNode) (kill, gen *section.Set) {
	switch n.Kind {
	case cfg.HEntry, cfg.HExit, cfg.HIf:
		return section.NewSet(), section.NewSet()
	case cfg.HStmt:
		return s.summarizeSimpleNode(n)
	case cfg.HDo:
		return s.summarizeLoop(n)
	case cfg.HWhile:
		return s.summarizeWhile(n)
	case cfg.HCall:
		callee := s.a.HP.UnitGraph(n.Stmt.(*lang.CallStmt).Name)
		if callee == nil {
			return section.NewSet(), section.NewSet()
		}
		return s.summarizeGraph(callee)
	}
	return section.NewSet(), section.NewSet()
}

// queryPropLoopHeaderInside is QueryProp_doheader (Fig. 10): the query
// originated inside iteration i of the loop and reaches the loop header.
// Earlier iterations may kill or generate the queried elements; the
// remainder is aggregated over the whole index range before continuing to
// the loop's predecessors.
func (s *session) queryPropLoopHeaderInside(n *cfg.HNode, set *section.Set) (bool, *section.Set) {
	a := s.a.Assume
	if n.Kind == cfg.HWhile {
		// Earlier iterations of a WHILE loop: conservatively reject if
		// the body touches the queried arrays at all; otherwise pass
		// the query through unchanged (nothing in the body concerns it).
		bodyKill, bodyGen := s.summarizeGraph(n.Body)
		if set.IntersectsWith(bodyKill, a) || set.IntersectsWith(bodyGen, a) {
			return true, nil
		}
		mod := s.a.Mod.StmtsMod(n.Graph.Unit, n.Stmt.(*lang.WhileStmt).Body)
		for _, v := range setVars(set) {
			if mod.Scalars[v] {
				return true, nil
			}
		}
		return false, set
	}

	d := n.Stmt.(*lang.DoStmt)
	v := d.Var.Name
	lo, hi, _, okRange := envRange(s.a.Interner(), d)
	bodyKill, _ := s.summarizeGraph(n.Body)
	bodyMod := s.a.Mod.StmtsMod(n.Graph.Unit, d.Body)

	// Kill check against all other iterations (a superset of the paper's
	// "iterations before i", which is sound).
	killAgg := section.NewSet()
	for _, sec := range bodyKill.Sections() {
		if !okRange {
			killAgg.AddMay(section.Universal(sec.Array, len(sec.Dims)), a)
			continue
		}
		killAgg.AddMay(sec.AggregateMay(v, lo, hi, a), a)
	}
	if set.IntersectsWith(killAgg, a) {
		return true, nil
	}

	// The query section may mention the loop variable and body-modified
	// scalars; aggregate it over the whole range (MAY: over-approximate).
	remain := section.NewSet()
	for _, sec := range set.Sections() {
		// Scalars other than the loop variable that the body modifies
		// make the section meaningless outside the loop.
		for _, sv := range setVars(section.NewSet(sec)) {
			if sv != v && bodyMod.Scalars[sv] {
				return true, nil
			}
		}
		if !okRange {
			if sec.Dims[0].Lo != nil || sec.Dims[0].Hi != nil {
				// Only aggregate with a known range; otherwise widen.
				remain.AddMay(section.Universal(sec.Array, len(sec.Dims)), a)
				continue
			}
		}
		remain.AddMay(sec.AggregateMay(v, lo, hi, a), a)
	}
	return false, remain
}

// stmtsOf collects the top-level statements of a section graph.
func stmtsOf(g *cfg.HGraph) []lang.Stmt {
	var out []lang.Stmt
	seen := map[lang.Stmt]bool{}
	for _, n := range g.Nodes {
		if n.Stmt != nil && !seen[n.Stmt] {
			seen[n.Stmt] = true
			out = append(out, n.Stmt)
		}
	}
	return out
}
