// Package singleindex implements the irregular single-indexed array access
// analysis of Lin & Padua (PLDI 2000), §2: discovery of arrays subscripted
// by a single scalar index variable throughout a loop, classification of
// the index evolution, the consecutively-written test (§2.2) and the array
// stack test (§2.3, Table 1). All tests are built from bounded depth-first
// searches (package bdfs) over the flat CFG.
package singleindex

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/core/bdfs"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/sem"
)

// Class is the classification of a statement with respect to one
// (array, index) pair, following the statement classes of Table 1.
type Class int

// Statement classes.
const (
	ClassNone  Class = iota
	ClassInc         // p = p + 1
	ClassDec         // p = p - 1
	ClassReset       // p = Cbottom (region-invariant value)
	ClassWrite       // x(p) = ...
	ClassRead        // ... = x(p) (p used to read the array)
	ClassOther       // any other definition of p (disqualifying)
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassInc:
		return "inc"
	case ClassDec:
		return "dec"
	case ClassReset:
		return "reset"
	case ClassWrite:
		return "write"
	case ClassRead:
		return "read"
	case ClassOther:
		return "other"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Evolution classifies how the index variable changes across the loop
// (paper §2: monotonic vs. non-monotonic).
type Evolution int

// Evolution kinds.
const (
	EvolUnknown      Evolution = iota
	EvolMonotonicInc           // only p = p + 1 definitions
	EvolMonotonicDec           // only p = p - 1 definitions
	EvolNonMonotonic           // a mix of inc/dec/reset definitions
)

func (e Evolution) String() string {
	switch e {
	case EvolMonotonicInc:
		return "monotonic-increasing"
	case EvolMonotonicDec:
		return "monotonic-decreasing"
	case EvolNonMonotonic:
		return "non-monotonic"
	}
	return "unknown"
}

// Access describes one single-indexed array access pattern inside a loop:
// array x subscripted everywhere by the same scalar p.
type Access struct {
	Array string
	Index string
	Loop  *cfg.Loop
	Graph *cfg.Graph

	// Writes and Reads are the loop nodes referencing x(p) on the left-
	// and right-hand side respectively (a node can appear in both).
	Writes []*cfg.Node
	Reads  []*cfg.Node
	// IndexDefs are the loop nodes that define the index variable,
	// excluding the analyzed loop's own header.
	IndexDefs []*cfg.Node

	// Check, when non-nil, is invoked at every node the classification
	// bDFS runs visit — the cooperative cancellation checkpoint. Callers
	// that compile under a context set it (from comperr.Guard.CheckFn)
	// between Find and the Check* tests; it never changes a verdict.
	Check func()

	classes map[*cfg.Node]classInfo
}

type classInfo struct {
	inc, dec, reset, write, read, other bool
	resetVal                            lang.Expr
}

// Find discovers all single-indexed accesses in the given natural loop: for
// each array whose every reference inside the loop is subscripted by one
// and the same scalar variable. Results are sorted by array name.
func Find(g *cfg.Graph, loop *cfg.Loop, info *sem.Info, mi *dataflow.ModInfo) []*Access {
	sc := info.Scope(g.Unit)
	type cand struct {
		index  string
		ok     bool
		reads  []*cfg.Node
		writes []*cfg.Node
	}
	cands := map[string]*cand{}

	note := func(array string, args []lang.Expr, node *cfg.Node, store bool) {
		c := cands[array]
		if c == nil {
			c = &cand{ok: true}
			cands[array] = c
		}
		if !c.ok {
			return
		}
		id, isIdent := singleIdentSubscript(args)
		if !isIdent {
			c.ok = false
			return
		}
		if c.index == "" {
			c.index = id
		} else if c.index != id {
			c.ok = false
			return
		}
		if store {
			c.writes = append(c.writes, node)
		} else {
			c.reads = append(c.reads, node)
		}
	}

	for _, n := range loop.Body() {
		f := dataflow.NodeFacts(n)
		for _, r := range f.ArrayReads {
			note(r.Array, r.Args, n, false)
		}
		for _, w := range f.ArrayWrites {
			note(w.Array, w.Args, n, true)
		}
	}

	var out []*Access
	for array, c := range cands {
		if !c.ok || c.index == "" {
			continue
		}
		sym := sc.Lookup(c.index)
		if sym == nil || sym.Kind != sem.ScalarSym || sym.Type != lang.TInteger {
			continue
		}
		asym := sc.Lookup(array)
		if asym == nil || asym.Kind != sem.ArraySym || len(asym.Dims) != 1 {
			continue
		}
		a := &Access{
			Array: array, Index: c.index, Loop: loop, Graph: g,
			Writes: c.writes, Reads: c.reads,
		}
		a.findIndexDefs(info, mi)
		a.classify(info, mi)
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Array < out[j].Array })
	return out
}

// singleIdentSubscript reports whether args is exactly one bare identifier.
func singleIdentSubscript(args []lang.Expr) (string, bool) {
	if len(args) != 1 {
		return "", false
	}
	id, ok := args[0].(*lang.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// findIndexDefs collects the loop nodes defining the index variable.
func (a *Access) findIndexDefs(info *sem.Info, mi *dataflow.ModInfo) {
	for _, n := range a.Loop.Body() {
		f := dataflow.NodeFacts(n)
		defs := false
		for _, w := range f.ScalarWrites {
			if w == a.Index {
				defs = true
			}
		}
		for _, callee := range f.Calls {
			if cu := info.Program.Unit(callee); cu != nil && mi != nil {
				if mi.GlobalsModifiedBy(cu).Scalars[a.Index] {
					defs = true
				}
			}
		}
		if defs {
			a.IndexDefs = append(a.IndexDefs, n)
		}
	}
}

// classify computes the Table 1 class information of every loop node with
// respect to (Array, Index).
func (a *Access) classify(info *sem.Info, mi *dataflow.ModInfo) {
	a.classes = map[*cfg.Node]classInfo{}
	p := a.Index
	mod := regionMod(a, info, mi)

	for _, n := range a.Loop.Body() {
		var ci classInfo
		// Reads of x(p) anywhere in the node's expressions.
		f := dataflow.NodeFacts(n)
		for _, r := range f.ArrayReads {
			if r.Array == a.Array {
				ci.read = true
			}
		}
		for _, w := range f.ArrayWrites {
			if w.Array == a.Array {
				ci.write = true
			}
		}
		// Definitions of p.
		if as, ok := nodeAssign(n); ok {
			if id, ok := as.Lhs.(*lang.Ident); ok && id.Name == p {
				rhs := expr.FromAST(as.Rhs)
				pPlus1 := expr.Var(p).AddConst(1)
				pMinus1 := expr.Var(p).AddConst(-1)
				switch {
				case rhs.Equal(pPlus1):
					ci.inc = true
				case rhs.Equal(pMinus1):
					ci.dec = true
				case !rhs.MentionsVar(p) && dataflow.InvariantIn(as.Rhs, loopVarOf(a.Loop), mod):
					ci.reset = true
					ci.resetVal = as.Rhs
				default:
					ci.other = true
				}
			}
		} else {
			// Non-assignment definitions of p (loop headers with p as
			// index, calls modifying p) are "other".
			for _, w := range f.ScalarWrites {
				if w == p {
					ci.other = true
				}
			}
			for _, callee := range f.Calls {
				if cu := info.Program.Unit(callee); cu != nil && mi != nil {
					if mi.GlobalsModifiedBy(cu).Scalars[p] {
						ci.other = true
					}
					// Calls that may touch the array itself also
					// disqualify the pattern.
					if mi.GlobalsModifiedBy(cu).Arrays[a.Array] {
						ci.other = true
					}
				}
			}
		}
		if ci != (classInfo{}) {
			a.classes[n] = ci
		}
	}
}

func regionMod(a *Access, info *sem.Info, mi *dataflow.ModInfo) *dataflow.ModSet {
	mod := dataflow.NewModSet()
	for _, n := range a.Loop.Body() {
		f := dataflow.NodeFacts(n)
		for _, w := range f.ScalarWrites {
			mod.Scalars[w] = true
		}
		for _, w := range f.ArrayWrites {
			mod.Arrays[w.Array] = true
		}
		for _, callee := range f.Calls {
			if cu := info.Program.Unit(callee); cu != nil && mi != nil {
				cm := mi.GlobalsModifiedBy(cu)
				for _, s := range cm.SortedScalars() {
					mod.Scalars[s] = true
				}
				for _, arr := range cm.SortedArrays() {
					mod.Arrays[arr] = true
				}
			}
		}
	}
	return mod
}

func loopVarOf(l *cfg.Loop) string {
	if ds, ok := l.Stmt.(*lang.DoStmt); ok {
		return ds.Var.Name
	}
	return ""
}

func nodeAssign(n *cfg.Node) (*lang.AssignStmt, bool) {
	if n.Kind != cfg.NStmt {
		return nil, false
	}
	as, ok := n.Stmt.(*lang.AssignStmt)
	return as, ok
}

// Class returns the classification of node n. A node may belong to several
// classes (e.g. x(p) = x(p) + 1 both reads and writes); callers use the
// boolean accessors below.
func (a *Access) nodeClass(n *cfg.Node) classInfo { return a.classes[n] }

// ClassifyEvolution determines how the index evolves across the loop.
func (a *Access) ClassifyEvolution() Evolution {
	var inc, dec, reset, other bool
	for _, n := range a.IndexDefs {
		ci := a.classes[n]
		inc = inc || ci.inc
		dec = dec || ci.dec
		reset = reset || ci.reset
		other = other || ci.other
	}
	switch {
	case other:
		return EvolUnknown
	case inc && !dec && !reset:
		return EvolMonotonicInc
	case dec && !inc && !reset:
		return EvolMonotonicDec
	case inc || dec || reset:
		return EvolNonMonotonic
	default:
		return EvolUnknown // p never changes: not irregular at all
	}
}

// ---------------------------------------------------------------------------
// Region-restricted successor functions

// exitSentinel is a fresh node standing for "control left the region".
func exitSentinel() *cfg.Node { return &cfg.Node{ID: -1, Kind: cfg.NExit} }

// loopSuccs returns an adjacency function restricted to the loop's nodes,
// following the back edge through the header (whole-loop paths, used by the
// consecutively-written test). Edges leaving the loop go to the sentinel.
func loopSuccs(l *cfg.Loop, sentinel *cfg.Node) func(*cfg.Node) []*cfg.Node {
	return func(n *cfg.Node) []*cfg.Node {
		if n == sentinel {
			return nil
		}
		var out []*cfg.Node
		exited := false
		for _, s := range n.Succs {
			if l.Contains(s) {
				out = append(out, s)
			} else {
				exited = true
			}
		}
		if exited {
			out = append(out, sentinel)
		}
		return out
	}
}

// iterationSuccs is like loopSuccs but stops at the loop header: paths stay
// within a single iteration of the loop (used by the stack test, whose
// region is the loop body).
func iterationSuccs(l *cfg.Loop, sentinel *cfg.Node) func(*cfg.Node) []*cfg.Node {
	return func(n *cfg.Node) []*cfg.Node {
		if n == sentinel {
			return nil
		}
		var out []*cfg.Node
		exited := false
		for _, s := range n.Succs {
			switch {
			case s == l.Head:
				exited = true // end of the iteration
			case l.Contains(s):
				out = append(out, s)
			default:
				exited = true
			}
		}
		if exited {
			out = append(out, sentinel)
		}
		return out
	}
}

// ---------------------------------------------------------------------------
// Consecutively written (§2.2)

// CWResult reports a successful consecutively-written test.
type CWResult struct {
	Access *Access
	// Increasing is true for the 1-2-3 order (p = p + 1); false for the
	// decreasing order (p = p - 1).
	Increasing bool
	// ReadsCovered is true when every read of x(p) in the loop is
	// provably preceded, on all paths within the same visit, by a write
	// of x(p) (no upward-exposed single-indexed reads).
	ReadsCovered bool
}

// CheckConsecutivelyWritten runs the §2.2 test: the index must be defined
// only as p = p + 1 (or only p = p - 1) inside the loop, and from every
// increment every path must write x(p) before reaching another increment —
// otherwise there may be holes in the written section. Paths that leave
// the loop without writing also fail, which makes the final written
// section [p0+1 : pfinal] exact rather than an over-approximation.
func CheckConsecutivelyWritten(a *Access) *CWResult {
	evol := a.ClassifyEvolution()
	if evol != EvolMonotonicInc && evol != EvolMonotonicDec {
		return nil
	}
	if len(a.Writes) == 0 {
		return nil
	}
	inc := evol == EvolMonotonicInc

	sentinel := exitSentinel()
	succs := loopSuccs(a.Loop, sentinel)
	isStep := func(n *cfg.Node) bool {
		ci := a.classes[n]
		if inc {
			return ci.inc
		}
		return ci.dec
	}
	writesArr := func(n *cfg.Node) bool { return a.classes[n].write }

	for _, def := range a.IndexDefs {
		if !isStep(def) {
			continue
		}
		res := bdfs.RunFromSuccessors(def, bdfs.Config{
			Succs:  succs,
			FBound: writesArr,
			FFailed: func(n *cfg.Node) bool {
				return n == sentinel || isStep(n)
			},
			Check: a.Check,
		})
		if res == bdfs.Failed {
			return nil
		}
	}
	return &CWResult{
		Access:       a,
		Increasing:   inc,
		ReadsCovered: a.readsCovered(),
	}
}

// readsCovered checks, with backward bounded searches, that every read of
// x(p) is preceded by a write of x(p) on all paths since the last change of
// p (within the loop region). It mirrors the forward bDFS but walks
// predecessor edges.
func (a *Access) readsCovered() bool {
	if len(a.Reads) == 0 {
		return true
	}
	inLoop := func(n *cfg.Node) bool { return a.Loop.Contains(n) }
	sentinel := exitSentinel()
	preds := func(n *cfg.Node) []*cfg.Node {
		if n == sentinel {
			return nil
		}
		var out []*cfg.Node
		left := false
		for _, p := range n.Preds {
			if inLoop(p) {
				out = append(out, p)
			} else {
				left = true
			}
		}
		if left {
			out = append(out, sentinel)
		}
		return out
	}
	for _, rd := range a.Reads {
		// A node that both reads and writes (x(p) = x(p) + 1) evaluates
		// the read before the write, so the write does not cover it.
		res := bdfs.RunFromSuccessors(rd, bdfs.Config{
			Succs:  preds,
			FBound: func(n *cfg.Node) bool { return a.classes[n].write },
			FFailed: func(n *cfg.Node) bool {
				if n == sentinel {
					return true
				}
				ci := a.classes[n]
				return ci.inc || ci.dec || ci.reset || ci.other
			},
			Check: a.Check,
		})
		if res == bdfs.Failed {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Stack access (§2.3, Table 1)

// StackResult reports a successful array-stack test.
type StackResult struct {
	Access *Access
	// Bottom is the region-invariant expression the index is reset to at
	// the start of each iteration (Cbottom).
	Bottom lang.Expr
	// ResetFirst is true when, on every path from the start of an
	// iteration, the reset precedes every other stack operation — the
	// condition that makes the stack privatizable for the enclosing loop.
	ResetFirst bool
}

// stackRules is Table 1 of the paper: for each originating statement class,
// the classes that bound the search and the classes that fail it.
type stackRule struct {
	bound  func(classInfo) bool
	failed func(classInfo) bool
}

var stackRules = map[Class]stackRule{
	ClassInc: { // after a push: must write the new top next
		bound:  func(c classInfo) bool { return c.write || c.reset },
		failed: func(c classInfo) bool { return c.inc || c.dec || c.read },
	},
	ClassDec: { // after a pop: next stack event is a push, a read, or a reset
		bound:  func(c classInfo) bool { return c.inc || c.read || c.reset },
		failed: func(c classInfo) bool { return c.dec || c.write },
	},
	ClassWrite: { // after writing the top: push further, read it back, or reset
		bound:  func(c classInfo) bool { return c.inc || c.read || c.reset },
		failed: func(c classInfo) bool { return c.dec || c.write },
	},
	ClassRead: { // after reading the top: it must be popped (or reset)
		bound:  func(c classInfo) bool { return c.dec || c.reset },
		failed: func(c classInfo) bool { return c.inc || c.write || c.read },
	},
}

// CheckStack runs the §2.3 test on the loop body region: the index may only
// be defined by p=p+1, p=p-1 and p=Cbottom with a single region-invariant
// Cbottom, and every path originating at a stack operation must reach a
// bounding operation before a failing one, per Table 1.
func CheckStack(a *Access) *StackResult {
	// Index definitions restricted to the three allowed forms.
	var bottom lang.Expr
	for _, def := range a.IndexDefs {
		ci := a.classes[def]
		switch {
		case ci.inc || ci.dec:
		case ci.reset:
			if bottom == nil {
				bottom = ci.resetVal
			} else if !expr.FromAST(bottom).Equal(expr.FromAST(ci.resetVal)) {
				return nil // two different bottoms
			}
		default:
			return nil
		}
	}
	if bottom == nil {
		return nil // never reset: cannot establish the bottom
	}

	sentinel := exitSentinel()
	succs := iterationSuccs(a.Loop, sentinel)
	classOf := func(n *cfg.Node) classInfo {
		if n == sentinel {
			return classInfo{}
		}
		return a.classes[n]
	}

	// A node combining classes (e.g. both read and write of x(p), or a
	// statement like p = p + 1 that also reads x(p)) breaks the clean
	// event ordering; reject.
	for _, n := range a.Loop.Body() {
		ci := a.classes[n]
		k := 0
		for _, b := range []bool{ci.inc, ci.dec, ci.reset, ci.write, ci.read} {
			if b {
				k++
			}
		}
		if k > 1 {
			return nil
		}
	}

	for _, origin := range a.Loop.Body() {
		oc := a.classes[origin]
		var rule stackRule
		switch {
		case oc.inc:
			rule = stackRules[ClassInc]
		case oc.dec:
			rule = stackRules[ClassDec]
		case oc.write:
			rule = stackRules[ClassWrite]
		case oc.read:
			rule = stackRules[ClassRead]
		default:
			continue
		}
		res := bdfs.RunFromSuccessors(origin, bdfs.Config{
			Succs:   succs,
			FBound:  func(n *cfg.Node) bool { return rule.bound(classOf(n)) },
			FFailed: func(n *cfg.Node) bool { return n != sentinel && rule.failed(classOf(n)) },
			Check:   a.Check,
		})
		if res == bdfs.Failed {
			return nil
		}
	}

	return &StackResult{
		Access:     a,
		Bottom:     bottom,
		ResetFirst: a.resetFirst(sentinel),
	}
}

// resetFirst checks that on every path from the start of an iteration the
// reset precedes any other operation on the index or the array.
func (a *Access) resetFirst(sentinel *cfg.Node) bool {
	succs := iterationSuccs(a.Loop, sentinel)
	res := bdfs.RunFromSuccessors(a.Loop.Head, bdfs.Config{
		Succs:  succs,
		FBound: func(n *cfg.Node) bool { return a.classes[n].reset },
		FFailed: func(n *cfg.Node) bool {
			if n == sentinel {
				return false // iteration may end without touching the stack
			}
			ci := a.classes[n]
			return ci.inc || ci.dec || ci.write || ci.read || ci.other
		},
		Check: a.Check,
	})
	return res == bdfs.Succeeded
}
