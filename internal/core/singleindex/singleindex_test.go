package singleindex

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

// harness compiles a source and returns the analysis context for the
// requested loop. which selects the n-th natural loop in node-ID order.
type harness struct {
	info *sem.Info
	mi   *dataflow.ModInfo
	g    *cfg.Graph
	loop *cfg.Loop
}

func newHarness(t *testing.T, src string, which int) *harness {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	mi := dataflow.ComputeMod(info)
	g := cfg.Build(prog.Main)
	loops := g.NaturalLoops()
	if which >= len(loops) {
		t.Fatalf("loop %d not found (%d loops)", which, len(loops))
	}
	return &harness{info: info, mi: mi, g: g, loop: loops[which]}
}

func (h *harness) find() []*Access {
	return Find(h.g, h.loop, h.info, h.mi)
}

func (h *harness) access(t *testing.T, array string) *Access {
	t.Helper()
	for _, a := range h.find() {
		if a.Array == array {
			return a
		}
	}
	t.Fatalf("array %q not single-indexed in loop; found %v", array, h.find())
	return nil
}

// figure1a is the motivating example of the paper: x() is single-indexed by
// p inside the while loop and consecutively written.
const figure1a = `
program fig1a
  param nmax = 100
  integer n, k, i, j, p
  integer link(nmax, nmax)
  integer cond(nmax, nmax)
  real x(nmax), y(nmax), z(nmax, nmax)
  do k = 1, n
    p = 0
    i = link(1, k)
    do while (i != 0)
      p = p + 1
      x(p) = y(i)
      i = link(i, k)
      if (cond(k, i) != 0) then
        if (p >= 1) then
          x(p) = y(i)
        end if
      end if
    end do
    do j = 1, p
      z(k, j) = x(j)
    end do
  end do
end
`

func TestFigure1aConsecutivelyWritten(t *testing.T) {
	// Loop 1 in node-ID order is the while loop (0 is do k).
	h := newHarness(t, figure1a, 1)
	if _, ok := h.loop.Stmt.(*lang.WhileStmt); !ok {
		t.Fatalf("expected the while loop, got %v", h.loop.Stmt)
	}
	acc := h.access(t, "x")
	if acc.Index != "p" {
		t.Fatalf("index = %q, want p", acc.Index)
	}
	if got := acc.ClassifyEvolution(); got != EvolMonotonicInc {
		t.Fatalf("evolution = %v", got)
	}
	cw := CheckConsecutivelyWritten(acc)
	if cw == nil {
		t.Fatal("x should be consecutively written in the while loop")
	}
	if !cw.Increasing {
		t.Error("should be increasing order")
	}
	if !cw.ReadsCovered {
		t.Error("x is never read in the while loop, so reads are trivially covered")
	}
}

func TestCWFailsWithConditionalWrite(t *testing.T) {
	// The write is conditional: a path from one p=p+1 to the next without
	// writing x exists, so x has holes.
	src := `
program holes
  integer n, i, p
  real x(100), y(100)
  p = 0
  do i = 1, n
    p = p + 1
    if (y(i) > 0.0) then
      x(p) = y(i)
    end if
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "x")
	if cw := CheckConsecutivelyWritten(acc); cw != nil {
		t.Error("conditional write must not be consecutively written")
	}
}

func TestCWFailsWhenIndexJumps(t *testing.T) {
	src := `
program jumps
  integer n, i, p
  real x(100), y(100)
  p = 0
  do i = 1, n
    p = p + 2
    x(p) = y(i)
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "x")
	if acc.ClassifyEvolution() != EvolUnknown {
		t.Errorf("p = p + 2 should be an unknown evolution, got %v", acc.ClassifyEvolution())
	}
	if cw := CheckConsecutivelyWritten(acc); cw != nil {
		t.Error("stride-2 index must not be consecutively written")
	}
}

func TestCWDecreasing(t *testing.T) {
	src := `
program dec
  integer n, i, p
  real x(100), y(100)
  p = n + 1
  do i = 1, n
    p = p - 1
    x(p) = y(i)
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "x")
	cw := CheckConsecutivelyWritten(acc)
	if cw == nil {
		t.Fatal("decreasing fill should be consecutively written")
	}
	if cw.Increasing {
		t.Error("order should be decreasing")
	}
}

func TestCWFailsOnTailHole(t *testing.T) {
	// The loop can exit right after the increment, before the write:
	// the final element may be missing, so the strict test fails.
	src := `
program tail
  integer n, i, p
  real x(100), y(100)
  p = 0
  do i = 1, n
    p = p + 1
    if (i == n) goto 10
    x(p) = y(i)
10  continue
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "x")
	if cw := CheckConsecutivelyWritten(acc); cw != nil {
		t.Error("path increment→exit without write must fail the strict test")
	}
}

func TestCWReadsCoveredDetection(t *testing.T) {
	// x(p) is read after being written in the same iteration: covered.
	src := `
program rw
  integer n, i, p
  real x(100), y(100), s
  p = 0
  do i = 1, n
    p = p + 1
    x(p) = y(i)
    s = s + x(p)
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "x")
	cw := CheckConsecutivelyWritten(acc)
	if cw == nil {
		t.Fatal("should be consecutively written")
	}
	if !cw.ReadsCovered {
		t.Error("read after write of the same element should be covered")
	}
}

func TestCWReadNotCovered(t *testing.T) {
	// x(p) is read before the write: upward exposed.
	src := `
program rbw
  integer n, i, p
  real x(100), y(100), s
  p = 0
  do i = 1, n
    p = p + 1
    s = s + x(p)
    x(p) = y(i)
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "x")
	cw := CheckConsecutivelyWritten(acc)
	if cw == nil {
		t.Fatal("the write pattern itself is consecutive")
	}
	if cw.ReadsCovered {
		t.Error("read before write must not be covered")
	}
}

// stackSrc is an array-stack in the style of Figure 1(b): t() is used as a
// stack inside the body of the do i loop, reset at the top of each
// iteration.
const stackSrc = `
program stacky
  integer n, m, i, j, p
  real t(100), a(100), b(100)
  do i = 1, n
    p = 0
    do j = 1, m
      if (a(j) > 0.0) then
        p = p + 1
        t(p) = a(j)
      else
        if (p >= 1) then
          b(j) = t(p)
          p = p - 1
        end if
      end if
    end do
  end do
end
`

func TestStackAccess(t *testing.T) {
	h := newHarness(t, stackSrc, 0) // outer do i loop
	if ds, ok := h.loop.Stmt.(*lang.DoStmt); !ok || ds.Var.Name != "i" {
		t.Fatalf("expected do i loop, got %v", h.loop.Stmt)
	}
	acc := h.access(t, "t")
	if got := acc.ClassifyEvolution(); got != EvolNonMonotonic {
		t.Fatalf("evolution = %v, want non-monotonic", got)
	}
	st := CheckStack(acc)
	if st == nil {
		t.Fatal("t should be recognised as an array stack")
	}
	if lit, ok := st.Bottom.(*lang.IntLit); !ok || lit.Value != 0 {
		t.Errorf("bottom = %v, want 0", st.Bottom)
	}
	if !st.ResetFirst {
		t.Error("p is reset at the top of each iteration")
	}
}

func TestStackRejectsWriteAfterPop(t *testing.T) {
	// Writing the top right after a pop violates Table 1 (row for pop:
	// a write fails the search).
	src := `
program bad
  integer n, i, p
  real t(100), a(100)
  do i = 1, n
    p = 0
    p = p + 1
    t(p) = a(i)
    p = p - 1
    t(p) = a(i)
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "t")
	if st := CheckStack(acc); st != nil {
		t.Error("write directly after pop must fail")
	}
}

func TestStackRejectsDoublePop(t *testing.T) {
	src := `
program bad2
  integer n, i, p
  real t(100), a(100), s
  do i = 1, n
    p = 0
    p = p + 1
    t(p) = a(i)
    s = s + t(p)
    p = p - 1
    p = p - 1
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "t")
	if st := CheckStack(acc); st != nil {
		t.Error("two pops without an intervening push/read must fail")
	}
}

func TestStackRejectsTwoBottoms(t *testing.T) {
	src := `
program bad3
  integer n, i, p
  real t(100), a(100)
  do i = 1, n
    if (a(i) > 0.0) then
      p = 0
    else
      p = 1
    end if
    p = p + 1
    t(p) = a(i)
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "t")
	if st := CheckStack(acc); st != nil {
		t.Error("two different bottom values must fail")
	}
}

func TestStackResetNotFirst(t *testing.T) {
	// The reset exists but a push can occur before it on some path.
	src := `
program bad4
  integer n, i, p
  real t(100), a(100)
  do i = 1, n
    if (a(i) > 0.0) then
      p = p + 1
      t(p) = a(i)
    end if
    p = 0
    p = p + 1
    t(p) = a(i)
  end do
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "t")
	st := CheckStack(acc)
	if st == nil {
		t.Fatal("the Table 1 order itself holds here")
	}
	if st.ResetFirst {
		t.Error("reset does not dominate the stack operations")
	}
}

func TestFindRejectsMixedSubscripts(t *testing.T) {
	src := `
program mixed
  integer n, i, p
  real x(100)
  p = 0
  do i = 1, n
    p = p + 1
    x(p) = x(i)
  end do
end
`
	h := newHarness(t, src, 0)
	for _, a := range h.find() {
		if a.Array == "x" {
			t.Error("x is subscripted by both p and i; not single-indexed")
		}
	}
}

func TestFindRejectsExprSubscript(t *testing.T) {
	src := `
program exprsub
  integer n, i, p
  real x(100), y(100)
  p = 0
  do i = 1, n
    p = p + 1
    x(p + 1) = y(i)
  end do
end
`
	h := newHarness(t, src, 0)
	for _, a := range h.find() {
		if a.Array == "x" {
			t.Error("x(p+1) is not a single-indexed access")
		}
	}
}

func TestIndexModifiedByCallDisqualifies(t *testing.T) {
	src := `
program withcall
  integer n, i, p
  real x(100), y(100)
  p = 0
  do i = 1, n
    p = p + 1
    x(p) = y(i)
    call bump
  end do
end
subroutine bump
  p = p + 3
end
`
	h := newHarness(t, src, 0)
	acc := h.access(t, "x")
	if acc.ClassifyEvolution() != EvolUnknown {
		t.Errorf("call modifying p should make evolution unknown, got %v", acc.ClassifyEvolution())
	}
	if cw := CheckConsecutivelyWritten(acc); cw != nil {
		t.Error("CW must fail when a call modifies the index")
	}
}

func TestGotoFormedLoopCW(t *testing.T) {
	// A goto-formed loop (like P3M's PP/goto10) with a consecutively
	// written gather array.
	src := `
program gotoloop
  integer n, i, p
  real x(100), y(100)
  p = 0
  i = 0
10 continue
  i = i + 1
  p = p + 1
  x(p) = y(i)
  if (i < n) goto 10
end
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mi := dataflow.ComputeMod(info)
	g := cfg.Build(prog.Main)
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("want 1 goto loop, got %d", len(loops))
	}
	accs := Find(g, loops[0], info, mi)
	var xAcc *Access
	for _, a := range accs {
		if a.Array == "x" {
			xAcc = a
		}
	}
	if xAcc == nil {
		t.Fatal("x not found as single-indexed in the goto loop")
	}
	if cw := CheckConsecutivelyWritten(xAcc); cw == nil {
		t.Error("x should be consecutively written in the goto loop")
	}
}

// --- Table 1 row-by-row coverage --------------------------------------------

// table1Program wraps a loop body using t()/p so each ordering violation
// can be probed in isolation.
func table1Check(t *testing.T, body string) *StackResult {
	t.Helper()
	src := `
program t1
  param m = 50
  integer n, i, p
  real t(m), a(m), b(m), s
  do i = 1, n
    p = 0
` + body + `
  end do
end
`
	h := newHarness(t, src, 0)
	for _, a := range h.find() {
		if a.Array == "t" {
			return CheckStack(a)
		}
	}
	t.Fatal("t not single-indexed")
	return nil
}

func TestTable1RowPushRequiresWrite(t *testing.T) {
	// push → push without writing the top: row 1 failure.
	if st := table1Check(t, `
    p = p + 1
    p = p + 1
    t(p) = a(i)
`); st != nil {
		t.Error("push-push without write must fail")
	}
	// push → write: row 1 bound.
	if st := table1Check(t, `
    p = p + 1
    t(p) = a(i)
`); st == nil {
		t.Error("push-write must pass")
	}
}

func TestTable1RowReadRequiresPop(t *testing.T) {
	// read → read without popping: row 4 failure.
	if st := table1Check(t, `
    p = p + 1
    t(p) = a(i)
    s = s + t(p)
    s = s + t(p)
    p = p - 1
`); st != nil {
		t.Error("double read of the top must fail")
	}
	// read → pop: row 4 bound.
	if st := table1Check(t, `
    p = p + 1
    t(p) = a(i)
    s = s + t(p)
    p = p - 1
`); st == nil {
		t.Error("read-pop must pass")
	}
}

func TestTable1RowPopThenReset(t *testing.T) {
	// pop → reset is allowed (row 2 bound includes the reset).
	if st := table1Check(t, `
    p = p + 1
    t(p) = a(i)
    s = s + t(p)
    p = p - 1
    p = 0
    p = p + 1
    t(p) = a(i)
`); st == nil {
		t.Error("pop followed by reset must pass")
	}
}

func TestTable1RowWriteThenRead(t *testing.T) {
	// write → read (then pop) is the canonical produce/consume: allowed.
	if st := table1Check(t, `
    p = p + 1
    t(p) = a(i)
    b(i) = t(p)
    p = p - 1
`); st == nil {
		t.Error("write-read-pop must pass")
	}
	// write → write of the top: row 3 failure.
	if st := table1Check(t, `
    p = p + 1
    t(p) = a(i)
    t(p) = a(i) + 1.0
`); st != nil {
		t.Error("double write of the top must fail")
	}
}
