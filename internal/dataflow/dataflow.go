// Package dataflow provides the scalar data-flow facts the analyses and
// transformations share: per-statement def/use extraction, interprocedural
// modified-variable summaries, scalar reaching definitions on the flat CFG,
// and loop-invariance tests.
package dataflow

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/sem"
)

// Ref is one array reference occurrence.
type Ref struct {
	Array string
	Args  []lang.Expr
	Store bool // write (left-hand side) or read
	Stmt  lang.Stmt
}

// StmtFacts lists the variables one statement reads and writes, at
// statement granularity (not descending into nested bodies).
type StmtFacts struct {
	ScalarReads  []string
	ScalarWrites []string
	ArrayReads   []Ref
	ArrayWrites  []Ref
	Calls        []string
}

// Facts extracts the def/use facts of a single statement. Loop headers
// contribute their bound expressions as reads and the loop variable as a
// write.
func Facts(s lang.Stmt) StmtFacts {
	var f StmtFacts
	addExprReads := func(e lang.Expr) {
		lang.WalkExpr(e, func(x lang.Expr) bool {
			switch x := x.(type) {
			case *lang.Ident:
				f.ScalarReads = append(f.ScalarReads, x.Name)
			case *lang.ArrayRef:
				if !x.Intrinsic {
					f.ArrayReads = append(f.ArrayReads, Ref{Array: x.Name, Args: x.Args, Stmt: s})
				}
			}
			return true
		})
	}
	switch s := s.(type) {
	case *lang.AssignStmt:
		switch lhs := s.Lhs.(type) {
		case *lang.Ident:
			f.ScalarWrites = append(f.ScalarWrites, lhs.Name)
		case *lang.ArrayRef:
			f.ArrayWrites = append(f.ArrayWrites, Ref{Array: lhs.Name, Args: lhs.Args, Store: true, Stmt: s})
			for _, a := range lhs.Args {
				addExprReads(a)
			}
		}
		addExprReads(s.Rhs)
	case *lang.IfStmt:
		addExprReads(s.Cond)
	case *lang.DoStmt:
		f.ScalarWrites = append(f.ScalarWrites, s.Var.Name)
		addExprReads(s.Lo)
		addExprReads(s.Hi)
		if s.Step != nil {
			addExprReads(s.Step)
		}
	case *lang.WhileStmt:
		addExprReads(s.Cond)
	case *lang.CallStmt:
		f.Calls = append(f.Calls, s.Name)
	case *lang.PrintStmt:
		for _, a := range s.Args {
			addExprReads(a)
		}
	}
	return f
}

// CondFacts extracts the reads of one condition of an IF node (the main
// condition or an ELSEIF arm), matching cfg.NIfCond granularity.
func CondFacts(ifs *lang.IfStmt, condIndex int) StmtFacts {
	var f StmtFacts
	cond := ifs.Cond
	if condIndex >= 0 && condIndex < len(ifs.Elifs) {
		cond = ifs.Elifs[condIndex].Cond
	}
	lang.WalkExpr(cond, func(x lang.Expr) bool {
		switch x := x.(type) {
		case *lang.Ident:
			f.ScalarReads = append(f.ScalarReads, x.Name)
		case *lang.ArrayRef:
			if !x.Intrinsic {
				f.ArrayReads = append(f.ArrayReads, Ref{Array: x.Name, Args: x.Args, Stmt: ifs})
			}
		}
		return true
	})
	return f
}

// NodeFacts extracts the def/use facts of one CFG node.
func NodeFacts(n *cfg.Node) StmtFacts {
	switch n.Kind {
	case cfg.NEntry, cfg.NExit:
		return StmtFacts{}
	case cfg.NIfCond:
		return CondFacts(n.Stmt.(*lang.IfStmt), n.CondIndex)
	default:
		return Facts(n.Stmt)
	}
}

// ---------------------------------------------------------------------------
// Interprocedural modified-variable summaries

// ModSet is the set of variables (resolved against a unit's scope) a piece
// of code may modify.
type ModSet struct {
	Scalars map[string]bool
	Arrays  map[string]bool
}

// NewModSet returns an empty ModSet.
func NewModSet() *ModSet {
	return &ModSet{Scalars: map[string]bool{}, Arrays: map[string]bool{}}
}

func (m *ModSet) union(o *ModSet) {
	for k := range o.Scalars {
		m.Scalars[k] = true
	}
	for k := range o.Arrays {
		m.Arrays[k] = true
	}
}

// SortedScalars returns the modified scalar names in order.
func (m *ModSet) SortedScalars() []string { return sortedKeys(m.Scalars) }

// SortedArrays returns the modified array names in order.
func (m *ModSet) SortedArrays() []string { return sortedKeys(m.Arrays) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ModInfo holds, for every unit, the set of global variables the unit may
// modify (directly or through calls). Locals are excluded from the global
// summary because they are invisible to callers.
type ModInfo struct {
	info    *sem.Info
	byUnit  map[*lang.Unit]*ModSet // globals only, transitive
	inlined map[*lang.Unit]*ModSet // including locals, non-transitive
}

// ComputeMod builds interprocedural modification summaries for all units,
// visiting callees before callers (the call graph is acyclic; sem rejects
// recursion).
func ComputeMod(info *sem.Info) *ModInfo {
	mi := &ModInfo{
		info:    info,
		byUnit:  map[*lang.Unit]*ModSet{},
		inlined: map[*lang.Unit]*ModSet{},
	}
	for _, u := range info.CalleeOrder() {
		direct := NewModSet()
		global := NewModSet()
		sc := info.Scope(u)
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			f := Facts(s)
			for _, w := range f.ScalarWrites {
				direct.Scalars[w] = true
				if sym := sc.Lookup(w); sym != nil && sym.Global {
					global.Scalars[w] = true
				}
			}
			for _, w := range f.ArrayWrites {
				direct.Arrays[w.Array] = true
				if sym := sc.Lookup(w.Array); sym != nil && sym.Global {
					global.Arrays[w.Array] = true
				}
			}
			for _, callee := range f.Calls {
				if cu := info.Program.Unit(callee); cu != nil {
					if cm := mi.byUnit[cu]; cm != nil {
						global.union(cm)
						direct.union(cm)
					}
				}
			}
			return true
		})
		mi.byUnit[u] = global
		mi.inlined[u] = direct
	}
	return mi
}

// GlobalsModifiedBy returns the globals the unit may modify, transitively.
func (mi *ModInfo) GlobalsModifiedBy(u *lang.Unit) *ModSet { return mi.byUnit[u] }

// ModifiedBy returns everything the unit may modify (locals included),
// with callees' global effects folded in.
func (mi *ModInfo) ModifiedBy(u *lang.Unit) *ModSet { return mi.inlined[u] }

// StmtsMod computes the modification set of a statement list within unit u,
// following calls through the interprocedural summaries.
func (mi *ModInfo) StmtsMod(u *lang.Unit, stmts []lang.Stmt) *ModSet {
	out := NewModSet()
	lang.WalkStmts(stmts, func(s lang.Stmt) bool {
		f := Facts(s)
		for _, w := range f.ScalarWrites {
			out.Scalars[w] = true
		}
		for _, w := range f.ArrayWrites {
			out.Arrays[w.Array] = true
		}
		for _, callee := range f.Calls {
			if cu := mi.info.Program.Unit(callee); cu != nil {
				if cm := mi.byUnit[cu]; cm != nil {
					out.union(cm)
				}
			}
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// Scalar reaching definitions

// DefSite is one definition of a scalar: the CFG node performing it.
type DefSite struct {
	Var  string
	Node *cfg.Node
}

// ReachingDefs maps every CFG node to the set of definitions reaching its
// entry. Calls conservatively define every global the callee may modify;
// such definitions have the call node as their site.
type ReachingDefs struct {
	In map[*cfg.Node]map[DefSite]bool
}

// ComputeReaching runs the classic iterative reaching-definitions analysis
// on the flat CFG of u.
func ComputeReaching(g *cfg.Graph, info *sem.Info, mi *ModInfo) *ReachingDefs {
	// Gen/kill per node.
	gen := map[*cfg.Node][]DefSite{}
	killsVar := map[*cfg.Node]map[string]bool{}
	for _, n := range g.Nodes {
		f := NodeFacts(n)
		kv := map[string]bool{}
		for _, w := range f.ScalarWrites {
			gen[n] = append(gen[n], DefSite{Var: w, Node: n})
			kv[w] = true
		}
		for _, callee := range f.Calls {
			if cu := info.Program.Unit(callee); cu != nil && mi != nil {
				for _, v := range mi.GlobalsModifiedBy(cu).SortedScalars() {
					gen[n] = append(gen[n], DefSite{Var: v, Node: n})
					kv[v] = true
				}
			}
		}
		killsVar[n] = kv
	}

	in := map[*cfg.Node]map[DefSite]bool{}
	out := map[*cfg.Node]map[DefSite]bool{}
	for _, n := range g.Nodes {
		in[n] = map[DefSite]bool{}
		out[n] = map[DefSite]bool{}
	}
	order := g.ReversePostorder()
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			ni := in[n]
			for _, p := range n.Preds {
				for d := range out[p] {
					if !ni[d] {
						ni[d] = true
						changed = true
					}
				}
			}
			no := out[n]
			for d := range ni {
				if !killsVar[n][d.Var] && !no[d] {
					no[d] = true
					changed = true
				}
			}
			for _, d := range gen[n] {
				if !no[d] {
					no[d] = true
					changed = true
				}
			}
		}
	}
	return &ReachingDefs{In: in}
}

// DefsOf returns the definitions of v reaching node n, sorted by node ID.
func (rd *ReachingDefs) DefsOf(n *cfg.Node, v string) []*cfg.Node {
	var out []*cfg.Node
	for d := range rd.In[n] {
		if d.Var == v {
			out = append(out, d.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ---------------------------------------------------------------------------
// Loop invariance

// InvariantIn reports whether evaluating e yields the same value in every
// iteration of the loop: no scalar it reads is modified in the loop body
// (or by calls made from it), and no array it reads is modified there.
// The loop variable itself always varies.
func InvariantIn(e lang.Expr, loopVar string, mod *ModSet) bool {
	inv := true
	lang.WalkExpr(e, func(x lang.Expr) bool {
		switch x := x.(type) {
		case *lang.Ident:
			if x.Name == loopVar || mod.Scalars[x.Name] {
				inv = false
			}
		case *lang.ArrayRef:
			if !x.Intrinsic && mod.Arrays[x.Name] {
				inv = false
			}
		}
		return inv
	})
	return inv
}
