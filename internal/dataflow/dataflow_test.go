package dataflow

import (
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/sem"
)

func setup(t *testing.T, src string) (*sem.Info, *ModInfo) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return info, ComputeMod(info)
}

func TestFactsAssign(t *testing.T) {
	prog, _ := lang.Parse("program p\n integer i, j\n real x(10), y(10)\n x(i+1) = y(j) + i\nend\n")
	s := prog.Main.Body[0]
	f := Facts(s)
	if !reflect.DeepEqual(f.ScalarReads, []string{"i", "j", "i"}) {
		t.Errorf("reads: %v", f.ScalarReads)
	}
	if len(f.ArrayWrites) != 1 || f.ArrayWrites[0].Array != "x" {
		t.Errorf("array writes: %v", f.ArrayWrites)
	}
	if len(f.ArrayReads) != 1 || f.ArrayReads[0].Array != "y" {
		t.Errorf("array reads: %v", f.ArrayReads)
	}
}

func TestFactsDoHeader(t *testing.T) {
	prog, _ := lang.Parse("program p\n integer i, n\n do i = 1, n\n continue\n end do\nend\n")
	f := Facts(prog.Main.Body[0])
	if !reflect.DeepEqual(f.ScalarWrites, []string{"i"}) {
		t.Errorf("writes: %v", f.ScalarWrites)
	}
	if !reflect.DeepEqual(f.ScalarReads, []string{"n"}) {
		t.Errorf("reads: %v", f.ScalarReads)
	}
}

func TestFactsIntrinsicNotArray(t *testing.T) {
	src := "program p\n integer i, j\n i = mod(j, 2)\nend\n"
	prog, _ := lang.Parse(src)
	if _, err := sem.Check(prog); err != nil {
		t.Fatal(err)
	}
	f := Facts(prog.Main.Body[0])
	if len(f.ArrayReads) != 0 {
		t.Errorf("intrinsic counted as array read: %v", f.ArrayReads)
	}
}

func TestModInterprocedural(t *testing.T) {
	info, mi := setup(t, `
program main
  integer g1, g2
  real ga(10)
  call outer
end
subroutine outer
  integer l
  l = 1
  g1 = 2
  call inner
end
subroutine inner
  ga(1) = 0.0
  g2 = 3
end
`)
	outer := info.Program.Unit("outer")
	g := mi.GlobalsModifiedBy(outer)
	if !g.Scalars["g1"] || !g.Scalars["g2"] || !g.Arrays["ga"] {
		t.Errorf("outer global mods: scalars=%v arrays=%v", g.SortedScalars(), g.SortedArrays())
	}
	if g.Scalars["l"] {
		t.Error("local leaked into global summary")
	}
	all := mi.ModifiedBy(outer)
	if !all.Scalars["l"] {
		t.Error("direct summary should include locals")
	}
}

func TestStmtsModWithCalls(t *testing.T) {
	info, mi := setup(t, `
program main
  integer g
  integer i
  do i = 1, 3
    call bump
  end do
end
subroutine bump
  g = g + 1
end
`)
	loop := info.Program.Main.Body[0].(*lang.DoStmt)
	mod := mi.StmtsMod(info.Program.Main, loop.Body)
	if !mod.Scalars["g"] {
		t.Errorf("call effect missing: %v", mod.SortedScalars())
	}
}

func TestReachingDefs(t *testing.T) {
	info, mi := setup(t, `
program p
  integer a, b
  a = 1
  if (b > 0) then
    a = 2
  end if
  b = a
end
`)
	g := cfg.Build(info.Program.Main)
	rd := ComputeReaching(g, info, mi)
	// At "b = a", both definitions of a reach.
	var lastAssign *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.NStmt {
			if as, ok := n.Stmt.(*lang.AssignStmt); ok {
				if id, ok := as.Lhs.(*lang.Ident); ok && id.Name == "b" {
					lastAssign = n
				}
			}
		}
	}
	if lastAssign == nil {
		t.Fatal("b = a not found")
	}
	defs := rd.DefsOf(lastAssign, "a")
	if len(defs) != 2 {
		t.Errorf("defs of a at b=a: %d, want 2", len(defs))
	}
}

func TestReachingDefsLoop(t *testing.T) {
	info, mi := setup(t, `
program p
  integer i, s, n
  s = 0
  do i = 1, n
    s = s + 1
  end do
  n = s
end
`)
	g := cfg.Build(info.Program.Main)
	rd := ComputeReaching(g, info, mi)
	// Inside the loop, s has two reaching defs: s=0 and s=s+1.
	loop := info.Program.Main.Body[1].(*lang.DoStmt)
	inner := g.StmtNode[loop.Body[0]]
	defs := rd.DefsOf(inner, "s")
	if len(defs) != 2 {
		t.Errorf("defs of s in loop: %d, want 2", len(defs))
	}
}

func TestReachingDefsCallSite(t *testing.T) {
	info, mi := setup(t, `
program p
  integer g
  g = 1
  call clobber
  g = g
end
subroutine clobber
  g = 2
end
`)
	g := cfg.Build(info.Program.Main)
	rd := ComputeReaching(g, info, mi)
	var last *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.NStmt {
			if _, ok := n.Stmt.(*lang.AssignStmt); ok {
				last = n
			}
		}
	}
	defs := rd.DefsOf(last, "g")
	// Only the call's definition reaches (it kills g=1).
	if len(defs) != 1 || defs[0].Kind != cfg.NStmt {
		t.Fatalf("defs: %v", defs)
	}
	if _, ok := defs[0].Stmt.(*lang.CallStmt); !ok {
		t.Errorf("reaching def should be the call, got %v", defs[0])
	}
}

func TestInvariantIn(t *testing.T) {
	info, mi := setup(t, `
program p
  integer i, n, m
  real x(10)
  do i = 1, n
    m = i
    x(i) = real(n)
  end do
end
`)
	loop := info.Program.Main.Body[0].(*lang.DoStmt)
	mod := mi.StmtsMod(info.Program.Main, loop.Body)

	nExpr := &lang.Ident{Name: "n"}
	mExpr := &lang.Ident{Name: "m"}
	iExpr := &lang.Ident{Name: "i"}
	if !InvariantIn(nExpr, "i", mod) {
		t.Error("n should be invariant")
	}
	if InvariantIn(mExpr, "i", mod) {
		t.Error("m is assigned in the loop")
	}
	if InvariantIn(iExpr, "i", mod) {
		t.Error("the loop variable is never invariant")
	}
	xRef := &lang.ArrayRef{Name: "x", Args: []lang.Expr{&lang.IntLit{Value: 1}}}
	if InvariantIn(xRef, "i", mod) {
		t.Error("x is written in the loop")
	}
}

func TestCondFactsElifArms(t *testing.T) {
	prog, _ := lang.Parse(`
program p
  integer a, b, c
  real x(10)
  if (a > 0) then
    c = 1
  else if (x(b) > 0.0) then
    c = 2
  end if
end
`)
	if _, err := sem.Check(prog); err != nil {
		t.Fatal(err)
	}
	ifs := prog.Main.Body[0].(*lang.IfStmt)
	main := CondFacts(ifs, -1)
	if len(main.ScalarReads) != 1 || main.ScalarReads[0] != "a" {
		t.Errorf("main cond reads: %v", main.ScalarReads)
	}
	arm := CondFacts(ifs, 0)
	if len(arm.ArrayReads) != 1 || arm.ArrayReads[0].Array != "x" {
		t.Errorf("elif arm array reads: %v", arm.ArrayReads)
	}
	if len(arm.ScalarReads) != 1 || arm.ScalarReads[0] != "b" {
		t.Errorf("elif arm scalar reads: %v", arm.ScalarReads)
	}
}

func TestNodeFactsEntryExit(t *testing.T) {
	info, _ := setup(t, "program p\n integer a\n a = 1\nend\n")
	g := cfg.Build(info.Program.Main)
	f := NodeFacts(g.Entry)
	if len(f.ScalarReads)+len(f.ScalarWrites) != 0 {
		t.Error("entry node must have no facts")
	}
}
