package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/sem"
)

// ---------------------------------------------------------------------------
// Definite assignment (forward must-analysis)

// Definite maps every CFG node to the set of scalars definitely assigned on
// entry: a variable is in the set iff every path from the unit entry to the
// node writes it. Calls count as definitions of every global the callee may
// modify, matching ComputeReaching's conservative treatment.
type Definite struct {
	In map[*cfg.Node]map[string]bool
}

// AssignedAt reports whether v is definitely assigned on entry to n.
func (d *Definite) AssignedAt(n *cfg.Node, v string) bool { return d.In[n][v] }

// ComputeDefinite runs the forward must-analysis companion of
// ComputeReaching: out(n) = in(n) ∪ writes(n), in(n) = ∩ over predecessors.
// Unreachable nodes keep the full universe (vacuously assigned on every
// path, since there is none).
func ComputeDefinite(g *cfg.Graph, info *sem.Info, mi *ModInfo) *Definite {
	univ := map[string]bool{}
	gen := map[*cfg.Node]map[string]bool{}
	for _, n := range g.Nodes {
		f := NodeFacts(n)
		w := map[string]bool{}
		for _, v := range f.ScalarWrites {
			w[v] = true
			univ[v] = true
		}
		for _, callee := range f.Calls {
			if cu := info.Program.Unit(callee); cu != nil && mi != nil {
				for _, v := range mi.GlobalsModifiedBy(cu).SortedScalars() {
					w[v] = true
					univ[v] = true
				}
			}
		}
		for _, v := range f.ScalarReads {
			univ[v] = true
		}
		gen[n] = w
	}

	in := map[*cfg.Node]map[string]bool{}
	out := map[*cfg.Node]map[string]bool{}
	full := func() map[string]bool {
		m := make(map[string]bool, len(univ))
		for v := range univ {
			m[v] = true
		}
		return m
	}
	for _, n := range g.Nodes {
		if n == g.Entry {
			in[n] = map[string]bool{}
			out[n] = map[string]bool{}
			continue
		}
		// Must-analysis top: start from the universe and intersect down.
		in[n] = full()
		out[n] = full()
	}
	for v := range gen[g.Entry] {
		out[g.Entry][v] = true
	}

	order := g.ReversePostorder()
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			if n == g.Entry {
				continue
			}
			ni := in[n]
			for v := range ni {
				keep := true
				for _, p := range n.Preds {
					if !out[p][v] {
						keep = false
						break
					}
				}
				if !keep {
					delete(ni, v)
					changed = true
				}
			}
			no := out[n]
			for v := range no {
				if !ni[v] && !gen[n][v] {
					delete(no, v)
					changed = true
				}
			}
		}
	}
	return &Definite{In: in}
}

// ---------------------------------------------------------------------------
// Liveness (backward may-analysis)

// Live maps every CFG node to the scalars live on entry and exit: a
// variable is live when some path to a later read exists with no
// intervening write. Array elements are not tracked (any element read keeps
// the array name live is *not* modelled here — liveness is scalar-only,
// which is what the privatization and lint clients need).
type Live struct {
	In  map[*cfg.Node]map[string]bool
	Out map[*cfg.Node]map[string]bool
}

// LiveAt reports whether v is live on entry to n.
func (l *Live) LiveAt(n *cfg.Node, v string) bool { return l.In[n][v] }

// ComputeLive runs the classic backward liveness analysis over the scalar
// uses and defs of the flat CFG: in(n) = use(n) ∪ (out(n) − def(n)),
// out(n) = ∪ in(s) over successors.
func ComputeLive(g *cfg.Graph) *Live {
	use := map[*cfg.Node]map[string]bool{}
	def := map[*cfg.Node]map[string]bool{}
	for _, n := range g.Nodes {
		f := NodeFacts(n)
		u := map[string]bool{}
		for _, v := range f.ScalarReads {
			u[v] = true
		}
		d := map[string]bool{}
		for _, v := range f.ScalarWrites {
			d[v] = true
		}
		use[n] = u
		def[n] = d
	}

	in := map[*cfg.Node]map[string]bool{}
	out := map[*cfg.Node]map[string]bool{}
	for _, n := range g.Nodes {
		in[n] = map[string]bool{}
		out[n] = map[string]bool{}
	}
	order := g.ReversePostorder()
	changed := true
	for changed {
		changed = false
		// Backward problem: iterate in reverse of the reverse postorder.
		for i := len(order) - 1; i >= 0; i-- {
			n := order[i]
			no := out[n]
			for _, s := range n.Succs {
				for v := range in[s] {
					if !no[v] {
						no[v] = true
						changed = true
					}
				}
			}
			ni := in[n]
			for v := range use[n] {
				if !ni[v] {
					ni[v] = true
					changed = true
				}
			}
			for v := range no {
				if !def[n][v] && !ni[v] {
					ni[v] = true
					changed = true
				}
			}
		}
	}
	return &Live{In: in, Out: out}
}
