package dataflow

import (
	"testing"

	"repro/internal/cfg"
)

// buildGraph parses, checks and builds the main unit's CFG.
func buildGraph(t *testing.T, src string) (*cfg.Graph, *Definite, *Live) {
	t.Helper()
	info, mi := setup(t, src)
	g := cfg.Build(info.Program.Main)
	return g, ComputeDefinite(g, info, mi), ComputeLive(g)
}

// nodeAt finds the first node (in reverse postorder) anchored to a source
// line.
func nodeAt(t *testing.T, g *cfg.Graph, line int) *cfg.Node {
	t.Helper()
	for _, n := range g.ReversePostorder() {
		if n.Pos().Line == line {
			return n
		}
	}
	// Unreachable statements don't appear in the reverse postorder; fall
	// back to the full node list.
	for _, n := range g.Nodes {
		if n.Pos().Line == line {
			return n
		}
	}
	t.Fatalf("no CFG node at line %d", line)
	return nil
}

func TestComputeDefinite(t *testing.T) {
	type query struct {
		line int
		v    string
		want bool
	}
	cases := []struct {
		name    string
		src     string
		queries []query
	}{
		{
			name: "if-else diamond",
			src: `program p
  integer a, b, c
  real x
  b = 1
  if (b > 0) then
    a = 1
  else
    a = 2
    c = 3
  end if
  x = real(a) + real(c)
end
`,
			queries: []query{
				{11, "a", true},  // assigned on both branches
				{11, "c", false}, // else branch only
				{11, "b", true},  // straight-line
			},
		},
		{
			name: "elif chain without else",
			src: `program p
  integer a, m
  m = 2
  if (m == 1) then
    a = 1
  else if (m == 2) then
    a = 2
  end if
  m = a
end
`,
			queries: []query{
				{9, "a", false}, // fall-through path assigns nothing
				{9, "m", true},
			},
		},
		{
			name: "goto skips the assignment",
			src: `program p
  integer a, b
  goto 10
  a = 1
10 continue
  b = a
end
`,
			queries: []query{
				{6, "a", false},
				// The skipped assignment itself is unreachable: the
				// must-analysis leaves it at the vacuous full set.
				{4, "a", true},
			},
		},
		{
			name: "do loop body may not execute",
			src: `program p
  integer i, n, s
  n = 4
  do i = 1, n
    s = 2
  end do
  i = i + s
end
`,
			queries: []query{
				{7, "s", false}, // zero-trip loop skips the body
				{7, "i", true},  // the DO header writes i on every path
				{7, "n", true},
			},
		},
		{
			name: "while body may not execute",
			src: `program p
  integer w, t
  w = 3
  do while (w >= 1)
    t = w
    w = w - 1
  end do
  w = t
end
`,
			queries: []query{
				{8, "t", false},
				{8, "w", true},
			},
		},
		{
			name: "goto-formed loop assigns before the read",
			src: `program p
  integer w, s
  w = 3
10 continue
  s = w
  w = w - 1
  if (w >= 1) goto 10
  w = s
end
`,
			queries: []query{
				{8, "s", true}, // the loop body runs at least once
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, d, _ := buildGraph(t, tc.src)
			for _, q := range tc.queries {
				n := nodeAt(t, g, q.line)
				if got := d.AssignedAt(n, q.v); got != q.want {
					t.Errorf("line %d: AssignedAt(%q) = %v, want %v", q.line, q.v, got, q.want)
				}
			}
		})
	}
}

func TestComputeLive(t *testing.T) {
	type query struct {
		line    int
		v       string
		wantIn  bool
		wantOut bool
	}
	cases := []struct {
		name    string
		src     string
		queries []query
	}{
		{
			name: "straight line kill",
			src: `program p
  integer x, y
  x = 1
  y = x
  x = 2
  y = y + x
end
`,
			queries: []query{
				{3, "x", false, true}, // x born at its write, dead before
				{4, "x", true, false}, // the second x = kills it
				{5, "x", false, true},
				{6, "y", true, false}, // nothing reads y afterwards
			},
		},
		{
			name: "loop-carried liveness",
			src: `program p
  integer i, n, s
  s = 0
  n = 3
  do i = 1, n
    s = s + i
  end do
  print "s", s
end
`,
			queries: []query{
				{3, "s", false, true}, // live out of s = 0 into the loop
				{6, "s", true, true},  // read in the body, live around the back edge
				{8, "s", true, false},
			},
		},
		{
			name: "branch-only read",
			src: `program p
  integer a, b, c
  a = 1
  b = 2
  if (b > 0) then
    c = a
  else
    c = 0
  end if
  print "c", c
end
`,
			queries: []query{
				{5, "a", true, true},  // the if-cond needs a live for the then-arm
				{8, "a", false, false},
				{3, "a", false, true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _, lv := buildGraph(t, tc.src)
			for _, q := range tc.queries {
				n := nodeAt(t, g, q.line)
				if got := lv.LiveAt(n, q.v); got != q.wantIn {
					t.Errorf("line %d: LiveAt(%q) = %v, want %v", q.line, q.v, got, q.wantIn)
				}
				if got := lv.Out[n][q.v]; got != q.wantOut {
					t.Errorf("line %d: live-out %q = %v, want %v", q.line, q.v, got, q.wantOut)
				}
			}
		})
	}
}
