// Package deptest implements the data dependence tests of the paper's
// evaluation pipeline (§3.2.7, §5.1.5): a GCD quick test and a symbolic
// range test for affine and quasi-affine subscripts, the offset–length test
// for subscripts built from offset and length index arrays, the injective
// test for subscripts of the form a(p(i)), and closed-form-value
// substitution that turns index-array subscripts into affine ones. The
// last three consult the demand-driven array property analysis, which is
// exactly how the paper wires its tests to the property framework ("the
// offset–length test serves as a query generator").
package deptest

import (
	"sort"

	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/section"
	"repro/internal/sem"
)

// TestKind names the technique that disproved a dependence, for reporting
// (Table 3's "Test" column).
type TestKind string

// Test kinds.
const (
	TestNone         TestKind = ""
	TestAffine       TestKind = "affine"        // GCD / window separation on affine subscripts
	TestRange        TestKind = "range"         // symbolic range test
	TestOffsetLength TestKind = "offset-length" // closed-form distance rewrite (CFD)
	TestInjective    TestKind = "injective"     // injectivity of the index array
	TestCFV          TestKind = "closed-form"   // closed-form value substitution (CFV)
	// TestRecurrence is the recurrence-window test: inner-loop windows
	// bounded by an offset array (CSR row pointers) are proven separated
	// with monotonicity facts derived from the loop that fills the array.
	TestRecurrence TestKind = "recurrence-window"
)

// Verdict is the per-array outcome of analyzing one loop.
type Verdict struct {
	Array       string
	Independent bool
	Test        TestKind
	// Properties lists the index-array properties that were verified to
	// reach the verdict, e.g. "closed-form-distance(pptr)".
	Properties []string
}

// Analyzer runs dependence tests over loops. Prop may be nil, which
// disables every property-based test (the "without irregular access
// analysis" configuration of the evaluation).
type Analyzer struct {
	Info *sem.Info
	Mod  *dataflow.ModInfo
	Prop *property.Analysis
	// In is the compilation's expression interner, shared with the property
	// analysis (nil disables interning; all uses are nil-safe).
	In     *expr.Interner
	Assume expr.Assumptions
	// Rec, when non-nil, receives one "dep.verdict" event per array and
	// loop, recording which dependence test fired (or why none did).
	Rec *obs.Recorder
}

// New builds an Analyzer. prop may be nil.
func New(info *sem.Info, mod *dataflow.ModInfo, prop *property.Analysis) *Analyzer {
	a := &Analyzer{
		Info: info, Mod: mod, Prop: prop,
		Assume: expr.Assumptions{},
	}
	if prop != nil {
		a.In = prop.Interner()
	}
	return a
}

// verifyCached runs (or replays) a property verification through the
// analysis-wide memo table (property.VerifyCached): the same (node,
// property, section) query repeats across the reference pairs of one loop
// and across loops sharing index arrays, and is deterministic for an
// unchanged program. mk builds the fresh property instance; on a hit the
// previously derived instance is returned instead. Callers guarantee
// a.Prop != nil (every property-based test is gated on it).
func (a *Analyzer) verifyCached(sec *section.Section, at lang.Stmt, mk func() property.Property) (property.Property, bool) {
	return a.Prop.VerifyCached(mk, at, sec)
}

// Invalidate drops every memoized property verdict. Passes that mutate the
// program mid-analysis (loop interchange) must call it after each mutation:
// cached entries describe the pre-mutation program and would otherwise
// replay stale verdicts — the bug the pointer-keyed ad-hoc cache used to
// have. No-op without property analysis.
func (a *Analyzer) Invalidate() {
	if a.Prop != nil {
		a.Prop.InvalidateCache()
	}
	// The AST changed, so the interner's per-node memo is stale too (the
	// canonical-key table stays: keys identify values, not syntax).
	a.In.InvalidateAST()
}

// ref is one array reference with its inner-loop environment.
type ref struct {
	subs  []*expr.Expr // canonical subscripts, one per dimension
	env   expr.Env     // inner loops enclosing the ref (outer loop excluded)
	store bool
	stmt  lang.Stmt
}

// collectRefs gathers the references of every array inside the loop body,
// tracking the inner DO-loop environment of each. ok is false for arrays
// whose references cannot be analyzed (calls touching them, non-DO inner
// control with unknown iteration ranges are fine — only bounds matter).
func (a *Analyzer) collectRefs(u *lang.Unit, loop *lang.DoStmt) (map[string][]ref, map[string]bool) {
	refs := map[string][]ref{}
	unanalyzable := map[string]bool{}

	var walk func(stmts []lang.Stmt, env expr.Env)
	record := func(r dataflow.Ref, env expr.Env) {
		subs := make([]*expr.Expr, len(r.Args))
		for i, s := range r.Args {
			subs[i] = a.In.FromAST(s)
		}
		refs[r.Array] = append(refs[r.Array], ref{subs: subs, env: env, store: r.Store, stmt: r.Stmt})
	}
	walk = func(stmts []lang.Stmt, env expr.Env) {
		for _, s := range stmts {
			f := dataflow.Facts(s)
			for _, r := range f.ArrayReads {
				record(r, env)
			}
			for _, w := range f.ArrayWrites {
				record(w, env)
			}
			for _, callee := range f.Calls {
				if cu := a.Info.Program.Unit(callee); cu != nil {
					for _, arr := range a.Mod.GlobalsModifiedBy(cu).SortedArrays() {
						unanalyzable[arr] = true
					}
				}
			}
			switch s := s.(type) {
			case *lang.IfStmt:
				walk(s.Then, env)
				for _, arm := range s.Elifs {
					walk(arm.Body, env)
				}
				walk(s.Else, env)
			case *lang.DoStmt:
				lo := a.In.FromAST(s.Lo)
				hi := a.In.FromAST(s.Hi)
				inner := env.With(s.Var.Name, expr.NewRange(lo, hi))
				if s.Step != nil {
					if c, ok := a.In.FromAST(s.Step).IsConst(); !ok || c == 0 {
						inner = env.With(s.Var.Name, expr.Range{})
					} else if c < 0 {
						inner = env.With(s.Var.Name, expr.NewRange(hi, lo))
					}
				}
				walk(s.Body, inner)
			case *lang.WhileStmt:
				walk(s.Body, env)
			}
		}
	}
	walk(loop.Body, expr.Env{})
	return refs, unanalyzable
}

// AnalyzeLoop tests, for every array written inside the loop, whether the
// loop carries a dependence on it. Arrays not written are trivially
// independent and omitted. Results are keyed by array name.
func (a *Analyzer) AnalyzeLoop(u *lang.Unit, loop *lang.DoStmt) map[string]*Verdict {
	refs, unanalyzable := a.collectRefs(u, loop)
	out := map[string]*Verdict{}
	for arr, rs := range refs {
		hasWrite := false
		for _, r := range rs {
			if r.store {
				hasWrite = true
				break
			}
		}
		if !hasWrite {
			continue
		}
		v := &Verdict{Array: arr}
		out[arr] = v
		if unanalyzable[arr] {
			continue
		}
		v.Independent, v.Test, v.Properties = a.independent(u, loop, arr, rs)
	}
	if a.Rec.Enabled() {
		arrays := make([]string, 0, len(out))
		for arr := range out {
			arrays = append(arrays, arr)
		}
		sort.Strings(arrays)
		for _, arr := range arrays {
			v := out[arr]
			fields := []obs.Field{
				obs.F("array", arr),
				obs.Fb("independent", v.Independent),
			}
			switch {
			case v.Independent:
				fields = append(fields, obs.F("test", string(v.Test)))
			case unanalyzable[arr]:
				fields = append(fields, obs.F("reason", "modified by an out-of-line call"))
			default:
				fields = append(fields, obs.F("reason", "no test disproved the dependence"))
			}
			a.Rec.Event("dep.verdict", fields...)
		}
	}
	return out
}

// DiagnoseArray replays, with tracing, the index-array property queries
// relevant to one dependent array of a loop: for every index array
// appearing in the array's subscripts it verifies injectivity, monotonicity
// and value bounds over the loop's index range. The verdicts do not change
// — this exists so `-explain` can show *which* property query failed for a
// loop that stayed serial, the diagnosis Bhosale & Eigenmann identify as
// the key to extending coverage. No-op without a recorder or property
// analysis.
func (a *Analyzer) DiagnoseArray(u *lang.Unit, loop *lang.DoStmt, arr string) {
	// Replaying queries is pure diagnostic overhead: Debug-level only.
	if a.Prop == nil || !a.Rec.DebugEnabled() {
		return
	}
	// Replayed queries must not perturb the analysis bookkeeping: Stats
	// (and so Table 2's overhead share) stay what the verdicts alone cost.
	saved := a.Prop.Stats
	defer func() { a.Prop.Stats = saved }()
	lo, hi, okR := loopRange(a.In, loop)
	if !okR {
		return
	}
	refs, _ := a.collectRefs(u, loop)
	seen := map[string]bool{}
	for _, r := range refs[arr] {
		for _, e := range r.subs {
			for _, ia := range arrayAtomNames(e) {
				if seen[ia] {
					continue
				}
				seen[ia] = true
				sp := a.Rec.StartSpan("diagnose",
					obs.F("array", arr), obs.F("index", ia))
				sec := section.New(ia, lo, hi)
				for _, mk := range []func() property.Property{
					func() property.Property { return property.NewInjective(ia) },
					func() property.Property { return property.NewMonotonic(ia) },
					func() property.Property { return property.NewBounds(ia) },
				} {
					prop := mk()
					ok := a.Prop.Verify(prop, r.stmt, sec)
					a.Rec.Event("diagnose.result",
						obs.F("prop", prop.String()), obs.Fb("ok", ok))
				}
				sp.End()
			}
		}
	}
}

// independent tests all conflicting pairs of references of one array.
func (a *Analyzer) independent(u *lang.Unit, loop *lang.DoStmt, arr string, rs []ref) (bool, TestKind, []string) {
	sym := a.Info.LookupIn(u, arr)
	if sym == nil {
		return false, TestNone, nil
	}
	bodyMod := a.Mod.StmtsMod(u, loop.Body)
	best := TestNone
	var props []string
	for i := range rs {
		for j := i; j < len(rs); j++ {
			if !rs[i].store && !rs[j].store {
				continue
			}
			ok, kind, ps := a.pairIndependent(u, loop, arr, rs[i], rs[j], bodyMod)
			if !ok {
				return false, TestNone, nil
			}
			if rank(kind) > rank(best) {
				best = kind
			}
			props = append(props, ps...)
		}
	}
	return true, best, dedup(props)
}

func rank(k TestKind) int {
	switch k {
	case TestAffine:
		return 1
	case TestRange:
		return 2
	case TestCFV:
		return 3
	case TestInjective:
		return 4
	case TestOffsetLength:
		return 5
	case TestRecurrence:
		return 6
	}
	return 0
}

func dedup(ss []string) []string {
	seen := map[string]bool{}
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// pairIndependent proves that references A and B never touch the same
// element in different iterations of the outer loop. It tries, per
// dimension: the GCD test, window separation on the raw subscripts, the
// injective test, closed-form-value substitution, and the offset–length
// rewrite. Any single dimension with proven separation suffices.
func (a *Analyzer) pairIndependent(u *lang.Unit, loop *lang.DoStmt, arr string, A, B ref, bodyMod *dataflow.ModSet) (bool, TestKind, []string) {
	if len(A.subs) != len(B.subs) {
		return false, TestNone, nil
	}
	v := loop.Var.Name
	assume := a.envAssumptions(loop, A, B)
	for d := range A.subs {
		fa, fb := A.subs[d], B.subs[d]

		// A subscript mentioning a scalar or array the loop body itself
		// modifies (outside the DO-variable environment) is not a stable
		// symbol: its value differs between iterations and even within
		// one, so the purely symbolic tests below would compare
		// different dynamic values under one name. Such dimensions are
		// left to the property-based tests, whose reverse propagation
		// explicitly tracks in-loop modification.
		taintedA := subscriptTainted(fa, v, A.env, bodyMod)
		taintedB := subscriptTainted(fb, v, B.env, bodyMod)
		clean := !taintedA && !taintedB

		// Identical affine subscripts with a nonzero coefficient in the
		// loop variable touch distinct elements in distinct iterations.
		if clean && fa.Equal(fb) {
			if coef, _, ok := fa.Affine(v); ok && coef != 0 &&
				!mentionsAnyEnvVar(fa, A.env) && !mentionsAnyEnvVar(fb, B.env) {
				return true, TestAffine, nil
			}
		}

		// GCD quick test (affine, no inner-loop dependence).
		if clean && a.gcdIndependent(fa, fb, v, A.env, B.env) {
			return true, TestAffine, nil
		}

		// Window separation on the raw subscripts (range test).
		if clean && a.windowsSeparated(fa, fb, v, A.env, B.env, assume) {
			return true, TestRange, nil
		}

		if a.Prop == nil {
			continue
		}

		// Injective test: both subscripts are the same index-array
		// element indexed by the loop variable.
		if ok, ps := a.injectiveIndependent(fa, fb, v, loop, A, B); ok {
			return true, TestInjective, ps
		}

		// Closed-form value substitution, then retry separation. The
		// substituted expressions must come out clean: the closed forms
		// themselves are validated by the property analysis, but any
		// residual tainted symbol still disqualifies the comparison.
		if ok, kind, ps := a.cfvIndependent(fa, fb, v, loop, A, B, assume, bodyMod); ok {
			return true, kind, ps
		}

		// Offset–length test: rewrite with closed-form distances, then
		// retry separation under value-bound assumptions. The offset and
		// distance arrays are verified loop-stable by the property
		// queries; residual tainted scalars still disqualify.
		if clean {
			if ok, ps := a.offsetLengthIndependent(fa, fb, v, loop, A, B, assume); ok {
				return true, TestOffsetLength, ps
			}
		}

		// Recurrence-window test: atom-free subscripts whose inner-loop
		// windows run through an offset array (CSR row pointers). The
		// separation conditions are discharged with monotonicity facts
		// derived at the array's definition site, so the whole test —
		// including its closed-form-distance fallback — is gated by the
		// same `-no-recurrence` ablation as the derivation itself.
		if clean && !a.Prop.NoRecurrence {
			if ok, ps := a.recurrenceWindowIndependent(fa, fb, v, loop, A, B, assume); ok {
				return true, TestRecurrence, ps
			}
		}
	}
	return false, TestNone, nil
}

// subscriptTainted reports whether e mentions a scalar or array the loop
// body modifies, other than the outer loop variable and the enclosing DO
// variables (those are modelled by the environment).
func subscriptTainted(e *expr.Expr, v string, env expr.Env, bodyMod *dataflow.ModSet) bool {
	for _, sv := range scalarVarsOf(e) {
		if sv == v {
			continue
		}
		if _, inEnv := env[sv]; inEnv {
			continue
		}
		if bodyMod.Scalars[sv] {
			return true
		}
	}
	for _, arr := range arrayAtomNames(e) {
		if bodyMod.Arrays[arr] {
			return true
		}
	}
	return false
}

// scalarVarsOf lists the scalar variable names e mentions (including
// inside array-atom subscripts).
func scalarVarsOf(e *expr.Expr) []string {
	seen := map[string]bool{}
	var out []string
	lang.WalkExpr(e.ToAST(), func(x lang.Expr) bool {
		if id, ok := x.(*lang.Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// envAssumptions extends the analyzer's assumptions with sign facts about
// the loop variables in scope: a loop variable is at least its (constant)
// lower bound while the loop executes.
func (a *Analyzer) envAssumptions(loop *lang.DoStmt, A, B ref) expr.Assumptions {
	assume := a.Assume
	addVar := func(v string, lo *expr.Expr) {
		if c, ok := lo.IsConst(); ok {
			switch {
			case c >= 1:
				assume = assume.With(v, expr.GT0)
			case c >= 0:
				assume = assume.With(v, expr.GE0)
			}
		}
	}
	if lo, _, ok := loopRange(a.In, loop); ok && lo != nil {
		addVar(loop.Var.Name, lo)
	}
	for _, env := range []expr.Env{A.env, B.env} {
		for v, r := range env {
			if r.Lo != nil {
				addVar(v, r.Lo)
			}
		}
	}
	return assume
}

func mentionsAnyEnvVar(e *expr.Expr, env expr.Env) bool {
	for v := range env {
		if e.MentionsVar(v) {
			return true
		}
	}
	return false
}

// gcdIndependent applies the classic GCD test to a pair of affine
// subscripts c1*i + r1 and c2*i' + r2 with constant difference: if
// gcd(c1,c2) does not divide the constant part of r2-r1 there is no
// solution at all. Inner-loop variables must be absent.
func (a *Analyzer) gcdIndependent(fa, fb *expr.Expr, v string, envA, envB expr.Env) bool {
	for iv := range envA {
		if fa.MentionsVar(iv) {
			return false
		}
	}
	for iv := range envB {
		if fb.MentionsVar(iv) {
			return false
		}
	}
	c1, r1, ok1 := fa.Affine(v)
	c2, r2, ok2 := fb.Affine(v)
	if !ok1 || !ok2 || (c1 == 0 && c2 == 0) {
		return false
	}
	diff, isConst := r2.DiffConst(r1)
	if !isConst {
		return false
	}
	g := gcd64(abs64(c1), abs64(c2))
	if g == 0 {
		return false
	}
	return diff%g != 0
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// windowsSeparated proves that the per-iteration access windows of fa and
// fb never overlap across different iterations of v: with
// RA(i) = [A.lo(i), A.hi(i)] over the inner loops,
//
//	A.hi(i) < B.lo(i+1), B.hi(i) < A.lo(i+1),
//	A.lo and B.lo monotonically non-decreasing in i
//
// (or the fully symmetric decreasing direction).
func (a *Analyzer) windowsSeparated(fa, fb *expr.Expr, v string, envA, envB expr.Env, assume expr.Assumptions) bool {
	ra, ok1 := expr.Bounds(fa, envA, assume)
	rb, ok2 := expr.Bounds(fb, envB, assume)
	if !ok1 || !ok2 || ra.Lo == nil || ra.Hi == nil || rb.Lo == nil || rb.Hi == nil {
		return false
	}
	ident := func(e *expr.Expr) *expr.Expr { return e }
	if separatedIncreasing(ra, rb, v, assume, ident) {
		return true
	}
	return separatedDecreasing(ra, rb, v, assume, ident)
}

func at(e *expr.Expr, v string, delta int64) *expr.Expr {
	return e.SubstVar(v, expr.Var(v).AddConst(delta))
}

// separatedIncreasing proves the access windows strictly separated with
// non-decreasing lower ends. Differences are normalized (e.g. by a closed-
// form-distance rewrite) before each proof.
func separatedIncreasing(ra, rb expr.Range, v string, assume expr.Assumptions, norm func(*expr.Expr) *expr.Expr) bool {
	lt := func(x, y *expr.Expr) bool {
		return expr.ProveGT0(norm(y.Sub(x)), assume)
	}
	nonDec := func(e *expr.Expr) bool {
		return expr.ProveGE0(norm(at(e, v, 1).Sub(e)), assume)
	}
	return lt(ra.Hi, at(rb.Lo, v, 1)) &&
		lt(rb.Hi, at(ra.Lo, v, 1)) &&
		nonDec(ra.Lo) && nonDec(rb.Lo)
}

func separatedDecreasing(ra, rb expr.Range, v string, assume expr.Assumptions, norm func(*expr.Expr) *expr.Expr) bool {
	lt := func(x, y *expr.Expr) bool {
		return expr.ProveGT0(norm(y.Sub(x)), assume)
	}
	nonInc := func(e *expr.Expr) bool {
		return expr.ProveGE0(norm(e.Sub(at(e, v, 1))), assume)
	}
	return lt(at(rb.Hi, v, 1), ra.Lo) &&
		lt(at(ra.Hi, v, 1), rb.Lo) &&
		nonInc(ra.Hi) && nonInc(rb.Hi)
}
