package deptest

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/sem"
)

type world struct {
	t    *testing.T
	info *sem.Info
	an   *Analyzer
}

func build(t *testing.T, src string, withProp bool) *world {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	mod := dataflow.ComputeMod(info)
	var prop *property.Analysis
	if withProp {
		prop = property.New(info, cfg.BuildHCG(prog), mod)
	}
	return &world{t: t, info: info, an: New(info, mod, prop)}
}

// loopN returns the n-th top-level DO loop of the main unit.
func (w *world) loopN(n int) *lang.DoStmt {
	w.t.Helper()
	count := 0
	var found *lang.DoStmt
	lang.WalkStmts(w.info.Program.Main.Body, func(s lang.Stmt) bool {
		if found != nil {
			return false
		}
		if d, ok := s.(*lang.DoStmt); ok {
			if count == n {
				found = d
				return false
			}
			count++
		}
		return true
	})
	if found == nil {
		w.t.Fatalf("loop %d not found", n)
	}
	return found
}

func (w *world) analyze(loop *lang.DoStmt) map[string]*Verdict {
	return w.an.AnalyzeLoop(w.info.Program.Main, loop)
}

func TestAffineIndependent(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real a(nmax)
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
end
`
	w := build(t, src, false)
	vs := w.analyze(w.loopN(0))
	v := vs["a"]
	if v == nil || !v.Independent {
		t.Fatalf("a(i) self-update should be independent: %+v", v)
	}
}

func TestAffineDependent(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real a(nmax)
  do i = 1, n
    a(i) = a(i - 1) + 1.0
  end do
end
`
	w := build(t, src, false)
	v := w.analyze(w.loopN(0))["a"]
	if v == nil || v.Independent {
		t.Fatalf("recurrence must be dependent: %+v", v)
	}
}

func TestGCDTest(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real a(nmax)
  do i = 1, n
    a(2 * i) = a(2 * i - 1) + 1.0
  end do
end
`
	w := build(t, src, false)
	v := w.analyze(w.loopN(0))["a"]
	if v == nil || !v.Independent {
		t.Fatalf("even/odd split should be independent: %+v", v)
	}
	if v.Test != TestAffine {
		t.Errorf("test = %q, want affine (GCD)", v.Test)
	}
}

func TestStridedWindows(t *testing.T) {
	// a(3*i) write vs a(3*i+1) read: windows [3i, 3i+1] separated.
	src := `
program p
  param nmax = 300
  integer n, i
  real a(nmax)
  do i = 1, n
    a(3 * i) = a(3 * i + 1)
  end do
end
`
	w := build(t, src, false)
	v := w.analyze(w.loopN(0))["a"]
	if v == nil || !v.Independent {
		t.Fatalf("strided disjoint accesses should be independent: %+v", v)
	}
}

func TestMultiDimOuterIndex(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i, j
  real z(nmax, nmax)
  do i = 1, n
    do j = 1, n
      z(i, j) = z(i, j) * 2.0
    end do
  end do
end
`
	w := build(t, src, false)
	v := w.analyze(w.loopN(0))["z"]
	if v == nil || !v.Independent {
		t.Fatalf("row-distinct accesses should be independent: %+v", v)
	}
}

func TestInnerLoopWindow(t *testing.T) {
	// Blocked access: a(n*i + j), j in [1:n]: windows [n*i+1, n*i+n]
	// cannot be proven separated without knowing n's sign... with the
	// assumption n >= 1 (loop executes), windows separate.
	src := `
program p
  param nmax = 10000
  integer n, i, j
  real a(nmax)
  do i = 1, n
    do j = 1, n
      a(n * i + j) = 1.0
    end do
  end do
end
`
	w := build(t, src, false)
	loop := w.loopN(0)
	v := w.analyze(loop)["a"]
	if v == nil || v.Independent {
		t.Fatalf("without sign knowledge of n this must stay dependent: %+v", v)
	}
	// Now grant n >= 1.
	w.an.Assume = w.an.Assume.With("n", expr.GT0)
	vs := w.an.AnalyzeLoop(w.info.Program.Main, loop)
	if v := vs["a"]; v == nil || !v.Independent {
		t.Fatalf("with n >= 1 the blocks are disjoint: %+v", v)
	}
}

// dyfesmSrc reproduces the Fig. 13 loop from DYFESM's SOLXDD: the
// offset–length test must disprove the dependence on x for the outer loop.
const dyfesmSrc = `
program dyfesm
  param nmax = 100
  param smax = 10000
  integer n, i, j, k
  integer pptr(nmax), iblen(nmax)
  real x(smax)
  integer t
  do i = 1, n
    iblen(i) = i
  end do
  pptr(1) = 1
  do i = 1, n
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  do i = 1, n
    do j = 2, iblen(i)
      do k = 1, j - 1
        x(pptr(i) + k - 1) = 0.0
      end do
    end do
    do j = 1, iblen(i) - 1
      do k = 1, j
        t = t + int(x(iblen(i) + pptr(i) + k - j - 1))
      end do
    end do
  end do
end
`

func TestOffsetLengthDYFESM(t *testing.T) {
	w := build(t, dyfesmSrc, true)
	loop := w.loopN(2) // the compute loop
	v := w.analyze(loop)["x"]
	if v == nil {
		t.Fatal("no verdict for x")
	}
	if !v.Independent {
		t.Fatalf("offset-length test should disprove the dependence: %+v", v)
	}
	if v.Test != TestOffsetLength {
		t.Errorf("test = %q, want offset-length", v.Test)
	}
	found := false
	for _, p := range v.Properties {
		if p == "closed-form-distance(pptr) = iblen(#k)" {
			found = true
		}
	}
	if !found {
		t.Errorf("properties: %v", v.Properties)
	}
}

func TestOffsetLengthFailsWithoutProp(t *testing.T) {
	w := build(t, dyfesmSrc, false)
	loop := w.loopN(2)
	v := w.analyze(loop)["x"]
	if v == nil || v.Independent {
		t.Fatalf("without property analysis the loop must stay dependent: %+v", v)
	}
}

func TestOffsetLengthKilledDistance(t *testing.T) {
	// pptr is overwritten between definition and use.
	src := `
program dyfesmk
  param nmax = 100
  param smax = 10000
  integer n, i, j
  integer pptr(nmax), iblen(nmax)
  real x(smax)
  pptr(1) = 1
  do i = 1, n
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  pptr(2) = 1
  do i = 1, n
    do j = 1, iblen(i)
      x(pptr(i) + j - 1) = 0.0
    end do
  end do
end
`
	w := build(t, src, true)
	loop := w.loopN(1)
	v := w.analyze(loop)["x"]
	if v == nil || v.Independent {
		t.Fatalf("clobbered offset array must stay dependent: %+v", v)
	}
}

func TestInjectiveTest(t *testing.T) {
	src := `
program inj
  param nmax = 100
  integer n, p, q, i, j
  real x(nmax), y(nmax)
  integer ind(nmax)
  q = 0
  do i = 1, p
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  do j = 1, q
    y(ind(j)) = y(ind(j)) + 1.0
  end do
end
`
	w := build(t, src, true)
	loop := w.loopN(1)
	v := w.analyze(loop)["y"]
	if v == nil || !v.Independent {
		t.Fatalf("injective subscripts should be independent: %+v", v)
	}
	if v.Test != TestInjective {
		t.Errorf("test = %q, want injective", v.Test)
	}
}

func TestInjectiveFailsWithoutGather(t *testing.T) {
	src := `
program noinj
  param nmax = 100
  integer n, q, j
  real y(nmax)
  integer ind(nmax)
  do j = 1, q
    y(ind(j)) = y(ind(j)) + 1.0
  end do
end
`
	w := build(t, src, true)
	v := w.analyze(w.loopN(0))["y"]
	if v == nil || v.Independent {
		t.Fatalf("unproven index array must stay dependent: %+v", v)
	}
}

func TestCFVTest(t *testing.T) {
	// TRFD-like: ia(i) = i*(i-1)/2 is strictly increasing with gaps >=
	// the inner extent, so x(ia(i)+j) windows are disjoint.
	src := `
program trfd
  param nmax = 50
  param smax = 10000
  integer n, i, j
  integer ia(nmax)
  real x(smax)
  do i = 1, n
    ia(i) = i * (i - 1) / 2
  end do
  do i = 1, n
    do j = 1, i
      x(ia(i) + j) = 1.0
    end do
  end do
end
`
	w := build(t, src, true)
	loop := w.loopN(1)
	v := w.analyze(loop)["x"]
	if v == nil || !v.Independent {
		t.Fatalf("closed-form value substitution should disprove the dependence: %+v", v)
	}
	if v.Test != TestCFV {
		t.Errorf("test = %q, want closed-form", v.Test)
	}
}

func TestCallMakesUnanalyzable(t *testing.T) {
	src := `
program withcall
  param nmax = 100
  integer n, i
  real a(nmax)
  do i = 1, n
    a(i) = 0.0
    call touch
  end do
end
subroutine touch
  a(1) = 1.0
end
`
	w := build(t, src, false)
	v := w.analyze(w.loopN(0))["a"]
	if v == nil || v.Independent {
		t.Fatalf("array modified by a callee must stay dependent: %+v", v)
	}
}

func TestReadOnlyArrayOmitted(t *testing.T) {
	src := `
program ro
  param nmax = 100
  integer n, i
  real a(nmax), b(nmax)
  do i = 1, n
    a(i) = b(i)
  end do
end
`
	w := build(t, src, false)
	vs := w.analyze(w.loopN(0))
	if _, present := vs["b"]; present {
		t.Error("read-only arrays need no verdict")
	}
	if v := vs["a"]; v == nil || !v.Independent {
		t.Errorf("a: %+v", v)
	}
}

func TestSimpleOffsetLength(t *testing.T) {
	src := `
program sol
  param nmax = 100
  param smax = 10000
  integer n, i, j
  integer pptr(nmax), iblen(nmax)
  real x(smax)
  do i = 1, n
    iblen(i) = 2 + mod(i, 4)
  end do
  pptr(1) = 1
  do i = 1, n
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  do i = 1, n
    do j = 1, iblen(i)
      x(pptr(i) + j - 1) = real(i)
    end do
  end do
end
`
	w := build(t, src, true)
	loop := w.loopN(2)
	ok, props := w.an.SimpleOffsetLength(w.info.Program.Main, loop, "x")
	if !ok {
		t.Fatalf("simple offset-length should prove independence")
	}
	if len(props) == 0 {
		t.Error("expected property evidence")
	}

	// A window reaching past the block length must fail: x(pptr(i)+j)
	// with j up to iblen(i) touches the NEXT block's first element.
	src2 := `
program solbad
  param nmax = 100
  param smax = 10000
  integer n, i, j
  integer pptr(nmax), iblen(nmax)
  real x(smax)
  do i = 1, n
    iblen(i) = 2 + mod(i, 4)
  end do
  pptr(1) = 1
  do i = 1, n
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  do i = 1, n
    do j = 1, iblen(i)
      x(pptr(i) + j) = real(i)
    end do
  end do
end
`
	w2 := build(t, src2, true)
	loop2 := w2.loopN(2)
	if ok, _ := w2.an.SimpleOffsetLength(w2.info.Program.Main, loop2, "x"); ok {
		t.Error("overhanging window must fail the simple test")
	}
}

func TestSimpleOffsetLengthRejectsMixedPointers(t *testing.T) {
	src := `
program solmix
  param nmax = 100
  param smax = 10000
  integer n, i
  integer pptr(nmax), qptr(nmax), iblen(nmax)
  real x(smax)
  do i = 1, n
    x(pptr(i) + 1) = x(qptr(i) + 1)
  end do
end
`
	w := build(t, src, true)
	loop := w.loopN(0)
	if ok, _ := w.an.SimpleOffsetLength(w.info.Program.Main, loop, "x"); ok {
		t.Error("two different offset arrays must fail")
	}
}
