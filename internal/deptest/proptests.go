package deptest

import (
	"sort"

	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/section"
)

// loopRange returns the index range of the outer loop, normalizing negative
// constant steps.
func loopRange(in *expr.Interner, loop *lang.DoStmt) (lo, hi *expr.Expr, ok bool) {
	loE, hiE := in.FromAST(loop.Lo), in.FromAST(loop.Hi)
	if loop.Step == nil {
		return loE, hiE, true
	}
	c, isConst := in.FromAST(loop.Step).IsConst()
	switch {
	case !isConst || c == 0:
		return nil, nil, false
	case c > 0:
		return loE, hiE, true
	default:
		return hiE, loE, true
	}
}

// atomFor builds the symbolic atom array(sub). The ArrayRef is a fresh
// throwaway node, so it bypasses the per-node memo and goes straight to the
// canonical-key table (nil-safe).
func atomFor(in *expr.Interner, array string, sub *expr.Expr) *expr.Expr {
	return in.Intern(expr.FromAST(&lang.ArrayRef{Name: array, Args: []lang.Expr{sub.ToAST()}}))
}

// injectiveIndependent handles subscripts of the form p(i) on both sides
// with i the outer loop variable: if the index array p is injective over
// the accessed section, different iterations touch different elements.
func (a *Analyzer) injectiveIndependent(fa, fb *expr.Expr, v string, loop *lang.DoStmt, A, B ref) (bool, []string) {
	if !fa.Equal(fb) {
		return false, nil
	}
	// The subscript must be exactly one index-array element p(v) with
	// coefficient 1 plus an optional constant (a constant offset keeps
	// injectivity).
	arrays := arrayAtomNames(fa)
	if len(arrays) != 1 {
		return false, nil
	}
	p := arrays[0]
	atomSubs := fa.ArrayAtoms(p)
	if len(atomSubs) != 1 {
		return false, nil
	}
	var key string
	var arg *expr.Expr
	for k, s := range atomSubs {
		key, arg = k, s
	}
	if fa.CoefOf(key) != 1 {
		return false, nil
	}
	rest := fa.WithoutTerm(key)
	if _, isConst := rest.IsConst(); !isConst {
		return false, nil
	}
	// The argument must be the loop variable itself.
	if av, isVar := arg.IsVar(); !isVar || av != v {
		return false, nil
	}
	lo, hi, ok := loopRange(a.In, loop)
	if !ok {
		return false, nil
	}
	prop, ok := a.verifyCached(section.New(p, lo, hi), A.stmt,
		func() property.Property { return property.NewInjective(p) })
	if !ok {
		return false, nil
	}
	return true, []string{prop.String()}
}

// arrayAtomNames lists the distinct array names appearing as atoms of e.
func arrayAtomNames(e *expr.Expr) []string {
	seen := map[string]bool{}
	var out []string
	lang.WalkExpr(e.ToAST(), func(x lang.Expr) bool {
		if ar, ok := x.(*lang.ArrayRef); ok && !ar.Intrinsic && !seen[ar.Name] {
			seen[ar.Name] = true
			out = append(out, ar.Name)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// cfvIndependent substitutes closed-form values for index-array atoms in
// the subscripts and retries the separation tests on the now-affine
// expressions.
func (a *Analyzer) cfvIndependent(fa, fb *expr.Expr, v string, loop *lang.DoStmt, A, B ref, assume expr.Assumptions, bodyMod *dataflow.ModSet) (bool, TestKind, []string) {
	arrays := union2(arrayAtomNames(fa), arrayAtomNames(fb))
	if len(arrays) == 0 {
		return false, TestNone, nil
	}
	lo, hi, okR := loopRange(a.In, loop)
	if !okR {
		return false, TestNone, nil
	}
	outerEnv := expr.Env{v: expr.NewRange(lo, hi)}

	var props []string
	nfa, nfb := fa, fb
	for _, ia := range arrays {
		qsec := a.atomArgHull(ia, []*expr.Expr{fa, fb}, []expr.Env{A.env, B.env}, outerEnv)
		if qsec == nil {
			return false, TestNone, nil
		}
		iaName := ia
		p, ok := a.verifyCached(qsec, A.stmt,
			func() property.Property { return property.NewClosedFormValue(iaName) })
		prop, _ := p.(*property.ClosedFormValue)
		if !ok || prop == nil || prop.Value == nil {
			return false, TestNone, nil
		}
		props = append(props, prop.String())
		nfa = substCFV(nfa, ia, prop)
		nfb = substCFV(nfb, ia, prop)
	}
	// The closed forms replaced the index-array atoms; anything still
	// tainted by body-modified symbols disqualifies the comparison.
	if subscriptTainted(nfa, v, A.env, bodyMod) || subscriptTainted(nfb, v, B.env, bodyMod) {
		return false, TestNone, nil
	}
	if a.windowsSeparated(nfa, nfb, v, A.env, B.env, assume) {
		return true, TestCFV, props
	}
	if a.gcdIndependent(nfa, nfb, v, A.env, B.env) {
		return true, TestCFV, props
	}
	return false, TestNone, nil
}

// substCFV replaces every atom ia(s) of e by the derived closed form
// Value(s).
func substCFV(e *expr.Expr, ia string, prop *property.ClosedFormValue) *expr.Expr {
	for key, sub := range e.ArrayAtoms(ia) {
		if val := prop.ValueAt(sub); val != nil {
			e = e.SubstAtom(key, val)
		}
	}
	return e
}

// atomArgHull computes a section of the index array covering every
// subscript with which it is accessed in the given expressions, bounded
// over the inner and outer loop environments.
func (a *Analyzer) atomArgHull(ia string, exprs []*expr.Expr, envs []expr.Env, outer expr.Env) *section.Section {
	var lo, hi *expr.Expr
	for i, e := range exprs {
		for _, arg := range e.ArrayAtoms(ia) {
			env := outer
			for k, r := range envs[i] {
				env = env.With(k, r)
			}
			r, ok := expr.Bounds(arg, env, a.Assume)
			if !ok || r.Lo == nil || r.Hi == nil {
				return nil
			}
			lo = provableMin(lo, r.Lo, a.Assume)
			hi = provableMax(hi, r.Hi, a.Assume)
			if lo == nil || hi == nil {
				return nil
			}
		}
	}
	if lo == nil || hi == nil {
		return nil
	}
	return section.New(ia, lo, hi)
}

func provableMin(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return x
	case expr.ProveLE(y, x, a):
		return y
	default:
		return nil
	}
}

func provableMax(x, y *expr.Expr, a expr.Assumptions) *expr.Expr {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	case expr.ProveLE(x, y, a):
		return y
	case expr.ProveLE(y, x, a):
		return x
	default:
		return nil
	}
}

func union2(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// SimpleOffsetLength is the stand-alone test of §5.1.5 for subscripts of
// the exact form  a(ptr(i) + g)  with g affine in the inner loop variables:
// both references must use the same offset array applied to the outer loop
// variable, with inner extents bounded by a length array that is the
// offset's closed-form distance. It avoids the general window machinery
// (no symbolic hull, no rewrite chains), trading generality for speed —
// "it could be used when the user wanted to avoid the overhead of the
// extended range test, though it was less general".
func (a *Analyzer) SimpleOffsetLength(u *lang.Unit, loop *lang.DoStmt, arr string) (bool, []string) {
	if a.Prop == nil {
		return false, nil
	}
	refs, unanalyzable := a.collectRefs(u, loop)
	if unanalyzable[arr] {
		return false, nil
	}
	rs := refs[arr]
	if len(rs) == 0 {
		return false, nil
	}
	v := loop.Var.Name

	// Every reference must be 1-D of the form ptr(v) + g, same ptr.
	ptr := ""
	type window struct {
		g   *expr.Expr
		env expr.Env
	}
	var wins []window
	for _, r := range rs {
		if len(r.subs) != 1 {
			return false, nil
		}
		e := r.subs[0]
		atoms := e.ArrayAtoms("")
		_ = atoms
		names := arrayAtomNames(e)
		if len(names) != 1 {
			return false, nil
		}
		if ptr == "" {
			ptr = names[0]
		} else if ptr != names[0] {
			return false, nil
		}
		pa := e.ArrayAtoms(ptr)
		if len(pa) != 1 {
			return false, nil
		}
		var key string
		var sub *expr.Expr
		for k, s := range pa {
			key, sub = k, s
		}
		if sv, isVar := sub.IsVar(); !isVar || sv != v || e.CoefOf(key) != 1 {
			return false, nil
		}
		g := e.WithoutTerm(key)
		if g.MentionsVar(v) {
			return false, nil
		}
		wins = append(wins, window{g: g, env: r.env})
	}

	// Derive the closed-form distance of ptr and check the per-iteration
	// extents stay below it: 0 <= g < dist(v) for every reference.
	lo, hi, okR := loopRange(a.In, loop)
	if !okR {
		return false, nil
	}
	qsec := section.New(ptr, lo, hi)
	var first lang.Stmt
	for _, r := range rs {
		first = r.stmt
		break
	}
	pc, ok := a.verifyCached(qsec, first,
		func() property.Property { return property.NewClosedFormDistance(ptr) })
	prop, _ := pc.(*property.ClosedFormDistance)
	if !ok || prop == nil || prop.Dist == nil {
		return false, nil
	}
	props := []string{prop.String()}
	distAtV := prop.DistAt(expr.Var(v))
	assume := a.envAssumptions(loop, rs[0], rs[0])
	for _, da := range arrayAtomNames(prop.Dist) {
		daName := da
		bp, okb := a.verifyCached(section.New(da, lo, hi), first,
			func() property.Property { return property.NewBounds(daName) })
		bprop, _ := bp.(*property.Bounds)
		if !okb || bprop == nil || bprop.Lo == nil || !expr.ProveGE0(bprop.Lo, assume) {
			return false, nil
		}
		assume = assume.With(da+"(*)", expr.GE0)
		props = append(props, bprop.String())
	}
	for _, w := range wins {
		r, okB := expr.Bounds(w.g, w.env, assume)
		if !okB || r.Lo == nil || r.Hi == nil {
			return false, nil
		}
		if !expr.ProveGE0(r.Lo, assume) || !expr.ProveLT(r.Hi, distAtV, assume) {
			return false, nil
		}
	}
	return true, dedup(props)
}

// offsetLengthIndependent is the offset–length test of §3.2.7: subscripts
// built from an offset array (pptr) and a length array (iblen), such as
//
//	s1: x(pptr(i)+k-1)            k in [1 : j-1],  j in [2 : iblen(i)]
//	s2: x(iblen(i)+pptr(i)+k-j-1)
//
// have per-iteration windows [pptr(i)+c, pptr(i)+iblen(i)+c']; the windows
// are separated across iterations when pptr has closed-form distance
// iblen and iblen is non-negative.
func (a *Analyzer) offsetLengthIndependent(fa, fb *expr.Expr, v string, loop *lang.DoStmt, A, B ref, assume expr.Assumptions) (bool, []string) {
	arrays := union2(arrayAtomNames(fa), arrayAtomNames(fb))
	if len(arrays) == 0 {
		return false, nil
	}
	lo, hi, okR := loopRange(a.In, loop)
	if !okR {
		return false, nil
	}
	outerEnv := expr.Env{v: expr.NewRange(lo, hi)}

	var props []string
	norm := func(e *expr.Expr) *expr.Expr { return e }

	// Derive a closed-form distance for every candidate offset array, and
	// non-negativity for its distance arrays.
	matched := false
	for _, off := range arrays {
		// Pairs needed: the subscripts with which off is accessed (the
		// +1-shifted ones reduce back into this range).
		qsec := a.atomArgHull(off, []*expr.Expr{fa, fb}, []expr.Env{A.env, B.env}, outerEnv)
		if qsec == nil {
			continue
		}
		offName := off
		pc, ok := a.verifyCached(qsec, A.stmt,
			func() property.Property { return property.NewClosedFormDistance(offName) })
		prop, _ := pc.(*property.ClosedFormDistance)
		if !ok || prop == nil || prop.Dist == nil {
			continue
		}
		// The distance must be provably non-negative: either a constant,
		// or built from arrays proven non-negative by a bounds query.
		distOK := true
		if c, isConst := prop.Dist.IsConst(); isConst {
			distOK = c >= 0
		} else {
			for _, da := range arrayAtomNames(prop.Dist) {
				bsec := a.atomArgHull(da, []*expr.Expr{fa, fb}, []expr.Env{A.env, B.env}, outerEnv)
				if bsec == nil {
					// The distance array may not appear in the
					// subscripts at all; query the pair hull instead.
					bsec = qsec.Clone()
					bsec.Array = da
				}
				daName := da
				bpc, okb := a.verifyCached(bsec, A.stmt,
					func() property.Property { return property.NewBounds(daName) })
				bp, _ := bpc.(*property.Bounds)
				if !okb || bp == nil || bp.Lo == nil || !expr.ProveGE0(bp.Lo, assume) {
					distOK = false
					break
				}
				assume = assume.With(da+"(*)", expr.GE0)
				props = append(props, bp.String())
			}
		}
		if !distOK {
			continue
		}
		props = append(props, prop.String())
		matched = true

		prev := norm
		p := prop
		norm = func(e *expr.Expr) *expr.Expr {
			return cfdRewrite(a.In, prev(e), offName, p)
		}
	}
	if !matched {
		return false, nil
	}

	ra, ok1 := expr.Bounds(fa, A.env, assume)
	rb, ok2 := expr.Bounds(fb, B.env, assume)
	if !ok1 || !ok2 || ra.Lo == nil || ra.Hi == nil || rb.Lo == nil || rb.Hi == nil {
		return false, nil
	}
	if separatedIncreasing(ra, rb, v, assume, norm) ||
		separatedDecreasing(ra, rb, v, assume, norm) {
		return true, dedup(props)
	}
	return false, nil
}

// recurrenceWindowIndependent handles the compressed-format idiom where the
// subscripts themselves are plain inner-loop variables and every irregular
// access happens through the inner loop's BOUNDS:
//
//	do i = 1, n
//	  do j = row(i), row(i+1)-1
//	    a(j) = ...
//
// The per-iteration windows are [row(i), row(i+1)-1]; they never overlap
// across iterations when row is monotonically non-decreasing — exactly the
// fact the definition-site recurrence derivation proves from the loop that
// fills row (a prefix sum). Differences of monotone-array atoms in the
// separation conditions are then discharged by telescoping (monoNorm).
// Offset arrays without a monotonicity proof fall back to the closed-form-
// distance rewrite of the offset–length test.
func (a *Analyzer) recurrenceWindowIndependent(fa, fb *expr.Expr, v string, loop *lang.DoStmt, A, B ref, assume expr.Assumptions) (bool, []string) {
	// Subscripts containing index-array atoms directly are the offset–
	// length test's territory; this test wants the atoms in the windows.
	if len(arrayAtomNames(fa)) != 0 || len(arrayAtomNames(fb)) != 0 {
		return false, nil
	}
	lo, hi, okR := loopRange(a.In, loop)
	if !okR {
		return false, nil
	}
	outerEnv := expr.Env{v: expr.NewRange(lo, hi)}

	ra, ok1 := expr.Bounds(fa, A.env, assume)
	rb, ok2 := expr.Bounds(fb, B.env, assume)
	if !ok1 || !ok2 || ra.Lo == nil || ra.Hi == nil || rb.Lo == nil || rb.Hi == nil {
		return false, nil
	}
	offs := union2(union2(arrayAtomNames(ra.Lo), arrayAtomNames(ra.Hi)),
		union2(arrayAtomNames(rb.Lo), arrayAtomNames(rb.Hi)))
	if len(offs) == 0 {
		return false, nil // affine windows: the plain range test's territory
	}

	// The atom hull must cover every subscript the separation conditions
	// apply to the offset arrays: the window bounds and the +1-shifted
	// LOWER bounds (only separatedIncreasing below shifts, and only the
	// lower ends; including shifted upper bounds would widen the hull past
	// what a fill loop generates).
	exprs := []*expr.Expr{ra.Lo, ra.Hi, rb.Lo, rb.Hi, at(ra.Lo, v, 1), at(rb.Lo, v, 1)}
	envs := []expr.Env{A.env, A.env, B.env, B.env, A.env, B.env}

	var props []string
	norm := func(e *expr.Expr) *expr.Expr { return e }
	for _, off := range offs {
		hull := a.atomArgHull(off, exprs, envs, outerEnv)
		if hull == nil {
			return false, nil
		}
		offName := off
		mc, okM := a.verifyCached(hull, A.stmt,
			func() property.Property { return property.NewMonotonic(offName) })
		if mono, _ := mc.(*property.Monotonic); okM && mono != nil {
			props = append(props, mono.String())
			strict := mono.Strict
			prev := norm
			norm = func(e *expr.Expr) *expr.Expr {
				return monoNorm(a.In, prev(e), offName, strict)
			}
			continue
		}
		// Monotonicity unproven: fall back to the closed-form-distance
		// rewrite for this offset array (the offset–length machinery),
		// requiring a provably nonnegative distance.
		pc, okD := a.verifyCached(hull, A.stmt,
			func() property.Property { return property.NewClosedFormDistance(offName) })
		prop, _ := pc.(*property.ClosedFormDistance)
		if !okD || prop == nil || prop.Dist == nil {
			return false, nil
		}
		if c, isConst := prop.Dist.IsConst(); isConst {
			if c < 0 {
				return false, nil
			}
		} else {
			for _, da := range arrayAtomNames(prop.Dist) {
				bsec := hull.Clone()
				bsec.Array = da
				daName := da
				bpc, okb := a.verifyCached(bsec, A.stmt,
					func() property.Property { return property.NewBounds(daName) })
				bp, _ := bpc.(*property.Bounds)
				if !okb || bp == nil || bp.Lo == nil || !expr.ProveGE0(bp.Lo, assume) {
					return false, nil
				}
				assume = assume.With(da+"(*)", expr.GE0)
				props = append(props, bp.String())
			}
		}
		props = append(props, prop.String())
		prev := norm
		p := prop
		norm = func(e *expr.Expr) *expr.Expr {
			return cfdRewrite(a.In, prev(e), offName, p)
		}
	}

	// Only the increasing direction: the hull above shifts lower bounds by
	// +1, which is what these three conditions need (the decreasing
	// direction would shift upper bounds, widening the hull).
	if separatedIncreasing(ra, rb, v, assume, norm) {
		return true, dedup(props)
	}
	return false, nil
}

// monoNorm lower-bounds differences of monotone-array atoms by telescoping:
// a term pair +c*off(s1) - c*off(s2) with s1 - s2 = k >= 1 is bounded below
// by c*k when off is strictly increasing (each of the k steps is at least
// 1) and by 0 when merely non-decreasing, so the pair is replaced by that
// bound. Sound only inside ProveGE0/ProveGT0 goals, where substituting a
// provable lower bound for a subexpression preserves the implication; both
// separation predicates use norm exclusively that way.
func monoNorm(in *expr.Interner, e *expr.Expr, off string, strict bool) *expr.Expr {
	for iter := 0; iter < 8; iter++ {
		atoms := e.ArrayAtoms(off)
		if len(atoms) < 2 {
			return e
		}
		keys := make([]string, 0, len(atoms))
		for k := range atoms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		changed := false
		for _, ks := range keys {
			cs := e.CoefOf(ks)
			if cs <= 0 {
				continue
			}
			for _, kt := range keys {
				if ks == kt {
					continue
				}
				ct := e.CoefOf(kt)
				if ct >= 0 {
					continue
				}
				dk, ok := atoms[ks].DiffConst(atoms[kt])
				if !ok || dk < 1 {
					continue
				}
				c := cs
				if -ct < c {
					c = -ct
				}
				lb := int64(0)
				if strict {
					lb = dk
				}
				e = e.Sub(atomFor(in, off, atoms[ks]).MulConst(c)).
					Add(atomFor(in, off, atoms[kt]).MulConst(c)).
					AddConst(c * lb)
				changed = true
				break
			}
			if changed {
				break
			}
		}
		if !changed {
			return e
		}
	}
	return e
}

// cfdRewrite eliminates shifted offset-array atoms using the derived
// closed-form distance: off(s) with another atom off(t), s = t+1, becomes
// off(t) + Dist(t). The rewrite iterates to resolve chains off(t+2) →
// off(t+1) → off(t).
func cfdRewrite(in *expr.Interner, e *expr.Expr, off string, prop *property.ClosedFormDistance) *expr.Expr {
	for iter := 0; iter < 8; iter++ {
		atoms := e.ArrayAtoms(off)
		if len(atoms) < 2 {
			return e
		}
		keys := make([]string, 0, len(atoms))
		for k := range atoms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		changed := false
		for _, ks := range keys {
			ss := atoms[ks]
			for _, kt := range keys {
				if ks == kt {
					continue
				}
				st := atoms[kt]
				if d, ok := ss.DiffConst(st); ok && d == 1 {
					repl := atomFor(in, off, st).Add(prop.DistAt(st))
					e = e.SubstAtom(ks, repl)
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
		if !changed {
			return e
		}
	}
	return e
}
