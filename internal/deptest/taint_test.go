package deptest

import "testing"

// TestWindowTaintedByBodyModifiedScalar: w changes inside each iteration,
// so the symbolic window [w+i, w+i] does not bound iteration i's accesses;
// claiming separation from lt(w+i, w+i+1) would be unsound.
func TestWindowTaintedByBodyModifiedScalar(t *testing.T) {
	src := `
program taint
  param nmax = 400
  integer n, i, w
  real x(nmax)
  do i = 1, n
    w = i * 10
    do while (w > 0)
      x(w + i) = 1.0
      w = w - 3
    end do
  end do
end
`
	w := build(t, src, false)
	v := w.analyze(w.loopN(0))["x"]
	if v == nil || v.Independent {
		t.Fatalf("UNSOUND: body-modified scalar in subscript must block independence: %+v", v)
	}
}

// TestWindowTaintedByBodyModifiedArray: the index array is rewritten every
// iteration; its atoms are not stable symbols either.
func TestWindowTaintedByBodyModifiedArray(t *testing.T) {
	src := `
program tainta
  param nmax = 100
  integer n, i, j
  integer ind(nmax)
  real x(nmax)
  do i = 1, n
    do j = 1, 4
      ind(j) = mod(i * j, nmax) + 1
    end do
    do j = 1, 4
      x(ind(j) + j) = real(i)
    end do
  end do
end
`
	w := build(t, src, false)
	v := w.analyze(w.loopN(0))["x"]
	if v == nil || v.Independent {
		t.Fatalf("UNSOUND: body-modified index array must block raw window separation: %+v", v)
	}
}
