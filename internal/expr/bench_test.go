package expr

import (
	"testing"

	"repro/internal/lang"
)

func benchExprAST(b *testing.B, src string) lang.Expr {
	b.Helper()
	prog, err := lang.Parse("program t\n zz9 = " + src + "\nend\n")
	if err != nil {
		b.Fatalf("parse %q: %v", src, err)
	}
	return prog.Main.Body[0].(*lang.AssignStmt).Rhs
}

const benchSrc = "2*i + 3*j - a(i+1) + n*i - 4"

// BenchmarkEqualLegacy measures the pre-interning Equal implementation,
// e.Sub(o).IsZero(): a full clone-and-merge per comparison.
func BenchmarkEqualLegacy(b *testing.B) {
	x := FromAST(benchExprAST(b, benchSrc))
	y := FromAST(benchExprAST(b, benchSrc))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Sub(y).IsZero() {
			b.Fatal("not equal")
		}
	}
}

// BenchmarkEqualStructural measures Equal on uninterned expressions: the
// zero-allocation structural fast path.
func BenchmarkEqualStructural(b *testing.B) {
	x := FromAST(benchExprAST(b, benchSrc))
	y := FromAST(benchExprAST(b, benchSrc))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("not equal")
		}
	}
}

// BenchmarkEqualInterned measures Equal on interned expressions: a cached
// canonical-key comparison (pointer comparison when shared).
func BenchmarkEqualInterned(b *testing.B) {
	in := NewInterner()
	x := in.FromAST(benchExprAST(b, benchSrc))
	y := in.FromAST(benchExprAST(b, benchSrc))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("not equal")
		}
	}
}

// BenchmarkStringRender measures the canonical rendering of an uninterned
// expression: sort the term keys and rebuild the string every call.
func BenchmarkStringRender(b *testing.B) {
	x := FromAST(benchExprAST(b, benchSrc))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.render()
	}
}

// BenchmarkStringCached measures String on an interned expression: a field
// read.
func BenchmarkStringCached(b *testing.B) {
	in := NewInterner()
	x := in.FromAST(benchExprAST(b, benchSrc))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}

// BenchmarkFromAST measures repeated conversion of one AST node without an
// interner.
func BenchmarkFromAST(b *testing.B) {
	node := benchExprAST(b, benchSrc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromAST(node)
	}
}

// BenchmarkFromASTMemoized measures repeated conversion of one AST node
// through the interner's per-node memo.
func BenchmarkFromASTMemoized(b *testing.B) {
	in := NewInterner()
	node := benchExprAST(b, benchSrc)
	in.FromAST(node) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.FromAST(node)
	}
}
