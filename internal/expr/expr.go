// Package expr implements the symbolic integer expression algebra used by
// the array analyses: canonical sum-of-products form, simplification,
// substitution, symbolic range computation and conservative sign proofs.
//
// Expressions are canonicalised into
//
//	c0 + Σ coef_t · Π atom^pow
//
// where atoms are opaque symbolic factors: scalar variables, array elements
// such as offset(i+1), or whole subexpressions the algebra cannot see
// through (integer division, intrinsic calls, real-typed values). Two
// expressions are equal iff their canonical forms are identical, which gives
// the algebra the decision power needed by the range test and the
// offset–length test of Lin & Padua (PLDI 2000, §3.2.7).
package expr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// factor is one atom raised to a positive power.
type factor struct {
	atom string
	pow  int
}

// term is coef · Π factors, with factors sorted by atom name.
type term struct {
	coef    rat
	factors []factor
}

func (t *term) key() string {
	parts := make([]string, len(t.factors))
	for i, f := range t.factors {
		if f.pow == 1 {
			parts[i] = f.atom
		} else {
			parts[i] = fmt.Sprintf("%s^%d", f.atom, f.pow)
		}
	}
	return strings.Join(parts, "*")
}

// Expr is a symbolic integer expression in canonical form. The zero value
// is the constant 0. Exprs are immutable: all operations return new values.
type Expr struct {
	konst rat
	terms map[string]*term
	// atoms maps atom names to a representative AST so expressions can be
	// rebuilt and substituted into.
	atoms map[string]lang.Expr
	// ckey caches the canonical rendering (String). It is written by the
	// package init for the shared constants and by Interner.Intern —
	// never lazily inside String, which would race when batch
	// compilations share Zero/One across goroutines. clone deliberately
	// does not copy it: a clone exists to be mutated.
	ckey string
}

// Zero is the constant 0.
var Zero = Const(0)

// One is the constant 1.
var One = Const(1)

func init() {
	// The shared constants cross compilation (and goroutine) boundaries;
	// their keys must be set before any concurrent use.
	Zero.ckey = Zero.render()
	One.ckey = One.render()
}

// Const returns the constant expression c.
func Const(c int64) *Expr { return &Expr{konst: ratInt(c)} }

// constRat returns a constant expression with a rational value.
func constRat(r rat) *Expr { return &Expr{konst: r} }

// Var returns the expression for the scalar variable name.
func Var(name string) *Expr {
	return &Expr{
		konst: ratInt(0),
		terms: map[string]*term{name: {coef: ratInt(1), factors: []factor{{name, 1}}}},
		atoms: map[string]lang.Expr{name: &lang.Ident{Name: name}},
	}
}

// atomExpr returns an expression that is a single opaque atom.
func atomExpr(key string, ast lang.Expr) *Expr {
	return &Expr{
		konst: ratInt(0),
		terms: map[string]*term{key: {coef: ratInt(1), factors: []factor{{key, 1}}}},
		atoms: map[string]lang.Expr{key: ast},
	}
}

// IsConst reports whether e is a constant integer, and returns it.
// (Rational constants, which can only arise transiently, report false.)
func (e *Expr) IsConst() (int64, bool) {
	if len(e.terms) == 0 && e.konst.isInt() {
		return e.konst.n, true
	}
	return 0, false
}

// IsZero reports whether e is the constant 0.
func (e *Expr) IsZero() bool { return len(e.terms) == 0 && e.konst.isZero() }

// ConstPart returns the integral constant term of e (0 if the constant
// part is not an integer).
func (e *Expr) ConstPart() int64 {
	if e.konst.isInt() {
		return e.konst.n
	}
	return 0
}

// IsVar reports whether e is exactly one scalar variable (coefficient 1),
// returning its name.
func (e *Expr) IsVar() (string, bool) {
	if !e.konst.isZero() || len(e.terms) != 1 {
		return "", false
	}
	for _, t := range e.terms {
		if t.coef == ratInt(1) && len(t.factors) == 1 && t.factors[0].pow == 1 {
			a := t.factors[0].atom
			if _, ok := e.atoms[a].(*lang.Ident); ok {
				return a, true
			}
		}
	}
	return "", false
}

// Atoms returns the sorted atom names appearing in e.
func (e *Expr) Atoms() []string {
	seen := map[string]bool{}
	for _, t := range e.terms {
		for _, f := range t.factors {
			seen[f.atom] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HasAtom reports whether the atom named a occurs in e (as a factor; atoms
// hidden inside other atoms' ASTs are found by MentionsVar instead).
func (e *Expr) HasAtom(a string) bool {
	for _, t := range e.terms {
		for _, f := range t.factors {
			if f.atom == a {
				return true
			}
		}
	}
	return false
}

// MentionsVar reports whether the scalar variable name occurs anywhere in e,
// including inside opaque atoms such as array subscripts.
func (e *Expr) MentionsVar(name string) bool {
	for _, t := range e.terms {
		for _, f := range t.factors {
			if f.atom == name {
				return true
			}
			if ast, ok := e.atoms[f.atom]; ok && astMentions(ast, name) {
				return true
			}
		}
	}
	return false
}

func astMentions(ast lang.Expr, name string) bool {
	found := false
	lang.WalkExpr(ast, func(x lang.Expr) bool {
		if id, ok := x.(*lang.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func (e *Expr) clone() *Expr {
	c := &Expr{konst: e.konst}
	if len(e.terms) > 0 {
		c.terms = make(map[string]*term, len(e.terms))
		for k, t := range e.terms {
			nt := &term{coef: t.coef, factors: append([]factor(nil), t.factors...)}
			c.terms[k] = nt
		}
	}
	if len(e.atoms) > 0 {
		c.atoms = make(map[string]lang.Expr, len(e.atoms))
		for k, v := range e.atoms {
			c.atoms[k] = v
		}
	}
	return c
}

func (e *Expr) mergeAtoms(other *Expr) {
	if len(other.atoms) == 0 {
		return
	}
	if e.atoms == nil {
		e.atoms = map[string]lang.Expr{}
	}
	for k, v := range other.atoms {
		if _, ok := e.atoms[k]; !ok {
			e.atoms[k] = v
		}
	}
}

func (e *Expr) addTerm(t *term) {
	if t.coef.isZero() {
		return
	}
	if e.terms == nil {
		e.terms = map[string]*term{}
	}
	k := t.key()
	if old, ok := e.terms[k]; ok {
		old.coef = old.coef.add(t.coef)
		if old.coef.isZero() {
			delete(e.terms, k)
		}
		return
	}
	e.terms[k] = &term{coef: t.coef, factors: append([]factor(nil), t.factors...)}
}

// hasOverflow reports whether any coefficient of e overflowed int64
// during the operation that produced it.
func (e *Expr) hasOverflow() bool {
	if e.konst.invalid() {
		return true
	}
	for _, t := range e.terms {
		if t.coef.invalid() {
			return true
		}
	}
	return false
}

// degrade replaces an arithmetic result whose coefficients overflowed
// int64 with a single opaque atom standing for the whole value: the value
// is well-defined, merely unrepresentable, so it is treated like any other
// construct the algebra cannot see through (a sound "unknown"). The atom
// key is built from the operands' canonical keys, so identical operations
// on identical values degrade to identical atoms and equality stays exact.
func degrade(op lang.Op, sym string, x, y *Expr) *Expr {
	key := "{ovf:(" + x.String() + ")" + sym + "(" + y.String() + ")}"
	return atomExpr(key, &lang.Binary{Op: op, X: x.ToAST(), Y: y.ToAST()})
}

// Add returns e + o.
func (e *Expr) Add(o *Expr) *Expr {
	r := e.clone()
	r.konst = r.konst.add(o.konst)
	for _, t := range o.terms {
		r.addTerm(t)
	}
	r.mergeAtoms(o)
	if r.hasOverflow() {
		return degrade(lang.OpAdd, "+", e, o)
	}
	return r
}

// AddConst returns e + c.
func (e *Expr) AddConst(c int64) *Expr {
	r := e.clone()
	r.konst = r.konst.add(ratInt(c))
	if r.konst.invalid() {
		return degrade(lang.OpAdd, "+", e, Const(c))
	}
	return r
}

// Neg returns -e.
func (e *Expr) Neg() *Expr { return e.MulConst(-1) }

// Sub returns e - o.
func (e *Expr) Sub(o *Expr) *Expr { return e.Add(o.Neg()) }

// MulConst returns c·e.
func (e *Expr) MulConst(c int64) *Expr { return e.mulRat(ratInt(c)) }

func (e *Expr) mulRat(c rat) *Expr {
	if c.isZero() {
		return Zero
	}
	r := e.clone()
	r.konst = r.konst.mul(c)
	for _, t := range r.terms {
		t.coef = t.coef.mul(c)
	}
	if r.hasOverflow() {
		return degrade(lang.OpMul, "*", e, constRat(c))
	}
	return r
}

func mulFactors(a, b []factor) []factor {
	out := append([]factor(nil), a...)
	for _, f := range b {
		found := false
		for i := range out {
			if out[i].atom == f.atom {
				out[i].pow += f.pow
				found = true
				break
			}
		}
		if !found {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].atom < out[j].atom })
	return out
}

// Mul returns e · o, expanding products of sums.
func (e *Expr) Mul(o *Expr) *Expr {
	if c, ok := o.IsConst(); ok {
		return e.MulConst(c)
	}
	if c, ok := e.IsConst(); ok {
		return o.MulConst(c)
	}
	r := &Expr{konst: e.konst.mul(o.konst)}
	r.mergeAtoms(e)
	r.mergeAtoms(o)
	for _, t := range e.terms {
		if !o.konst.isZero() {
			r.addTerm(&term{coef: t.coef.mul(o.konst), factors: t.factors})
		}
		for _, u := range o.terms {
			r.addTerm(&term{coef: t.coef.mul(u.coef), factors: mulFactors(t.factors, u.factors)})
		}
	}
	if !e.konst.isZero() {
		for _, u := range o.terms {
			r.addTerm(&term{coef: e.konst.mul(u.coef), factors: u.factors})
		}
	}
	if r.hasOverflow() {
		return degrade(lang.OpMul, "*", e, o)
	}
	return r
}

// Equal reports whether e and o have identical canonical forms. Interned
// expressions compare by pointer or cached key; the general case is a
// direct structural comparison of the canonical forms, which allocates
// nothing (unlike the historical e.Sub(o).IsZero(), which cloned and
// merged term maps for every call).
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e.ckey != "" && o.ckey != "" {
		return e.ckey == o.ckey
	}
	return e.structEq(o)
}

// structEq compares canonical forms field by field. Terms are keyed by
// their factor rendering and coefficients are normalized rats, so map
// lookup plus struct equality decides identity exactly.
func (e *Expr) structEq(o *Expr) bool {
	if e.konst != o.konst || len(e.terms) != len(o.terms) {
		return false
	}
	for k, t := range e.terms {
		ot, ok := o.terms[k]
		if !ok || ot.coef != t.coef {
			return false
		}
	}
	return true
}

// DiffConst reports whether e - o is a constant, and returns it. Since
// terms never carry zero coefficients, the difference is constant exactly
// when the term maps agree, so no subtraction needs to be materialized.
func (e *Expr) DiffConst(o *Expr) (int64, bool) {
	if len(e.terms) != len(o.terms) {
		return 0, false
	}
	for k, t := range e.terms {
		ot, ok := o.terms[k]
		if !ok || ot.coef != t.coef {
			return 0, false
		}
	}
	d := e.konst.sub(o.konst)
	if !d.isInt() {
		return 0, false
	}
	return d.n, true
}

// String returns the canonical rendering of e. Identical expressions have
// identical strings, so String doubles as a canonical key. Interned
// expressions return the key cached at intern time.
func (e *Expr) String() string {
	if e.ckey != "" {
		return e.ckey
	}
	return e.render()
}

func (e *Expr) render() string {
	if len(e.terms) == 0 {
		return e.konst.String()
	}
	keys := make([]string, 0, len(e.terms))
	for k := range e.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	first := true
	for _, k := range keys {
		t := e.terms[k]
		c := t.coef
		if first {
			if c.sign() < 0 {
				sb.WriteByte('-')
				c = c.neg()
			}
			first = false
		} else if c.sign() < 0 {
			sb.WriteString(" - ")
			c = c.neg()
		} else {
			sb.WriteString(" + ")
		}
		if c != ratInt(1) {
			fmt.Fprintf(&sb, "%s*", c)
		}
		sb.WriteString(k)
	}
	if e.konst.sign() > 0 {
		fmt.Fprintf(&sb, " + %s", e.konst)
	} else if e.konst.sign() < 0 {
		fmt.Fprintf(&sb, " - %s", e.konst.neg())
	}
	return sb.String()
}

// CoefOf returns the integer coefficient of the plain degree-1 term in the
// variable or atom named a, e.g. CoefOf("i") of 3*i + 2*i*j + 1 is 3.
// Non-integral coefficients report 0.
func (e *Expr) CoefOf(a string) int64 {
	if t, ok := e.terms[a]; ok && t.coef.isInt() {
		return t.coef.n
	}
	return 0
}

// WithoutTerm returns e with the plain degree-1 term in atom a removed.
func (e *Expr) WithoutTerm(a string) *Expr {
	r := e.clone()
	delete(r.terms, a)
	return r
}

// Affine decomposes e as coef·v + rest where rest does not contain v at all
// (not even inside opaque atoms). ok is false if v occurs non-linearly or
// inside an opaque atom.
func (e *Expr) Affine(v string) (coef int64, rest *Expr, ok bool) {
	rest = e.clone()
	acc := ratInt(0)
	for k, t := range e.terms {
		occurs := false
		for _, f := range t.factors {
			if f.atom == v {
				occurs = true
				if f.pow != 1 || len(t.factors) != 1 {
					return 0, nil, false
				}
			} else if ast, has := e.atoms[f.atom]; has && astMentions(ast, v) {
				return 0, nil, false
			}
		}
		if occurs {
			acc = acc.add(t.coef)
			delete(rest.terms, k)
		}
	}
	if !acc.isInt() {
		return 0, nil, false
	}
	return acc.n, rest, true
}

// ---------------------------------------------------------------------------
// Conversion from and to the AST

// FromAST converts an AST expression to canonical symbolic form. Non-integer
// or non-polynomial constructs (real literals, division, intrinsics, logical
// operators) become opaque atoms, so the result is always well-defined.
// Interner.FromAST is the memoized variant; both share this conversion.
func FromAST(e lang.Expr) *Expr { return fromASTIn(nil, e) }

// fromASTIn is FromAST with an optional (nil-safe) interner: every AST
// node's conversion is memoized and every result — including the
// subexpressions the recursion builds — is interned.
func fromASTIn(in *Interner, e lang.Expr) *Expr {
	if r := in.lookupNode(e); r != nil {
		return r
	}
	return in.storeNode(e, convertAST(in, e))
}

func convertAST(in *Interner, e lang.Expr) *Expr {
	switch e := e.(type) {
	case *lang.IntLit:
		return Const(e.Value)
	case *lang.Ident:
		return Var(e.Name)
	case *lang.ArrayRef:
		return atomExpr(canonRefKeyIn(in, e), canonRefASTIn(in, e))
	case *lang.Unary:
		if e.Op == lang.OpNeg {
			return fromASTIn(in, e.X).Neg()
		}
	case *lang.Binary:
		switch e.Op {
		case lang.OpAdd:
			return fromASTIn(in, e.X).Add(fromASTIn(in, e.Y))
		case lang.OpSub:
			return fromASTIn(in, e.X).Sub(fromASTIn(in, e.Y))
		case lang.OpMul:
			return fromASTIn(in, e.X).Mul(fromASTIn(in, e.Y))
		case lang.OpDiv:
			x, y := fromASTIn(in, e.X), fromASTIn(in, e.Y)
			if c, ok := y.IsConst(); ok && c != 0 {
				if xc, ok2 := x.IsConst(); ok2 {
					return Const(xc / c)
				}
				// Division is kept exact (rational coefficients) only
				// when the value is provably divisible — coefficient-wise
				// or via the parity argument for /2 (x² ≡ x mod 2).
				if r, ok2 := x.divExact(c); ok2 {
					return r
				}
			}
			key := fmt.Sprintf("(%s / %s)", x, y)
			return atomExpr(key, &lang.Binary{Op: lang.OpDiv, X: x.ToAST(), Y: y.ToAST()})
		case lang.OpPow:
			x, y := fromASTIn(in, e.X), fromASTIn(in, e.Y)
			if c, ok := y.IsConst(); ok && c >= 0 && c <= 4 {
				r := One
				for i := int64(0); i < c; i++ {
					r = r.Mul(x)
				}
				return r
			}
		}
	}
	// Opaque fallback: the canonical key is the printed AST.
	return atomExpr("{"+lang.FormatExpr(e)+"}", e)
}

// divExact divides e by the integer c when the *value* of e is provably a
// multiple of c: either every coefficient is divisible, or, for c = 2, the
// parity argument applies (x^k ≡ x (mod 2) for every integer x and k ≥ 1,
// so the odd-coefficient monomials must cancel modulo 2 after squarefree
// reduction — this is what proves i*(i-1)/2 exact). The result may have
// rational coefficients; ToAST re-emits it as one whole-expression
// division, preserving truncating semantics.
func (e *Expr) divExact(c int64) (*Expr, bool) {
	if c < 0 {
		r, ok := e.divExact(-c)
		if !ok {
			return nil, false
		}
		return r.Neg(), true
	}
	coeffwise := e.konst.isInt() && e.konst.n%c == 0
	if coeffwise {
		for _, t := range e.terms {
			if !t.coef.isInt() || t.coef.n%c != 0 {
				coeffwise = false
				break
			}
		}
	}
	if !coeffwise && !(c == 2 && e.evenByParity()) {
		return nil, false
	}
	r := e.clone()
	r.konst = r.konst.divInt(c)
	for _, t := range r.terms {
		t.coef = t.coef.divInt(c)
	}
	return r, true
}

// evenByParity proves that e is even for every integer assignment of its
// atoms: the constant is even, and for each squarefree-reduced monomial the
// odd coefficients cancel modulo 2 (using x^k ≡ x mod 2).
func (e *Expr) evenByParity() bool {
	if !e.konst.isInt() || e.konst.n%2 != 0 {
		return false
	}
	oddSum := map[string]int64{}
	for _, t := range e.terms {
		if !t.coef.isInt() {
			return false
		}
		if t.coef.n%2 == 0 {
			continue
		}
		// Squarefree reduction of the factor multiset.
		names := make([]string, 0, len(t.factors))
		for _, f := range t.factors {
			names = append(names, f.atom)
		}
		sort.Strings(names)
		key := strings.Join(names, "*")
		oddSum[key] += t.coef.n
	}
	for _, v := range oddSum {
		if v%2 != 0 {
			return false
		}
	}
	return true
}

// canonRefKeyIn builds the canonical atom name for an array element or
// intrinsic call: the name applied to the canonical form of each argument.
func canonRefKeyIn(in *Interner, e *lang.ArrayRef) string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = fromASTIn(in, a).String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ","))
}

func canonRefASTIn(in *Interner, e *lang.ArrayRef) lang.Expr {
	c := &lang.ArrayRef{NamePos: e.NamePos, Name: e.Name, Intrinsic: e.Intrinsic}
	c.Args = make([]lang.Expr, len(e.Args))
	for i, a := range e.Args {
		c.Args[i] = fromASTIn(in, a).ToAST()
	}
	return c
}

// RefKey returns the canonical atom name an ArrayRef would get, so clients
// can look up or substitute array-element atoms.
func RefKey(e *lang.ArrayRef) string { return canonRefKeyIn(nil, e) }

// toASTInt rebuilds an AST from a canonical form with integral
// coefficients.
func (e *Expr) toASTInt() lang.Expr {
	var out lang.Expr
	add := func(x lang.Expr, negative bool) {
		if out == nil {
			if negative {
				out = &lang.Unary{Op: lang.OpNeg, X: x}
			} else {
				out = x
			}
			return
		}
		op := lang.OpAdd
		if negative {
			op = lang.OpSub
		}
		out = &lang.Binary{Op: op, X: out, Y: x}
	}

	keys := make([]string, 0, len(e.terms))
	for k := range e.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := e.terms[k]
		var prod lang.Expr
		for _, f := range t.factors {
			ast := e.atoms[f.atom]
			if ast == nil {
				ast = &lang.Ident{Name: f.atom}
			}
			for p := 0; p < f.pow; p++ {
				fc := lang.CloneExpr(ast)
				if prod == nil {
					prod = fc
				} else {
					prod = &lang.Binary{Op: lang.OpMul, X: prod, Y: fc}
				}
			}
		}
		c := t.coef
		neg := c.sign() < 0
		if neg {
			c = c.neg()
		}
		if c != ratInt(1) {
			prod = &lang.Binary{Op: lang.OpMul, X: &lang.IntLit{Value: c.n}, Y: prod}
		}
		add(prod, neg)
	}
	if !e.konst.isZero() || out == nil {
		c := e.konst
		neg := c.sign() < 0
		if neg {
			c = c.neg()
		}
		add(&lang.IntLit{Value: c.n}, neg)
	}
	return out
}

// ToAST rebuilds an AST expression from the canonical form. Rational
// coefficients are re-emitted as one whole-expression division (the
// rational form only ever arises from a proven-exact division, so the
// truncating division in the AST computes the same value).
func (e *Expr) ToAST() lang.Expr {
	den := int64(1)
	if !e.konst.isInt() {
		den = lcm64(den, e.konst.d)
	}
	for _, t := range e.terms {
		if !t.coef.isInt() {
			den = lcm64(den, t.coef.d)
		}
	}
	if den == 1 {
		return e.toASTInt()
	}
	if den == 0 {
		// Unreachable: rational coefficients only arise from divExact,
		// whose denominators are powers of two, so their lcm is their
		// maximum and cannot overflow.
		panic("expr: denominator lcm overflow")
	}
	scaled := e.MulConst(den)
	return &lang.Binary{Op: lang.OpDiv, X: scaled.toASTInt(), Y: &lang.IntLit{Value: den}}
}

// SubstAtom returns e with every factor equal to the atom key replaced by
// repl. Unlike SubstVar it does not look inside other atoms' ASTs: atom
// keys are canonical, so the caller matches them exactly.
func (e *Expr) SubstAtom(key string, repl *Expr) *Expr {
	if !e.HasAtom(key) {
		return e
	}
	r := constRat(e.konst)
	for _, t := range e.terms {
		tv := constRat(t.coef)
		for _, f := range t.factors {
			var base *Expr
			if f.atom == key {
				base = repl
			} else {
				base = atomExpr(f.atom, e.atoms[f.atom])
			}
			for p := 0; p < f.pow; p++ {
				tv = tv.Mul(base)
			}
		}
		r = r.Add(tv)
	}
	return r
}

// ArrayAtoms returns, for each atom of e that is an element of the named
// array, the atom key and the canonical subscript expression (first
// dimension). Non-matching atoms are skipped.
func (e *Expr) ArrayAtoms(array string) map[string]*Expr {
	out := map[string]*Expr{}
	for _, t := range e.terms {
		for _, f := range t.factors {
			ast, ok := e.atoms[f.atom]
			if !ok {
				continue
			}
			ref, ok := ast.(*lang.ArrayRef)
			if !ok || ref.Name != array || len(ref.Args) != 1 {
				continue
			}
			out[f.atom] = FromAST(ref.Args[0])
		}
	}
	return out
}

// SubstVar returns e with every occurrence of the scalar variable name
// replaced by repl — including occurrences buried inside opaque atoms (array
// subscripts), which are rewritten at the AST level and re-canonicalised.
func (e *Expr) SubstVar(name string, repl *Expr) *Expr {
	if !e.MentionsVar(name) {
		return e
	}
	replAST := repl.ToAST()
	r := constRat(e.konst)
	for _, t := range e.terms {
		tv := constRat(t.coef)
		for _, f := range t.factors {
			var base *Expr
			if f.atom == name {
				base = repl
			} else if ast, ok := e.atoms[f.atom]; ok && astMentions(ast, name) {
				nast := lang.MapExpr(lang.CloneExpr(ast), func(x lang.Expr) lang.Expr {
					if id, ok := x.(*lang.Ident); ok && id.Name == name {
						return lang.CloneExpr(replAST)
					}
					return x
				})
				base = FromAST(nast)
			} else {
				base = atomExpr(f.atom, e.atoms[f.atom])
			}
			for p := 0; p < f.pow; p++ {
				tv = tv.Mul(base)
			}
		}
		r = r.Add(tv)
	}
	return r
}
