package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
)

// parseExpr parses a lone expression by wrapping it in a dummy assignment.
func parseExpr(t *testing.T, src string) lang.Expr {
	t.Helper()
	prog, err := lang.Parse("program t\n zz9 = " + src + "\nend\n")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return prog.Main.Body[0].(*lang.AssignStmt).Rhs
}

func sym(t *testing.T, src string) *Expr {
	t.Helper()
	return FromAST(parseExpr(t, src))
}

func TestCanonicalForms(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{"i + j", "j + i"},
		{"2*i + i", "3*i"},
		{"i - i", "0"},
		{"(i+1)*(i-1)", "i*i - 1"},
		{"(i+j)*2", "2*i + 2*j"},
		{"i*(j+k)", "i*j + i*k"},
		{"(2*i + 4)/2", "i + 2"},
		{"i**2", "i*i"},
		{"-(i - j)", "j - i"},
		{"a(i) + a(i)", "2*a(i)"},
		{"a(i+1) - a(1+i)", "0"},
		{"a(2*i) - a(i+i)", "0"},
	}
	for _, c := range cases {
		x, y := sym(t, c.a), sym(t, c.b)
		if !x.Equal(y) {
			t.Errorf("%q and %q not equal: %s vs %s", c.a, c.b, x, y)
		}
	}
}

func TestNotEqual(t *testing.T) {
	cases := [][2]string{
		{"i", "j"},
		{"a(i)", "a(j)"},
		{"i/2", "i"},
		{"i/2 + i/2", "i"}, // integer division is opaque
		{"a(i)*a(j)", "a(i*j)"},
	}
	for _, c := range cases {
		if sym(t, c[0]).Equal(sym(t, c[1])) {
			t.Errorf("%q and %q should differ", c[0], c[1])
		}
	}
}

func TestDiffConst(t *testing.T) {
	a := sym(t, "p + 3")
	b := sym(t, "p")
	if d, ok := a.DiffConst(b); !ok || d != 3 {
		t.Errorf("DiffConst = %d,%v", d, ok)
	}
	c := sym(t, "q")
	if _, ok := a.DiffConst(c); ok {
		t.Error("p+3 - q should not be constant")
	}
}

func TestAffine(t *testing.T) {
	e := sym(t, "3*i + 2*j + 5")
	coef, rest, ok := e.Affine("i")
	if !ok || coef != 3 {
		t.Fatalf("coef=%d ok=%v", coef, ok)
	}
	if rest.String() != "2*j + 5" {
		t.Errorf("rest = %s", rest)
	}
	// Non-linear occurrence.
	if _, _, ok := sym(t, "i*i").Affine("i"); ok {
		t.Error("i*i should not be affine in i")
	}
	// Occurrence inside an opaque atom.
	if _, _, ok := sym(t, "a(i) + 1").Affine("i"); ok {
		t.Error("a(i) should block affine decomposition in i")
	}
	// Variable absent.
	coef, _, ok = sym(t, "j + 1").Affine("i")
	if !ok || coef != 0 {
		t.Errorf("absent var: coef=%d ok=%v", coef, ok)
	}
}

func TestToASTRoundTrip(t *testing.T) {
	cases := []string{
		"3*i + 2*j + 5",
		"a(i+1) - 2*b(j)",
		"i*j*k",
		"0",
		"-4",
		"n - 1",
	}
	for _, c := range cases {
		e := sym(t, c)
		back := FromAST(e.ToAST())
		if !e.Equal(back) {
			t.Errorf("%q: round trip %s != %s", c, back, e)
		}
	}
}

func TestSubstVar(t *testing.T) {
	cases := []struct {
		e, v, repl, want string
	}{
		{"i + 1", "i", "n", "n + 1"},
		{"2*i + j", "i", "j + 1", "3*j + 2"},
		{"a(i)", "i", "i + 1", "a(i + 1)"},
		{"a(i) + i", "i", "5", "a(5) + 5"},
		{"a(j)", "i", "0", "a(j)"},
		{"i*i", "i", "2", "4"},
	}
	for _, c := range cases {
		e := sym(t, c.e)
		got := e.SubstVar(c.v, sym(t, c.repl))
		want := sym(t, c.want)
		if !got.Equal(want) {
			t.Errorf("SubstVar(%q, %s=%s) = %s, want %s", c.e, c.v, c.repl, got, want)
		}
	}
}

func TestMentionsVar(t *testing.T) {
	e := sym(t, "a(i+1) + j")
	if !e.MentionsVar("i") || !e.MentionsVar("j") || e.MentionsVar("k") {
		t.Errorf("MentionsVar wrong for %s", e)
	}
}

func TestIsVar(t *testing.T) {
	if v, ok := sym(t, "p").IsVar(); !ok || v != "p" {
		t.Errorf("IsVar(p) = %q,%v", v, ok)
	}
	for _, s := range []string{"p + 1", "2*p", "a(p)", "3"} {
		if _, ok := sym(t, s).IsVar(); ok {
			t.Errorf("IsVar(%q) should be false", s)
		}
	}
}

func TestProveGE0(t *testing.T) {
	a := Assumptions{"n": GT0, "len(i)": GE0}
	cases := []struct {
		e    string
		want bool
	}{
		{"n", true},
		{"n - 1", true},
		{"n + 5", true},
		{"n - 2", false}, // only n >= 1 known
		{"len(i)", true},
		{"len(i) - 1", false},
		{"n * len(i)", true},
		{"2*n - 2", true},
		{"-n", false},
		{"j", false},
		{"j*j", true}, // even power
		{"0", true},
		{"n + len(i) - 1", true},
	}
	for _, c := range cases {
		if got := ProveGE0(sym(t, c.e), a); got != c.want {
			t.Errorf("ProveGE0(%q) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestProveLTAndLE(t *testing.T) {
	a := Assumptions{"n": GT0}
	x, y := sym(t, "i"), sym(t, "i + n")
	if !ProveLT(x, y, a) {
		t.Error("i < i + n should be provable with n >= 1")
	}
	if !ProveLE(x, x, a) {
		t.Error("i <= i should be provable")
	}
	if ProveLT(x, x, a) {
		t.Error("i < i should not be provable")
	}
}

func TestBounds(t *testing.T) {
	env := Env{"i": NewRange(One, Var("n"))}
	a := Assumptions{}
	cases := []struct {
		e      string
		lo, hi string
		ok     bool
	}{
		{"i", "1", "n", true},
		{"2*i + 1", "3", "2*n + 1", true},
		{"-i", "-n", "-1", true},
		{"j", "j", "j", true},
		{"i + j", "j + 1", "j + n", true},
		{"a(i)", "", "", false}, // i inside opaque atom
		{"i*i", "", "", false},  // non-linear
	}
	for _, c := range cases {
		r, ok := Bounds(sym(t, c.e), env, a)
		if ok != c.ok {
			t.Errorf("Bounds(%q): ok=%v, want %v", c.e, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if !r.Lo.Equal(sym(t, c.lo)) || !r.Hi.Equal(sym(t, c.hi)) {
			t.Errorf("Bounds(%q) = %s, want [%s:%s]", c.e, r, c.lo, c.hi)
		}
	}
}

func TestBoundsTwoVars(t *testing.T) {
	env := Env{
		"i": NewRange(One, Var("n")),
		"j": NewRange(Const(2), Var("m")),
	}
	r, ok := Bounds(sym(t, "i - j"), env, nil)
	if !ok {
		t.Fatal("Bounds failed")
	}
	if !r.Lo.Equal(sym(t, "1 - m")) || !r.Hi.Equal(sym(t, "n - 2")) {
		t.Errorf("got %s", r)
	}
}

func TestDisjointRanges(t *testing.T) {
	a := Assumptions{"n": GE0}
	r1 := NewRange(One, Var("p"))
	r2 := NewRange(Var("p").AddConst(1), Var("p").Add(Var("n")))
	if !DisjointRanges(r1, r2, a) {
		t.Error("[1:p] and [p+1:p+n] should be disjoint")
	}
	if DisjointRanges(r1, r1, a) {
		t.Error("range is not disjoint from itself")
	}
}

func TestRangeContains(t *testing.T) {
	a := Assumptions{"n": GT0}
	outer := NewRange(One, Var("n"))
	inner := NewRange(One, Var("n").AddConst(-1))
	if !RangeContains(outer, inner, a) {
		t.Error("[1:n] should contain [1:n-1]")
	}
	if RangeContains(inner, outer, a) {
		t.Error("[1:n-1] should not contain [1:n]")
	}
	unbounded := Range{}
	if !RangeContains(unbounded, outer, a) {
		t.Error("unbounded range contains everything")
	}
}

// randomExpr builds a random symbolic expression over a small variable pool.
func randomExpr(r *rand.Rand, depth int) *Expr {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return Const(int64(r.Intn(21) - 10))
		default:
			return Var([]string{"i", "j", "k"}[r.Intn(3)])
		}
	}
	x, y := randomExpr(r, depth-1), randomExpr(r, depth-1)
	switch r.Intn(3) {
	case 0:
		return x.Add(y)
	case 1:
		return x.Sub(y)
	default:
		return x.Mul(y)
	}
}

func TestQuickAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	r := rand.New(rand.NewSource(1))

	// Commutativity and associativity of Add; distribution of Mul.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randomExpr(rr, 2), randomExpr(rr, 2), randomExpr(rr, 2)
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		if !a.Add(b.Add(c)).Equal(a.Add(b).Add(c)) {
			return false
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		if !a.Sub(a).IsZero() {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestQuickToASTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randomExpr(rr, 3)
		return FromAST(e.ToAST()).Equal(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// evalExpr evaluates a symbolic expression that contains only the variables
// i, j, k under a concrete assignment; used to cross-check canonicalisation
// against direct evaluation.
func evalAST(e lang.Expr, vals map[string]int64) int64 {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Value
	case *lang.Ident:
		return vals[e.Name]
	case *lang.Unary:
		return -evalAST(e.X, vals)
	case *lang.Binary:
		x, y := evalAST(e.X, vals), evalAST(e.Y, vals)
		switch e.Op {
		case lang.OpAdd:
			return x + y
		case lang.OpSub:
			return x - y
		case lang.OpMul:
			return x * y
		}
	}
	panic("unexpected node")
}

func TestQuickEvalConsistency(t *testing.T) {
	f := func(seed int64, i, j, k int8) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randomExpr(rr, 3)
		vals := map[string]int64{"i": int64(i), "j": int64(j), "k": int64(k)}
		return evalAST(e.ToAST(), vals) == evalAST(FromAST(e.ToAST()).ToAST(), vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoefOfAndWithoutTerm(t *testing.T) {
	e := sym(t, "3*i + 2*j + 7")
	if e.CoefOf("i") != 3 || e.CoefOf("j") != 2 || e.CoefOf("k") != 0 {
		t.Errorf("CoefOf wrong: %s", e)
	}
	r := e.WithoutTerm("i")
	if !r.Equal(sym(t, "2*j + 7")) {
		t.Errorf("WithoutTerm = %s", r)
	}
}

func TestAtoms(t *testing.T) {
	e := sym(t, "a(i) + b(j)*c + 2")
	atoms := e.Atoms()
	want := []string{"a(i)", "b(j)", "c"}
	if len(atoms) != len(want) {
		t.Fatalf("atoms = %v", atoms)
	}
	for i := range want {
		if atoms[i] != want[i] {
			t.Errorf("atom %d = %q, want %q", i, atoms[i], want[i])
		}
	}
}

func TestStringCanonicalKey(t *testing.T) {
	a := sym(t, "j + i - 3")
	b := sym(t, "i + j - 3")
	if a.String() != b.String() {
		t.Errorf("canonical strings differ: %q vs %q", a, b)
	}
	if a.String() != "i + j - 3" {
		t.Errorf("unexpected rendering %q", a)
	}
}

// TestQuickBoundsSound checks, against brute-force enumeration, that the
// symbolic Bounds of a random affine expression over random variable ranges
// always contains the true extrema.
func TestQuickBoundsSound(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		// Random affine expression over i, j with constant coefficients.
		ci := int64(rr.Intn(9) - 4)
		cj := int64(rr.Intn(9) - 4)
		k := int64(rr.Intn(21) - 10)
		e := Var("i").MulConst(ci).Add(Var("j").MulConst(cj)).AddConst(k)

		iLo := int64(rr.Intn(10) - 5)
		iHi := iLo + int64(rr.Intn(6))
		jLo := int64(rr.Intn(10) - 5)
		jHi := jLo + int64(rr.Intn(6))
		env := Env{
			"i": ConstRange(iLo, iHi),
			"j": ConstRange(jLo, jHi),
		}
		r, ok := Bounds(e, env, nil)
		if !ok {
			return false // affine over constant ranges must always bound
		}
		lo, ok1 := r.Lo.IsConst()
		hi, ok2 := r.Hi.IsConst()
		if !ok1 || !ok2 {
			return false
		}
		for i := iLo; i <= iHi; i++ {
			for j := jLo; j <= jHi; j++ {
				v := ci*i + cj*j + k
				if v < lo || v > hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickProveGE0Sound cross-checks the sign prover against enumeration:
// whenever ProveGE0 claims nonnegativity under i>=1, every concrete i >= 1
// (up to a bound) must satisfy it.
func TestQuickProveGE0Sound(t *testing.T) {
	a := Assumptions{"i": GT0}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		// Random quadratic c2*i^2 + c1*i + c0.
		c2 := int64(rr.Intn(5) - 2)
		c1 := int64(rr.Intn(9) - 4)
		c0 := int64(rr.Intn(11) - 5)
		e := Var("i").Mul(Var("i")).MulConst(c2).Add(Var("i").MulConst(c1)).AddConst(c0)
		if !ProveGE0(e, a) {
			return true // "unproven" is always sound
		}
		for i := int64(1); i <= 50; i++ {
			if c2*i*i+c1*i+c0 < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
