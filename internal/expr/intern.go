package expr

import "repro/internal/lang"

// Interner hash-conses canonical expressions for one compilation: each
// distinct canonical form is represented by a single *Expr whose canonical
// key (the String rendering) is computed once, at intern time. Interned
// expressions make Equal a pointer or key comparison, String a field read,
// and FromAST a map lookup for AST nodes already converted.
//
// An Interner is confined to one compilation and is not safe for concurrent
// use: batch compilations each build their own, which is also why interning
// cannot change output across -jobs values. A nil *Interner is valid
// everywhere and disables all caching, so call sites need no guards — this
// is how the NoExprIntern ablation runs.
//
// An interner may be backed by a SharedInterner (see SharedInterner.Interner):
// repeats within the compilation still resolve through the local map, and
// only first-time keys fall through to the sharded, lock-protected shared
// table, where an identical compilation may already have installed the
// representative.
//
// Correctness rests on the package's immutability invariant: every Expr
// operation clones before mutating, so a representative handed to two
// call sites can never be changed by either. Interning therefore only
// deduplicates values; it never changes them.
type Interner struct {
	byKey map[string]*Expr
	// byNode memoizes FromAST per AST node. Entries are valid only while
	// the AST is unchanged; passes that mutate the program in place must
	// call InvalidateAST (the canonical-key table is unaffected — keys
	// identify values, not syntax trees).
	byNode map[lang.Expr]*Expr
	stats  InternStats
	// shared, when non-nil, backs local misses with the process-wide
	// sharded table under the scope key.
	shared *SharedInterner
	scope  string
}

// InternStats counts interner traffic for the metrics document.
//
// Concurrency: an InternStats value is goroutine-confined — each Interner
// owns one and each batch item folds its interner's stats into the
// aggregate exactly once, at compile end, on the aggregating goroutine.
// Concurrent interning never mutates a shared InternStats: the shared
// layer keeps its own per-shard counters (merged under the shard locks by
// SharedInterner.Stats), so there are no torn reads to race on.
type InternStats struct {
	// Hits / Misses count canonical-key lookups that found / installed a
	// representative.
	Hits   int64
	Misses int64
	// NodeHits / NodeMisses count the per-AST-node FromAST memo.
	NodeHits   int64
	NodeMisses int64
}

// Add accumulates o into s.
func (s *InternStats) Add(o InternStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.NodeHits += o.NodeHits
	s.NodeMisses += o.NodeMisses
}

// NewInterner builds an empty interner.
func NewInterner() *Interner {
	return &Interner{byKey: map[string]*Expr{}, byNode: map[lang.Expr]*Expr{}}
}

// FromAST converts an AST expression to canonical form through the
// per-node memo, interning the result (and every subexpression). Use it
// only for AST nodes that outlive the call unchanged — program syntax, not
// freshly built throwaway nodes, which would bloat the memo; canonicalize
// those with plain FromAST plus Intern. A nil receiver degrades to the
// plain conversion.
func (in *Interner) FromAST(e lang.Expr) *Expr { return fromASTIn(in, e) }

// Intern returns the canonical representative of e: the first expression
// seen with e's canonical key. The representative's key is cached, so its
// String and Equal never re-render. A nil receiver (or nil e) returns e
// unchanged.
func (in *Interner) Intern(e *Expr) *Expr {
	if in == nil || e == nil {
		return e
	}
	k := e.String()
	if r, ok := in.byKey[k]; ok {
		in.stats.Hits++
		return r
	}
	if in.shared != nil {
		// First sighting in this compilation: adopt (or install) the
		// shared representative so identical compilations converge on one
		// pointer. Local hit/miss counters are charged exactly as in the
		// unshared case, keeping expr.intern.* deterministic under the
		// sharing ablation.
		e = in.shared.intern(in.scope, k, e)
	} else if e.ckey == "" {
		e.ckey = k
	}
	in.byKey[k] = e
	in.stats.Misses++
	return e
}

// lookupNode consults the per-AST-node memo (nil-safe).
func (in *Interner) lookupNode(e lang.Expr) *Expr {
	if in == nil {
		return nil
	}
	if r, ok := in.byNode[e]; ok {
		in.stats.NodeHits++
		return r
	}
	return nil
}

// storeNode interns r and memoizes it for node e (nil-safe).
func (in *Interner) storeNode(e lang.Expr, r *Expr) *Expr {
	if in == nil {
		return r
	}
	r = in.Intern(r)
	in.byNode[e] = r
	in.stats.NodeMisses++
	return r
}

// InvalidateAST drops the per-node memo. Passes that mutate the program
// between conversions (loop interchange) must call it: node entries
// describe pre-mutation syntax. Canonical-key entries survive — a key
// identifies a value regardless of which syntax produced it.
func (in *Interner) InvalidateAST() {
	if in == nil || len(in.byNode) == 0 {
		return
	}
	in.byNode = map[lang.Expr]*Expr{}
}

// Stats returns the interner counters (zero for a nil interner).
func (in *Interner) Stats() InternStats {
	if in == nil {
		return InternStats{}
	}
	return in.stats
}
