package expr

import (
	"testing"

	"repro/internal/lang"
)

// symIn converts through an interner (per-node memo + canonical keys).
func symIn(t *testing.T, in *Interner, src string) *Expr {
	t.Helper()
	return in.FromAST(parseExpr(t, src))
}

// TestInternerAlgebraicIdentities re-runs the core algebraic identities on
// interned operands: interning must be observationally invisible.
func TestInternerAlgebraicIdentities(t *testing.T) {
	in := NewInterner()
	cases := []struct{ a, b string }{
		{"i + j", "j + i"},
		{"2*i + i", "3*i"},
		{"(i+1)*(i-1)", "i*i - 1"},
		{"i*(j+k)", "i*j + i*k"},
		{"(2*i + 4)/2", "i + 2"},
		{"a(i+1) - a(1+i)", "0"},
		// Rational coefficients: the triangular form i*(i-1)/2.
		{"i*(i-1)/2 + i", "i*(i+1)/2"},
		{"(i*i - i)/2", "i*(i-1)/2"},
	}
	for _, c := range cases {
		x, y := symIn(t, in, c.a), symIn(t, in, c.b)
		if !x.Equal(y) {
			t.Errorf("%q and %q not equal interned: %s vs %s", c.a, c.b, x, y)
		}
		if !x.Sub(x).IsZero() {
			t.Errorf("%q: x - x not zero", c.a)
		}
		// Add commutativity and the differential Equal check: Equal must
		// agree with the legacy Sub().IsZero() definition.
		l, r := x.Add(y), y.Add(x)
		if !l.Equal(r) {
			t.Errorf("%q + %q not commutative", c.a, c.b)
		}
		if l.Equal(r) != l.Sub(r).IsZero() {
			t.Errorf("%q: Equal disagrees with Sub().IsZero()", c.a)
		}
	}
}

// TestInternerMulDistributivity checks a*(b+c) == a*b + a*c on interned
// operands, including rational coefficients.
func TestInternerMulDistributivity(t *testing.T) {
	in := NewInterner()
	operands := []string{"i", "j + 1", "a(i)", "i*(i-1)/2", "2*i - 3*j", "n"}
	for _, sa := range operands {
		for _, sb := range operands {
			for _, sc := range operands {
				a, b, c := symIn(t, in, sa), symIn(t, in, sb), symIn(t, in, sc)
				l := a.Mul(b.Add(c))
				r := a.Mul(b).Add(a.Mul(c))
				if !l.Equal(r) {
					t.Fatalf("%s*(%s+%s): %s != %s", sa, sb, sc, l, r)
				}
			}
		}
	}
}

// TestInternerSubstAtomRoundTrip replaces an atom by a fresh variable and
// back, expecting the original canonical form.
func TestInternerSubstAtomRoundTrip(t *testing.T) {
	in := NewInterner()
	e := symIn(t, in, "2*a(i) + b(j) - 3")
	atom := "a(i)"
	repl := in.Intern(Var("zz1"))
	swapped := e.SubstAtom(atom, repl)
	if swapped.HasAtom(atom) {
		t.Fatalf("atom %q survived substitution: %s", atom, swapped)
	}
	back := swapped.SubstVar("zz1", in.Intern(FromAST(parseExpr(t, "a(i)"))))
	if !back.Equal(e) {
		t.Fatalf("round trip: got %s, want %s", back, e)
	}
}

// TestInternerSharing checks the hash-consing contract proper: the same AST
// node yields the same *Expr, and equal values share one representative.
func TestInternerSharing(t *testing.T) {
	in := NewInterner()
	node := parseExpr(t, "2*i + j")
	p1 := in.FromAST(node)
	p2 := in.FromAST(node)
	if p1 != p2 {
		t.Fatalf("same AST node interned to distinct pointers")
	}
	if st := in.Stats(); st.NodeHits == 0 {
		t.Fatalf("expected a node hit, stats %+v", st)
	}
	// A structurally equal but distinct AST maps to the same representative.
	p3 := in.FromAST(parseExpr(t, "j + 2*i"))
	if p1 != p3 {
		t.Fatalf("equal values interned to distinct representatives")
	}
	// Pointer equality is the Equal fast path.
	if !p1.Equal(p3) {
		t.Fatalf("representatives unequal")
	}
}

// TestInternerInvalidateAST drops the node memo but keeps the key table.
func TestInternerInvalidateAST(t *testing.T) {
	in := NewInterner()
	node := parseExpr(t, "i + 1")
	p1 := in.FromAST(node)
	in.InvalidateAST()
	p2 := in.FromAST(node)
	if p1 != p2 {
		t.Fatalf("canonical representative lost across InvalidateAST")
	}
	st := in.Stats()
	if st.NodeMisses < 2 {
		t.Fatalf("expected the node memo to re-fill after invalidation, stats %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("expected a key-table hit on reconversion, stats %+v", st)
	}
}

// TestNilInternerDegrades checks that a nil interner behaves exactly like
// plain conversion — the NoExprIntern ablation path.
func TestNilInternerDegrades(t *testing.T) {
	var in *Interner
	node := parseExpr(t, "2*i + j")
	p := in.FromAST(node)
	q := FromAST(node)
	if !p.Equal(q) || p.String() != q.String() {
		t.Fatalf("nil interner conversion differs: %s vs %s", p, q)
	}
	if got := in.Intern(p); got != p {
		t.Fatalf("nil Intern must return its argument")
	}
	in.InvalidateAST() // must not panic
	if st := in.Stats(); st != (InternStats{}) {
		t.Fatalf("nil interner stats nonzero: %+v", st)
	}
}

// TestCachedKeyMatchesRender checks that interned expressions render the
// same canonical string as uninterned ones, and that derived (cloned)
// expressions do not inherit a stale cached key.
func TestCachedKeyMatchesRender(t *testing.T) {
	in := NewInterner()
	srcs := []string{"i", "2*i + j - 3", "a(i)*b(j)", "i*(i-1)/2", "0", "1"}
	for _, s := range srcs {
		interned := symIn(t, in, s)
		plain := FromAST(parseExpr(t, s))
		if interned.String() != plain.String() {
			t.Errorf("%q: interned key %q != plain render %q", s, interned.String(), plain.String())
		}
		// A derived value must re-render, not reuse the parent's key.
		d := interned.AddConst(7)
		if d.String() == interned.String() {
			t.Errorf("%q: derived expression inherited the cached key", s)
		}
		if !d.AddConst(-7).Equal(interned) {
			t.Errorf("%q: derived expression does not round-trip", s)
		}
	}
}

// TestRefKeyStable checks RefKey agrees with the canonical atom rendering
// used across property/deptest memo keys.
func TestRefKeyStable(t *testing.T) {
	ast := parseExpr(t, "a(2*i - i + j)").(*lang.ArrayRef)
	ast2 := parseExpr(t, "a(j + i)").(*lang.ArrayRef)
	if RefKey(ast) != RefKey(ast2) {
		t.Fatalf("RefKey not canonical: %q vs %q", RefKey(ast), RefKey(ast2))
	}
}
