package expr

import (
	"math"
	"testing"
)

func TestAddOvfBoundaries(t *testing.T) {
	cases := []struct {
		a, b int64
		ok   bool
	}{
		{math.MaxInt64, 1, false},
		{math.MaxInt64, 0, true},
		{math.MinInt64, -1, false},
		{math.MinInt64, 0, true},
		{math.MaxInt64, math.MinInt64, true},
		{1, 2, true},
	}
	for _, c := range cases {
		got, ok := addOvf(c.a, c.b)
		if ok != c.ok {
			t.Errorf("addOvf(%d, %d): ok=%v, want %v", c.a, c.b, ok, c.ok)
		}
		if ok && got != c.a+c.b {
			t.Errorf("addOvf(%d, %d) = %d", c.a, c.b, got)
		}
	}
}

func TestMulOvfBoundaries(t *testing.T) {
	cases := []struct {
		a, b int64
		ok   bool
	}{
		{math.MaxInt64, 2, false},
		{math.MinInt64, -1, false}, // wraps silently in Go; must be caught
		{-1, math.MinInt64, false},
		{math.MinInt64, 1, true},
		{math.MaxInt64, 1, true},
		{0, math.MinInt64, true},
		{1 << 32, 1 << 32, false},
		{3, -7, true},
	}
	for _, c := range cases {
		got, ok := mulOvf(c.a, c.b)
		if ok != c.ok {
			t.Errorf("mulOvf(%d, %d): ok=%v, want %v", c.a, c.b, ok, c.ok)
		}
		if ok && got != c.a*c.b {
			t.Errorf("mulOvf(%d, %d) = %d", c.a, c.b, got)
		}
	}
}

func TestRatArithmeticDegradesToInvalid(t *testing.T) {
	if r := ratInt(math.MaxInt64).add(ratInt(1)); !r.invalid() {
		t.Errorf("MaxInt64 + 1 = %v, want invalid", r)
	}
	if r := ratInt(math.MaxInt64).mul(ratInt(2)); !r.invalid() {
		t.Errorf("MaxInt64 * 2 = %v, want invalid", r)
	}
	if r := ratInt(math.MinInt64).neg(); !r.invalid() {
		t.Errorf("-MinInt64 = %v, want invalid", r)
	}
	// Invalidity is sticky.
	if r := ratInvalid.add(ratInt(1)); !r.invalid() {
		t.Errorf("invalid + 1 = %v, want invalid", r)
	}
	if r := ratInvalid.mul(ratInt(0)); !r.invalid() {
		t.Errorf("invalid * 0 = %v, want invalid", r)
	}
	// ratInvalid must not look like zero, or overflowed terms would be
	// silently dropped before the degrade check.
	if ratInvalid.isZero() {
		t.Fatal("ratInvalid.isZero() true")
	}
	if ratInvalid.sign() != 0 {
		t.Fatal("ratInvalid has a sign")
	}
}

// TestExprOverflowDegrades checks that Expr-level operations turn an
// overflowing result into an opaque atom (a sound "unknown") instead of a
// silently wrapped constant.
func TestExprOverflowDegrades(t *testing.T) {
	big := Const(math.MaxInt64)
	sum := big.AddConst(1)
	if c, ok := sum.IsConst(); ok {
		t.Fatalf("MaxInt64 + 1 stayed constant: %d", c)
	}
	prod := big.MulConst(2)
	if c, ok := prod.IsConst(); ok {
		t.Fatalf("MaxInt64 * 2 stayed constant: %d", c)
	}
	// The degraded result is a usable opaque atom: i + {ovf} - {ovf} == i.
	i := Var("i")
	e := i.Add(sum)
	if !e.Sub(sum).Equal(i) {
		t.Fatalf("degraded atom does not cancel: %s", e.Sub(sum))
	}
	// Symbolic overflow: coefficient blowup in a term must not leave a
	// wrapped affine coefficient behind.
	x := Var("i").MulConst(math.MaxInt64).MulConst(2)
	if coef, _, ok := x.Affine("i"); ok && coef != 0 {
		t.Fatalf("wrapped coefficient leaked: %d", coef)
	}
}

// TestDegradeDeterministic checks that the same overflowing operands always
// produce the same opaque atom, so canonical keys stay stable.
func TestDegradeDeterministic(t *testing.T) {
	a := Const(math.MaxInt64).Add(Var("n"))
	b := Const(math.MaxInt64).Add(Var("n"))
	x := a.MulConst(4)
	y := b.MulConst(4)
	if x.String() != y.String() {
		t.Fatalf("degraded keys differ: %q vs %q", x, y)
	}
	if !x.Equal(y) {
		t.Fatalf("degraded atoms not equal")
	}
}

// TestDiffConstNearOverflow checks DiffConst refuses to answer when the
// constant difference overflows.
func TestDiffConstNearOverflow(t *testing.T) {
	i := Var("i")
	a := i.AddConst(math.MaxInt64)
	b := i.AddConst(-2) // a - b overflows int64
	if d, ok := a.DiffConst(b); ok {
		t.Fatalf("DiffConst returned %d across an overflow", d)
	}
	// And still answers when in range.
	c := i.AddConst(math.MaxInt64 - 5)
	if d, ok := a.DiffConst(c); !ok || d != 5 {
		t.Fatalf("DiffConst = %d, %v; want 5, true", d, ok)
	}
}

// TestProveGE0OverflowSound checks the range prover refuses (rather than
// unsoundly proves) facts about degraded expressions.
func TestProveGE0OverflowSound(t *testing.T) {
	bad := Const(math.MaxInt64).AddConst(1)
	if ProveGE0(bad.Sub(bad).AddConst(-1), nil) {
		t.Fatalf("proved a negative constant nonnegative")
	}
	neg := bad.Mul(Const(-1)).Sub(bad) // opaque atoms, nothing provable
	if ProveGE0(neg, nil) {
		t.Fatalf("proved an unknown expression nonnegative")
	}
}
