package expr

import (
	"sort"
	"strings"
)

// Sign encodes conservative sign knowledge about an atom.
type Sign int

// Sign facts, ordered so that stronger facts have higher values where
// meaningful.
const (
	Unknown Sign = iota
	GE0          // atom >= 0
	GT0          // atom >= 1 (atoms are integers)
	LE0          // atom <= 0
	LT0          // atom <= -1
)

// Assumptions maps atom names (canonical keys, see Expr.Atoms) to sign
// facts. It represents what the analysis has been able to prove about
// symbolic terms, e.g. that every element of a length array is nonnegative.
type Assumptions map[string]Sign

// With returns a copy of a extended with name:s.
func (a Assumptions) With(name string, s Sign) Assumptions {
	n := make(Assumptions, len(a)+1)
	for k, v := range a {
		n[k] = v
	}
	n[name] = s
	return n
}

// signOf returns the sign of one atom under the assumptions. A key of the
// form "name(*)" states a fact about every element of an array: it matches
// any atom "name(<subscript>)".
func (a Assumptions) signOf(atom string) Sign {
	if s, ok := a[atom]; ok {
		return s
	}
	if i := strings.IndexByte(atom, '('); i > 0 {
		if s, ok := a[atom[:i]+"(*)"]; ok {
			return s
		}
	}
	return Unknown
}

// coefSign computes the sign of coef·Πatoms^pow under the assumptions.
// The caller guarantees an integral coefficient (the provers scale first).
func coefSign(coef rat, factors []factor, a Assumptions) Sign {
	if coef.invalid() {
		return Unknown // overflowed coefficient: no usable sign
	}
	// Start from the coefficient.
	var s Sign
	switch {
	case coef.sign() > 0:
		s = GT0
	case coef.sign() < 0:
		s = LT0
	default:
		return GE0 // zero term
	}
	for _, f := range factors {
		fs := a.signOf(f.atom)
		if f.pow%2 == 0 {
			// Even power: x^2k >= 0 always; > 0 only if x != 0 which we
			// cannot express, so weaken strict to non-strict.
			switch fs {
			case GT0, LT0:
				fs = GT0
			default:
				fs = GE0
			}
		}
		s = mulSign(s, fs)
		if s == Unknown {
			return Unknown
		}
	}
	return s
}

func mulSign(x, y Sign) Sign {
	switch {
	case x == Unknown || y == Unknown:
		return Unknown
	case x == GT0 && y == GT0, x == LT0 && y == LT0:
		return GT0
	case (x == GT0 && y == LT0) || (x == LT0 && y == GT0):
		return LT0
	case (x == GE0 && (y == GE0 || y == GT0)) || (x == GT0 && y == GE0):
		return GE0
	case (x == LE0 && (y == LE0 || y == LT0)) || (x == LT0 && y == LE0):
		return GE0
	case (x == GE0 && (y == LE0 || y == LT0)) || ((x == LE0 || x == LT0) && y == GE0),
		(x == GT0 && y == LE0) || (x == LE0 && y == GT0):
		return LE0
	}
	return Unknown
}

// proveDiffGE0 conservatively proves y - x + extra >= 0 without ever
// materializing the difference: it walks both term maps computing each
// virtual difference coefficient on the fly, scales by the common
// denominator coefficient-wise, and applies the same sign/budget logic the
// historical ProveGE0 ran over an allocated y.Sub(x) clone. Every rat
// overflow returns false — exactly the verdict the allocating path reached
// by degrading the overflowed result to an opaque (Unknown-sign) atom.
// This is the allocation-free fast path behind all four public provers,
// which sit under every dependence/property query.
func proveDiffGE0(y, x *Expr, extra int64, a Assumptions) bool {
	k := y.konst.sub(x.konst).add(ratInt(extra))
	if k.invalid() {
		return false
	}
	// Pass 1: common denominator over the constant and every nonzero
	// difference coefficient; 0 means lcm overflow (cannot scale, cannot
	// prove). The virtual-diff walk repeats in pass 2 with the scaled
	// coefficients — the double walk is still far cheaper than the clone
	// + map-merge the materialized difference used to cost.
	den := int64(1)
	if !k.isInt() {
		den = lcm64(den, k.d)
	}
	for key, yt := range y.terms {
		c := yt.coef
		if xt, ok := x.terms[key]; ok {
			c = c.sub(xt.coef)
		}
		if c.invalid() {
			return false
		}
		if !c.isZero() && !c.isInt() {
			den = lcm64(den, c.d)
		}
		if den == 0 {
			return false
		}
	}
	for key, xt := range x.terms {
		if _, ok := y.terms[key]; ok {
			continue // visited from y's side
		}
		c := xt.coef.neg()
		if c.invalid() {
			return false
		}
		if !c.isZero() && !c.isInt() {
			den = lcm64(den, c.d)
		}
		if den == 0 {
			return false
		}
	}
	if den != 1 {
		k = k.mul(ratInt(den))
		if k.invalid() {
			return false
		}
	}
	// Pass 2: sign-check each scaled difference coefficient. A negative
	// constant must be covered by strictly positive terms: GT0 means
	// >= 1 for integer atoms, so a GT0 term with coefficient c
	// contributes at least |c| (the budget regime of the historical
	// prover); with a nonnegative constant every term must be GE0/GT0.
	needBudget := k.n < 0
	budget := k.n
	for key, yt := range y.terms {
		c := yt.coef
		if xt, ok := x.terms[key]; ok {
			c = c.sub(xt.coef)
		}
		if c.isZero() {
			continue // cancelled term: absent from the difference
		}
		if !diffTermOK(c, yt.factors, den, needBudget, &budget, a) {
			return false
		}
	}
	for key, xt := range x.terms {
		if _, ok := y.terms[key]; ok {
			continue
		}
		c := xt.coef.neg()
		if c.isZero() {
			continue
		}
		if !diffTermOK(c, xt.factors, den, needBudget, &budget, a) {
			return false
		}
	}
	return !needBudget || budget >= 0
}

// diffTermOK sign-checks one nonzero difference term for proveDiffGE0,
// scaling the coefficient by den first. In the budget regime a GT0 term
// pays |coef| toward the negative constant and GE0 is free; otherwise the
// term itself must be provably nonnegative.
func diffTermOK(c rat, factors []factor, den int64, needBudget bool, budget *int64, a Assumptions) bool {
	if den != 1 {
		c = c.mul(ratInt(den))
	}
	s := coefSign(c, factors, a)
	if !needBudget {
		return s == GE0 || s == GT0
	}
	switch s {
	case GT0:
		n := c.n
		if n < 0 {
			n = -n
		}
		*budget += n
	case GE0:
		// contributes >= 0
	default:
		return false
	}
	return true
}

// ProveGE0 conservatively proves e >= 0 under the assumptions: true means
// provably nonnegative; false means "could not prove", not "negative".
// Rational coefficients are cleared by scaling with the (positive) common
// denominator, which preserves the sign.
func ProveGE0(e *Expr, a Assumptions) bool { return proveDiffGE0(e, Zero, 0, a) }

// ProveGT0 conservatively proves e >= 1.
func ProveGT0(e *Expr, a Assumptions) bool { return proveDiffGE0(e, Zero, -1, a) }

// ProveLE conservatively proves x <= y.
func ProveLE(x, y *Expr, a Assumptions) bool { return proveDiffGE0(y, x, 0, a) }

// ProveLT conservatively proves x < y (x <= y-1 over the integers).
func ProveLT(x, y *Expr, a Assumptions) bool { return proveDiffGE0(y, x, -1, a) }

// ---------------------------------------------------------------------------
// Symbolic ranges

// Range is a closed symbolic interval [Lo, Hi]. Either bound may be nil,
// meaning unbounded in that direction.
type Range struct {
	Lo, Hi *Expr
}

// NewRange builds a range from two expressions.
func NewRange(lo, hi *Expr) Range { return Range{Lo: lo, Hi: hi} }

// ConstRange builds [lo, hi] with constant bounds.
func ConstRange(lo, hi int64) Range { return Range{Lo: Const(lo), Hi: Const(hi)} }

// Point builds the degenerate range [e, e].
func Point(e *Expr) Range { return Range{Lo: e, Hi: e} }

// IsPoint reports whether the range is a single known expression.
func (r Range) IsPoint() bool {
	return r.Lo != nil && r.Hi != nil && r.Lo.Equal(r.Hi)
}

func (r Range) String() string {
	lo, hi := "-inf", "+inf"
	if r.Lo != nil {
		lo = r.Lo.String()
	}
	if r.Hi != nil {
		hi = r.Hi.String()
	}
	return "[" + lo + ":" + hi + "]"
}

// Env maps variable names (typically loop indices) to their value ranges.
type Env map[string]Range

// With returns a copy of env extended with name:r.
func (env Env) With(name string, r Range) Env {
	n := make(Env, len(env)+1)
	for k, v := range env {
		n[k] = v
	}
	n[name] = r
	return n
}

// Vars returns the sorted variable names bound in the environment.
func (env Env) Vars() []string {
	vs := make([]string, 0, len(env))
	for v := range env {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Bounds computes a symbolic range for e under env and assumptions: each
// environment variable is replaced by its lower or upper bound according to
// the sign of its coefficient. ok is false when e uses an environment
// variable in a position the method cannot bound (non-linear occurrence,
// occurrence inside an opaque atom, or a product with another environment
// variable of unknown sign).
//
// This is the bound-substitution step of Banerjee's test, extended to
// symbolic bounds as in the range test (Blume & Eigenmann), which the
// offset–length test builds on (paper §3.2.7).
func Bounds(e *Expr, env Env, a Assumptions) (Range, bool) {
	lo, hi := e, e
	// Eliminate innermost variables first: if u's range mentions v (u is
	// nested inside v's loop), u must be eliminated before v, otherwise
	// substituting v's bounds loses the u–v correlation and the interval
	// widens needlessly (Banerjee's test substitutes innermost-first).
	order := eliminationOrder(env)
	// Eliminating one variable can still introduce another, so iterate to
	// a fixed point; a cyclic environment is caught by the final
	// MentionsVar check.
	for pass := 0; pass <= len(env); pass++ {
		changed := false
		for _, v := range order {
			r := env[v]
			if lo.HasAtom(v) {
				coef, rest, ok := lo.Affine(v)
				if !ok {
					return Range{}, false
				}
				lo = substBound(coef, rest, r, false)
				if lo == nil {
					return Range{}, false
				}
				changed = true
			}
			if hi.HasAtom(v) {
				coef, rest, ok := hi.Affine(v)
				if !ok {
					return Range{}, false
				}
				hi = substBound(coef, rest, r, true)
				if hi == nil {
					return Range{}, false
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Any remaining env vars (hidden inside atoms, or a cyclic
	// environment) make the bound invalid.
	for v := range env {
		if lo.MentionsVar(v) || hi.MentionsVar(v) {
			return Range{}, false
		}
	}
	return Range{Lo: lo, Hi: hi}, true
}

// eliminationOrder sorts the environment variables innermost-first: a
// variable whose range mentions another pending variable is nested inside
// it and must be eliminated earlier. Ties and cycles fall back to name
// order (cycles are then caught by the caller's residual-mention check).
func eliminationOrder(env Env) []string {
	pending := env.Vars()
	order := make([]string, 0, len(pending))
	for len(pending) > 0 {
		picked := -1
		for i, v := range pending {
			mentionedByOther := false
			for _, u := range pending {
				if u == v {
					continue
				}
				r := env[u]
				if (r.Lo != nil && r.Lo.MentionsVar(v)) || (r.Hi != nil && r.Hi.MentionsVar(v)) {
					mentionedByOther = true
					break
				}
			}
			if !mentionedByOther {
				picked = i
				break
			}
		}
		if picked < 0 {
			picked = 0 // cycle: arbitrary but deterministic
		}
		// The picked variable is mentioned by no other pending range, so
		// it is innermost: an inner index appears in no other variable's
		// bounds, while its own bounds mention the outer indices.
		order = append(order, pending[picked])
		pending = append(pending[:picked], pending[picked+1:]...)
	}
	return order
}

// substBound replaces coef·v (+ rest) by coef·bound + rest choosing the
// bound that maximises (wantHi) or minimises the value.
func substBound(coef int64, rest *Expr, r Range, wantHi bool) *Expr {
	if coef == 0 {
		return rest
	}
	var b *Expr
	if (coef > 0) == wantHi {
		b = r.Hi
	} else {
		b = r.Lo
	}
	if b == nil {
		return nil
	}
	return rest.Add(b.MulConst(coef))
}

// DisjointRanges conservatively proves that ranges r1 and r2 do not
// intersect: r1.Hi < r2.Lo or r2.Hi < r1.Lo.
func DisjointRanges(r1, r2 Range, a Assumptions) bool {
	if r1.Hi != nil && r2.Lo != nil && ProveLT(r1.Hi, r2.Lo, a) {
		return true
	}
	if r2.Hi != nil && r1.Lo != nil && ProveLT(r2.Hi, r1.Lo, a) {
		return true
	}
	return false
}

// RangeContains conservatively proves outer ⊇ inner.
func RangeContains(outer, inner Range, a Assumptions) bool {
	loOK := outer.Lo == nil || (inner.Lo != nil && ProveLE(outer.Lo, inner.Lo, a))
	hiOK := outer.Hi == nil || (inner.Hi != nil && ProveLE(inner.Hi, outer.Hi, a))
	return loOK && hiOK
}
