package expr

import "fmt"

// rat is a rational coefficient n/d with d >= 1, kept normalized. Rational
// coefficients appear only through provably exact division (e.g. the
// triangular form i*(i-1)/2, whose divisibility by 2 follows from parity);
// truncating integer division otherwise stays an opaque atom.
type rat struct {
	n, d int64
}

func ratInt(n int64) rat { return rat{n, 1} }

func (r rat) norm() rat {
	if r.d == 0 {
		panic("expr: zero denominator")
	}
	if r.n == 0 {
		return rat{0, 1}
	}
	if r.d < 0 {
		r.n, r.d = -r.n, -r.d
	}
	g := gcdAbs(r.n, r.d)
	if g > 1 {
		r.n /= g
		r.d /= g
	}
	return r
}

func gcdAbs(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (r rat) isZero() bool { return r.n == 0 }
func (r rat) isInt() bool  { return r.d == 1 }
func (r rat) sign() int {
	switch {
	case r.n > 0:
		return 1
	case r.n < 0:
		return -1
	default:
		return 0
	}
}

func (r rat) add(o rat) rat { return rat{r.n*o.d + o.n*r.d, r.d * o.d}.norm() }
func (r rat) mul(o rat) rat { return rat{r.n * o.n, r.d * o.d}.norm() }
func (r rat) neg() rat      { return rat{-r.n, r.d} }

// divInt divides by a nonzero integer.
func (r rat) divInt(c int64) rat { return rat{r.n, r.d * c}.norm() }

func (r rat) String() string {
	if r.d == 1 {
		return fmt.Sprintf("%d", r.n)
	}
	return fmt.Sprintf("%d/%d", r.n, r.d)
}

// lcm64 returns the least common multiple (inputs positive).
func lcm64(a, b int64) int64 {
	return a / gcdAbs(a, b) * b
}
