package expr

import (
	"fmt"
	"math"
)

// rat is a rational coefficient n/d with d >= 1, kept normalized. Rational
// coefficients appear only through provably exact division (e.g. the
// triangular form i*(i-1)/2, whose divisibility by 2 follows from parity);
// truncating integer division otherwise stays an opaque atom.
//
// Arithmetic is checked: an int64 overflow yields ratInvalid instead of
// silently wrapping, and the Expr operations degrade any result carrying an
// invalid coefficient to an opaque atom (a sound "unknown"). ratInvalid has
// a nonzero numerator on purpose — isZero must stay false so addTerm never
// silently deletes an overflowed term before the degrade check sees it.
type rat struct {
	n, d int64
}

// ratInvalid marks an overflowed coefficient (the only rat with d == 0).
var ratInvalid = rat{1, 0}

func ratInt(n int64) rat { return rat{n, 1} }

func (r rat) invalid() bool { return r.d == 0 }

func (r rat) norm() rat {
	if r.d == 0 {
		return ratInvalid
	}
	if r.n == 0 {
		return rat{0, 1}
	}
	if r.d < 0 {
		r.n, r.d = -r.n, -r.d
	}
	g := gcdAbs(r.n, r.d)
	if g > 1 {
		r.n /= g
		r.d /= g
	}
	return r
}

func gcdAbs(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (r rat) isZero() bool { return r.n == 0 && r.d != 0 }
func (r rat) isInt() bool  { return r.d == 1 }
func (r rat) sign() int {
	switch {
	case r.d == 0:
		return 0 // invalid: no usable sign
	case r.n > 0:
		return 1
	case r.n < 0:
		return -1
	default:
		return 0
	}
}

// addOvf adds two int64s, reporting overflow.
func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mulOvf multiplies two int64s, reporting overflow.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	// MinInt64 * -1 wraps back to MinInt64, so the division check below
	// would miss it.
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func (r rat) add(o rat) rat {
	if r.invalid() || o.invalid() {
		return ratInvalid
	}
	ad, ok1 := mulOvf(r.n, o.d)
	bc, ok2 := mulOvf(o.n, r.d)
	if !ok1 || !ok2 {
		return ratInvalid
	}
	n, ok3 := addOvf(ad, bc)
	d, ok4 := mulOvf(r.d, o.d)
	if !ok3 || !ok4 {
		return ratInvalid
	}
	return rat{n, d}.norm()
}

func (r rat) sub(o rat) rat { return r.add(o.neg()) }

func (r rat) mul(o rat) rat {
	if r.invalid() || o.invalid() {
		return ratInvalid
	}
	n, ok1 := mulOvf(r.n, o.n)
	d, ok2 := mulOvf(r.d, o.d)
	if !ok1 || !ok2 {
		return ratInvalid
	}
	return rat{n, d}.norm()
}

func (r rat) neg() rat {
	if r.invalid() || r.n == math.MinInt64 {
		return ratInvalid
	}
	return rat{-r.n, r.d}
}

// divInt divides by a nonzero integer.
func (r rat) divInt(c int64) rat {
	if r.invalid() {
		return ratInvalid
	}
	d, ok := mulOvf(r.d, c)
	if !ok || d == 0 {
		return ratInvalid
	}
	return rat{r.n, d}.norm()
}

func (r rat) String() string {
	if r.d == 1 {
		return fmt.Sprintf("%d", r.n)
	}
	return fmt.Sprintf("%d/%d", r.n, r.d)
}

// lcm64 returns the least common multiple (inputs positive), or 0 on
// overflow — callers treat a 0 denominator as "cannot scale".
func lcm64(a, b int64) int64 {
	m, ok := mulOvf(a/gcdAbs(a, b), b)
	if !ok {
		return 0
	}
	return m
}
