package expr

import (
	"testing"

	"repro/internal/lang"
)

func TestTriangularDivisionExact(t *testing.T) {
	// i*(i-1)/2 must stay a polynomial with rational coefficients, so
	// differences telescope.
	f := sym(t, "i * (i - 1) / 2")
	fNext := f.SubstVar("i", Var("i").AddConst(1))
	diff := fNext.Sub(f)
	if !diff.Equal(Var("i")) {
		t.Errorf("f(i+1) - f(i) = %s, want i", diff)
	}
}

func TestParityRuleVariants(t *testing.T) {
	// (i^2 + i)/2 is exact by parity.
	e := sym(t, "(i * i + i) / 2")
	if e.Atoms()[0] == "" {
	}
	doubled := e.MulConst(2)
	if !doubled.Equal(sym(t, "i * i + i")) {
		t.Errorf("2 * (i²+i)/2 = %s", doubled)
	}
	// (i*j + i*j)/2 = i*j (coefficient-wise).
	if !sym(t, "(i*j + i*j) / 2").Equal(sym(t, "i*j")) {
		t.Error("coefficient-divisible case")
	}
	// (i + 1)/2 is NOT exact: stays opaque.
	if sym(t, "(i + 1) / 2").Equal(sym(t, "i / 2").AddConst(0).Add(constRat(rat{1, 2}))) {
		t.Error("(i+1)/2 must not become rational")
	}
	if len(sym(t, "(i + 1) / 2").Atoms()) != 1 {
		t.Error("(i+1)/2 should be one opaque atom")
	}
	// (i^2 + i + 1)/2: odd constant, not exact.
	if len(sym(t, "(i*i + i + 1) / 2").Atoms()) != 1 {
		t.Error("(i²+i+1)/2 should stay opaque")
	}
	// (i^3 - i)/2: i³ ≡ i (mod 2) so i³ - i is even... i³-i = i(i-1)(i+1),
	// divisible by 2. Squarefree reduction maps i^3 -> i, so coefficients
	// cancel: exact.
	e3 := sym(t, "(i ** 3 - i) / 2")
	if len(e3.Atoms()) != 1 || e3.Atoms()[0] != "i" {
		t.Errorf("(i³-i)/2 should be rational-coefficient polynomial over i: %s", e3)
	}
}

func TestNegativeDivisorExact(t *testing.T) {
	e := sym(t, "(2 * i + 4) / (0 - 2)")
	if !e.Equal(sym(t, "0 - i - 2")) {
		t.Errorf("(2i+4)/(-2) = %s, want -i-2", e)
	}
}

func TestRationalToASTWholeExpressionDivision(t *testing.T) {
	// The AST for a rational-coefficient form must divide the whole
	// scaled expression once, preserving truncating semantics.
	f := sym(t, "i * (i - 1) / 2")
	ast := f.ToAST()
	bin, ok := ast.(*lang.Binary)
	if !ok || bin.Op != lang.OpDiv {
		t.Fatalf("expected a top-level division, got %s", lang.FormatExpr(ast))
	}
	if lit, ok := bin.Y.(*lang.IntLit); !ok || lit.Value != 2 {
		t.Errorf("divisor: %s", lang.FormatExpr(bin.Y))
	}
	// Round trip preserves equality.
	if !FromAST(ast).Equal(f) {
		t.Errorf("round trip: %s", FromAST(ast))
	}
}

func TestRationalProofs(t *testing.T) {
	f := sym(t, "i * (i - 1) / 2")
	a := Assumptions{"i": GT0}
	// What the TRFD dependence proof actually needs: differences of the
	// closed form telescope to affine expressions whose signs are
	// provable. f(i+1) - f(i) - i == 0 exactly.
	diff := f.SubstVar("i", Var("i").AddConst(1)).Sub(f).Sub(Var("i"))
	if !diff.IsZero() {
		t.Errorf("telescoping failed: %s", diff)
	}
	// f(i+1) - f(i) = i >= 1 under i >= 1: the separation proof.
	step := f.SubstVar("i", Var("i").AddConst(1)).Sub(f)
	if !ProveGT0(step, a) {
		t.Errorf("step %s should be provably >= 1 for i >= 1", step)
	}
	// Scaling clears denominators: 2*f has integer coefficients and the
	// even-power term is provably nonnegative on its own.
	if !ProveGE0(sym(t, "(2 * i * i) / 2"), nil) {
		t.Error("i^2 >= 0 must be provable")
	}
	// The conservative prover deliberately cannot factor i*(i-1); it must
	// answer "unproven", never a wrong "proven".
	if ProveGE0(sym(t, "0 - i * (i - 1) / 2"), a) {
		t.Error("-(i²-i)/2 is negative for i >= 2; proving it nonnegative would be unsound")
	}
}

func TestRationalString(t *testing.T) {
	f := sym(t, "i * (i - 1) / 2")
	s := f.String()
	if s != "-1/2*i + 1/2*i^2" {
		t.Errorf("canonical rendering: %q", s)
	}
}

func TestIsConstRejectsRational(t *testing.T) {
	half := constRat(rat{1, 2})
	if _, ok := half.IsConst(); ok {
		t.Error("1/2 must not report as an integer constant")
	}
	if half.IsZero() {
		t.Error("1/2 is not zero")
	}
}

func TestRatNormalization(t *testing.T) {
	cases := []struct {
		in   rat
		want rat
	}{
		{rat{2, 4}, rat{1, 2}},
		{rat{-2, 4}, rat{-1, 2}},
		{rat{2, -4}, rat{-1, 2}},
		{rat{0, 5}, rat{0, 1}},
		{rat{6, 3}, rat{2, 1}},
	}
	for _, c := range cases {
		if got := c.in.norm(); got != c.want {
			t.Errorf("norm(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if got := ratInt(3).add(rat{1, 2}); got != (rat{7, 2}) {
		t.Errorf("3 + 1/2 = %v", got)
	}
	if got := (rat{2, 3}).mul(rat{3, 4}); got != (rat{1, 2}) {
		t.Errorf("2/3 * 3/4 = %v", got)
	}
}

func TestSubstAtom(t *testing.T) {
	e := sym(t, "pptr(i + 1) + 3")
	key := "pptr(i + 1)"
	repl := sym(t, "pptr(i) + iblen(i)")
	got := e.SubstAtom(key, repl)
	want := sym(t, "pptr(i) + iblen(i) + 3")
	if !got.Equal(want) {
		t.Errorf("SubstAtom = %s, want %s", got, want)
	}
	// Absent atom: unchanged.
	if e.SubstAtom("nosuch(1)", repl) != e {
		t.Error("absent atom should return the receiver")
	}
}

func TestArrayAtoms(t *testing.T) {
	e := sym(t, "pptr(i) + pptr(i + 1) + iblen(i) * 2 + j")
	got := e.ArrayAtoms("pptr")
	if len(got) != 2 {
		t.Fatalf("pptr atoms: %v", got)
	}
	if _, ok := got["pptr(i)"]; !ok {
		t.Errorf("missing pptr(i): %v", got)
	}
	sub, ok := got["pptr(i + 1)"]
	if !ok || !sub.Equal(sym(t, "i + 1")) {
		t.Errorf("pptr(i+1) subscript: %v", sub)
	}
	if len(e.ArrayAtoms("iblen")) != 1 {
		t.Error("iblen atom missing")
	}
	if len(e.ArrayAtoms("zzz")) != 0 {
		t.Error("phantom atoms")
	}
}
