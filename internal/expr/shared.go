package expr

import "sync"

// internShards is the shard count of a SharedInterner. 16 keeps per-shard
// contention negligible at realistic -jobs while the whole shard array
// stays a few cache lines; it must be a power of two for the mask below.
const internShards = 16

// internShardCap bounds the entries of one shard. When a shard fills, the
// whole shard map is dropped (coarse eviction): the shared table is a
// performance cache, so losing entries only costs re-interning, never
// correctness.
const internShardCap = 1 << 15

// internShard is one lock-striped slice of the shared canonical-key table.
// The struct is padded to a 64-byte cache line like the obs counters, so
// shards hammered by different workers never false-share.
type internShard struct {
	mu        sync.Mutex
	byKey     map[string]*Expr
	hits      int64
	misses    int64
	evictions int64
	// 24 pad bytes round the 40 bytes above (8 mutex + 8 map header +
	// 3×8 counters) up to one 64-byte line.
	_ [24]byte
}

// SharedInterner is a process-lifetime, concurrency-safe canonical-key
// table shared across compilations: N-way sharded by key hash, one mutex
// per shard. It backs per-compilation Interners (see Interner method):
// the local interner still answers repeats within one compilation from
// its unsynchronized map, and only first-time keys take a shard lock, so
// the shared layer adds no cost to the hot intra-compile path.
//
// Scoping: entries are keyed by (scope, canonical key). Representatives
// hold references to the program's AST (atoms), so two compilations may
// share representatives only when they compile the same program the same
// way; the pipeline derives the scope from a hash of the source and every
// output-relevant option. The shard mutex orders the installing write
// before any cross-goroutine read of the representative, so a compilation
// reading another's Expr observes it fully built.
type SharedInterner struct {
	shards [internShards]internShard
	// shardCap bounds each shard (internShardCap; tests shrink it).
	shardCap int
}

// NewSharedInterner builds an empty shared table.
func NewSharedInterner() *SharedInterner {
	s := &SharedInterner{shardCap: internShardCap}
	for i := range s.shards {
		s.shards[i].byKey = make(map[string]*Expr)
	}
	return s
}

// Interner builds a per-compilation interner backed by s: local misses
// consult (and populate) the shared table under the scope key. The
// returned Interner is still single-goroutine, like every Interner; only
// the shared backing is synchronized.
func (s *SharedInterner) Interner(scope string) *Interner {
	in := NewInterner()
	in.shared = s
	in.scope = scope
	return in
}

// shardHash is FNV-1a over the scope and key, matching the obs counter
// sharding discipline.
func shardHash(scope, key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(scope); i++ {
		h ^= uint32(scope[i])
		h *= prime32
	}
	h ^= '|'
	h *= prime32
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// intern returns the shared representative for (scope, key), installing e
// as the representative if the pair is new. e's canonical key is cached
// under the shard lock before e becomes visible to other goroutines.
func (s *SharedInterner) intern(scope, key string, e *Expr) *Expr {
	sh := &s.shards[shardHash(scope, key)&(internShards-1)]
	full := scope + "\x00" + key
	sh.mu.Lock()
	if r, ok := sh.byKey[full]; ok {
		sh.hits++
		sh.mu.Unlock()
		return r
	}
	if len(sh.byKey) >= s.shardCap {
		sh.byKey = make(map[string]*Expr)
		sh.evictions++
	}
	if e.ckey == "" {
		e.ckey = key
	}
	sh.byKey[full] = e
	sh.misses++
	sh.mu.Unlock()
	return e
}

// SharedInternStats aggregates the shard counters of a SharedInterner.
type SharedInternStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
}

// Stats merges the per-shard counters. Each shard is read under its own
// lock, so the totals are torn-free even while interning continues; the
// pipeline calls this once per compile (or report), never on a hot path.
func (s *SharedInterner) Stats() SharedInternStats {
	var out SharedInternStats
	if s == nil {
		return out
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Hits += sh.hits
		out.Misses += sh.misses
		out.Evictions += sh.evictions
		out.Entries += int64(len(sh.byKey))
		sh.mu.Unlock()
	}
	return out
}
