package expr

import (
	"fmt"
	"sync"
	"testing"
)

// buildProbe constructs a non-trivial expression deterministically from a
// seed, without interning.
func buildProbe(seed int) *Expr {
	e := Var("i").MulConst(int64(seed%7 + 1))
	e = e.Add(Var("j").MulConst(int64(seed%5 + 2)))
	e = e.Add(Var("n").Mul(Var("i")))
	return e.AddConst(int64(seed % 3))
}

// TestSharedInternerConcurrentEqual hammers one shared table from many
// goroutines interning structurally equal expressions under the same
// scope: all of them must converge on a single representative pointer,
// and the merged stats must balance. Run with -race.
func TestSharedInternerConcurrentEqual(t *testing.T) {
	shared := NewSharedInterner()
	const workers = 8
	const rounds = 200
	const variants = 11

	reps := make([][]*Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := shared.Interner("scope")
			got := make([]*Expr, variants)
			for r := 0; r < rounds; r++ {
				for v := 0; v < variants; v++ {
					e := in.Intern(buildProbe(v))
					if got[v] == nil {
						got[v] = e
					} else if got[v] != e {
						t.Errorf("worker %d: variant %d re-interned to a different pointer", w, v)
						return
					}
				}
			}
			reps[w] = got
		}(w)
	}
	wg.Wait()

	for v := 0; v < variants; v++ {
		for w := 1; w < workers; w++ {
			if reps[w] == nil || reps[0] == nil {
				t.Fatalf("worker result missing")
			}
			if reps[w][v] != reps[0][v] {
				t.Fatalf("variant %d: workers 0 and %d hold different representatives", v, w)
			}
		}
		if reps[0][v].ckey == "" {
			t.Fatalf("variant %d: representative has no cached canonical key", v)
		}
	}

	st := shared.Stats()
	if st.Misses != variants {
		t.Fatalf("shared misses = %d, want %d (one install per distinct key)", st.Misses, variants)
	}
	if st.Hits != int64(workers-1)*variants {
		t.Fatalf("shared hits = %d, want %d", st.Hits, int64(workers-1)*variants)
	}
	if st.Entries != variants {
		t.Fatalf("shared entries = %d, want %d", st.Entries, variants)
	}
}

// TestSharedInternerScopeIsolation checks that different scopes never
// share representatives: the same canonical key interned under two scopes
// yields two pointers.
func TestSharedInternerScopeIsolation(t *testing.T) {
	shared := NewSharedInterner()
	a := shared.Interner("progA").Intern(buildProbe(1))
	b := shared.Interner("progB").Intern(buildProbe(1))
	if a == b {
		t.Fatalf("scopes progA and progB shared a representative")
	}
	if a.String() != b.String() {
		t.Fatalf("probe rendering differs across scopes: %q vs %q", a, b)
	}
}

// TestSharedInternerEviction fills one scope beyond the shard cap and
// checks the table stays bounded and correct (re-interning after an
// eviction still canonicalizes).
func TestSharedInternerEviction(t *testing.T) {
	shared := NewSharedInterner()
	shared.shardCap = 32 // shrink from internShardCap to keep the test fast
	in := shared.Interner("s")
	n := shared.shardCap*internShards + internShards*4
	for i := 0; i < n; i++ {
		in.Intern(Var("v").AddConst(int64(i)))
	}
	st := shared.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after %d inserts across %d-cap shards", n, shared.shardCap)
	}
	if st.Entries > int64(internShards*shared.shardCap) {
		t.Fatalf("entries %d exceed the aggregate cap", st.Entries)
	}
	// A fresh compilation still converges with a current resident.
	in2 := shared.Interner("s")
	p1 := in2.Intern(Var("w").AddConst(1))
	p2 := shared.Interner("s").Intern(Var("w").AddConst(1))
	if p1 != p2 {
		t.Fatalf("post-eviction interning no longer canonicalizes")
	}
}

// TestSharedInternerStatsDuringTraffic reads Stats concurrently with
// interning; -race verifies no torn reads.
func TestSharedInternerStatsDuringTraffic(t *testing.T) {
	shared := NewSharedInterner()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := shared.Interner("s")
			for i := 0; i < 500; i++ {
				in.Intern(Var(fmt.Sprintf("x%d", i%50)).AddConst(int64(w)))
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			st := shared.Stats()
			if st.Hits+st.Misses == 0 {
				t.Fatalf("no traffic recorded")
			}
			return
		default:
			_ = shared.Stats()
		}
	}
}
