// Package gateway implements irrgw, the consistent-hash reverse proxy
// that scales irrd horizontally: requests fan out across M irrd backends,
// routed by the same content-addressed affinity digest irrd derives its
// cross-request cache key from (internal/api.AffinityDigest). The
// compiler is deterministic, so identical compiles are interchangeable —
// sending them to the same backend compounds that backend's response
// cache and shared analysis cache, and the fleet behaves like one big
// cache sharded by request content.
//
// Reliability layer:
//
//   - An active health-check loop probes every backend's /healthz on a
//     configurable interval; FailThreshold consecutive failures eject the
//     backend from routing, PassThreshold consecutive successes readmit
//     it. Ejection is advisory: with every backend ejected the gateway
//     still tries them (stale health info must not turn a recovered
//     fleet away).
//   - Requests retry across the key's rendezvous preference order with
//     jittered exponential backoff on connect failures and upstream 5xx,
//     so a single backend loss is absorbed, never surfaced. Compiles are
//     deterministic and side-effect free, which is what makes POST retry
//     safe here.
//   - Every response carries X-Irrd-Backend naming the backend that
//     served it, and the gateway's own /metrics exposes
//     irrgw_requests_total{backend,outcome}, per-endpoint routing
//     latency histograms, per-backend up/inflight gauges and
//     ejection/readmission counters.
//
// Proxied bodies are relayed byte-for-byte (no re-encoding), so a gateway
// response is byte-identical to the backend's — the CI smoke and
// servebench assert exactly that.
package gateway

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Config describes the fleet and the gateway's reliability policy; the
// zero value of every field except Backends gets a sensible default.
type Config struct {
	// Backends are the irrd base URLs (e.g. "http://127.0.0.1:8080").
	// At least one is required. Order is irrelevant: routing depends
	// only on the set.
	Backends []string
	// ProbeInterval is the health-check period per backend (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that eject a
	// backend (default 2).
	FailThreshold int
	// PassThreshold is the consecutive probe successes that readmit an
	// ejected backend (default 2).
	PassThreshold int
	// MaxAttempts bounds how many distinct backends one request may try
	// (default 3, clamped to the backend count).
	MaxAttempts int
	// RetryBase is the first retry's backoff; each further retry doubles
	// it, and every wait is jittered ±50% (default 25ms).
	RetryBase time.Duration
	// RetryMax caps the backoff (default 500ms).
	RetryMax time.Duration
	// MaxBodyBytes bounds a proxied request body (default 2MiB — irrd's
	// own source limit plus envelope headroom).
	MaxBodyBytes int64
	// Transport is the shared upstream transport (default: a pooled
	// http.Transport sized for concurrent fan-out).
	Transport http.RoundTripper
	// Logger receives one structured line per proxied request and per
	// health transition. nil discards the log.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.PassThreshold <= 0 {
		c.PassThreshold = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 500 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 2 << 20
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return c
}

// backend is one irrd instance behind the gateway.
type backend struct {
	name   string // host:port — the metrics label and X-Irrd-Backend value
	url    string
	client *api.Client

	up         boolFlag
	inflight   counter
	consecFail counter
	consecPass counter
}

// boolFlag and counter are tiny atomics wrappers keeping backend readable.
type boolFlag struct{ v int32 }
type counter struct{ v int64 }

// Gateway is the irrgw service. Construct with New, launch the health
// loops with Start, and serve it as an http.Handler.
type Gateway struct {
	cfg      Config
	rec      *obs.Recorder
	log      *slog.Logger
	backends []*backend
	names    []string // canonical backend names, parallel to backends
	mux      *http.ServeMux

	startOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// New builds the gateway over the configured backend set.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend is required")
	}
	g := &Gateway{
		cfg:  cfg,
		rec:  obs.New(),
		log:  cfg.Logger,
		mux:  http.NewServeMux(),
		stop: make(chan struct{}),
	}
	if g.log == nil {
		g.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	hc := &http.Client{Transport: cfg.Transport}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		base := strings.TrimRight(raw, "/")
		u, err := url.Parse(base)
		if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return nil, fmt.Errorf("gateway: bad backend URL %q", raw)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", u.Host)
		}
		seen[u.Host] = true
		b := &backend{
			name:   u.Host,
			url:    base,
			client: api.NewClient(base, api.WithHTTPClient(hc)),
		}
		// Optimistically live: traffic flows before the first probe and
		// the health loop corrects within one interval.
		b.up.store(true)
		g.backends = append(g.backends, b)
		g.names = append(g.names, b.name)
		g.rec.Count("irrgw_backend_up:backend="+b.name, 1)
	}
	g.mux.HandleFunc("POST /v1/compile", g.proxy("compile", false))
	g.mux.HandleFunc("POST /v1/run", g.proxy("run", false))
	g.mux.HandleFunc("POST /v1/lint", g.proxy("lint", true))
	g.mux.HandleFunc("GET /v1/kernels", g.handleKernels)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Start launches the per-backend health-check loops (idempotent).
func (g *Gateway) Start() {
	g.startOnce.Do(func() {
		for _, b := range g.backends {
			g.wg.Add(1)
			go g.healthLoop(b)
		}
	})
}

// Close stops the health loops and waits for them to exit.
func (g *Gateway) Close() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Live reports how many backends are currently admitted to routing.
func (g *Gateway) Live() int {
	n := 0
	for _, b := range g.backends {
		if b.up.load() {
			n++
		}
	}
	return n
}

// affinityKey derives the routing key of a proxied body: the same
// content-addressed digest irrd keys its response cache with, so a key's
// rendezvous winner is also the backend whose cache is warm for it. A
// body that does not decode (the backend will reject it with the
// canonical 400) digests raw — still deterministic, so even garbage is
// routed consistently.
func affinityKey(body []byte, lintPhase bool) string {
	var req api.CompileRequest
	if err := json.Unmarshal(body, &req); err == nil {
		if err := req.Normalize(); err == nil {
			return req.AffinityDigest(lintPhase)
		}
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// candidates is the attempt order for key: every backend in rendezvous
// preference order, live ones first. Ejected backends stay in the tail —
// if the whole fleet looks down, stale health info must not reject a
// request that a recovered backend could serve.
func (g *Gateway) candidates(key string) []*backend {
	order := rank(g.names, key)
	live := make([]*backend, 0, len(order))
	var down []*backend
	for _, i := range order {
		if b := g.backends[i]; b.up.load() {
			live = append(live, b)
		} else {
			down = append(down, b)
		}
	}
	return append(live, down...)
}

// ensureRequestID accepts the client's X-Request-Id or generates one, and
// echoes it on the response.
func (g *Gateway) ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(api.RequestIDHeader)
	if id == "" {
		id = fmt.Sprintf("%016x", rand.Uint64())
		r.Header.Set(api.RequestIDHeader, id)
	}
	w.Header().Set(api.RequestIDHeader, id)
	return id
}

// proxy builds the handler for one POST endpoint. lintPhase folds the
// endpoint's diagnostics phase into the affinity digest, mirroring the
// backend's cache-key derivation.
func (g *Gateway) proxy(endpoint string, lintPhase bool) http.HandlerFunc {
	path := "/v1/" + endpoint
	return func(w http.ResponseWriter, r *http.Request) {
		id := g.ensureRequestID(w, r)
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				api.WriteError(w, api.KindResourceLimit,
					fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBodyBytes), id)
			} else {
				api.WriteError(w, api.KindInternal, "reading request body: "+err.Error(), id)
			}
			return
		}
		g.route(w, r, endpoint, path, body, affinityKey(body, lintPhase), id)
	}
}

// handleKernels proxies the kernel listing; the fixed key gives it a
// stable (but unimportant) home backend.
func (g *Gateway) handleKernels(w http.ResponseWriter, r *http.Request) {
	id := g.ensureRequestID(w, r)
	g.route(w, r, "kernels", "/v1/kernels", nil, "/v1/kernels", id)
}

// upstreamResult is one buffered backend response.
type upstreamResult struct {
	backend *backend
	status  int
	header  http.Header
	body    []byte
}

// route relays the request along key's candidate order with bounded,
// jittered retry. Any response below 500 is authoritative (4xx are the
// contract's own verdicts, identical on every backend); connect failures
// and 5xx fall through to the next candidate. Only when every attempt
// fails does the client see an error: the last upstream 5xx if there was
// one, otherwise the gateway's own 503 unavailable envelope.
func (g *Gateway) route(w http.ResponseWriter, r *http.Request, endpoint, path string, body []byte, key, id string) {
	start := time.Now()
	cands := g.candidates(key)
	attempts := min(g.cfg.MaxAttempts, len(cands))
	method := r.Method

	var last *upstreamResult
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			g.rec.Count("irrgw_retries_total", 1)
			if !g.backoff(r.Context(), i) {
				break // client gone; no point burning another backend
			}
		}
		b := cands[i]
		res, err := g.attempt(r.Context(), b, method, path, body, r.Header)
		if err != nil {
			lastErr = err
			if r.Context().Err() == nil {
				// A connect failure counts like a failed probe, so a dead
				// backend is ejected without waiting for the next tick.
				g.noteFailure(b)
			}
			g.rec.Count("irrgw_requests_total:backend="+b.name+",outcome=network_error", 1)
			g.log.LogAttrs(r.Context(), slog.LevelWarn, "upstream error",
				slog.String("id", id), slog.String("backend", b.name),
				slog.String("endpoint", endpoint), slog.String("error", err.Error()))
			continue
		}
		if res.status >= 500 {
			last = res
			g.rec.Count("irrgw_requests_total:backend="+b.name+",outcome=upstream_error", 1)
			g.log.LogAttrs(r.Context(), slog.LevelWarn, "upstream 5xx",
				slog.String("id", id), slog.String("backend", b.name),
				slog.String("endpoint", endpoint), slog.Int("status", res.status))
			continue
		}
		g.noteSuccess(b)
		g.rec.Count("irrgw_requests_total:backend="+b.name+",outcome=ok", 1)
		g.finish(w, r, endpoint, id, res, start, "ok", i)
		return
	}

	if last != nil {
		// Every candidate failed and at least one answered: relay its 5xx
		// verbatim rather than masking it with a gateway-made envelope.
		g.finish(w, r, endpoint, id, last, start, "upstream_error", attempts-1)
		return
	}
	g.rec.Count("irrgw_unavailable_total", 1)
	msg := "no live backend"
	if lastErr != nil {
		msg = "no live backend: " + lastErr.Error()
	}
	api.WriteError(w, api.KindUnavailable, msg, id)
	g.observe(endpoint, "unavailable", time.Since(start))
}

// attempt relays the request to one backend and buffers the response
// (buffering is what makes 5xx retry possible — nothing is committed to
// the client until a verdict is chosen).
func (g *Gateway) attempt(ctx context.Context, b *backend, method, path string, body []byte, hdr http.Header) (*upstreamResult, error) {
	b.inflight.add(1)
	g.rec.Count("irrgw_backend_inflight:backend="+b.name, 1)
	t0 := time.Now()
	defer func() {
		g.rec.Count("irrgw_backend_inflight:backend="+b.name, -1)
		g.rec.Observe("irrgw_upstream_duration:backend="+b.name, time.Since(t0))
		b.inflight.add(-1)
	}()
	resp, err := b.client.Forward(ctx, method, path, body, hdr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &upstreamResult{backend: b, status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// finish commits one upstream response to the client, byte-for-byte, and
// stamps X-Irrd-Backend.
func (g *Gateway) finish(w http.ResponseWriter, r *http.Request, endpoint, id string, res *upstreamResult, start time.Time, outcome string, attempt int) {
	for _, h := range []string{"Content-Type", api.CacheHeader} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(api.BackendHeader, res.backend.name)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // the response is already committed
	d := time.Since(start)
	g.observe(endpoint, outcome, d)
	g.log.LogAttrs(r.Context(), slog.LevelInfo, "proxied",
		slog.String("id", id),
		slog.String("endpoint", endpoint),
		slog.String("backend", res.backend.name),
		slog.Int("status", res.status),
		slog.Int("attempt", attempt+1),
		slog.Duration("duration", d))
}

func (g *Gateway) observe(endpoint, outcome string, d time.Duration) {
	g.rec.Count("irrgw_proxied_total", 1)
	g.rec.Observe("irrgw_route_duration:endpoint="+endpoint, d)
	g.rec.Count("irrgw_outcomes_total:outcome="+outcome, 1)
}

// backoff sleeps the jittered exponential delay before retry n (n ≥ 1),
// returning false if the client context fired first.
func (g *Gateway) backoff(ctx context.Context, n int) bool {
	d := g.cfg.RetryBase << (n - 1)
	if d > g.cfg.RetryMax {
		d = g.cfg.RetryMax
	}
	// ±50% jitter decorrelates concurrent retry storms.
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.ensureRequestID(w, r)
	out := api.GatewayHealthz{Backends: make([]api.BackendHealth, 0, len(g.backends))}
	for _, b := range g.backends {
		up := b.up.load()
		if up {
			out.Live++
		}
		out.Backends = append(out.Backends, api.BackendHealth{
			Name:                b.name,
			URL:                 b.url,
			Up:                  up,
			ConsecutiveFailures: int(b.consecFail.load()),
			Inflight:            b.inflight.load(),
		})
	}
	status := http.StatusOK
	switch {
	case out.Live == len(g.backends):
		out.Status = "ok"
	case out.Live > 0:
		out.Status = "degraded"
	default:
		out.Status = "down"
		status = http.StatusServiceUnavailable
	}
	api.WriteJSON(w, status, out)
}

// handleMetrics mirrors irrd's exposition: Prometheus text by default,
// the JSON counters/histograms document under Accept: application/json.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		type hist struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
			SumNs int64  `json:"sum_ns"`
			P50Ns int64  `json:"p50_ns"`
			P99Ns int64  `json:"p99_ns"`
		}
		var hists []hist
		for _, h := range g.rec.Histograms() {
			hists = append(hists, hist{
				Name: h.Name, Count: h.Count, SumNs: h.SumNs,
				P50Ns: h.P50(), P99Ns: h.P99(),
			})
		}
		api.WriteJSON(w, http.StatusOK, map[string]any{
			"schema":     "irrgw-metrics/1",
			"counters":   g.rec.Counters(),
			"histograms": hists,
		})
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	obs.WritePrometheus(w, g.rec) //nolint:errcheck // the response is already committed
}
