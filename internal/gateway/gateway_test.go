package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/server"
)

const demoSrc = `
program demo
  param n = 32
  real a(n), b(n)
  integer i
  do i = 1, n
    b(i) = real(i)
  end do
  do i = 1, n
    a(i) = b(i) * 2.0
  end do
  print "done", a(1)
end
`

// fleet boots m in-process irrd backends and a gateway over them.
func fleet(t *testing.T, m int, cfg Config) (*Gateway, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, m)
	for i := range backends {
		backends[i] = httptest.NewServer(server.New(server.Config{}))
		t.Cleanup(backends[i].Close)
		cfg.Backends = append(cfg.Backends, backends[i].URL)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g, backends
}

func compileVia(t *testing.T, h http.Handler, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/compile", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func reqBody(t *testing.T, src string) string {
	t.Helper()
	b, err := json.Marshal(api.CompileRequest{Src: src})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Affinity: the same request body must land on the same backend every
// time, and repeats must be warm in that backend's response cache.
func TestAffinityRouting(t *testing.T) {
	g, _ := fleet(t, 3, Config{})
	body := reqBody(t, demoSrc)
	var home string
	for i := 0; i < 6; i++ {
		w := compileVia(t, g, body, nil)
		if w.Code != 200 {
			t.Fatalf("compile %d: status %d: %s", i, w.Code, w.Body.String())
		}
		b := w.Header().Get(api.BackendHeader)
		if b == "" {
			t.Fatal("missing X-Irrd-Backend")
		}
		if home == "" {
			home = b
		} else if b != home {
			t.Fatalf("compile %d routed to %s, earlier ones to %s", i, b, home)
		}
		cache := w.Header().Get(api.CacheHeader)
		if i == 0 && cache != "miss" {
			t.Errorf("first compile cache = %q, want miss", cache)
		}
		if i > 0 && cache != "hit" {
			t.Errorf("compile %d cache = %q, want hit (affinity broken?)", i, cache)
		}
	}
	// A different program keys differently — over a handful of distinct
	// sources at least two backends should see traffic.
	seen := map[string]bool{home: true}
	for i := 0; i < 8; i++ {
		src := strings.Replace(demoSrc, "param n = 32", fmt.Sprintf("param n = %d", 33+i), 1)
		w := compileVia(t, g, reqBody(t, src), nil)
		if w.Code != 200 {
			t.Fatalf("variant %d: status %d", i, w.Code)
		}
		seen[w.Header().Get(api.BackendHeader)] = true
	}
	if len(seen) < 2 {
		t.Errorf("9 distinct programs all routed to one backend; spread = %v", seen)
	}
}

// Byte identity: for the same X-Request-Id, the gateway response body is
// exactly the routed backend's body — proxying never re-encodes.
func TestByteIdenticalToBackend(t *testing.T) {
	g, backends := fleet(t, 3, Config{})
	body := reqBody(t, demoSrc)
	hdr := map[string]string{api.RequestIDHeader: "bytes-1"}

	w := compileVia(t, g, body, hdr)
	if w.Code != 200 {
		t.Fatalf("gateway compile: %d", w.Code)
	}
	routed := w.Header().Get(api.BackendHeader)
	var direct *httptest.Server
	for _, ts := range backends {
		if strings.Contains(ts.URL, routed) {
			direct = ts
		}
	}
	if direct == nil {
		t.Fatalf("backend %q not in fleet", routed)
	}
	resp, err := http.Post(direct.URL+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	req, _ := http.NewRequest("POST", direct.URL+"/v1/compile", strings.NewReader(body))
	req.Header.Set(api.RequestIDHeader, "bytes-1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	db, _ := io.ReadAll(resp2.Body)
	if !bytes.Equal(w.Body.Bytes(), db) {
		t.Errorf("gateway body differs from direct backend body:\n--- gateway\n%s\n--- direct\n%s",
			w.Body.Bytes(), db)
	}
	// Errors are byte-identical too: both speak the api envelope.
	badBody := `{"src":"this is not f-lite"}`
	wg := compileVia(t, g, badBody, hdr)
	routedErr := wg.Header().Get(api.BackendHeader)
	for _, ts := range backends {
		if strings.Contains(ts.URL, routedErr) {
			req, _ := http.NewRequest("POST", ts.URL+"/v1/compile", strings.NewReader(badBody))
			req.Header.Set(api.RequestIDHeader, "bytes-1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			eb, _ := io.ReadAll(resp.Body)
			if wg.Code != resp.StatusCode || !bytes.Equal(wg.Body.Bytes(), eb) {
				t.Errorf("error responses differ: gateway %d %s vs direct %d %s",
					wg.Code, wg.Body.String(), resp.StatusCode, eb)
			}
		}
	}
}

// A dead backend in the fleet must never surface as a client error:
// requests whose first choice is the corpse retry onto the next live
// backend.
func TestRetrySkipsDeadBackend(t *testing.T) {
	g, backends := fleet(t, 3, Config{RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	backends[0].Close() // kill one; no health loop started, so routing still trusts it

	for i := 0; i < 12; i++ {
		src := strings.Replace(demoSrc, "param n = 32", fmt.Sprintf("param n = %d", 40+i), 1)
		w := compileVia(t, g, reqBody(t, src), nil)
		if w.Code != 200 {
			t.Fatalf("compile %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	// 12 distinct keys over 3 backends: some first choices were the dead
	// one, so retries must have happened and been counted.
	if g.rec.Counter("irrgw_retries_total") == 0 {
		t.Error("no retries recorded though a backend is dead")
	}
	// The dead backend's connect failures eject it from routing even
	// without the probe loop (request outcomes feed the state machine).
	if g.Live() == 3 {
		t.Error("dead backend still admitted after repeated connect failures")
	}
}

// Upstream 5xx retries to the next backend; 4xx is authoritative and
// returned as-is.
func TestRetryOn5xxNotOn4xx(t *testing.T) {
	var calls500 atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls500.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer flaky.Close()
	real := httptest.NewServer(server.New(server.Config{}))
	defer real.Close()

	g, err := New(Config{
		Backends:  []string{flaky.URL, real.URL},
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Drive distinct keys until one prefers the flaky backend first.
	for i := 0; i < 12; i++ {
		src := strings.Replace(demoSrc, "param n = 32", fmt.Sprintf("param n = %d", 60+i), 1)
		w := compileVia(t, g, reqBody(t, src), nil)
		if w.Code != 200 {
			t.Fatalf("compile %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	if calls500.Load() == 0 {
		t.Skip("hash sent no key to the flaky backend first (unlikely)")
	}
	if g.rec.Counter("irrgw_requests_total:backend="+hostOf(flaky.URL)+",outcome=upstream_error") == 0 {
		t.Error("5xx attempts not counted as upstream_error")
	}

	// 4xx: a parse error must come straight back, not retry.
	before := g.rec.Counter("irrgw_retries_total")
	w := compileVia(t, g, `{"src":"not a program"}`, nil)
	if w.Code != 400 {
		t.Fatalf("bad program: status %d, want 400", w.Code)
	}
	var env struct {
		Error api.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Kind != api.KindParse {
		t.Errorf("envelope = %s (err %v)", w.Body.String(), err)
	}
	// The 4xx may have routed to the flaky backend (then retried to the
	// real one), so only assert no retries happened when it went straight
	// to the real backend.
	if w.Header().Get(api.BackendHeader) == hostOf(real.URL) &&
		g.rec.Counter("irrgw_retries_total") > before+1 {
		t.Error("4xx triggered retries")
	}
}

func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

// With every backend unreachable the gateway answers 503 with the
// canonical unavailable envelope.
func TestAllDownUnavailable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	g, err := New(Config{
		Backends:  []string{url},
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	w := compileVia(t, g, reqBody(t, demoSrc), map[string]string{api.RequestIDHeader: "down-1"})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	var env struct {
		Error api.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Kind != api.KindUnavailable || env.Error.RequestID != "down-1" {
		t.Errorf("envelope = %+v", env.Error)
	}
}

// healthToggle wraps an irrd handler, failing /healthz on demand so
// ejection/readmission can be exercised without killing real listeners.
type healthToggle struct {
	inner http.Handler
	sick  atomic.Bool
}

func (h *healthToggle) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" && h.sick.Load() {
		http.Error(w, "sick", http.StatusServiceUnavailable)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// The probe loop ejects a backend whose /healthz fails FailThreshold
// times and readmits it after PassThreshold successes; the transitions
// show up in the gauges and counters.
func TestEjectionAndReadmission(t *testing.T) {
	toggle := &healthToggle{inner: server.New(server.Config{})}
	sickTS := httptest.NewServer(toggle)
	defer sickTS.Close()
	okTS := httptest.NewServer(server.New(server.Config{}))
	defer okTS.Close()

	g, err := New(Config{
		Backends:      []string{sickTS.URL, okTS.URL},
		ProbeInterval: 5 * time.Millisecond,
		FailThreshold: 2,
		PassThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.Start()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	waitFor("both live", func() bool { return g.Live() == 2 })
	toggle.sick.Store(true)
	waitFor("ejection", func() bool { return g.Live() == 1 })
	if g.rec.Counter("irrgw_ejections_total") == 0 {
		t.Error("ejection not counted")
	}
	if g.rec.Counter("irrgw_backend_up:backend="+hostOf(sickTS.URL)) != 0 {
		t.Error("up gauge not zeroed on ejection")
	}

	// While ejected, requests still succeed (routed to the healthy one).
	w := compileVia(t, g, reqBody(t, demoSrc), nil)
	if w.Code != 200 {
		t.Fatalf("compile during ejection: %d", w.Code)
	}

	toggle.sick.Store(false)
	waitFor("readmission", func() bool { return g.Live() == 2 })
	if g.rec.Counter("irrgw_readmissions_total") == 0 {
		t.Error("readmission not counted")
	}

	// Gateway /healthz reflects the fleet view.
	hw := httptest.NewRecorder()
	g.ServeHTTP(hw, httptest.NewRequest("GET", "/healthz", nil))
	var hz api.GatewayHealthz
	if err := json.Unmarshal(hw.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Live != 2 || len(hz.Backends) != 2 {
		t.Errorf("gateway healthz = %+v", hz)
	}
}

// The gateway's own /metrics speaks valid Prometheus exposition with the
// multi-label request counters.
func TestGatewayMetricsExposition(t *testing.T) {
	g, _ := fleet(t, 2, Config{})
	for i := 0; i < 3; i++ {
		if w := compileVia(t, g, reqBody(t, demoSrc), nil); w.Code != 200 {
			t.Fatalf("compile: %d", w.Code)
		}
	}
	w := httptest.NewRecorder()
	g.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	samples, err := obs.ParsePrometheus(w.Body.String())
	if err != nil {
		t.Fatalf("metrics do not parse: %v\n%s", err, w.Body.String())
	}
	var okTotal float64
	for _, s := range samples {
		if s.Name == "irrgw_requests_total" && s.Labels["outcome"] == "ok" {
			if s.Labels["backend"] == "" {
				t.Errorf("request counter without backend label: %+v", s)
			}
			okTotal += s.Value
		}
	}
	if okTotal != 3 {
		t.Errorf("sum of ok request counters = %v, want 3", okTotal)
	}
	// JSON content negotiation mirrors irrd.
	jw := httptest.NewRecorder()
	jr := httptest.NewRequest("GET", "/metrics", nil)
	jr.Header.Set("Accept", "application/json")
	g.ServeHTTP(jw, jr)
	var doc struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(jw.Body.Bytes(), &doc); err != nil || doc.Schema != "irrgw-metrics/1" {
		t.Errorf("JSON metrics = %s (err %v)", jw.Body.String(), err)
	}
}

// GET /v1/kernels proxies like everything else and carries the backend
// header.
func TestKernelsProxied(t *testing.T) {
	g, _ := fleet(t, 2, Config{})
	w := httptest.NewRecorder()
	g.ServeHTTP(w, httptest.NewRequest("GET", "/v1/kernels", nil))
	if w.Code != 200 || w.Header().Get(api.BackendHeader) == "" {
		t.Fatalf("kernels: %d, backend %q", w.Code, w.Header().Get(api.BackendHeader))
	}
	var ks api.KernelsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ks); err != nil || len(ks.Kernels) == 0 {
		t.Errorf("kernels = %s (err %v)", w.Body.String(), err)
	}
}
