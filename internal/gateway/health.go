package gateway

import (
	"context"
	"log/slog"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Active health checking: one loop per backend probes GET /healthz every
// ProbeInterval. FailThreshold consecutive probe failures eject the
// backend from routing (irrgw_ejections_total, irrgw_backend_up → 0);
// PassThreshold consecutive successes readmit it
// (irrgw_readmissions_total, irrgw_backend_up → 1). Request outcomes
// also feed the same counters — a connect failure during proxying counts
// like a failed probe, so a dead backend is usually ejected before the
// next probe tick fires.

func (g *Gateway) healthLoop(b *backend) {
	defer g.wg.Done()
	// Desynchronize the fleet's probes so M backends aren't all probed in
	// the same instant.
	jitter := time.Duration(rand.Int64N(int64(g.cfg.ProbeInterval)))
	select {
	case <-g.stop:
		return
	case <-time.After(jitter):
	}
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		g.probe(b)
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
	}
}

// probe runs one health check and feeds the verdict into the
// ejection/readmission state machine.
func (g *Gateway) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	h, err := b.client.Healthz(ctx)
	g.rec.Count("irrgw_probes_total:backend="+b.name, 1)
	if err != nil || h.Status != "ok" {
		g.noteFailure(b)
		return
	}
	g.noteSuccess(b)
}

// noteFailure records one failed probe (or failed proxied request) and
// ejects the backend once FailThreshold is reached.
func (g *Gateway) noteFailure(b *backend) {
	fails := b.consecFail.add(1)
	b.consecPass.store(0)
	if fails >= int64(g.cfg.FailThreshold) && b.up.swap(false) {
		g.rec.Count("irrgw_ejections_total", 1)
		g.rec.Count("irrgw_backend_up:backend="+b.name, -1)
		g.log.LogAttrs(context.Background(), slog.LevelWarn, "backend ejected",
			slog.String("backend", b.name), slog.Int64("consecutive_failures", fails))
	}
}

// noteSuccess records one healthy probe and readmits an ejected backend
// once PassThreshold is reached.
func (g *Gateway) noteSuccess(b *backend) {
	b.consecFail.store(0)
	passes := b.consecPass.add(1)
	if passes >= int64(g.cfg.PassThreshold) && b.up.swap(true) {
		g.rec.Count("irrgw_readmissions_total", 1)
		g.rec.Count("irrgw_backend_up:backend="+b.name, 1)
		g.log.LogAttrs(context.Background(), slog.LevelInfo, "backend readmitted",
			slog.String("backend", b.name), slog.Int64("consecutive_passes", passes))
	}
}

// --- tiny atomics wrappers ---

func (f *boolFlag) load() bool { return atomic.LoadInt32(&f.v) == 1 }

func (f *boolFlag) store(v bool) {
	var n int32
	if v {
		n = 1
	}
	atomic.StoreInt32(&f.v, n)
}

// swap sets the flag to v and reports whether it changed.
func (f *boolFlag) swap(v bool) bool {
	var n int32
	if v {
		n = 1
	}
	return atomic.SwapInt32(&f.v, n) != n
}

func (c *counter) add(d int64) int64 { return atomic.AddInt64(&c.v, d) }
func (c *counter) load() int64       { return atomic.LoadInt64(&c.v) }
func (c *counter) store(v int64)     { atomic.StoreInt64(&c.v, v) }
