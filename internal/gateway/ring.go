package gateway

import (
	"hash/fnv"
	"sort"
)

// The gateway routes with rendezvous (highest-random-weight) hashing
// rather than a classic token ring: every (backend, key) pair gets an
// independent pseudo-random score, and a key's preference order is the
// backends sorted by descending score. The properties the gateway needs
// fall out directly:
//
//   - Determinism: the score depends only on the backend's canonical name
//     and the key, so every gateway instance — regardless of the order
//     backends were configured in — computes the same preference order.
//   - Minimal disruption: removing a backend only reassigns the keys
//     whose first choice was the removed backend (~1/M of the corpus);
//     every other key's top pick is untouched. Readmission restores
//     exactly the keys it owned.
//   - Graceful failover: the preference order doubles as the retry
//     order — a key whose first-choice backend is ejected falls to its
//     second choice, which is again stable, so the fallback backend's
//     cache warms for exactly the keys it inherits.

// score is the rendezvous weight of key on the backend named name. FNV-1a
// over name\x00key: not cryptographic, just well-mixed and dependency-free
// (the affinity key is already a SHA-256 hex digest, so adversarial
// clustering is not a concern).
func score(name, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// rank returns the indices of names in descending rendezvous-score order
// for key, ties broken by name so the order is total and
// list-order-independent.
func rank(names []string, key string) []int {
	idx := make([]int, len(names))
	scores := make([]uint64, len(names))
	for i, n := range names {
		idx[i] = i
		scores[i] = score(n, key)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return names[ia] < names[ib]
	})
	return idx
}
