package gateway

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

// The preference order of a key must depend only on the backend SET, not
// the order the gateway was configured with: every permutation of the
// name list yields the same ranked name sequence.
func TestRankOrderIndependent(t *testing.T) {
	names := []string{"b1:1", "b2:2", "b3:3", "b4:4", "b5:5"}
	perms := [][]string{
		{"b1:1", "b2:2", "b3:3", "b4:4", "b5:5"},
		{"b5:5", "b4:4", "b3:3", "b2:2", "b1:1"},
		{"b3:3", "b1:1", "b5:5", "b2:2", "b4:4"},
	}
	for _, key := range keys(200) {
		var want []string
		for _, i := range rank(names, key) {
			want = append(want, names[i])
		}
		for _, perm := range perms {
			var got []string
			for _, i := range rank(perm, key) {
				got = append(got, perm[i])
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("key %s: order %v under %v, want %v", key[:8], got, perm, want)
				}
			}
		}
	}
}

// rank must be a permutation of the index set and stable across calls.
func TestRankIsStablePermutation(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	for _, key := range keys(50) {
		one, two := rank(names, key), rank(names, key)
		seen := map[int]bool{}
		for j, i := range one {
			if i < 0 || i >= len(names) || seen[i] {
				t.Fatalf("rank(%q) = %v is not a permutation", key[:8], one)
			}
			seen[i] = true
			if two[j] != i {
				t.Fatalf("rank(%q) unstable: %v vs %v", key[:8], one, two)
			}
		}
	}
}

// Minimal disruption: removing one of M backends must remap exactly the
// keys whose first choice was the removed backend — every other key's
// winner is untouched — and that set is ~1/M of the corpus.
func TestRankMinimalDisruption(t *testing.T) {
	const m = 5
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	corpus := keys(2000)

	for removed := 0; removed < m; removed++ {
		rest := make([]string, 0, m-1)
		for i, n := range names {
			if i != removed {
				rest = append(rest, n)
			}
		}
		moved := 0
		for _, key := range corpus {
			before := names[rank(names, key)[0]]
			after := rest[rank(rest, key)[0]]
			if before != names[removed] {
				if after != before {
					t.Fatalf("key %s moved %s→%s though %s was removed",
						key[:8], before, after, names[removed])
				}
				continue
			}
			moved++
			// An orphaned key must land on its SECOND choice in the
			// original ranking — the failover order is the preference order.
			second := names[rank(names, key)[1]]
			if after != second {
				t.Fatalf("key %s fell to %s, want second choice %s", key[:8], after, second)
			}
		}
		frac := float64(moved) / float64(len(corpus))
		if frac > 2.0/m || frac == 0 {
			t.Errorf("removing %s remapped %.1f%% of keys, want ~%.1f%%",
				names[removed], frac*100, 100.0/m)
		}
	}
}

// Keys spread roughly evenly: no backend owns a wildly disproportionate
// share (loose bound — FNV is not perfect, but 2000 keys over 5 backends
// should stay within half-to-double of the fair share).
func TestRankBalance(t *testing.T) {
	names := []string{"n1:1", "n2:2", "n3:3", "n4:4", "n5:5"}
	owned := map[string]int{}
	corpus := keys(2000)
	for _, key := range corpus {
		owned[names[rank(names, key)[0]]]++
	}
	fair := len(corpus) / len(names)
	for n, c := range owned {
		if c < fair/2 || c > fair*2 {
			t.Errorf("backend %s owns %d keys, fair share %d", n, c, fair)
		}
	}
}
