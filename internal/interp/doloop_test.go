package interp

import (
	"math"
	"testing"
)

// F77 semantics under test: a DO loop runs tripCount iterations and leaves
// the index at lo + tripCount*step — the first out-of-range value, or lo
// itself when the loop is zero-trip.

func TestTripCountU(t *testing.T) {
	cases := []struct {
		name         string
		lo, hi, step int64
		want         uint64
	}{
		{"unit step", 1, 10, 1, 10},
		{"unit step down", 10, 1, -1, 10},
		{"wrong direction up", 10, 1, 1, 0},
		{"wrong direction down", 1, 10, -1, 0},
		{"lo==hi up", 5, 5, 1, 1},
		{"lo==hi down", 5, 5, -3, 1},
		{"partial last stride", 1, 10, 3, 4},
		{"partial last stride down", 10, 1, -3, 4},
		{"near MaxInt64", math.MaxInt64 - 4, math.MaxInt64 - 2, 2, 2},
		{"near MinInt64", math.MinInt64 + 4, math.MinInt64 + 1, -2, 2},
		// The span hi-lo here is 2^63: it overflows int64 subtraction but
		// not the uint64 arithmetic tripCountU uses.
		{"span exceeds MaxInt64", -(int64(1) << 62), int64(1) << 62, int64(1) << 62, 3},
		{"span exceeds MaxInt64 down", int64(1) << 62, -(int64(1) << 62), -(int64(1) << 62), 3},
		// -step must not overflow when step is MinInt64.
		{"step MinInt64", 5, -5, math.MinInt64, 1},
		{"step MinInt64 zero trip", -5, 5, math.MinInt64, 0},
		// Full int64 sweep: 2^64 trips are unrepresentable; saturate.
		{"full span saturates", math.MinInt64, math.MaxInt64, 1, math.MaxUint64},
		{"full span saturates down", math.MaxInt64, math.MinInt64, -1, math.MaxUint64},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := tripCountU(c.lo, c.hi, c.step); got != c.want {
				t.Errorf("tripCountU(%d, %d, %d) = %d, want %d", c.lo, c.hi, c.step, got, c.want)
			}
		})
	}
}

// TestDoLoopFinalIndex drives whole programs whose bounds arrive through
// globals, so extreme values need no source literals.
func TestDoLoopFinalIndex(t *testing.T) {
	const src = `
program p
  integer i, n, lo, hi, st
  n = 0
  do i = lo, hi, st
    n = n + 1
  end do
end
`
	cases := []struct {
		name         string
		lo, hi, step int64
		trips        int64
		finalIdx     int64
	}{
		{"step -2", 10, 1, -2, 5, 0},
		{"lo==hi", 7, 7, 1, 1, 8},
		{"lo==hi step -3", 7, 7, -3, 1, 4},
		{"zero trip up", 5, 1, 1, 0, 5},
		{"zero trip down", 1, 5, -1, 0, 1},
		// The old v += step iteration wrapped past MaxInt64 here and never
		// failed the v <= hi test; the loop spun until the step budget.
		{"overflow-adjacent hi", math.MaxInt64 - 4, math.MaxInt64 - 2, 2, 2, math.MaxInt64},
		{"overflow-adjacent lo", math.MinInt64 + 4, math.MinInt64 + 1, -2, 2, math.MinInt64},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := runSrc(t, src, Options{}, func(in *Interp) {
				if err := in.SetInt("lo", c.lo); err != nil {
					t.Fatalf("SetInt(lo): %v", err)
				}
				if err := in.SetInt("hi", c.hi); err != nil {
					t.Fatalf("SetInt(hi): %v", err)
				}
				if err := in.SetInt("st", c.step); err != nil {
					t.Fatalf("SetInt(st): %v", err)
				}
			})
			n, err := in.GlobalInt("n")
			if err != nil {
				t.Fatalf("GlobalInt(n): %v", err)
			}
			if n != c.trips {
				t.Errorf("trips = %d, want %d", n, c.trips)
			}
			i, err := in.GlobalInt("i")
			if err != nil {
				t.Fatalf("GlobalInt(i): %v", err)
			}
			if i != c.finalIdx {
				t.Errorf("final index = %d, want %d", i, c.finalIdx)
			}
		})
	}
}
