package interp

import (
	"math"

	"repro/internal/lang"
	"repro/internal/sem"
)

// eval evaluates one expression, charging the cost model.
func (e *ex) eval(x lang.Expr) value {
	in := e.in
	switch x := x.(type) {
	case *lang.IntLit:
		in.charge(1)
		return intV(x.Value)
	case *lang.RealLit:
		in.charge(1)
		return realV(x.Value)
	case *lang.BoolLit:
		in.charge(1)
		return boolV(x.Value)
	case *lang.StrLit:
		in.charge(1)
		return boolV(false) // only printable; value unused
	case *lang.Ident:
		in.charge(1)
		sym := in.identSyms[x]
		if sym == nil {
			sym = e.scope.Lookup(x.Name)
			if sym == nil {
				in.fail(x.NamePos, "undefined variable %q", x.Name)
			}
			in.identSyms[x] = sym
		}
		if sym.Kind == sem.ParamSym {
			return intV(sym.Value)
		}
		if in.obsDepth > 0 {
			in.obsAccess(sym, -1, false)
		}
		return e.store.scalar(sym).v
	case *lang.ArrayRef:
		if x.Intrinsic {
			return e.evalIntrinsic(x)
		}
		arr, idx := e.locate(x)
		if in.obsDepth > 0 {
			in.obsAccess(arr.sym, idx, false)
		}
		in.chargeAccess(x, arr, idx)
		switch arr.sym.Type {
		case lang.TInteger:
			return intV(arr.ints[idx])
		case lang.TReal:
			return realV(arr.reals[idx])
		default:
			return boolV(arr.bools[idx])
		}
	case *lang.Unary:
		v := e.eval(x.X)
		in.charge(1)
		switch x.Op {
		case lang.OpNeg:
			if v.k == lang.TInteger {
				return intV(-v.i)
			}
			return realV(-v.r)
		case lang.OpNot:
			return boolV(!v.b)
		}
	case *lang.Binary:
		return e.evalBinary(x)
	}
	in.fail(x.Pos(), "cannot evaluate %T", x)
	return value{}
}

func (e *ex) evalBinary(x *lang.Binary) value {
	in := e.in
	// Short-circuit logicals.
	switch x.Op {
	case lang.OpAnd:
		in.charge(1)
		l := e.eval(x.X)
		if !l.b {
			return boolV(false)
		}
		return boolV(e.eval(x.Y).b)
	case lang.OpOr:
		in.charge(1)
		l := e.eval(x.X)
		if l.b {
			return boolV(true)
		}
		return boolV(e.eval(x.Y).b)
	}

	l := e.eval(x.X)
	r := e.eval(x.Y)

	if x.Op.IsComparison() {
		in.charge(1)
		if l.k == lang.TLogical || r.k == lang.TLogical {
			switch x.Op {
			case lang.OpEq:
				return boolV(l.b == r.b)
			case lang.OpNe:
				return boolV(l.b != r.b)
			}
		}
		if l.k == lang.TInteger && r.k == lang.TInteger {
			return boolV(cmpInt(x.Op, l.i, r.i))
		}
		return boolV(cmpReal(x.Op, l.toReal(), r.toReal()))
	}

	// Arithmetic.
	if l.k == lang.TInteger && r.k == lang.TInteger {
		in.charge(1)
		switch x.Op {
		case lang.OpAdd:
			return intV(l.i + r.i)
		case lang.OpSub:
			return intV(l.i - r.i)
		case lang.OpMul:
			return intV(l.i * r.i)
		case lang.OpDiv:
			in.charge(7)
			if r.i == 0 {
				in.fail(x.Pos(), "integer division by zero")
			}
			return intV(l.i / r.i)
		case lang.OpPow:
			in.charge(7)
			return intV(ipow(l.i, r.i))
		}
	}
	in.charge(2)
	lf, rf := l.toReal(), r.toReal()
	switch x.Op {
	case lang.OpAdd:
		return realV(lf + rf)
	case lang.OpSub:
		return realV(lf - rf)
	case lang.OpMul:
		return realV(lf * rf)
	case lang.OpDiv:
		in.charge(6)
		return realV(lf / rf)
	case lang.OpPow:
		in.charge(10)
		return realV(math.Pow(lf, rf))
	}
	in.fail(x.Pos(), "cannot apply %s", x.Op)
	return value{}
}

func cmpInt(op lang.Op, a, b int64) bool {
	switch op {
	case lang.OpEq:
		return a == b
	case lang.OpNe:
		return a != b
	case lang.OpLt:
		return a < b
	case lang.OpLe:
		return a <= b
	case lang.OpGt:
		return a > b
	case lang.OpGe:
		return a >= b
	}
	return false
}

func cmpReal(op lang.Op, a, b float64) bool {
	switch op {
	case lang.OpEq:
		return a == b
	case lang.OpNe:
		return a != b
	case lang.OpLt:
		return a < b
	case lang.OpLe:
		return a <= b
	case lang.OpGt:
		return a > b
	case lang.OpGe:
		return a >= b
	}
	return false
}

func ipow(base, exp int64) int64 {
	if exp < 0 {
		return 0
	}
	r := int64(1)
	for ; exp > 0; exp-- {
		r *= base
	}
	return r
}

func (e *ex) evalIntrinsic(x *lang.ArrayRef) value {
	in := e.in
	in.charge(8)
	args := make([]value, len(x.Args))
	for i, a := range x.Args {
		args[i] = e.eval(a)
	}
	allInt := true
	for _, a := range args {
		if a.k != lang.TInteger {
			allInt = false
		}
	}
	switch x.Name {
	case "mod":
		if allInt {
			if args[1].i == 0 {
				in.fail(x.Pos(), "mod by zero")
			}
			return intV(args[0].i % args[1].i)
		}
		return realV(math.Mod(args[0].toReal(), args[1].toReal()))
	case "min":
		if allInt {
			m := args[0].i
			for _, a := range args[1:] {
				if a.i < m {
					m = a.i
				}
			}
			return intV(m)
		}
		m := args[0].toReal()
		for _, a := range args[1:] {
			if a.toReal() < m {
				m = a.toReal()
			}
		}
		return realV(m)
	case "max":
		if allInt {
			m := args[0].i
			for _, a := range args[1:] {
				if a.i > m {
					m = a.i
				}
			}
			return intV(m)
		}
		m := args[0].toReal()
		for _, a := range args[1:] {
			if a.toReal() > m {
				m = a.toReal()
			}
		}
		return realV(m)
	case "abs":
		if allInt {
			if args[0].i < 0 {
				return intV(-args[0].i)
			}
			return args[0]
		}
		return realV(math.Abs(args[0].toReal()))
	case "sqrt":
		return realV(math.Sqrt(args[0].toReal()))
	case "sin":
		return realV(math.Sin(args[0].toReal()))
	case "cos":
		return realV(math.Cos(args[0].toReal()))
	case "exp":
		return realV(math.Exp(args[0].toReal()))
	case "log":
		return realV(math.Log(args[0].toReal()))
	case "int":
		return intV(args[0].toInt())
	case "real":
		return realV(args[0].toReal())
	}
	in.fail(x.Pos(), "unknown intrinsic %q", x.Name)
	return value{}
}

// locate resolves an array reference to storage and a flat element index,
// with bounds checking (skipped for references proven safe by the
// bounds-check elimination analysis — a wrong proof would surface as an
// index panic in the Go runtime rather than silent corruption, since the
// flat index is still range-bound by the backing slice).
func (e *ex) locate(x *lang.ArrayRef) (*array, int64) {
	in := e.in
	sym := in.refSyms[x]
	if sym == nil {
		sym = e.scope.Lookup(x.Name)
		if sym == nil || sym.Kind != sem.ArraySym {
			in.fail(x.NamePos, "not an array: %q", x.Name)
		}
		in.refSyms[x] = sym
	}
	arr := e.store.array(sym)
	checked := !in.opts.SafeRefs[x]
	var idx int64
	stride := int64(1)
	for d := 0; d < len(sym.Dims); d++ {
		sub := e.eval(x.Args[d]).toInt()
		dim := sym.Dims[d]
		if checked && (sub < dim.Lo || sub > dim.Hi) {
			in.fail(x.NamePos, "subscript %d of %q out of bounds: %d not in [%d:%d]",
				d+1, x.Name, sub, dim.Lo, dim.Hi)
		}
		idx += (sub - dim.Lo) * stride
		stride *= dim.Size()
	}
	return arr, idx
}

// chargeAccess charges one array element access: base cost 3 (2 when the
// bounds check was eliminated), and, under the locality model, -1 for a
// sequential access (cache hit) or +5 for a non-sequential one (miss).
func (in *Interp) chargeAccess(ref *lang.ArrayRef, arr *array, idx int64) {
	cost := uint64(3)
	if in.opts.SafeRefs[ref] {
		cost = 2
	}
	if in.opts.LocalityModel {
		if in.lastIdx == nil {
			in.lastIdx = map[*array]int64{}
		}
		last, seen := in.lastIdx[arr]
		if seen && (idx == last+1 || idx == last) {
			cost--
		} else {
			cost += 5
		}
		in.lastIdx[arr] = idx
	}
	in.charge(cost)
}

// convert coerces a value to the declared type of a target.
func convert(v value, t lang.BasicType) value {
	switch t {
	case lang.TInteger:
		return intV(v.toInt())
	case lang.TReal:
		return realV(v.toReal())
	default:
		return v
	}
}

// assign stores a value into a scalar or array element.
func (e *ex) assign(lhs lang.Expr, v value) {
	in := e.in
	switch lhs := lhs.(type) {
	case *lang.Ident:
		in.charge(1)
		sym := in.identSyms[lhs]
		if sym == nil {
			sym = e.scope.Lookup(lhs.Name)
			if sym == nil || sym.Kind != sem.ScalarSym {
				in.fail(lhs.NamePos, "cannot assign to %q", lhs.Name)
			}
			in.identSyms[lhs] = sym
		}
		if in.obsDepth > 0 {
			in.obsAccess(sym, -1, true)
		}
		e.store.scalar(sym).v = convert(v, sym.Type)
	case *lang.ArrayRef:
		arr, idx := e.locate(lhs)
		if in.obsDepth > 0 {
			in.obsAccess(arr.sym, idx, true)
		}
		in.chargeAccess(lhs, arr, idx)
		cv := convert(v, arr.sym.Type)
		switch arr.sym.Type {
		case lang.TInteger:
			arr.ints[idx] = cv.i
		case lang.TReal:
			arr.reals[idx] = cv.r
		default:
			arr.bools[idx] = cv.b
		}
	default:
		in.fail(lhs.Pos(), "invalid assignment target")
	}
}
