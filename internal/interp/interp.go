// Package interp executes F-lite programs on the simulated parallel machine
// of package machine. It is the substrate that regenerates the paper's
// run-time results: sequential execution times (Table 2), and speedups of
// the three compiler configurations at various processor counts (Fig. 16).
//
// DO loops annotated Parallel by the parallelizer distribute their
// iterations over the machine's P virtual processors in contiguous blocks.
// Variables in the loop's Private list get per-processor copies — freshly
// poisoned, so an incorrectly privatized variable surfaces as a poisoned
// result rather than a silently wrong one — and recognised reductions run
// on per-processor partials combined afterwards. The chunk execution order
// is configurable (forward or reverse); a correctly parallelized loop must
// produce identical results under both, which the tests exploit.
package interp

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/comperr"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sem"
)

// Schedule selects the order in which a parallel loop's chunks execute on
// the single real core. Any order must give the same result when the
// parallelization is correct.
type Schedule int

// Schedules.
const (
	Forward Schedule = iota
	Reverse
)

// Options configure one execution.
type Options struct {
	Machine  *machine.Machine // nil: cost accounting into a 1-processor machine
	Out      io.Writer        // nil: print output discarded
	MaxSteps uint64           // 0: default limit
	Schedule Schedule
	// Ctx, when non-nil, cancels the execution cooperatively: the step
	// accounting polls it (sampled, every few thousand steps) and aborts
	// with a RuntimeError whose cause is comperr.ErrCanceled. A nil Ctx
	// never cancels.
	Ctx context.Context
	// Poison fills fresh private copies with a sentinel (NaN for reals,
	// a large negative value for integers) instead of zero.
	Poison bool
	// TrackLoops, when non-nil, selects loops whose executed cycles are
	// accumulated into LoopCycles() (meaningful in 1-processor runs; used
	// for Table 3's per-loop time shares).
	TrackLoops map[*lang.DoStmt]bool
	// SafeRefs marks array references proven in bounds by the
	// bounds-check elimination analysis: the per-access check is skipped
	// and the access costs one cycle less.
	SafeRefs map[*lang.ArrayRef]bool
	// LocalityModel charges array accesses by spatial locality: an access
	// to the element following the previous access of the same array is
	// cheap (cache hit), any other one expensive (miss). Used to
	// demonstrate loop interchange; off by default so the headline
	// benchmarks use the flat memory model.
	LocalityModel bool
	// Observe, when non-nil, reports memory accesses made inside selected
	// DO loops (see Observer). Observed loops always run serially, so the
	// footprints reflect the program's sequential semantics.
	Observe *Observer
}

// A RuntimeError aborts execution (bad subscript, step limit, ...).
type RuntimeError struct {
	Pos lang.Pos
	Msg string
	// Cause, when non-nil, classifies the abort for errors.Is: the step
	// limit carries comperr.ErrResourceLimit, a fired context carries
	// comperr.ErrCanceled (which in turn wraps the context error).
	Cause error
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

// Unwrap exposes the typed cause, making errors.Is(err, ErrResourceLimit)
// and errors.Is(err, ErrCanceled) work through a RuntimeError.
func (e *RuntimeError) Unwrap() error { return e.Cause }

// value is a runtime value.
type value struct {
	k lang.BasicType
	i int64
	r float64
	b bool
}

func intV(i int64) value    { return value{k: lang.TInteger, i: i} }
func realV(r float64) value { return value{k: lang.TReal, r: r} }
func boolV(b bool) value    { return value{k: lang.TLogical, b: b} }

func (v value) toReal() float64 {
	if v.k == lang.TInteger {
		return float64(v.i)
	}
	return v.r
}

func (v value) toInt() int64 {
	if v.k == lang.TReal {
		return int64(v.r)
	}
	return v.i
}

// array is the runtime storage of one array symbol.
type array struct {
	sym   *sem.Symbol
	ints  []int64
	reals []float64
	bools []bool
}

func newArray(sym *sem.Symbol) *array {
	n := sym.NumElems()
	a := &array{sym: sym}
	switch sym.Type {
	case lang.TInteger:
		a.ints = make([]int64, n)
	case lang.TReal:
		a.reals = make([]float64, n)
	case lang.TLogical:
		a.bools = make([]bool, n)
	}
	return a
}

func (a *array) poison() {
	for i := range a.ints {
		a.ints[i] = poisonInt
	}
	for i := range a.reals {
		a.reals[i] = math.NaN()
	}
}

const poisonInt = int64(-0x5EAD5EAD5EAD)

// cell is scalar storage.
type cell struct {
	v value
}

// store maps symbols to storage; lookups fall through to the parent.
// Private frames overlay selected symbols.
type store struct {
	parent  *store
	scalars map[*sem.Symbol]*cell
	arrays  map[*sem.Symbol]*array
}

func newStore(parent *store) *store {
	return &store{parent: parent, scalars: map[*sem.Symbol]*cell{}, arrays: map[*sem.Symbol]*array{}}
}

func (st *store) scalar(sym *sem.Symbol) *cell {
	for s := st; s != nil; s = s.parent {
		if c, ok := s.scalars[sym]; ok {
			return c
		}
	}
	// Allocate lazily at the outermost store that should own it: the
	// current one (locals are pre-allocated; this covers only defensive
	// cases).
	c := &cell{v: zeroValue(sym.Type)}
	st.scalars[sym] = c
	return c
}

func (st *store) array(sym *sem.Symbol) *array {
	for s := st; s != nil; s = s.parent {
		if a, ok := s.arrays[sym]; ok {
			return a
		}
	}
	a := newArray(sym)
	st.arrays[sym] = a
	return a
}

func zeroValue(t lang.BasicType) value {
	switch t {
	case lang.TInteger:
		return intV(0)
	case lang.TReal:
		return realV(0)
	default:
		return boolV(false)
	}
}

func poisonValue(t lang.BasicType) value {
	switch t {
	case lang.TInteger:
		return intV(poisonInt)
	case lang.TReal:
		return realV(math.NaN())
	default:
		return boolV(false)
	}
}

// Interp executes a checked program.
type Interp struct {
	info *sem.Info
	opts Options

	globals    *store
	mach       *machine.Machine
	steps      uint64
	cost       *uint64 // current cost sink
	inParallel bool    // inside a parallel region (nested regions run serially)
	loopCycles map[*lang.DoStmt]uint64
	lastIdx    map[*array]int64 // locality model: last accessed flat index
	// ctxDone caches Options.Ctx.Done() so the hot step path polls a
	// channel, never re-deriving it; nil when no context was given.
	ctxDone <-chan struct{}
	// symCache memoizes name resolution per AST node: a node belongs to
	// exactly one unit, so its symbol never changes.
	identSyms map[*lang.Ident]*sem.Symbol
	refSyms   map[*lang.ArrayRef]*sem.Symbol
	// obsDepth counts currently-active observed loops; accesses are
	// reported to Options.Observe only while it is positive.
	obsDepth int
}

// New builds an interpreter for a checked program.
func New(info *sem.Info, opts Options) *Interp {
	if opts.Machine == nil {
		opts.Machine = machine.New(machine.Origin2000, 1)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 2_000_000_000
	}
	in := &Interp{
		info: info, opts: opts, mach: opts.Machine,
		identSyms: map[*lang.Ident]*sem.Symbol{},
		refSyms:   map[*lang.ArrayRef]*sem.Symbol{},
	}
	if opts.Ctx != nil {
		in.ctxDone = opts.Ctx.Done()
	}
	in.globals = newStore(nil)
	// Pre-allocate globals.
	for _, sym := range info.Globals {
		switch sym.Kind {
		case sem.ScalarSym:
			in.globals.scalars[sym] = &cell{v: zeroValue(sym.Type)}
		case sem.ArraySym:
			in.globals.arrays[sym] = newArray(sym)
		}
	}
	return in
}

// Machine returns the machine charged by this execution.
func (in *Interp) Machine() *machine.Machine { return in.mach }

// LoopCycles returns the per-loop cycle counts collected for the loops in
// Options.TrackLoops.
func (in *Interp) LoopCycles() map[*lang.DoStmt]uint64 { return in.loopCycles }

// SetInt presets a global integer scalar before Run (input injection).
func (in *Interp) SetInt(name string, v int64) error {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ScalarSym {
		return fmt.Errorf("interp: no global scalar %q", name)
	}
	in.globals.scalars[sym].v = convert(intV(v), sym.Type)
	return nil
}

// SetReal presets a global real scalar.
func (in *Interp) SetReal(name string, v float64) error {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ScalarSym {
		return fmt.Errorf("interp: no global scalar %q", name)
	}
	in.globals.scalars[sym].v = convert(realV(v), sym.Type)
	return nil
}

// SetArrayInt presets a global integer array (values laid out in element
// order).
func (in *Interp) SetArrayInt(name string, vals []int64) error {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ArraySym || sym.Type != lang.TInteger {
		return fmt.Errorf("interp: no global integer array %q", name)
	}
	copy(in.globals.arrays[sym].ints, vals)
	return nil
}

// SetArrayReal presets a global real array.
func (in *Interp) SetArrayReal(name string, vals []float64) error {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ArraySym || sym.Type != lang.TReal {
		return fmt.Errorf("interp: no global real array %q", name)
	}
	copy(in.globals.arrays[sym].reals, vals)
	return nil
}

// GlobalInt reads a global integer scalar after Run.
func (in *Interp) GlobalInt(name string) (int64, error) {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ScalarSym {
		return 0, fmt.Errorf("interp: no global scalar %q", name)
	}
	return in.globals.scalars[sym].v.toInt(), nil
}

// GlobalReal reads a global real scalar after Run.
func (in *Interp) GlobalReal(name string) (float64, error) {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ScalarSym {
		return 0, fmt.Errorf("interp: no global scalar %q", name)
	}
	return in.globals.scalars[sym].v.toReal(), nil
}

// GlobalArrayReal snapshots a global real array after Run.
func (in *Interp) GlobalArrayReal(name string) ([]float64, error) {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ArraySym || sym.Type != lang.TReal {
		return nil, fmt.Errorf("interp: no global real array %q", name)
	}
	return append([]float64(nil), in.globals.arrays[sym].reals...), nil
}

// GlobalArrayInt snapshots a global integer array after Run.
func (in *Interp) GlobalArrayInt(name string) ([]int64, error) {
	sym := in.info.Globals[name]
	if sym == nil || sym.Kind != sem.ArraySym || sym.Type != lang.TInteger {
		return nil, fmt.Errorf("interp: no global integer array %q", name)
	}
	return append([]int64(nil), in.globals.arrays[sym].ints...), nil
}

// Run executes the main program. Cost is charged to the machine.
func (in *Interp) Run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	var serial uint64
	in.cost = &serial
	in.execUnit(in.info.Program.Main)
	in.mach.AddSerial(serial)
	return nil
}

func (in *Interp) fail(pos lang.Pos, format string, args ...any) {
	panic(&RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ctxPollMask samples the cancellation context once per 4096 steps: cheap
// enough for the hot path, prompt enough that a fired deadline aborts a
// simulated run within microseconds of real time.
const ctxPollMask = 1<<12 - 1

func (in *Interp) charge(c uint64) {
	*in.cost += c
	in.steps++
	if in.steps > in.opts.MaxSteps {
		panic(&RuntimeError{
			Msg:   fmt.Sprintf("step limit exceeded (%d)", in.opts.MaxSteps),
			Cause: comperr.Limitf("simulated execution exceeded %d steps", in.opts.MaxSteps),
		})
	}
	if in.ctxDone != nil && in.steps&ctxPollMask == 0 {
		select {
		case <-in.ctxDone:
			panic(&RuntimeError{
				Msg:   "execution canceled",
				Cause: comperr.Canceled(in.opts.Ctx.Err()),
			})
		default:
		}
	}
}

// ex is the per-unit execution context.
type ex struct {
	in    *Interp
	unit  *lang.Unit
	scope *sem.Scope
	store *store
}

// execUnit runs one unit with fresh locals.
func (in *Interp) execUnit(u *lang.Unit) {
	sc := in.info.Scope(u)
	st := newStore(in.globals)
	for _, sym := range sc.Locals {
		switch sym.Kind {
		case sem.ScalarSym:
			st.scalars[sym] = &cell{v: zeroValue(sym.Type)}
		case sem.ArraySym:
			st.arrays[sym] = newArray(sym)
		}
	}
	e := &ex{in: in, unit: u, scope: sc, store: st}
	sig, lbl := e.runList(u.Body)
	if sig == sigJump {
		in.fail(lang.Pos{}, "unresolved jump to label %d", lbl)
	}
}

type signal int

const (
	sigNone signal = iota
	sigReturn
	sigStop
	sigJump
)

// runList executes a statement list, resolving jumps whose target label is
// a direct member of the list.
func (e *ex) runList(stmts []lang.Stmt) (signal, int) {
	i := 0
	for i < len(stmts) {
		sig, lbl := e.runStmt(stmts[i])
		if sig == sigJump {
			found := -1
			for j, s := range stmts {
				if s.Label() == lbl {
					found = j
					break
				}
			}
			if found < 0 {
				return sig, lbl // propagate to the enclosing list
			}
			i = found
			continue
		}
		if sig != sigNone {
			return sig, 0
		}
		i++
	}
	return sigNone, 0
}

func (e *ex) runStmt(s lang.Stmt) (signal, int) {
	in := e.in
	switch s := s.(type) {
	case *lang.AssignStmt:
		v := e.eval(s.Rhs)
		e.assign(s.Lhs, v)
		return sigNone, 0

	case *lang.IfStmt:
		in.charge(2)
		if e.eval(s.Cond).b {
			return e.runList(s.Then)
		}
		for i := range s.Elifs {
			in.charge(2)
			if e.eval(s.Elifs[i].Cond).b {
				return e.runList(s.Elifs[i].Body)
			}
		}
		if s.Else != nil {
			return e.runList(s.Else)
		}
		return sigNone, 0

	case *lang.DoStmt:
		if in.opts.Observe != nil && in.opts.Observe.Loops[s] {
			return e.runObservedDo(s)
		}
		if in.opts.TrackLoops[s] && !(s.Parallel && in.mach.P > 1) {
			// Per-loop attribution: measure committed machine time plus
			// the pending serial sink, which stays monotonic even when
			// nested parallel regions flush the sink.
			before := in.mach.Time() + *in.cost
			sig, lbl := e.runSerialDo(s)
			if in.loopCycles == nil {
				in.loopCycles = map[*lang.DoStmt]uint64{}
			}
			in.loopCycles[s] += in.mach.Time() + *in.cost - before
			return sig, lbl
		}
		if s.Parallel && in.mach.P > 1 {
			return e.runParallelDo(s)
		}
		return e.runSerialDo(s)

	case *lang.WhileStmt:
		for {
			in.charge(2)
			if !e.eval(s.Cond).b {
				return sigNone, 0
			}
			sig, lbl := e.runList(s.Body)
			if sig == sigJump {
				return sig, lbl
			}
			if sig != sigNone {
				return sig, 0
			}
		}

	case *lang.CallStmt:
		in.charge(12)
		callee := in.info.Program.Unit(s.Name)
		if callee == nil {
			in.fail(s.Pos(), "call of unknown unit %q", s.Name)
		}
		in.execUnit(callee)
		return sigNone, 0

	case *lang.GotoStmt:
		in.charge(1)
		return sigJump, s.Target

	case *lang.ContinueStmt:
		in.charge(1)
		return sigNone, 0

	case *lang.ReturnStmt:
		return sigReturn, 0

	case *lang.StopStmt:
		return sigStop, 0

	case *lang.PrintStmt:
		in.charge(20)
		if in.opts.Out != nil {
			for i, a := range s.Args {
				if i > 0 {
					fmt.Fprint(in.opts.Out, " ")
				}
				if str, ok := a.(*lang.StrLit); ok {
					fmt.Fprint(in.opts.Out, str.Value)
					continue
				}
				v := e.eval(a)
				switch v.k {
				case lang.TInteger:
					fmt.Fprintf(in.opts.Out, "%d", v.i)
				case lang.TReal:
					fmt.Fprintf(in.opts.Out, "%g", v.r)
				case lang.TLogical:
					fmt.Fprintf(in.opts.Out, "%t", v.b)
				}
			}
			fmt.Fprintln(in.opts.Out)
		}
		return sigNone, 0
	}
	in.fail(s.Pos(), "unknown statement %T", s)
	return sigNone, 0
}

// doRange evaluates the loop bounds once.
func (e *ex) doRange(s *lang.DoStmt) (lo, hi, step int64) {
	lo = e.eval(s.Lo).toInt()
	hi = e.eval(s.Hi).toInt()
	step = 1
	if s.Step != nil {
		step = e.eval(s.Step).toInt()
		if step == 0 {
			e.in.fail(s.Pos(), "zero DO step")
		}
	}
	return lo, hi, step
}

func (e *ex) runSerialDo(s *lang.DoStmt) (signal, int) {
	in := e.in
	lo, hi, step := e.doRange(s)
	sym := e.scope.Lookup(s.Var.Name)
	cellV := e.store.scalar(sym)
	// Iterate by counter, not by `v += step`: near the int64 extremes the
	// increment would wrap past hi and the v<=hi test would never fail.
	n := tripCountU(lo, hi, step)
	for k := uint64(0); k < n; k++ {
		in.charge(3)
		cellV.v = intV(lo + int64(k)*step)
		if in.obsDepth > 0 {
			// Nested loop-variable writes are part of the footprint: a
			// nested loop var the parallelizer failed to privatize is a
			// real cross-iteration conflict.
			in.obsAccess(sym, -1, true)
		}
		sig, lbl := e.runList(s.Body)
		if sig == sigJump {
			return sig, lbl
		}
		if sig != sigNone {
			return sig, 0
		}
	}
	// Fortran-style: the loop variable holds the first out-of-range value
	// (lo itself for a zero-trip loop).
	cellV.v = intV(lo + int64(n)*step)
	return sigNone, 0
}

// tripCountU computes the F77 DO trip count max(0, (hi-lo+step)/step) in
// uint64 arithmetic: the span hi-lo can exceed MaxInt64 (e.g. lo negative,
// hi positive), and two's-complement conversion makes uint64(hi)-uint64(lo)
// exact for any in-range operands. -uint64(step) likewise negates
// step == MinInt64 without overflow.
// The one unrepresentable case — every int64 visited, span 2^64-1 with
// |step| 1 — saturates to MaxUint64 instead of wrapping to zero trips; the
// interpreter's step budget aborts such a loop long before it matters.
func tripCountU(lo, hi, step int64) uint64 {
	var q uint64
	if step > 0 {
		if lo > hi {
			return 0
		}
		q = (uint64(hi) - uint64(lo)) / uint64(step)
	} else {
		if lo < hi {
			return 0
		}
		q = (uint64(lo) - uint64(hi)) / (-uint64(step))
	}
	if q == math.MaxUint64 {
		return math.MaxUint64
	}
	return q + 1
}

func tripCount(lo, hi, step int64) int64 {
	return int64(tripCountU(lo, hi, step))
}
