package interp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/passes"
	"repro/internal/sem"
)

// runSrc executes a program and returns the interpreter for inspection.
func runSrc(t *testing.T, src string, opts Options, setup func(*Interp)) *Interp {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	in := New(info, opts)
	if setup != nil {
		setup(in)
	}
	if err := in.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return in
}

func TestArithmeticAndControl(t *testing.T) {
	src := `
program p
  integer i, s, f
  real x
  s = 0
  do i = 1, 10
    s = s + i
  end do
  f = 1
  i = 1
  do while (i <= 5)
    f = f * i
    i = i + 1
  end do
  x = sqrt(16.0) + 2.0 ** 3
  if (s == 55 and f == 120) then
    s = s * 2
  else
    s = -1
  end if
end
`
	in := runSrc(t, src, Options{}, nil)
	if s, _ := in.GlobalInt("s"); s != 110 {
		t.Errorf("s = %d, want 110", s)
	}
	if f, _ := in.GlobalInt("f"); f != 120 {
		t.Errorf("f = %d, want 120", f)
	}
	if x, _ := in.GlobalReal("x"); x != 12 {
		t.Errorf("x = %g, want 12", x)
	}
}

func TestArraysAndSubroutines(t *testing.T) {
	src := `
program p
  param nmax = 10
  integer i, n
  real a(nmax), total
  n = 5
  call fill
  total = 0.0
  do i = 1, n
    total = total + a(i)
  end do
end
subroutine fill
  integer i
  do i = 1, n
    a(i) = real(i) * 2.0
  end do
end
`
	in := runSrc(t, src, Options{}, nil)
	if tot, _ := in.GlobalReal("total"); tot != 30 {
		t.Errorf("total = %g, want 30", tot)
	}
}

func TestGotoLoop(t *testing.T) {
	src := `
program p
  integer i, s
  i = 0
  s = 0
10 continue
  i = i + 1
  s = s + i
  if (i < 4) goto 10
end
`
	in := runSrc(t, src, Options{}, nil)
	if s, _ := in.GlobalInt("s"); s != 10 {
		t.Errorf("s = %d, want 10", s)
	}
}

func TestBoundsCheck(t *testing.T) {
	src := `
program p
  real a(5)
  integer i
  i = 9
  a(i) = 1.0
end
`
	prog, _ := lang.Parse(src)
	info, _ := sem.Check(prog)
	in := New(info, Options{})
	err := in.Run()
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("expected bounds error, got %v", err)
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
program p
  integer i
  i = 42
  print "i is", i
end
`
	var buf bytes.Buffer
	runSrc(t, src, Options{Out: &buf}, nil)
	if got := buf.String(); got != "i is 42\n" {
		t.Errorf("output = %q", got)
	}
}

func TestDoStepAndFinalValue(t *testing.T) {
	src := `
program p
  integer i, s
  s = 0
  do i = 10, 1, -2
    s = s + i
  end do
end
`
	in := runSrc(t, src, Options{}, nil)
	if s, _ := in.GlobalInt("s"); s != 30 {
		t.Errorf("s = %d, want 30 (10+8+6+4+2)", s)
	}
	if i, _ := in.GlobalInt("i"); i != 0 {
		t.Errorf("final i = %d, want 0", i)
	}
}

func TestInputInjection(t *testing.T) {
	src := `
program p
  param nmax = 4
  integer n, i
  real a(nmax), s
  s = 0.0
  do i = 1, n
    s = s + a(i)
  end do
end
`
	in := runSrc(t, src, Options{}, func(in *Interp) {
		in.SetInt("n", 3)
		in.SetArrayReal("a", []float64{1, 2, 3, 99})
	})
	if s, _ := in.GlobalReal("s"); s != 6 {
		t.Errorf("s = %g, want 6", s)
	}
}

// --- parallel execution ------------------------------------------------------

// parSrc is a parallelizable kernel with a reduction and a private temp.
const parSrc = `
program p
  param nmax = 64
  integer n, i
  real a(nmax), b(nmax), tmp, s
  n = 64
  do i = 1, n
    b(i) = real(i)
  end do
  s = 0.0
  do i = 1, n
    tmp = b(i) * 2.0
    a(i) = tmp + 1.0
    s = s + tmp
  end do
end
`

// prepParallel parses, runs the pass pipeline pieces needed, parallelizes,
// and returns info.
func prepParallel(t *testing.T, src string, mode parallel.Mode) *sem.Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	mod := dataflow.ComputeMod(info)
	passes.RecognizeReductions(prog, info, mod)
	pz := parallel.New(info, mod, mode)
	pz.Run()
	return info
}

func TestParallelMatchesSerial(t *testing.T) {
	info := prepParallel(t, parSrc, parallel.Full)

	ser := New(info, Options{Machine: machine.New(machine.Origin2000, 1)})
	if err := ser.Run(); err != nil {
		t.Fatal(err)
	}
	aSer, _ := ser.GlobalArrayReal("a")
	sSer, _ := ser.GlobalReal("s")

	for _, sched := range []Schedule{Forward, Reverse} {
		par := New(info, Options{
			Machine:  machine.New(machine.Origin2000, 8),
			Schedule: sched,
			Poison:   true,
		})
		if err := par.Run(); err != nil {
			t.Fatalf("parallel run (sched %d): %v", sched, err)
		}
		aPar, _ := par.GlobalArrayReal("a")
		sPar, _ := par.GlobalReal("s")
		for i := range aSer {
			if aSer[i] != aPar[i] {
				t.Fatalf("sched %d: a(%d) = %g, want %g", sched, i+1, aPar[i], aSer[i])
			}
		}
		if math.Abs(sPar-sSer) > 1e-9 {
			t.Errorf("sched %d: s = %g, want %g", sched, sPar, sSer)
		}
		if par.Machine().ParallelRegions() == 0 {
			t.Error("no parallel region executed")
		}
	}
}

func TestParallelFasterThanSerial(t *testing.T) {
	info := prepParallel(t, parSrc, parallel.Full)
	ser := New(info, Options{Machine: machine.New(machine.Origin2000, 1)})
	ser.Run()
	par := New(info, Options{Machine: machine.New(machine.Origin2000, 8)})
	par.Run()
	// The kernel is tiny so overhead may dominate; just check that the
	// parallel region's accounting happened and the cost model is sane.
	if par.Machine().Time() == 0 || ser.Machine().Time() == 0 {
		t.Fatal("no time accounted")
	}
}

func TestPoisonDetectsBadPrivatization(t *testing.T) {
	// Manually (and wrongly) privatize an array whose values flow across
	// iterations; the poisoned private copy must surface as NaN.
	src := `
program p
  param nmax = 16
  integer n, i
  real a(nmax), s
  n = 16
  a(1) = 1.0
  s = 0.0
  do i = 2, n
    a(i) = a(i - 1) + 1.0
    s = s + a(i)
  end do
end
`
	prog, _ := lang.Parse(src)
	info, _ := sem.Check(prog)
	mod := dataflow.ComputeMod(info)
	passes.RecognizeReductions(prog, info, mod)
	// Force-break it: mark the loop parallel with a privatized.
	var loop *lang.DoStmt
	lang.WalkStmts(prog.Main.Body, func(s lang.Stmt) bool {
		if d, ok := s.(*lang.DoStmt); ok {
			loop = d
		}
		return true
	})
	loop.Parallel = true
	loop.Private = []string{"a"}

	in := New(info, Options{Machine: machine.New(machine.Origin2000, 4), Poison: true})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	s, _ := in.GlobalReal("s")
	if !math.IsNaN(s) {
		t.Errorf("wrong privatization must poison the result, got s = %g", s)
	}
}

func TestReductionKinds(t *testing.T) {
	src := `
program p
  param nmax = 32
  integer n, i
  real a(nmax), s, lo, hi
  n = 32
  do i = 1, n
    a(i) = real(mod(i * 7, 13))
  end do
  s = 0.0
  lo = 1.0e30
  hi = -1.0e30
  do i = 1, n
    s = s + a(i)
    lo = min(lo, a(i))
    hi = max(hi, a(i))
  end do
end
`
	info := prepParallel(t, src, parallel.Full)
	ser := New(info, Options{Machine: machine.New(machine.Origin2000, 1)})
	ser.Run()
	par := New(info, Options{Machine: machine.New(machine.Origin2000, 4), Poison: true})
	par.Run()
	for _, name := range []string{"s", "lo", "hi"} {
		vs, _ := ser.GlobalReal(name)
		vp, _ := par.GlobalReal(name)
		if math.Abs(vs-vp) > 1e-9 {
			t.Errorf("%s: serial %g, parallel %g", name, vs, vp)
		}
	}
}

func TestParallelRandomized(t *testing.T) {
	// Random inputs: parallel result must match serial on every run.
	src := `
program p
  param nmax = 128
  integer n, i
  real a(nmax), b(nmax), s
  s = 0.0
  do i = 1, n
    a(i) = b(i) * b(i) + 1.0
    s = s + a(i)
  end do
end
`
	info := prepParallel(t, src, parallel.Full)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := int64(r.Intn(128) + 1)
		b := make([]float64, 128)
		for i := range b {
			b[i] = r.Float64() * 10
		}
		run := func(p int) (float64, []float64) {
			in := New(info, Options{Machine: machine.New(machine.Origin2000, p), Poison: true})
			in.SetInt("n", n)
			in.SetArrayReal("b", b)
			if err := in.Run(); err != nil {
				t.Fatal(err)
			}
			s, _ := in.GlobalReal("s")
			a, _ := in.GlobalArrayReal("a")
			return s, a
		}
		sSer, aSer := run(1)
		sPar, aPar := run(7)
		if math.Abs(sSer-sPar) > 1e-6*math.Abs(sSer) {
			t.Errorf("trial %d: s serial %g vs parallel %g", trial, sSer, sPar)
		}
		for i := range aSer {
			if aSer[i] != aPar[i] {
				t.Fatalf("trial %d: a(%d) differs", trial, i+1)
			}
		}
	}
}

func TestStepLimit(t *testing.T) {
	src := `
program p
  integer i
  i = 0
  do while (true)
    i = i + 1
  end do
end
`
	prog, _ := lang.Parse(src)
	info, _ := sem.Check(prog)
	in := New(info, Options{MaxSteps: 10000})
	err := in.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step limit error, got %v", err)
	}
}
