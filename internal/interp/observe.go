package interp

import (
	"repro/internal/lang"
	"repro/internal/sem"
)

// Observer receives memory-access callbacks while execution is inside one
// of the selected DO loops. The lint verdict auditor uses it to replay a
// compiled program serially and collect per-iteration read/write footprints
// — the ground truth against which parallelization and privatization
// verdicts are audited.
//
// Accesses are reported only between EnterLoop and ExitLoop of an observed
// loop (observation nests: entering a second observed loop keeps the first
// active). Loop-bound evaluation happens before the first IterStart, so
// accesses made by the header land in the preceding frame (or in the
// pre-iteration window of the entered loop), exactly matching the
// evaluate-once semantics of a parallel DO.
type Observer struct {
	// Loops selects the DO statements to observe.
	Loops map[*lang.DoStmt]bool
	// EnterLoop fires when an observed loop begins one dynamic execution,
	// after its bounds were evaluated and before its first iteration.
	EnterLoop func(s *lang.DoStmt)
	// IterStart fires at the start of each iteration with the loop
	// variable's value for it.
	IterStart func(s *lang.DoStmt, v int64)
	// ExitLoop fires when the dynamic execution completes (also on early
	// exit through RETURN/STOP/GOTO out of the loop).
	ExitLoop func(s *lang.DoStmt)
	// Access fires for every scalar or array-element access made while at
	// least one observed loop is active: elem is the flat element index
	// for arrays and -1 for scalars; write distinguishes stores from
	// loads. DO-header writes of nested loop variables are included;
	// parameter (named-constant) reads are not.
	Access func(sym *sem.Symbol, elem int64, write bool)
}

// observing reports whether access callbacks are currently armed.
func (in *Interp) observing() bool { return in.obsDepth > 0 }

// obsAccess forwards one access to the observer; callers check observing()
// first so the disabled path costs a single integer comparison.
func (in *Interp) obsAccess(sym *sem.Symbol, elem int64, write bool) {
	if in.opts.Observe.Access != nil {
		in.opts.Observe.Access(sym, elem, write)
	}
}

// runObservedDo wraps runSerialDo with the observer protocol. It mirrors
// runSerialDo exactly (counter iteration, F77 final-index semantics); the
// duplication keeps the un-observed hot path free of callback checks.
func (e *ex) runObservedDo(s *lang.DoStmt) (signal, int) {
	in := e.in
	o := in.opts.Observe
	lo, hi, step := e.doRange(s)
	sym := e.scope.Lookup(s.Var.Name)
	cellV := e.store.scalar(sym)
	if o.EnterLoop != nil {
		o.EnterLoop(s)
	}
	in.obsDepth++
	defer func() {
		in.obsDepth--
		if o.ExitLoop != nil {
			o.ExitLoop(s)
		}
	}()
	n := tripCountU(lo, hi, step)
	for k := uint64(0); k < n; k++ {
		in.charge(3)
		v := lo + int64(k)*step
		if o.IterStart != nil {
			o.IterStart(s, v)
		}
		cellV.v = intV(v)
		in.obsAccess(sym, -1, true)
		sig, lbl := e.runList(s.Body)
		if sig == sigJump {
			return sig, lbl
		}
		if sig != sigNone {
			return sig, 0
		}
	}
	cellV.v = intV(lo + int64(n)*step)
	return sigNone, 0
}
