package interp

import (
	"fmt"
	"math"

	"repro/internal/lang"
	"repro/internal/sem"
)

// runParallelDo executes a loop the parallelizer marked Parallel on the
// simulated machine: iterations are block-partitioned over P virtual
// processors; each chunk runs with fresh private copies of the loop's
// Private variables and per-processor reduction partials; the region's
// simulated time is the slowest chunk plus the machine's fork/join
// overhead.
func (e *ex) runParallelDo(s *lang.DoStmt) (signal, int) {
	in := e.in
	if in.inParallel {
		return e.runSerialDo(s)
	}
	lo, hi, step := e.doRange(s)
	n := tripCount(lo, hi, step)
	varSym := e.scope.Lookup(s.Var.Name)
	if n == 0 {
		e.store.scalar(varSym).v = intV(lo)
		return sigNone, 0
	}

	// Flush serial time accumulated so far.
	in.mach.AddSerial(*in.cost)
	*in.cost = 0

	// Resolve private and reduction symbols.
	var privScalars []*sem.Symbol
	var privArrays []*sem.Symbol
	for _, name := range s.Private {
		sym := e.scope.Lookup(name)
		if sym == nil {
			in.fail(s.Pos(), "unknown private variable %q", name)
		}
		switch sym.Kind {
		case sem.ScalarSym:
			privScalars = append(privScalars, sym)
		case sem.ArraySym:
			privArrays = append(privArrays, sym)
		}
	}
	type reduction struct {
		sym *sem.Symbol
		op  lang.Op
	}
	var reds []reduction
	for _, r := range s.Reductions {
		sym := e.scope.Lookup(r.Var)
		if sym == nil || sym.Kind != sem.ScalarSym {
			in.fail(s.Pos(), "unknown reduction variable %q", r.Var)
		}
		reds = append(reds, reduction{sym: sym, op: r.Op})
	}

	// Partition [0, n) into P contiguous chunks.
	P := in.mach.P
	if int64(P) > n {
		P = int(n)
	}
	base := n / int64(P)
	rem := n % int64(P)
	type chunk struct{ startIdx, endIdx int64 } // [start, end)
	chunks := make([]chunk, P)
	at := int64(0)
	for c := 0; c < P; c++ {
		size := base
		if int64(c) < rem {
			size++
		}
		chunks[c] = chunk{at, at + size}
		at += size
	}

	order := make([]int, P)
	for i := range order {
		order[i] = i
	}
	if in.opts.Schedule == Reverse {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}

	costs := make([]uint64, P)
	partials := make([][]value, P)
	var lastPriv *store // private frame of the chunk owning the final iteration

	savedCost := in.cost
	in.inParallel = true
	for _, c := range order {
		var chunkCost uint64
		in.cost = &chunkCost

		over := newStore(e.store)
		over.scalars[varSym] = &cell{}
		for _, sym := range privScalars {
			v := zeroValue(sym.Type)
			if in.opts.Poison {
				v = poisonValue(sym.Type)
			}
			over.scalars[sym] = &cell{v: v}
		}
		for _, sym := range privArrays {
			a := newArray(sym)
			if in.opts.Poison {
				a.poison()
			}
			over.arrays[sym] = a
		}
		for _, r := range reds {
			over.scalars[r.sym] = &cell{v: reductionIdentity(r.op, r.sym.Type)}
		}

		ce := &ex{in: in, unit: e.unit, scope: e.scope, store: over}
		for idx := chunks[c].startIdx; idx < chunks[c].endIdx; idx++ {
			in.charge(3)
			over.scalars[varSym].v = intV(lo + idx*step)
			sig, _ := ce.runList(s.Body)
			if sig != sigNone {
				in.fail(s.Pos(), "control left a parallel loop body")
			}
		}

		ps := make([]value, len(reds))
		for i, r := range reds {
			ps[i] = over.scalars[r.sym].v
		}
		partials[c] = ps
		costs[c] = chunkCost
		if chunks[c].endIdx == n {
			lastPriv = over
		}
	}
	in.inParallel = false
	in.cost = savedCost
	if in.mach.Rec.Enabled() {
		in.mach.AddParallelRegion(
			fmt.Sprintf("%s/do_%s@%d", e.unit.Name, s.Var.Name, s.Pos().Line), costs)
	} else {
		in.mach.AddParallel(costs)
	}

	// Combine reductions in ascending processor order (deterministic).
	for i, r := range reds {
		shared := e.store.scalar(r.sym)
		acc := shared.v
		for c := 0; c < P; c++ {
			acc = combine(r.op, acc, partials[c][i])
		}
		shared.v = acc
	}

	// Copy out the final iteration's private values (live-out semantics).
	if lastPriv != nil {
		for _, sym := range privScalars {
			e.store.scalar(sym).v = lastPriv.scalars[sym].v
		}
		for _, sym := range privArrays {
			shared := e.store.array(sym)
			private := lastPriv.arrays[sym]
			copy(shared.ints, private.ints)
			copy(shared.reals, private.reals)
			copy(shared.bools, private.bools)
		}
	}
	e.store.scalar(varSym).v = intV(lo + n*step)
	return sigNone, 0
}

func reductionIdentity(op lang.Op, t lang.BasicType) value {
	switch op {
	case lang.OpAdd:
		return zeroValue(t)
	case lang.OpMul:
		if t == lang.TInteger {
			return intV(1)
		}
		return realV(1)
	case lang.OpLt: // min
		if t == lang.TInteger {
			return intV(math.MaxInt64)
		}
		return realV(math.Inf(1))
	case lang.OpGt: // max
		if t == lang.TInteger {
			return intV(math.MinInt64)
		}
		return realV(math.Inf(-1))
	}
	return zeroValue(t)
}

func combine(op lang.Op, a, b value) value {
	if a.k == lang.TInteger && b.k == lang.TInteger {
		switch op {
		case lang.OpAdd:
			return intV(a.i + b.i)
		case lang.OpMul:
			return intV(a.i * b.i)
		case lang.OpLt:
			if b.i < a.i {
				return b
			}
			return a
		case lang.OpGt:
			if b.i > a.i {
				return b
			}
			return a
		}
	}
	af, bf := a.toReal(), b.toReal()
	switch op {
	case lang.OpAdd:
		return realV(af + bf)
	case lang.OpMul:
		return realV(af * bf)
	case lang.OpLt:
		return realV(math.Min(af, bf))
	case lang.OpGt:
		return realV(math.Max(af, bf))
	}
	return a
}
