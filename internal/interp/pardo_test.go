package interp

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sem"
)

// forceParallel marks the first top-level DO loop parallel with the given
// privates (bypassing the analyses, to exercise the executor directly).
func forceParallel(t *testing.T, src string, private []string) *sem.Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range prog.Main.Body {
		if d, ok := s.(*lang.DoStmt); ok {
			d.Parallel = true
			d.Private = private
			break
		}
	}
	return info
}

func TestParallelZeroTripLoop(t *testing.T) {
	src := `
program p
  param nmax = 8
  real a(nmax)
  integer i, n
  n = 0
  do i = 1, n
    a(i) = 1.0
  end do
  n = 7
end
`
	info := forceParallel(t, src, nil)
	in := New(info, Options{Machine: machine.New(machine.Origin2000, 4)})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	// The loop variable must hold the first out-of-range value.
	if i, _ := in.GlobalInt("i"); i != 1 {
		t.Errorf("i = %d, want 1", i)
	}
	if in.Machine().ParallelRegions() != 0 {
		t.Error("zero-trip loop must not open a region")
	}
}

func TestParallelMoreProcsThanIterations(t *testing.T) {
	src := `
program p
  param nmax = 3
  real a(nmax)
  integer i
  do i = 1, 3
    a(i) = real(i) * 2.0
  end do
end
`
	info := forceParallel(t, src, nil)
	in := New(info, Options{Machine: machine.New(machine.Origin2000, 16), Poison: true})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	a, _ := in.GlobalArrayReal("a")
	for k, want := range []float64{2, 4, 6} {
		if a[k] != want {
			t.Errorf("a(%d) = %g, want %g", k+1, a[k], want)
		}
	}
}

func TestParallelNegativeStep(t *testing.T) {
	src := `
program p
  param nmax = 10
  real a(nmax)
  integer i
  do i = 10, 1, -1
    a(i) = real(i)
  end do
end
`
	info := forceParallel(t, src, nil)
	in := New(info, Options{Machine: machine.New(machine.Origin2000, 4)})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	a, _ := in.GlobalArrayReal("a")
	for k := range a {
		if a[k] != float64(k+1) {
			t.Fatalf("a(%d) = %g", k+1, a[k])
		}
	}
	if i, _ := in.GlobalInt("i"); i != 0 {
		t.Errorf("final i = %d, want 0", i)
	}
}

func TestParallelLoopVarPrivatePerChunk(t *testing.T) {
	// The loop variable itself must be chunk-private: with shared i the
	// chunks would trample each other.
	src := `
program p
  param nmax = 64
  real a(nmax)
  integer i
  do i = 1, nmax
    a(i) = real(i)
  end do
end
`
	info := forceParallel(t, src, nil)
	in := New(info, Options{Machine: machine.New(machine.Origin2000, 8), Schedule: Reverse})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	a, _ := in.GlobalArrayReal("a")
	for k := range a {
		if a[k] != float64(k+1) {
			t.Fatalf("a(%d) = %g (loop variable shared across chunks?)", k+1, a[k])
		}
	}
}

func TestControlLeavingParallelBodyFails(t *testing.T) {
	src := `
program p
  param nmax = 8
  real a(nmax)
  integer i
  do i = 1, nmax
    a(i) = 1.0
    if (i == 3) goto 99
  end do
99 continue
end
`
	info := forceParallel(t, src, nil)
	in := New(info, Options{Machine: machine.New(machine.Origin2000, 4)})
	err := in.Run()
	if err == nil {
		t.Fatal("a goto leaving a parallel body must be a runtime error (the parallelizer never emits this)")
	}
}

func TestNestedParallelRunsSerially(t *testing.T) {
	src := `
program p
  param nmax = 8
  real m(nmax, nmax)
  integer i, j
  do i = 1, nmax
    do j = 1, nmax
      m(i, j) = real(i * 10 + j)
    end do
  end do
end
`
	prog, _ := lang.Parse(src)
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Main.Body[0].(*lang.DoStmt)
	inner := outer.Body[0].(*lang.DoStmt)
	outer.Parallel = true
	inner.Parallel = true // nested region must degrade to serial
	in := New(info, Options{Machine: machine.New(machine.Origin2000, 4)})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Machine().ParallelRegions() != 1 {
		t.Errorf("regions = %d, want 1 (no nested regions)", in.Machine().ParallelRegions())
	}
	m, _ := in.GlobalArrayReal("m")
	if m[0] != 11 {
		t.Errorf("m(1,1) = %g", m[0])
	}
}
