package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/passes"
	"repro/internal/sem"
)

func TestGotoOutOfLoop(t *testing.T) {
	src := `
program p
  integer i, s
  s = 0
  do i = 1, 100
    s = s + 1
    if (i == 5) goto 20
  end do
20 continue
  s = s * 10
end
`
	in := runSrc(t, src, Options{}, nil)
	if s, _ := in.GlobalInt("s"); s != 50 {
		t.Errorf("s = %d, want 50", s)
	}
}

func TestGotoBackwardNested(t *testing.T) {
	src := `
program p
  integer i, rounds, s
  rounds = 0
  s = 0
10 continue
  rounds = rounds + 1
  do i = 1, 3
    s = s + i
  end do
  if (rounds < 4) goto 10
end
`
	in := runSrc(t, src, Options{}, nil)
	if s, _ := in.GlobalInt("s"); s != 24 {
		t.Errorf("s = %d, want 24 (4 rounds of 6)", s)
	}
}

func TestTwoDimensionalArrays(t *testing.T) {
	src := `
program p
  param n = 4
  real m(n, n)
  integer i, j
  real trace
  do i = 1, n
    do j = 1, n
      m(i, j) = real(i * 10 + j)
    end do
  end do
  trace = 0.0
  do i = 1, n
    trace = trace + m(i, i)
  end do
end
`
	in := runSrc(t, src, Options{}, nil)
	if tr, _ := in.GlobalReal("trace"); tr != 11+22+33+44 {
		t.Errorf("trace = %g", tr)
	}
}

func TestCustomLowerBoundArrays(t *testing.T) {
	src := `
program p
  real a(0:4), b(-2:2)
  integer i
  real s
  do i = 0, 4
    a(i) = real(i)
  end do
  do i = -2, 2
    b(i) = real(i * i)
  end do
  s = a(0) + a(4) + b(-2) + b(2) + b(0)
end
`
	in := runSrc(t, src, Options{}, nil)
	if s, _ := in.GlobalReal("s"); s != 0+4+4+4+0 {
		t.Errorf("s = %g, want 12", s)
	}
}

func TestReturnFromSubroutine(t *testing.T) {
	src := `
program p
  integer g
  g = 0
  call work
  g = g + 100
end
subroutine work
  g = 1
  return
  g = 99
end
`
	in := runSrc(t, src, Options{}, nil)
	if g, _ := in.GlobalInt("g"); g != 101 {
		t.Errorf("g = %d, want 101", g)
	}
}

func TestStopHaltsProgram(t *testing.T) {
	src := `
program p
  integer g
  g = 1
  stop
  g = 2
end
`
	in := runSrc(t, src, Options{}, nil)
	if g, _ := in.GlobalInt("g"); g != 1 {
		t.Errorf("g = %d, want 1", g)
	}
}

func TestLocalsResetPerCall(t *testing.T) {
	src := `
program p
  integer g
  call bump
  call bump
end
subroutine bump
  integer local
  local = local + 1
  g = g + local
end
`
	in := runSrc(t, src, Options{}, nil)
	// local starts at 0 on each call: g = 1 + 1.
	if g, _ := in.GlobalInt("g"); g != 2 {
		t.Errorf("g = %d, want 2 (locals must not persist)", g)
	}
}

func TestIntegerTruncationOnAssign(t *testing.T) {
	src := `
program p
  integer i
  real x
  x = 7.0
  i = x / 2.0
end
`
	in := runSrc(t, src, Options{}, nil)
	if i, _ := in.GlobalInt("i"); i != 3 {
		t.Errorf("i = %d, want 3 (Fortran truncation)", i)
	}
}

func TestDivisionByZeroCaught(t *testing.T) {
	src := `
program p
  integer a, b
  b = 0
  a = 1 / b
end
`
	prog, _ := lang.Parse(src)
	info, _ := sem.Check(prog)
	in := New(info, Options{})
	if err := in.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division error, got %v", err)
	}
}

func TestWhileConditionShortCircuit(t *testing.T) {
	// "p >= 1 and a(p) > 0" must not index a(0) when p == 0.
	src := `
program p
  param n = 5
  real a(n)
  integer q, hits
  q = 3
  hits = 0
  a(1) = 1.0
  a(2) = 1.0
  a(3) = 1.0
  do while (q >= 1 and a(q) > 0.0)
    hits = hits + 1
    q = q - 1
  end do
end
`
	in := runSrc(t, src, Options{}, nil)
	if h, _ := in.GlobalInt("hits"); h != 3 {
		t.Errorf("hits = %d, want 3", h)
	}
}

func TestLiveOutPrivateCopyOut(t *testing.T) {
	// A privatized array read after the parallel loop must hold the last
	// iteration's values (sequential semantics).
	src := `
program p
  param n = 10
  param m = 8
  real tmp(m), out(n, m)
  real last
  integer i, j
  do i = 1, n
    do j = 1, m
      tmp(j) = real(i * 100 + j)
    end do
    do j = 1, m
      out(i, j) = tmp(j)
    end do
  end do
  last = tmp(3)
end
`
	prog, _ := lang.Parse(src)
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod := dataflow.ComputeMod(info)
	passes.RecognizeReductions(prog, info, mod)
	pz := parallel.New(info, mod, parallel.Full)
	pz.Run()
	// The loop is NOT expected to parallelize automatically (tmp is
	// live-out), so force it with copy-out semantics to test the
	// executor's copy-out path.
	var loop *lang.DoStmt
	for _, s := range prog.Main.Body {
		if d, ok := s.(*lang.DoStmt); ok {
			loop = d
			break
		}
	}
	loop.Parallel = true
	loop.Private = []string{"tmp", "j"}

	in := New(info, Options{Machine: machine.New(machine.Origin2000, 4), Poison: true})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	last, _ := in.GlobalReal("last")
	if last != 1003 {
		t.Errorf("last = %g, want 1003 (copy-out of final iteration)", last)
	}
	if math.IsNaN(last) {
		t.Error("copy-out returned poison")
	}
}

func TestLogicalValues(t *testing.T) {
	src := `
program p
  logical flag, other
  integer n
  flag = true
  other = not flag
  if (flag and not other) then
    n = 1
  else
    n = 2
  end if
  if (flag == other) then
    n = n + 10
  end if
  if (flag != other) then
    n = n + 100
  end if
end
`
	in := runSrc(t, src, Options{}, nil)
	if n, _ := in.GlobalInt("n"); n != 101 {
		t.Errorf("n = %d, want 101", n)
	}
}

func TestIntrinsicSemantics(t *testing.T) {
	src := `
program p
  integer a, b, c
  real x, y
  a = mod(17, 5)
  b = min(3, 1, 2)
  c = max(3, 1, 2) + abs(0 - 4)
  x = abs(0.0 - 2.5) + mod(7.5, 2.0)
  y = log(exp(1.0)) + sin(0.0) + cos(0.0)
end
`
	in := runSrc(t, src, Options{}, nil)
	if a, _ := in.GlobalInt("a"); a != 2 {
		t.Errorf("mod(17,5) = %d", a)
	}
	if b, _ := in.GlobalInt("b"); b != 1 {
		t.Errorf("min = %d", b)
	}
	if c, _ := in.GlobalInt("c"); c != 7 {
		t.Errorf("max+abs = %d", c)
	}
	if x, _ := in.GlobalReal("x"); math.Abs(x-4.0) > 1e-12 {
		t.Errorf("x = %g", x)
	}
	if y, _ := in.GlobalReal("y"); math.Abs(y-2.0) > 1e-12 {
		t.Errorf("y = %g", y)
	}
}
