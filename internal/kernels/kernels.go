// Package kernels provides the five benchmark programs of the paper's
// evaluation (§5.2, Tables 2–3, Fig. 16), rewritten in F-lite around the
// exact loop nests the paper analyzes:
//
//	TRFD   — INTGRL/do140: triangular index array ia(i)=i*(i-1)/2 with a
//	         closed-form value (CFV), dependences disproved via range-test
//	         separation after substitution; plus a dominant affine phase
//	         (the paper: the irregular loop is only ~5% of sequential
//	         time, Table 3).
//	DYFESM — SOLXDD: block solve over offset/length arrays pptr/iblen with
//	         a closed-form distance (CFD), the offset–length test; tiny
//	         data set, so parallelization overhead dominates (Fig. 16(e)).
//	         The index arrays are defined in one subroutine and used in
//	         another, exercising the interprocedural query propagation.
//	BDNA   — ACTFOR/do240: per-iteration index gathering (do236 is the
//	         consecutively-written helper loop) and indirect reads bounded
//	         by closed-form bounds (CFB) for privatization.
//	P3M    — PP/do100: per-cell scratch computation, gather of near
//	         particles, indirect-force accumulation (CFB + PRIV).
//	TREE   — ACCEL/do10: Barnes–Hut acceleration with an explicit array
//	         stack walked per body (STACK privatization).
//
// The original sources (Perfect Benchmarks, NCSA P3M, Hawaii TREE) are not
// redistributable here; these kernels reproduce the documented access
// patterns so the analyses face the same code shapes. Input data is
// synthesised in-program with deterministic integer arithmetic.
//
// Small subroutines are auto-inlined by the pipeline (§5.1.1); subroutines
// ending in an explicit RETURN stay out of line, keeping the
// interprocedural part of the property analysis exercised, exactly as the
// paper observes ("because not all procedures are inlined, the
// interprocedural part ... is still required and proved useful").
package kernels

import (
	"fmt"
	"strings"
)

// Kernel is one benchmark program.
type Kernel struct {
	// Name is the paper's program name (lower case).
	Name string
	// Source is the F-lite program text.
	Source string
	// TargetLoop is a substring identifying the Table 3 loop in the
	// parallelizer's loop names (each kernel gives its target loop a
	// unique index variable).
	TargetLoop string
	// Technique is the property/test combination Table 3 lists.
	Technique string
	// CheckVars lists global scalars whose final values identify a
	// correct execution (serial vs parallel comparison).
	CheckVars []string
}

// Size scales a kernel: Small for tests, Default for the benchmarks.
type Size int

// Sizes.
const (
	Small Size = iota
	Default
	Large
)

// All returns the bundled kernels at the given size: the five programs of
// the paper's evaluation plus the three recurrence kernels (see
// recurrence.go), whose index arrays are provable only by the
// definition-site recurrence derivation.
func All(size Size) []*Kernel {
	return []*Kernel{
		TRFD(size),
		DYFESM(size),
		BDNA(size),
		P3M(size),
		TREE(size),
		CSR(size),
		PFGATHER(size),
		TSTEP(size),
	}
}

// ByName returns one kernel by its paper name.
func ByName(name string, size Size) (*Kernel, error) {
	for _, k := range All(size) {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

func pick(size Size, small, def, large int) int {
	switch size {
	case Small:
		return small
	case Large:
		return large
	default:
		return def
	}
}

func trim(src string) string { return strings.TrimSpace(src) + "\n" }

// TRFD builds the TRFD kernel: a dominant affine transform phase plus the
// irregular INTGRL/do140 loop over the triangular offset array. The phases
// live in small subroutines that the pipeline auto-inlines.
func TRFD(size Size) *Kernel {
	n := pick(size, 8, 48, 80)
	reps := pick(size, 2, 6, 10)
	nt := n * (n + 1) / 2
	src := fmt.Sprintf(`
program trfd
  param norb = %d
  param ntri = %d
  param reps = %d
  integer ia(norb)
  real xrsiq(ntri), v(norb), xij(norb, norb)
  integer i, j, r, iq
  real checksum

  ! Triangular offsets: ia(i) = i*(i-1)/2 (closed-form value).
  do i = 1, norb
    ia(i) = i * (i - 1) / 2
  end do
  do i = 1, norb
    v(i) = real(mod(i * 7, 11)) + 1.0
  end do

  do r = 1, reps
    call olda
    call intgrl
  end do

  checksum = 0.0
  do i = 1, ntri
    checksum = checksum + xrsiq(i)
  end do
  do i = 1, norb
    do j = 1, norb
      checksum = checksum + xij(i, j) * 0.001
    end do
  end do
  print "trfd checksum", checksum
end

subroutine olda
  ! Dominant affine phase: parallel for every configuration. The extra kk
  ! sweep keeps INTGRL at roughly the paper's ~5%% share of sequential
  ! time (Table 3).
  integer i, j, kk
  do i = 1, norb
    do j = 1, norb
      xij(i, j) = real(i) * 0.5 + real(j) * 0.25 + real(r)
      do kk = 1, 12
        xij(i, j) = xij(i, j) + v(mod(kk + i, norb) + 1) * 0.125
      end do
    end do
  end do
end

subroutine intgrl
  ! INTGRL/do140: irregular via ia() — needs CFV + the range test.
  integer j
  do iq = 1, norb
    do j = 1, iq
      xrsiq(ia(iq) + j) = xrsiq(ia(iq) + j) + v(j) * real(r)
    end do
  end do
end
`, n, nt, reps)
	return &Kernel{
		Name:       "trfd",
		Source:     trim(src),
		TargetLoop: "do_iq",
		Technique:  "CFV+DD",
		CheckVars:  []string{"checksum"},
	}
}

// DYFESM builds the DYFESM kernel: block operations over the offset/length
// arrays pptr/iblen. setup and solxdd end in RETURN so they stay out of
// line: the closed-form-distance query must cross unit boundaries.
func DYFESM(size Size) *Kernel {
	nblk := pick(size, 6, 16, 32)
	maxb := 5
	smax := nblk*maxb + 1
	reps := pick(size, 3, 12, 24)
	src := fmt.Sprintf(`
program dyfesm
  param nblk = %d
  param smax = %d
  param reps = %d
  integer pptr(nblk + 1), iblen(nblk)
  real x(smax), b(smax), a(smax)
  integer i, r
  real checksum

  call setup
  do r = 1, reps
    call solxdd
    call hop
  end do

  checksum = 0.0
  do i = 1, smax
    checksum = checksum + x(i)
  end do
  print "dyfesm checksum", checksum
end

subroutine setup
  integer i
  ! Block sizes 2..5 and their prefix offsets (closed-form distance).
  do i = 1, nblk
    iblen(i) = 2 + mod(i, 4)
  end do
  pptr(1) = 1
  do i = 1, nblk
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  do i = 1, smax
    b(i) = real(mod(i * 3, 7)) + 1.0
    a(i) = real(mod(i * 5, 4)) * 0.125
  end do
  return
end

subroutine solxdd
  ! SOLXDD: per-block forward solve — independent across blocks, but only
  ! the offset-length test can prove it (Fig. 13).
  integer ib, j, kk
  do ib = 1, nblk
    do j = 1, iblen(ib)
      x(pptr(ib) + j - 1) = b(pptr(ib) + j - 1) * 0.5 + real(r)
    end do
    do j = 2, iblen(ib)
      do kk = 1, j - 1
        x(pptr(ib) + j - 1) = x(pptr(ib) + j - 1) - a(pptr(ib) + kk - 1) * x(pptr(ib) + kk - 1)
      end do
    end do
  end do
  return
end

subroutine hop
  ! HOP/do20-like phase: a second block-wise sweep over the same
  ! offset/length layout (Table 3 lists it among DYFESM's newly parallel
  ! loops), also provable only by the offset-length test.
  integer ih, j
  do ih = 1, nblk
    do j = 1, iblen(ih)
      x(pptr(ih) + j - 1) = x(pptr(ih) + j - 1) * 0.9375 + a(pptr(ih) + j - 1)
    end do
  end do
  return
end
`, nblk, smax, reps)
	return &Kernel{
		Name:       "dyfesm",
		Source:     trim(src),
		TargetLoop: "do_ib",
		Technique:  "CFD+DD",
		CheckVars:  []string{"checksum"},
	}
}

// BDNA builds the BDNA kernel: ACTFOR/do240 with the per-iteration
// gathering loop do236 (consecutively written) and indirect reads
// privatized via closed-form bounds.
func BDNA(size Size) *Kernel {
	n := pick(size, 10, 48, 96)
	m := pick(size, 24, 160, 320)
	src := fmt.Sprintf(`
program bdna
  param nmol = %d
  param natom = %d
  integer ind(natom)
  real xdt(natom), ydt(natom), fmol(nmol)
  integer i, k, q
  real cutoff, checksum

  cutoff = 4.0
  do i = 1, natom
    ydt(i) = real(mod(i * 13, 9))
  end do

  call actfor

  checksum = 0.0
  do i = 1, nmol
    checksum = checksum + fmol(i)
  end do
  print "bdna checksum", checksum
end

subroutine actfor
  integer i, j
  real e
  ! ACTFOR/do240: parallel only with CW + CFB privatization.
  do k = 1, nmol
    do i = 1, natom
      xdt(i) = ydt(i) + real(mod(k + i, 5))
    end do
    ! ACTFOR/do236: gather indices of close atoms (consecutively written).
    q = 0
    do i = 1, natom
      if (xdt(i) < cutoff) then
        q = q + 1
        ind(q) = i
      end if
    end do
    ! Indirect accumulation: reads xdt(ind(j)), bounds [1:natom].
    e = 0.0
    do j = 1, q
      e = e + 1.0 / (xdt(ind(j)) + 1.0)
    end do
    fmol(k) = e
  end do
end
`, n, m)
	return &Kernel{
		Name:       "bdna",
		Source:     trim(src),
		TargetLoop: "do_k",
		Technique:  "CFB+PRIV",
		CheckVars:  []string{"checksum"},
	}
}

// P3M builds the particle–particle kernel: per-cell scratch arrays, a
// gather of near particles and an indirect accumulation (PP/do100).
func P3M(size Size) *Kernel {
	ncell := pick(size, 8, 32, 64)
	np := pick(size, 32, 256, 512)
	src := fmt.Sprintf(`
program p3m
  param ncell = %d
  param np = %d
  integer jpr(np)
  real x0(np), r2(np), px(np), fcell(ncell)
  integer i, k, q
  real rcut, checksum

  rcut = 6.0
  do i = 1, np
    px(i) = real(mod(i * 17, 23)) * 0.5
  end do

  call pp

  checksum = 0.0
  do i = 1, ncell
    checksum = checksum + fcell(i)
  end do
  print "p3m checksum", checksum
end

subroutine pp
  integer j
  real fsum
  ! PP/do100: per-cell particle-particle interactions.
  do k = 1, ncell
    do j = 1, np
      x0(j) = px(j) - real(mod(k, 7))
      r2(j) = x0(j) * x0(j) + 0.25
    end do
    q = 0
    do j = 1, np
      if (r2(j) < rcut) then
        q = q + 1
        jpr(q) = j
      end if
    end do
    fsum = 0.0
    do j = 1, q
      fsum = fsum + x0(jpr(j)) / r2(jpr(j))
    end do
    fcell(k) = fsum
  end do
end
`, ncell, np)
	return &Kernel{
		Name:       "p3m",
		Source:     trim(src),
		TargetLoop: "do_k",
		Technique:  "CFB+PRIV",
		CheckVars:  []string{"checksum"},
	}
}

// TREE builds the Barnes–Hut kernel: per-body tree walks with an explicit
// array stack (ACCEL/do10; STACK privatization). The tree is a complete
// binary tree with bodies interacting against its leaves.
func TREE(size Size) *Kernel {
	depth := pick(size, 5, 9, 11)
	nodes := 1<<uint(depth) - 1
	nbody := pick(size, 16, 128, 256)
	src := fmt.Sprintf(`
program tree
  param nnode = %d
  param nbody = %d
  param depth = %d
  integer stak(depth * 2 + 2)
  integer left(nnode), right(nnode)
  real mass(nnode), pos(nnode), bpos(nbody), acc(nbody)
  integer i, pbase, rootn
  real checksum

  ! Complete binary tree: node i has children 2i and 2i+1. The root id
  ! and the stack base are recorded during construction (runtime data,
  ! like the COMMON block of the original treecode).
  do i = 1, nnode
    if (2 * i + 1 <= nnode) then
      left(i) = 2 * i
      right(i) = 2 * i + 1
    else
      left(i) = 0
      right(i) = 0
    end if
    mass(i) = real(mod(i * 3, 5)) + 1.0
    pos(i) = real(mod(i * 11, 17)) * 0.3
    if (i == 1) then
      rootn = i
      pbase = i - 1
    end if
  end do
  do i = 1, nbody
    bpos(i) = real(mod(i * 29, 31)) * 0.2
  end do

  call accel

  checksum = 0.0
  do i = 1, nbody
    checksum = checksum + acc(i)
  end do
  print "tree checksum", checksum
end

subroutine accel
  integer k, p, nodeid
  real ax, d
  ! ACCEL/do10: walk the tree with an explicit stack, one walk per body.
  ! The stack base and root id are runtime data (set by the caller), as in
  ! the original treecode where they come from COMMON.
  do k = 1, nbody
    p = pbase
    p = p + 1
    stak(p) = rootn
    ax = 0.0
    do while (p >= 1)
      nodeid = stak(p)
      p = p - 1
      if (left(nodeid) == 0) then
        d = pos(nodeid) - bpos(k)
        ax = ax + mass(nodeid) * d / (d * d + 1.0)
      else
        p = p + 1
        stak(p) = left(nodeid)
        p = p + 1
        stak(p) = right(nodeid)
      end if
    end do
    acc(k) = ax
  end do
  return
end
`, nodes, nbody, depth)
	return &Kernel{
		Name:       "tree",
		Source:     trim(src),
		TargetLoop: "do_k",
		Technique:  "STACK",
		CheckVars:  []string{"checksum"},
	}
}
