package kernels

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// compileKernel compiles one kernel through the full pipeline.
func compileKernel(t *testing.T, k *Kernel, mode parallel.Mode) *pipeline.Result {
	t.Helper()
	res, err := pipeline.Compile(k.Source, mode, pipeline.Reorganized)
	if err != nil {
		t.Fatalf("%s: compile: %v", k.Name, err)
	}
	return res
}

func targetReport(res *pipeline.Result, k *Kernel) *parallel.LoopReport {
	for _, r := range res.Reports {
		if strings.Contains(r.Name, k.TargetLoop) {
			return r
		}
	}
	return nil
}

func TestKernelsCompile(t *testing.T) {
	for _, k := range All(Small) {
		t.Run(k.Name, func(t *testing.T) {
			res := compileKernel(t, k, parallel.Full)
			if len(res.Reports) == 0 {
				t.Fatal("no loops analyzed")
			}
		})
	}
}

func TestTargetLoopsParallelOnlyWithIAA(t *testing.T) {
	for _, k := range All(Small) {
		t.Run(k.Name, func(t *testing.T) {
			full := compileKernel(t, k, parallel.Full)
			rFull := targetReport(full, k)
			if rFull == nil {
				t.Fatalf("target loop %q not found; loops: %v", k.TargetLoop, names(full))
			}
			if !rFull.Parallel {
				t.Fatalf("target loop not parallel with IAA: %v", rFull.Blockers)
			}

			no := compileKernel(t, k, parallel.NoIAA)
			rNo := targetReport(no, k)
			if rNo == nil {
				t.Fatalf("target loop missing in NoIAA compile; loops: %v", names(no))
			}
			if rNo.Parallel {
				t.Fatalf("%s target loop must stay serial without IAA", k.Name)
			}

			base := compileKernel(t, k, parallel.Baseline)
			rBase := targetReport(base, k)
			if rBase != nil && rBase.Parallel {
				t.Fatalf("%s target loop must stay serial under the baseline", k.Name)
			}
		})
	}
}

// TestRecurrenceKernelsNeedDerivation pins down the ablation story: the
// three recurrence kernels parallelize with the definition-site derivation
// and go serial under -no-recurrence, while the five paper kernels are
// untouched by the flag (their index arrays have closed forms or
// offset/length patterns that never needed the derivation).
func TestRecurrenceKernelsNeedDerivation(t *testing.T) {
	recur := map[string]bool{"csr": true, "pfgather": true, "tstep": true}
	for _, k := range All(Small) {
		t.Run(k.Name, func(t *testing.T) {
			res, err := pipeline.CompileOpts(k.Source, parallel.Full, pipeline.Reorganized,
				pipeline.Options{NoRecurrence: true})
			if err != nil {
				t.Fatalf("compile -no-recurrence: %v", err)
			}
			r := targetReport(res, k)
			if r == nil {
				t.Fatalf("target loop %q not found; loops: %v", k.TargetLoop, names(res))
			}
			if recur[k.Name] {
				if r.Parallel {
					t.Fatalf("%s target loop must stay serial without recurrence derivation", k.Name)
				}
			} else if !r.Parallel {
				t.Fatalf("%s must not depend on recurrence derivation: %v", k.Name, r.Blockers)
			}
		})
	}
}

func names(res *pipeline.Result) []string {
	var out []string
	for _, r := range res.Reports {
		status := "serial"
		if r.Parallel {
			status = "par"
		}
		out = append(out, r.Name+"("+status+")")
	}
	return out
}

func TestExpectedTechniques(t *testing.T) {
	expect := map[string]func(r *parallel.LoopReport) bool{
		"trfd": func(r *parallel.LoopReport) bool {
			return r.Tests["xrsiq"] == "closed-form"
		},
		"dyfesm": func(r *parallel.LoopReport) bool {
			return r.Tests["x"] == "offset-length"
		},
		"bdna": func(r *parallel.LoopReport) bool {
			return r.PrivReasons["xdt"] == "indirect-bounds" && r.PrivReasons["ind"] == "consecutively-written"
		},
		"p3m": func(r *parallel.LoopReport) bool {
			return r.PrivReasons["x0"] == "indirect-bounds" && r.PrivReasons["jpr"] == "consecutively-written"
		},
		"tree": func(r *parallel.LoopReport) bool {
			return r.PrivReasons["stak"] == "stack"
		},
		"csr": func(r *parallel.LoopReport) bool {
			return r.Tests["a"] == "recurrence-window"
		},
		"pfgather": func(r *parallel.LoopReport) bool {
			return r.Tests["y"] == "injective"
		},
		"tstep": func(r *parallel.LoopReport) bool {
			return r.Tests["a"] == "recurrence-window"
		},
	}
	for _, k := range All(Small) {
		t.Run(k.Name, func(t *testing.T) {
			res := compileKernel(t, k, parallel.Full)
			r := targetReport(res, k)
			if r == nil || !r.Parallel {
				t.Fatalf("target not parallel: %+v", r)
			}
			if !expect[k.Name](r) {
				t.Errorf("unexpected evidence: tests=%v privReasons=%v props=%v",
					r.Tests, r.PrivReasons, r.Properties)
			}
		})
	}
}

func TestKernelsParallelCorrectness(t *testing.T) {
	for _, k := range All(Small) {
		t.Run(k.Name, func(t *testing.T) {
			res := compileKernel(t, k, parallel.Full)

			run := func(p int, sched interp.Schedule) map[string]float64 {
				in := interp.New(res.Info, interp.Options{
					Machine:  machine.New(machine.Origin2000, p),
					Schedule: sched,
					Poison:   true,
				})
				if err := in.Run(); err != nil {
					t.Fatalf("run p=%d: %v", p, err)
				}
				out := map[string]float64{}
				for _, v := range k.CheckVars {
					val, err := in.GlobalReal(v)
					if err != nil {
						t.Fatalf("checkvar %s: %v", v, err)
					}
					out[v] = val
				}
				return out
			}

			serial := run(1, interp.Forward)
			for _, p := range []int{2, 4, 8} {
				for _, sched := range []interp.Schedule{interp.Forward, interp.Reverse} {
					par := run(p, sched)
					for v, want := range serial {
						got := par[v]
						if math.IsNaN(got) {
							t.Fatalf("p=%d sched=%d: %s is NaN (bad privatization)", p, sched, v)
						}
						if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
							t.Errorf("p=%d sched=%d: %s = %v, want %v", p, sched, v, got, want)
						}
					}
				}
			}
		})
	}
}

func TestKernelsSpeedupShape(t *testing.T) {
	// At default sizes, the four big programs must speed up with
	// processors; DYFESM (tiny data) must not scale on the Origin-like
	// profile — the Fig. 16 shape.
	if testing.Short() {
		t.Skip("default-size kernels in -short mode")
	}
	for _, k := range All(Default) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res := compileKernel(t, k, parallel.Full)
			time := func(p int) uint64 {
				in := interp.New(res.Info, interp.Options{Machine: machine.New(machine.Origin2000, p)})
				if err := in.Run(); err != nil {
					t.Fatal(err)
				}
				return in.Machine().Time()
			}
			t1 := time(1)
			t8 := time(8)
			speedup := float64(t1) / float64(t8)
			switch k.Name {
			case "dyfesm":
				if speedup > 1.5 {
					t.Errorf("dyfesm should barely scale (tiny data), got %.2fx", speedup)
				}
			default:
				if speedup < 1.5 {
					t.Errorf("%s should speed up at 8 processors, got %.2fx", k.Name, speedup)
				}
			}
		})
	}
}

func TestLargeKernelsCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("large kernels in -short mode")
	}
	for _, k := range All(Large) {
		t.Run(k.Name, func(t *testing.T) {
			res := compileKernel(t, k, parallel.Full)
			r := targetReport(res, k)
			if r == nil || !r.Parallel {
				t.Fatalf("target loop not parallel at Large size: %+v", r)
			}
		})
	}
}
