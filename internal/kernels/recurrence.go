// The three recurrence kernels exercise the subscripted-subscript
// extension (Bhosale & Eigenmann style): their index arrays carry no
// closed form — they are *filled by loops*, and the only way to prove the
// consumer loops parallel is to derive monotonicity/injectivity from the
// filling recurrence itself. Under -no-recurrence every target loop here
// stays serial, which is exactly the ablation the benchmark report
// measures.
//
//	CSR      — compiler-built row pointers: row(i+1) = row(i) + len(i)
//	           with len(i) = 1 + mod(i, 3); the SpMV sweep scales the
//	           stored values in place through the row window, so only the
//	           derived strict monotonicity of row separates iterations.
//	PFGATHER — prefix-sum gather: x(w+1) = x(w) + 1 + mod(w, 4); the
//	           consumer scatters y(x(kg)) += e, provable only via the
//	           injectivity corollary of strict monotonicity.
//	TSTEP    — timestep-refilled offsets: every outer step rewrites
//	           cnt/off before the windowed update sweep, so the property
//	           must be re-derived (killed and re-proved) per timestep; the
//	           outer t loop itself stays serial by design.
package kernels

import "fmt"

// CSR builds the sparse matrix–vector kernel whose row-pointer array is
// constructed by the program itself as a prefix sum over loop-computed row
// lengths. setup ends in RETURN, so the monotonicity derivation for row
// must cross the unit boundary (the fill lives in another routine than the
// consumer). No closed-form value exists for row: without the recurrence
// derivation the spmv sweep is unprovable.
func CSR(size Size) *Kernel {
	n := pick(size, 8, 200, 400)
	nnz := 3*n + 1
	reps := pick(size, 2, 8, 12)
	src := fmt.Sprintf(`
program csr
  param n = %d
  param nnzmax = %d
  param reps = %d
  integer row(n + 1), len(n)
  real a(nnzmax), y(n), dscale(n)
  integer i, r, ic
  real checksum

  call setup
  do r = 1, reps
    call spmv
  end do

  checksum = 0.0
  do i = 1, n
    checksum = checksum + y(i)
  end do
  do i = 1, nnzmax
    checksum = checksum + a(i) * 0.001
  end do
  print "csr checksum", checksum
end

subroutine setup
  integer i
  ! Row lengths 1..3, then the row pointers as their prefix sum — the
  ! canonical compressed-format construction. row has no closed form;
  ! its strict monotonicity follows only from len(i) >= 1.
  do i = 1, n
    len(i) = 1 + mod(i, 3)
  end do
  row(1) = 1
  do i = 1, n
    row(i + 1) = row(i) + len(i)
  end do
  do i = 1, nnzmax
    a(i) = real(mod(i * 7, 13)) * 0.25 + 1.0
  end do
  do i = 1, n
    dscale(i) = 1.0 + real(mod(i, 3)) * 0.125
  end do
  return
end

subroutine spmv
  integer j
  real yv
  ! Row-wise sweep writing the stored values in place through the row
  ! window: iterations touch a(row(ic)) .. a(row(ic+1)-1), disjoint only
  ! because row is strictly increasing.
  do ic = 1, n
    yv = 0.0
    do j = row(ic), row(ic + 1) - 1
      a(j) = a(j) * dscale(ic)
      yv = yv + a(j)
    end do
    y(ic) = yv * 0.0625 + real(r)
  end do
  return
end
`, n, nnz, reps)
	return &Kernel{
		Name:       "csr",
		Source:     trim(src),
		TargetLoop: "do_ic",
		Technique:  "REC+DD",
		CheckVars:  []string{"checksum"},
	}
}

// PFGATHER builds the prefix-sum gather kernel: the index array is a
// strictly increasing prefix sum with a modular stride, and the consumer
// scatters through it. The dependence is disproved by injectivity, which
// the analysis obtains as a corollary of the derived strict monotonicity —
// there is no pattern or closed form to fall back on.
func PFGATHER(size Size) *Kernel {
	n := pick(size, 8, 240, 480)
	ysz := 4*n + 1
	flops := pick(size, 4, 12, 16)
	src := fmt.Sprintf(`
program pfgather
  param n = %d
  param ysz = %d
  param flops = %d
  integer x(n + 1)
  real y(ysz), g(n)
  integer i, w, kg, q
  real e, checksum

  ! Strictly increasing positions with gaps 1..4: x(w+1) = x(w) + d(w),
  ! d(w) = 1 + mod(w, 4) > 0. Injective, but only provably so from the
  ! recurrence that fills it.
  x(1) = 1
  do w = 1, n
    x(w + 1) = x(w) + 1 + mod(w, 4)
  end do
  do i = 1, ysz
    y(i) = real(mod(i * 3, 11)) * 0.5
  end do
  do i = 1, n
    g(i) = real(mod(i * 5, 7)) + 1.0
  end do

  ! Scatter through the prefix sum: distinct kg hit distinct y elements.
  do kg = 1, n
    e = 0.0
    do q = 1, flops
      e = e + g(kg) * 0.0625
    end do
    y(x(kg)) = y(x(kg)) + e
  end do

  checksum = 0.0
  do i = 1, ysz
    checksum = checksum + y(i)
  end do
  print "pfgather checksum", checksum
end
`, n, ysz, flops)
	return &Kernel{
		Name:       "pfgather",
		Source:     trim(src),
		TargetLoop: "do_kg",
		Technique:  "REC+INJ",
		CheckVars:  []string{"checksum"},
	}
}

// TSTEP builds the timestep-refill kernel: an outer time loop rewrites the
// counts and their prefix-sum offsets every step, then sweeps the windowed
// update. The offset array's monotonicity is killed by each refill and must
// be re-derived inside the timestep body; the inner sweep parallelizes per
// step while the t loop itself remains serial.
func TSTEP(size Size) *Kernel {
	n := pick(size, 8, 160, 320)
	asz := 3*n + 1
	reps := pick(size, 2, 8, 12)
	flops := pick(size, 4, 12, 16)
	src := fmt.Sprintf(`
program tstep
  param n = %d
  param asz = %d
  param reps = %d
  param flops = %d
  integer cnt(n), off(n + 1)
  real a(asz), g(n)
  integer i, t, w, iv, q
  real av, checksum

  do i = 1, asz
    a(i) = real(mod(i * 3, 5)) * 0.5
  end do
  do i = 1, n
    g(i) = real(mod(i * 11, 9)) * 0.25 + 1.0
  end do

  do t = 1, reps
    ! Refill the counts (they depend on t) and rebuild the offsets: the
    ! previous step's monotonicity fact is dead, the derivation reruns
    ! against this step's fill.
    do w = 1, n
      cnt(w) = 1 + mod(w + t, 3)
    end do
    off(1) = 1
    do w = 1, n
      off(w + 1) = off(w) + cnt(w)
    end do
    ! Windowed update sweep: parallel within the step, serial across t.
    do iv = 1, n
      av = 0.0
      do q = 1, flops
        av = av + g(iv) * 0.0625
      end do
      do i = off(iv), off(iv + 1) - 1
        a(i) = a(i) + av * real(t)
      end do
    end do
  end do

  checksum = 0.0
  do i = 1, asz
    checksum = checksum + a(i)
  end do
  print "tstep checksum", checksum
end
`, n, asz, reps, flops)
	return &Kernel{
		Name:       "tstep",
		Source:     trim(src),
		TargetLoop: "do_iv",
		Technique:  "REC+DD",
		CheckVars:  []string{"checksum"},
	}
}
