package lang

import "fmt"

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an F-lite expression.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	ValuePos Pos
	Value    int64
}

// RealLit is a floating-point literal.
type RealLit struct {
	ValuePos Pos
	Value    float64
	Text     string // original spelling, for printing
}

// BoolLit is "true" or "false".
type BoolLit struct {
	ValuePos Pos
	Value    bool
}

// StrLit is a string literal (usable only in PRINT).
type StrLit struct {
	ValuePos Pos
	Value    string
}

// Ident is a scalar variable reference (or a bare array name in
// declarations).
type Ident struct {
	NamePos Pos
	Name    string
}

// ArrayRef is either an array element reference x(i,j) or an intrinsic
// function call min(a,b); semantic analysis distinguishes the two by setting
// Intrinsic.
type ArrayRef struct {
	NamePos   Pos
	Name      string
	Args      []Expr
	Intrinsic bool // set by sem: this is an intrinsic call, not an array access
}

// Op is an operator in a unary or binary expression.
type Op int

// Operators.
const (
	OpAdd Op = iota // +
	OpSub           // -
	OpMul           // *
	OpDiv           // /
	OpPow           // **
	OpNeg           // unary -
	OpEq            // ==
	OpNe            // !=
	OpLt            // <
	OpLe            // <=
	OpGt            // >
	OpGe            // >=
	OpAnd           // and
	OpOr            // or
	OpNot           // not
)

var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpPow: "**",
	OpNeg: "-", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "and", OpOr: "or", OpNot: "not",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsComparison reports whether o is a relational operator.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// IsLogical reports whether o is a boolean connective.
func (o Op) IsLogical() bool { return o == OpAnd || o == OpOr || o == OpNot }

// Unary is a unary operation (negation or logical not).
type Unary struct {
	OpPos Pos
	Op    Op
	X     Expr
}

// Binary is a binary operation.
type Binary struct {
	Op   Op
	X, Y Expr
}

func (e *IntLit) Pos() Pos   { return e.ValuePos }
func (e *RealLit) Pos() Pos  { return e.ValuePos }
func (e *BoolLit) Pos() Pos  { return e.ValuePos }
func (e *StrLit) Pos() Pos   { return e.ValuePos }
func (e *Ident) Pos() Pos    { return e.NamePos }
func (e *ArrayRef) Pos() Pos { return e.NamePos }
func (e *Unary) Pos() Pos    { return e.OpPos }
func (e *Binary) Pos() Pos   { return e.X.Pos() }

func (*IntLit) exprNode()   {}
func (*RealLit) exprNode()  {}
func (*BoolLit) exprNode()  {}
func (*StrLit) exprNode()   {}
func (*Ident) exprNode()    {}
func (*ArrayRef) exprNode() {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is an F-lite statement. Every statement can carry a numeric label
// (the target of GOTO).
type Stmt interface {
	Node
	stmtNode()
	// Label returns the numeric statement label, or 0 if unlabeled.
	Label() int
	// SetLabel attaches a numeric label.
	SetLabel(int)
	// SetPos attaches a source position. Passes that synthesize or move
	// statements use it to keep diagnostics anchored to the source line
	// the statement derives from.
	SetPos(Pos)
}

// stmtBase supplies position and label storage for statements.
type stmtBase struct {
	pos   Pos
	label int
}

func (s *stmtBase) Pos() Pos       { return s.pos }
func (s *stmtBase) SetPos(p Pos)   { s.pos = p }
func (s *stmtBase) Label() int     { return s.label }
func (s *stmtBase) SetLabel(l int) { s.label = l }
func (s *stmtBase) stmtNode()      {}

// AssignStmt is "lhs = rhs" where lhs is an Ident or a non-intrinsic
// ArrayRef.
type AssignStmt struct {
	stmtBase
	Lhs Expr
	Rhs Expr
}

// IfStmt is a block IF with optional ELSEIF arms and ELSE.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then []Stmt
	// Elifs are the "else if" arms in order.
	Elifs []ElifArm
	Else  []Stmt // nil if absent
}

// ElifArm is one "else if (cond) then" arm of an IfStmt.
type ElifArm struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// DoStmt is a counted DO loop: do Var = Lo, Hi [, Step] ... end do.
type DoStmt struct {
	stmtBase
	Var  *Ident
	Lo   Expr
	Hi   Expr
	Step Expr // nil means 1
	Body []Stmt

	// Parallel is set by the parallelizer when the loop has been proven
	// parallel. It is not part of the surface syntax.
	Parallel bool
	// Private lists the names of arrays and scalars to privatize per
	// iteration when the loop runs in parallel. Set by the parallelizer.
	Private []string
	// Reductions lists scalar reduction targets (e.g. sums) recognised in
	// this loop. Set by reduction recognition.
	Reductions []Reduction
}

// Reduction describes one recognised reduction in a parallel loop.
type Reduction struct {
	Var string // scalar (or array name for array reductions)
	Op  Op     // OpAdd, OpMul, or min/max encoded as OpLt/OpGt
}

// WhileStmt is "do while (cond) ... end do".
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body []Stmt
}

// CallStmt is "call name". F-lite subroutines take no arguments; values are
// passed through globals (the model assumed in the paper, §3.2.1).
type CallStmt struct {
	stmtBase
	Name string
}

// GotoStmt is "goto label".
type GotoStmt struct {
	stmtBase
	Target int
}

// ContinueStmt is the no-op "continue" statement (commonly a GOTO target).
type ContinueStmt struct {
	stmtBase
}

// ReturnStmt returns from a subroutine (or ends the main program).
type ReturnStmt struct {
	stmtBase
}

// StopStmt halts the program.
type StopStmt struct {
	stmtBase
}

// PrintStmt is "print expr, expr, ...".
type PrintStmt struct {
	stmtBase
	Args []Expr
}

// ---------------------------------------------------------------------------
// Declarations and program units

// BasicType is one of the three F-lite value types.
type BasicType int

// Value types.
const (
	TInteger BasicType = iota
	TReal
	TLogical
)

func (t BasicType) String() string {
	switch t {
	case TInteger:
		return "integer"
	case TReal:
		return "real"
	case TLogical:
		return "logical"
	}
	return fmt.Sprintf("BasicType(%d)", int(t))
}

// DimBound is one dimension of an array declaration, lo:hi. Lo is nil for
// the default lower bound of 1.
type DimBound struct {
	Lo Expr // nil ⇒ 1
	Hi Expr
}

// VarDecl declares one variable: a scalar if Dims is empty, else an array.
type VarDecl struct {
	NamePos Pos
	Name    string
	Type    BasicType
	Dims    []DimBound
}

// Pos returns the position of the declared name.
func (d *VarDecl) Pos() Pos { return d.NamePos }

// IsArray reports whether the declaration has dimensions.
func (d *VarDecl) IsArray() bool { return len(d.Dims) > 0 }

// ParamDecl declares a named integer constant: "param n = 100".
type ParamDecl struct {
	NamePos Pos
	Name    string
	Value   Expr // constant integer expression
}

// Pos returns the position of the parameter name.
func (d *ParamDecl) Pos() Pos { return d.NamePos }

// Unit is one program unit: the main program or a subroutine.
type Unit struct {
	NamePos Pos
	Name    string
	IsMain  bool
	Decls   []*VarDecl
	Params  []*ParamDecl
	Body    []Stmt
}

// Pos returns the position of the unit header.
func (u *Unit) Pos() Pos { return u.NamePos }

// Program is a whole F-lite program: one main unit plus subroutines.
type Program struct {
	Main *Unit
	Subs []*Unit
}

// Units returns all units, main first.
func (p *Program) Units() []*Unit {
	us := make([]*Unit, 0, len(p.Subs)+1)
	if p.Main != nil {
		us = append(us, p.Main)
	}
	return append(us, p.Subs...)
}

// Unit returns the unit with the given (lower-case) name, or nil.
func (p *Program) Unit(name string) *Unit {
	if p.Main != nil && p.Main.Name == name {
		return p.Main
	}
	for _, s := range p.Subs {
		if s.Name == name {
			return s
		}
	}
	return nil
}
