package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// A SyntaxError describes a lexical or parse error with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Lexer splits F-lite source text into tokens. Newlines are significant (they
// terminate statements) and are reported as NEWLINE tokens; runs of blank
// lines collapse into one NEWLINE. Comments run from '!' to end of line.
type Lexer struct {
	src     string
	off     int
	line    int
	col     int
	lastSig bool // last emitted token was significant (suppress leading NEWLINEs)
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() (Token, error) {
	for {
		// Skip horizontal whitespace and comments; handle line
		// continuation with '&' at end of line.
		for l.off < len(l.src) {
			c := l.peek()
			if c == ' ' || c == '\t' || c == '\r' {
				l.advance()
				continue
			}
			if c == '!' && l.peek2() != '=' {
				for l.off < len(l.src) && l.peek() != '\n' {
					l.advance()
				}
				continue
			}
			if c == '&' {
				// Continuation: consume '&', optional spaces/comment, then the newline.
				save := l.off
				saveLine, saveCol := l.line, l.col
				l.advance()
				for l.off < len(l.src) && (l.peek() == ' ' || l.peek() == '\t' || l.peek() == '\r') {
					l.advance()
				}
				if l.peek() == '!' {
					for l.off < len(l.src) && l.peek() != '\n' {
						l.advance()
					}
				}
				if l.peek() == '\n' {
					l.advance()
					continue
				}
				// '&' not followed by newline: restore and report below.
				l.off, l.line, l.col = save, saveLine, saveCol
				p := l.pos()
				l.advance()
				return Token{}, &SyntaxError{p, "'&' continuation must end a line"}
			}
			break
		}

		if l.off >= len(l.src) {
			return Token{Kind: EOF, Pos: l.pos()}, nil
		}

		p := l.pos()
		c := l.peek()

		if c == '\n' {
			l.advance()
			if !l.lastSig {
				continue // collapse blank lines / leading newlines
			}
			l.lastSig = false
			return Token{Kind: NEWLINE, Pos: p}, nil
		}

		l.lastSig = true
		switch {
		case isIdentStart(c):
			start := l.off
			for l.off < len(l.src) && isIdentPart(l.peek()) {
				l.advance()
			}
			text := strings.ToLower(l.src[start:l.off])
			kind := LookupKeyword(text)
			// "end do" and "end if" and "else if" are two-word forms;
			// the parser handles them by peeking, so nothing special here.
			if kind == IDENT {
				return Token{Kind: IDENT, Pos: p, Text: text}, nil
			}
			return Token{Kind: kind, Pos: p, Text: text}, nil

		case isDigit(c) || (c == '.' && isDigit(l.peek2())):
			return l.number(p)

		case c == '"':
			return l.str(p)
		}

		l.advance()
		switch c {
		case '+':
			return Token{Kind: PLUS, Pos: p}, nil
		case '-':
			return Token{Kind: MINUS, Pos: p}, nil
		case '*':
			if l.peek() == '*' {
				l.advance()
				return Token{Kind: POW, Pos: p}, nil
			}
			return Token{Kind: STAR, Pos: p}, nil
		case '/':
			if l.peek() == '=' {
				l.advance()
				return Token{Kind: NE, Pos: p}, nil // Fortran-style /=
			}
			return Token{Kind: SLASH, Pos: p}, nil
		case '=':
			if l.peek() == '=' {
				l.advance()
				return Token{Kind: EQ, Pos: p}, nil
			}
			return Token{Kind: ASSIGN, Pos: p}, nil
		case '!':
			// Only reachable as "!=" ('!' alone starts a comment).
			if l.peek() == '=' {
				l.advance()
				return Token{Kind: NE, Pos: p}, nil
			}
		case '<':
			if l.peek() == '=' {
				l.advance()
				return Token{Kind: LE, Pos: p}, nil
			}
			return Token{Kind: LT, Pos: p}, nil
		case '>':
			if l.peek() == '=' {
				l.advance()
				return Token{Kind: GE, Pos: p}, nil
			}
			return Token{Kind: GT, Pos: p}, nil
		case '(':
			return Token{Kind: LPAREN, Pos: p}, nil
		case ')':
			return Token{Kind: RPAREN, Pos: p}, nil
		case ',':
			return Token{Kind: COMMA, Pos: p}, nil
		case ':':
			return Token{Kind: COLON, Pos: p}, nil
		case ';':
			return Token{Kind: SEMI, Pos: p}, nil
		}
		return Token{}, &SyntaxError{p, fmt.Sprintf("unexpected character %q", c)}
	}
}

func (l *Lexer) number(p Pos) (Token, error) {
	start := l.off
	isReal := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isReal = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	} else if l.peek() == '.' && !isIdentStart(l.peek2()) && l.peek2() != '.' {
		// trailing dot as in "1." — treat as real if not followed by ident
		isReal = true
		l.advance()
	}
	if c := l.peek(); c == 'e' || c == 'E' || c == 'd' || c == 'D' {
		// exponent must be followed by digits or sign+digits
		j := l.off + 1
		if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
			j++
		}
		if j < len(l.src) && isDigit(l.src[j]) {
			isReal = true
			l.advance() // e
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	text := strings.Map(func(r rune) rune {
		if r == 'd' || r == 'D' {
			return 'e'
		}
		return r
	}, l.src[start:l.off])
	if isReal {
		return Token{Kind: REAL, Pos: p, Text: text}, nil
	}
	return Token{Kind: INT, Pos: p, Text: text}, nil
}

func (l *Lexer) str(p Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			return Token{}, &SyntaxError{p, "unterminated string literal"}
		}
		c := l.advance()
		if c == '"' {
			if l.peek() == '"' { // doubled quote escapes a quote
				l.advance()
				sb.WriteByte('"')
				continue
			}
			return Token{Kind: STRING, Pos: p, Text: sb.String()}, nil
		}
		sb.WriteByte(c)
	}
}

// Tokenize scans all of src and returns the token stream (excluding EOF).
// It is a convenience for tests and tools.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return toks, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
