package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("x = y + 2*z(i,j)\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, ASSIGN, IDENT, PLUS, INT, STAR, IDENT, LPAREN, IDENT, COMMA, IDENT, RPAREN, NEWLINE}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v tokens, want %v: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := []struct {
		src  string
		want Kind
	}{
		{"==", EQ}, {"!=", NE}, {"/=", NE}, {"<", LT}, {"<=", LE},
		{">", GT}, {">=", GE}, {"**", POW}, {"=", ASSIGN}, {"/", SLASH},
		{":", COLON}, {";", SEMI},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if len(toks) != 1 || toks[0].Kind != c.want {
			t.Errorf("%q: got %v, want one %s", c.src, toks, c.want)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"42", INT, "42"},
		{"3.14", REAL, "3.14"},
		{"1e3", REAL, "1e3"},
		{"2.5e-4", REAL, "2.5e-4"},
		{"1d0", REAL, "1e0"},
		{".5", REAL, ".5"},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if len(toks) != 1 {
			t.Fatalf("%q: got %d tokens %v", c.src, len(toks), toks)
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q: got (%s,%q), want (%s,%q)", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestTokenizeKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("DO i = 1, N\nEnd Do")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != DO {
		t.Errorf("got %s, want do", toks[0].Kind)
	}
	// Identifier N is lower-cased.
	if toks[5].Kind != IDENT || toks[5].Text != "n" {
		t.Errorf("got %v, want ident n", toks[5])
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("x = 1 ! set x\ny = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, ASSIGN, INT, NEWLINE, IDENT, ASSIGN, INT, NEWLINE}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeBlankLinesCollapse(t *testing.T) {
	toks, err := Tokenize("\n\n\nx = 1\n\n\ny = 2\n\n")
	if err != nil {
		t.Fatal(err)
	}
	nl := 0
	for _, tok := range toks {
		if tok.Kind == NEWLINE {
			nl++
		}
	}
	if nl != 2 {
		t.Errorf("got %d NEWLINE tokens, want 2: %v", nl, toks)
	}
}

func TestTokenizeContinuation(t *testing.T) {
	toks, err := Tokenize("x = 1 + &\n    2\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, ASSIGN, INT, PLUS, INT, NEWLINE}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
}

func TestTokenizeString(t *testing.T) {
	toks, err := Tokenize(`print "hello ""world"""` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != STRING || toks[1].Text != `hello "world"` {
		t.Errorf("got %v", toks[1])
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "x = $"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: expected error", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("%q: error lacks position: %v", src, err)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("x = 1\n  y = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	if toks[4].Pos != (Pos{2, 3}) {
		t.Errorf("y at %v, want 2:3", toks[4].Pos)
	}
}
