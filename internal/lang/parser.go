package lang

import (
	"fmt"
	"strconv"
)

// Parser builds an AST from F-lite source text.
//
// The grammar is newline-sensitive: statements end at end of line (or ';').
// Two-word forms "end do", "end if" and "else if" are accepted alongside
// "enddo", "endif" and "elseif".
type Parser struct {
	lex *Lexer
	tok Token // current token
	nxt Token // one token of lookahead
	err error
}

// Parse parses a complete F-lite program.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	p.next()
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseUnit parses a single program unit (useful for tests that exercise a
// lone subroutine body).
func ParseUnit(src string) (*Unit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	units := prog.Units()
	if len(units) == 0 {
		return nil, &SyntaxError{Pos{1, 1}, "no program unit"}
	}
	return units[0], nil
}

func (p *Parser) next() {
	p.tok = p.nxt
	if p.err != nil {
		p.nxt = Token{Kind: EOF, Pos: p.nxt.Pos}
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		t = Token{Kind: EOF, Pos: t.Pos}
	}
	p.nxt = t
}

func (p *Parser) errorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{pos, fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.tok.Kind != k {
		return Token{}, p.errorf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t, nil
}

// eol consumes the end of a statement: NEWLINE, ';' or EOF.
func (p *Parser) eol() error {
	if p.err != nil {
		return p.err
	}
	switch p.tok.Kind {
	case NEWLINE, SEMI:
		p.next()
		return nil
	case EOF:
		return nil
	}
	return p.errorf(p.tok.Pos, "expected end of statement, found %s", p.tok)
}

func (p *Parser) skipNewlines() {
	for p.tok.Kind == NEWLINE || p.tok.Kind == SEMI {
		p.next()
	}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	p.skipNewlines()
	for p.tok.Kind != EOF {
		u, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		if u.IsMain {
			if prog.Main != nil {
				return nil, p.errorf(u.NamePos, "duplicate program unit %q", u.Name)
			}
			prog.Main = u
		} else {
			prog.Subs = append(prog.Subs, u)
		}
		p.skipNewlines()
	}
	if p.err != nil {
		return nil, p.err
	}
	if prog.Main == nil && len(prog.Subs) == 0 {
		return nil, p.errorf(Pos{1, 1}, "empty source")
	}
	return prog, nil
}

func (p *Parser) parseUnit() (*Unit, error) {
	u := &Unit{NamePos: p.tok.Pos}
	switch p.tok.Kind {
	case PROGRAM:
		u.IsMain = true
	case SUBROUTINE:
	default:
		return nil, p.errorf(p.tok.Pos, "expected 'program' or 'subroutine', found %s", p.tok)
	}
	p.next()
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	u.Name = name.Text
	if err := p.eol(); err != nil {
		return nil, err
	}
	p.skipNewlines()

	// Declarations come first.
	for {
		switch p.tok.Kind {
		case INTEGER, REALKW, LOGICAL:
			ds, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			u.Decls = append(u.Decls, ds...)
		case PARAM:
			d, err := p.parseParamDecl()
			if err != nil {
				return nil, err
			}
			u.Params = append(u.Params, d)
		default:
			goto body
		}
		if err := p.eol(); err != nil {
			return nil, err
		}
		p.skipNewlines()
	}

body:
	stmts, err := p.parseStmts(endUnit)
	if err != nil {
		return nil, err
	}
	u.Body = stmts
	// parseStmts stopped at END (unit terminator).
	if _, err := p.expect(END); err != nil {
		return nil, err
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	return u, nil
}

func (p *Parser) parseVarDecl() ([]*VarDecl, error) {
	var typ BasicType
	switch p.tok.Kind {
	case INTEGER:
		typ = TInteger
	case REALKW:
		typ = TReal
	case LOGICAL:
		typ = TLogical
	}
	p.next()
	var decls []*VarDecl
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{NamePos: name.Pos, Name: name.Text, Type: typ}
		if p.tok.Kind == LPAREN {
			p.next()
			for {
				lo, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				var b DimBound
				if p.tok.Kind == COLON {
					p.next()
					hi, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					b = DimBound{Lo: lo, Hi: hi}
				} else {
					b = DimBound{Hi: lo}
				}
				d.Dims = append(d.Dims, b)
				if p.tok.Kind != COMMA {
					break
				}
				p.next()
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if p.tok.Kind != COMMA {
			break
		}
		p.next()
	}
	return decls, nil
}

func (p *Parser) parseParamDecl() (*ParamDecl, error) {
	p.next() // param
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ParamDecl{NamePos: name.Pos, Name: name.Text, Value: val}, nil
}

// stopSet tells parseStmts which tokens end a statement list.
type stopSet int

const (
	endUnit stopSet = iota // stop at "end" (not followed by do/if)
	endDo                  // stop at "enddo" / "end do"
	endIf                  // stop at "endif" / "end if" / "else" / "elseif"
)

// atStop reports whether the current token ends the active statement list.
// It must not consume input.
func (p *Parser) atStop(s stopSet) bool {
	switch s {
	case endUnit:
		return p.tok.Kind == END && p.nxt.Kind != DO && p.nxt.Kind != IF
	case endDo:
		return p.tok.Kind == ENDDO || (p.tok.Kind == END && p.nxt.Kind == DO)
	case endIf:
		switch p.tok.Kind {
		case ENDIF, ELSE, ELSEIF:
			return true
		case END:
			return p.nxt.Kind == IF
		}
	}
	return false
}

func (p *Parser) parseStmts(stop stopSet) ([]Stmt, error) {
	var stmts []Stmt
	p.skipNewlines()
	for {
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.Kind == EOF {
			return nil, p.errorf(p.tok.Pos, "unexpected end of file in statement list")
		}
		if p.atStop(stop) {
			return stmts, nil
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		p.skipNewlines()
	}
}

// parseStmt parses one statement, including an optional numeric label and
// the end-of-statement terminator for simple statements. Block statements
// (do/if) consume their own internal newlines.
func (p *Parser) parseStmt() (Stmt, error) {
	label := 0
	if p.tok.Kind == INT {
		v, err := strconv.Atoi(p.tok.Text)
		if err != nil || v <= 0 {
			return nil, p.errorf(p.tok.Pos, "invalid statement label %q", p.tok.Text)
		}
		label = v
		p.next()
	}
	st, err := p.parseCoreStmt()
	if err != nil {
		return nil, err
	}
	if label != 0 {
		st.SetLabel(label)
	}
	return st, nil
}

func (p *Parser) parseCoreStmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case IDENT:
		return p.parseAssign()

	case IF:
		return p.parseIf()

	case DO:
		return p.parseDo()

	case CALL:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		st := &CallStmt{Name: name.Text}
		st.pos = pos
		return st, p.eol()

	case GOTO:
		p.next()
		t, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n <= 0 {
			return nil, p.errorf(t.Pos, "invalid goto target %q", t.Text)
		}
		st := &GotoStmt{Target: n}
		st.pos = pos
		return st, p.eol()

	case CONTINUE:
		p.next()
		st := &ContinueStmt{}
		st.pos = pos
		return st, p.eol()

	case RETURN:
		p.next()
		st := &ReturnStmt{}
		st.pos = pos
		return st, p.eol()

	case STOP:
		p.next()
		st := &StopStmt{}
		st.pos = pos
		return st, p.eol()

	case PRINT:
		p.next()
		st := &PrintStmt{}
		st.pos = pos
		// Accept Fortran's "print *," prefix.
		if p.tok.Kind == STAR {
			p.next()
			if p.tok.Kind == COMMA {
				p.next()
			}
		}
		for p.tok.Kind != NEWLINE && p.tok.Kind != SEMI && p.tok.Kind != EOF {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, e)
			if p.tok.Kind != COMMA {
				break
			}
			p.next()
		}
		return st, p.eol()
	}
	return nil, p.errorf(pos, "expected statement, found %s", p.tok)
}

func (p *Parser) parseAssign() (Stmt, error) {
	pos := p.tok.Pos
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *Ident, *ArrayRef:
	default:
		return nil, p.errorf(pos, "invalid assignment target")
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st := &AssignStmt{Lhs: lhs, Rhs: rhs}
	st.pos = pos
	return st, p.eol()
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.tok.Pos
	p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}

	st := &IfStmt{Cond: cond}
	st.pos = pos

	if p.tok.Kind != THEN {
		// One-line logical IF: "if (cond) stmt".
		body, err := p.parseCoreStmt()
		if err != nil {
			return nil, err
		}
		st.Then = []Stmt{body}
		return st, nil
	}
	p.next() // then
	if err := p.eol(); err != nil {
		return nil, err
	}
	st.Then, err = p.parseStmts(endIf)
	if err != nil {
		return nil, err
	}

	for {
		switch {
		case p.tok.Kind == ELSEIF, p.tok.Kind == ELSE && p.nxt.Kind == IF:
			armPos := p.tok.Pos
			if p.tok.Kind == ELSEIF {
				p.next()
			} else {
				p.next() // else
				p.next() // if
			}
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			if _, err := p.expect(THEN); err != nil {
				return nil, err
			}
			if err := p.eol(); err != nil {
				return nil, err
			}
			body, err := p.parseStmts(endIf)
			if err != nil {
				return nil, err
			}
			st.Elifs = append(st.Elifs, ElifArm{Pos: armPos, Cond: c, Body: body})

		case p.tok.Kind == ELSE:
			p.next()
			if err := p.eol(); err != nil {
				return nil, err
			}
			st.Else, err = p.parseStmts(endIf)
			if err != nil {
				return nil, err
			}
			return st, p.consumeEndIf()

		default:
			return st, p.consumeEndIf()
		}
	}
}

func (p *Parser) consumeEndIf() error {
	switch p.tok.Kind {
	case ENDIF:
		p.next()
	case END:
		p.next()
		if _, err := p.expect(IF); err != nil {
			return err
		}
	default:
		return p.errorf(p.tok.Pos, "expected 'end if', found %s", p.tok)
	}
	return p.eol()
}

func (p *Parser) consumeEndDo() error {
	switch p.tok.Kind {
	case ENDDO:
		p.next()
	case END:
		p.next()
		if _, err := p.expect(DO); err != nil {
			return err
		}
	default:
		return p.errorf(p.tok.Pos, "expected 'end do', found %s", p.tok)
	}
	return p.eol()
}

func (p *Parser) parseDo() (Stmt, error) {
	pos := p.tok.Pos
	p.next() // do

	if p.tok.Kind == WHILE {
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if err := p.eol(); err != nil {
			return nil, err
		}
		body, err := p.parseStmts(endDo)
		if err != nil {
			return nil, err
		}
		st := &WhileStmt{Cond: cond, Body: body}
		st.pos = pos
		return st, p.consumeEndDo()
	}

	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	iv := &Ident{NamePos: name.Pos, Name: name.Text}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.tok.Kind == COMMA {
		p.next()
		step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts(endDo)
	if err != nil {
		return nil, err
	}
	st := &DoStmt{Var: iv, Lo: lo, Hi: hi, Step: step, Body: body}
	st.pos = pos
	return st, p.consumeEndDo()
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

// parseExpr parses an expression: or-level.
func (p *Parser) parseExpr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == OR {
		p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: OpOr, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	x, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == AND {
		p.next()
		y, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: OpAnd, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.tok.Kind == NOT {
		pos := p.tok.Pos
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{OpPos: pos, Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[Kind]Op{
	EQ: OpEq, NE: OpNe, LT: OpLt, LE: OpLe, GT: OpGt, GE: OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	x, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.tok.Kind]; ok {
		p.next()
		y, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	x, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == PLUS || p.tok.Kind == MINUS {
		op := OpAdd
		if p.tok.Kind == MINUS {
			op = OpSub
		}
		p.next()
		y, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == STAR || p.tok.Kind == SLASH {
		op := OpMul
		if p.tok.Kind == SLASH {
			op = OpDiv
		}
		p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.tok.Kind {
	case MINUS:
		pos := p.tok.Pos
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{OpPos: pos, Op: OpNeg, X: x}, nil
	case PLUS:
		p.next()
		return p.parseUnary()
	}
	return p.parsePower()
}

func (p *Parser) parsePower() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == POW {
		p.next()
		// ** is right-associative.
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpPow, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case INT:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf(pos, "invalid integer literal %q", p.tok.Text)
		}
		p.next()
		return &IntLit{ValuePos: pos, Value: v}, nil

	case REAL:
		v, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errorf(pos, "invalid real literal %q", p.tok.Text)
		}
		text := p.tok.Text
		p.next()
		return &RealLit{ValuePos: pos, Value: v, Text: text}, nil

	case TRUE:
		p.next()
		return &BoolLit{ValuePos: pos, Value: true}, nil

	case FALSE:
		p.next()
		return &BoolLit{ValuePos: pos, Value: false}, nil

	case STRING:
		s := p.tok.Text
		p.next()
		return &StrLit{ValuePos: pos, Value: s}, nil

	case IDENT:
		name := p.tok.Text
		p.next()
		if p.tok.Kind != LPAREN {
			return &Ident{NamePos: pos, Name: name}, nil
		}
		p.next()
		ref := &ArrayRef{NamePos: pos, Name: name}
		if p.tok.Kind == RPAREN { // zero-arg call is not allowed
			return nil, p.errorf(p.tok.Pos, "empty subscript list for %q", name)
		}
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ref.Args = append(ref.Args, arg)
			if p.tok.Kind != COMMA {
				break
			}
			p.next()
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return ref, nil

	case REALKW:
		// The type conversion intrinsic real(x); "real" is otherwise a
		// declaration keyword.
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &ArrayRef{NamePos: pos, Name: "real", Args: []Expr{arg}}, nil

	case LPAREN:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf(pos, "expected expression, found %s", p.tok)
}
