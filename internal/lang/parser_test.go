package lang

import (
	"strings"
	"testing"
)

const figure1a = `
program fig1a
  integer n, m, k, i, j, p
  integer link(100, 100), cond(100, 100)
  real x(100), y(100), z(100, 100)
  do k = 1, n
    p = 0
    i = link(1, k)
    do while (i != 0)
      p = p + 1
      x(p) = y(i)             ! (1)
      i = link(i, k)
      if (cond(k, i) != 0) then
        if (p >= 1) then
          x(p) = y(i)         ! (2)
        end if
      end if
    end do
    do j = 1, p
      z(k, j) = x(j)          ! (3)
    end do
  end do
end
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return p
}

func TestParseFigure1a(t *testing.T) {
	p := mustParse(t, figure1a)
	if p.Main == nil || p.Main.Name != "fig1a" {
		t.Fatalf("main unit missing: %+v", p)
	}
	if len(p.Main.Decls) != 11 {
		t.Errorf("got %d decls, want 11", len(p.Main.Decls))
	}
	if len(p.Main.Body) != 1 {
		t.Fatalf("got %d top statements, want 1 (the do k loop)", len(p.Main.Body))
	}
	dok, ok := p.Main.Body[0].(*DoStmt)
	if !ok {
		t.Fatalf("top statement is %T, want *DoStmt", p.Main.Body[0])
	}
	if dok.Var.Name != "k" {
		t.Errorf("loop var %q, want k", dok.Var.Name)
	}
	// body: p=0, i=link(1,k), while, do j
	if len(dok.Body) != 4 {
		t.Fatalf("do k body has %d statements, want 4", len(dok.Body))
	}
	w, ok := dok.Body[2].(*WhileStmt)
	if !ok {
		t.Fatalf("expected while at index 2, got %T", dok.Body[2])
	}
	if len(w.Body) != 4 {
		t.Errorf("while body has %d statements, want 4", len(w.Body))
	}
}

func TestParseSubroutinesAndCalls(t *testing.T) {
	src := `
program main
  integer n
  n = 3
  call setup
  call work
end

subroutine setup
  integer i
  i = 1
end

subroutine work
  return
end
`
	p := mustParse(t, src)
	if len(p.Subs) != 2 {
		t.Fatalf("got %d subroutines, want 2", len(p.Subs))
	}
	if p.Unit("setup") == nil || p.Unit("work") == nil || p.Unit("main") == nil {
		t.Error("Unit lookup failed")
	}
	if p.Unit("nosuch") != nil {
		t.Error("Unit lookup for missing unit should be nil")
	}
	cs, ok := p.Main.Body[1].(*CallStmt)
	if !ok || cs.Name != "setup" {
		t.Errorf("expected call setup, got %v", p.Main.Body[1])
	}
}

func TestParseGotoAndLabels(t *testing.T) {
	src := `
program loopy
  integer i, n
  i = 0
10 continue
  i = i + 1
  if (i < n) goto 10
end
`
	p := mustParse(t, src)
	body := p.Main.Body
	if body[1].Label() != 10 {
		t.Errorf("label = %d, want 10", body[1].Label())
	}
	ifs, ok := body[3].(*IfStmt)
	if !ok {
		t.Fatalf("expected one-line if, got %T", body[3])
	}
	g, ok := ifs.Then[0].(*GotoStmt)
	if !ok || g.Target != 10 {
		t.Errorf("expected goto 10, got %v", ifs.Then[0])
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
program p
  integer a, b
  if (a > 0) then
    b = 1
  else if (a < 0) then
    b = 2
  elseif (a == 0) then
    b = 3
  else
    b = 4
  end if
end
`
	p := mustParse(t, src)
	ifs := p.Main.Body[0].(*IfStmt)
	if len(ifs.Elifs) != 2 {
		t.Fatalf("got %d elif arms, want 2", len(ifs.Elifs))
	}
	if ifs.Else == nil || len(ifs.Else) != 1 {
		t.Error("else arm missing")
	}
}

func TestParseDoStep(t *testing.T) {
	src := "program p\n integer i, n\n do i = n, 1, -1\n continue\n end do\nend\n"
	p := mustParse(t, src)
	d := p.Main.Body[0].(*DoStmt)
	u, ok := d.Step.(*Unary)
	if !ok || u.Op != OpNeg {
		t.Errorf("step = %v, want -1", FormatExpr(d.Step))
	}
}

func TestParseDimBounds(t *testing.T) {
	src := "program p\n real x(0:10, 5)\nend\n"
	p := mustParse(t, src)
	d := p.Main.Decls[0]
	if len(d.Dims) != 2 {
		t.Fatalf("dims = %d, want 2", len(d.Dims))
	}
	if d.Dims[0].Lo == nil {
		t.Error("first dim lower bound missing")
	}
	if d.Dims[1].Lo != nil {
		t.Error("second dim lower bound should default")
	}
}

func TestParsePrecedence(t *testing.T) {
	src := "program p\n integer a, b, c, d\n a = b + c*d**2\nend\n"
	p := mustParse(t, src)
	as := p.Main.Body[0].(*AssignStmt)
	got := FormatExpr(as.Rhs)
	if got != "b + c * d**2" {
		t.Errorf("got %q", got)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	src := "program p\n integer a, b\n logical q\n if (a < b and not (a == 0) or b > 1) then\n q = true\n end if\nend\n"
	p := mustParse(t, src)
	ifs := p.Main.Body[0].(*IfStmt)
	top, ok := ifs.Cond.(*Binary)
	if !ok || top.Op != OpOr {
		t.Fatalf("top op = %v, want or", ifs.Cond)
	}
	l, ok := top.X.(*Binary)
	if !ok || l.Op != OpAnd {
		t.Fatalf("left op want and, got %v", FormatExpr(top.X))
	}
}

func TestParseParam(t *testing.T) {
	src := "program p\n param n = 100\n real x(n)\n integer i\n do i = 1, n\n x(i) = 0.0\n end do\nend\n"
	p := mustParse(t, src)
	if len(p.Main.Params) != 1 || p.Main.Params[0].Name != "n" {
		t.Fatalf("params: %+v", p.Main.Params)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"program\nend\n",
		"program p\n x = \nend\n",
		"program p\n do i = 1\n end do\nend\n",
		"program p\n if (x) then\nend\n", // unterminated if at EOF inside
		"program p\n 0 continue\nend\n",  // invalid label
		"program p\n goto x\nend\n",
		"program p\n x(1) = 2\n", // missing end
		"program p\n f() = 1\nend\n",
		"program p\n 1 + 2 = 3\nend\n",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	p := mustParse(t, figure1a)
	text := Format(p)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of formatted output failed: %v\n%s", err, text)
	}
	text2 := Format(p2)
	if text != text2 {
		t.Errorf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}

func TestCloneProgramIndependence(t *testing.T) {
	p := mustParse(t, figure1a)
	c := CloneProgram(p)
	// Mutate the clone; original must be untouched.
	c.Main.Body[0].(*DoStmt).Var.Name = "zz"
	if p.Main.Body[0].(*DoStmt).Var.Name != "k" {
		t.Error("clone shares structure with original")
	}
	if Format(c) == Format(p) {
		t.Error("mutated clone still formats identically")
	}
}

func TestWalkStmtsOrder(t *testing.T) {
	p := mustParse(t, figure1a)
	var seq []string
	WalkStmts(p.Main.Body, func(s Stmt) bool {
		switch s := s.(type) {
		case *DoStmt:
			seq = append(seq, "do "+s.Var.Name)
		case *WhileStmt:
			seq = append(seq, "while")
		case *AssignStmt:
			seq = append(seq, "assign "+FormatExpr(s.Lhs))
		case *IfStmt:
			seq = append(seq, "if")
		}
		return true
	})
	joined := strings.Join(seq, ";")
	if !strings.HasPrefix(joined, "do k;assign p;assign i;while;assign p;assign x(p)") {
		t.Errorf("unexpected walk order: %s", joined)
	}
}

func TestMapExprRewrite(t *testing.T) {
	p := mustParse(t, "program p\n integer i, n\n real x(10)\n x(i+1) = x(i) + 1.0\nend\n")
	as := p.Main.Body[0].(*AssignStmt)
	// Rename i -> j everywhere.
	rewrite := func(e Expr) Expr {
		if id, ok := e.(*Ident); ok && id.Name == "i" {
			return &Ident{NamePos: id.NamePos, Name: "j"}
		}
		return e
	}
	MapStmtExprs(as, rewrite)
	if got := FormatStmt(as); got != "x(j + 1) = x(j) + 1.0" {
		t.Errorf("got %q", got)
	}
}

func TestFormatOneLineIf(t *testing.T) {
	src := "program p\n integer i\n if (i > 0) i = 0\nend\n"
	p := mustParse(t, src)
	got := FormatStmt(p.Main.Body[0])
	if got != "if (i > 0) i = 0" {
		t.Errorf("got %q", got)
	}
}
