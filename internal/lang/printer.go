package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatExpr renders an expression as F-lite source text.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

// precedence levels for parenthesisation when printing
func opPrec(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpNot:
		return 3
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv:
		return 6
	case OpNeg:
		return 7
	case OpPow:
		return 8
	}
	return 9
}

func writeExpr(sb *strings.Builder, e Expr, parentPrec int) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(sb, "%d", e.Value)
	case *RealLit:
		if e.Text != "" {
			sb.WriteString(e.Text)
		} else {
			sb.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
			if !strings.ContainsAny(sb.String(), ".eE") {
				sb.WriteString(".0")
			}
		}
	case *BoolLit:
		if e.Value {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *StrLit:
		fmt.Fprintf(sb, "%q", e.Value)
	case *Ident:
		sb.WriteString(e.Name)
	case *ArrayRef:
		sb.WriteString(e.Name)
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *Unary:
		prec := opPrec(e.Op)
		if prec < parentPrec {
			sb.WriteByte('(')
		}
		if e.Op == OpNot {
			sb.WriteString("not ")
		} else {
			sb.WriteByte('-')
		}
		writeExpr(sb, e.X, prec+1)
		if prec < parentPrec {
			sb.WriteByte(')')
		}
	case *Binary:
		prec := opPrec(e.Op)
		if prec < parentPrec {
			sb.WriteByte('(')
		}
		writeExpr(sb, e.X, prec)
		if e.Op == OpAnd || e.Op == OpOr {
			fmt.Fprintf(sb, " %s ", e.Op)
		} else if e.Op == OpPow {
			sb.WriteString("**")
		} else {
			fmt.Fprintf(sb, " %s ", e.Op)
		}
		// Right operand of -, / needs tighter binding.
		rp := prec
		if e.Op == OpSub || e.Op == OpDiv {
			rp = prec + 1
		}
		writeExpr(sb, e.Y, rp)
		if prec < parentPrec {
			sb.WriteByte(')')
		}
	default:
		fmt.Fprintf(sb, "<?expr %T>", e)
	}
}

// Format renders a whole program as F-lite source text.
func Format(p *Program) string {
	var sb strings.Builder
	for i, u := range p.Units() {
		if i > 0 {
			sb.WriteByte('\n')
		}
		FormatUnit(&sb, u)
	}
	return sb.String()
}

// FormatUnit renders one program unit into sb.
func FormatUnit(sb *strings.Builder, u *Unit) {
	if u.IsMain {
		fmt.Fprintf(sb, "program %s\n", u.Name)
	} else {
		fmt.Fprintf(sb, "subroutine %s\n", u.Name)
	}
	for _, pd := range u.Params {
		fmt.Fprintf(sb, "  param %s = %s\n", pd.Name, FormatExpr(pd.Value))
	}
	for _, d := range u.Decls {
		fmt.Fprintf(sb, "  %s %s", d.Type, d.Name)
		if d.IsArray() {
			sb.WriteByte('(')
			for i, b := range d.Dims {
				if i > 0 {
					sb.WriteString(", ")
				}
				if b.Lo != nil {
					fmt.Fprintf(sb, "%s:", FormatExpr(b.Lo))
				}
				sb.WriteString(FormatExpr(b.Hi))
			}
			sb.WriteByte(')')
		}
		sb.WriteByte('\n')
	}
	writeStmts(sb, u.Body, 1)
	sb.WriteString("end\n")
}

// FormatStmt renders a single statement (with nested bodies) as source text.
func FormatStmt(s Stmt) string {
	var sb strings.Builder
	writeStmt(&sb, s, 0)
	return strings.TrimRight(sb.String(), "\n")
}

func writeStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		writeStmt(sb, s, depth)
	}
}

func indent(sb *strings.Builder, depth int, label int) {
	if label != 0 {
		fmt.Fprintf(sb, "%-4d", label)
		for i := 1; i < depth; i++ {
			sb.WriteString("  ")
		}
		return
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth, s.Label())
	switch s := s.(type) {
	case *AssignStmt:
		fmt.Fprintf(sb, "%s = %s\n", FormatExpr(s.Lhs), FormatExpr(s.Rhs))
	case *IfStmt:
		if len(s.Elifs) == 0 && s.Else == nil && len(s.Then) == 1 && isSimple(s.Then[0]) {
			fmt.Fprintf(sb, "if (%s) ", FormatExpr(s.Cond))
			var inner strings.Builder
			writeStmt(&inner, s.Then[0], 0)
			sb.WriteString(inner.String())
			return
		}
		fmt.Fprintf(sb, "if (%s) then\n", FormatExpr(s.Cond))
		writeStmts(sb, s.Then, depth+1)
		for _, arm := range s.Elifs {
			indent(sb, depth, 0)
			fmt.Fprintf(sb, "else if (%s) then\n", FormatExpr(arm.Cond))
			writeStmts(sb, arm.Body, depth+1)
		}
		if s.Else != nil {
			indent(sb, depth, 0)
			sb.WriteString("else\n")
			writeStmts(sb, s.Else, depth+1)
		}
		indent(sb, depth, 0)
		sb.WriteString("end if\n")
	case *DoStmt:
		if s.Parallel {
			sb.WriteString("!parallel ")
			if len(s.Private) > 0 {
				fmt.Fprintf(sb, "private(%s) ", strings.Join(s.Private, ", "))
			}
			sb.WriteByte('\n')
			indent(sb, depth, 0)
		}
		fmt.Fprintf(sb, "do %s = %s, %s", s.Var.Name, FormatExpr(s.Lo), FormatExpr(s.Hi))
		if s.Step != nil {
			fmt.Fprintf(sb, ", %s", FormatExpr(s.Step))
		}
		sb.WriteByte('\n')
		writeStmts(sb, s.Body, depth+1)
		indent(sb, depth, 0)
		sb.WriteString("end do\n")
	case *WhileStmt:
		fmt.Fprintf(sb, "do while (%s)\n", FormatExpr(s.Cond))
		writeStmts(sb, s.Body, depth+1)
		indent(sb, depth, 0)
		sb.WriteString("end do\n")
	case *CallStmt:
		fmt.Fprintf(sb, "call %s\n", s.Name)
	case *GotoStmt:
		fmt.Fprintf(sb, "goto %d\n", s.Target)
	case *ContinueStmt:
		sb.WriteString("continue\n")
	case *ReturnStmt:
		sb.WriteString("return\n")
	case *StopStmt:
		sb.WriteString("stop\n")
	case *PrintStmt:
		sb.WriteString("print ")
		for i, a := range s.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(a))
		}
		sb.WriteByte('\n')
	default:
		fmt.Fprintf(sb, "<?stmt %T>\n", s)
	}
}

func isSimple(s Stmt) bool {
	switch s.(type) {
	case *AssignStmt, *CallStmt, *GotoStmt, *ContinueStmt, *ReturnStmt, *StopStmt, *PrintStmt:
		return s.Label() == 0
	}
	return false
}
