package lang

import (
	"os"
	"path/filepath"
	"testing"
)

// roundTripSources: the shipped corpus plus crafted programs covering the
// statement kinds whose CFG nodes historically dropped position info
// (elif arms, goto-formed loops, while headers).
func roundTripSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{
		"branchy": `program p
  integer a, m
  m = 2
  if (m == 1) then
    a = 1
  else if (m == 2) then
    a = 2
  else if (m == 3) then
    a = 3
  else
    a = 4
  end if
  do while (a > 0)
    a = a - 1
  end do
  goto 10
  a = 99
10 continue
  print "a", a
end
`,
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "corpus", "*.fl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(b)
	}
	return srcs
}

// TestFormatRoundTripStable re-parses the printer's output and checks the
// second print is byte-identical: the printer loses nothing the parser
// needs, so a format/parse cycle is a fixed point.
func TestFormatRoundTripStable(t *testing.T) {
	for name, src := range roundTripSources(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			p1, err := Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			f1 := Format(p1)
			p2, err := Parse(f1)
			if err != nil {
				t.Fatalf("reparse of formatted output: %v\n%s", err, f1)
			}
			f2 := Format(p2)
			if f1 != f2 {
				t.Errorf("format not a fixed point:\n--- first ---\n%s--- second ---\n%s", f1, f2)
			}
		})
	}
}

// TestReparsePositionsValid walks every statement of the reparsed program
// and requires a real source position — including the ELSEIF arms, whose
// positions back the CFG's per-arm condition nodes (diagnostic spans
// anchor there).
func TestReparsePositionsValid(t *testing.T) {
	for name, src := range roundTripSources(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			p1, err := Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			p2, err := Parse(Format(p1))
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			for _, u := range p2.Units() {
				WalkStmts(u.Body, func(s Stmt) bool {
					if pos := s.Pos(); pos.Line <= 0 || pos.Col <= 0 {
						t.Errorf("%T at %v: missing position after reparse", s, pos)
					}
					if ifs, ok := s.(*IfStmt); ok {
						for i, arm := range ifs.Elifs {
							if arm.Pos.Line <= 0 || arm.Pos.Col <= 0 {
								t.Errorf("elif arm %d of IF at %v: missing position", i, ifs.Pos())
							}
						}
					}
					return true
				})
			}
		})
	}
}

// TestSetPosMovesAnchors covers the SetPos hook passes use when they
// synthesize or move statements: the new anchor must stick.
func TestSetPosMovesAnchors(t *testing.T) {
	p, err := Parse("program p\n  integer a\n  a = 1\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	s := p.Main.Body[0]
	want := Pos{Line: 42, Col: 7}
	s.SetPos(want)
	if got := s.Pos(); got != want {
		t.Errorf("SetPos: got %v, want %v", got, want)
	}
}
