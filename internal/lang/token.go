// Package lang implements the F-lite front end: a small Fortran-flavoured
// language with DO loops, WHILE loops, IF statements, GOTO, and subroutines
// that communicate through program-level (global) variables.
//
// F-lite deliberately reproduces the language model assumed by Lin & Padua,
// "Compiler Analysis of Irregular Memory Accesses" (PLDI 2000): the analyses
// in that paper operate on DO loops, statement-level control-flow graphs and
// array subscript expressions, and assume that procedures exchange values
// through global variables rather than parameters (§3.2.1 of the paper).
package lang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds follow the operator and literal kinds.
const (
	EOF Kind = iota
	NEWLINE
	IDENT  // x, offset, iblen
	INT    // 42
	REAL   // 3.14, 1e-3
	STRING // "text"

	// Operators and delimiters.
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	POW    // **
	ASSIGN // =
	EQ     // ==
	NE     // !=
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=
	LPAREN // (
	RPAREN // )
	COMMA  // ,
	COLON  // :
	SEMI   // ;

	// Keywords.
	kwBegin
	PROGRAM
	SUBROUTINE
	END
	INTEGER
	REALKW
	LOGICAL
	PARAM
	DO
	WHILE
	ENDDO
	IF
	THEN
	ELSE
	ELSEIF
	ENDIF
	CALL
	GOTO
	CONTINUE
	RETURN
	STOP
	PRINT
	AND
	OR
	NOT
	TRUE
	FALSE
	kwEnd
)

var kindNames = map[Kind]string{
	EOF:        "end of file",
	NEWLINE:    "end of line",
	IDENT:      "identifier",
	INT:        "integer literal",
	REAL:       "real literal",
	STRING:     "string literal",
	PLUS:       "+",
	MINUS:      "-",
	STAR:       "*",
	SLASH:      "/",
	POW:        "**",
	ASSIGN:     "=",
	EQ:         "==",
	NE:         "!=",
	LT:         "<",
	LE:         "<=",
	GT:         ">",
	GE:         ">=",
	LPAREN:     "(",
	RPAREN:     ")",
	COMMA:      ",",
	COLON:      ":",
	SEMI:       ";",
	PROGRAM:    "program",
	SUBROUTINE: "subroutine",
	END:        "end",
	INTEGER:    "integer",
	REALKW:     "real",
	LOGICAL:    "logical",
	PARAM:      "param",
	DO:         "do",
	WHILE:      "while",
	ENDDO:      "enddo",
	IF:         "if",
	THEN:       "then",
	ELSE:       "else",
	ELSEIF:     "elseif",
	ENDIF:      "endif",
	CALL:       "call",
	GOTO:       "goto",
	CONTINUE:   "continue",
	RETURN:     "return",
	STOP:       "stop",
	PRINT:      "print",
	AND:        "and",
	OR:         "or",
	NOT:        "not",
	TRUE:       "true",
	FALSE:      "false",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"program":    PROGRAM,
	"subroutine": SUBROUTINE,
	"end":        END,
	"integer":    INTEGER,
	"real":       REALKW,
	"logical":    LOGICAL,
	"param":      PARAM,
	"do":         DO,
	"while":      WHILE,
	"enddo":      ENDDO,
	"if":         IF,
	"then":       THEN,
	"else":       ELSE,
	"elseif":     ELSEIF,
	"endif":      ENDIF,
	"call":       CALL,
	"goto":       GOTO,
	"continue":   CONTINUE,
	"return":     RETURN,
	"stop":       STOP,
	"print":      PRINT,
	"and":        AND,
	"or":         OR,
	"not":        NOT,
	"true":       TRUE,
	"false":      FALSE,
}

// LookupKeyword returns the keyword kind for ident, or IDENT if ident is not
// a keyword. F-lite keywords are case-insensitive like Fortran's; the lexer
// lower-cases identifiers before calling this.
func LookupKeyword(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a position in the source text. Line and Col are 1-based; a zero Pos
// means "no position".
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is one lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // literal text for IDENT, INT, REAL, STRING
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, REAL:
		return t.Text
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// IsKeyword reports whether the token is a keyword.
func (t Token) IsKeyword() bool { return t.Kind > kwBegin && t.Kind < kwEnd }
