package lang

// WalkExpr calls f for every node in the expression tree rooted at e, in
// preorder. If f returns false for a node, its children are skipped.
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *ArrayRef:
		for _, a := range e.Args {
			WalkExpr(a, f)
		}
	case *Unary:
		WalkExpr(e.X, f)
	case *Binary:
		WalkExpr(e.X, f)
		WalkExpr(e.Y, f)
	}
}

// WalkStmts calls f on every statement in stmts and, recursively, in nested
// bodies, in source order. If f returns false for a statement, its nested
// bodies are skipped.
func WalkStmts(stmts []Stmt, f func(Stmt) bool) {
	for _, s := range stmts {
		walkStmt(s, f)
	}
}

func walkStmt(s Stmt, f func(Stmt) bool) {
	if !f(s) {
		return
	}
	switch s := s.(type) {
	case *IfStmt:
		WalkStmts(s.Then, f)
		for _, arm := range s.Elifs {
			WalkStmts(arm.Body, f)
		}
		WalkStmts(s.Else, f)
	case *DoStmt:
		WalkStmts(s.Body, f)
	case *WhileStmt:
		WalkStmts(s.Body, f)
	}
}

// StmtExprs calls f for every top-level expression appearing in s itself
// (not in nested statements): assignment sides, conditions, loop bounds and
// print arguments.
func StmtExprs(s Stmt, f func(Expr)) {
	switch s := s.(type) {
	case *AssignStmt:
		f(s.Lhs)
		f(s.Rhs)
	case *IfStmt:
		f(s.Cond)
		for i := range s.Elifs {
			f(s.Elifs[i].Cond)
		}
	case *DoStmt:
		f(s.Lo)
		f(s.Hi)
		if s.Step != nil {
			f(s.Step)
		}
	case *WhileStmt:
		f(s.Cond)
	case *PrintStmt:
		for _, a := range s.Args {
			f(a)
		}
	}
}

// MapExpr rewrites an expression bottom-up: children are rewritten first,
// then f is applied to the (possibly reconstructed) node. f must return a
// non-nil expression. Nodes are copied only when a child changed, so shared
// subtrees without rewrites stay shared.
func MapExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch ex := e.(type) {
	case *ArrayRef:
		changed := false
		args := ex.Args
		for i, a := range ex.Args {
			na := MapExpr(a, f)
			if na != a {
				if !changed {
					args = append([]Expr(nil), ex.Args...)
					changed = true
				}
				args[i] = na
			}
		}
		if changed {
			ne := *ex
			ne.Args = args
			return f(&ne)
		}
	case *Unary:
		if nx := MapExpr(ex.X, f); nx != ex.X {
			ne := *ex
			ne.X = nx
			return f(&ne)
		}
	case *Binary:
		nx, ny := MapExpr(ex.X, f), MapExpr(ex.Y, f)
		if nx != ex.X || ny != ex.Y {
			ne := *ex
			ne.X, ne.Y = nx, ny
			return f(&ne)
		}
	}
	return f(e)
}

// MapStmtExprs rewrites every top-level expression of s in place using
// MapExpr with f.
func MapStmtExprs(s Stmt, f func(Expr) Expr) {
	switch s := s.(type) {
	case *AssignStmt:
		s.Lhs = MapExpr(s.Lhs, f)
		s.Rhs = MapExpr(s.Rhs, f)
	case *IfStmt:
		s.Cond = MapExpr(s.Cond, f)
		for i := range s.Elifs {
			s.Elifs[i].Cond = MapExpr(s.Elifs[i].Cond, f)
		}
	case *DoStmt:
		s.Lo = MapExpr(s.Lo, f)
		s.Hi = MapExpr(s.Hi, f)
		if s.Step != nil {
			s.Step = MapExpr(s.Step, f)
		}
	case *WhileStmt:
		s.Cond = MapExpr(s.Cond, f)
	case *PrintStmt:
		for i := range s.Args {
			s.Args[i] = MapExpr(s.Args[i], f)
		}
	}
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *IntLit:
		c := *e
		return &c
	case *RealLit:
		c := *e
		return &c
	case *BoolLit:
		c := *e
		return &c
	case *StrLit:
		c := *e
		return &c
	case *Ident:
		c := *e
		return &c
	case *ArrayRef:
		c := *e
		c.Args = make([]Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = CloneExpr(a)
		}
		return &c
	case *Unary:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *Binary:
		c := *e
		c.X = CloneExpr(e.X)
		c.Y = CloneExpr(e.Y)
		return &c
	}
	return e
}

// CloneStmts returns a deep copy of a statement list.
func CloneStmts(stmts []Stmt) []Stmt {
	if stmts == nil {
		return nil
	}
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt returns a deep copy of one statement, including nested bodies.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *AssignStmt:
		c := *s
		c.Lhs = CloneExpr(s.Lhs)
		c.Rhs = CloneExpr(s.Rhs)
		return &c
	case *IfStmt:
		c := *s
		c.Cond = CloneExpr(s.Cond)
		c.Then = CloneStmts(s.Then)
		c.Elifs = make([]ElifArm, len(s.Elifs))
		for i, arm := range s.Elifs {
			c.Elifs[i] = ElifArm{Pos: arm.Pos, Cond: CloneExpr(arm.Cond), Body: CloneStmts(arm.Body)}
		}
		c.Else = CloneStmts(s.Else)
		return &c
	case *DoStmt:
		c := *s
		c.Var = CloneExpr(s.Var).(*Ident)
		c.Lo = CloneExpr(s.Lo)
		c.Hi = CloneExpr(s.Hi)
		c.Step = CloneExpr(s.Step)
		c.Body = CloneStmts(s.Body)
		c.Private = append([]string(nil), s.Private...)
		c.Reductions = append([]Reduction(nil), s.Reductions...)
		return &c
	case *WhileStmt:
		c := *s
		c.Cond = CloneExpr(s.Cond)
		c.Body = CloneStmts(s.Body)
		return &c
	case *CallStmt:
		c := *s
		return &c
	case *GotoStmt:
		c := *s
		return &c
	case *ContinueStmt:
		c := *s
		return &c
	case *ReturnStmt:
		c := *s
		return &c
	case *StopStmt:
		c := *s
		return &c
	case *PrintStmt:
		c := *s
		c.Args = make([]Expr, len(s.Args))
		for i, a := range s.Args {
			c.Args[i] = CloneExpr(a)
		}
		return &c
	}
	return s
}

// CloneUnit returns a deep copy of a program unit.
func CloneUnit(u *Unit) *Unit {
	c := *u
	c.Decls = make([]*VarDecl, len(u.Decls))
	for i, d := range u.Decls {
		dc := *d
		dc.Dims = make([]DimBound, len(d.Dims))
		for j, b := range d.Dims {
			dc.Dims[j] = DimBound{Lo: CloneExpr(b.Lo), Hi: CloneExpr(b.Hi)}
		}
		c.Decls[i] = &dc
	}
	c.Params = make([]*ParamDecl, len(u.Params))
	for i, pd := range u.Params {
		pc := *pd
		pc.Value = CloneExpr(pd.Value)
		c.Params[i] = &pc
	}
	c.Body = CloneStmts(u.Body)
	return &c
}

// CloneProgram returns a deep copy of a whole program.
func CloneProgram(p *Program) *Program {
	c := &Program{}
	if p.Main != nil {
		c.Main = CloneUnit(p.Main)
	}
	c.Subs = make([]*Unit, len(p.Subs))
	for i, s := range p.Subs {
		c.Subs[i] = CloneUnit(s)
	}
	return c
}

// CountStmts returns the number of statements in the unit body, including
// statements nested in loops and conditionals. Used by the auto-inlining
// heuristic (§5.1.1 of the paper: inline procedures under fifty lines).
func CountStmts(u *Unit) int {
	n := 0
	WalkStmts(u.Body, func(Stmt) bool { n++; return true })
	return n
}
