package lint

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/expr"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/section"
	"repro/internal/sem"
)

// AuditOptions configures the verdict auditor.
type AuditOptions struct {
	// Ctx cancels the replay cooperatively (nil: background).
	Ctx context.Context
	// Guard is polled between audit stages (nil: no checkpoints).
	Guard *comperr.Guard
	// Rec receives lint.audit.* counters (nil: no telemetry).
	Rec *obs.Recorder
	// MaxSteps bounds the replay execution (0: 100M simulated steps).
	MaxSteps uint64
	// MaxFootprint caps the tracked footprint entries per loop execution;
	// a loop exceeding it is reported unaudited, never guessed (0: 1<<20).
	MaxFootprint int
	// MaxStaticTrips bounds the small-bounds instantiation (0: 12).
	MaxStaticTrips int64
}

// Audit re-derives every parallel/privatizable verdict through an
// independent oracle and reports IRR9xxx diagnostics where the oracle
// disagrees. Two derivation paths, both far simpler than the dependence
// tests they check:
//
//  1. an exhaustive check on small instantiated bounds: loop-variable-only
//     subscripts of unconditional accesses are evaluated for the first few
//     iterations and cross-iteration collisions on shared arrays reported;
//  2. an interpreter replay: the program runs once, serially, with
//     per-iteration read/write footprints collected inside every audited
//     loop — a cross-iteration conflict on a shared variable refutes a
//     parallel verdict, and a privatized variable reading a value it did
//     not write this iteration refutes a privatization verdict.
//
// It also surfaces IRR2003 for loops blocked by an unprovable index-array
// injectivity, attaching the failing query's propagation trace and, when
// the replay observed one, a concrete counterexample witness.
//
// The returned error is non-nil only for cancellation/step-limit aborts of
// the surrounding context (comperr-classified); audit findings are always
// diagnostics, never errors.
func Audit(info *sem.Info, prop *property.Analysis, reports []*parallel.LoopReport, opts AuditOptions) ([]Diag, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 100_000_000
	}
	if opts.MaxFootprint == 0 {
		opts.MaxFootprint = 1 << 20
	}
	if opts.MaxStaticTrips == 0 {
		opts.MaxStaticTrips = 12
	}

	frames := map[*lang.DoStmt]*auditFrame{}
	var audited []*auditFrame
	for _, r := range reports {
		if !r.Parallel {
			continue
		}
		f := newParallelFrame(r)
		frames[r.Loop] = f
		audited = append(audited, f)
	}
	// Serial loops blocked by an array dependence whose subscripts go
	// through index arrays: observed too, to catch a concrete
	// non-injectivity witness for IRR2003.
	type blockedLoop struct {
		report  *parallel.LoopReport
		arrays  map[string][]string // blocked array -> index arrays
		at      lang.Stmt           // a statement referencing the blocked array
		witness *auditFrame
	}
	var blocked []*blockedLoop
	for _, r := range reports {
		if r.Parallel {
			continue
		}
		arrs := blockedArrays(r)
		if len(arrs) == 0 {
			continue
		}
		bl := &blockedLoop{report: r, arrays: map[string][]string{}}
		track := map[string]bool{}
		for _, arr := range arrs {
			ias, at := indexArraysOf(r.Loop, arr)
			if len(ias) == 0 {
				continue
			}
			bl.arrays[arr] = ias
			track[arr] = true
			if bl.at == nil {
				bl.at = at
			}
		}
		if len(bl.arrays) == 0 {
			continue
		}
		bl.witness = newWitnessFrame(r, track)
		frames[r.Loop] = bl.witness
		blocked = append(blocked, bl)
	}

	var diags []Diag

	// Path 1: exhaustive small-bounds instantiation.
	opts.Guard.Check()
	for _, f := range audited {
		if c := staticConflict(info, f.report, opts.MaxStaticTrips); c != nil {
			f.mismatch = c
			f.static = true
		}
	}

	// Path 2: serial replay with footprint collection. The finished
	// interpreter is kept: the recurrence audit reads index-array values
	// back out of it.
	var replayErr error
	var final *interp.Interp
	if len(frames) > 0 {
		opts.Guard.Check()
		final, replayErr = replay(info, frames, opts)
		if replayErr != nil {
			final = nil // partial state: the value oracle must not trust it
			if errors.Is(replayErr, comperr.ErrCanceled) {
				return nil, replayErr
			}
			d := New(CodeAuditIncomplete, lang.Pos{},
				"audit replay stopped early: %v; loops it did not reach are unaudited", replayErr)
			diags = append(diags, d)
		}
	}

	confirmed, mismatched, skipped := 0, 0, 0
	for _, f := range audited {
		switch {
		case f.mismatch != nil:
			mismatched++
			diags = append(diags, f.mismatchDiag())
		case f.privViol != nil:
			mismatched++
			diags = append(diags, f.privDiag())
		case f.over:
			skipped++
			d := New(CodeAuditIncomplete, f.report.Loop.Pos(),
				"audit of loop %s gave up: footprint exceeded %d entries", f.report.Name, opts.MaxFootprint)
			diags = append(diags, d)
		case f.iters == 0:
			// Never reached, or zero-trip on this input: the replay saw no
			// iteration, so there is no evidence either way. Vacuously
			// consistent, but say so only in telemetry — a loop that does
			// not execute is not a finding.
			skipped++
		default:
			confirmed++
		}
	}

	// Recurrence-derived verdicts: re-check every monotonic/injective fact
	// a parallel verdict cites against the loop that fills the array, via
	// the static increment oracle and the replayed values (recaudit.go).
	opts.Guard.Check()
	recDiags, recAudited := auditRecurrence(info, prop, reports, final, opts)
	mismatched += len(recDiags)
	diags = append(diags, recDiags...)

	// IRR2003: replayed injectivity queries for blocked loops, with the
	// propagation trace and any replay witness attached.
	opts.Guard.Check()
	for _, bl := range blocked {
		arrs := make([]string, 0, len(bl.arrays))
		for a := range bl.arrays {
			arrs = append(arrs, a)
		}
		sort.Strings(arrs)
		for _, arr := range arrs {
			for _, ia := range bl.arrays[arr] {
				d, ok := nonInjectiveDiag(prop, bl.report, arr, ia, bl.at, bl.witness)
				if ok {
					diags = append(diags, d)
				}
			}
		}
	}

	if opts.Rec.Enabled() {
		opts.Rec.Count("lint.audit.loops", int64(len(audited)))
		opts.Rec.Count("lint.audit.confirmed", int64(confirmed))
		opts.Rec.Count("lint.audit.mismatch", int64(mismatched))
		opts.Rec.Count("lint.audit.skipped", int64(skipped))
		opts.Rec.Count("lint.audit.recurrence", int64(recAudited))
	}
	Sort(diags)
	return diags, nil
}

// ---------------------------------------------------------------------------
// Replay frames

// akey identifies one storage location: a scalar (elem -1) or one flat
// array element.
type akey struct {
	sym  *sem.Symbol
	elem int64
}

// conflict is one cross-iteration collision.
type conflict struct {
	name       string
	elem       int64 // -1 for scalars
	sym        *sem.Symbol
	iter1, it2 int64
	kind       string // "write/write", "read/write", "write/read"
	static     bool
}

// privEvent is a privatization violation: a claimed-private location read
// a value the current iteration did not write.
type privEvent struct {
	name  string
	elem  int64
	sym   *sem.Symbol
	iter  int64
	wIter int64 // iteration that wrote the value; -1 if never written
}

// auditFrame accumulates the replay footprint of one audited loop.
type auditFrame struct {
	report  *parallel.LoopReport
	exclude map[string]bool // loop var + private + reductions
	private map[string]bool // claimed privatized (subset of exclude)
	// track limits shared-conflict bookkeeping to these arrays (nil:
	// every shared variable) — witness frames watch only the blocked
	// arrays.
	track map[string]bool
	// witnessOnly frames (blocked serial loops) record conflicts as
	// witnesses without implying a verdict mismatch.
	witnessOnly bool

	active   bool
	haveIter bool
	curIter  int64
	iters    int64
	writes   map[akey]int64
	reads    map[akey]int64
	pwrites  map[akey]int64

	executions int
	over       bool
	mismatch   *conflict
	static     bool
	privViol   *privEvent
	// witnesses: first observed conflict per tracked array.
	witnesses map[string]*conflict
}

func newParallelFrame(r *parallel.LoopReport) *auditFrame {
	f := &auditFrame{
		report:  r,
		exclude: map[string]bool{r.Loop.Var.Name: true},
		private: map[string]bool{},
	}
	for _, p := range r.Private {
		f.exclude[p] = true
		f.private[p] = true
	}
	for _, red := range r.Reductions {
		f.exclude[red.Var] = true
	}
	return f
}

func newWitnessFrame(r *parallel.LoopReport, track map[string]bool) *auditFrame {
	return &auditFrame{
		report:      r,
		exclude:     map[string]bool{r.Loop.Var.Name: true},
		private:     map[string]bool{},
		track:       track,
		witnessOnly: true,
		witnesses:   map[string]*conflict{},
	}
}

func (f *auditFrame) reset() {
	f.executions++
	f.haveIter = false
	f.writes = map[akey]int64{}
	f.reads = map[akey]int64{}
	f.pwrites = map[akey]int64{}
}

func (f *auditFrame) done() bool {
	if f.over {
		return true
	}
	if f.witnessOnly {
		return len(f.witnesses) >= len(f.track)
	}
	return f.mismatch != nil && f.privViol != nil
}

// access records one memory access into the frame's footprint and checks
// it against the loop's verdict.
func (f *auditFrame) access(sym *sem.Symbol, elem int64, write bool, cap int) {
	if !f.haveIter || f.done() {
		return
	}
	name := sym.Name
	if f.exclude[name] {
		if !f.private[name] || f.privViol != nil {
			return
		}
		k := akey{sym, elem}
		if write {
			f.pwrites[k] = f.curIter
			f.checkCap(cap)
			return
		}
		w, ok := f.pwrites[k]
		if !ok {
			f.privViol = &privEvent{name: name, elem: elem, sym: sym, iter: f.curIter, wIter: -1}
		} else if w != f.curIter {
			f.privViol = &privEvent{name: name, elem: elem, sym: sym, iter: f.curIter, wIter: w}
		}
		return
	}
	if f.track != nil && (elem < 0 || !f.track[name]) {
		return
	}
	k := akey{sym, elem}
	var c *conflict
	if write {
		if w, ok := f.writes[k]; ok && w != f.curIter {
			c = &conflict{name: name, elem: elem, sym: sym, iter1: w, it2: f.curIter, kind: "write/write"}
		} else if r, ok := f.reads[k]; ok && r != f.curIter {
			c = &conflict{name: name, elem: elem, sym: sym, iter1: r, it2: f.curIter, kind: "read/write"}
		}
		f.writes[k] = f.curIter
	} else {
		if w, ok := f.writes[k]; ok && w != f.curIter {
			c = &conflict{name: name, elem: elem, sym: sym, iter1: w, it2: f.curIter, kind: "write/read"}
		}
		f.reads[k] = f.curIter
	}
	if c != nil {
		if f.witnessOnly {
			if f.witnesses[name] == nil {
				f.witnesses[name] = c
			}
		} else if f.mismatch == nil {
			f.mismatch = c
		}
	}
	f.checkCap(cap)
}

func (f *auditFrame) checkCap(cap int) {
	if len(f.writes)+len(f.reads)+len(f.pwrites) > cap {
		f.over = true
		f.writes, f.reads, f.pwrites = nil, nil, nil
	}
}

func (f *auditFrame) mismatchDiag() Diag {
	c := f.mismatch
	loc := elemString(c.sym, c.elem)
	d := New(CodeAuditParallel, f.report.Loop.Pos(),
		"audit mismatch: loop %s is classified parallel, but iterations %s=%d and %s=%d form a %s conflict on %s",
		f.report.Name, f.report.Loop.Var.Name, c.iter1, f.report.Loop.Var.Name, c.it2, c.kind, loc)
	evidence := "interpreter footprint replay"
	if c.static {
		evidence = "exhaustive small-bounds instantiation"
	}
	d.Related = append(d.Related, Related{Message: "independent oracle: " + evidence})
	d.FixHint = "either the dependence tests or the auditor is unsound for this pattern; do not trust the parallel verdict"
	return d
}

func (f *auditFrame) privDiag() Diag {
	v := f.privViol
	loc := elemString(v.sym, v.elem)
	var msg string
	if v.wIter < 0 {
		msg = fmt.Sprintf("audit mismatch: %s is privatized in loop %s, but iteration %s=%d reads %s before any write of it in the loop",
			v.name, f.report.Name, f.report.Loop.Var.Name, v.iter, loc)
	} else {
		msg = fmt.Sprintf("audit mismatch: %s is privatized in loop %s, but iteration %s=%d reads %s last written by iteration %s=%d",
			v.name, f.report.Name, f.report.Loop.Var.Name, v.iter, loc, f.report.Loop.Var.Name, v.wIter)
	}
	d := New(CodeAuditPrivate, f.report.Loop.Pos(), "%s", msg)
	d.Related = append(d.Related, Related{Message: "independent oracle: interpreter footprint replay (write-before-read per iteration is required for privatization)"})
	return d
}

// elemString renders a storage location: "q" for scalars, "a(3)" or
// "z(2,5)" for array elements (the flat index decomposed over the declared
// dimensions).
func elemString(sym *sem.Symbol, elem int64) string {
	if elem < 0 || sym.Kind != sem.ArraySym {
		return sym.Name
	}
	subs := make([]string, len(sym.Dims))
	for d, dim := range sym.Dims {
		subs[d] = fmt.Sprintf("%d", dim.Lo+elem%dim.Size())
		elem /= dim.Size()
	}
	return sym.Name + "(" + strings.Join(subs, ",") + ")"
}

// ---------------------------------------------------------------------------
// Replay driver

func replay(info *sem.Info, frames map[*lang.DoStmt]*auditFrame, opts AuditOptions) (*interp.Interp, error) {
	loops := map[*lang.DoStmt]bool{}
	for s := range frames {
		loops[s] = true
	}
	var stack []*auditFrame
	ob := &interp.Observer{
		Loops: loops,
		EnterLoop: func(s *lang.DoStmt) {
			f := frames[s]
			f.reset()
			f.active = true
			stack = append(stack, f)
		},
		ExitLoop: func(s *lang.DoStmt) {
			if n := len(stack); n > 0 {
				stack[n-1].active = false
				stack = stack[:n-1]
			}
		},
		IterStart: func(s *lang.DoStmt, v int64) {
			f := frames[s]
			f.haveIter = true
			f.curIter = v
			f.iters++
		},
		Access: func(sym *sem.Symbol, elem int64, write bool) {
			for _, f := range stack {
				f.access(sym, elem, write, opts.MaxFootprint)
			}
		},
	}
	in := interp.New(info, interp.Options{
		Machine:  machine.New(machine.Origin2000, 1),
		MaxSteps: opts.MaxSteps,
		Ctx:      opts.Ctx,
		Observe:  ob,
	})
	return in, in.Run()
}

// ---------------------------------------------------------------------------
// Exhaustive small-bounds instantiation

// staticConflict instantiates the first few iterations of a parallel loop
// and collides the unconditional, loop-variable-only subscripts of its
// body. A collision between different iterations on a shared array refutes
// the parallel verdict with no interpreter in the loop — purely from the
// loop header and the subscript expressions.
func staticConflict(info *sem.Info, r *parallel.LoopReport, maxTrips int64) *conflict {
	sc := info.Scope(r.Unit)
	loop := r.Loop
	lo, okLo := constInt(sc, loop.Lo)
	hi, okHi := constInt(sc, loop.Hi)
	step := int64(1)
	okStep := true
	if loop.Step != nil {
		step, okStep = constInt(sc, loop.Step)
	}
	if !okLo || !okHi || !okStep || step == 0 {
		return nil
	}
	exclude := map[string]bool{loop.Var.Name: true}
	for _, p := range r.Private {
		exclude[p] = true
	}
	for _, red := range r.Reductions {
		exclude[red.Var] = true
	}

	// Unconditional accesses only: the top-level assignments of the body.
	// Guarded accesses may legitimately touch the same element in one
	// iteration only; auditing them statically would cry wolf.
	type sref struct {
		ref   *lang.ArrayRef
		write bool
	}
	var refs []sref
	for _, s := range loop.Body {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			continue
		}
		collect := func(e lang.Expr, write bool) {
			lang.WalkExpr(e, func(x lang.Expr) bool {
				if ar, ok := x.(*lang.ArrayRef); ok && !ar.Intrinsic && !exclude[ar.Name] {
					refs = append(refs, sref{ar, write})
					return false // subscripts handled by evalSub
				}
				return true
			})
		}
		if lhs, ok := as.Lhs.(*lang.ArrayRef); ok && !lhs.Intrinsic && !exclude[lhs.Name] {
			refs = append(refs, sref{lhs, true})
		}
		collect(as.Rhs, false)
	}
	if len(refs) == 0 {
		return nil
	}

	trips := tripCount(lo, hi, step)
	if trips > maxTrips {
		trips = maxTrips
	}
	writesAt := map[string]map[int64]int64{}
	readsAt := map[string]map[int64]int64{}
	record := func(m map[string]map[int64]int64, arr string, elem, iter int64) (int64, bool) {
		at := m[arr]
		if at == nil {
			at = map[int64]int64{}
			m[arr] = at
		}
		if prev, ok := at[elem]; ok && prev != iter {
			return prev, true
		}
		at[elem] = iter
		return 0, false
	}
	for k := int64(0); k < trips; k++ {
		v := lo + k*step
		for _, sr := range refs {
			sym := info.LookupIn(r.Unit, sr.ref.Name)
			if sym == nil || sym.Kind != sem.ArraySym || len(sym.Dims) != len(sr.ref.Args) {
				continue
			}
			elem, ok := flatElem(sc, sym, sr.ref, loop.Var.Name, v)
			if !ok {
				continue
			}
			if sr.write {
				if prev, hit := record(writesAt, sr.ref.Name, elem, v); hit {
					return &conflict{name: sr.ref.Name, elem: elem, sym: sym, iter1: prev, it2: v, kind: "write/write", static: true}
				}
				if at := readsAt[sr.ref.Name]; at != nil {
					if prev, ok := at[elem]; ok && prev != v {
						return &conflict{name: sr.ref.Name, elem: elem, sym: sym, iter1: prev, it2: v, kind: "read/write", static: true}
					}
				}
			} else {
				if at := writesAt[sr.ref.Name]; at != nil {
					if prev, ok := at[elem]; ok && prev != v {
						return &conflict{name: sr.ref.Name, elem: elem, sym: sym, iter1: prev, it2: v, kind: "write/read", static: true}
					}
				}
				record(readsAt, sr.ref.Name, elem, v)
			}
		}
	}
	return nil
}

func tripCount(lo, hi, step int64) int64 {
	if step > 0 {
		if lo > hi {
			return 0
		}
		return (hi-lo)/step + 1
	}
	if lo < hi {
		return 0
	}
	return (lo-hi)/(-step) + 1
}

// flatElem evaluates a reference's subscripts at one loop-variable value,
// returning the flat element index. Fails (and the ref is skipped) when a
// subscript depends on anything but the loop variable, parameters and
// foldable intrinsics, or lands out of bounds (that is IRR3002's finding,
// not the auditor's).
func flatElem(sc *sem.Scope, sym *sem.Symbol, ref *lang.ArrayRef, loopVar string, v int64) (int64, bool) {
	var elem, stride int64 = 0, 1
	for d, arg := range ref.Args {
		sub, ok := evalSub(sc, arg, loopVar, v)
		if !ok {
			return 0, false
		}
		dim := sym.Dims[d]
		if sub < dim.Lo || sub > dim.Hi {
			return 0, false
		}
		elem += (sub - dim.Lo) * stride
		stride *= dim.Size()
	}
	return elem, true
}

// evalSub evaluates an integer expression over {loop var, params, int
// literals} with the foldable intrinsics (mod, abs, min, max, int).
func evalSub(sc *sem.Scope, e lang.Expr, loopVar string, v int64) (int64, bool) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Value, true
	case *lang.Ident:
		if e.Name == loopVar {
			return v, true
		}
		if sc != nil {
			if sym := sc.Lookup(e.Name); sym != nil && sym.Kind == sem.ParamSym {
				return sym.Value, true
			}
		}
	case *lang.Unary:
		if x, ok := evalSub(sc, e.X, loopVar, v); ok && e.Op == lang.OpNeg {
			return -x, true
		}
	case *lang.Binary:
		l, okL := evalSub(sc, e.X, loopVar, v)
		r, okR := evalSub(sc, e.Y, loopVar, v)
		if okL && okR {
			switch e.Op {
			case lang.OpAdd:
				return l + r, true
			case lang.OpSub:
				return l - r, true
			case lang.OpMul:
				return l * r, true
			case lang.OpDiv:
				if r != 0 {
					return l / r, true
				}
			}
		}
	case *lang.ArrayRef:
		if !e.Intrinsic {
			return 0, false
		}
		args := make([]int64, len(e.Args))
		for i, a := range e.Args {
			x, ok := evalSub(sc, a, loopVar, v)
			if !ok {
				return 0, false
			}
			args[i] = x
		}
		switch e.Name {
		case "mod":
			if len(args) == 2 && args[1] != 0 {
				return args[0] % args[1], true
			}
		case "abs":
			if len(args) == 1 {
				if args[0] < 0 {
					return -args[0], true
				}
				return args[0], true
			}
		case "min":
			if len(args) > 0 {
				m := args[0]
				for _, a := range args[1:] {
					if a < m {
						m = a
					}
				}
				return m, true
			}
		case "max":
			if len(args) > 0 {
				m := args[0]
				for _, a := range args[1:] {
					if a > m {
						m = a
					}
				}
				return m, true
			}
		case "int":
			if len(args) == 1 {
				return args[0], true
			}
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// IRR2003: non-injective index arrays with trace and witness

// blockedArrays extracts the arrays named in "carried dependence on array
// X" blockers.
func blockedArrays(r *parallel.LoopReport) []string {
	var out []string
	for _, b := range r.Blockers {
		if name, ok := strings.CutPrefix(b, "carried dependence on array "); ok {
			out = append(out, name)
		}
	}
	return out
}

// indexArraysOf finds the index arrays appearing inside subscripts of arr
// within the loop body, and a statement referencing arr (the query's use
// site).
func indexArraysOf(loop *lang.DoStmt, arr string) ([]string, lang.Stmt) {
	seen := map[string]bool{}
	var names []string
	var at lang.Stmt
	lang.WalkStmts(loop.Body, func(s lang.Stmt) bool {
		lang.StmtExprs(s, func(e lang.Expr) {
			lang.WalkExpr(e, func(x lang.Expr) bool {
				ref, ok := x.(*lang.ArrayRef)
				if !ok || ref.Intrinsic || ref.Name != arr {
					return true
				}
				if at == nil {
					at = s
				}
				for _, a := range ref.Args {
					lang.WalkExpr(a, func(y lang.Expr) bool {
						if ia, ok := y.(*lang.ArrayRef); ok && !ia.Intrinsic && !seen[ia.Name] {
							seen[ia.Name] = true
							names = append(names, ia.Name)
						}
						return true
					})
				}
				return false
			})
		})
		return true
	})
	sort.Strings(names)
	return names, at
}

// nonInjectiveDiag replays the injectivity query for one index array of a
// blocked loop, attaching the propagation trace of the failing query and
// any concrete witness the footprint replay observed.
func nonInjectiveDiag(prop *property.Analysis, r *parallel.LoopReport, arr, ia string, at lang.Stmt, wf *auditFrame) (Diag, bool) {
	if prop == nil || at == nil {
		return Diag{}, false
	}
	// The replay must not perturb the analysis bookkeeping or the memo
	// table's hit counters: save and restore both.
	savedRec, savedStats := prop.Rec, prop.Stats
	rec := obs.NewDebug() // the replay exists to capture per-node steps
	prop.Rec = rec
	in := prop.Interner()
	lo := in.FromAST(r.Loop.Lo)
	hi := in.FromAST(r.Loop.Hi)
	ok := prop.Verify(property.NewInjective(ia), at, section.New(ia, lo, hi))
	prop.Rec, prop.Stats = savedRec, savedStats
	if ok {
		// Injectivity holds; the dependence has another cause.
		return Diag{}, false
	}
	d := New(CodeNonInjective, r.Loop.Pos(),
		"loop %s stays serial: index array %q in subscripts of %q is not provably injective over %s",
		r.Name, ia, arr, expr.NewRange(lo, hi))
	d.FixHint = fmt.Sprintf("make the fill of %s injective (e.g. gather distinct indices), or restructure the %s accesses", ia, arr)
	if wf != nil {
		if w := wf.witnesses[arr]; w != nil {
			d.Related = append(d.Related, Related{Message: fmt.Sprintf(
				"concrete witness from replay: iterations %s=%d and %s=%d form a %s conflict on %s",
				r.Loop.Var.Name, w.iter1, r.Loop.Var.Name, w.it2, w.kind, elemString(w.sym, w.elem))})
		}
	}
	d.Related = append(d.Related, queryTrace(rec)...)
	return d, true
}

// queryTrace compresses the failing query's propagation steps into related
// notes: every killed step, bracketed by the first few propagations.
func queryTrace(rec *obs.Recorder) []Related {
	var out []Related
	kept := 0
	for _, e := range rec.Events() {
		if e.Kind != "query.step" {
			continue
		}
		outcome := e.Get("outcome")
		killed := strings.HasPrefix(outcome, "killed")
		if !killed && kept >= 4 {
			continue
		}
		kept++
		msg := fmt.Sprintf("query trace: %s at %s: %s", e.Get("class"), e.Get("node"), outcome)
		out = append(out, Related{Message: msg})
		if len(out) >= 8 {
			break
		}
	}
	return out
}
