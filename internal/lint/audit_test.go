package lint

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/passes"
	"repro/internal/sem"
)

// buildAudit runs the minimal front half of the pipeline (parse, check,
// reduction recognition, full parallelization) so the auditor sees the
// same reports the real pipeline hands it.
func buildAudit(t *testing.T, src string) (*sem.Info, *parallel.Parallelizer, []*parallel.LoopReport) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	mod := dataflow.ComputeMod(info)
	passes.RecognizeReductions(prog, info, mod)
	pz := parallel.NewWithHCG(info, mod, parallel.Full, cfg.BuildHCG(prog))
	return info, pz, pz.Run()
}

func reportByName(t *testing.T, rs []*parallel.LoopReport, frag string) *parallel.LoopReport {
	t.Helper()
	for _, r := range rs {
		if strings.Contains(r.Name, frag) {
			return r
		}
	}
	t.Fatalf("no report matching %q in %d reports", frag, len(rs))
	return nil
}

func TestAuditConfirmsCleanVerdicts(t *testing.T) {
	// An injective gather: both the fill and the use loop parallelize, and
	// the auditor must agree (replay path for the gather — its subscripts
	// go through an index array, so the static path is ineligible).
	info, pz, reports := buildAudit(t, `program p
  param n = 8
  integer i, idx(n)
  real a(n), b(n)
  do i = 1, n
    idx(i) = i
  end do
  do i = 1, n
    a(idx(i)) = b(idx(i)) + 1.0
  end do
end
`)
	for _, r := range reports {
		if !r.Parallel {
			t.Fatalf("loop %s unexpectedly serial (%v): auditor has nothing to confirm", r.Name, r.Blockers)
		}
	}
	rec := obs.New()
	diags, err := Audit(info, pz.Property(), reports, AuditOptions{Rec: rec})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("clean program audited dirty: %v", diags)
	}
	if got := rec.Counter("lint.audit.confirmed"); got != 2 {
		t.Errorf("confirmed = %d, want 2", got)
	}
	if got := rec.Counter("lint.audit.mismatch"); got != 0 {
		t.Errorf("mismatch = %d, want 0", got)
	}
}

func TestAuditStaticPathCatchesFlippedVerdict(t *testing.T) {
	// a(i+1) = a(i) carries a dependence; forcing the verdict to parallel
	// must be refuted by the small-bounds instantiation alone (affine
	// subscripts, constant bounds).
	info, pz, reports := buildAudit(t, `program p
  param n = 8
  integer i
  real a(n)
  a(1) = 1.0
  do i = 1, n - 1
    a(i + 1) = a(i) * 0.5
  end do
end
`)
	r := reportByName(t, reports, "do_i")
	if r.Parallel {
		t.Fatal("loop should be serial before the flip")
	}
	r.Parallel = true
	r.Blockers = nil
	diags, err := Audit(info, pz.Property(), reports, AuditOptions{})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	got := byCode(diags, CodeAuditParallel)
	if len(got) != 1 {
		t.Fatalf("want 1 IRR9001, got %v", diags)
	}
	d := got[0]
	if d.Severity != Error {
		t.Errorf("severity = %v", d.Severity)
	}
	if d.Span.Start.Line != r.Loop.Pos().Line {
		t.Errorf("diag at %v, loop at %v", d.Span.Start, r.Loop.Pos())
	}
	if !strings.Contains(d.Message, "conflict on a(") {
		t.Errorf("message should name the colliding element: %s", d.Message)
	}
	joined := Render([]Diag{d})
	if !strings.Contains(joined, "exhaustive small-bounds instantiation") {
		t.Errorf("static evidence missing:\n%s", joined)
	}
}

func TestAuditReplayCatchesFlippedVerdict(t *testing.T) {
	// The colliding subscript goes through an index array, so the static
	// path cannot evaluate it; the interpreter replay must catch it.
	info, pz, reports := buildAudit(t, `program p
  param n = 8
  integer i, idx(n)
  real a(n)
  do i = 1, n
    idx(i) = mod(i, 4) + 1
  end do
  do i = 1, n
    a(idx(i)) = a(idx(i)) + 1.0
  end do
end
`)
	var gather *parallel.LoopReport
	for _, r := range reports {
		if !r.Parallel {
			gather = r
		}
	}
	if gather == nil {
		t.Fatal("non-injective gather should be serial before the flip")
	}
	gather.Parallel = true
	gather.Blockers = nil
	diags, err := Audit(info, pz.Property(), reports, AuditOptions{})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	got := byCode(diags, CodeAuditParallel)
	if len(got) != 1 {
		t.Fatalf("want 1 IRR9001, got %v", diags)
	}
	joined := Render(got)
	if !strings.Contains(joined, "interpreter footprint replay") {
		t.Errorf("replay evidence missing:\n%s", joined)
	}
	if !strings.Contains(got[0].Message, "conflict on a(2)") {
		t.Errorf("want the concrete element a(2): %s", got[0].Message)
	}
}

func TestAuditPrivatizationViolation(t *testing.T) {
	// t is read at the top of every iteration and written at the bottom:
	// claiming it private must be refuted (the first iteration reads a
	// value the loop never wrote).
	info, pz, reports := buildAudit(t, `program p
  param n = 8
  integer i
  real a(n), t
  t = 0.5
  do i = 1, n
    a(i) = t
    t = real(i)
  end do
end
`)
	r := reportByName(t, reports, "do_i")
	if r.Parallel {
		t.Fatal("loop should be serial before the flip")
	}
	r.Parallel = true
	r.Blockers = nil
	r.Private = []string{"t"}
	diags, err := Audit(info, pz.Property(), reports, AuditOptions{})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	got := byCode(diags, CodeAuditPrivate)
	if len(got) != 1 {
		t.Fatalf("want 1 IRR9002, got %v", diags)
	}
	if !strings.Contains(got[0].Message, `reads t before any write`) {
		t.Errorf("message: %s", got[0].Message)
	}
}

func TestAuditZeroTripLoopSkipped(t *testing.T) {
	// A loop the replay never iterates yields no evidence: telemetry says
	// skipped, and no diagnostic is emitted.
	info, pz, reports := buildAudit(t, `program p
  integer i
  real a(4)
  do i = 1, 0
    a(i) = 1.0
  end do
end
`)
	r := reportByName(t, reports, "do_i")
	if !r.Parallel {
		t.Fatalf("trivial loop should be parallel: %v", r.Blockers)
	}
	rec := obs.New()
	diags, err := Audit(info, pz.Property(), reports, AuditOptions{Rec: rec})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("zero-trip loop reported: %v", diags)
	}
	if got := rec.Counter("lint.audit.skipped"); got != 1 {
		t.Errorf("skipped = %d, want 1", got)
	}
	if got := rec.Counter("lint.audit.confirmed"); got != 0 {
		t.Errorf("confirmed = %d, want 0", got)
	}
}

func TestAuditNonInjectiveWitness(t *testing.T) {
	// A genuinely serial non-injective gather: the auditor must surface
	// IRR2003 with the failing query's propagation trace and the concrete
	// conflict the replay observed.
	info, pz, reports := buildAudit(t, `program p
  param n = 8
  integer i, idx(n)
  real a(n)
  do i = 1, n
    idx(i) = mod(i, 4) + 1
  end do
  do i = 1, n
    a(idx(i)) = a(idx(i)) + 1.0
  end do
end
`)
	diags, err := Audit(info, pz.Property(), reports, AuditOptions{})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	got := byCode(diags, CodeNonInjective)
	if len(got) != 1 {
		t.Fatalf("want 1 IRR2003, got %v", diags)
	}
	d := got[0]
	if d.Severity != Warning {
		t.Errorf("severity = %v", d.Severity)
	}
	if !strings.Contains(d.Message, `index array "idx"`) {
		t.Errorf("message should name idx: %s", d.Message)
	}
	rendered := Render([]Diag{d})
	if !strings.Contains(rendered, "concrete witness from replay") {
		t.Errorf("replay witness missing:\n%s", rendered)
	}
	if !strings.Contains(rendered, "query trace:") {
		t.Errorf("propagation trace missing:\n%s", rendered)
	}
	// No IRR9001: the verdict (serial) and the oracle agree.
	if bad := byCode(diags, CodeAuditParallel); len(bad) != 0 {
		t.Errorf("serial verdict wrongly refuted: %v", bad)
	}
}
