// Package lint is the compiler's diagnostics and audit subsystem: source
// lints over F-lite programs (definite assignment, unreachable code,
// degenerate DO loops, provable out-of-bounds subscripts, index-array
// property violations) and an independent auditor that re-derives every
// parallelization and privatization verdict through a cheap oracle — an
// exhaustive check on small instantiated bounds plus an interpreter-based
// per-iteration footprint replay — reporting IRR9xxx diagnostics when the
// oracle disagrees. The audit is the repository's standing
// translation-validation harness: any analysis change that starts marking
// unsound loops parallel trips it.
//
// Diagnostics carry stable IRRxxxx codes, severities, source spans and
// optional related notes and fix hints; ordering is deterministic (span,
// then code), so renderings are byte-stable and can be committed as golden
// files.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, ordered: an Error outranks a Warning outranks Info.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// ParseSeverity maps a -fail-on style name to a Severity.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "error":
		return Error, nil
	case "warn", "warning":
		return Warning, nil
	case "info":
		return Info, nil
	}
	return Info, fmt.Errorf("lint: unknown severity %q (want info, warn or error)", name)
}

// Span is a source region. End may equal Start (a point span); both are
// 1-based line:column positions.
type Span struct {
	Start lang.Pos `json:"start"`
	End   lang.Pos `json:"end"`
}

// At builds a point span.
func At(p lang.Pos) Span { return Span{Start: p, End: p} }

func (s Span) String() string { return s.Start.String() }

// Related is a secondary note attached to a diagnostic: a witness, a
// propagation-trace step, or the location of a conflicting access.
type Related struct {
	Pos     lang.Pos `json:"pos"`
	Message string   `json:"message"`
}

// Diag is one diagnostic. The Code is stable across releases (see Codes);
// Severity defaults from the code table but may be adjusted per instance.
type Diag struct {
	Code     string    `json:"code"`
	Severity Severity  `json:"severity"`
	Span     Span      `json:"span"`
	Message  string    `json:"message"`
	Related  []Related `json:"related,omitempty"`
	// FixHint suggests a concrete remediation, when one is known.
	FixHint string `json:"fix_hint,omitempty"`
	// Unit names the program unit the span belongs to ("" for main).
	Unit string `json:"unit,omitempty"`
}

// String renders the primary line of the diagnostic:
// "line:col: severity: message [CODE]".
func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Span.Start, d.Severity, d.Message, d.Code)
}

// Code metadata. Codes are append-only: numbers are never reused and
// titles never change meaning.
type CodeInfo struct {
	// Title is the short name of the defect class.
	Title string
	// Severity is the default severity of the code.
	Severity Severity
}

// Codes is the registry of diagnostic codes.
//
// Families: IRR1xxx dataflow and control-flow lints, IRR2xxx index-array
// property lints, IRR3xxx subscript bounds lints, IRR9xxx verdict-audit
// findings.
var Codes = map[string]CodeInfo{
	CodeUseBeforeDef:    {Title: "use-before-def", Severity: Warning},
	CodeUnreachable:     {Title: "unreachable statement", Severity: Warning},
	CodeZeroStep:        {Title: "zero DO step", Severity: Error},
	CodeZeroTrip:        {Title: "contradictory DO bounds", Severity: Warning},
	CodeNonInjective:    {Title: "non-injective index array", Severity: Warning},
	CodeNonMonotonic:    {Title: "non-monotonic offset array", Severity: Warning},
	CodeOutOfBounds:     {Title: "provable out-of-bounds subscript", Severity: Error},
	CodeAuditParallel:   {Title: "audit-mismatch: parallel verdict", Severity: Error},
	CodeAuditPrivate:    {Title: "audit-mismatch: privatization verdict", Severity: Error},
	CodeAuditIncomplete: {Title: "audit incomplete", Severity: Info},
}

// Diagnostic codes.
const (
	// CodeUseBeforeDef: a scalar is read with no reaching definition — on
	// every path the value is the implicit zero initialization.
	CodeUseBeforeDef = "IRR1001"
	// CodeUnreachable: a statement no control path reaches.
	CodeUnreachable = "IRR1002"
	// CodeZeroStep: a DO loop whose constant step is zero (faults at run
	// time).
	CodeZeroStep = "IRR1003"
	// CodeZeroTrip: a DO loop whose constant bounds contradict its step
	// direction — the body never executes.
	CodeZeroTrip = "IRR1004"
	// CodeNonInjective: a loop stays serial because an index array used in
	// a subscript could not be proven injective; the diagnostic carries
	// the failing query's propagation trace and, when the auditor's
	// replay observed one, a concrete counterexample witness.
	CodeNonInjective = "IRR2003"
	// CodeNonMonotonic: an array used as a subscript is filled by a
	// recurrence the definition-site derivation recognizes, but its
	// monotonicity resisted proof (some increment has unknown sign) — the
	// consumers of the array cannot be parallelized. The diagnostic carries
	// the derivation's failing fixpoint steps.
	CodeNonMonotonic = "IRR2004"
	// CodeOutOfBounds: a subscript whose symbolic range lies provably and
	// entirely outside the declared array bounds.
	CodeOutOfBounds = "IRR3002"
	// CodeAuditParallel: the independent oracle found a cross-iteration
	// conflict in a loop the pipeline classified parallel.
	CodeAuditParallel = "IRR9001"
	// CodeAuditPrivate: the oracle observed a privatized variable reading
	// a value another iteration wrote (or one never written in-iteration).
	CodeAuditPrivate = "IRR9002"
	// CodeAuditIncomplete: the audit replay could not run to completion
	// (step budget, runtime fault, footprint cap); verdicts it did not
	// reach are unaudited, not confirmed.
	CodeAuditIncomplete = "IRR9003"
)

// New builds a diagnostic with the code's default severity.
func New(code string, pos lang.Pos, format string, args ...any) Diag {
	return Diag{
		Code:     code,
		Severity: Codes[code].Severity,
		Span:     At(pos),
		Message:  fmt.Sprintf(format, args...),
	}
}

// Sort orders diagnostics deterministically: by span start (line, then
// column), then code, then message. Renderings of the same diagnostics are
// therefore byte-identical across runs, job counts and map iteration
// orders.
func Sort(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Span.Start.Line != b.Span.Start.Line {
			return a.Span.Start.Line < b.Span.Start.Line
		}
		if a.Span.Start.Col != b.Span.Start.Col {
			return a.Span.Start.Col < b.Span.Start.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// Counts tallies diagnostics by severity.
type Counts struct {
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// Count tallies diags by severity.
func Count(diags []Diag) Counts {
	var c Counts
	for _, d := range diags {
		switch d.Severity {
		case Error:
			c.Errors++
		case Warning:
			c.Warnings++
		default:
			c.Infos++
		}
	}
	return c
}

// AtLeast reports whether any diagnostic reaches the threshold severity.
func AtLeast(diags []Diag, min Severity) bool {
	for _, d := range diags {
		if d.Severity >= min {
			return true
		}
	}
	return false
}

// Render writes the diagnostics in the canonical text format, one primary
// line per diagnostic and one indented line per related note:
//
//	12:5: warning: scalar "u" is read but never assigned [IRR1001]
//	    3:1: declared here
func Render(diags []Diag) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
		for _, r := range d.Related {
			sb.WriteString("    ")
			if r.Pos.IsValid() {
				sb.WriteString(r.Pos.String())
				sb.WriteString(": ")
			}
			sb.WriteString(r.Message)
			sb.WriteByte('\n')
		}
		if d.FixHint != "" {
			sb.WriteString("    hint: ")
			sb.WriteString(d.FixHint)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
