package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden .diag files")

// TestGoldenDiagnostics locks the full diagnostic output — codes, spans,
// messages, related notes and hints — for every committed example. The
// shipped corpus under examples/corpus must stay clean (empty goldens);
// the testdata programs are deliberately defective and their goldens are
// the rich rendering. Regenerate with: go test ./internal/lint -run Golden -update
func TestGoldenDiagnostics(t *testing.T) {
	for _, dir := range []string{"../../examples/corpus", "testdata"} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.fl"))
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("no .fl programs under %s", dir)
		}
		for _, path := range paths {
			path := path
			t.Run(filepath.Base(path), func(t *testing.T) {
				src, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				diags, err := irregular.Lint(string(src), irregular.Options{})
				if err != nil {
					t.Fatalf("lint %s: %v", path, err)
				}
				got := irregular.RenderDiags(diags)
				golden := strings.TrimSuffix(path, ".fl") + ".diag"
				if *update {
					if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("diagnostics drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
				}
			})
		}
	}
}

// TestCorpusIsClean is the acceptance gate in test form: the shipped
// examples must produce zero error-severity diagnostics.
func TestCorpusIsClean(t *testing.T) {
	paths, err := filepath.Glob("../../examples/corpus/*.fl")
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(paths))
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := irregular.Lint(string(src), irregular.Options{})
		if err != nil {
			t.Fatalf("lint %s: %v", path, err)
		}
		if lint.AtLeast(diags, lint.Error) {
			t.Errorf("%s has error diagnostics:\n%s", path, irregular.RenderDiags(diags))
		}
	}
}
