package lint

import (
	"fmt"

	"repro/internal/boundscheck"
	"repro/internal/cfg"
	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

// Source runs the source lints over a checked program: definite assignment
// (use before any reaching def), unreachable statements, degenerate DO
// loops and provable out-of-bounds subscripts. The program should be a
// fresh parse — spans then anchor to the user's source text, not to the
// transformed program. prop may be nil (index-array bounds are then
// unavailable to the out-of-bounds proof); guard may be nil (no
// cancellation checkpoints).
func Source(info *sem.Info, mod *dataflow.ModInfo, prop *property.Analysis, guard *comperr.Guard) []Diag {
	var diags []Diag
	for _, u := range info.Program.Units() {
		guard.Check()
		diags = append(diags, lintUnit(info, mod, u, guard)...)
	}
	diags = append(diags, lintBounds(info, prop)...)
	diags = append(diags, lintNonMonotonicFill(info, prop, guard)...)
	Sort(diags)
	return diags
}

func lintUnit(info *sem.Info, mod *dataflow.ModInfo, u *lang.Unit, guard *comperr.Guard) []Diag {
	g := cfg.Build(u)
	var diags []Diag
	diags = append(diags, lintUnreachable(g, u)...)
	diags = append(diags, lintUseBeforeDef(g, info, mod, u, guard)...)
	diags = append(diags, lintDoLoops(info, u)...)
	for i := range diags {
		if u != info.Program.Main {
			diags[i].Unit = u.Name
		}
	}
	return diags
}

// lintUnreachable reports statements no control path reaches. A statement
// nested inside an already-unreachable one is suppressed: the outermost
// report is the actionable one.
func lintUnreachable(g *cfg.Graph, u *lang.Unit) []Diag {
	reached := map[lang.Stmt]bool{}
	for _, n := range g.ReversePostorder() {
		if n.Stmt != nil {
			reached[n.Stmt] = true
		}
	}
	var diags []Diag
	lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
		if reached[s] {
			return true
		}
		d := New(CodeUnreachable, s.Pos(), "unreachable statement (no control path reaches it)")
		d.FixHint = "remove the statement, or fix the GOTO/RETURN that cuts it off"
		diags = append(diags, d)
		return false // suppress nested reports
	})
	return diags
}

// lintUseBeforeDef reports scalar reads that are not definitely assigned:
// some path from the unit entry reaches the read without writing the
// variable, so the value read is the implicit zero initialization — almost
// always an omitted assignment. The reaching-definitions solution
// distinguishes the two flavours ("never assigned anywhere" vs "unassigned
// on some path"). Globals read inside subroutines are skipped — their
// definitions may live in any caller — so the check is exact for locals
// and for the main program.
func lintUseBeforeDef(g *cfg.Graph, info *sem.Info, mod *dataflow.ModInfo, u *lang.Unit, guard *comperr.Guard) []Diag {
	def := dataflow.ComputeDefinite(g, info, mod)
	rd := dataflow.ComputeReaching(g, info, mod)
	main := u == info.Program.Main
	// One report per variable: the earliest read in source order is where
	// the fix goes.
	type finding struct {
		pos   lang.Pos
		never bool
	}
	first := map[string]finding{}
	for _, n := range g.ReversePostorder() {
		guard.Step()
		f := dataflow.NodeFacts(n)
		seen := map[string]bool{}
		for _, v := range f.ScalarReads {
			if seen[v] {
				continue
			}
			seen[v] = true
			sym := info.LookupIn(u, v)
			if sym == nil || sym.Kind != sem.ScalarSym {
				continue
			}
			if sym.Global && !main {
				continue
			}
			if def.AssignedAt(n, v) {
				continue
			}
			pos := n.Pos()
			if p, ok := first[v]; !ok || before(pos, p.pos) {
				first[v] = finding{pos: pos, never: len(rd.DefsOf(n, v)) == 0}
			}
		}
	}
	var diags []Diag
	for v, f := range first {
		var d Diag
		if f.never {
			d = New(CodeUseBeforeDef, f.pos, "scalar %q is read but never assigned on any path to this use", v)
		} else {
			d = New(CodeUseBeforeDef, f.pos, "scalar %q may be read before it is assigned (some path reaches this use without writing it)", v)
		}
		d.FixHint = fmt.Sprintf("assign %s before this statement (an unassigned scalar reads the implicit zero)", v)
		diags = append(diags, d)
	}
	return diags
}

func before(a, b lang.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// lintDoLoops reports DO headers whose constant-foldable control is
// degenerate: a zero step (a run-time fault) or bounds that contradict the
// step direction (a loop that never executes).
func lintDoLoops(info *sem.Info, u *lang.Unit) []Diag {
	sc := info.Scope(u)
	var diags []Diag
	lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
		do, ok := s.(*lang.DoStmt)
		if !ok {
			return true
		}
		step, stepConst := int64(1), true
		if do.Step != nil {
			step, stepConst = constInt(sc, do.Step)
		}
		if stepConst && step == 0 {
			d := New(CodeZeroStep, do.Pos(), "DO %s has a zero step: the loop faults at run time", do.Var.Name)
			d.FixHint = "use a non-zero step expression"
			diags = append(diags, d)
			return true
		}
		lo, okLo := constInt(sc, do.Lo)
		hi, okHi := constInt(sc, do.Hi)
		if stepConst && okLo && okHi {
			if (step > 0 && lo > hi) || (step < 0 && lo < hi) {
				d := New(CodeZeroTrip, do.Pos(),
					"DO %s never executes: bounds %d..%d contradict step %d", do.Var.Name, lo, hi, step)
				d.FixHint = "swap the bounds or negate the step"
				diags = append(diags, d)
			}
		}
		return true
	})
	return diags
}

// constInt folds an expression to a constant, resolving PARAM names.
func constInt(sc *sem.Scope, e lang.Expr) (int64, bool) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Value, true
	case *lang.Ident:
		if sc != nil {
			if sym := sc.Lookup(e.Name); sym != nil && sym.Kind == sem.ParamSym {
				return sym.Value, true
			}
		}
	case *lang.Unary:
		if v, ok := constInt(sc, e.X); ok && e.Op == lang.OpNeg {
			return -v, true
		}
	case *lang.Binary:
		l, okL := constInt(sc, e.X)
		r, okR := constInt(sc, e.Y)
		if okL && okR {
			switch e.Op {
			case lang.OpAdd:
				return l + r, true
			case lang.OpSub:
				return l - r, true
			case lang.OpMul:
				return l * r, true
			case lang.OpDiv:
				if r != 0 {
					return l / r, true
				}
			}
		}
	}
	return 0, false
}

// lintBounds reports subscripts proven out of bounds, reusing the
// bounds-check analyzer's symbolic machinery in the refuting direction.
func lintBounds(info *sem.Info, prop *property.Analysis) []Diag {
	a := boundscheck.New(info, prop)
	var diags []Diag
	for _, v := range a.Violations() {
		rel := "above"
		if v.Low {
			rel = "below"
		}
		d := New(CodeOutOfBounds, v.Ref.NamePos,
			"subscript %d of %q is provably out of bounds: range %s lies %s declared bound %d",
			v.Dim+1, v.Ref.Name, v.Sub, rel, v.Bound)
		d.FixHint = fmt.Sprintf("clamp the subscript into the declared bounds of %s", v.Ref.Name)
		if v.Unit != info.Program.Main {
			d.Unit = v.Unit.Name
		}
		diags = append(diags, d)
	}
	return diags
}
