package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

func checkSrc(t *testing.T, src string) (*sem.Info, *dataflow.ModInfo) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return info, dataflow.ComputeMod(info)
}

func sourceDiags(t *testing.T, src string) []Diag {
	t.Helper()
	info, mod := checkSrc(t, src)
	return Source(info, mod, nil, nil)
}

// byCode filters diagnostics to one code.
func byCode(diags []Diag, code string) []Diag {
	var out []Diag
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestUseBeforeDef(t *testing.T) {
	diags := sourceDiags(t, `program p
  integer a, b
  real x
  b = 2
  if (b > 0) then
    a = 1
  end if
  x = real(a) + real(b)
end
`)
	got := byCode(diags, CodeUseBeforeDef)
	if len(got) != 1 {
		t.Fatalf("want 1 IRR1001, got %v", diags)
	}
	if got[0].Message == "" || !strings.Contains(got[0].Message, `"a"`) {
		t.Errorf("message should name a: %s", got[0].Message)
	}
	if got[0].Span.Start.Line != 8 {
		t.Errorf("want line 8, got %v", got[0].Span.Start)
	}
	if got[0].Severity != Warning {
		t.Errorf("severity = %v", got[0].Severity)
	}
}

func TestUseBeforeDefCleanWhenAssignedOnAllPaths(t *testing.T) {
	diags := sourceDiags(t, `program p
  integer a, b
  b = 2
  if (b > 0) then
    a = 1
  else
    a = 2
  end if
  b = a
end
`)
	if got := byCode(diags, CodeUseBeforeDef); len(got) != 0 {
		t.Fatalf("clean program reported: %v", got)
	}
}

func TestUseBeforeDefSkipsGlobalsInSubroutines(t *testing.T) {
	// g is assigned by the main program before the call; the per-unit
	// check must not flag its read inside the subroutine.
	diags := sourceDiags(t, `program p
  integer g, h
  g = 1
  call sub
  h = g
end

subroutine sub
  g = g + 1
end
`)
	if got := byCode(diags, CodeUseBeforeDef); len(got) != 0 {
		t.Fatalf("global read in subroutine flagged: %v", got)
	}
}

func TestUnreachable(t *testing.T) {
	diags := sourceDiags(t, `program p
  integer a
  goto 10
  a = 1
  if (a > 0) then
    a = 2
  end if
10 continue
  a = 3
end
`)
	got := byCode(diags, CodeUnreachable)
	// Outermost reports only: the assignment and the IF, not the IF's body.
	if len(got) != 2 {
		t.Fatalf("want 2 IRR1002 (nested suppressed), got %v", got)
	}
	if got[0].Span.Start.Line != 4 || got[1].Span.Start.Line != 5 {
		t.Errorf("lines = %v, %v", got[0].Span.Start, got[1].Span.Start)
	}
}

func TestDoLoopLints(t *testing.T) {
	diags := sourceDiags(t, `program p
  param z = 0
  integer i, s
  s = 0
  do i = 1, 10, z
    s = s + 1
  end do
  do i = 5, 1
    s = s + 1
  end do
  do i = 1, 5, -1
    s = s + 1
  end do
end
`)
	if got := byCode(diags, CodeZeroStep); len(got) != 1 || got[0].Span.Start.Line != 5 {
		t.Fatalf("IRR1003: %v", got)
	}
	zt := byCode(diags, CodeZeroTrip)
	if len(zt) != 2 {
		t.Fatalf("want 2 IRR1004, got %v", zt)
	}
	if zt[0].Span.Start.Line != 8 || zt[1].Span.Start.Line != 11 {
		t.Errorf("IRR1004 lines: %v %v", zt[0].Span.Start, zt[1].Span.Start)
	}
	if zt[0].Severity != Warning || byCode(diags, CodeZeroStep)[0].Severity != Error {
		t.Error("severities off the code table")
	}
}

func TestOutOfBounds(t *testing.T) {
	diags := sourceDiags(t, `program p
  param n = 8
  real a(n)
  integer i
  a(n + 1) = 0.0
  a(0) = 1.0
  do i = 1, n
    a(i) = 2.0
  end do
end
`)
	got := byCode(diags, CodeOutOfBounds)
	if len(got) != 2 {
		t.Fatalf("want 2 IRR3002, got %v", diags)
	}
	if got[0].Span.Start.Line != 5 || !strings.Contains(got[0].Message, "above") {
		t.Errorf("high violation: %+v", got[0])
	}
	if got[1].Span.Start.Line != 6 || !strings.Contains(got[1].Message, "below") {
		t.Errorf("low violation: %+v", got[1])
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("%v -> %s -> %v", s, b, back)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestParseSeverity(t *testing.T) {
	for name, want := range map[string]Severity{
		"info": Info, "warn": Warning, "warning": Warning, "error": Error,
	} {
		got, err := ParseSeverity(name)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSeverity("everything"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestSortDeterministic(t *testing.T) {
	diags := []Diag{
		New(CodeUnreachable, lang.Pos{Line: 4, Col: 1}, "b"),
		New(CodeUseBeforeDef, lang.Pos{Line: 4, Col: 1}, "a"),
		New(CodeUseBeforeDef, lang.Pos{Line: 2, Col: 9}, "c"),
		New(CodeUseBeforeDef, lang.Pos{Line: 2, Col: 3}, "d"),
	}
	Sort(diags)
	want := []string{"d", "c", "a", "b"}
	for i, d := range diags {
		if d.Message != want[i] {
			t.Fatalf("order %d = %q, want %q (%v)", i, d.Message, want[i], diags)
		}
	}
}

func TestCountsAndAtLeast(t *testing.T) {
	diags := []Diag{
		New(CodeAuditIncomplete, lang.Pos{}, "i"),
		New(CodeUseBeforeDef, lang.Pos{}, "w"),
		New(CodeOutOfBounds, lang.Pos{}, "e"),
	}
	c := Count(diags)
	if c.Errors != 1 || c.Warnings != 1 || c.Infos != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if !AtLeast(diags, Error) || !AtLeast(diags, Info) {
		t.Error("AtLeast misses present severities")
	}
	if AtLeast(diags[:1], Warning) {
		t.Error("info-only diags reach warn threshold")
	}
}

func TestRender(t *testing.T) {
	d := New(CodeUseBeforeDef, lang.Pos{Line: 12, Col: 5}, "scalar %q is read", "u")
	d.Related = append(d.Related, Related{Pos: lang.Pos{Line: 3, Col: 1}, Message: "declared here"})
	d.Related = append(d.Related, Related{Message: "no position"})
	d.FixHint = "assign u first"
	got := Render([]Diag{d})
	want := "12:5: warning: scalar \"u\" is read [IRR1001]\n" +
		"    3:1: declared here\n" +
		"    no position\n" +
		"    hint: assign u first\n"
	if got != want {
		t.Errorf("Render:\n%s\nwant:\n%s", got, want)
	}
}

func TestCodesRegistryComplete(t *testing.T) {
	for _, code := range []string{
		CodeUseBeforeDef, CodeUnreachable, CodeZeroStep, CodeZeroTrip,
		CodeNonInjective, CodeOutOfBounds, CodeAuditParallel,
		CodeAuditPrivate, CodeAuditIncomplete,
	} {
		if _, ok := Codes[code]; !ok {
			t.Errorf("code %s missing from registry", code)
		}
	}
}
