package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/parallel"
	"repro/internal/sem"
)

// Recurrence-verdict audit: every monotonicity/injectivity fact a parallel
// verdict cites is re-derived at its definition site (property.AuditFill
// replays the same recurrence derivation the provers used) and then
// re-checked through two oracles that share nothing with the derivation:
//
//  1. small-bounds instantiation: the recurrence increments are evaluated
//     for the first few pair positions and their claimed sign checked
//     directly (a statically negative increment refutes monotonicity, a
//     zero one refutes strictness);
//  2. value replay: after the footprint replay the index array's final
//     contents are read back from the interpreter and scanned for an
//     adjacent inversion over the derived element section.
//
// Either disagreement is an IRR9001 audit mismatch — the parallel verdict
// rests on the refuted property.

// recClaim is one derived-property claim cited by a parallel verdict.
type recClaim struct {
	array  string
	strict bool // injectivity was used, so the fill must be strictly increasing
	report *parallel.LoopReport
}

// recurrenceClaims extracts the audited claims from the verdicts' property
// evidence: every "monotonic(x)" or "injective(x)" cited by a parallel
// loop, deduplicated per array (injectivity anywhere upgrades the claim to
// strict).
func recurrenceClaims(reports []*parallel.LoopReport) []*recClaim {
	byArr := map[string]*recClaim{}
	for _, r := range reports {
		if !r.Parallel {
			continue
		}
		for _, p := range r.Properties {
			arr, strict := "", false
			if rest, ok := strings.CutPrefix(p, "monotonic("); ok {
				arr = strings.TrimSuffix(rest, ")")
			} else if rest, ok := strings.CutPrefix(p, "injective("); ok {
				arr, strict = strings.TrimSuffix(rest, ")"), true
			} else {
				continue
			}
			c := byArr[arr]
			if c == nil {
				c = &recClaim{array: arr, report: r}
				byArr[arr] = c
			}
			c.strict = c.strict || strict
		}
	}
	out := make([]*recClaim, 0, len(byArr))
	for _, c := range byArr {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].array < out[j].array })
	return out
}

// auditRecurrence re-checks every claim against every fill loop the
// derivation recognizes for its array. final is the interpreter of the
// completed footprint replay (nil when the replay did not finish — the
// value oracle is skipped, the static one still runs). Returns the
// diagnostics and the number of (claim, fill) verdicts audited.
func auditRecurrence(info *sem.Info, prop *property.Analysis, reports []*parallel.LoopReport,
	final *interp.Interp, opts AuditOptions) ([]Diag, int) {

	if prop == nil {
		return nil, 0
	}
	claims := recurrenceClaims(reports)
	if len(claims) == 0 {
		return nil, 0
	}
	var diags []Diag
	audited := 0
	for _, c := range claims {
		for _, u := range info.Program.Units() {
			sc := info.Scope(u)
			lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
				d, ok := s.(*lang.DoStmt)
				if !ok {
					return true
				}
				dr := prop.AuditFill(d, c.array)
				if dr == nil || !dr.Monotonic() {
					// Not a recognized fill of this array (or one the
					// derivation itself rejects): nothing claimed, nothing
					// to audit here.
					return true
				}
				audited++
				if dg, bad := checkFillStatic(sc, u, d, dr, c, opts.MaxStaticTrips); bad {
					diags = append(diags, dg)
				} else if dg, bad := checkFillValues(info, sc, u, d, dr, c, final); bad {
					diags = append(diags, dg)
				}
				return true
			})
		}
	}
	return diags, audited
}

// checkFillStatic instantiates the recurrence increments over the first few
// pair positions and checks the claimed sign. Increments that do not fold
// to a constant (distance-array fills like off(i+1)=off(i)+cnt(i)) are left
// to the value oracle.
func checkFillStatic(sc *sem.Scope, u *lang.Unit, d *lang.DoStmt,
	dr *property.DeriveResult, c *recClaim, maxTrips int64) (Diag, bool) {

	lo, okLo := evalSub(sc, dr.PairLo.ToAST(), "", 0)
	hi, okHi := evalSub(sc, dr.PairHi.ToAST(), "", 0)
	if !okLo || !okHi {
		return Diag{}, false
	}
	trips := hi - lo + 1
	if trips > maxTrips {
		trips = maxTrips
	}
	for k := int64(0); k < trips; k++ {
		v := lo + k
		for _, inc := range dr.Incs {
			ev, ok := evalSub(sc, inc.ToAST(), dr.Var, v)
			if !ok {
				continue
			}
			if ev < 0 || (c.strict && ev == 0) {
				want := "nonnegative"
				if c.strict {
					want = "positive"
				}
				dg := New(CodeAuditParallel, d.Pos(),
					"audit mismatch: loop %s relies on derived %s, but the fill of %q at %s=%d has increment %v = %d (want %s)",
					c.report.Name, claimName(c), c.array, dr.Var, v, inc, ev, want)
				dg.Related = append(dg.Related, Related{Message: "independent oracle: exhaustive small-bounds instantiation of the filling recurrence"})
				dg.Unit = u.Name
				return dg, true
			}
		}
	}
	return Diag{}, false
}

// checkFillValues reads the array's final contents back from the replay
// interpreter and scans the derived element section for an adjacent
// inversion (or a duplicate, when the claim is strict).
func checkFillValues(info *sem.Info, sc *sem.Scope, u *lang.Unit, d *lang.DoStmt,
	dr *property.DeriveResult, c *recClaim, final *interp.Interp) (Diag, bool) {

	if final == nil {
		return Diag{}, false
	}
	vals, err := final.GlobalArrayInt(c.array)
	if err != nil {
		return Diag{}, false
	}
	sym := info.LookupIn(u, c.array)
	if sym == nil || sym.Kind != sem.ArraySym || len(sym.Dims) != 1 {
		return Diag{}, false
	}
	lo, okLo := evalSub(sc, dr.ElemLo.ToAST(), "", 0)
	hi, okHi := evalSub(sc, dr.ElemHi.ToAST(), "", 0)
	if !okLo || !okHi {
		return Diag{}, false
	}
	dim := sym.Dims[0]
	if lo < dim.Lo {
		lo = dim.Lo
	}
	if hi > dim.Hi {
		hi = dim.Hi
	}
	for j := lo; j < hi; j++ {
		a, b := vals[j-dim.Lo], vals[j+1-dim.Lo]
		if a > b || (c.strict && a == b) {
			dg := New(CodeAuditParallel, d.Pos(),
				"audit mismatch: loop %s relies on derived %s, but the replayed values have %s(%d) = %d and %s(%d) = %d",
				c.report.Name, claimName(c), c.array, j, a, c.array, j+1, b)
			dg.Related = append(dg.Related, Related{Message: "independent oracle: interpreter value replay over the derived element section"})
			dg.Unit = u.Name
			return dg, true
		}
	}
	return Diag{}, false
}

func claimName(c *recClaim) string {
	if c.strict {
		return fmt.Sprintf("injective(%s)", c.array)
	}
	return fmt.Sprintf("monotonic(%s)", c.array)
}

// ---------------------------------------------------------------------------
// IRR2004: recurrence-filled offset arrays that resist the derivation

// lintNonMonotonicFill reports index arrays that are filled by a recognized
// recurrence whose monotonicity could not be proven: the fill has the shape
// of a prefix sum, but some increment's sign is unknown, so every consumer
// subscripting through the array stays serial. Only arrays actually used
// inside subscripts are reported — a non-monotonic fill of a plain data
// array is not a finding.
func lintNonMonotonicFill(info *sem.Info, prop *property.Analysis, guard *comperr.Guard) []Diag {
	if prop == nil {
		return nil
	}
	idx := indexArraySet(info.Program)
	if len(idx) == 0 {
		return nil
	}
	var diags []Diag
	for _, u := range info.Program.Units() {
		guard.Check()
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			d, ok := s.(*lang.DoStmt)
			if !ok {
				return true
			}
			for _, arr := range fillCandidates(d) {
				if !idx[arr] {
					continue
				}
				dr := prop.AuditFill(d, arr)
				if dr == nil || dr.Monotonic() {
					continue
				}
				dg := New(CodeNonMonotonic, d.Pos(),
					"offset array %q is not provably monotonic: its recurrence fill has an increment of unknown sign, so loops subscripting through it stay serial", arr)
				for _, st := range dr.Steps {
					dg.Related = append(dg.Related, Related{Message: "derivation: " + st})
					if len(dg.Related) >= 6 {
						break
					}
				}
				dg.FixHint = fmt.Sprintf("make every per-step increment of %s provably nonnegative (e.g. fill from lengths that are >= 0 by construction)", arr)
				if u != info.Program.Main {
					dg.Unit = u.Name
				}
				diags = append(diags, dg)
			}
			return true
		})
	}
	return diags
}

// fillCandidates lists the arrays a loop body assigns in self-referential
// form x(...) = ... x(...) ... — the syntactic precondition of a recurrence
// fill, cheap enough to test before running the derivation.
func fillCandidates(d *lang.DoStmt) []string {
	seen := map[string]bool{}
	var out []string
	lang.WalkStmts(d.Body, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := as.Lhs.(*lang.ArrayRef)
		if !ok || lhs.Intrinsic || len(lhs.Args) != 1 || seen[lhs.Name] {
			return true
		}
		self := false
		lang.WalkExpr(as.Rhs, func(x lang.Expr) bool {
			if ar, ok := x.(*lang.ArrayRef); ok && !ar.Intrinsic && ar.Name == lhs.Name {
				self = true
			}
			return !self
		})
		if self {
			seen[lhs.Name] = true
			out = append(out, lhs.Name)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// indexArraySet collects every array whose values steer other accesses:
// arrays appearing inside a subscript of another (non-intrinsic) array
// reference, and arrays appearing in DO-loop bounds (offset arrays consumed
// as access windows, the CSR shape).
func indexArraySet(prog *lang.Program) map[string]bool {
	idx := map[string]bool{}
	mark := func(e lang.Expr) {
		lang.WalkExpr(e, func(y lang.Expr) bool {
			if ia, ok := y.(*lang.ArrayRef); ok && !ia.Intrinsic {
				idx[ia.Name] = true
			}
			return true
		})
	}
	for _, u := range prog.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			if d, ok := s.(*lang.DoStmt); ok {
				mark(d.Lo)
				mark(d.Hi)
				if d.Step != nil {
					mark(d.Step)
				}
			}
			lang.StmtExprs(s, func(e lang.Expr) {
				lang.WalkExpr(e, func(x lang.Expr) bool {
					ref, ok := x.(*lang.ArrayRef)
					if !ok || ref.Intrinsic {
						return true
					}
					for _, a := range ref.Args {
						mark(a)
					}
					return true
				})
			})
			return true
		})
	}
	return idx
}
