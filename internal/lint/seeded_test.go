package lint_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro"
	"repro/internal/progen"
)

// TestSeededDefects generates random programs, injects one defect of each
// class with known ground truth, and asserts the linter reports it with
// the right code on the right line. This is the recall half of the
// acceptance bar (the golden corpus is the precision half).
func TestSeededDefects(t *testing.T) {
	for _, class := range progen.Classes() {
		class := class
		t.Run(string(class), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				r := rand.New(rand.NewSource(seed))
				src, def := progen.GenerateDefective(r, progen.Config{N: 16}, class)
				diags, err := irregular.Lint(src, irregular.Options{})
				if err != nil {
					t.Fatalf("seed %d: lint: %v\n%s", seed, err, src)
				}
				found := false
				for _, d := range diags {
					if d.Code == def.Code && d.Span.Start.Line == def.Line {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("seed %d: seeded %s (%s at line %d) not reported; got:\n%s",
						seed, def.Class, def.Code, def.Line, irregular.RenderDiags(diags))
				}
			}
		})
	}
}

// TestAuditorConfirmsGeneratedPrograms is the auditor acceptance bar over
// random inputs: every parallel/privatizable verdict on defect-free
// generated programs must survive the independent audit (no IRR9xxx).
func TestAuditorConfirmsGeneratedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := progen.Generate(r, progen.Config{N: 16})
		diags, err := irregular.Lint(src, irregular.Options{})
		if err != nil {
			t.Fatalf("seed %d: lint: %v\n%s", seed, err, src)
		}
		for _, d := range diags {
			if strings.HasPrefix(d.Code, "IRR90") {
				t.Errorf("seed %d: audit mismatch %s: %s", seed, d.Code, d.Message)
			}
		}
	}
}
