// Package machine models a shared-memory parallel computer with a
// deterministic cost model. The paper's evaluation ran on an SGI Origin
// 2000 (56×195 MHz R10000) and an SGI Challenge (4×200 MHz R4400); this
// container has one core, so speedup curves are regenerated on a simulated
// machine instead: the interpreter charges cost units per operation, a
// parallel DO distributes its iterations over P virtual processors, and the
// region's simulated time is the slowest processor's work plus a fork/join
// overhead. The overhead constants are what give DYFESM's tiny data set
// its characteristic slowdown (Fig. 16(e)) and the Challenge its better
// 4-processor ratio (Fig. 16(f)).
package machine

import (
	"fmt"

	"repro/internal/obs"
)

// Profile holds the machine-dependent constants of the cost model.
type Profile struct {
	Name string
	// ForkJoin is the fixed cost of entering and leaving one parallel
	// region (scheduling, barrier).
	ForkJoin uint64
	// PerProc is the additional region cost per participating processor
	// (processor wake-up, cache warm-up).
	PerProc uint64
	// MemScale scales memory-access costs in parallel regions (per
	// mille): > 1000 models contention and remote-memory penalties.
	MemScale uint64
}

// Origin2000 approximates the paper's 56-processor SGI Origin 2000: fast
// processors, NUMA remote-memory penalty, sizeable region overhead.
var Origin2000 = Profile{Name: "origin2000", ForkJoin: 3000, PerProc: 180, MemScale: 1150}

// Challenge approximates the paper's 4-processor SGI Challenge: slower
// processors (so the same overhead costs relatively less compute), a bus
// instead of NUMA.
var Challenge = Profile{Name: "challenge", ForkJoin: 700, PerProc: 60, MemScale: 1050}

// Machine accumulates simulated time for one execution.
type Machine struct {
	Profile Profile
	// P is the number of processors used by parallel regions.
	P int
	// Rec, when non-nil, receives per-region telemetry: a "machine.region"
	// event and machine.loop.<name>.* counters per named parallel region.
	Rec *obs.Recorder

	time            uint64
	parallelRegions int
	parallelCycles  uint64
	serialCycles    uint64
}

// New builds a machine with the given profile and processor count.
func New(p Profile, procs int) *Machine {
	if procs < 1 {
		procs = 1
	}
	return &Machine{Profile: p, P: procs}
}

// AddSerial charges cycles of sequential execution.
func (m *Machine) AddSerial(cycles uint64) {
	m.time += cycles
	m.serialCycles += cycles
}

// AddParallel charges one parallel region given the per-processor work. The
// region costs the slowest processor's work (memory-scaled) plus the fork/
// join overhead. With P == 1 no overhead applies (the loop runs serially).
func (m *Machine) AddParallel(perProc []uint64) {
	var max uint64
	for _, c := range perProc {
		if c > max {
			max = c
		}
	}
	if m.P == 1 {
		m.time += max
		m.serialCycles += max
		return
	}
	scaled := max * m.Profile.MemScale / 1000
	cost := m.Profile.ForkJoin + uint64(m.P)*m.Profile.PerProc + scaled
	m.time += cost
	m.parallelCycles += cost
	m.parallelRegions++
}

// AddParallelRegion is AddParallel for a named loop; with a recorder
// attached it also records the region's simulated cost as a
// "machine.region" event and per-loop cycle counters.
func (m *Machine) AddParallelRegion(name string, perProc []uint64) {
	before := m.time
	m.AddParallel(perProc)
	if m.Rec.Enabled() {
		cycles := int64(m.time - before)
		m.Rec.Count("machine.loop."+name+".cycles", cycles)
		m.Rec.Count("machine.loop."+name+".regions", 1)
		m.Rec.Event("machine.region",
			obs.F("loop", name),
			obs.Fi("cycles", cycles),
			obs.Fi("procs", int64(m.P)))
	}
}

// Time returns the total simulated time.
func (m *Machine) Time() uint64 { return m.time }

// ParallelRegions returns how many parallel regions executed.
func (m *Machine) ParallelRegions() int { return m.parallelRegions }

// SerialCycles returns the time spent outside parallel regions.
func (m *Machine) SerialCycles() uint64 { return m.serialCycles }

// ParallelCycles returns the time spent in parallel regions (including
// overhead).
func (m *Machine) ParallelCycles() uint64 { return m.parallelCycles }

func (m *Machine) String() string {
	return fmt.Sprintf("%s x%d: %d cycles (%d serial, %d parallel in %d regions)",
		m.Profile.Name, m.P, m.time, m.serialCycles, m.parallelCycles, m.parallelRegions)
}

// Speedup computes sequential/parallel from two machines' times.
func Speedup(sequential, parallel *Machine) float64 {
	if parallel.Time() == 0 {
		return 0
	}
	return float64(sequential.Time()) / float64(parallel.Time())
}
