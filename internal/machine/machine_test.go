package machine

import "testing"

func TestSerialAccumulates(t *testing.T) {
	m := New(Origin2000, 4)
	m.AddSerial(100)
	m.AddSerial(50)
	if m.Time() != 150 || m.SerialCycles() != 150 {
		t.Errorf("time=%d serial=%d", m.Time(), m.SerialCycles())
	}
	if m.ParallelRegions() != 0 {
		t.Error("no regions expected")
	}
}

func TestParallelChargesSlowestPlusOverhead(t *testing.T) {
	p := Profile{Name: "t", ForkJoin: 1000, PerProc: 10, MemScale: 1000}
	m := New(p, 4)
	m.AddParallel([]uint64{10, 40, 20, 30})
	want := uint64(1000 + 4*10 + 40)
	if m.Time() != want {
		t.Errorf("time = %d, want %d", m.Time(), want)
	}
	if m.ParallelRegions() != 1 || m.ParallelCycles() != want {
		t.Errorf("regions=%d parallel=%d", m.ParallelRegions(), m.ParallelCycles())
	}
}

func TestParallelOnOneProcessorHasNoOverhead(t *testing.T) {
	m := New(Origin2000, 1)
	m.AddParallel([]uint64{500})
	if m.Time() != 500 || m.ParallelRegions() != 0 {
		t.Errorf("P=1 region should run serially: time=%d regions=%d", m.Time(), m.ParallelRegions())
	}
}

func TestMemScale(t *testing.T) {
	p := Profile{Name: "t", ForkJoin: 0, PerProc: 0, MemScale: 1500}
	m := New(p, 2)
	m.AddParallel([]uint64{100, 100})
	if m.Time() != 150 {
		t.Errorf("time = %d, want 150 (1.5x memory scaling)", m.Time())
	}
}

func TestSpeedup(t *testing.T) {
	seq := New(Origin2000, 1)
	seq.AddSerial(1000)
	par := New(Origin2000, 4)
	par.AddSerial(250)
	if got := Speedup(seq, par); got != 4 {
		t.Errorf("speedup = %v, want 4", got)
	}
	empty := New(Origin2000, 4)
	if got := Speedup(seq, empty); got != 0 {
		t.Errorf("speedup vs zero time = %v, want 0", got)
	}
}

func TestProcsFloor(t *testing.T) {
	m := New(Origin2000, 0)
	if m.P != 1 {
		t.Errorf("P = %d, want clamped to 1", m.P)
	}
}

func TestStringHasProfile(t *testing.T) {
	m := New(Challenge, 4)
	m.AddSerial(10)
	if s := m.String(); s == "" || m.Profile.Name != "challenge" {
		t.Errorf("string/profile: %q", s)
	}
}
