package obs

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// counterShards stripes each counter over this many cache-line-padded
// atomic slots (power of two). Concurrent writers from different
// goroutines land on different shards with high probability, so the hot
// counters of a serving process (requests, in-flight, per-kind errors)
// never serialize on one cache line; reads sum the shards.
const counterShards = 8

// paddedInt64 is an atomic counter padded to its own cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// counter is one named counter's shard array.
type counter struct {
	shards [counterShards]paddedInt64
}

// add stripes delta onto a pseudo-randomly chosen shard. math/rand/v2's
// top-level generator is per-OS-thread in Go ≥1.22, so the choice itself
// is contention-free and a few nanoseconds.
func (c *counter) add(delta int64) {
	c.shards[rand.Uint32()&(counterShards-1)].v.Add(delta)
}

// load sums the shards. The sum is exact once writers quiesce; during
// concurrent writes it is a linearizable-enough snapshot for telemetry.
func (c *counter) load() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// counterSet maps names to sharded counters. Lookups after first creation
// are lock-free (sync.Map read path).
type counterSet struct {
	m sync.Map // string -> *counter
}

func (s *counterSet) add(name string, delta int64) {
	if c, ok := s.m.Load(name); ok {
		c.(*counter).add(delta)
		return
	}
	c, _ := s.m.LoadOrStore(name, new(counter))
	c.(*counter).add(delta)
}

func (s *counterSet) get(name string) int64 {
	if c, ok := s.m.Load(name); ok {
		return c.(*counter).load()
	}
	return 0
}

// snapshot copies all counters into a plain map (nil when empty).
func (s *counterSet) snapshot() map[string]int64 {
	var out map[string]int64
	s.m.Range(func(k, v any) bool {
		if out == nil {
			out = map[string]int64{}
		}
		out[k.(string)] = v.(*counter).load()
		return true
	})
	return out
}
