package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// BucketBoundsNs are the fixed histogram bucket upper bounds in
// nanoseconds: a 1-2-5 sequence per decade from 1µs to 10s. Every
// histogram shares them, which keeps snapshots mergeable (Absorb) and the
// Prometheus exposition cumulative buckets trivially consistent. A final
// implicit +Inf bucket catches the overflow.
var BucketBoundsNs = []int64{
	1_000, 2_000, 5_000, // 1µs 2µs 5µs
	10_000, 20_000, 50_000, // 10µs 20µs 50µs
	100_000, 200_000, 500_000, // 100µs 200µs 500µs
	1_000_000, 2_000_000, 5_000_000, // 1ms 2ms 5ms
	10_000_000, 20_000_000, 50_000_000, // 10ms 20ms 50ms
	100_000_000, 200_000_000, 500_000_000, // 100ms 200ms 500ms
	1_000_000_000, 2_000_000_000, 5_000_000_000, // 1s 2s 5s
	10_000_000_000, // 10s
}

// numBuckets counts the fixed bounds plus the +Inf overflow bucket.
var numBuckets = len(BucketBoundsNs) + 1

// bucketIndex locates the first bucket whose upper bound admits ns.
func bucketIndex(ns int64) int {
	// Binary search over the 22 fixed bounds.
	lo, hi := 0, len(BucketBoundsNs)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= BucketBoundsNs[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(BucketBoundsNs) for the +Inf bucket
}

// histogram is one named latency histogram: atomic per-bucket counts plus
// the running sum and count. Observations are three atomic adds.
type histogram struct {
	counts []atomic.Int64 // len numBuckets
	sum    atomic.Int64   // total observed ns
	count  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, numBuckets)}
}

func (h *histogram) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// HistSnapshot is one histogram's state at snapshot time. Counts is
// per-bucket (not cumulative), aligned with BucketBoundsNs plus a final
// +Inf bucket.
type HistSnapshot struct {
	Name   string  `json:"name"`
	Counts []int64 `json:"counts"`
	SumNs  int64   `json:"sum_ns"`
	Count  int64   `json:"count"`
}

// Quantile derives the q-quantile (0 < q <= 1) in nanoseconds by linear
// interpolation within the owning bucket — the standard fixed-bucket
// estimate (what PromQL's histogram_quantile computes server-side).
// Samples in the +Inf bucket clamp to the largest finite bound. Returns 0
// on an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(BucketBoundsNs) {
			return BucketBoundsNs[len(BucketBoundsNs)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = BucketBoundsNs[i-1]
		}
		hi := BucketBoundsNs[i]
		frac := (rank - prev) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return BucketBoundsNs[len(BucketBoundsNs)-1]
}

// P50, P90 and P99 are the quantiles the Stats surfaces report.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }
func (s HistSnapshot) P90() int64 { return s.Quantile(0.90) }
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }

// histSet maps names to histograms; same lock-free read path as
// counterSet.
type histSet struct {
	m sync.Map // string -> *histogram
}

func (s *histSet) observe(name string, ns int64) {
	if h, ok := s.m.Load(name); ok {
		h.(*histogram).observe(ns)
		return
	}
	h, _ := s.m.LoadOrStore(name, newHistogram())
	h.(*histogram).observe(ns)
}

func (s *histSet) get(name string) (HistSnapshot, bool) {
	h, ok := s.m.Load(name)
	if !ok {
		return HistSnapshot{}, false
	}
	return snapshotOf(name, h.(*histogram)), true
}

func snapshotOf(name string, h *histogram) HistSnapshot {
	snap := HistSnapshot{
		Name:   name,
		Counts: make([]int64, numBuckets),
		SumNs:  h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		snap.Counts[i] = c
		snap.Count += c
	}
	return snap
}

func (s *histSet) snapshot() []HistSnapshot {
	var out []HistSnapshot
	s.m.Range(func(k, v any) bool {
		out = append(out, snapshotOf(k.(string), v.(*histogram)))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// absorb merges src's buckets into s.
func (s *histSet) absorb(src *histSet) {
	src.m.Range(func(k, v any) bool {
		name, sh := k.(string), v.(*histogram)
		h, ok := s.m.Load(name)
		if !ok {
			h, _ = s.m.LoadOrStore(name, newHistogram())
		}
		dh := h.(*histogram)
		for i := range sh.counts {
			if c := sh.counts[i].Load(); c != 0 {
				dh.counts[i].Add(c)
			}
		}
		if v := sh.sum.Load(); v != 0 {
			dh.sum.Add(v)
		}
		if v := sh.count.Load(); v != 0 {
			dh.count.Add(v)
		}
		return true
	})
}
