package obs

import (
	"testing"
	"time"
)

// Observations landing exactly on a bucket bound belong to that bucket
// (bounds are inclusive upper limits, the Prometheus "le" convention).
func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{999, 0},
		{1_000, 0}, // exactly 1µs: first bucket
		{1_001, 1}, // just past the bound: next bucket
		{2_000, 1},
		{2_001, 2},
		{5_000, 2},
		{1_000_000, 9}, // 1ms
		{1_000_001, 10},
		{10_000_000_000, 21}, // 10s: last finite bucket
		{10_000_000_001, 22}, // overflow: +Inf bucket
		{1 << 62, 22},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if numBuckets != len(BucketBoundsNs)+1 {
		t.Errorf("numBuckets = %d, want %d", numBuckets, len(BucketBoundsNs)+1)
	}
	for i := 1; i < len(BucketBoundsNs); i++ {
		if BucketBoundsNs[i] <= BucketBoundsNs[i-1] {
			t.Errorf("bounds not strictly increasing at %d: %d then %d",
				i, BucketBoundsNs[i-1], BucketBoundsNs[i])
		}
	}
}

// Quantile is the standard fixed-bucket linear interpolation; the table
// pins its behavior at bucket edges, across buckets, in the +Inf bucket
// and on empty input.
func TestQuantileTable(t *testing.T) {
	mk := func(samples ...int64) HistSnapshot {
		s := HistSnapshot{Name: "t", Counts: make([]int64, numBuckets)}
		for _, ns := range samples {
			s.Counts[bucketIndex(ns)]++
			s.SumNs += ns
			s.Count++
		}
		return s
	}
	cases := []struct {
		name string
		snap HistSnapshot
		q    float64
		want int64
	}{
		{"empty", mk(), 0.5, 0},
		{"q zero", mk(1500), 0, 0},
		// Four samples in the (1µs, 2µs] bucket: median interpolates to
		// the bucket midpoint, q=1 reaches the upper bound.
		{"median mid-bucket", mk(1500, 1500, 1500, 1500), 0.5, 1500},
		{"q1 upper bound", mk(1500, 1500, 1500, 1500), 1.0, 2000},
		{"q above 1 clamps", mk(1500, 1500, 1500, 1500), 2.0, 2000},
		// One sample per bucket across (0,1µs] and (1µs,2µs]: p50 is the
		// top of the first bucket, p90 interpolates 80% into the second.
		{"two buckets p50", mk(500, 1500), 0.5, 1000},
		{"two buckets p90", mk(500, 1500), 0.9, 1800},
		// Overflow samples clamp to the largest finite bound.
		{"inf clamps", mk(20_000_000_000), 0.99, 10_000_000_000},
		// Mixed: 9 fast samples, 1 overflow — p99 lands in +Inf.
		{"tail in inf", mk(500, 500, 500, 500, 500, 500, 500, 500, 500, 20_000_000_000),
			0.99, 10_000_000_000},
	}
	for _, c := range cases {
		if got := c.snap.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", c.name, c.q, got, c.want)
		}
	}

	s := mk(1500, 1500, 1500, 1500)
	if s.P50() != 1500 || s.P90() != s.Quantile(0.9) || s.P99() != s.Quantile(0.99) {
		t.Errorf("P50/P90/P99 disagree with Quantile: %d %d %d", s.P50(), s.P90(), s.P99())
	}
}

// Observe through the recorder: negative durations clamp to zero, the sum
// and count track, and Histograms() returns name-sorted snapshots.
func TestRecorderObserve(t *testing.T) {
	r := New()
	r.Observe("b.later", time.Millisecond)
	r.Observe("a.first", 5*time.Microsecond)
	r.Observe("a.first", -time.Second) // clamps to 0
	hs := r.Histograms()
	if len(hs) != 2 || hs[0].Name != "a.first" || hs[1].Name != "b.later" {
		t.Fatalf("histograms = %+v", hs)
	}
	a := hs[0]
	if a.Count != 2 || a.SumNs != 5_000 {
		t.Errorf("a.first count=%d sum=%d", a.Count, a.SumNs)
	}
	if a.Counts[0] != 1 { // the clamped-to-0 sample
		t.Errorf("clamped sample not in first bucket: %v", a.Counts)
	}
	if _, ok := r.Histogram("absent"); ok {
		t.Error("absent histogram reported present")
	}
}
