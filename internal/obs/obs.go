// Package obs is the compiler's zero-dependency telemetry subsystem: a
// low-overhead event collector with spans (hierarchical timed regions),
// sharded atomic counters, fixed-bucket latency histograms, and structured
// events in a bounded lock-free ring buffer. The pipeline opens a span per
// phase, the property analysis emits one event per query propagation step
// (at Debug level), the dependence tests record which test fired per array,
// and the simulated machine records per-loop execution time — all into one
// Recorder whose stream drives the `-explain` decision log, the `-metrics`
// JSON document, the `-trace` raw dump, the Chrome trace export and the
// irrd Prometheus endpoint.
//
// The recorder is built to stay on in production:
//
//   - Counters are sharded across cache-line-padded atomic slots, so
//     concurrent writers (irrd request handlers, the batch worker pool)
//     never contend on one mutex.
//   - Events go into a fixed-capacity multi-producer ring buffer. Overflow
//     overwrites the oldest events and counts them (obs.events.dropped) —
//     a long-running server cannot grow an unbounded event slice.
//   - Latency observations land in fixed-bucket histograms (1-2-5 decades,
//     1µs..10s) with p50/p90/p99 derivation on snapshot.
//   - Two detail levels: LevelInfo (the always-on production default:
//     spans, verdicts, counters, histograms) and LevelDebug (adds the
//     per-node query propagation steps behind -explain, which inherently
//     cost formatting work per HCG node visited).
//
// Every method is nil-safe: a disabled (*Recorder)(nil) costs one branch,
// so the compiler threads an optional recorder through its hot paths
// without measurable overhead — and zero allocations — when telemetry is
// off. Call sites that build expensive field values (node labels, section
// strings) should still guard with Enabled() / DebugEnabled() so the
// formatting work is skipped entirely.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Field is one key/value attribute of an event.
type Field struct {
	K string `json:"k"`
	V string `json:"v"`
}

// F builds a string field.
func F(k, v string) Field { return Field{K: k, V: v} }

// Fi builds an integer field.
func Fi(k string, v int64) Field { return Field{K: k, V: strconv.FormatInt(v, 10)} }

// Fb builds a boolean field.
func Fb(k string, v bool) Field { return Field{K: k, V: strconv.FormatBool(v)} }

// Event is one structured telemetry event. Span boundaries appear as
// "<kind>.begin" / "<kind>.end" pairs; the end event carries the span's
// duration. Depth is the span-nesting depth at emission time, which lets
// consumers rebuild the hierarchy from the flat stream.
type Event struct {
	Seq    int     `json:"seq"`
	TNs    int64   `json:"t_ns"`
	Kind   string  `json:"kind"`
	Depth  int     `json:"depth"`
	DurNs  int64   `json:"dur_ns,omitempty"`
	Fields []Field `json:"fields,omitempty"`
}

// Get returns the value of the named field ("" when absent).
func (e *Event) Get(key string) string {
	for _, f := range e.Fields {
		if f.K == key {
			return f.V
		}
	}
	return ""
}

func (e *Event) String() string {
	s := fmt.Sprintf("%10.3fms %*s%s", float64(e.TNs)/1e6, 2*e.Depth, "", e.Kind)
	for _, f := range e.Fields {
		s += fmt.Sprintf(" %s=%s", f.K, f.V)
	}
	if e.DurNs > 0 {
		s += fmt.Sprintf(" dur=%v", time.Duration(e.DurNs).Round(time.Microsecond))
	}
	return s
}

// Level selects how much detail a recorder collects.
type Level int32

// Detail levels.
const (
	// LevelInfo is the always-on production level: spans, verdict events,
	// counters and histograms. Per-node propagation steps are skipped, so
	// the enabled-path overhead stays within the production budget.
	LevelInfo Level = iota
	// LevelDebug additionally records the per-node query propagation steps
	// and cache/diagnosis events that drive `-explain` traces.
	LevelDebug
)

// Default ring capacities (events). A compilation at LevelInfo emits a few
// hundred events; LevelDebug traces emit one event per HCG node visited.
const (
	DefaultCapacity      = 8 << 10
	DefaultDebugCapacity = 128 << 10
)

// Config sizes a recorder.
type Config struct {
	// Level is the detail level (default LevelInfo).
	Level Level
	// Capacity bounds the event ring buffer; it is rounded up to a power
	// of two. 0 picks the default for the level.
	Capacity int
}

// Recorder collects events, counters and histograms for one compilation
// (or one serving process). The zero value is not usable; construct with
// New, NewDebug or NewWith. A nil *Recorder is a valid disabled recorder:
// every method returns immediately without allocating.
//
// All methods are safe for concurrent use. Events are totally ordered by
// Seq; under single-goroutine emission (the compiler pipeline) the stream
// is deterministic.
type Recorder struct {
	start    time.Time
	level    Level
	depth    atomic.Int32
	ring     ring
	counters counterSet
	hists    histSet
}

// New builds an enabled recorder at LevelInfo — the always-on production
// configuration.
func New() *Recorder { return NewWith(Config{}) }

// NewDebug builds a recorder at LevelDebug with a large ring: full query
// propagation traces for -explain / -trace.
func NewDebug() *Recorder { return NewWith(Config{Level: LevelDebug}) }

// NewWith builds a recorder from an explicit configuration.
func NewWith(cfg Config) *Recorder {
	capacity := cfg.Capacity
	if capacity <= 0 {
		if cfg.Level >= LevelDebug {
			capacity = DefaultDebugCapacity
		} else {
			capacity = DefaultCapacity
		}
	}
	r := &Recorder{start: time.Now(), level: cfg.Level}
	r.ring.init(capacity)
	return r
}

// Enabled reports whether the recorder collects anything. Guard expensive
// field construction with it.
func (r *Recorder) Enabled() bool { return r != nil }

// DebugEnabled reports whether the recorder collects Debug-level detail
// (per-node propagation steps, cache events, diagnosis replays). Hot paths
// must guard their per-node formatting with it.
func (r *Recorder) DebugEnabled() bool { return r != nil && r.level >= LevelDebug }

// Event appends one event at the current span depth. When the ring is
// full, the oldest event is overwritten (and counted as dropped).
func (r *Recorder) Event(kind string, fields ...Field) {
	if r == nil {
		return
	}
	r.emit(kind, 0, fields)
}

// emit pushes an event into the ring. fields is retained.
func (r *Recorder) emit(kind string, dur time.Duration, fields []Field) {
	r.ring.put(&Event{
		TNs:    int64(time.Since(r.start)),
		Kind:   kind,
		Depth:  int(r.depth.Load()),
		DurNs:  int64(dur),
		Fields: fields,
	})
}

// Count adds delta to a named counter. Writes are striped over sharded
// atomic slots; no lock is taken.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.counters.add(name, delta)
}

// Counter reads one counter (the sum over its shards).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.counters.get(name)
}

// Counters returns a snapshot of all counters, including the ring
// bookkeeping pair obs.events.emitted / obs.events.dropped when any event
// was recorded.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	out := r.counters.snapshot()
	if emitted, dropped := r.ring.stats(); emitted > 0 {
		if out == nil {
			out = map[string]int64{}
		}
		out["obs.events.emitted"] = emitted
		out["obs.events.dropped"] = dropped
	}
	return out
}

// CounterNames returns the counter names in sorted order.
func (r *Recorder) CounterNames() []string {
	if r == nil {
		return nil
	}
	snap := r.Counters()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Observe records one latency sample into the named fixed-bucket
// histogram. Names may carry a single label using the "base:key=value"
// convention (e.g. "phase.duration:phase=parse"), which the Prometheus
// renderer turns into a real label.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.hists.observe(name, int64(d))
}

// Histogram returns a snapshot of one histogram.
func (r *Recorder) Histogram(name string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	return r.hists.get(name)
}

// Histograms returns snapshots of every histogram, sorted by name.
func (r *Recorder) Histograms() []HistSnapshot {
	if r == nil {
		return nil
	}
	return r.hists.snapshot()
}

// Events returns a snapshot of the event stream in emission order: the
// most recent (up to) Capacity events. Earlier events overwritten by ring
// wrap-around are gone — EventStats reports how many.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.ring.snapshot()
}

// EventStats reports the total number of events emitted over the
// recorder's lifetime, how many were dropped (overwritten by wrap-around),
// and the ring capacity. emitted - dropped events are retrievable.
func (r *Recorder) EventStats() (emitted, dropped, capacity int64) {
	if r == nil {
		return 0, 0, 0
	}
	emitted, dropped = r.ring.stats()
	return emitted, dropped, int64(len(r.ring.slots))
}

// Absorb folds src's counters and histograms into r: counters add, and
// histogram buckets merge. Events are not transferred (they belong to
// src's own trace). The irrd server absorbs every finished request's
// compilation recorder into its process-wide recorder, so /metrics
// aggregates per-phase and per-query-kind latency across requests.
func (r *Recorder) Absorb(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	for name, v := range src.counters.snapshot() {
		if v != 0 {
			r.counters.add(name, v)
		}
	}
	r.hists.absorb(&src.hists)
}

// Span is one open hierarchical timed region. A nil *Span (from a disabled
// recorder) is valid: End is a no-op.
type Span struct {
	r     *Recorder
	kind  string
	start time.Time
}

// StartSpan opens a timed region: a "<kind>.begin" event is emitted and
// subsequent events nest one level deeper until End.
func (r *Recorder) StartSpan(kind string, fields ...Field) *Span {
	if r == nil {
		return nil
	}
	r.emit(kind+".begin", 0, fields)
	r.depth.Add(1)
	return &Span{r: r, kind: kind, start: time.Now()}
}

// End closes the region, emitting a "<kind>.end" event carrying the span's
// duration, and returns that duration. End stays safe when the ring
// wrapped mid-span and the matching begin event was overwritten: the end
// event is emitted regardless, and stream consumers (the span-tree
// builder) ignore end events whose begin is gone.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if depth := s.r.depth.Add(-1); depth < 0 {
		s.r.depth.Add(1) // unbalanced End; keep depth non-negative
	}
	s.r.emit(s.kind+".end", d, nil)
	return d
}
