// Package obs is the compiler's zero-dependency telemetry subsystem: a
// low-overhead event collector with spans (hierarchical timed regions),
// counters, and structured events. The pipeline opens a span per phase, the
// property analysis emits one event per query propagation step, the
// dependence tests record which test fired per array, and the simulated
// machine records per-loop execution time — all into one Recorder whose
// stream drives the `-explain` decision log, the `-metrics` JSON document
// and the `-trace` raw dump.
//
// Every method is nil-safe: a disabled (*Recorder)(nil) costs one branch,
// so the compiler threads an optional recorder through its hot paths
// without measurable overhead when telemetry is off. Call sites that build
// expensive field values (node labels, section strings) should still guard
// with Enabled() so the formatting work is skipped entirely.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Field is one key/value attribute of an event.
type Field struct {
	K string `json:"k"`
	V string `json:"v"`
}

// F builds a string field.
func F(k, v string) Field { return Field{K: k, V: v} }

// Fi builds an integer field.
func Fi(k string, v int64) Field { return Field{K: k, V: strconv.FormatInt(v, 10)} }

// Fb builds a boolean field.
func Fb(k string, v bool) Field { return Field{K: k, V: strconv.FormatBool(v)} }

// Event is one structured telemetry event. Span boundaries appear as
// "<kind>.begin" / "<kind>.end" pairs; the end event carries the span's
// duration. Depth is the span-nesting depth at emission time, which lets
// consumers rebuild the hierarchy from the flat stream.
type Event struct {
	Seq    int     `json:"seq"`
	TNs    int64   `json:"t_ns"`
	Kind   string  `json:"kind"`
	Depth  int     `json:"depth"`
	DurNs  int64   `json:"dur_ns,omitempty"`
	Fields []Field `json:"fields,omitempty"`
}

// Get returns the value of the named field ("" when absent).
func (e *Event) Get(key string) string {
	for _, f := range e.Fields {
		if f.K == key {
			return f.V
		}
	}
	return ""
}

func (e *Event) String() string {
	s := fmt.Sprintf("%10.3fms %*s%s", float64(e.TNs)/1e6, 2*e.Depth, "", e.Kind)
	for _, f := range e.Fields {
		s += fmt.Sprintf(" %s=%s", f.K, f.V)
	}
	if e.DurNs > 0 {
		s += fmt.Sprintf(" dur=%v", time.Duration(e.DurNs).Round(time.Microsecond))
	}
	return s
}

// Recorder collects events and counters for one compilation (or run). The
// zero value is not usable; construct with New. A nil *Recorder is a valid
// disabled recorder: every method returns immediately.
type Recorder struct {
	mu       sync.Mutex
	start    time.Time
	depth    int
	events   []Event
	counters map[string]int64
}

// New builds an enabled recorder.
func New() *Recorder {
	return &Recorder{start: time.Now(), counters: map[string]int64{}}
}

// Enabled reports whether the recorder collects anything. Guard expensive
// field construction with it.
func (r *Recorder) Enabled() bool { return r != nil }

// Event appends one event at the current span depth.
func (r *Recorder) Event(kind string, fields ...Field) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.emit(kind, 0, fields)
	r.mu.Unlock()
}

// emit appends an event; callers hold r.mu.
func (r *Recorder) emit(kind string, dur time.Duration, fields []Field) {
	r.events = append(r.events, Event{
		Seq:    len(r.events),
		TNs:    int64(time.Since(r.start)),
		Kind:   kind,
		Depth:  r.depth,
		DurNs:  int64(dur),
		Fields: fields,
	})
}

// Count adds delta to a named counter.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter reads one counter.
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a copy of all counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// CounterNames returns the counter names in sorted order.
func (r *Recorder) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Events returns a snapshot of the event stream.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Span is one open hierarchical timed region. A nil *Span (from a disabled
// recorder) is valid: End is a no-op.
type Span struct {
	r     *Recorder
	kind  string
	start time.Time
}

// StartSpan opens a timed region: a "<kind>.begin" event is emitted and
// subsequent events nest one level deeper until End.
func (r *Recorder) StartSpan(kind string, fields ...Field) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.emit(kind+".begin", 0, fields)
	r.depth++
	r.mu.Unlock()
	return &Span{r: r, kind: kind, start: time.Now()}
}

// End closes the region, emitting a "<kind>.end" event carrying the span's
// duration, and returns that duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	if s.r.depth > 0 {
		s.r.depth--
	}
	s.r.emit(s.kind+".end", d, nil)
	s.r.mu.Unlock()
	return d
}
