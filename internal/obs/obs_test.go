package obs

import (
	"strings"
	"sync"
	"testing"
)

// A nil recorder must be safe to use everywhere: this is the disabled
// telemetry path the compiler runs with by default.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Event("x", F("k", "v"))
	r.Count("c", 3)
	sp := r.StartSpan("phase", F("name", "parse"))
	if sp != nil {
		t.Fatal("nil recorder returned a live span")
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	if r.Counter("c") != 0 || r.Counters() != nil || r.Events() != nil || r.CounterNames() != nil {
		t.Fatal("nil recorder leaked state")
	}
}

func TestSpanNestingDepth(t *testing.T) {
	r := New()
	outer := r.StartSpan("outer")
	r.Event("mid")
	inner := r.StartSpan("inner")
	r.Event("deep", Fi("n", 7), Fb("ok", true))
	inner.End()
	outer.End()

	evs := r.Events()
	want := []struct {
		kind  string
		depth int
	}{
		{"outer.begin", 0},
		{"mid", 1},
		{"inner.begin", 1},
		{"deep", 2},
		{"inner.end", 1},
		{"outer.end", 0},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Depth != w.depth {
			t.Errorf("event %d: got (%s, depth %d), want (%s, depth %d)",
				i, evs[i].Kind, evs[i].Depth, w.kind, w.depth)
		}
		if evs[i].Seq != i {
			t.Errorf("event %d: seq %d", i, evs[i].Seq)
		}
	}
	if evs[4].DurNs <= 0 || evs[5].DurNs <= 0 {
		t.Errorf("span end events missing durations: %v %v", evs[4].DurNs, evs[5].DurNs)
	}
	if got := evs[3].Get("n"); got != "7" {
		t.Errorf("field n = %q", got)
	}
	if got := evs[3].Get("ok"); got != "true" {
		t.Errorf("field ok = %q", got)
	}
	if got := evs[3].Get("absent"); got != "" {
		t.Errorf("absent field = %q", got)
	}
}

func TestCounters(t *testing.T) {
	r := New()
	r.Count("a", 2)
	r.Count("a", 3)
	r.Count("b", 1)
	if got := r.Counter("a"); got != 5 {
		t.Errorf("a = %d", got)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	// Counters() is a copy.
	r.Counters()["a"] = 99
	if got := r.Counter("a"); got != 5 {
		t.Errorf("after mutating copy, a = %d", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Count("n", 1)
				r.Event("e", Fi("j", int64(j)))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 800 {
		t.Errorf("n = %d", got)
	}
	if got := len(r.Events()); got != 800 {
		t.Errorf("events = %d", got)
	}
}

func TestWriteTrace(t *testing.T) {
	r := New()
	sp := r.StartSpan("phase", F("name", "parse"))
	r.Event("note", F("k", "v"))
	sp.End()
	var sb strings.Builder
	if err := WriteTrace(&sb, r.Events()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"phase.begin name=parse", "note k=v", "phase.end"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
