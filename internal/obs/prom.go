package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Recorder in the Prometheus text exposition format
// (version 0.0.4) — the always-on scrape surface of irrd — and provides a
// minimal parser for validating that output in tests and smoke checks
// without external dependencies.
//
// Naming: internal metric names are dotted ("property.queries") and may
// carry one label with the "base:key=value" convention
// ("irrd_request_duration:endpoint=compile"). The renderer sanitizes the
// base into a Prometheus identifier and emits the label properly, so
// metrics with the same base but different label values form one family
// under a single # TYPE header. Names ending in "_total" are typed
// counter, everything else gauge; histograms are rendered with the
// conventional _seconds unit (converted from the internal nanoseconds),
// cumulative _bucket series, _sum and _count.

// ContentType is the exposition format media type for HTTP responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// labelPair is one parsed label of an internal metric name.
type labelPair struct{ k, v string }

// promName splits an internal name into the sanitized metric base name
// and its label pairs. Labels follow "base:k1=v1,k2=v2" (values must not
// contain ',' or '='); the legacy "base:value" form labels the value as
// kind.
func promName(name string) (base string, labels []labelPair) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		tail := name[i+1:]
		name = name[:i]
		if strings.IndexByte(tail, '=') < 0 {
			// Legacy "base:value" names label the value as kind.
			labels = []labelPair{{"kind", tail}}
		} else {
			for _, part := range strings.Split(tail, ",") {
				if j := strings.IndexByte(part, '='); j >= 0 {
					labels = append(labels, labelPair{sanitize(part[:j]), part[j+1:]})
				} else {
					labels = append(labels, labelPair{"kind", part})
				}
			}
		}
	}
	return sanitize(name), labels
}

// renderLabels formats pairs (plus any extras) as a {k="v",...} block, or
// "" with no labels at all.
func renderLabels(pairs []labelPair, extra ...labelPair) string {
	all := append(append([]labelPair(nil), pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, escapeLabel(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// sanitize maps a name onto the Prometheus identifier alphabet
// [a-zA-Z_][a-zA-Z0-9_]*.
func sanitize(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// series is one sample of a family.
type series struct {
	labels string // rendered {k="v"} or ""
	value  string
}

// family groups samples that share a base name.
type family struct {
	typ    string // counter | gauge | histogram
	series []series
}

// WritePrometheus renders the recorder's counters and histograms. It is
// nil-safe (writes nothing for a nil recorder) and deterministic: families
// and series are sorted by name.
func WritePrometheus(w io.Writer, r *Recorder) error {
	if r == nil {
		return nil
	}
	fams := map[string]*family{}
	add := func(base, typ string, s series) {
		f := fams[base]
		if f == nil {
			f = &family{typ: typ}
			fams[base] = f
		}
		f.series = append(f.series, s)
	}

	for name, v := range r.Counters() {
		base, pairs := promName(name)
		typ := "gauge"
		if strings.HasSuffix(base, "_total") {
			typ = "counter"
		}
		add(base, typ, series{labels: renderLabels(pairs), value: strconv.FormatInt(v, 10)})
	}

	for _, h := range r.Histograms() {
		base, pairs := promName(h.Name)
		if !strings.HasSuffix(base, "_seconds") {
			base += "_seconds"
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(BucketBoundsNs) {
				le = formatSeconds(float64(BucketBoundsNs[i]) / 1e9)
			}
			labels := renderLabels(pairs, labelPair{"le", le})
			add(base+"_bucket", "", series{labels: labels, value: strconv.FormatInt(cum, 10)})
		}
		sumLabels := renderLabels(pairs)
		add(base+"_sum", "", series{labels: sumLabels, value: formatSeconds(float64(h.SumNs) / 1e9)})
		add(base+"_count", "", series{labels: sumLabels, value: strconv.FormatInt(cum, 10)})
		// The TYPE line belongs to the base family name.
		if f := fams[base]; f == nil {
			fams[base] = &family{typ: "histogram"}
		} else {
			f.typ = "histogram"
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.typ != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
				return err
			}
		}
		// Bucket series are appended in ascending-bound order per label value
		// (+Inf last, the conventional layout); a lexical sort would put
		// "+Inf" first. Counter/gauge series come from a map and need the
		// sort for deterministic output.
		if !strings.HasSuffix(name, "_bucket") {
			sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		}
		for _, s := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatSeconds renders a float without exponent noise for common
// magnitudes ("0.005", "1", "2.5").
func formatSeconds(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	return s
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheus is a minimal exposition-format parser: enough to
// validate that a /metrics payload is well-formed (names, label syntax,
// float values) and to look samples up in tests. It rejects malformed
// lines rather than guessing. Comment and # TYPE/HELP lines are checked
// for shape and skipped.
func ParsePrometheus(text string) ([]PromSample, error) {
	var out []PromSample
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if len(fields) < 3 {
					return nil, fmt.Errorf("line %d: malformed %s comment", ln+1, fields[1])
				}
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, sample)
	}
	return out, nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	// Metric name.
	i := 0
	for i < len(rest) {
		c := rest[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name in %q", line)
	}
	s.Name, rest = rest[:i], rest[i:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitLabels(body) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			key := strings.TrimSpace(pair[:eq])
			val := strings.TrimSpace(pair[eq+1:])
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				return s, fmt.Errorf("unquoted label value %q", pair)
			}
			unq := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(val[1 : len(val)-1])
			s.Labels[key] = unq
		}
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// A timestamp may follow the value; we accept and ignore it.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// splitLabels splits a label-set body on commas outside quotes.
func splitLabels(body string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(body[start:]) != "" {
		parts = append(parts, body[start:])
	}
	return parts
}
