package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := []struct {
		in     string
		base   string
		labels string // rendered form
	}{
		{"property.queries", "property_queries", ""},
		{"irrd_requests_total", "irrd_requests_total", ""},
		{"irrd_request_duration:endpoint=compile", "irrd_request_duration", `{endpoint="compile"}`},
		{"irrd_errors_total:kind=parse", "irrd_errors_total", `{kind="parse"}`},
		{"deptest.verdict:gather", "deptest_verdict", `{kind="gather"}`}, // legacy base:value
		{"irrgw_requests_total:backend=127.0.0.1:9001,outcome=ok", "irrgw_requests_total",
			`{backend="127.0.0.1:9001",outcome="ok"}`}, // multi-label
		{"9starts.with.digit", "_9starts_with_digit", ""},
		{"", "_", ""},
	}
	for _, c := range cases {
		base, pairs := promName(c.in)
		if labels := renderLabels(pairs); base != c.base || labels != c.labels {
			t.Errorf("promName(%q) = (%q, %q), want (%q, %q)",
				c.in, base, labels, c.base, c.labels)
		}
	}
}

// Multi-label counters ("name:k1=v1,k2=v2") render as one series with both
// labels and survive the exposition round trip.
func TestPrometheusMultiLabel(t *testing.T) {
	r := New()
	r.Count("irrgw_requests_total:backend=b1,outcome=ok", 3)
	r.Count("irrgw_requests_total:backend=b2,outcome=network_error", 1)
	r.Observe("irrgw_route_duration:endpoint=compile,outcome=ok", 5*time.Millisecond)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(sb.String())
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, sb.String())
	}
	found := false
	for _, s := range samples {
		if s.Name == "irrgw_requests_total" && s.Labels["backend"] == "b1" {
			found = true
			if s.Labels["outcome"] != "ok" || s.Value != 3 {
				t.Errorf("sample = %+v", s)
			}
		}
		if s.Name == "irrgw_route_duration_seconds_bucket" && s.Labels["endpoint"] == "compile" {
			if s.Labels["outcome"] != "ok" || s.Labels["le"] == "" {
				t.Errorf("histogram bucket labels = %v", s.Labels)
			}
		}
	}
	if !found {
		t.Errorf("no multi-label counter sample in:\n%s", sb.String())
	}
}

// WritePrometheus output must parse with ParsePrometheus (the same check
// CI runs against the live /metrics endpoint) and carry the samples put in.
func TestPrometheusRoundTrip(t *testing.T) {
	r := New()
	r.Count("irrd_requests_total", 7)
	r.Count("irrd_requests_total:endpoint=compile", 4)
	r.Count("irrd_requests_total:endpoint=lint", 3)
	r.Count("irrd_inflight", 2)
	r.Observe("irrd_request_duration:endpoint=compile", 1500*time.Microsecond)
	r.Observe("irrd_request_duration:endpoint=compile", 3*time.Millisecond)
	r.Event("just.to.get.ring.stats")

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	samples, err := ParsePrometheus(text)
	if err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, text)
	}
	get := func(name string, labels map[string]string) (float64, bool) {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match && len(s.Labels) == len(labels) {
				return s.Value, true
			}
		}
		return 0, false
	}

	if v, ok := get("irrd_requests_total", nil); !ok || v != 7 {
		t.Errorf("irrd_requests_total = %v (ok=%v)", v, ok)
	}
	if v, ok := get("irrd_requests_total", map[string]string{"endpoint": "compile"}); !ok || v != 4 {
		t.Errorf("irrd_requests_total{endpoint=compile} = %v (ok=%v)", v, ok)
	}
	if v, ok := get("obs_events_emitted", nil); !ok || v != 1 {
		t.Errorf("obs_events_emitted = %v (ok=%v)", v, ok)
	}
	// Histogram: _count and _sum in seconds, cumulative buckets ending +Inf.
	lbl := map[string]string{"endpoint": "compile"}
	if v, ok := get("irrd_request_duration_seconds_count", lbl); !ok || v != 2 {
		t.Errorf("_count = %v (ok=%v)", v, ok)
	}
	if v, ok := get("irrd_request_duration_seconds_sum", lbl); !ok || v != 0.0045 {
		t.Errorf("_sum = %v (ok=%v)", v, ok)
	}
	if v, ok := get("irrd_request_duration_seconds_bucket",
		map[string]string{"endpoint": "compile", "le": "+Inf"}); !ok || v != 2 {
		t.Errorf("+Inf bucket = %v (ok=%v)", v, ok)
	}
	// 1500µs lands in le=0.002; the 3ms sample joins at le=0.005.
	if v, ok := get("irrd_request_duration_seconds_bucket",
		map[string]string{"endpoint": "compile", "le": "0.002"}); !ok || v != 1 {
		t.Errorf("le=0.002 bucket = %v (ok=%v)", v, ok)
	}
	if v, ok := get("irrd_request_duration_seconds_bucket",
		map[string]string{"endpoint": "compile", "le": "0.005"}); !ok || v != 2 {
		t.Errorf("le=0.005 bucket = %v (ok=%v)", v, ok)
	}

	// TYPE lines: counter for _total, gauge otherwise, histogram families.
	for _, want := range []string{
		"# TYPE irrd_requests_total counter",
		"# TYPE irrd_inflight gauge",
		"# TYPE irrd_request_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}

	// Bucket series must be in ascending-bound order with +Inf last.
	var lastBucket string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "irrd_request_duration_seconds_bucket") {
			lastBucket = line
		}
	}
	if !strings.Contains(lastBucket, `le="+Inf"`) {
		t.Errorf("last bucket line is not +Inf: %q", lastBucket)
	}
}

// Determinism: two renders of the same recorder are byte-identical.
func TestPrometheusDeterministic(t *testing.T) {
	r := New()
	for i, name := range []string{"z_total", "a_gauge", "m:kind=x", "m:kind=y"} {
		r.Count(name, int64(i+1))
	}
	r.Observe("lat:endpoint=a", time.Millisecond)
	r.Observe("lat:endpoint=b", time.Millisecond)
	var one, two strings.Builder
	if err := WritePrometheus(&one, r); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&two, r); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Errorf("renders differ:\n%s\n---\n%s", one.String(), two.String())
	}
}

// WritePrometheus on a nil recorder writes nothing; the parser rejects the
// malformed lines a naive renderer could produce.
func TestPrometheusEdges(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, nil); err != nil || sb.Len() != 0 {
		t.Errorf("nil recorder: err=%v out=%q", err, sb.String())
	}
	for _, bad := range []string{
		"{no_name} 1",
		"metric_without_value",
		"metric{unterminated 1",
		`metric{k=unquoted} 1`,
		"metric not_a_number",
	} {
		if _, err := ParsePrometheus(bad); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted malformed input", bad)
		}
	}
	// Escaped label values survive the round trip.
	samples, err := ParsePrometheus(`m{k="a\"b\\c"} 1`)
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Labels["k"] != `a"b\c` {
		t.Errorf("unescaped label = %q", samples[0].Labels["k"])
	}
}
