package obs

import (
	"sort"
	"sync/atomic"
)

// ring is a bounded multi-producer event buffer. Producers claim a ticket
// with one atomic add and publish a fully-built *Event into their slot
// with one atomic pointer store — no locks, no unbounded growth. When
// producers lap the ring, old slots are overwritten: the newest Capacity
// events win, and the overwritten remainder is reported as dropped.
//
// There is no consumer; snapshot() reads the slots concurrently with
// producers, which is safe because slots hold immutable *Event values
// behind atomic pointers. A snapshot taken during concurrent emission is a
// consistent set of fully-written events, ordered by Seq, though it may
// transiently miss a just-claimed ticket whose store has not landed yet.
type ring struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	tail  atomic.Uint64 // next ticket; total emitted over the lifetime
}

// init sizes the ring to capacity rounded up to a power of two.
func (r *ring) init(capacity int) {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r.slots = make([]atomic.Pointer[Event], n)
	r.mask = uint64(n - 1)
}

// put claims the next ticket and publishes e (assigning its Seq). e must
// not be mutated afterwards.
func (r *ring) put(e *Event) {
	t := r.tail.Add(1) - 1
	e.Seq = int(t)
	r.slots[t&r.mask].Store(e)
}

// stats returns the lifetime emission count and how many events have been
// overwritten by wrap-around.
func (r *ring) stats() (emitted, dropped int64) {
	emitted = int64(r.tail.Load())
	if n := int64(len(r.slots)); emitted > n {
		dropped = emitted - n
	}
	return emitted, dropped
}

// snapshot returns the surviving events in Seq order.
func (r *ring) snapshot() []Event {
	if len(r.slots) == 0 {
		return nil
	}
	tail := r.tail.Load()
	if tail == 0 {
		return nil
	}
	out := make([]Event, 0, min(uint64(len(r.slots)), tail))
	floor := int64(tail) - int64(len(r.slots)) // oldest Seq still in window
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil && int64(e.Seq) >= floor {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
