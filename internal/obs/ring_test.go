package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// A full ring overwrites the oldest events and reports them dropped; the
// surviving window is exactly the newest Capacity events in Seq order.
func TestRingDropsOldest(t *testing.T) {
	const capacity = 16
	r := NewWith(Config{Capacity: capacity})
	const total = 3*capacity + 5
	for i := 0; i < total; i++ {
		r.Event("e", Fi("i", int64(i)))
	}

	emitted, dropped, cap_ := r.EventStats()
	if emitted != total {
		t.Errorf("emitted = %d, want %d", emitted, total)
	}
	if dropped != total-capacity {
		t.Errorf("dropped = %d, want %d", dropped, total-capacity)
	}
	if cap_ != capacity {
		t.Errorf("capacity = %d, want %d", cap_, capacity)
	}

	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("got %d surviving events, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		if want := total - capacity + i; e.Seq != want {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, want)
		}
	}

	// The bookkeeping pair shows up in the counter snapshot.
	cs := r.Counters()
	if cs["obs.events.emitted"] != total || cs["obs.events.dropped"] != total-capacity {
		t.Errorf("counters = emitted %d dropped %d", cs["obs.events.emitted"], cs["obs.events.dropped"])
	}
}

// Capacity rounds up to a power of two; a fresh recorder reports nothing.
func TestRingCapacityRounding(t *testing.T) {
	r := NewWith(Config{Capacity: 9})
	if _, _, c := r.EventStats(); c != 16 {
		t.Errorf("capacity = %d, want 16", c)
	}
	if evs := r.Events(); evs != nil {
		t.Errorf("fresh recorder has events: %v", evs)
	}
	if e, d, _ := r.EventStats(); e != 0 || d != 0 {
		t.Errorf("fresh stats = %d emitted, %d dropped", e, d)
	}
}

// Ending a span whose begin was overwritten by wrap-around must stay safe,
// and the Chrome exporter must skip the unbalanced end.
func TestSpanEndSafeUnderWrap(t *testing.T) {
	r := NewWith(Config{Capacity: 8})
	sp := r.StartSpan("outer")
	for i := 0; i < 64; i++ { // lap the ring; outer.begin is long gone
		r.Event("filler")
	}
	if d := sp.End(); d < 0 {
		t.Fatalf("span duration %v", d)
	}
	evs := r.Events()
	if len(evs) == 0 || evs[len(evs)-1].Kind != "outer.end" {
		t.Fatalf("last event %+v, want outer.end", evs[len(evs)-1])
	}
	// An extra unbalanced End must not drive the depth negative.
	sp.End()
	r.Event("after")
	evs = r.Events()
	if last := evs[len(evs)-1]; last.Depth < 0 {
		t.Errorf("depth went negative: %+v", last)
	}
}

// Many producers hammer the ring, counters and histograms while a reader
// snapshots concurrently. Run under -race this is the MPSC safety proof;
// the assertions check no event is lost or torn.
func TestRingConcurrentStress(t *testing.T) {
	const (
		writers   = 8
		perWriter = 2000
		capacity  = 1 << 10
	)
	r := NewWith(Config{Capacity: capacity})

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Events() {
				if e.Kind == "" {
					t.Error("torn event: empty kind")
					return
				}
			}
			r.Counters()
			r.Histograms()
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			kind := fmt.Sprintf("w%d", w)
			for i := 0; i < perWriter; i++ {
				r.Event(kind, Fi("i", int64(i)))
				r.Count("stress.total", 1)
				r.Observe("stress.duration", time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	reader.Wait()

	emitted, dropped, _ := r.EventStats()
	if emitted != writers*perWriter {
		t.Errorf("emitted = %d, want %d", emitted, writers*perWriter)
	}
	if want := int64(writers*perWriter - capacity); dropped != want {
		t.Errorf("dropped = %d, want %d", dropped, want)
	}
	if got := r.Counter("stress.total"); got != writers*perWriter {
		t.Errorf("stress.total = %d, want %d", got, writers*perWriter)
	}
	h, ok := r.Histogram("stress.duration")
	if !ok || h.Count != writers*perWriter {
		t.Errorf("stress.duration count = %d (ok=%v), want %d", h.Count, ok, writers*perWriter)
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Errorf("surviving events = %d, want %d", len(evs), capacity)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not Seq-ordered at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// Absorb folds counters and histogram buckets but not events.
func TestAbsorb(t *testing.T) {
	dst, src := New(), New()
	dst.Count("c", 1)
	src.Count("c", 2)
	src.Count("only.src", 5)
	src.Observe("h", 1500) // bucket (1µs, 2µs]
	src.Observe("h", 1500)
	src.Event("not.transferred")

	dst.Absorb(src)
	if got := dst.Counter("c"); got != 3 {
		t.Errorf("c = %d", got)
	}
	if got := dst.Counter("only.src"); got != 5 {
		t.Errorf("only.src = %d", got)
	}
	h, ok := dst.Histogram("h")
	if !ok || h.Count != 2 || h.SumNs != 3000 {
		t.Errorf("h = %+v (ok=%v)", h, ok)
	}
	if evs := dst.Events(); len(evs) != 0 {
		t.Errorf("events transferred: %v", evs)
	}
	// Absorbing again accumulates; nil operands are no-ops.
	dst.Absorb(src)
	if got := dst.Counter("c"); got != 5 {
		t.Errorf("after second absorb, c = %d", got)
	}
	dst.Absorb(nil)
	(*Recorder)(nil).Absorb(src)
}
