package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteTrace dumps an event stream as text, one event per line, indented by
// span depth. This is the raw view behind `irrview -trace`.
func WriteTrace(w io.Writer, events []Event) error {
	for i := range events {
		if _, err := fmt.Fprintln(w, events[i].String()); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (the "JSON Array Format" loadable by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
	S    string            `json:"s,omitempty"` // instant scope
}

// WriteChromeTrace renders an event stream in the Chrome trace-event JSON
// array format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Span begin/end pairs become duration ("B"/"E") events; standalone events
// become thread-scoped instants ("i"). Timestamps are the recorder-relative
// nanosecond stamps converted to microseconds. End events whose begin was
// overwritten by ring wrap-around are dropped rather than emitting an
// unbalanced "E" that would corrupt the nesting.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	var stack []string // open span kinds, for wrap-tolerant matching
	for i := range events {
		e := &events[i]
		switch {
		case strings.HasSuffix(e.Kind, ".begin"):
			name := strings.TrimSuffix(e.Kind, ".begin")
			stack = append(stack, name)
			out = append(out, chromeEvent{
				Name: name, Ph: "B", Ts: float64(e.TNs) / 1e3,
				Pid: 1, Tid: 1, Args: fieldArgs(e),
			})
		case strings.HasSuffix(e.Kind, ".end"):
			name := strings.TrimSuffix(e.Kind, ".end")
			if len(stack) == 0 || stack[len(stack)-1] != name {
				continue // begin lost to wrap-around; skip the unbalanced end
			}
			stack = stack[:len(stack)-1]
			out = append(out, chromeEvent{
				Name: name, Ph: "E", Ts: float64(e.TNs) / 1e3,
				Pid: 1, Tid: 1,
			})
		default:
			out = append(out, chromeEvent{
				Name: e.Kind, Ph: "i", Ts: float64(e.TNs) / 1e3,
				Pid: 1, Tid: 1, Args: fieldArgs(e), S: "t",
			})
		}
	}
	// Close any spans left open at snapshot time so the JSON is balanced.
	for i := len(stack) - 1; i >= 0; i-- {
		ts := 0.0
		if len(events) > 0 {
			ts = float64(events[len(events)-1].TNs) / 1e3
		}
		out = append(out, chromeEvent{Name: stack[i], Ph: "E", Ts: ts, Pid: 1, Tid: 1})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func fieldArgs(e *Event) map[string]string {
	if len(e.Fields) == 0 {
		return nil
	}
	m := make(map[string]string, len(e.Fields))
	for _, f := range e.Fields {
		m[f.K] = f.V
	}
	return m
}
