package obs

import (
	"fmt"
	"io"
)

// WriteTrace dumps an event stream as text, one event per line, indented by
// span depth. This is the raw view behind `irrview -trace`.
func WriteTrace(w io.Writer, events []Event) error {
	for i := range events {
		if _, err := fmt.Fprintln(w, events[i].String()); err != nil {
			return err
		}
	}
	return nil
}
