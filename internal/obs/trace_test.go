package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// WriteChromeTrace emits the Chrome trace-event JSON array format: B/E
// pairs for spans, thread-scoped instants for events, balanced output even
// when the input is truncated by ring wrap-around.
func TestWriteChromeTrace(t *testing.T) {
	r := New()
	outer := r.StartSpan("pipeline", F("kernel", "trfd"))
	r.Event("verdict", F("loop", "L1"))
	inner := r.StartSpan("parallelize")
	inner.End()
	outer.End()

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, r.Events()); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, sb.String())
	}

	type key struct{ name, ph string }
	var got []key
	for _, e := range evs {
		got = append(got, key{e.Name, e.Ph})
	}
	want := []key{
		{"pipeline", "B"},
		{"verdict", "i"},
		{"parallelize", "B"},
		{"parallelize", "E"},
		{"pipeline", "E"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if evs[0].Args["kernel"] != "trfd" {
		t.Errorf("span args = %v", evs[0].Args)
	}
	if evs[1].S != "t" {
		t.Errorf("instant scope = %q", evs[1].S)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Ts < evs[i-1].Ts {
			t.Errorf("timestamps not monotonic at %d", i)
		}
	}
}

// An end whose begin was lost to wrap-around is skipped; spans left open at
// snapshot time are closed so the array stays balanced.
func TestWriteChromeTraceWrapTolerance(t *testing.T) {
	events := []Event{
		{Seq: 10, TNs: 1000, Kind: "lost.end"},   // begin overwritten: skip
		{Seq: 11, TNs: 2000, Kind: "open.begin"}, // never closed: synthesize E
		{Seq: 12, TNs: 3000, Kind: "note"},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatal(err)
	}
	depth := 0
	sawLost := false
	for _, e := range evs {
		switch e.Ph {
		case "B":
			depth++
		case "E":
			depth--
		}
		if depth < 0 {
			t.Fatalf("unbalanced E at %+v", e)
		}
		if e.Name == "lost" {
			sawLost = true
		}
	}
	if depth != 0 {
		t.Errorf("final depth %d, want 0 (open spans must be closed)", depth)
	}
	if sawLost {
		t.Error("unmatched end event was emitted")
	}
}
