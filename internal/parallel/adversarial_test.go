package parallel

import (
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/machine"
)

// runChecksum executes a compiled program and returns a named global (or
// an execution error).
func runChecksum(pz *Parallelizer, procs int, name string) (float64, error) {
	in := interp.New(pz.Info, interp.Options{
		Machine: machine.New(machine.Origin2000, procs),
		Poison:  true,
	})
	if err := in.Run(); err != nil {
		return 0, err
	}
	if v, err := in.GlobalReal(name); err == nil {
		return v, nil
	}
	iv, err := in.GlobalInt(name)
	return float64(iv), err
}

// assertSerialAndWrongIfForced verifies that (a) the analysis keeps the
// loop serial, and (b) the serial decision was semantically necessary: if
// the loop is force-parallelized with the tempting privatization, the
// result actually changes. This guards against the analyses being merely
// conservative by accident.
func assertSerialAndWrongIfForced(t *testing.T, src, loopVar string, private []string, checksum string) {
	t.Helper()
	pz, info := build(t, src, Full)
	rs := pz.Run()
	var report *LoopReport
	for _, r := range rs {
		if r.Loop.Var.Name == loopVar {
			report = r
			break
		}
	}
	if report == nil {
		t.Fatal("loop not found")
	}
	if report.Parallel {
		t.Fatalf("UNSOUND: loop do %s was parallelized: %+v", loopVar, report)
	}

	want, err := runChecksum(pz, 1, checksum)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	// Force the tempting (wrong) parallelization and watch it break: the
	// result must differ, poison, or trap.
	report.Loop.Parallel = true
	report.Loop.Private = private
	got, err := runChecksum(pz, 4, checksum)
	if err != nil {
		return // trapped: the rejection was clearly necessary
	}
	if !math.IsNaN(got) && math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("forcing the rejected parallelization did not change the result (%v); the rejection may be vacuous", got)
	}
	_ = info
}

func TestAdversarialConditionalReset(t *testing.T) {
	// The "stack" pointer reset is conditional: values genuinely flow
	// across iterations of do k through t().
	src := `
program condreset
  param n = 16
  param m = 24
  real t(m), a(m), out(n, m)
  integer k, j, p
  real checksum
  do j = 1, m
    a(j) = real(mod(j * 7, 9)) - 3.0
  end do
  p = 0
  do k = 1, n
    if (mod(k, 5) == 0) then
      p = 0
    end if
    do j = 1, m
      if (a(j) > 0.0) then
        p = p + 1
        t(p) = a(j) + real(k)
      else
        if (p >= 1) then
          out(k, j) = t(p)
          p = p - 1
        end if
      end if
    end do
  end do
  checksum = 0.0
  do k = 1, n
    do j = 1, m
      checksum = checksum + out(k, j)
    end do
  end do
  print "cs", checksum
end
`
	assertSerialAndWrongIfForced(t, src, "k", []string{"t", "p", "j"}, "checksum")
}

func TestAdversarialCWWithHole(t *testing.T) {
	// x() looks consecutively written, but one path skips the write: the
	// do j read then sees a stale element from the previous iteration.
	src := `
program cwhole
  param n = 12
  param m = 20
  real x(m), y(m), z(n, m)
  integer k, i, j, p
  real checksum
  do i = 1, m
    y(i) = real(mod(i * 5, 7)) - 2.0
  end do
  do k = 1, n
    p = 0
    do i = 1, m
      p = p + 1
      if (y(i) > 0.0) then
        x(p) = y(i) * real(k)
      end if
    end do
    do j = 1, p
      z(k, j) = x(j)
    end do
  end do
  checksum = 0.0
  do k = 1, n
    do j = 1, m
      checksum = checksum + z(k, j)
    end do
  end do
  print "cs", checksum
end
`
	assertSerialAndWrongIfForced(t, src, "k", []string{"x", "p", "i", "j"}, "checksum")
}

func TestAdversarialGatherCounterStride(t *testing.T) {
	// The gather counter advances by 2: ind has holes, so privatizing the
	// consumer's source array via "bounds" would read stale gaps.
	src := `
program stride2
  param n = 16
  param m = 24
  real x(m), z(n, m)
  integer ind(2 * m)
  integer k, i, j, q
  real checksum
  do k = 1, n
    do i = 1, m
      x(i) = real(mod(k + i, 5)) - 1.0
    end do
    q = 0
    do i = 1, m
      if (x(i) > 0.0) then
        q = q + 2
        ind(q) = i
      end if
    end do
    do j = 2, q
      z(k, ind(j)) = x(ind(j))
    end do
  end do
  checksum = 0.0
  do i = 1, n
    do j = 1, m
      checksum = checksum + z(i, j)
    end do
  end do
  print "cs", checksum
end
`
	pz, _ := build(t, src, Full)
	rs := pz.Run()
	for _, r := range rs {
		if r.Loop.Var.Name == "k" && r.Parallel {
			t.Fatalf("UNSOUND: stride-2 gather consumer parallelized: %+v", r)
		}
	}
}

func TestAdversarialDistancePatchedAfterUseLoopStarts(t *testing.T) {
	// pptr is consistent when defined, but iblen is enlarged afterwards:
	// the offset-length premise dist = iblen no longer matches pptr's
	// actual gaps, and blocks overlap.
	src := `
program patched
  param nblk = 10
  param smax = 200
  integer pptr(nblk + 1), iblen(nblk)
  real x(smax), b(smax)
  integer i, j
  real checksum
  do i = 1, nblk
    iblen(i) = 3
  end do
  pptr(1) = 1
  do i = 1, nblk
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  do i = 1, nblk
    iblen(i) = 5
  end do
  do i = 1, smax
    b(i) = real(mod(i, 4))
  end do
  do i = 1, nblk
    do j = 1, iblen(i)
      x(pptr(i) + j - 1) = x(pptr(i) + j - 1) + b(pptr(i) + j - 1) + real(i)
    end do
  end do
  checksum = 0.0
  do i = 1, smax
    checksum = checksum + x(i)
  end do
  print "cs", checksum
end
`
	pz, _ := build(t, src, Full)
	rs := pz.Run()
	for _, r := range rs {
		if r.Loop.Var.Name == "i" && r.Parallel {
			for arr, test := range r.Tests {
				if arr == "x" && test == "offset-length" {
					t.Fatalf("UNSOUND: offset-length fired after iblen was patched: %+v", r)
				}
			}
		}
	}
}

func TestAdversarialReductionVarAlsoAssigned(t *testing.T) {
	// s is summed AND plainly assigned in the same loop: not a reduction;
	// the loop must stay serial (final value depends on the last
	// assignment ordering).
	src := `
program sneaky
  param n = 32
  real a(n), s
  integer i
  do i = 1, n
    a(i) = real(i)
  end do
  s = 0.0
  do i = 1, n
    s = s + a(i)
    if (a(i) > 30.0) then
      s = 0.0
    end if
  end do
  print "s", s
end
`
	pz, _ := build(t, src, Full)
	rs := pz.Run()
	for _, r := range rs {
		if !r.Parallel {
			continue
		}
		for _, red := range r.Reductions {
			if red.Var == "s" {
				t.Fatalf("UNSOUND: s recognised as a reduction despite the reset: %+v", r)
			}
		}
		for _, p := range r.Private {
			if p == "s" {
				t.Fatalf("UNSOUND: s privatized despite carrying a value: %+v", r)
			}
		}
	}
}

func TestAdversarialStackReadBelowBottom(t *testing.T) {
	// The pop is unguarded: p can sink below the bottom and t(p) indexes
	// stale data (or traps). The Table 1 discipline itself passes, but
	// execution bounds-checks catch p = 0; the loop must still be treated
	// correctly: privatization may mark t, but a correct program never
	// pops an empty stack — here it does, so the runtime check fires.
	src := `
program underflow
  param n = 4
  param m = 6
  real t(m), a(m), out(n, m)
  integer k, j, p
  do j = 1, m
    a(j) = 0.0 - 1.0
  end do
  do k = 1, n
    p = 0
    do j = 1, m
      if (a(j) > 0.0) then
        p = p + 1
        t(p) = a(j)
      else
        out(k, j) = t(p)
        p = p - 1
      end if
    end do
  end do
end
`
	pz, _ := build(t, src, Full)
	pz.Run()
	in := interp.New(pz.Info, interp.Options{Machine: machine.New(machine.Origin2000, 1)})
	err := in.Run()
	if err == nil {
		t.Fatal("reading below the stack bottom must trap at run time")
	}
	if re, ok := err.(*interp.RuntimeError); !ok || re == nil {
		t.Fatalf("unexpected error type: %v", err)
	}
	_ = lang.FormatStmt
}
