// Package parallel decides which DO loops can run in parallel, combining
// the dependence tests, the privatization test and reduction recognition —
// the final stage of the paper's pipeline. Three configurations reproduce
// the three compilers of the evaluation (Fig. 16):
//
//   - Full: Polaris with irregular access analysis (the paper's system);
//   - NoIAA: Polaris without irregular access analysis (symbolic range test
//     and affine privatization only);
//   - Baseline: an affine-only auto-parallelizer standing in for the SGI
//     F77 APO baseline (GCD/affine dependence tests, scalar privatization
//     and reductions, no array privatization).
package parallel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/dataflow"
	"repro/internal/deptest"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/privatize"
	"repro/internal/sem"
)

// Mode selects the analysis configuration.
type Mode int

// Modes.
const (
	Full Mode = iota
	NoIAA
	Baseline
)

func (m Mode) String() string {
	switch m {
	case Full:
		return "polaris+iaa"
	case NoIAA:
		return "polaris"
	case Baseline:
		return "apo"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// LoopReport records the parallelization decision for one loop.
type LoopReport struct {
	Unit *lang.Unit
	Loop *lang.DoStmt
	// Name identifies the loop for reports: unit/do<var>@line.
	Name     string
	Parallel bool
	// Blockers lists why the loop stayed serial.
	Blockers []string
	// Private lists privatized arrays and scalars.
	Private []string
	// Reductions recognized for the loop.
	Reductions []lang.Reduction
	// Tests lists the dependence tests that fired, per array.
	Tests map[string]deptest.TestKind
	// Properties lists verified index-array properties used anywhere.
	Properties []string
	// PrivReasons records, per privatized array, the technique.
	PrivReasons map[string]privatize.Reason
}

// Parallelizer drives loop parallelization over a checked program.
type Parallelizer struct {
	Info *sem.Info
	Mod  *dataflow.ModInfo
	Mode Mode

	rec  *obs.Recorder
	dep  *deptest.Analyzer
	priv *privatize.Analyzer
	prop *property.Analysis
}

// New builds a Parallelizer in the given mode.
func New(info *sem.Info, mod *dataflow.ModInfo, mode Mode) *Parallelizer {
	return NewWithHCG(info, mod, mode, nil)
}

// NewWithHCG is New with a pre-built HCG (used by the pipeline, which
// builds the graphs as its own phase — possibly concurrently). A nil hp
// falls back to building the graphs here; outside Full mode hp is unused.
func NewWithHCG(info *sem.Info, mod *dataflow.ModInfo, mode Mode, hp *cfg.HProgram) *Parallelizer {
	var prop *property.Analysis
	if mode == Full {
		if hp == nil {
			hp = cfg.BuildHCG(info.Program)
		}
		prop = property.New(info, hp, mod)
	}
	p := &Parallelizer{
		Info: info, Mod: mod, Mode: mode,
		prop: prop,
		dep:  deptest.New(info, mod, prop),
		priv: privatize.New(info, mod, prop),
	}
	if mode != Full {
		p.priv.DisableSingleIndex = true
	}
	return p
}

// SetRecorder attaches a telemetry recorder (nil disables): the
// parallelizer opens one "loop" span per analyzed loop, and the recorder is
// threaded into the dependence tests and the property analysis so query
// propagation steps trace under it. Call before Run.
func (p *Parallelizer) SetRecorder(rec *obs.Recorder) {
	p.rec = rec
	p.dep.Rec = rec
	if p.prop != nil {
		p.prop.Rec = rec
	}
}

// SetGuard threads the cooperative cancellation / step-budget guard into
// the property analysis (query propagation) and the privatization test (the
// §2 bDFS runs). A nil guard is a disabled guard. Call before Run.
func (p *Parallelizer) SetGuard(g *comperr.Guard) {
	if p.prop != nil {
		p.prop.Guard = g
	}
	p.priv.Guard = g
}

// PropertyStats exposes the property-analysis counters (nil-safe).
func (p *Parallelizer) PropertyStats() *property.Stats {
	if p.prop == nil {
		return &property.Stats{}
	}
	return &p.prop.Stats
}

// Property returns the property analysis, or nil outside Full mode.
func (p *Parallelizer) Property() *property.Analysis { return p.prop }

// Run analyzes every unit, marks parallel loops in the AST (DoStmt.Parallel,
// .Private) and returns a report per analyzed loop. Outermost parallel
// loops win: loops nested inside a parallel loop are not considered.
func (p *Parallelizer) Run() []*LoopReport {
	var reports []*LoopReport
	for _, u := range p.Info.Program.Units() {
		reports = append(reports, p.runUnit(u)...)
	}
	return reports
}

func (p *Parallelizer) runUnit(u *lang.Unit) []*LoopReport {
	var reports []*LoopReport
	var visit func(stmts []lang.Stmt)
	visit = func(stmts []lang.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *lang.DoStmt:
				r := p.AnalyzeLoop(u, s)
				reports = append(reports, r)
				if r.Parallel {
					continue // outermost parallel loop wins
				}
				visit(s.Body)
			case *lang.IfStmt:
				visit(s.Then)
				for i := range s.Elifs {
					visit(s.Elifs[i].Body)
				}
				visit(s.Else)
			case *lang.WhileStmt:
				visit(s.Body)
			}
		}
	}
	visit(u.Body)
	return reports
}

// AnalyzeLoop decides one loop and annotates the AST on success.
func (p *Parallelizer) AnalyzeLoop(u *lang.Unit, loop *lang.DoStmt) *LoopReport {
	r := &LoopReport{
		Unit: u, Loop: loop,
		Name:        fmt.Sprintf("%s/do_%s@%d", u.Name, loop.Var.Name, loop.Pos().Line),
		Tests:       map[string]deptest.TestKind{},
		PrivReasons: map[string]privatize.Reason{},
	}
	if p.rec.Enabled() {
		sp := p.rec.StartSpan("loop", obs.F("name", r.Name), obs.F("unit", u.Name))
		defer func() {
			p.rec.Event("loop.verdict",
				obs.F("name", r.Name),
				obs.Fb("parallel", r.Parallel),
				obs.F("blockers", strings.Join(r.Blockers, "; ")))
			sp.End()
		}()
	}
	block := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		for _, b := range r.Blockers {
			if b == msg {
				return
			}
		}
		r.Blockers = append(r.Blockers, msg)
	}

	// Structural requirements.
	bodyMod := p.Mod.StmtsMod(u, loop.Body)
	if bodyMod.Scalars[loop.Var.Name] {
		block("loop variable %s modified in body", loop.Var.Name)
	}
	boundVarsOK := true
	for _, e := range []lang.Expr{loop.Lo, loop.Hi, loop.Step} {
		if e == nil {
			continue
		}
		lang.WalkExpr(e, func(x lang.Expr) bool {
			switch x := x.(type) {
			case *lang.Ident:
				if bodyMod.Scalars[x.Name] {
					boundVarsOK = false
				}
			case *lang.ArrayRef:
				if !x.Intrinsic && bodyMod.Arrays[x.Name] {
					boundVarsOK = false
				}
			}
			return true
		})
	}
	if !boundVarsOK {
		block("loop bounds modified in body")
	}
	structureOK := true
	lang.WalkStmts(loop.Body, func(s lang.Stmt) bool {
		switch s.(type) {
		case *lang.PrintStmt:
			block("I/O in loop body")
			structureOK = false
		case *lang.ReturnStmt, *lang.StopStmt:
			block("control leaves the loop body")
			structureOK = false
		case *lang.CallStmt:
			// Calls block parallelization (the pipeline inlines eligible
			// callees beforehand, matching the Polaris setup).
			block("unresolved call in loop body")
			structureOK = false
		}
		return structureOK
	})
	if len(r.Blockers) > 0 {
		return r
	}

	// Reductions were annotated by the passes; in Baseline mode keep only
	// sum reductions (the typical auto-parallelizer capability).
	reds := loop.Reductions
	if p.Mode == Baseline {
		var kept []lang.Reduction
		for _, red := range reds {
			if red.Op == lang.OpAdd {
				kept = append(kept, red)
			}
		}
		reds = kept
	}
	redVars := map[string]bool{}
	for _, red := range reds {
		redVars[red.Var] = true
	}

	// Scalar analysis.
	sc := newScalarCheck(p, u, loop, redVars)
	privScalars, scalarBlockers := sc.run()
	for _, b := range scalarBlockers {
		block("%s", b)
	}

	// Array analysis.
	var privArrays []string
	if len(r.Blockers) == 0 {
		arrayBlockers := p.analyzeArrays(u, loop, r, &privArrays)
		for _, b := range arrayBlockers {
			block("%s", b)
		}
	}

	if len(r.Blockers) > 0 {
		return r
	}

	r.Parallel = true
	r.Private = append(append([]string(nil), privArrays...), privScalars...)
	sort.Strings(r.Private)
	r.Reductions = reds

	loop.Parallel = true
	loop.Private = r.Private
	loop.Reductions = reds
	return r
}

// analyzeArrays combines dependence and privatization results per array.
func (p *Parallelizer) analyzeArrays(u *lang.Unit, loop *lang.DoStmt, r *LoopReport, privArrays *[]string) []string {
	var blockers []string

	verdicts := p.dep.AnalyzeLoop(u, loop)
	var privResults map[string]*privatize.Result
	if p.Mode != Baseline {
		privResults = p.priv.AnalyzeLoop(u, loop)
	}

	arrays := make([]string, 0, len(verdicts))
	for arr := range verdicts {
		arrays = append(arrays, arr)
	}
	sort.Strings(arrays)

	for _, arr := range arrays {
		v := verdicts[arr]
		if p.Mode == Baseline && v.Independent && v.Test != deptest.TestAffine {
			// The baseline only trusts affine evidence.
			v = &deptest.Verdict{Array: arr}
		}
		if v.Independent {
			r.Tests[arr] = v.Test
			r.Properties = append(r.Properties, v.Properties...)
			continue
		}
		if privResults != nil {
			if pr := privResults[arr]; pr != nil && pr.Private {
				if pr.LiveOut {
					blockers = append(blockers, fmt.Sprintf("array %s privatizable but live-out", arr))
					continue
				}
				*privArrays = append(*privArrays, arr)
				r.PrivReasons[arr] = pr.Reason
				r.Properties = append(r.Properties, pr.Properties...)
				continue
			}
		}
		blockers = append(blockers, fmt.Sprintf("carried dependence on array %s", arr))
		// With telemetry on, replay the relevant index-array property
		// queries so the decision log can show which one failed.
		p.dep.DiagnoseArray(u, loop, arr)
	}
	r.Properties = dedup(r.Properties)
	return blockers
}

func dedup(ss []string) []string {
	seen := map[string]bool{}
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
