package parallel

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/deptest"
	"repro/internal/lang"
	"repro/internal/passes"
	"repro/internal/sem"
)

// pipelineLite runs the minimal pass sequence the parallelizer expects
// (reduction recognition) and builds a parallelizer.
func build(t *testing.T, src string, mode Mode) (*Parallelizer, *sem.Info) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	mod := dataflow.ComputeMod(info)
	passes.RecognizeReductions(prog, info, mod)
	return New(info, mod, mode), info
}

func reportByName(rs []*LoopReport, frag string) *LoopReport {
	for _, r := range rs {
		if strings.Contains(r.Name, frag) {
			return r
		}
	}
	return nil
}

func TestSimpleParallelLoop(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real a(nmax), b(nmax)
  do i = 1, n
    a(i) = b(i) * 2.0
  end do
end
`
	pz, _ := build(t, src, Full)
	rs := pz.Run()
	r := reportByName(rs, "do_i")
	if r == nil || !r.Parallel {
		t.Fatalf("simple loop should be parallel: %+v", r)
	}
	if !r.Loop.Parallel {
		t.Error("AST not annotated")
	}
}

func TestRecurrenceStaysSerial(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real a(nmax)
  do i = 2, n
    a(i) = a(i - 1) + 1.0
  end do
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_i")
	if r == nil || r.Parallel {
		t.Fatalf("recurrence must stay serial: %+v", r)
	}
	if len(r.Blockers) == 0 {
		t.Error("expected a blocker explanation")
	}
}

func TestReductionLoopParallel(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real s, a(nmax)
  do i = 1, n
    s = s + a(i)
  end do
  a(1) = s
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_i")
	if r == nil || !r.Parallel {
		t.Fatalf("sum reduction should parallelize: %+v", r)
	}
	if len(r.Reductions) != 1 || r.Reductions[0].Var != "s" {
		t.Errorf("reductions: %+v", r.Reductions)
	}
}

func TestScalarCarriedStaysSerial(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real s, a(nmax)
  do i = 1, n
    a(i) = s
    s = a(i) * 2.0
  end do
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_i")
	if r == nil || r.Parallel {
		t.Fatalf("value-carrying scalar must stay serial: %+v", r)
	}
}

func TestPrivateScalarTemp(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real tmp, a(nmax), b(nmax)
  do i = 1, n
    tmp = a(i) * 2.0
    b(i) = tmp + 1.0
  end do
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_i")
	if r == nil || !r.Parallel {
		t.Fatalf("temp scalar should privatize: %+v", r)
	}
	found := false
	for _, v := range r.Private {
		if v == "tmp" {
			found = true
		}
	}
	if !found {
		t.Errorf("tmp not in private list: %v", r.Private)
	}
}

// figure1a end to end: do k parallelizes only with the irregular analyses.
const figure1a = `
program fig1a
  param nmax = 100
  integer n, k, i, j, p
  integer link(nmax, nmax)
  integer cond(nmax, nmax)
  real x(nmax), y(nmax), z(nmax, nmax)
  do k = 1, n
    p = 0
    i = link(1, k)
    do while (i != 0)
      p = p + 1
      x(p) = y(i)
      i = link(i, k)
      if (cond(k, i) != 0) then
        if (p >= 1) then
          x(p) = y(i)
        end if
      end if
    end do
    do j = 1, p
      z(k, j) = x(j)
    end do
  end do
end
`

func TestFigure1aFullVsNoIAA(t *testing.T) {
	pzFull, _ := build(t, figure1a, Full)
	rFull := reportByName(pzFull.Run(), "do_k")
	if rFull == nil || !rFull.Parallel {
		t.Fatalf("with IAA, do k should parallelize: %+v", rFull)
	}
	hasX := false
	for _, v := range rFull.Private {
		if v == "x" {
			hasX = true
		}
	}
	if !hasX {
		t.Errorf("x should be privatized: %v", rFull.Private)
	}

	pzNo, _ := build(t, figure1a, NoIAA)
	rNo := reportByName(pzNo.Run(), "do_k")
	if rNo == nil || rNo.Parallel {
		t.Fatalf("without IAA, do k must stay serial: %+v", rNo)
	}
}

// dyfesmLike exercises the offset–length dependence path end to end.
const dyfesmLike = `
program dyf
  param nmax = 50
  param smax = 3000
  integer n, i, j
  integer pptr(nmax), iblen(nmax)
  real x(smax)
  do i = 1, n
    iblen(i) = i
  end do
  pptr(1) = 1
  do i = 1, n
    pptr(i + 1) = pptr(i) + iblen(i)
  end do
  do i = 1, n
    do j = 1, iblen(i)
      x(pptr(i) + j - 1) = real(i) + real(j)
    end do
  end do
end
`

func TestDyfesmOffsetLength(t *testing.T) {
	pz, _ := build(t, dyfesmLike, Full)
	rs := pz.Run()
	var compute *LoopReport
	for _, r := range rs {
		if r.Parallel && r.Tests["x"] == deptest.TestOffsetLength {
			compute = r
		}
	}
	if compute == nil {
		t.Fatalf("offset-length loop not parallelized; reports: %+v", dump(rs))
	}

	pzNo, _ := build(t, dyfesmLike, NoIAA)
	for _, r := range pzNo.Run() {
		if r.Tests["x"] == deptest.TestOffsetLength {
			t.Error("NoIAA must not use the offset-length test")
		}
	}
}

func dump(rs []*LoopReport) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.Name+": "+strings.Join(r.Blockers, "; "))
	}
	return out
}

func TestBaselineOnlyAffine(t *testing.T) {
	pz, _ := build(t, dyfesmLike, Baseline)
	for _, r := range pz.Run() {
		if r.Parallel && strings.Contains(r.Name, "do_i@") {
			// The iblen/pptr fill loops are affine and may parallelize;
			// the compute loop must not.
			if r.Tests["x"] != "" && r.Tests["x"] != deptest.TestAffine {
				t.Errorf("baseline used %s", r.Tests["x"])
			}
		}
	}
}

func TestCallBlocksLoop(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i
  real a(nmax)
  do i = 1, n
    a(i) = 0.0
    call side
  end do
end
subroutine side
  a(1) = 1.0
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_i")
	if r == nil || r.Parallel {
		t.Fatalf("calls must block: %+v", r)
	}
}

func TestPrintBlocksLoop(t *testing.T) {
	src := `
program p
  integer n, i
  do i = 1, n
    print i
  end do
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_i")
	if r == nil || r.Parallel {
		t.Fatalf("I/O must block: %+v", r)
	}
}

func TestOutermostWins(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i, j
  real z(nmax, nmax)
  do i = 1, n
    do j = 1, n
      z(i, j) = 1.0
    end do
  end do
end
`
	pz, _ := build(t, src, Full)
	rs := pz.Run()
	if len(rs) != 1 {
		t.Fatalf("inner loop of a parallel loop should not be analyzed: %v", dump(rs))
	}
	if !rs[0].Parallel {
		t.Errorf("outer loop should parallelize: %+v", rs[0])
	}
}

func TestLiveOutScalarConditional(t *testing.T) {
	src := `
program p
  param nmax = 100
  integer n, i, last
  real a(nmax)
  do i = 1, n
    if (a(i) > 0.0) then
      last = i
    end if
  end do
  n = last
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_i")
	if r == nil || r.Parallel {
		t.Fatalf("conditionally-assigned live-out scalar must block: %+v", r)
	}
}

func TestGatherUseLoopParallel(t *testing.T) {
	// The use loop in Fig. 14 parallelizes via the injective test.
	src := `
program gather
  param nmax = 100
  integer n, p, q, i, j
  real x(nmax), y(nmax)
  integer ind(nmax)
  q = 0
  do i = 1, p
    if (x(i) > 0.0) then
      q = q + 1
      ind(q) = i
    end if
  end do
  do j = 1, q
    y(ind(j)) = x(ind(j)) * 2.0
  end do
end
`
	pz, _ := build(t, src, Full)
	r := reportByName(pz.Run(), "do_j")
	if r == nil || !r.Parallel {
		t.Fatalf("use loop should parallelize via injectivity: %+v", r)
	}
	if r.Tests["y"] != deptest.TestInjective {
		t.Errorf("test = %s, want injective", r.Tests["y"])
	}
}
