package parallel

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/lang"
)

// scalarCheck decides which scalars written inside a loop body can be
// privatized: every read of such a scalar in an iteration must be preceded
// (on all paths) by an assignment in the same iteration, unless the scalar
// is a recognised reduction. Live-out privatized scalars additionally need
// a must-assignment on every path through the iteration so the executor's
// last-iteration copy-out reproduces the sequential final value.
type scalarCheck struct {
	p       *Parallelizer
	u       *lang.Unit
	loop    *lang.DoStmt
	redVars map[string]bool

	written  map[string]bool // scalars written somewhere in the body
	exposed  map[string]bool
	assigned map[string]bool // must-assigned so far on all paths
}

func newScalarCheck(p *Parallelizer, u *lang.Unit, loop *lang.DoStmt, redVars map[string]bool) *scalarCheck {
	mod := p.Mod.StmtsMod(u, loop.Body)
	return &scalarCheck{
		p: p, u: u, loop: loop, redVars: redVars,
		written:  mod.Scalars,
		exposed:  map[string]bool{},
		assigned: map[string]bool{},
	}
}

// run returns the privatized scalars and blockers.
func (sc *scalarCheck) run() (private []string, blockers []string) {
	// The loop variable is implicitly private and defined by the header.
	sc.assigned[sc.loop.Var.Name] = true

	sc.stmts(sc.loop.Body)

	var exposedVars []string
	for v := range sc.exposed {
		exposedVars = append(exposedVars, v)
	}
	sort.Strings(exposedVars)
	for _, v := range exposedVars {
		blockers = append(blockers, fmt.Sprintf("scalar %s carries a value across iterations", v))
	}

	var names []string
	for v := range sc.written {
		if v == sc.loop.Var.Name || sc.redVars[v] {
			continue
		}
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		if sc.exposed[v] {
			continue
		}
		if sc.liveAfter(v) && !sc.assigned[v] {
			blockers = append(blockers, fmt.Sprintf("scalar %s is live-out but not assigned on every path", v))
			continue
		}
		private = append(private, v)
	}
	return private, blockers
}

// read notes a read of scalar v at the current point.
func (sc *scalarCheck) read(v string) {
	if sc.written[v] && !sc.assigned[v] && !sc.redVars[v] && v != sc.loop.Var.Name {
		sc.exposed[v] = true
	}
}

func (sc *scalarCheck) readsOf(s lang.Stmt) {
	f := dataflow.Facts(s)
	for _, r := range f.ScalarReads {
		sc.read(r)
	}
}

func (sc *scalarCheck) stmts(stmts []lang.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *lang.AssignStmt:
			// Reduction updates read their own variable by design.
			sc.readsOf(s)
			if id, ok := s.Lhs.(*lang.Ident); ok {
				sc.assigned[id.Name] = true
			}
		case *lang.IfStmt:
			condReads := dataflow.CondFacts(s, -1)
			for _, r := range condReads.ScalarReads {
				sc.read(r)
			}
			for i := range s.Elifs {
				ef := dataflow.CondFacts(s, i)
				for _, r := range ef.ScalarReads {
					sc.read(r)
				}
			}
			base := copySet(sc.assigned)
			bodies := [][]lang.Stmt{s.Then}
			for i := range s.Elifs {
				bodies = append(bodies, s.Elifs[i].Body)
			}
			bodies = append(bodies, s.Else) // nil = empty fall-through arm
			var merged map[string]bool
			for _, b := range bodies {
				sc.assigned = copySet(base)
				sc.stmts(b)
				if merged == nil {
					merged = copySet(sc.assigned)
				} else {
					merged = intersect(merged, sc.assigned)
				}
			}
			sc.assigned = merged
		case *lang.DoStmt:
			sc.readsOf(s) // bounds
			base := copySet(sc.assigned)
			sc.assigned[s.Var.Name] = true
			sc.stmts(s.Body)
			// The body may execute zero times: only pre-existing facts
			// survive, plus the loop variable (defined by the header).
			base[s.Var.Name] = true
			sc.assigned = base
		case *lang.WhileStmt:
			sc.readsOf(s)
			base := copySet(sc.assigned)
			sc.stmts(s.Body)
			sc.readsOf(s) // the condition is re-evaluated after the body
			sc.assigned = base
		case *lang.GotoStmt, *lang.ContinueStmt:
			// no data effect
		default:
			sc.readsOf(s)
		}
	}
}

// liveAfter reports whether the scalar may be read after the loop.
func (sc *scalarCheck) liveAfter(v string) bool {
	sym := sc.p.Info.LookupIn(sc.u, v)
	if sym == nil {
		return true
	}
	if sym.Global && !sc.u.IsMain {
		return true
	}
	seen := false
	after := false
	lang.WalkStmts(sc.u.Body, func(s lang.Stmt) bool {
		if s == lang.Stmt(sc.loop) {
			seen = true
			return false
		}
		if !seen {
			return true
		}
		f := dataflow.Facts(s)
		for _, r := range f.ScalarReads {
			if r == v {
				after = true
			}
		}
		for _, c := range f.Calls {
			if sym.Global && sc.p.Info.Program.Unit(c) != nil {
				after = true
			}
		}
		return !after
	})
	return after
}

func copySet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
