package passes

import (
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

// constVal is the constant-propagation lattice value for one scalar.
type constVal struct {
	known bool // false = NAC (not a constant) when present in the map
	isInt bool
	i     int64
	r     float64
	b     bool
	isB   bool
}

// PropagateConstants performs a simple structured forward constant
// propagation in every unit: scalar variables holding literal values are
// substituted into later expressions. Branches merge conservatively; loop
// bodies invalidate everything they modify before being walked. Returns
// true when any substitution happened.
func PropagateConstants(prog *lang.Program, info *sem.Info, mod *dataflow.ModInfo) bool {
	changed := false
	for _, u := range prog.Units() {
		env := map[string]constVal{}
		cpStmts(u.Body, env, prog, info, mod, u, &changed)
	}
	if changed {
		FoldConstants(prog)
	}
	return changed
}

func killAll(env map[string]constVal) {
	for k := range env {
		delete(env, k)
	}
}

func killMod(env map[string]constVal, m *dataflow.ModSet) {
	for v := range m.Scalars {
		delete(env, v)
	}
}

// substEnv replaces known-constant scalar reads in a statement's
// expressions.
func substEnv(s lang.Stmt, env map[string]constVal, changed *bool) {
	if len(env) == 0 {
		return
	}
	lang.MapStmtExprs(s, func(e lang.Expr) lang.Expr {
		return foldExpr(substConst(e, env, changed))
	})
}

// cpStmts walks one statement list, updating env.
func cpStmts(stmts []lang.Stmt, env map[string]constVal, prog *lang.Program, info *sem.Info, mod *dataflow.ModInfo, u *lang.Unit, changed *bool) {
	for _, s := range stmts {
		if s.Label() != 0 {
			// A label is a potential join point (goto target): be
			// conservative from here on.
			killAll(env)
		}
		switch s := s.(type) {
		case *lang.AssignStmt:
			// Substitute into the RHS and subscripts, but not the bare
			// LHS variable itself.
			if ar, ok := s.Lhs.(*lang.ArrayRef); ok {
				for i, a := range ar.Args {
					ar.Args[i] = lang.MapExpr(a, func(e lang.Expr) lang.Expr {
						return foldExpr(substConst(e, env, changed))
					})
				}
			}
			s.Rhs = lang.MapExpr(s.Rhs, func(e lang.Expr) lang.Expr {
				return foldExpr(substConst(e, env, changed))
			})
			if id, ok := s.Lhs.(*lang.Ident); ok {
				env[id.Name] = litValue(s.Rhs)
			}
		case *lang.IfStmt:
			substEnv(s, env, changed)
			// Each branch starts from the current env; afterwards keep
			// only facts that survive every branch (conservative:
			// intersect by killing everything any branch modifies).
			bodies := [][]lang.Stmt{s.Then}
			for i := range s.Elifs {
				bodies = append(bodies, s.Elifs[i].Body)
			}
			if s.Else != nil {
				bodies = append(bodies, s.Else)
			}
			for _, b := range bodies {
				branchEnv := copyEnv(env)
				cpStmts(b, branchEnv, prog, info, mod, u, changed)
			}
			for _, b := range bodies {
				killMod(env, mod.StmtsMod(u, b))
			}
		case *lang.DoStmt:
			substEnv(s, env, changed) // bounds
			bodyMod := mod.StmtsMod(u, s.Body)
			killMod(env, bodyMod)
			delete(env, s.Var.Name)
			bodyEnv := copyEnv(env)
			cpStmts(s.Body, bodyEnv, prog, info, mod, u, changed)
			killMod(env, bodyMod)
			delete(env, s.Var.Name)
		case *lang.WhileStmt:
			bodyMod := mod.StmtsMod(u, s.Body)
			killMod(env, bodyMod)
			substEnv(s, env, changed) // condition, after killing body mods
			bodyEnv := copyEnv(env)
			cpStmts(s.Body, bodyEnv, prog, info, mod, u, changed)
			killMod(env, bodyMod)
		case *lang.CallStmt:
			if cu := prog.Unit(s.Name); cu != nil {
				killMod(env, mod.GlobalsModifiedBy(cu))
			} else {
				killAll(env)
			}
		case *lang.GotoStmt:
			// Control leaves; nothing to update on the fallthrough path
			// (there is none), but stay safe.
			killAll(env)
		default:
			substEnv(s, env, changed)
		}
	}
}

func substConst(e lang.Expr, env map[string]constVal, changed *bool) lang.Expr {
	id, ok := e.(*lang.Ident)
	if !ok {
		return e
	}
	cv, has := env[id.Name]
	if !has || !cv.known {
		return e
	}
	*changed = true
	switch {
	case cv.isB:
		return &lang.BoolLit{ValuePos: id.NamePos, Value: cv.b}
	case cv.isInt:
		return &lang.IntLit{ValuePos: id.NamePos, Value: cv.i}
	default:
		return &lang.RealLit{ValuePos: id.NamePos, Value: cv.r}
	}
}

func litValue(e lang.Expr) constVal {
	switch e := e.(type) {
	case *lang.IntLit:
		return constVal{known: true, isInt: true, i: e.Value}
	case *lang.RealLit:
		return constVal{known: true, r: e.Value}
	case *lang.BoolLit:
		return constVal{known: true, isB: true, b: e.Value}
	}
	return constVal{}
}

func copyEnv(env map[string]constVal) map[string]constVal {
	c := make(map[string]constVal, len(env))
	for k, v := range env {
		c[k] = v
	}
	return c
}

// PropagateGlobalConstants performs the interprocedural part: a global
// scalar assigned exactly one literal value in the main program before any
// call, and never assigned anywhere else, is treated as that constant in
// every subroutine. Returns true on change.
func PropagateGlobalConstants(prog *lang.Program, info *sem.Info, mod *dataflow.ModInfo) bool {
	if prog.Main == nil {
		return false
	}
	// Find candidate constants: leading literal assignments in main.
	consts := map[string]constVal{}
	for _, s := range prog.Main.Body {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			break // first non-assignment ends the prologue
		}
		id, ok := as.Lhs.(*lang.Ident)
		if !ok {
			continue
		}
		if cv := litValue(as.Rhs); cv.known {
			consts[id.Name] = cv
		} else {
			delete(consts, id.Name)
		}
	}
	// Remove any assigned elsewhere (main after prologue included:
	// conservative — drop if assigned more than once anywhere).
	counts := map[string]int{}
	for _, u := range prog.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			f := dataflow.Facts(s)
			for _, w := range f.ScalarWrites {
				counts[w]++
			}
			return true
		})
	}
	for name := range consts {
		if counts[name] != 1 {
			delete(consts, name)
		}
		if sym := info.Globals[name]; sym == nil || sym.Kind != sem.ScalarSym {
			delete(consts, name)
		}
	}
	if len(consts) == 0 {
		return false
	}
	changed := false
	for _, u := range prog.Subs {
		sc := info.Scope(u)
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			lang.MapStmtExprs(s, func(e lang.Expr) lang.Expr {
				id, ok := e.(*lang.Ident)
				if !ok {
					return e
				}
				if _, isLocal := sc.Locals[id.Name]; isLocal {
					return e
				}
				cv, has := consts[id.Name]
				if !has {
					return e
				}
				changed = true
				return substConstVal(cv, id.NamePos)
			})
			return true
		})
	}
	if changed {
		FoldConstants(prog)
	}
	return changed
}

func substConstVal(cv constVal, pos lang.Pos) lang.Expr {
	switch {
	case cv.isB:
		return &lang.BoolLit{ValuePos: pos, Value: cv.b}
	case cv.isInt:
		return &lang.IntLit{ValuePos: pos, Value: cv.i}
	default:
		return &lang.RealLit{ValuePos: pos, Value: cv.r}
	}
}
