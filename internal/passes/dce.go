package passes

import (
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

// EliminateDeadCode removes assignments to scalars that are never read in
// the program (locals: never read in their unit; globals: never read
// anywhere). Assignments with side-effect-free right-hand sides only — in
// F-lite every expression is side-effect-free. Returns true on change.
func EliminateDeadCode(prog *lang.Program, info *sem.Info) bool {
	// Collect all scalar reads, per unit and globally.
	globalReads := map[string]bool{}
	unitReads := map[*lang.Unit]map[string]bool{}
	for _, u := range prog.Units() {
		reads := map[string]bool{}
		unitReads[u] = reads
		sc := info.Scope(u)
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			f := dataflow.Facts(s)
			// A scalar read only by the right-hand side of assignments
			// to itself (v = v + 1) is still dead: skip self-reads.
			selfTarget := ""
			if as, ok := s.(*lang.AssignStmt); ok {
				if id, ok := as.Lhs.(*lang.Ident); ok {
					selfTarget = id.Name
				}
			}
			for _, r := range f.ScalarReads {
				if r == selfTarget {
					continue
				}
				reads[r] = true
				if sym := sc.Lookup(r); sym != nil && sym.Global {
					globalReads[r] = true
				}
			}
			return true
		})
	}

	changed := false
	for _, u := range prog.Units() {
		sc := info.Scope(u)
		dead := func(name string) bool {
			sym := sc.Lookup(name)
			if sym == nil || sym.Kind != sem.ScalarSym {
				return false
			}
			if sym.Global {
				return !globalReads[name]
			}
			return !unitReads[u][name]
		}
		u.Body = dceStmts(u.Body, dead, &changed)
	}
	return changed
}

func dceStmts(stmts []lang.Stmt, dead func(string) bool, changed *bool) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *lang.AssignStmt:
			if id, ok := s.Lhs.(*lang.Ident); ok && dead(id.Name) && s.Label() == 0 {
				*changed = true
				continue
			}
		case *lang.IfStmt:
			s.Then = dceStmts(s.Then, dead, changed)
			for i := range s.Elifs {
				s.Elifs[i].Body = dceStmts(s.Elifs[i].Body, dead, changed)
			}
			if s.Else != nil {
				s.Else = dceStmts(s.Else, dead, changed)
				if len(s.Else) == 0 {
					s.Else = nil
				}
			}
		case *lang.DoStmt:
			s.Body = dceStmts(s.Body, dead, changed)
		case *lang.WhileStmt:
			s.Body = dceStmts(s.Body, dead, changed)
		}
		out = append(out, s)
	}
	return out
}
