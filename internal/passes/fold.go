// Package passes implements the Polaris-like program transformations of the
// paper's pipeline (Fig. 15): inlining, interprocedural constant
// propagation, program normalization (constant folding), induction variable
// substitution, (intraprocedural) constant propagation, forward
// substitution, dead code elimination and reduction recognition.
//
// All passes operate on the AST in place (on a program the caller may clone
// first) and are written to be idempotent.
package passes

import (
	"repro/internal/lang"
)

// FoldConstants simplifies constant subexpressions in every unit: integer
// and real arithmetic on literals, comparisons of literals, boolean
// connectives with literal operands, and algebraic identities (x+0, x*1,
// x*0).
func FoldConstants(prog *lang.Program) {
	for _, u := range prog.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			lang.MapStmtExprs(s, foldExpr)
			return true
		})
	}
}

func intLit(v int64) *lang.IntLit  { return &lang.IntLit{Value: v} }
func realLit(v float64) lang.Expr  { return &lang.RealLit{Value: v} }
func boolLit(v bool) *lang.BoolLit { return &lang.BoolLit{Value: v} }
func asInt(e lang.Expr) (int64, bool) {
	l, ok := e.(*lang.IntLit)
	if !ok {
		return 0, false
	}
	return l.Value, true
}
func asReal(e lang.Expr) (float64, bool) {
	switch l := e.(type) {
	case *lang.RealLit:
		return l.Value, true
	case *lang.IntLit:
		return float64(l.Value), true
	}
	return 0, false
}
func isRealLit(e lang.Expr) bool { _, ok := e.(*lang.RealLit); return ok }

// foldExpr folds one node (children already folded by MapExpr).
func foldExpr(e lang.Expr) lang.Expr {
	switch e := e.(type) {
	case *lang.Unary:
		switch e.Op {
		case lang.OpNeg:
			if v, ok := asInt(e.X); ok {
				return intLit(-v)
			}
			if v, ok := e.X.(*lang.RealLit); ok {
				return realLit(-v.Value)
			}
		case lang.OpNot:
			if b, ok := e.X.(*lang.BoolLit); ok {
				return boolLit(!b.Value)
			}
		}
	case *lang.Binary:
		if out := foldBinary(e); out != nil {
			return out
		}
	}
	return e
}

func foldBinary(e *lang.Binary) lang.Expr {
	xi, xIsInt := asInt(e.X)
	yi, yIsInt := asInt(e.Y)

	// Pure integer arithmetic.
	if xIsInt && yIsInt {
		switch e.Op {
		case lang.OpAdd:
			return intLit(xi + yi)
		case lang.OpSub:
			return intLit(xi - yi)
		case lang.OpMul:
			return intLit(xi * yi)
		case lang.OpDiv:
			if yi != 0 {
				return intLit(xi / yi)
			}
		case lang.OpPow:
			if yi >= 0 && yi <= 16 {
				r := int64(1)
				for k := int64(0); k < yi; k++ {
					r *= xi
				}
				return intLit(r)
			}
		case lang.OpEq:
			return boolLit(xi == yi)
		case lang.OpNe:
			return boolLit(xi != yi)
		case lang.OpLt:
			return boolLit(xi < yi)
		case lang.OpLe:
			return boolLit(xi <= yi)
		case lang.OpGt:
			return boolLit(xi > yi)
		case lang.OpGe:
			return boolLit(xi >= yi)
		}
	}

	// Mixed/real arithmetic when at least one side is a real literal.
	if isRealLit(e.X) || isRealLit(e.Y) {
		xr, okx := asReal(e.X)
		yr, oky := asReal(e.Y)
		if okx && oky {
			switch e.Op {
			case lang.OpAdd:
				return realLit(xr + yr)
			case lang.OpSub:
				return realLit(xr - yr)
			case lang.OpMul:
				return realLit(xr * yr)
			case lang.OpDiv:
				if yr != 0 {
					return realLit(xr / yr)
				}
			case lang.OpEq:
				return boolLit(xr == yr)
			case lang.OpNe:
				return boolLit(xr != yr)
			case lang.OpLt:
				return boolLit(xr < yr)
			case lang.OpLe:
				return boolLit(xr <= yr)
			case lang.OpGt:
				return boolLit(xr > yr)
			case lang.OpGe:
				return boolLit(xr >= yr)
			}
		}
	}

	// Boolean connectives.
	if xb, ok := e.X.(*lang.BoolLit); ok {
		switch {
		case e.Op == lang.OpAnd && !xb.Value:
			return boolLit(false)
		case e.Op == lang.OpAnd && xb.Value:
			return e.Y
		case e.Op == lang.OpOr && xb.Value:
			return boolLit(true)
		case e.Op == lang.OpOr && !xb.Value:
			return e.Y
		}
	}
	if yb, ok := e.Y.(*lang.BoolLit); ok {
		switch {
		case e.Op == lang.OpAnd && !yb.Value:
			return boolLit(false)
		case e.Op == lang.OpAnd && yb.Value:
			return e.X
		case e.Op == lang.OpOr && yb.Value:
			return boolLit(true)
		case e.Op == lang.OpOr && !yb.Value:
			return e.X
		}
	}

	// Reassociation of integer-constant chains: (x ± c1) ± c2.
	if yIsInt {
		if inner, ok := e.X.(*lang.Binary); ok {
			if ci, okc := asInt(inner.Y); okc {
				switch {
				case e.Op == lang.OpAdd && inner.Op == lang.OpAdd:
					return foldExpr(&lang.Binary{Op: lang.OpAdd, X: inner.X, Y: intLit(ci + yi)})
				case e.Op == lang.OpAdd && inner.Op == lang.OpSub:
					return foldExpr(&lang.Binary{Op: lang.OpAdd, X: inner.X, Y: intLit(yi - ci)})
				case e.Op == lang.OpSub && inner.Op == lang.OpAdd:
					return foldExpr(&lang.Binary{Op: lang.OpAdd, X: inner.X, Y: intLit(ci - yi)})
				case e.Op == lang.OpSub && inner.Op == lang.OpSub:
					return foldExpr(&lang.Binary{Op: lang.OpSub, X: inner.X, Y: intLit(ci + yi)})
				}
			}
		}
	}

	// Identities.
	switch e.Op {
	case lang.OpAdd:
		if yIsInt && yi == 0 {
			return e.X
		}
		if xIsInt && xi == 0 {
			return e.Y
		}
		if yIsInt && yi < 0 {
			return &lang.Binary{Op: lang.OpSub, X: e.X, Y: intLit(-yi)}
		}
	case lang.OpSub:
		if yIsInt && yi == 0 {
			return e.X
		}
	case lang.OpMul:
		if yIsInt && yi == 1 {
			return e.X
		}
		if xIsInt && xi == 1 {
			return e.Y
		}
		if (yIsInt && yi == 0) || (xIsInt && xi == 0) {
			return intLit(0)
		}
	case lang.OpDiv:
		if yIsInt && yi == 1 {
			return e.X
		}
	}
	return nil
}

// SimplifyControl removes statically-decided IF branches and zero-trip DO
// loops with constant bounds, and drops statements after STOP/RETURN in a
// statement list. It returns true if anything changed.
func SimplifyControl(prog *lang.Program) bool {
	changed := false
	for _, u := range prog.Units() {
		u.Body = simplifyStmts(u.Body, &changed)
	}
	return changed
}

func simplifyStmts(stmts []lang.Stmt, changed *bool) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *lang.IfStmt:
			s.Then = simplifyStmts(s.Then, changed)
			for i := range s.Elifs {
				s.Elifs[i].Body = simplifyStmts(s.Elifs[i].Body, changed)
			}
			s.Else = simplifyStmts(s.Else, changed)
			if b, ok := s.Cond.(*lang.BoolLit); ok && len(s.Elifs) == 0 && s.Label() == 0 {
				*changed = true
				if b.Value {
					out = append(out, s.Then...)
				} else if s.Else != nil {
					out = append(out, s.Else...)
				}
				continue
			}
		case *lang.DoStmt:
			s.Body = simplifyStmts(s.Body, changed)
			lo, okLo := asInt(s.Lo)
			hi, okHi := asInt(s.Hi)
			if okLo && okHi && s.Step == nil && lo > hi && s.Label() == 0 && !hasLabels(s.Body) {
				*changed = true
				continue // zero-trip loop
			}
		case *lang.WhileStmt:
			s.Body = simplifyStmts(s.Body, changed)
			if b, ok := s.Cond.(*lang.BoolLit); ok && !b.Value && s.Label() == 0 && !hasLabels(s.Body) {
				*changed = true
				continue
			}
		}
		out = append(out, s)
		if _, stop := s.(*lang.StopStmt); stop {
			break
		}
	}
	return out
}

func hasLabels(stmts []lang.Stmt) bool {
	found := false
	lang.WalkStmts(stmts, func(s lang.Stmt) bool {
		if s.Label() != 0 {
			found = true
		}
		return !found
	})
	return found
}
