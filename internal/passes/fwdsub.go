package passes

import (
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

// ForwardSubstitute replaces scalar uses by their defining expressions when
// the definition is a simple side-effect-free assignment and nothing it
// depends on changes in between:
//
//	jj = ind(j)
//	z(k, jj) = x(jj)      →      z(k, ind(j)) = x(ind(j))
//
// This is the pass that exposes simple indirect array accesses to the
// privatization and dependence analyses (§5.1.1, "forward substitution").
// The definition itself is left in place for dead code elimination to
// remove. Returns true on change.
func ForwardSubstitute(prog *lang.Program, info *sem.Info, mod *dataflow.ModInfo) bool {
	changed := false
	for _, u := range prog.Units() {
		fs := &fwdsub{prog: prog, info: info, mod: mod, unit: u, changed: &changed}
		fs.stmts(u.Body, map[string]lang.Expr{})
	}
	return changed
}

type fwdsub struct {
	prog    *lang.Program
	info    *sem.Info
	mod     *dataflow.ModInfo
	unit    *lang.Unit
	changed *bool
}

// invalidate removes definitions that read or are the given scalar, or read
// the given array.
func invalidate(defs map[string]lang.Expr, scalar, array string) {
	if scalar != "" {
		delete(defs, scalar)
	}
	for name, e := range defs {
		drop := false
		lang.WalkExpr(e, func(x lang.Expr) bool {
			switch x := x.(type) {
			case *lang.Ident:
				if x.Name == scalar {
					drop = true
				}
			case *lang.ArrayRef:
				if !x.Intrinsic && x.Name == array {
					drop = true
				}
			}
			return !drop
		})
		if drop {
			delete(defs, name)
		}
	}
}

func (f *fwdsub) invalidateMod(defs map[string]lang.Expr, m *dataflow.ModSet) {
	for v := range m.Scalars {
		invalidate(defs, v, "")
	}
	for arr := range m.Arrays {
		invalidate(defs, "", arr)
	}
}

// subst rewrites the expressions of s using the current definitions.
func (f *fwdsub) subst(s lang.Stmt, defs map[string]lang.Expr) {
	if len(defs) == 0 {
		return
	}
	apply := func(e lang.Expr) lang.Expr {
		id, ok := e.(*lang.Ident)
		if !ok {
			return e
		}
		if repl, has := defs[id.Name]; has {
			*f.changed = true
			return lang.CloneExpr(repl)
		}
		return e
	}
	if as, ok := s.(*lang.AssignStmt); ok {
		if ar, isArr := as.Lhs.(*lang.ArrayRef); isArr {
			for i, a := range ar.Args {
				ar.Args[i] = lang.MapExpr(a, apply)
			}
		}
		as.Rhs = lang.MapExpr(as.Rhs, apply)
		return
	}
	lang.MapStmtExprs(s, apply)
}

// definable reports whether the RHS is a candidate for substitution:
// side-effect-free and not too large (substituting huge expressions blows
// up the program).
func definable(e lang.Expr) bool {
	n := 0
	lang.WalkExpr(e, func(x lang.Expr) bool {
		n++
		return true
	})
	return n <= 8
}

func (f *fwdsub) stmts(stmts []lang.Stmt, defs map[string]lang.Expr) {
	for _, s := range stmts {
		if s.Label() != 0 {
			// A goto target: definitions may not hold on all incoming
			// paths.
			for k := range defs {
				delete(defs, k)
			}
		}
		switch s := s.(type) {
		case *lang.AssignStmt:
			// Never substitute a variable's definition into its own
			// update (p = pbase; p = p + 1 must not become p = pbase+1):
			// that would destroy the index-evolution idioms the
			// irregular access analyses recognise.
			var selfDef lang.Expr
			var selfName string
			if id, ok := s.Lhs.(*lang.Ident); ok {
				if d, has := defs[id.Name]; has {
					selfDef, selfName = d, id.Name
					delete(defs, id.Name)
				}
			}
			f.subst(s, defs)
			if selfDef != nil {
				defs[selfName] = selfDef
			}
			facts := dataflow.Facts(s)
			for _, w := range facts.ArrayWrites {
				invalidate(defs, "", w.Array)
			}
			if id, ok := s.Lhs.(*lang.Ident); ok {
				invalidate(defs, id.Name, "")
				if definable(s.Rhs) && !mentionsScalar(s.Rhs, id.Name) {
					defs[id.Name] = s.Rhs
				}
			}
		case *lang.IfStmt:
			f.subst(s, defs)
			bodies := [][]lang.Stmt{s.Then}
			for i := range s.Elifs {
				bodies = append(bodies, s.Elifs[i].Body)
			}
			if s.Else != nil {
				bodies = append(bodies, s.Else)
			}
			for _, b := range bodies {
				f.stmts(b, copyDefs(defs))
			}
			for _, b := range bodies {
				f.invalidateMod(defs, f.mod.StmtsMod(f.unit, b))
			}
		case *lang.DoStmt:
			f.subst(s, defs)
			bodyMod := f.mod.StmtsMod(f.unit, s.Body)
			f.invalidateMod(defs, bodyMod)
			invalidate(defs, s.Var.Name, "")
			inner := copyDefs(defs)
			f.stmts(s.Body, inner)
			f.invalidateMod(defs, bodyMod)
		case *lang.WhileStmt:
			bodyMod := f.mod.StmtsMod(f.unit, s.Body)
			f.invalidateMod(defs, bodyMod)
			f.subst(s, defs)
			f.stmts(s.Body, copyDefs(defs))
			f.invalidateMod(defs, bodyMod)
		case *lang.CallStmt:
			if cu := f.prog.Unit(s.Name); cu != nil {
				f.invalidateMod(defs, f.mod.GlobalsModifiedBy(cu))
			} else {
				for k := range defs {
					delete(defs, k)
				}
			}
		case *lang.GotoStmt:
			// no fallthrough
		default:
			f.subst(s, defs)
		}
	}
}

func mentionsScalar(e lang.Expr, name string) bool {
	found := false
	lang.WalkExpr(e, func(x lang.Expr) bool {
		if id, ok := x.(*lang.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func copyDefs(defs map[string]lang.Expr) map[string]lang.Expr {
	c := make(map[string]lang.Expr, len(defs))
	for k, v := range defs {
		c[k] = v
	}
	return c
}
