package passes

import (
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

// SubstituteInductionVariables rewrites unconditionally-incremented scalar
// induction variables in DO loops into closed forms of the loop index:
//
//	do i = 1, n            do i = 1, n
//	  p = p + 2      →       ... uses of p become  p0 + 2*(i - 1 + 1) ...
//	  ... p ...
//	end do
//
// Only the simplest, always-profitable shape is handled, mirroring the
// Polaris induction-variable substitution the paper's pipeline runs before
// the irregular analyses (§5.1.1): the increment must be the loop body's
// first statement at the top level, the variable must not be assigned
// anywhere else in the loop, and the loop step must be 1. The increment is
// kept (it becomes dead if all uses are replaced and the final value is
// unused; DCE cleans it). Conditionally-incremented variables — the
// gathering-loop counters the paper's techniques target — are deliberately
// left alone.
//
// Returns true on change.
func SubstituteInductionVariables(prog *lang.Program, info *sem.Info, mod *dataflow.ModInfo) bool {
	changed := false
	for _, u := range prog.Units() {
		iv := &indvar{prog: prog, info: info, mod: mod, unit: u, changed: &changed}
		iv.stmts(u.Body)
	}
	if changed {
		FoldConstants(prog)
	}
	return changed
}

type indvar struct {
	prog    *lang.Program
	info    *sem.Info
	mod     *dataflow.ModInfo
	unit    *lang.Unit
	changed *bool
}

func (iv *indvar) stmts(stmts []lang.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *lang.IfStmt:
			iv.stmts(s.Then)
			for i := range s.Elifs {
				iv.stmts(s.Elifs[i].Body)
			}
			iv.stmts(s.Else)
		case *lang.DoStmt:
			iv.doLoop(s)
			iv.stmts(s.Body)
		case *lang.WhileStmt:
			iv.stmts(s.Body)
		}
	}
}

func (iv *indvar) doLoop(d *lang.DoStmt) {
	if d.Step != nil || len(d.Body) == 0 {
		return
	}
	first, ok := d.Body[0].(*lang.AssignStmt)
	if !ok || first.Label() != 0 {
		return
	}
	p, ok := first.Lhs.(*lang.Ident)
	if !ok || p.Name == d.Var.Name {
		return
	}
	// Must be p = p + c with constant c.
	bin, ok := first.Rhs.(*lang.Binary)
	if !ok || bin.Op != lang.OpAdd {
		return
	}
	base, ok := bin.X.(*lang.Ident)
	var step lang.Expr
	if ok && base.Name == p.Name {
		step = bin.Y
	} else if base2, ok2 := bin.Y.(*lang.Ident); ok2 && base2.Name == p.Name {
		step = bin.X
	} else {
		return
	}
	c, isConst := step.(*lang.IntLit)
	if !isConst {
		return
	}
	// p must not be assigned anywhere else in the loop (including calls).
	assigns := 0
	callsModify := false
	lang.WalkStmts(d.Body, func(s lang.Stmt) bool {
		f := dataflow.Facts(s)
		for _, w := range f.ScalarWrites {
			if w == p.Name {
				assigns++
			}
		}
		for _, callee := range f.Calls {
			if cu := iv.prog.Unit(callee); cu != nil {
				if iv.mod.GlobalsModifiedBy(cu).Scalars[p.Name] {
					callsModify = true
				}
			}
		}
		return true
	})
	if assigns != 1 || callsModify {
		return
	}
	// After the increment in iteration i (loop from lo), p = p_entry +
	// c*(i - lo + 1). Replace uses of p after the first statement.
	// p_entry is the value of p just before the loop; we name it via the
	// original variable: uses become p0-form only if p is not live —
	// keeping it simple and sound: rewrite uses as
	//   p + c*(i - lo)  evaluated with p's ENTRY value…
	// which requires p's entry value to be intact. Instead, we rewrite
	// the increment to a direct closed form, which preserves semantics
	// unconditionally:
	//   p = p + c   →   (unchanged)
	// and substitute subsequent *uses inside the body* of p by p (no-op).
	//
	// The profitable, safe case is when p is dead after the loop and its
	// entry value is a known constant assignment immediately before the
	// loop — detected by the caller structure; to stay conservative we
	// only rewrite when the statement right before the loop in the same
	// list assigns p a constant. That rewriting is done by rewriteWithBase
	// via the parent walk; here we only record candidates.
	iv.rewriteUses(d, p.Name, c.Value)
}

// rewriteUses replaces uses of p inside the loop body (after the leading
// increment) by the closed form  pInc0 + c*(i - lo)  where pInc0 is the
// value after the first increment. Since the entry value is unknown, the
// rewrite keeps p itself as the base: every use u_k of p in iteration i
// equals p_after_first_increment + c*(i - lo)… that expression still
// contains the loop-varying p, so the only sound local rewrite without an
// entry value is none at all. The pass therefore limits itself to loops
// whose increment directly follows a constant assignment handled by
// PropagateConstants; in other cases it does nothing. Kept as an explicit
// no-op so the pipeline's pass list matches Fig. 15 and the ablation bench
// can measure it honestly.
func (iv *indvar) rewriteUses(d *lang.DoStmt, p string, c int64) {
	// Look up the statement preceding d in its parent list for a constant
	// assignment to p.
	parent, idx := findParentList(iv.unit.Body, d)
	if parent == nil || idx == 0 {
		return
	}
	prev, ok := parent[idx-1].(*lang.AssignStmt)
	if !ok {
		return
	}
	pid, ok := prev.Lhs.(*lang.Ident)
	if !ok || pid.Name != p {
		return
	}
	p0, ok := prev.Rhs.(*lang.IntLit)
	if !ok {
		return
	}
	// Closed form after the increment in iteration i: p0 + c*(i - lo + 1).
	mkClosed := func(pos lang.Pos) lang.Expr {
		iMinusLo := &lang.Binary{Op: lang.OpSub, X: &lang.Ident{NamePos: pos, Name: d.Var.Name}, Y: lang.CloneExpr(d.Lo)}
		steps := &lang.Binary{Op: lang.OpAdd, X: iMinusLo, Y: &lang.IntLit{Value: 1}}
		return &lang.Binary{
			Op: lang.OpAdd,
			X:  &lang.IntLit{Value: p0.Value},
			Y:  &lang.Binary{Op: lang.OpMul, X: &lang.IntLit{Value: c}, Y: steps},
		}
	}
	for _, s := range d.Body[1:] {
		lang.WalkStmts([]lang.Stmt{s}, func(st lang.Stmt) bool {
			lang.MapStmtExprs(st, func(e lang.Expr) lang.Expr {
				if id, ok := e.(*lang.Ident); ok && id.Name == p {
					*iv.changed = true
					return mkClosed(id.NamePos)
				}
				return e
			})
			// Do not rewrite inside assignments TO p (there are none
			// besides the increment, checked above).
			return true
		})
	}
}

// findParentList locates the statement list directly containing target and
// its index there.
func findParentList(stmts []lang.Stmt, target lang.Stmt) ([]lang.Stmt, int) {
	for i, s := range stmts {
		if s == target {
			return stmts, i
		}
		switch s := s.(type) {
		case *lang.IfStmt:
			if l, k := findParentList(s.Then, target); l != nil {
				return l, k
			}
			for _, arm := range s.Elifs {
				if l, k := findParentList(arm.Body, target); l != nil {
					return l, k
				}
			}
			if l, k := findParentList(s.Else, target); l != nil {
				return l, k
			}
		case *lang.DoStmt:
			if l, k := findParentList(s.Body, target); l != nil {
				return l, k
			}
		case *lang.WhileStmt:
			if l, k := findParentList(s.Body, target); l != nil {
				return l, k
			}
		}
	}
	return nil, 0
}
