package passes

import (
	"fmt"

	"repro/internal/lang"
)

// InlineLimit is the auto-inlining size threshold: the paper's Polaris
// configuration inlines procedures that contain no I/O statements and fewer
// than fifty lines (§5.1.1).
const InlineLimit = 50

// Inline expands CALL statements whose callee qualifies for auto-inlining:
// no PRINT statements, no further CALLs (callees are processed bottom-up so
// nested calls inline first), fewer than InlineLimit statements, and no
// labels (splicing labeled statements could collide with caller labels).
// Callee locals are renamed <callee>__<name> and their declarations moved
// into the caller. RETURN statements in the callee body prevent inlining
// (they would need a branch to the splice end). Returns true on change.
func Inline(prog *lang.Program) bool {
	changed := false
	// Bottom-up over the (acyclic) call graph: repeatedly inline until no
	// change; termination is guaranteed because each round strictly
	// removes CALL edges to inlinable units.
	for round := 0; round < 16; round++ {
		roundChanged := false
		for _, u := range prog.Units() {
			u.Body = inlineStmts(prog, u, u.Body, &roundChanged)
		}
		if !roundChanged {
			break
		}
		changed = true
	}
	// Drop subroutines that are no longer called from anywhere.
	called := map[string]bool{}
	for _, u := range prog.Units() {
		lang.WalkStmts(u.Body, func(st lang.Stmt) bool {
			if c, ok := st.(*lang.CallStmt); ok {
				called[c.Name] = true
			}
			return true
		})
	}
	var kept []*lang.Unit
	for _, u := range prog.Subs {
		if called[u.Name] {
			kept = append(kept, u)
		} else {
			changed = true
		}
	}
	prog.Subs = kept
	return changed
}

// Inlinable reports whether a unit qualifies for auto-inlining.
func Inlinable(u *lang.Unit) bool {
	if u.IsMain {
		return false
	}
	if lang.CountStmts(u) >= InlineLimit {
		return false
	}
	ok := true
	lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
		switch s.(type) {
		case *lang.PrintStmt, *lang.ReturnStmt, *lang.CallStmt, *lang.StopStmt:
			ok = false
		}
		if s.Label() != 0 {
			ok = false
		}
		return ok
	})
	return ok
}

func inlineStmts(prog *lang.Program, caller *lang.Unit, stmts []lang.Stmt, changed *bool) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *lang.CallStmt:
			callee := prog.Unit(s.Name)
			if callee != nil && Inlinable(callee) && s.Label() == 0 {
				out = append(out, spliceCallee(caller, callee)...)
				*changed = true
				continue
			}
		case *lang.IfStmt:
			s.Then = inlineStmts(prog, caller, s.Then, changed)
			for i := range s.Elifs {
				s.Elifs[i].Body = inlineStmts(prog, caller, s.Elifs[i].Body, changed)
			}
			if s.Else != nil {
				s.Else = inlineStmts(prog, caller, s.Else, changed)
			}
		case *lang.DoStmt:
			s.Body = inlineStmts(prog, caller, s.Body, changed)
		case *lang.WhileStmt:
			s.Body = inlineStmts(prog, caller, s.Body, changed)
		}
		out = append(out, s)
	}
	return out
}

// spliceCallee clones the callee body with locals renamed and merges the
// renamed declarations into the caller.
func spliceCallee(caller, callee *lang.Unit) []lang.Stmt {
	rename := map[string]string{}
	for _, d := range callee.Decls {
		rename[d.Name] = fmt.Sprintf("%s__%s", callee.Name, d.Name)
	}
	for _, p := range callee.Params {
		rename[p.Name] = fmt.Sprintf("%s__%s", callee.Name, p.Name)
	}

	// Merge declarations (idempotent per callee: skip if already there).
	have := map[string]bool{}
	for _, d := range caller.Decls {
		have[d.Name] = true
	}
	for _, p := range caller.Params {
		have[p.Name] = true
	}
	for _, d := range callee.Decls {
		nn := rename[d.Name]
		if have[nn] {
			continue
		}
		nd := &lang.VarDecl{NamePos: d.NamePos, Name: nn, Type: d.Type}
		for _, b := range d.Dims {
			nd.Dims = append(nd.Dims, lang.DimBound{
				Lo: renameExpr(lang.CloneExpr(b.Lo), rename),
				Hi: renameExpr(lang.CloneExpr(b.Hi), rename),
			})
		}
		caller.Decls = append(caller.Decls, nd)
		have[nn] = true
	}
	for _, p := range callee.Params {
		nn := rename[p.Name]
		if have[nn] {
			continue
		}
		caller.Params = append(caller.Params, &lang.ParamDecl{
			NamePos: p.NamePos, Name: nn,
			Value: renameExpr(lang.CloneExpr(p.Value), rename),
		})
		have[nn] = true
	}

	body := lang.CloneStmts(callee.Body)
	lang.WalkStmts(body, func(s lang.Stmt) bool {
		lang.MapStmtExprs(s, func(e lang.Expr) lang.Expr {
			return renameNode(e, rename)
		})
		if d, ok := s.(*lang.DoStmt); ok {
			if nn, hit := rename[d.Var.Name]; hit {
				d.Var = &lang.Ident{NamePos: d.Var.NamePos, Name: nn}
			}
		}
		return true
	})
	return body
}

func renameExpr(e lang.Expr, rename map[string]string) lang.Expr {
	if e == nil {
		return nil
	}
	return lang.MapExpr(e, func(x lang.Expr) lang.Expr {
		return renameNode(x, rename)
	})
}

func renameNode(e lang.Expr, rename map[string]string) lang.Expr {
	switch x := e.(type) {
	case *lang.Ident:
		if nn, hit := rename[x.Name]; hit {
			return &lang.Ident{NamePos: x.NamePos, Name: nn}
		}
	case *lang.ArrayRef:
		if nn, hit := rename[x.Name]; hit {
			c := *x
			c.Name = nn
			return &c
		}
	}
	return e
}
