package passes

import (
	"repro/internal/dataflow"
	"repro/internal/deptest"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/sem"
)

// InterchangeLoops swaps the loops of perfect two-deep DO nests when the
// interchange is legal and improves spatial locality — one of the companion
// applications the paper points to for the irregular-access machinery
// (§2.3, citing the authors' CC'00 paper [22]).
//
// Legality (conservative): every array written in the nest must carry no
// dependence on either loop (the iteration space is fully permutable);
// this is established with the same dependence tests — including the
// property-based ones when an Analyzer with property analysis is supplied,
// which is exactly how the irregular-access information enables
// interchanges the classic tests cannot justify.
//
// Profitability: F-lite arrays are stored first-subscript-contiguous
// (Fortran order), so the innermost loop variable should appear in the
// first subscript. The nest is interchanged when more references gain
// stride-1 behaviour than lose it.
//
// Returns the number of nests interchanged.
func InterchangeLoops(prog *lang.Program, info *sem.Info, mod *dataflow.ModInfo, dep *deptest.Analyzer) int {
	count := 0
	for _, u := range prog.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			outer, ok := s.(*lang.DoStmt)
			if !ok {
				return true
			}
			inner, ok := perfectNest(outer)
			if !ok {
				return true
			}
			if !interchangeProfitable(outer, inner) {
				return true
			}
			if !interchangeLegal(u, outer, inner, dep) {
				return true
			}
			swapLoops(outer, inner)
			// The swap rewrites loop headers in place: memoized property
			// verdicts keyed on the pre-swap bounds are now stale.
			dep.Invalidate()
			count++
			return false // the swapped nest needs no re-visit
		})
	}
	return count
}

// perfectNest reports whether outer's body is exactly one inner DO loop
// whose bounds do not depend on the inner loop itself (they may depend on
// the outer variable; interchange then needs rectangular bounds, so we
// require both loops' bounds to be invariant in both variables).
func perfectNest(outer *lang.DoStmt) (*lang.DoStmt, bool) {
	if len(outer.Body) != 1 {
		return nil, false
	}
	inner, ok := outer.Body[0].(*lang.DoStmt)
	if !ok || outer.Step != nil || inner.Step != nil {
		return nil, false
	}
	for _, b := range []lang.Expr{outer.Lo, outer.Hi, inner.Lo, inner.Hi} {
		bad := false
		lang.WalkExpr(b, func(e lang.Expr) bool {
			if id, ok := e.(*lang.Ident); ok && (id.Name == outer.Var.Name || id.Name == inner.Var.Name) {
				bad = true
			}
			return !bad
		})
		if bad {
			return nil, false
		}
	}
	return inner, true
}

// interchangeProfitable counts references whose first (contiguous)
// subscript uses the outer variable but not the inner one: those become
// stride-1 after interchange. References already stride-1 in the inner
// variable count against.
func interchangeProfitable(outer, inner *lang.DoStmt) bool {
	gain, loss := 0, 0
	lang.WalkStmts(inner.Body, func(s lang.Stmt) bool {
		lang.StmtExprs(s, func(e lang.Expr) {
			lang.WalkExpr(e, func(x lang.Expr) bool {
				ref, ok := x.(*lang.ArrayRef)
				if !ok || ref.Intrinsic || len(ref.Args) < 2 {
					return true
				}
				first := expr.FromAST(ref.Args[0])
				co, _, okO := first.Affine(outer.Var.Name)
				ci, _, okI := first.Affine(inner.Var.Name)
				if !okO || !okI {
					return true
				}
				switch {
				case co != 0 && ci == 0:
					gain++
				case ci != 0 && co == 0:
					loss++
				}
				return true
			})
		})
		return true
	})
	return gain > loss
}

// interchangeLegal requires every written array of the nest to be
// independent on both loops.
func interchangeLegal(u *lang.Unit, outer, inner *lang.DoStmt, dep *deptest.Analyzer) bool {
	for _, loop := range []*lang.DoStmt{outer, inner} {
		for _, v := range dep.AnalyzeLoop(u, loop) {
			if !v.Independent {
				return false
			}
		}
	}
	// Scalar state carried between iterations also blocks (assignments to
	// scalars inside the nest other than the loop variables).
	blocked := false
	lang.WalkStmts(inner.Body, func(s lang.Stmt) bool {
		f := dataflow.Facts(s)
		for _, w := range f.ScalarWrites {
			if w != outer.Var.Name && w != inner.Var.Name {
				blocked = true
			}
		}
		if len(f.Calls) > 0 {
			blocked = true
		}
		return !blocked
	})
	return !blocked
}

// swapLoops exchanges the headers of the two loops in place.
func swapLoops(outer, inner *lang.DoStmt) {
	outer.Var, inner.Var = inner.Var, outer.Var
	outer.Lo, inner.Lo = inner.Lo, outer.Lo
	outer.Hi, inner.Hi = inner.Hi, outer.Hi
	outer.Step, inner.Step = inner.Step, outer.Step
}
