package passes

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/deptest"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sem"
)

func interchangeWorld(t *testing.T, src string) (*lang.Program, *sem.Info, *dataflow.ModInfo, *deptest.Analyzer) {
	t.Helper()
	prog, info, mod := compile(t, src)
	return prog, info, mod, deptest.New(info, mod, nil)
}

func TestInterchangeColumnSweep(t *testing.T) {
	// m(i, j) with j outer: the contiguous first subscript varies in the
	// OUTER loop — interchange makes it the inner one.
	src := `
program p
  param n = 24
  real m(n, n)
  integer i, j
  do j = 1, n
    do i = 1, n
      m(i, j) = real(i + j)
    end do
  end do
end
`
	// Pre-swap so the bad order is present: write the nest with j outer
	// indexing the SECOND dim... the source above already has j outer and
	// m(i, j): first subscript i is the INNER var — already stride-1, no
	// interchange expected.
	prog, info, mod, dep := interchangeWorld(t, src)
	if n := InterchangeLoops(prog, info, mod, dep); n != 0 {
		t.Fatalf("already-optimal nest interchanged %d times", n)
	}

	// Now the transposed access: i outer, m(i, j) — first subscript uses
	// the outer var: interchange expected.
	src2 := `
program p
  param n = 24
  real m(n, n)
  integer i, j
  do i = 1, n
    do j = 1, n
      m(i, j) = real(i + j)
    end do
  end do
end
`
	prog2, info2, mod2, dep2 := interchangeWorld(t, src2)
	if n := InterchangeLoops(prog2, info2, mod2, dep2); n != 1 {
		t.Fatalf("expected 1 interchange, got %d\n%s", n, lang.Format(prog2))
	}
	text := lang.Format(prog2)
	// After the swap, j is the outer loop.
	jPos := strings.Index(text, "do j")
	iPos := strings.Index(text, "do i")
	if jPos < 0 || iPos < 0 || jPos > iPos {
		t.Errorf("loops not swapped:\n%s", text)
	}
}

func TestInterchangeIllegalRecurrence(t *testing.T) {
	// m(i, j) = m(i, j-1): dependence carried by j; interchange must not
	// happen even though profitability suggests it.
	src := `
program p
  param n = 24
  real m(n, n)
  integer i, j
  do i = 1, n
    do j = 2, n
      m(i, j) = m(i, j - 1) + 1.0
    end do
  end do
end
`
	prog, info, mod, dep := interchangeWorld(t, src)
	if n := InterchangeLoops(prog, info, mod, dep); n != 0 {
		t.Fatalf("illegal interchange performed %d times", n)
	}
}

func TestInterchangeSkipsImperfectNest(t *testing.T) {
	src := `
program p
  param n = 24
  real m(n, n), v(n)
  integer i, j
  do i = 1, n
    v(i) = 0.0
    do j = 1, n
      m(i, j) = real(i + j)
    end do
  end do
end
`
	prog, info, mod, dep := interchangeWorld(t, src)
	if n := InterchangeLoops(prog, info, mod, dep); n != 0 {
		t.Fatalf("imperfect nest interchanged %d times", n)
	}
}

func TestInterchangeTriangularSkipped(t *testing.T) {
	// Bounds depending on the outer variable: not rectangular.
	src := `
program p
  param n = 24
  real m(n, n)
  integer i, j
  do i = 1, n
    do j = 1, i
      m(i, j) = 1.0
    end do
  end do
end
`
	prog, info, mod, dep := interchangeWorld(t, src)
	if n := InterchangeLoops(prog, info, mod, dep); n != 0 {
		t.Fatalf("triangular nest interchanged %d times", n)
	}
}

func TestInterchangeImprovesLocalityModel(t *testing.T) {
	src := `
program p
  param n = 48
  real m(n, n)
  integer i, j
  do i = 1, n
    do j = 1, n
      m(i, j) = real(i) * 0.5 + real(j)
    end do
  end do
end
`
	run := func(prog *lang.Program, info *sem.Info) uint64 {
		in := interp.New(info, interp.Options{
			Machine:       machine.New(machine.Origin2000, 1),
			LocalityModel: true,
		})
		if err := in.Run(); err != nil {
			t.Fatal(err)
		}
		return in.Machine().Time()
	}

	progBefore, infoBefore, _, _ := interchangeWorld(t, src)
	before := run(progBefore, infoBefore)

	progAfter, infoAfter, modAfter, depAfter := interchangeWorld(t, src)
	if n := InterchangeLoops(progAfter, infoAfter, modAfter, depAfter); n != 1 {
		t.Fatalf("interchange count %d", n)
	}
	// Semantic check: still valid and produces the same array.
	if _, err := sem.Check(progAfter); err != nil {
		t.Fatalf("interchange broke the program: %v", err)
	}
	after := run(progAfter, infoAfter)
	if after >= before {
		t.Errorf("interchange should reduce simulated time under the locality model: %d vs %d", after, before)
	}

	// And the array contents must be identical.
	inB := interp.New(infoBefore, interp.Options{})
	inB.Run()
	inA := interp.New(infoAfter, interp.Options{})
	inA.Run()
	mb, _ := inB.GlobalArrayReal("m")
	ma, _ := inA.GlobalArrayReal("m")
	for k := range mb {
		if mb[k] != ma[k] {
			t.Fatalf("element %d differs after interchange", k)
		}
	}
}
