package passes

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

func compile(t *testing.T, src string) (*lang.Program, *sem.Info, *dataflow.ModInfo) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return prog, info, dataflow.ComputeMod(info)
}

func recheck(t *testing.T, prog *lang.Program) {
	t.Helper()
	if _, err := sem.Check(prog); err != nil {
		t.Fatalf("program invalid after pass: %v\n%s", err, lang.Format(prog))
	}
}

func TestFoldConstants(t *testing.T) {
	prog, _, _ := compile(t, `
program p
  integer a
  real x
  a = 2 + 3 * 4
  a = a + 0
  a = 1 * a
  x = 2.0 * 3.0
  a = 2 ** 5
end
`)
	FoldConstants(prog)
	text := lang.Format(prog)
	for _, want := range []string{"a = 14", "x = 6", "a = 32"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, "a + 0") || strings.Contains(text, "1 * a") {
		t.Errorf("identities not folded:\n%s", text)
	}
	recheck(t, prog)
}

func TestSimplifyControl(t *testing.T) {
	prog, _, _ := compile(t, `
program p
  integer a, i
  if (1 < 2) then
    a = 1
  else
    a = 2
  end if
  do i = 5, 1
    a = 99
  end do
end
`)
	FoldConstants(prog)
	if !SimplifyControl(prog) {
		t.Fatal("expected simplification")
	}
	text := lang.Format(prog)
	if strings.Contains(text, "a = 2") || strings.Contains(text, "a = 99") {
		t.Errorf("dead branches survived:\n%s", text)
	}
	if !strings.Contains(text, "a = 1") {
		t.Errorf("live branch removed:\n%s", text)
	}
	recheck(t, prog)
}

func TestPropagateConstants(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  integer n, m, i
  real x(100)
  n = 10
  m = n * 2
  do i = 1, m
    x(i) = 0.0
  end do
end
`)
	PropagateConstants(prog, info, mod)
	text := lang.Format(prog)
	if !strings.Contains(text, "m = 20") {
		t.Errorf("n not propagated into m:\n%s", text)
	}
	if !strings.Contains(text, "do i = 1, 20") {
		t.Errorf("m not propagated into loop bound:\n%s", text)
	}
	recheck(t, prog)
}

func TestPropagateConstantsStopsAtRedefinition(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  integer n, a, b
  n = 1
  a = n
  n = 2
  b = n
end
`)
	PropagateConstants(prog, info, mod)
	text := lang.Format(prog)
	if !strings.Contains(text, "a = 1") || !strings.Contains(text, "b = 2") {
		t.Errorf("wrong propagation:\n%s", text)
	}
	recheck(t, prog)
}

func TestPropagateConstantsLoopBody(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  integer n, i, s
  n = 5
  do i = 1, 10
    s = s + n
    n = n + 1
  end do
end
`)
	PropagateConstants(prog, info, mod)
	text := lang.Format(prog)
	if !strings.Contains(text, "s = s + n") {
		t.Errorf("loop-modified variable wrongly propagated:\n%s", text)
	}
	recheck(t, prog)
}

func TestPropagateGlobalConstants(t *testing.T) {
	prog, info, mod := compile(t, `
program main
  integer n
  real x(100)
  n = 50
  call work
end
subroutine work
  integer i
  do i = 1, n
    x(i) = 1.0
  end do
end
`)
	if !PropagateGlobalConstants(prog, info, mod) {
		t.Fatal("expected interprocedural propagation")
	}
	sub := prog.Unit("work")
	text := lang.FormatStmt(sub.Body[0])
	if !strings.Contains(text, "do i = 1, 50") {
		t.Errorf("n not propagated into work:\n%s", text)
	}
	recheck(t, prog)
}

func TestPropagateGlobalConstantsRejectsMultipleDefs(t *testing.T) {
	prog, info, mod := compile(t, `
program main
  integer n
  n = 50
  call work
  n = 60
end
subroutine work
  integer i
  i = n
end
`)
	PropagateGlobalConstants(prog, info, mod)
	sub := prog.Unit("work")
	text := lang.FormatStmt(sub.Body[0])
	if !strings.Contains(text, "i = n") {
		t.Errorf("multiply-assigned global wrongly propagated: %s", text)
	}
}

func TestForwardSubstitute(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  param nmax = 100
  integer q, j, jj
  integer ind(nmax)
  real x(nmax), z(nmax)
  do j = 1, q
    jj = ind(j)
    z(jj) = x(jj)
  end do
end
`)
	if !ForwardSubstitute(prog, info, mod) {
		t.Fatal("expected substitution")
	}
	text := lang.Format(prog)
	if !strings.Contains(text, "z(ind(j)) = x(ind(j))") {
		t.Errorf("jj not substituted:\n%s", text)
	}
	recheck(t, prog)
}

func TestForwardSubstituteInvalidation(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  param nmax = 100
  integer a, b, c
  integer y(nmax)
  b = 1
  a = y(b)
  y(1) = 5
  c = a
end
`)
	ForwardSubstitute(prog, info, mod)
	text := lang.Format(prog)
	// a = y(b) cannot be forwarded past the write to y.
	if !strings.Contains(text, "c = a") {
		t.Errorf("substitution across array write:\n%s", text)
	}
	recheck(t, prog)
}

func TestEliminateDeadCode(t *testing.T) {
	prog, info, _ := compile(t, `
program p
  integer used, unused, i
  used = 1
  unused = 2
  do i = 1, used
    unused = unused + 1
  end do
  i = used
end
`)
	if !EliminateDeadCode(prog, info) {
		t.Fatal("expected dead code removal")
	}
	text := lang.Format(prog)
	if strings.Contains(text, "unused =") {
		t.Errorf("dead assignments survived:\n%s", text)
	}
	if !strings.Contains(text, "used = 1") {
		t.Errorf("live code removed:\n%s", text)
	}
	recheck(t, prog)
}

func TestInline(t *testing.T) {
	prog, _, _ := compile(t, `
program main
  integer g
  call bump
  call bump
end
subroutine bump
  integer tmp
  tmp = 1
  g = g + tmp
end
`)
	if !Inline(prog) {
		t.Fatal("expected inlining")
	}
	text := lang.Format(prog)
	if strings.Contains(text, "call bump") {
		t.Errorf("call not inlined:\n%s", text)
	}
	if !strings.Contains(text, "bump__tmp = 1") {
		t.Errorf("local not renamed:\n%s", text)
	}
	recheck(t, prog)
}

func TestInlineSkipsPrintAndBig(t *testing.T) {
	var big strings.Builder
	big.WriteString("program main\n integer g\n call noisy\n call huge\nend\nsubroutine noisy\n print 1\nend\nsubroutine huge\n integer i\n")
	for i := 0; i < 60; i++ {
		big.WriteString(" i = i + 1\n")
	}
	big.WriteString("end\n")
	prog, _, _ := compile(t, big.String())
	Inline(prog)
	text := lang.Format(prog)
	if !strings.Contains(text, "call noisy") || !strings.Contains(text, "call huge") {
		t.Errorf("ineligible units inlined:\n%s", text)
	}
}

func TestInlineNested(t *testing.T) {
	prog, _, _ := compile(t, `
program main
  integer g
  call outer
end
subroutine outer
  g = g + 1
  call inner
end
subroutine inner
  g = g * 2
end
`)
	Inline(prog)
	text := lang.Format(prog)
	if strings.Contains(text, "call") {
		t.Errorf("nested calls not fully inlined:\n%s", text)
	}
	recheck(t, prog)
}

func TestRecognizeReductions(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  param nmax = 100
  integer n, i
  real s, pmax, x(nmax)
  do i = 1, n
    s = s + x(i)
    pmax = max(pmax, x(i))
  end do
end
`)
	RecognizeReductions(prog, info, mod)
	d := prog.Main.Body[0].(*lang.DoStmt)
	if len(d.Reductions) != 2 {
		t.Fatalf("reductions: %+v", d.Reductions)
	}
	if d.Reductions[0].Var != "pmax" || d.Reductions[0].Op != lang.OpGt {
		t.Errorf("pmax: %+v", d.Reductions[0])
	}
	if d.Reductions[1].Var != "s" || d.Reductions[1].Op != lang.OpAdd {
		t.Errorf("s: %+v", d.Reductions[1])
	}
}

func TestReductionBrokenByOtherRead(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  param nmax = 100
  integer n, i
  real s, x(nmax)
  do i = 1, n
    s = s + x(i)
    x(i) = s
  end do
end
`)
	RecognizeReductions(prog, info, mod)
	d := prog.Main.Body[0].(*lang.DoStmt)
	if len(d.Reductions) != 0 {
		t.Errorf("s is read mid-loop; no reduction expected: %+v", d.Reductions)
	}
}

func TestReductionMixedOpsRejected(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  param nmax = 100
  integer n, i
  real s, x(nmax)
  do i = 1, n
    s = s + x(i)
    s = s * 2.0
  end do
end
`)
	RecognizeReductions(prog, info, mod)
	d := prog.Main.Body[0].(*lang.DoStmt)
	if len(d.Reductions) != 0 {
		t.Errorf("mixed operators must not reduce: %+v", d.Reductions)
	}
}

func TestSubstituteInductionVariables(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  param nmax = 100
  integer n, i, p2
  real x(nmax)
  p2 = 0
  do i = 1, n
    p2 = p2 + 1
    x(p2) = 1.0
  end do
end
`)
	if !SubstituteInductionVariables(prog, info, mod) {
		t.Fatal("expected substitution")
	}
	text := lang.Format(prog)
	// Uses of p2 after the increment become 0 + 1*(i - 1 + 1) = i after
	// folding.
	if !strings.Contains(text, "x(i) = 1.0") {
		t.Errorf("induction variable not substituted:\n%s", text)
	}
	recheck(t, prog)
}

func TestInductionVariableConditionalNotTouched(t *testing.T) {
	prog, info, mod := compile(t, `
program p
  param nmax = 100
  integer n, i, q
  real x(nmax), y(nmax)
  q = 0
  do i = 1, n
    if (y(i) > 0.0) then
      q = q + 1
      x(q) = y(i)
    end if
  end do
end
`)
	SubstituteInductionVariables(prog, info, mod)
	text := lang.Format(prog)
	if !strings.Contains(text, "x(q) = y(i)") {
		t.Errorf("conditional counter must stay irregular:\n%s", text)
	}
}
