package passes

import (
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/sem"
)

// RecognizeReductions annotates DO loops with the scalar reductions they
// perform: a scalar s with every definition in the loop of the form
//
//	s = s + expr      (or s - expr, treated as + of a negated term)
//	s = min(s, expr) / max(s, expr)
//
// where expr does not read s and s is not read anywhere else in the loop.
// Such loops can run in parallel with per-processor partial results
// combined afterwards. The annotation lands in DoStmt.Reductions; nothing
// else is rewritten.
func RecognizeReductions(prog *lang.Program, info *sem.Info, mod *dataflow.ModInfo) {
	for _, u := range prog.Units() {
		lang.WalkStmts(u.Body, func(s lang.Stmt) bool {
			if d, ok := s.(*lang.DoStmt); ok {
				annotateReductions(d, prog, u, info, mod)
			}
			return true
		})
	}
}

func annotateReductions(d *lang.DoStmt, prog *lang.Program, u *lang.Unit, info *sem.Info, mod *dataflow.ModInfo) {
	d.Reductions = nil
	type cand struct {
		op      lang.Op
		ok      bool
		updates int
	}
	cands := map[string]*cand{}

	get := func(name string) *cand {
		c := cands[name]
		if c == nil {
			c = &cand{ok: true}
			cands[name] = c
		}
		return c
	}

	lang.WalkStmts(d.Body, func(s lang.Stmt) bool {
		switch s := s.(type) {
		case *lang.AssignStmt:
			lhs, isScalar := s.Lhs.(*lang.Ident)
			var target string
			if isScalar {
				target = lhs.Name
			}
			op, rest, isUpd := reductionUpdate(s, target)
			if isScalar && isUpd {
				c := get(target)
				c.updates++
				if c.updates > 1 && c.op != op {
					c.ok = false
				}
				c.op = op
				// The update expression must not read the target.
				if readsScalar(rest, target) {
					c.ok = false
				}
				// Reads of the target by subscripts on the LHS are
				// impossible for a scalar; nothing more to check here.
				return true
			}
			// Any other statement reading or writing a candidate breaks it.
			f := dataflow.Facts(s)
			for _, r := range f.ScalarReads {
				if c, tracked := cands[r]; tracked {
					c.ok = false
				} else {
					get(r).ok = false
				}
			}
			for _, w := range f.ScalarWrites {
				get(w).ok = false
			}
		case *lang.CallStmt:
			if cu := prog.Unit(s.Name); cu != nil {
				for v := range mod.GlobalsModifiedBy(cu).Scalars {
					get(v).ok = false
				}
			}
			// Callee reads are not tracked: conservatively break every
			// global candidate.
			for name, c := range cands {
				if sym := info.LookupIn(u, name); sym != nil && sym.Global {
					c.ok = false
				}
			}
		default:
			f := dataflow.Facts(s)
			for _, r := range f.ScalarReads {
				get(r).ok = false
			}
			for _, w := range f.ScalarWrites {
				get(w).ok = false
			}
		}
		return true
	})

	for name, c := range cands {
		if c.ok && c.updates > 0 {
			sym := info.LookupIn(u, name)
			if sym == nil || sym.Kind != sem.ScalarSym {
				continue
			}
			d.Reductions = append(d.Reductions, lang.Reduction{Var: name, Op: c.op})
		}
	}
	// Deterministic order.
	for i := 0; i < len(d.Reductions); i++ {
		for j := i + 1; j < len(d.Reductions); j++ {
			if d.Reductions[j].Var < d.Reductions[i].Var {
				d.Reductions[i], d.Reductions[j] = d.Reductions[j], d.Reductions[i]
			}
		}
	}
}

// reductionUpdate matches s = s op expr forms. target may be "" (no match).
// The returned rest is the combined non-target operand.
func reductionUpdate(s *lang.AssignStmt, target string) (lang.Op, lang.Expr, bool) {
	if target == "" {
		return 0, nil, false
	}
	switch rhs := s.Rhs.(type) {
	case *lang.Binary:
		switch rhs.Op {
		case lang.OpAdd:
			if isVar(rhs.X, target) {
				return lang.OpAdd, rhs.Y, true
			}
			if isVar(rhs.Y, target) {
				return lang.OpAdd, rhs.X, true
			}
		case lang.OpSub:
			if isVar(rhs.X, target) {
				return lang.OpAdd, rhs.Y, true // s - e combines like +(-e)
			}
		case lang.OpMul:
			if isVar(rhs.X, target) {
				return lang.OpMul, rhs.Y, true
			}
			if isVar(rhs.Y, target) {
				return lang.OpMul, rhs.X, true
			}
		}
	case *lang.ArrayRef:
		if rhs.Intrinsic && (rhs.Name == "min" || rhs.Name == "max") && len(rhs.Args) == 2 {
			op := lang.OpLt
			if rhs.Name == "max" {
				op = lang.OpGt
			}
			if isVar(rhs.Args[0], target) {
				return op, rhs.Args[1], true
			}
			if isVar(rhs.Args[1], target) {
				return op, rhs.Args[0], true
			}
		}
	}
	return 0, nil, false
}

func isVar(e lang.Expr, name string) bool {
	id, ok := e.(*lang.Ident)
	return ok && id.Name == name
}

func readsScalar(e lang.Expr, name string) bool {
	if e == nil {
		return false
	}
	found := false
	lang.WalkExpr(e, func(x lang.Expr) bool {
		if id, ok := x.(*lang.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
