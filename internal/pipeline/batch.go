package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/comperr"
	"repro/internal/core/property"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// BatchInput is one source file of a batch compilation.
type BatchInput struct {
	// Name labels the input in summaries and metrics (a file path, a
	// kernel name).
	Name string
	// Src is the source text.
	Src string
}

// BatchItem is one finished (or failed) compilation of a batch.
type BatchItem struct {
	Name   string
	Result *Result // nil when Err != nil
	Err    error
}

// BatchResult holds the per-input outcomes of CompileBatch, in input order
// regardless of completion order.
type BatchResult struct {
	Items []BatchItem
}

// CompileBatch compiles every input through CompileOpts, fanning the
// inputs over a worker pool of opts.Jobs goroutines (0 or negative:
// GOMAXPROCS). Each input is an independent compilation — its own program,
// its own analyses, and, when telemetry is requested, its own recorder —
// results are collected in input order, so summaries, decision logs and
// loop verdicts are byte-identical for any job count.
//
// Unless opts.NoSharedCache is set, the items additionally share one
// SharedAnalysisCache (opts.Shared when provided, otherwise a fresh
// batch-local one): expressions and property verdicts proved for one item
// replay for every later item with identical source and options. Verdicts
// never change; with duplicated inputs the *work* counters
// (property.queries, nodes_visited, shared_hits/shared_misses) can shift
// between job counts, because which duplicate proves and which replays is
// a scheduling race — every other aggregate stays byte-identical.
//
// opts.Recorder acts as a flag here: when it is enabled, every item gets a
// fresh recorder (exposed as its Result.Recorder); events are never written
// to the shared one, whose stream would otherwise depend on scheduling.
func CompileBatch(inputs []BatchInput, mode parallel.Mode, org Organization, opts Options) *BatchResult {
	return CompileBatchContext(context.Background(), inputs, mode, org, opts)
}

// CompileBatchContext is CompileBatch under a context. Each item compiles
// through CompileContext, so in-flight compilations abort at their
// cancellation checkpoints; items not yet started when ctx fires are marked
// with the typed cancellation error without compiling. A panic inside one
// item's compilation is isolated to that item (reported as its error), so a
// pathological input cannot take down the other items or a serving process.
func CompileBatchContext(ctx context.Context, inputs []BatchInput, mode parallel.Mode, org Organization, opts Options) *BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	br := &BatchResult{Items: make([]BatchItem, len(inputs))}
	if opts.Shared == nil && !opts.NoSharedCache {
		opts.Shared = NewSharedAnalysisCache()
	}
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(inputs) {
		jobs = len(inputs)
	}
	telemetry := opts.Recorder.Enabled()
	compileOne := func(i int) {
		in := inputs[i]
		if err := ctx.Err(); err != nil {
			br.Items[i] = BatchItem{Name: in.Name, Err: fmt.Errorf("%s: %w", in.Name, comperr.Canceled(err))}
			return
		}
		itemOpts := opts
		switch {
		case telemetry && opts.Recorder.DebugEnabled():
			itemOpts.Recorder = obs.NewDebug()
		case telemetry:
			itemOpts.Recorder = obs.New()
		default:
			itemOpts.Recorder = nil
		}
		res, err := func() (res *Result, err error) {
			defer func() {
				if r := recover(); r != nil {
					res, err = nil, comperr.Analysisf("internal error: panic during compilation: %v", r)
				}
			}()
			return CompileContext(ctx, in.Src, mode, org, itemOpts)
		}()
		if err != nil {
			err = fmt.Errorf("%s: %w", in.Name, err)
		}
		br.Items[i] = BatchItem{Name: in.Name, Result: res, Err: err}
	}
	if jobs <= 1 {
		for i := range inputs {
			compileOne(i)
		}
		return br
	}
	// A bounded pool of exactly jobs workers pulling indices from a
	// channel — not one goroutine per input parked on a semaphore, which
	// would stack 10k goroutines for a 10k-item batch. Items still land
	// at br.Items[i], so the input-order aggregation is byte-identical
	// for any job count.
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				compileOne(i)
			}
		}()
	}
	for i := range inputs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return br
}

// Err returns the first failed input's error (in input order), or nil.
func (br *BatchResult) Err() error {
	for _, it := range br.Items {
		if it.Err != nil {
			return it.Err
		}
	}
	return nil
}

// Summary concatenates the per-input summaries in input order, each under
// a "== name ==" header; failed inputs report their error instead.
func (br *BatchResult) Summary() string {
	var sb strings.Builder
	for _, it := range br.Items {
		fmt.Fprintf(&sb, "== %s ==\n", it.Name)
		if it.Err != nil {
			fmt.Fprintf(&sb, "error: %v\n", it.Err)
			continue
		}
		sb.WriteString(it.Result.Summary())
	}
	return sb.String()
}

// Explain concatenates the per-input decision logs (empty without
// telemetry), under the same headers as Summary.
func (br *BatchResult) Explain() string {
	var sb strings.Builder
	for _, it := range br.Items {
		if it.Err != nil || it.Result == nil {
			continue
		}
		fmt.Fprintf(&sb, "== %s ==\n", it.Name)
		sb.WriteString(it.Result.Explain())
	}
	return sb.String()
}

// Counters sums the metrics counters of every successful item.
func (br *BatchResult) Counters() map[string]int64 {
	out := map[string]int64{}
	for _, it := range br.Items {
		if it.Err != nil {
			continue
		}
		for k, v := range it.Result.Metrics().Counters {
			out[k] += v
		}
	}
	return out
}

// Stats sums the property-analysis counters of every successful item.
func (br *BatchResult) Stats() property.Stats {
	var st property.Stats
	for _, it := range br.Items {
		if it.Err == nil {
			st.Add(it.Result.PropertyStats)
		}
	}
	return st
}

// InternStats sums the expression-interner counters of every successful
// item (all zero when the batch ran with NoExprIntern).
func (br *BatchResult) InternStats() expr.InternStats {
	var st expr.InternStats
	for _, it := range br.Items {
		if it.Err == nil {
			st.Add(it.Result.InternStats)
		}
	}
	return st
}
