package pipeline

import (
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func batchInputs() []BatchInput {
	var ins []BatchInput
	for _, k := range kernels.All(kernels.Small) {
		ins = append(ins, BatchInput{Name: k.Name, Src: k.Source})
	}
	return ins
}

// runBatch compiles the five kernels with the given job count and returns
// the durations-normalized summary, the explain log, and the counters.
func runBatch(t *testing.T, jobs int) (summary, explain string, counters map[string]int64) {
	t.Helper()
	br := CompileBatch(batchInputs(), parallel.Full, Reorganized, Options{
		Recorder: obs.New(),
		Jobs:     jobs,
	})
	if err := br.Err(); err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	return durations.ReplaceAllString(br.Summary(), "T"), br.Explain(), br.Counters()
}

// TestBatchDeterministic is the acceptance check of the concurrency work:
// compiling the same batch with one worker and with eight must produce the
// same summary (modulo wall-clock durations), a byte-identical decision
// log, and identical analysis counters.
func TestBatchDeterministic(t *testing.T) {
	sum1, exp1, cnt1 := runBatch(t, 1)
	sum8, exp8, cnt8 := runBatch(t, 8)
	if sum1 != sum8 {
		t.Errorf("summary differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", sum1, sum8)
	}
	if exp1 != exp8 {
		t.Errorf("explain log differs between -jobs 1 and -jobs 8")
	}
	if !reflect.DeepEqual(cnt1, cnt8) {
		t.Errorf("counters differ:\njobs=1: %v\njobs=8: %v", cnt1, cnt8)
	}
}

// TestBatchCacheCounters asserts the memo table earns hits on the real
// kernels and that disabling it removes them without changing verdicts.
func TestBatchCacheCounters(t *testing.T) {
	warm := CompileBatch(batchInputs(), parallel.Full, Reorganized, Options{Jobs: 1})
	if err := warm.Err(); err != nil {
		t.Fatal(err)
	}
	cold := CompileBatch(batchInputs(), parallel.Full, Reorganized, Options{Jobs: 1, NoPropertyCache: true})
	if err := cold.Err(); err != nil {
		t.Fatal(err)
	}
	ws, cs := warm.Stats(), cold.Stats()
	if ws.CacheHits == 0 {
		t.Error("expected cache hits on the kernel batch")
	}
	if cs.CacheHits != 0 || cs.CacheMisses != 0 {
		t.Errorf("NoPropertyCache still counted hits=%d misses=%d", cs.CacheHits, cs.CacheMisses)
	}
	// A hit elides the repeat query AND any nested sub-queries its
	// recurrence derivation would have spawned, so the cold run can only
	// issue at least as many queries as warm queries + hits.
	if ws.Queries+ws.CacheHits > cs.Queries {
		t.Errorf("cache hits exceed the queries they could elide: warm %d queries + %d hits > cold %d queries",
			ws.Queries, ws.CacheHits, cs.Queries)
	}
	// Verdicts are unaffected by the cache.
	for i := range warm.Items {
		w, c := warm.Items[i].Result, cold.Items[i].Result
		if len(w.Reports) != len(c.Reports) {
			t.Fatalf("%s: report count differs with cache off", warm.Items[i].Name)
		}
		for j := range w.Reports {
			if w.Reports[j].Parallel != c.Reports[j].Parallel {
				t.Errorf("%s: loop %s verdict differs with cache off",
					warm.Items[i].Name, w.Reports[j].Name)
			}
		}
	}
}

func TestBatchErrorIsolation(t *testing.T) {
	ins := []BatchInput{
		{Name: "good", Src: "program p\n  integer i, s\n  s = 0\n  do i = 1, 10\n    s = s + i\n  end do\nend\n"},
		{Name: "bad", Src: "program q\n  this is not a program\nend\n"},
	}
	br := CompileBatch(ins, parallel.Full, Reorganized, Options{Jobs: 4})
	if br.Items[0].Err != nil {
		t.Errorf("good input failed: %v", br.Items[0].Err)
	}
	if br.Items[1].Err == nil {
		t.Error("bad input did not fail")
	}
	if br.Err() == nil {
		t.Error("BatchResult.Err() should surface the failure")
	}
}

// TestBatchBoundedGoroutines is the regression test for the fan-out bug:
// CompileBatchContext used to spawn one goroutine per input up front (each
// parked on a semaphore), so a 10k-file batch meant 10k goroutines. The
// pool must hold exactly Jobs workers no matter how many inputs queue.
func TestBatchBoundedGoroutines(t *testing.T) {
	src := `
program tiny
  param n = 4
  real a(n)
  integer i
  do i = 1, n
    a(i) = real(i)
  end do
  print "a1", a(1)
end
`
	const inputs = 300
	ins := make([]BatchInput, inputs)
	for i := range ins {
		ins[i] = BatchInput{Name: fmt.Sprintf("in%d", i), Src: src}
	}

	baseline := runtime.NumGoroutine()
	var peak atomic.Int64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			runtime.Gosched()
		}
	}()
	br := CompileBatch(ins, parallel.Full, Reorganized, Options{Jobs: 2})
	close(stop)
	<-sampled
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != inputs {
		t.Fatalf("items = %d", len(br.Items))
	}
	// 2 workers + the sampler + test-runner noise; the old fan-out would
	// sit at baseline+300 the moment the batch started.
	if limit := int64(baseline + 50); peak.Load() > limit {
		t.Errorf("goroutine peak = %d with Jobs=2 over %d inputs (baseline %d, limit %d): pool is not bounded",
			peak.Load(), inputs, baseline, limit)
	}
}
