package pipeline_test

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/comperr"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/pipeline"
	"repro/internal/progen"
)

// largeSrc concatenates generated programs into one big compilation unit
// set — big enough that a 1ms deadline reliably fires mid-analysis. (The
// programs stay separate inputs; cancellation is exercised both through
// CompileContext on one large program and through the batch.)
func generatedInputs(t *testing.T, n int) []pipeline.BatchInput {
	t.Helper()
	var inputs []pipeline.BatchInput
	for seed := int64(0); seed < int64(n); seed++ {
		r := rand.New(rand.NewSource(seed))
		inputs = append(inputs, pipeline.BatchInput{
			Name: "gen-" + strconv.FormatInt(seed, 10),
			Src:  progen.Generate(r, progen.Config{N: 64, MaxBlocks: 12, Subroutines: seed%2 == 0}),
		})
	}
	return inputs
}

// bigProgram is one generated program large enough to take visible
// compilation time (many blocks, subroutines).
func bigProgram() string {
	r := rand.New(rand.NewSource(7))
	return progen.Generate(r, progen.Config{N: 96, MaxBlocks: 24, Subroutines: true})
}

// TestDeadlineMidCompilation is the acceptance test of the cancellation
// layer: an expired deadline aborts a compilation promptly with the typed
// cancellation error, matching both the sentinel and the context error.
func TestDeadlineMidCompilation(t *testing.T) {
	src := bigProgram()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Let the deadline fire before compilation starts: the first phase
	// barrier must abort without running the pipeline.
	time.Sleep(2 * time.Millisecond)

	start := time.Now()
	_, err := pipeline.CompileContext(ctx, src, 0, pipeline.Reorganized, pipeline.Options{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expired deadline but compilation succeeded")
	}
	if !errors.Is(err, comperr.ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("cancellation took %v, want well under 1s", elapsed)
	}
}

// TestDeadlineSweep races deadlines of increasing length against a real
// compilation (with a per-unit worker pool), so the abort lands in
// different phases — before parse, mid-propagation, mid-bDFS, or never.
// Every outcome must be clean: success, or the typed cancellation error.
// Under -race this doubles as the checkpoint/worker-pool shutdown test.
func TestDeadlineSweep(t *testing.T) {
	src := bigProgram()
	for _, d := range []time.Duration{
		10 * time.Microsecond, 50 * time.Microsecond, 200 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 50 * time.Millisecond,
	} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		_, err := pipeline.CompileContext(ctx, src, 0, pipeline.Reorganized, pipeline.Options{Jobs: 4})
		cancel()
		if err != nil && !errors.Is(err, comperr.ErrCanceled) {
			t.Errorf("deadline %v: non-cancellation error %v", d, err)
		}
	}
}

// TestCancelMidPropagation cancels while the property analysis is in
// flight (via a context canceled after a few query steps would have run)
// on the kernels, which exercise query propagation heavily.
func TestCancelMidPropagation(t *testing.T) {
	for _, k := range kernels.All(kernels.Small) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // canceled before the first checkpoint
		_, err := pipeline.CompileContext(ctx, k.Source, 0, pipeline.Reorganized, pipeline.Options{})
		if !errors.Is(err, comperr.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want ErrCanceled wrapping context.Canceled", k.Name, err)
		}
	}
}

// TestCheckpointsBehaviorNeutral compiles the same program with and
// without a live (never-firing) context and deep limits headroom: the
// checkpoints only read, so summary, formatted program and metrics
// counters must be byte-identical.
func TestCheckpointsBehaviorNeutral(t *testing.T) {
	src := bigProgram()
	plain, err := pipeline.CompileOpts(src, 0, pipeline.Reorganized, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	guarded, err := pipeline.CompileContext(ctx, src, 0, pipeline.Reorganized, pipeline.Options{
		Limits: pipeline.Limits{MaxQuerySteps: 1 << 40, MaxSourceBytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := lang.Format(plain.Program), lang.Format(guarded.Program); a != b {
		t.Errorf("formatted programs differ under a live context")
	}
	if a, b := stripTimings(plain.Summary()), stripTimings(guarded.Summary()); a != b {
		t.Errorf("summaries differ under a live context:\n%s\n--- vs ---\n%s", a, b)
	}
	a, b := plain.PropertyStats, guarded.PropertyStats
	a.Elapsed, b.Elapsed = 0, 0 // wall time is the one legitimately varying field
	if a != b {
		t.Errorf("property stats differ: %+v vs %+v", a, b)
	}
}

// stripTimings drops the wall-clock header lines of a summary, keeping the
// per-loop verdicts (the deterministic part).
func stripTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "compiled ") || strings.HasPrefix(line, "  phases:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestMaxQuerySteps bounds propagation: a tiny budget fails typed, a huge
// one is invisible.
func TestMaxQuerySteps(t *testing.T) {
	src := kernelSource(t, "trfd")
	_, err := pipeline.CompileOpts(src, 0, pipeline.Reorganized, pipeline.Options{
		Limits: pipeline.Limits{MaxQuerySteps: 1},
	})
	if !errors.Is(err, comperr.ErrResourceLimit) {
		t.Fatalf("MaxQuerySteps=1: err = %v, want ErrResourceLimit", err)
	}
	if errors.Is(err, comperr.ErrCanceled) {
		t.Errorf("limit error also matches ErrCanceled: %v", err)
	}
	if _, err := pipeline.CompileOpts(src, 0, pipeline.Reorganized, pipeline.Options{
		Limits: pipeline.Limits{MaxQuerySteps: 1 << 40},
	}); err != nil {
		t.Errorf("huge budget failed: %v", err)
	}
}

// TestMaxSourceBytes rejects oversized input before parsing.
func TestMaxSourceBytes(t *testing.T) {
	src := kernelSource(t, "trfd")
	_, err := pipeline.CompileOpts(src, 0, pipeline.Reorganized, pipeline.Options{
		Limits: pipeline.Limits{MaxSourceBytes: 16},
	})
	if !errors.Is(err, comperr.ErrResourceLimit) {
		t.Fatalf("err = %v, want ErrResourceLimit", err)
	}
}

// TestBatchCancellation cancels a batch mid-flight: every item fails, each
// with the typed cancellation error, and the batch still returns a full
// per-item report (no hangs, no panics) — under -race this also checks the
// worker pool shuts down cleanly.
func TestBatchCancellation(t *testing.T) {
	inputs := generatedInputs(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br := pipeline.CompileBatchContext(ctx, inputs, 0, pipeline.Reorganized, pipeline.Options{Jobs: 4})
	if len(br.Items) != len(inputs) {
		t.Fatalf("got %d items, want %d", len(br.Items), len(inputs))
	}
	for _, it := range br.Items {
		if !errors.Is(it.Err, comperr.ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", it.Name, it.Err)
		}
		if it.Err != nil && !strings.Contains(it.Err.Error(), it.Name) {
			t.Errorf("%s: error not attributed to its input: %v", it.Name, it.Err)
		}
	}
}

// TestBatchUncanceled is the batch control: the same inputs under a live
// context all compile.
func TestBatchUncanceled(t *testing.T) {
	inputs := generatedInputs(t, 8)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	br := pipeline.CompileBatchContext(ctx, inputs, 0, pipeline.Reorganized, pipeline.Options{Jobs: 4})
	if err := br.Err(); err != nil {
		t.Fatalf("batch failed under a live context: %v", err)
	}
}

// TestParseAndAnalysisKinds pins the taxonomy of the non-cancellation
// failures.
func TestParseAndAnalysisKinds(t *testing.T) {
	_, err := pipeline.CompileOpts("program p\n  junk £$%\nend\n", 0, pipeline.Reorganized, pipeline.Options{})
	if !errors.Is(err, comperr.ErrParse) {
		t.Errorf("parse failure: err = %v, want ErrParse", err)
	}
	_, err = pipeline.CompileOpts("program p\n  integer i\n  i = undeclared(1)\nend\n", 0, pipeline.Reorganized, pipeline.Options{})
	if !errors.Is(err, comperr.ErrParse) && !errors.Is(err, comperr.ErrAnalysis) {
		t.Errorf("semantic failure: err = %v, want ErrParse or ErrAnalysis", err)
	}
}

func kernelSource(t *testing.T, name string) string {
	t.Helper()
	for _, k := range kernels.All(kernels.Small) {
		if k.Name == name {
			return k.Source
		}
	}
	t.Fatalf("kernel %q not bundled", name)
	return ""
}
