package pipeline

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
)

// Explain renders the per-loop decision log from the telemetry event
// stream: for every analyzed loop, the verdict, the dependence-test outcome
// per array, and the property queries issued while deciding it. Failed
// queries are expanded into their propagation trace — one line per HCG node
// the query visited, with the node class and outcome — which is the replay
// the paper's demand-driven framework makes possible. Returns a hint when
// the compilation ran without telemetry.
func (r *Result) Explain() string {
	if !r.Recorder.Enabled() {
		return "no telemetry recorded: compile with a recorder (irrc -explain enables one)\n"
	}
	roots := buildSpanTree(r.Recorder.Events())
	var sb strings.Builder
	sb.WriteString("decision log\n")
	for _, n := range roots {
		explainNode(&sb, n)
	}
	return sb.String()
}

// TraceTo writes the raw telemetry event stream, one line per event.
func (r *Result) TraceTo(w io.Writer) error {
	if !r.Recorder.Enabled() {
		_, err := fmt.Fprintln(w, "no telemetry recorded")
		return err
	}
	return obs.WriteTrace(w, r.Recorder.Events())
}

// spanNode is one node of the tree rebuilt from the flat event stream: a
// span ("<kind>.begin"/".end" pair) with its children, or a leaf event.
type spanNode struct {
	ev   obs.Event // begin event for spans, the event itself for leaves
	kind string    // span/event kind without the .begin/.end suffix
	dur  time.Duration
	kids []*spanNode
}

// buildSpanTree folds the flat event stream back into span nesting.
func buildSpanTree(events []obs.Event) []*spanNode {
	root := &spanNode{}
	stack := []*spanNode{root}
	for _, ev := range events {
		top := stack[len(stack)-1]
		switch {
		case strings.HasSuffix(ev.Kind, ".begin"):
			n := &spanNode{ev: ev, kind: strings.TrimSuffix(ev.Kind, ".begin")}
			top.kids = append(top.kids, n)
			stack = append(stack, n)
		case strings.HasSuffix(ev.Kind, ".end"):
			// Pop only a matching open span: when the ring wrapped mid-span
			// the begin event is gone and its end must not close an ancestor.
			if len(stack) > 1 && top.kind == strings.TrimSuffix(ev.Kind, ".end") {
				top.dur = time.Duration(ev.DurNs)
				stack = stack[:len(stack)-1]
			}
		default:
			top.kids = append(top.kids, &spanNode{ev: ev, kind: ev.Kind})
		}
	}
	return root.kids
}

// find returns the first direct child of the given kind.
func (n *spanNode) find(kind string) *spanNode {
	for _, k := range n.kids {
		if k.kind == kind {
			return k
		}
	}
	return nil
}

func explainNode(sb *strings.Builder, n *spanNode) {
	switch n.kind {
	case "phase":
		// Loops are analyzed inside the parallelize (and interchange)
		// phases; descend without printing phase chrome — the Summary
		// already carries the phase breakdown.
		for _, k := range n.kids {
			explainNode(sb, k)
		}
	case "loop":
		explainLoop(sb, n)
	}
}

func explainLoop(sb *strings.Builder, loop *spanNode) {
	name := loop.ev.Get("name")
	verdict := "serial"
	blockers := ""
	if v := loop.find("loop.verdict"); v != nil {
		if v.ev.Get("parallel") == "true" {
			verdict = "PARALLEL"
		}
		blockers = v.ev.Get("blockers")
	}
	fmt.Fprintf(sb, "\nloop %s: %s\n", name, verdict)
	if blockers != "" {
		fmt.Fprintf(sb, "  blockers: %s\n", blockers)
	}
	for _, k := range loop.kids {
		switch k.kind {
		case "dep.verdict":
			arr := k.ev.Get("array")
			if k.ev.Get("independent") == "true" {
				fmt.Fprintf(sb, "  dep %s: independent (%s test)\n", arr, k.ev.Get("test"))
			} else {
				fmt.Fprintf(sb, "  dep %s: dependence (%s)\n", arr, k.ev.Get("reason"))
			}
		case "query":
			explainQuery(sb, k, "  ")
		case "diagnose":
			fmt.Fprintf(sb, "  diagnose index array %s (subscript of %s):\n",
				k.ev.Get("index"), k.ev.Get("array"))
			for _, q := range k.kids {
				switch q.kind {
				case "query":
					explainQuery(sb, q, "    ")
				case "diagnose.result":
					// Summary line per replayed property; the query span
					// just above carries the expanded trace on failure.
					status := "holds"
					if q.ev.Get("ok") != "true" {
						status = "FAILS"
					}
					fmt.Fprintf(sb, "    => %s %s\n", q.ev.Get("prop"), status)
				}
			}
		}
	}
}

// explainQuery prints one property query: a single line when it succeeded,
// the full propagation trace (node class + HCG node per step) when it
// failed.
func explainQuery(sb *strings.Builder, q *spanNode, indent string) {
	ok := false
	reason := ""
	if res := q.find("query.result"); res != nil {
		ok = res.ev.Get("ok") == "true"
		reason = res.ev.Get("reason")
	}
	status := "verified"
	if !ok {
		status = "FAILED"
	}
	fmt.Fprintf(sb, "%squery %s over %s at %s: %s",
		indent, q.ev.Get("prop"), q.ev.Get("section"), q.ev.Get("at"), status)
	if reason != "" {
		fmt.Fprintf(sb, " (%s)", reason)
	}
	sb.WriteByte('\n')
	if !ok {
		explainSteps(sb, q, indent+"  ")
	}
}

// explainSteps prints the propagation steps of a (sub)tree, nesting under
// call sites and callee descents.
func explainSteps(sb *strings.Builder, n *spanNode, indent string) {
	for _, k := range n.kids {
		switch k.kind {
		case "query.step":
			fmt.Fprintf(sb, "%s[%s] %s -> %s", indent, k.ev.Get("class"), k.ev.Get("node"), k.ev.Get("outcome"))
			if sites := k.ev.Get("sites"); sites != "" {
				fmt.Fprintf(sb, " to %s call sites", sites)
			}
			sb.WriteByte('\n')
		case "query.call":
			fmt.Fprintf(sb, "%sinto callee at %s:\n", indent, k.ev.Get("node"))
			explainSteps(sb, k, indent+"  ")
		case "query.site":
			fmt.Fprintf(sb, "%sat call site %s in %s:\n", indent, k.ev.Get("node"), k.ev.Get("unit"))
			explainSteps(sb, k, indent+"  ")
		}
	}
}
