package pipeline_test

// Equivalence tests for the expression interner: hash-consing is a pure
// performance layer, so every observable compiler output — summaries,
// decision logs, verdicts, metrics counters — must be byte-identical with
// the interner on and off (NoExprIntern), for generated programs and for
// the paper kernels, serial and parallel.

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/progen"
)

// compileAblation compiles the inputs twice — interner on and off — with
// telemetry enabled, and fails unless every output is identical.
func compileAblation(t *testing.T, inputs []pipeline.BatchInput, jobs int) {
	t.Helper()
	on := pipeline.CompileBatch(inputs, parallel.Full, pipeline.Reorganized,
		pipeline.Options{Jobs: jobs, Recorder: obs.New()})
	if err := on.Err(); err != nil {
		t.Fatalf("intern-on batch failed: %v", err)
	}
	off := pipeline.CompileBatch(inputs, parallel.Full, pipeline.Reorganized,
		pipeline.Options{Jobs: jobs, Recorder: obs.New(), NoExprIntern: true})
	if err := off.Err(); err != nil {
		t.Fatalf("intern-off batch failed: %v", err)
	}
	if on.Explain() != off.Explain() {
		t.Errorf("decision logs differ between intern-on and intern-off")
	}
	if !bench.InternAblationIdentical(on, off) {
		t.Errorf("intern-on and intern-off outputs differ (summary, explain or counters)")
	}
	if st := on.InternStats(); st.Hits+st.Misses == 0 {
		t.Errorf("intern-on batch recorded no interner lookups")
	}
	if st := off.InternStats(); st.Hits+st.Misses != 0 {
		t.Errorf("intern-off batch recorded interner lookups: %+v", st)
	}
}

// TestInternAblationGenerated runs randomly generated programs through the
// pipeline with the interner on and off: identical explain logs, verdicts
// and section keys (all of which surface in the summary and decision log).
func TestInternAblationGenerated(t *testing.T) {
	var inputs []pipeline.BatchInput
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		inputs = append(inputs, pipeline.BatchInput{
			Name: "gen-" + strconv.FormatInt(seed, 10),
			Src:  progen.Generate(r, progen.Config{Subroutines: seed%3 == 0}),
		})
	}
	compileAblation(t, inputs, 1)
}

// TestInternAblationKernels runs the paper kernels as a concurrent batch
// (jobs > 1) with the interner on and off. This is the -race CI target:
// per-unit interners must stay confined to their compilation goroutine.
func TestInternAblationKernels(t *testing.T) {
	var inputs []pipeline.BatchInput
	for _, k := range kernels.All(kernels.Small) {
		inputs = append(inputs, pipeline.BatchInput{Name: k.Name, Src: k.Source})
	}
	compileAblation(t, inputs, 4)
}
